// Randomized differential-testing harness for full delta maintenance
// and for the CSR-backed query executor:
//
// - seeded mutation sequences (single inserts, single deletes, and mixed
//   batches; uniform and skewed operand choice) run through
//   Engine::ApplyDelta, asserting after every prefix that each
//   registered view's live edge multiset — including "paths"
//   multiplicities and view_to_base lineage — equals Materialize() run
//   from scratch over the mutated base graph;
// - the same mutation generator drives the executor differential: after
//   every delta batch the CSR snapshot is rebuilt and a query suite must
//   return the legacy evaluator's exact row set, with parallel CSR
//   execution byte-identical to sequential CSR execution.
//
// Doubles as a sanitizer fuzz driver under the CI ASan/UBSan job.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/maintenance.h"
#include "core/materializer.h"
#include "csr_test_util.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "graph/schema.h"
#include "query/executor.h"
#include "query/fused_runner.h"
#include "query/parser.h"
#include "table_test_util.h"

namespace kaskade::core {
namespace {

using graph::EdgeId;
using graph::GraphDelta;
using graph::GraphSchema;
using graph::PropertyGraph;
using graph::PropertyMap;
using graph::PropertyValue;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Fixture graph: a heterogeneous lineage schema exercising every
// supported view kind (bipartite Job/File core for connectors, auxiliary
// Task/User types for the summarizers to keep or prune).
// ---------------------------------------------------------------------------

GraphSchema DeltaSchema() {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  schema.AddVertexType("Task");
  schema.AddVertexType("User");
  EXPECT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  EXPECT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
  EXPECT_TRUE(schema.AddEdgeType("SPAWNS", "Job", "Task").ok());
  EXPECT_TRUE(schema.AddEdgeType("SUBMITS", "User", "Job").ok());
  return schema;
}

/// Every view kind the maintainer supports, plus predicate coverage.
std::vector<ViewDefinition> AllMaintainableViews() {
  std::vector<ViewDefinition> defs;
  {
    ViewDefinition d;
    d.kind = ViewKind::kKHopConnector;
    d.k = 2;
    d.source_type = "Job";
    d.target_type = "Job";
    defs.push_back(d);
    d.k = 4;  // longer paths: deeper splits, closed paths, orphan GC
    defs.push_back(d);
  }
  {
    ViewDefinition d;
    d.kind = ViewKind::kVertexInclusionSummarizer;
    d.type_list = {"Job", "File"};
    defs.push_back(d);
  }
  {
    ViewDefinition d;
    d.kind = ViewKind::kVertexRemovalSummarizer;
    d.type_list = {"Task"};
    defs.push_back(d);
  }
  {
    ViewDefinition d;
    d.kind = ViewKind::kEdgeInclusionSummarizer;
    d.type_list = {"WRITES_TO", "IS_READ_BY"};
    defs.push_back(d);
  }
  {
    ViewDefinition d;
    d.kind = ViewKind::kEdgeRemovalSummarizer;
    d.type_list = {"SUBMITS"};
    defs.push_back(d);
  }
  {
    // Footnote-5 predicate path: only hot WRITES_TO edges survive.
    ViewDefinition d;
    d.kind = ViewKind::kEdgeInclusionSummarizer;
    d.type_list = {"WRITES_TO"};
    d.predicate_property = "hot";
    d.predicate_op = PredicateOp::kEq;
    d.predicate_value = PropertyValue(static_cast<int64_t>(1));
    defs.push_back(d);
  }
  return defs;
}

// ---------------------------------------------------------------------------
// Canonicalization: a view graph keyed by base-graph lineage, invariant
// under vertex/edge id assignment and insertion order.
// ---------------------------------------------------------------------------

struct CanonicalView {
  std::multiset<std::tuple<int64_t, int64_t, std::string, int64_t>> edges;
  std::multiset<int64_t> vertices;

  bool operator==(const CanonicalView&) const = default;
};

CanonicalView Canonicalize(const MaterializedView& view) {
  CanonicalView canon;
  const PropertyGraph& g = view.graph;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (!g.IsVertexLive(v)) continue;
    int64_t orig = g.VertexProperty(v, "orig_id").as_int();
    // Lineage invariant: the orig_id property and the view_to_base
    // vector must agree for every live view vertex.
    EXPECT_EQ(orig, static_cast<int64_t>(view.view_to_base[v]))
        << "lineage mismatch for view vertex " << v;
    canon.vertices.insert(orig);
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const graph::EdgeRecord& rec = g.Edge(e);
    PropertyValue paths = g.EdgeProperty(e, "paths");
    canon.edges.insert({g.VertexProperty(rec.source, "orig_id").as_int(),
                        g.VertexProperty(rec.target, "orig_id").as_int(),
                        g.schema().edge_type(rec.type).name,
                        paths.is_int() ? paths.as_int() : 1});
  }
  return canon;
}

// ---------------------------------------------------------------------------
// Mutation-sequence generator.
// ---------------------------------------------------------------------------

struct MutationState {
  std::mt19937_64 rng;
  bool skewed = false;
  std::vector<VertexId> by_type[4];  // Job, File, Task, User
  std::vector<EdgeId> live_edges;

  explicit MutationState(uint64_t seed, bool skew)
      : rng(seed), skewed(skew) {}

  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  }

  /// Index into [0, n): uniform, or biased toward low indices (skewed
  /// operand choice concentrates mutations on a few hub vertices).
  size_t PickIndex(size_t n) {
    double u = UniformReal();
    if (skewed) u = u * u;
    size_t i = static_cast<size_t>(u * static_cast<double>(n));
    return i < n ? i : n - 1;
  }

  /// Live edge to delete: uniform, or biased toward recent insertions.
  EdgeId PickLiveEdge() {
    double u = UniformReal();
    if (skewed) u = 1.0 - u * u;  // favour the back (newest)
    size_t i = static_cast<size_t>(u * static_cast<double>(live_edges.size()));
    if (i >= live_edges.size()) i = live_edges.size() - 1;
    return live_edges[i];
  }

  void ForgetEdge(EdgeId e) {
    for (size_t i = 0; i < live_edges.size(); ++i) {
      if (live_edges[i] == e) {
        live_edges.erase(live_edges.begin() + i);
        return;
      }
    }
  }

  PropertyMap RandomVertexProps() {
    PropertyMap props;
    props.Set("hot", PropertyValue(static_cast<int64_t>(rng() % 2)));
    return props;
  }

  /// One random edge insert (endpoints drawn per the skew mode).
  GraphDelta::EdgeInsert RandomEdgeInsert() {
    static const struct {
      const char* name;
      int src_type;
      int dst_type;
    } kEdgeKinds[] = {{"WRITES_TO", 0, 1},
                      {"IS_READ_BY", 1, 0},
                      {"SPAWNS", 0, 2},
                      {"SUBMITS", 3, 0}};
    const auto& kind = kEdgeKinds[rng() % 4];
    PropertyMap props;
    props.Set("hot", PropertyValue(static_cast<int64_t>(rng() % 2)));
    return GraphDelta::EdgeInsert{
        by_type[kind.src_type][PickIndex(by_type[kind.src_type].size())],
        by_type[kind.dst_type][PickIndex(by_type[kind.dst_type].size())],
        kind.name, std::move(props)};
  }
};

/// Seeds `engine`'s base graph population into `state` (ids are dense,
/// so the test can reconstruct them from counts).
void SeedGraph(PropertyGraph* g, MutationState* state) {
  const char* kTypes[4] = {"Job", "File", "Task", "User"};
  const size_t kCounts[4] = {8, 10, 5, 3};
  for (int t = 0; t < 4; ++t) {
    for (size_t i = 0; i < kCounts[t]; ++i) {
      state->by_type[t].push_back(
          g->AddVertex(kTypes[t], state->RandomVertexProps()).value());
    }
  }
  for (int i = 0; i < 20; ++i) {
    GraphDelta::EdgeInsert ins = state->RandomEdgeInsert();
    state->live_edges.push_back(
        g->AddEdge(ins.source, ins.target, ins.type_name, ins.properties)
            .value());
  }
}

// ---------------------------------------------------------------------------
// The differential harness.
// ---------------------------------------------------------------------------

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(DifferentialTest, MaintainedViewsMatchScratchAtEveryPrefix) {
  auto [seed, skewed] = GetParam();
  MutationState state(seed, skewed);
  PropertyGraph base(DeltaSchema());
  SeedGraph(&base, &state);

  Engine engine(std::move(base));
  std::vector<ViewDefinition> defs = AllMaintainableViews();
  for (const ViewDefinition& def : defs) {
    ASSERT_TRUE(engine.AddMaterializedView(def).ok()) << def.Name();
  }

  constexpr int kSteps = 210;
  size_t incremental_total = 0;
  for (int step = 0; step < kSteps; ++step) {
    GraphDelta delta;
    double dice = state.UniformReal();
    if (dice < 0.55 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
      if (state.UniformReal() < 0.03) {
        // Occasionally grow the vertex population through the delta
        // path, wiring the newcomer in by its future id.
        delta.AddVertex("Job", state.RandomVertexProps());
        delta.AddEdge(
            static_cast<VertexId>(engine.base_graph().NumVertices()),
            state.by_type[1][state.PickIndex(state.by_type[1].size())],
            "WRITES_TO", state.RandomVertexProps());
      }
    } else if (dice < 0.85) {
      delta.RemoveEdge(state.PickLiveEdge());
    } else {
      // Mixed batch: several inserts and distinct deletes in one delta.
      size_t ops = 2 + state.rng() % 5;
      std::set<EdgeId> doomed;
      for (size_t i = 0; i < ops; ++i) {
        if (state.UniformReal() < 0.6 ||
            doomed.size() + 4 > state.live_edges.size()) {
          delta.edge_inserts.push_back(state.RandomEdgeInsert());
        } else {
          doomed.insert(state.PickLiveEdge());
        }
      }
      for (EdgeId e : doomed) delta.RemoveEdge(e);
    }

    auto report = engine.ApplyDelta(delta);
    ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.status();
    incremental_total += report->views_incremental;
    for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
    for (EdgeId e : report->new_edges) state.live_edges.push_back(e);
    for (VertexId v : report->new_vertices) state.by_type[0].push_back(v);

    for (const ViewDefinition& def : defs) {
      const CatalogEntry* entry = engine.catalog().Find(def.Name());
      ASSERT_NE(entry, nullptr) << def.Name();
      auto scratch = Materialize(engine.base_graph(), def);
      ASSERT_TRUE(scratch.ok()) << scratch.status();
      ASSERT_EQ(Canonicalize(entry->view), Canonicalize(*scratch))
          << def.Name() << " diverged at step " << step << " (seed " << seed
          << (skewed ? ", skewed)" : ", uniform)");
    }
  }
  // The harness must actually exercise the incremental path, not pass
  // trivially because the cost model re-materialized everything.
  EXPECT_GT(incremental_total, static_cast<size_t>(kSteps) * defs.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sequences, DifferentialTest,
    ::testing::Combine(::testing::Values(11u, 22u, 33u),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Executor differential: the CSR-backed MATCH backend must return the
// legacy evaluator's exact row set across randomized mutation sequences
// (snapshot rebuilt after each delta batch), and parallel execution must
// be byte-identical to sequential execution for every query.
// ---------------------------------------------------------------------------

/// Query suite over the DeltaSchema: typed chains, untyped nodes,
/// variable-length expansions incl. min_hops == 0, WHERE filters, a
/// cycle-closing filter edge, and a variable-length filter edge.
const char* const kExecutorQueries[] = {
    "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f",
    "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
    "RETURN a, b",
    "MATCH (x)-[:SUBMITS]->(j:Job) RETURN x, j",
    "MATCH (a:File)-[r*0..4]->(b:File) RETURN a, b",
    "MATCH (a:Job)-[r*1..3]->(b:Task) RETURN a, b",
    "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 1 RETURN j, f",
    "MATCH (a:Job)-[:WRITES_TO]->(f:File) (a:Job)-[:SPAWNS]->(t:Task) "
    "(a:Job)-[:WRITES_TO]->(g:File) RETURN f, t, g",
    "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
    "(a:Job)-[r*2..2]->(b:Job) RETURN a, b",
};

using testutil::CanonicalRows;

TEST_P(DifferentialTest, CsrExecutorMatchesLegacyAcrossMutations) {
  auto [seed, skewed] = GetParam();
  MutationState state(seed + 5000, skewed);
  PropertyGraph g(DeltaSchema());
  SeedGraph(&g, &state);

  constexpr int kSteps = 40;
  for (int step = 0; step < kSteps; ++step) {
    GraphDelta delta;
    double dice = state.UniformReal();
    if (dice < 0.55 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
    } else if (dice < 0.8) {
      delta.RemoveEdge(state.PickLiveEdge());
    } else {
      size_t ops = 2 + state.rng() % 4;
      std::set<EdgeId> doomed;
      for (size_t i = 0; i < ops; ++i) {
        if (state.UniformReal() < 0.6 ||
            doomed.size() + 4 > state.live_edges.size()) {
          delta.edge_inserts.push_back(state.RandomEdgeInsert());
        } else {
          doomed.insert(state.PickLiveEdge());
        }
      }
      for (EdgeId e : doomed) delta.RemoveEdge(e);
    }
    auto applied = graph::ApplyDeltaToGraph(&g, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
    for (EdgeId e : applied->new_edges) state.live_edges.push_back(e);

    // Snapshot rebuilt after each delta batch, exactly as the catalog's
    // generation-keyed cache would.
    graph::CsrGraph csr = graph::CsrGraph::Build(g);
    query::QueryExecutor legacy(&g);
    query::QueryExecutor csr_seq(&g, &csr);
    query::ExecutorOptions parallel_opts;
    parallel_opts.parallelism = 4;
    query::QueryExecutor csr_par(&g, &csr, parallel_opts);
    for (const char* text : kExecutorQueries) {
      auto expected = legacy.ExecuteText(text);
      ASSERT_TRUE(expected.ok()) << text << ": " << expected.status();
      auto sequential = csr_seq.ExecuteText(text);
      ASSERT_TRUE(sequential.ok()) << text << ": " << sequential.status();
      EXPECT_EQ(CanonicalRows(*expected), CanonicalRows(*sequential))
          << text << " diverged from legacy at step " << step << " (seed "
          << seed << (skewed ? ", skewed)" : ", uniform)");
      auto parallel = csr_par.ExecuteText(text);
      ASSERT_TRUE(parallel.ok()) << text << ": " << parallel.status();
      ASSERT_EQ(sequential->num_rows(), parallel->num_rows()) << text;
      for (size_t r = 0; r < sequential->num_rows(); ++r) {
        ASSERT_EQ(sequential->rows()[r], parallel->rows()[r])
            << text << " row " << r << " differs between sequential and "
            << "parallel at step " << step;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch-fusion differential: ExecuteBatch with cross-query fusion on,
// off, and at a raised min-group-size must all return tables
// byte-identical (rows *in order*) to sequential Execute of the same
// texts, across randomized mutation sequences. The batch deliberately
// mixes shapes: a 3-member constant-variant group, a 2-member group
// (below engine C's min_group_size), duplicate texts, the full
// mixed-shape suite as singletons, and non-fusable SELECT shells.
// ---------------------------------------------------------------------------

/// The batch the fusion differential executes: same-shape groups arise
/// from constant variants (hot = 0 vs 1) and duplicate texts.
std::vector<std::string> FusionBatch() {
  std::vector<std::string> batch = {
      // Shape group of 3: identical structure, constants differ.
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 0 RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 1 RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 1 RETURN j, f",
      // Shape group of 2 (stays solo when min_group_size = 3).
      "MATCH (x:User)-[:SUBMITS]->(j:Job) WHERE j.hot = 0 RETURN x, j",
      "MATCH (x:User)-[:SUBMITS]->(j:Job) WHERE j.hot = 1 RETURN x, j",
      // Variable-length shape group of 2 via duplicate text.
      "MATCH (a:File)-[r*0..4]->(b:File) RETURN a, b",
      "MATCH (a:File)-[r*0..4]->(b:File) RETURN a, b",
      // A SELECT shell: never fusable, must still batch correctly.
      "SELECT COUNT(*) FROM (MATCH (j:Job)-[:WRITES_TO]->(f:File) "
      "RETURN j, f)",
  };
  for (const char* text : kExecutorQueries) batch.emplace_back(text);
  return batch;
}

void ExpectTablesIdentical(const query::Table& expected,
                           const query::Table& actual,
                           const std::string& context) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns()) << context;
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    EXPECT_EQ(expected.columns()[c].name, actual.columns()[c].name)
        << context << " column " << c;
  }
  ASSERT_EQ(expected.num_rows(), actual.num_rows()) << context;
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    ASSERT_EQ(expected.rows()[r], actual.rows()[r])
        << context << " row " << r << " differs";
  }
}

TEST_P(DifferentialTest, FusedBatchMatchesSequentialAcrossMutations) {
  auto [seed, skewed] = GetParam();
  MutationState state(seed + 13000, skewed);
  PropertyGraph base(DeltaSchema());
  SeedGraph(&base, &state);

  // Three engines over identical graphs and identical delta streams:
  // fusion on (default), fusion off, and min_group_size = 3 (pair
  // groups run solo, the trio still fuses).
  EngineOptions fused_opts;
  EngineOptions unfused_opts;
  unfused_opts.executor.fusion.enabled = false;
  EngineOptions trio_opts;
  trio_opts.executor.fusion.min_group_size = 3;
  Engine fused(PropertyGraph(base), fused_opts);
  Engine unfused(PropertyGraph(base), unfused_opts);
  Engine trio(std::move(base), trio_opts);
  Engine* engines[] = {&fused, &unfused, &trio};

  const std::vector<std::string> batch = FusionBatch();
  // Batch-only expansion work per engine: the solo oracle runs below
  // also bump the fused engine's lifetime counter, so the fused-vs-
  // unfused comparison must difference around each ExecuteBatch call.
  uint64_t batch_expansions[3] = {0, 0, 0};
  constexpr int kSteps = 12;
  for (int step = 0; step < kSteps; ++step) {
    // Sequential solo runs are the oracle; the engines' graphs are
    // identical, so one engine's solo tables must equal every engine's
    // batch tables.
    std::vector<query::Table> expected;
    for (const std::string& text : batch) {
      auto solo = fused.Execute(text);
      ASSERT_TRUE(solo.ok()) << text << ": " << solo.status();
      expected.push_back(std::move(solo->table));
    }
    for (size_t e = 0; e < 3; ++e) {
      Engine* engine = engines[e];
      const uint64_t before = engine->traversal_expansions();
      auto results = engine->ExecuteBatch(batch);
      batch_expansions[e] += engine->traversal_expansions() - before;
      ASSERT_EQ(results.size(), batch.size());
      for (size_t i = 0; i < results.size(); ++i) {
        const std::string context =
            batch[i] + " at step " + std::to_string(step) + " (seed " +
            std::to_string(seed) + (skewed ? ", skewed)" : ", uniform)");
        ASSERT_TRUE(results[i].ok()) << context << ": "
                                     << results[i].status();
        ExpectTablesIdentical(expected[i], results[i]->table, context);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }

    // Same mutation for every engine; ids stay aligned because the
    // graphs evolve in lockstep.
    GraphDelta delta;
    double dice = state.UniformReal();
    if (dice < 0.6 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
    } else {
      delta.RemoveEdge(state.PickLiveEdge());
    }
    bool tracked = false;
    for (Engine* engine : engines) {
      auto report = engine->ApplyDelta(delta);
      ASSERT_TRUE(report.ok()) << "step " << step << ": " << report.status();
      if (!tracked) {
        for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
        for (EdgeId e : report->new_edges) state.live_edges.push_back(e);
        tracked = true;
      }
    }
  }

  // The run must have exercised fusion where configured, and only
  // there.
  EngineTelemetry on = fused.TelemetrySnapshot();
  EngineTelemetry off = unfused.TelemetrySnapshot();
  EngineTelemetry mid = trio.TelemetrySnapshot();
  EXPECT_GT(on.fused_groups, 0u);
  EXPECT_GT(on.fused_members, 0u);
  EXPECT_EQ(off.fused_groups, 0u);
  EXPECT_EQ(off.fused_members, 0u);
  EXPECT_GT(mid.fused_groups, 0u);
  // Pair groups ran solo under min_group_size = 3.
  EXPECT_LT(mid.fused_members, on.fused_members);
  // Fusion pays each group's traversal once where the unfused engine
  // pays per member; the batches the two engines ran are identical.
  EXPECT_LT(batch_expansions[0], batch_expansions[1]);
}

// A fused group handed a snapshot that no longer matches its property
// graph must trip the staleness check for every member instead of
// silently traversing a stale topology.
TEST(FusedRunnerTest, StaleSnapshotFailsEveryMember) {
  MutationState state(41, /*skew=*/false);
  PropertyGraph g(DeltaSchema());
  SeedGraph(&g, &state);
  graph::CsrGraph csr = graph::CsrGraph::Build(g);

  // Mutate the graph after the snapshot was taken.
  GraphDelta::EdgeInsert ins = state.RandomEdgeInsert();
  ASSERT_TRUE(g.AddEdge(ins.source, ins.target, ins.type_name,
                        ins.properties)
                  .ok());

  auto q0 = query::ParseQueryText(
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 0 RETURN j, f");
  auto q1 = query::ParseQueryText(
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 1 RETURN j, f");
  ASSERT_TRUE(q0.ok() && q1.ok());
  std::vector<const query::MatchQuery*> members = {&q0->match(), &q1->match()};
  auto results =
      query::ExecuteFusedMatch(g, csr, members, query::ExecutorOptions{});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  }
}

// The fused runner against a *current* snapshot must agree with solo
// CSR execution member by member, including members whose predicates
// select nothing.
TEST(FusedRunnerTest, GroupMatchesSoloMemberByMember) {
  MutationState state(43, /*skew=*/true);
  PropertyGraph g(DeltaSchema());
  SeedGraph(&g, &state);
  graph::CsrGraph csr = graph::CsrGraph::Build(g);

  const char* kTexts[] = {
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 0 RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 1 RETURN j, f",
      // A constant no vertex carries: this member's table is empty while
      // the others' are not.
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.hot = 7 RETURN j, f",
  };
  std::vector<query::Query> parsed;
  std::vector<const query::MatchQuery*> members;
  for (const char* text : kTexts) {
    auto q = query::ParseQueryText(text);
    ASSERT_TRUE(q.ok()) << text;
    parsed.push_back(std::move(*q));
  }
  for (const query::Query& q : parsed) members.push_back(&q.match());

  query::FusedGroupStats stats;
  auto fused_results = query::ExecuteFusedMatch(
      g, csr, members, query::ExecutorOptions{}, &stats);
  ASSERT_EQ(fused_results.size(), members.size());
  EXPECT_GT(stats.expansions, 0u);

  query::QueryExecutor solo(&g, &csr);
  for (size_t m = 0; m < members.size(); ++m) {
    auto expected = solo.ExecuteText(kTexts[m]);
    ASSERT_TRUE(expected.ok()) << kTexts[m];
    ASSERT_TRUE(fused_results[m].ok()) << kTexts[m];
    ExpectTablesIdentical(*expected, *fused_results[m], kTexts[m]);
  }
}

// ---------------------------------------------------------------------------
// Snapshot-patching differential: a chain of CsrGraph::PatchedFrom calls
// following the same randomized mutation sequences must be structurally
// identical to a from-scratch CsrGraph::Build at every prefix — typed
// slices, lineage edge ids, type directories, and sortedness included.
// The threshold is forced to 1.0 so every step takes the patch path
// (never the internal Build fallback); a parallel default-threshold
// chain checks that fallbacks interleave transparently.
// ---------------------------------------------------------------------------

TEST_P(DifferentialTest, PatchedSnapshotsMatchFreshBuildsAtEveryPrefix) {
  auto [seed, skewed] = GetParam();
  MutationState state(seed + 9000, skewed);
  PropertyGraph g(DeltaSchema());
  SeedGraph(&g, &state);

  graph::CsrPatchOptions always_patch;
  always_patch.max_dirty_fraction = 1.0;

  graph::CsrGraph patched = graph::CsrGraph::Build(g);
  graph::CsrGraph adaptive = graph::CsrGraph::Build(g);

  constexpr int kSteps = 60;
  for (int step = 0; step < kSteps; ++step) {
    GraphDelta delta;
    double dice = state.UniformReal();
    if (dice < 0.5 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
      if (state.UniformReal() < 0.05) {
        delta.AddVertex("Job", state.RandomVertexProps());
        delta.AddEdge(static_cast<VertexId>(g.NumVertices()),
                      state.by_type[1][state.PickIndex(state.by_type[1].size())],
                      "WRITES_TO", state.RandomVertexProps());
      }
    } else if (dice < 0.8) {
      delta.RemoveEdge(state.PickLiveEdge());
    } else {
      size_t ops = 2 + state.rng() % 5;
      std::set<EdgeId> doomed;
      for (size_t i = 0; i < ops; ++i) {
        if (state.UniformReal() < 0.5 ||
            doomed.size() + 4 > state.live_edges.size()) {
          delta.edge_inserts.push_back(state.RandomEdgeInsert());
        } else {
          doomed.insert(state.PickLiveEdge());
        }
      }
      for (EdgeId e : doomed) delta.RemoveEdge(e);
    }
    auto applied = graph::ApplyDeltaToGraph(&g, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
    for (EdgeId e : applied->new_edges) state.live_edges.push_back(e);
    for (VertexId v : applied->new_vertices) state.by_type[0].push_back(v);

    const std::string context = "step " + std::to_string(step) + " (seed " +
                                std::to_string(seed) +
                                (skewed ? ", skewed)" : ", uniform)");
    graph::CsrPatchStats stats;
    patched =
        graph::CsrGraph::PatchedFrom(patched, g, delta, always_patch, &stats);
    ASSERT_FALSE(stats.full_rebuild) << context;
    const graph::CsrGraph fresh = graph::CsrGraph::Build(g);
    testutil::ExpectCsrEqual(patched, fresh, g, "patched " + context);
    if (::testing::Test::HasFatalFailure()) return;

    adaptive = graph::CsrGraph::PatchedFrom(adaptive, g, delta, {}, &stats);
    testutil::ExpectCsrEqual(adaptive, fresh, g, "adaptive " + context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SnapshotPatchFallbackTest, DirtyFractionThresholdForcesFullRebuild) {
  MutationState state(17, /*skew=*/false);
  PropertyGraph g(DeltaSchema());
  SeedGraph(&g, &state);
  graph::CsrGraph prev = graph::CsrGraph::Build(g);

  // A delta touching most of the graph: dirty fraction is far above any
  // reasonable threshold, so the patch must fall back (and still be
  // exact, because the fallback *is* Build).
  GraphDelta big;
  for (int i = 0; i < 12; ++i) big.edge_inserts.push_back(state.RandomEdgeInsert());
  auto applied = graph::ApplyDeltaToGraph(&g, big);
  ASSERT_TRUE(applied.ok()) << applied.status();

  graph::CsrPatchOptions tight;
  tight.max_dirty_fraction = 0.01;  // 26 vertices: budget < 1 dirty vertex
  graph::CsrPatchStats stats;
  graph::CsrGraph result = graph::CsrGraph::PatchedFrom(prev, g, big, tight, &stats);
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_GT(stats.dirty_vertices, 0u);
  testutil::ExpectCsrEqual(result, graph::CsrGraph::Build(g), g, "fallback");

  // The same delta patches fine with headroom.
  graph::CsrPatchStats relaxed_stats;
  graph::CsrGraph patched = graph::CsrGraph::PatchedFrom(
      prev, g, big, graph::CsrPatchOptions{1.0}, &relaxed_stats);
  EXPECT_FALSE(relaxed_stats.full_rebuild);
  testutil::ExpectCsrEqual(patched, graph::CsrGraph::Build(g), g, "patched");
}

// ---------------------------------------------------------------------------
// Unsupported kinds fall back to re-materialization through the same
// ApplyDelta entry point and stay exact.
// ---------------------------------------------------------------------------

TEST(DifferentialFallbackTest, AggregatorStaysExactViaRematerialization) {
  MutationState state(7, /*skew=*/false);
  PropertyGraph base(DeltaSchema());
  SeedGraph(&base, &state);
  Engine engine(std::move(base));

  ViewDefinition agg;
  agg.kind = ViewKind::kVertexAggregatorSummarizer;
  agg.source_type = "File";
  agg.group_by_property = "hot";
  ASSERT_TRUE(engine.AddMaterializedView(agg).ok());

  for (int step = 0; step < 25; ++step) {
    GraphDelta delta;
    if (state.UniformReal() < 0.5 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
    } else {
      delta.RemoveEdge(state.PickLiveEdge());
    }
    auto report = engine.ApplyDelta(delta);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->views_rematerialized, 1u);
    EXPECT_EQ(report->views_incremental, 0u);
    for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
    for (EdgeId e : report->new_edges) state.live_edges.push_back(e);

    const CatalogEntry* entry = engine.catalog().Find(agg.Name());
    ASSERT_NE(entry, nullptr);
    auto scratch = Materialize(engine.base_graph(), agg);
    ASSERT_TRUE(scratch.ok());
    EXPECT_EQ(entry->view.graph.NumLiveVertices(),
              scratch->graph.NumLiveVertices());
    EXPECT_EQ(entry->view.graph.NumLiveEdges(), scratch->graph.NumLiveEdges());
  }
}

// ---------------------------------------------------------------------------
// MaintenanceStats balance: adds minus removes equals the observed view
// delta across a full random run (the counters cannot drift).
// ---------------------------------------------------------------------------

uint64_t PathsSum(const PropertyGraph& g) {
  uint64_t total = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    PropertyValue paths = g.EdgeProperty(e, "paths");
    total += paths.is_int() ? static_cast<uint64_t>(paths.as_int()) : 1;
  }
  return total;
}

TEST(MaintenanceStatsBalanceTest, ConnectorCountersBalanceAcrossRandomRun) {
  MutationState state(99, /*skew=*/true);
  PropertyGraph base(DeltaSchema());
  SeedGraph(&base, &state);

  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  auto view = Materialize(base, def);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&base, &*view);

  const uint64_t v0 = view->graph.NumLiveVertices();
  const uint64_t e0 = view->graph.NumLiveEdges();
  const uint64_t p0 = PathsSum(view->graph);

  MaintenanceStats total;
  for (int step = 0; step < 150; ++step) {
    GraphDelta delta;
    if (state.UniformReal() < 0.5 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
    } else if (state.UniformReal() < 0.7) {
      delta.RemoveEdge(state.PickLiveEdge());
    } else {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
      EdgeId doomed = state.PickLiveEdge();
      delta.RemoveEdge(doomed);
    }
    auto applied = graph::ApplyDeltaToGraph(&base, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
    for (EdgeId e : applied->new_edges) state.live_edges.push_back(e);
    auto stats = maintainer.ApplyDelta(delta);
    ASSERT_TRUE(stats.ok()) << stats.status();
    total += *stats;
  }

  // The run must end exact...
  auto scratch = Materialize(base, def);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(Canonicalize(*view), Canonicalize(*scratch));
  // ...and the counters must explain exactly the observed change.
  EXPECT_EQ(v0 + total.vertices_added - total.vertices_removed,
            view->graph.NumLiveVertices());
  EXPECT_EQ(e0 + total.edges_added - total.edges_removed,
            view->graph.NumLiveEdges());
  EXPECT_EQ(p0 + total.paths_added - total.paths_removed,
            PathsSum(view->graph));
}

TEST(MaintenanceStatsBalanceTest, SummarizerCountersBalanceAcrossRandomRun) {
  MutationState state(123, /*skew=*/false);
  PropertyGraph base(DeltaSchema());
  SeedGraph(&base, &state);

  ViewDefinition def;
  def.kind = ViewKind::kVertexRemovalSummarizer;
  def.type_list = {"Task", "User"};
  auto view = Materialize(base, def);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&base, &*view);

  const uint64_t v0 = view->graph.NumLiveVertices();
  const uint64_t e0 = view->graph.NumLiveEdges();

  MaintenanceStats total;
  for (int step = 0; step < 150; ++step) {
    GraphDelta delta;
    if (state.UniformReal() < 0.55 || state.live_edges.size() < 4) {
      delta.edge_inserts.push_back(state.RandomEdgeInsert());
    } else {
      delta.RemoveEdge(state.PickLiveEdge());
    }
    auto applied = graph::ApplyDeltaToGraph(&base, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    for (EdgeId e : delta.edge_removals) state.ForgetEdge(e);
    for (EdgeId e : applied->new_edges) state.live_edges.push_back(e);
    auto stats = maintainer.ApplyDelta(delta);
    ASSERT_TRUE(stats.ok()) << stats.status();
    total += *stats;
  }

  auto scratch = Materialize(base, def);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(Canonicalize(*view), Canonicalize(*scratch));
  EXPECT_EQ(v0 + total.vertices_added - total.vertices_removed,
            view->graph.NumLiveVertices());
  EXPECT_EQ(e0 + total.edges_added - total.edges_removed,
            view->graph.NumLiveEdges());
  EXPECT_EQ(total.paths_added, 0u);  // summarizers do not contract paths
  EXPECT_EQ(total.paths_removed, 0u);
}

}  // namespace
}  // namespace kaskade::core
