// Tests for Kaskade's core: fact extraction, constraint mining rules,
// view enumeration, size estimation, knapsack, rewriting, and
// materialization.

#include <gtest/gtest.h>

#include <set>

#include "core/enumerator.h"
#include "core/fact_extractor.h"
#include "core/knapsack.h"
#include "core/materializer.h"
#include "core/rewriter.h"
#include "core/rules.h"
#include "core/size_estimator.h"
#include "core/view_definition.h"
#include "datasets/generators.h"
#include "graph/algorithms.h"
#include "datasets/workloads.h"
#include "prolog/solver.h"
#include "query/parser.h"

namespace kaskade::core {
namespace {

using graph::GraphSchema;
using graph::PropertyGraph;

GraphSchema ProvSchema() {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  EXPECT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  EXPECT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
  return schema;
}

query::Query ParseOrDie(const std::string& text) {
  auto q = query::ParseQueryText(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(*q);
}

// ---------------------------------------------------------------------------
// Fact extraction (§IV-A1)
// ---------------------------------------------------------------------------

class FactExtractorTest : public ::testing::Test {
 protected:
  bool Proves(const std::string& goal) {
    prolog::Solver solver(&kb_);
    auto r = solver.Prove(goal);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && r.value();
  }

  size_t CountSolutions(const std::string& goal) {
    prolog::Solver solver(&kb_);
    auto sols = solver.QueryAll(goal);
    EXPECT_TRUE(sols.ok()) << sols.status();
    return sols.ok() ? sols->size() : 0;
  }

  prolog::KnowledgeBase kb_;
};

TEST_F(FactExtractorTest, ListingOneEmitsThePaperFacts) {
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  ASSERT_TRUE(ExtractQueryFacts(q, &kb_).ok());
  // Exactly the facts printed in §IV-A1.
  EXPECT_TRUE(Proves("queryVertex(q_j1)."));
  EXPECT_TRUE(Proves("queryVertex(q_f1)."));
  EXPECT_TRUE(Proves("queryVertex(q_f2)."));
  EXPECT_TRUE(Proves("queryVertex(q_j2)."));
  EXPECT_EQ(CountSolutions("queryVertex(X)."), 4u);
  EXPECT_TRUE(Proves("queryVertexType(q_f1, 'File')."));
  EXPECT_TRUE(Proves("queryVertexType(q_j1, 'Job')."));
  EXPECT_TRUE(Proves("queryEdge(q_j1, q_f1)."));
  EXPECT_TRUE(Proves("queryEdge(q_f2, q_j2)."));
  EXPECT_EQ(CountSolutions("queryEdge(X, Y)."), 2u);
  EXPECT_TRUE(Proves("queryEdgeType(q_j1, q_f1, 'WRITES_TO')."));
  EXPECT_TRUE(Proves("queryEdgeType(q_f2, q_j2, 'IS_READ_BY')."));
  EXPECT_TRUE(Proves("queryVariableLengthPath(q_f1, q_f2, 0, 8)."));
}

TEST_F(FactExtractorTest, SchemaFactsMatchPaper) {
  ASSERT_TRUE(ExtractSchemaFacts(ProvSchema(), &kb_).ok());
  EXPECT_TRUE(Proves("schemaVertex('Job')."));
  EXPECT_TRUE(Proves("schemaVertex('File')."));
  EXPECT_TRUE(Proves("schemaEdge('Job', 'File', 'WRITES_TO')."));
  EXPECT_TRUE(Proves("schemaEdge('File', 'Job', 'IS_READ_BY')."));
  EXPECT_EQ(CountSolutions("schemaEdge(X, Y, T)."), 2u);
}

TEST_F(FactExtractorTest, QueryWithoutMatchRejected) {
  query::Query q = ParseOrDie("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a");
  query::Query select_only;
  query::SelectQuery s;
  s.from = std::make_unique<query::Query>(std::move(q));
  select_only.node = std::move(s);
  // Select over match is fine (facts come from the innermost match).
  EXPECT_TRUE(ExtractQueryFacts(select_only, &kb_).ok());
}

// ---------------------------------------------------------------------------
// Constraint mining rules (§IV-A2, Lst. 2 + Lst. 6)
// ---------------------------------------------------------------------------

class RulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kb_.Consult(AllRules()).ok());
    ASSERT_TRUE(ExtractSchemaFacts(ProvSchema(), &kb_).ok());
    query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
    ASSERT_TRUE(ExtractQueryFacts(q, &kb_).ok());
  }

  bool Proves(const std::string& goal) {
    prolog::Solver solver(&kb_);
    auto r = solver.Prove(goal);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && r.value();
  }

  std::set<int64_t> KValues(const std::string& query_with_k) {
    prolog::Solver solver(&kb_);
    std::set<int64_t> ks;
    auto n = solver.Query(query_with_k, [&](const prolog::Solution& s) {
      auto it = s.bindings.find("K");
      if (it != s.bindings.end() && it->second->is_int()) {
        ks.insert(it->second->int_value());
      }
      return true;
    });
    EXPECT_TRUE(n.ok()) << n.status();
    return ks;
  }

  prolog::KnowledgeBase kb_;
};

TEST_F(RulesTest, SchemaKHopWalkAllowsTypeRevisits) {
  EXPECT_TRUE(Proves("schemaKHopWalk('Job', 'Job', 2)."));
  EXPECT_TRUE(Proves("schemaKHopWalk('Job', 'Job', 4)."));
  EXPECT_TRUE(Proves("schemaKHopWalk('Job', 'Job', 10)."));
  EXPECT_FALSE(Proves("schemaKHopWalk('Job', 'Job', 3)."));
  EXPECT_TRUE(Proves("schemaKHopWalk('Job', 'File', 5)."));
  EXPECT_FALSE(Proves("schemaKHopWalk('Job', 'File', 2)."));
}

TEST_F(RulesTest, SchemaPathOverTypes) {
  EXPECT_TRUE(Proves("schemaPath('Job', 'File')."));
  EXPECT_TRUE(Proves("schemaPath('Job', 'Job')."));
  EXPECT_TRUE(Proves("schemaPath('File', 'File')."));
}

TEST_F(RulesTest, QueryKHopVariableLengthPathEnumeratesRange) {
  std::set<int64_t> ks = KValues("queryKHopVariableLengthPath(q_f1, q_f2, K).");
  std::set<int64_t> expected;
  for (int64_t k = 0; k <= 8; ++k) expected.insert(k);
  EXPECT_EQ(ks, expected);
}

TEST_F(RulesTest, QueryKHopPathComposesChainSegments) {
  // q_j1 -> q_j2 spans the fixed edge (1) + var path (0..8) + fixed edge
  // (1): lengths 2..10.
  std::set<int64_t> ks = KValues("queryKHopPath(q_j1, q_j2, K).");
  ASSERT_FALSE(ks.empty());
  EXPECT_EQ(*ks.begin(), 2);
  EXPECT_EQ(*ks.rbegin(), 10);
  EXPECT_EQ(ks.size(), 9u);  // every integer in 2..10
}

TEST_F(RulesTest, QueryPathReachability) {
  EXPECT_TRUE(Proves("queryPath(q_j1, q_j2)."));
  EXPECT_TRUE(Proves("queryPath(q_j1, q_f1)."));
  EXPECT_FALSE(Proves("queryPath(q_j2, q_j1)."));
}

TEST_F(RulesTest, SourceSinkAndDegreeRules) {
  EXPECT_TRUE(Proves("queryVertexSource(q_j1)."));
  EXPECT_TRUE(Proves("queryVertexSink(q_j2)."));
  EXPECT_FALSE(Proves("queryVertexSource(q_f2)."));
  EXPECT_TRUE(Proves("queryVertexOutDegree(q_j1, 1)."));
  EXPECT_TRUE(Proves("queryVertexInDegree(q_j1, 0)."));
}

TEST_F(RulesTest, PaperSectionFourBExample) {
  // §IV-B: the valid kHopConnector instantiations for q_j1/q_j2 are
  // exactly K = 2, 4, 6, 8, 10 with both types Job.
  std::set<int64_t> ks =
      KValues("kHopConnector(q_j1, q_j2, 'Job', 'Job', K).");
  EXPECT_EQ(ks, (std::set<int64_t>{2, 4, 6, 8, 10}));
  // No odd or cross-type connectors.
  EXPECT_FALSE(Proves("kHopConnector(q_j1, q_j2, 'Job', 'Job', 3)."));
  EXPECT_FALSE(Proves("kHopConnector(q_j1, q_j2, 'Job', 'File', K)."));
}

TEST_F(RulesTest, SummarizerTemplates) {
  prolog::Solver solver(&kb_);
  auto sols = solver.QueryAll("vertexInclusionSummarizer(TYPES).");
  ASSERT_TRUE(sols.ok());
  ASSERT_EQ(sols->size(), 1u);
  EXPECT_EQ(sols->front().bindings.at("TYPES")->ToString(),
            "['File','Job']");
  // Two-type schema, both used: nothing to remove.
  EXPECT_FALSE(Proves("vertexRemovalSummarizer(T)."));
  EXPECT_FALSE(Proves("edgeRemovalSummarizer(T)."));
}

TEST_F(RulesTest, RemovalSummarizersFireOnWiderSchema) {
  // Full prov schema has Task/Machine/User and extra edge types.
  prolog::KnowledgeBase kb;
  ASSERT_TRUE(kb.Consult(AllRules()).ok());
  PropertyGraph full = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 5,
                            .num_files = 5,
                            .num_tasks = 5,
                            .num_machines = 2,
                            .num_users = 2});
  ASSERT_TRUE(ExtractSchemaFacts(full.schema(), &kb).ok());
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  ASSERT_TRUE(ExtractQueryFacts(q, &kb).ok());
  prolog::Solver solver(&kb);
  auto removed = solver.QueryAll("vertexRemovalSummarizer(T).");
  ASSERT_TRUE(removed.ok());
  std::set<std::string> removed_types;
  for (const auto& s : *removed) {
    removed_types.insert(s.bindings.at("T")->name());
  }
  EXPECT_EQ(removed_types,
            (std::set<std::string>{"Task", "Machine", "User"}));
  auto removed_edges = solver.QueryAll("edgeRemovalSummarizer(T).");
  ASSERT_TRUE(removed_edges.ok());
  EXPECT_EQ(removed_edges->size(), 4u);  // SPAWNS, TRANSFERS_TO, RUNS_ON, SUBMITS
}

// ---------------------------------------------------------------------------
// View enumeration (§IV-B)
// ---------------------------------------------------------------------------

TEST(EnumeratorTest, BlastRadiusCandidates) {
  GraphSchema schema = ProvSchema();
  ViewEnumerator enumerator(&schema);
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  EnumerationStats stats;
  auto candidates = enumerator.Enumerate(q, &stats);
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  std::set<std::string> names;
  for (const CandidateView& c : *candidates) names.insert(c.definition.Name());
  // The five k-hop job-to-job connectors of §IV-B...
  EXPECT_TRUE(names.count("khop2[Job->Job]"));
  EXPECT_TRUE(names.count("khop4[Job->Job]"));
  EXPECT_TRUE(names.count("khop6[Job->Job]"));
  EXPECT_TRUE(names.count("khop8[Job->Job]"));
  EXPECT_TRUE(names.count("khop10[Job->Job]"));
  // ...and no odd-k ones.
  EXPECT_FALSE(names.count("khop3[Job->Job]"));
  EXPECT_GE(stats.instantiations, stats.candidates);
  EXPECT_GT(stats.inference_steps, 0u);
}

TEST(EnumeratorTest, MaxKBoundsEnumeration) {
  GraphSchema schema = ProvSchema();
  EnumeratorOptions options;
  options.max_k = 4;
  ViewEnumerator enumerator(&schema, options);
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  auto candidates = enumerator.Enumerate(q);
  ASSERT_TRUE(candidates.ok());
  for (const CandidateView& c : *candidates) {
    if (c.definition.kind == ViewKind::kKHopConnector) {
      EXPECT_LE(c.definition.k, 4);
    }
  }
}

TEST(EnumeratorTest, FileToFileConnectorForFileQuery) {
  GraphSchema schema = ProvSchema();
  ViewEnumerator enumerator(&schema);
  query::Query q =
      ParseOrDie("MATCH (a:File)-[r*1..4]->(b:File) RETURN a, b");
  auto candidates = enumerator.Enumerate(q);
  ASSERT_TRUE(candidates.ok());
  std::set<std::string> names;
  for (const CandidateView& c : *candidates) names.insert(c.definition.Name());
  EXPECT_TRUE(names.count("khop2[File->File]"));
  EXPECT_TRUE(names.count("khop4[File->File]"));
  EXPECT_FALSE(names.count("khop2[Job->Job]"));
}

TEST(EnumeratorTest, UnconstrainedSpaceGrowsLikeMToTheK) {
  GraphSchema schema = ProvSchema();  // M = 2 edge types, one 2-cycle
  ViewEnumerator enumerator(&schema);
  auto walks4 = enumerator.CountUnconstrainedSchemaWalks(4);
  auto walks8 = enumerator.CountUnconstrainedSchemaWalks(8);
  ASSERT_TRUE(walks4.ok() && walks8.ok());
  // Job<->File: exactly one walk per (start type, length): sum over
  // k=1..max of 2 = 2*max.
  EXPECT_EQ(*walks4, 8u);
  EXPECT_EQ(*walks8, 16u);
  // Denser schema: add a second Job->File edge type; walks multiply.
  GraphSchema dense = ProvSchema();
  ASSERT_TRUE(dense.AddEdgeType("APPENDS_TO", "Job", "File").ok());
  ViewEnumerator dense_enum(&dense);
  auto dense_walks = dense_enum.CountUnconstrainedSchemaWalks(8);
  ASSERT_TRUE(dense_walks.ok());
  EXPECT_GT(*dense_walks, 4 * *walks8);  // super-linear growth in M
}

TEST(EnumeratorTest, ProceduralBaselineMatchesWalkCounts) {
  GraphSchema schema = ProvSchema();
  // Alg. 1 builds the set of k-length schema paths; on the 2-type cycle
  // there is exactly one k-path per start type.
  EXPECT_EQ(ViewEnumerator::ProceduralKHopSchemaPaths(schema, 1), 2u);
  EXPECT_EQ(ViewEnumerator::ProceduralKHopSchemaPaths(schema, 2), 2u);
  EXPECT_EQ(ViewEnumerator::ProceduralKHopSchemaPaths(schema, 5), 2u);
}

// ---------------------------------------------------------------------------
// Size estimation (§V-A, Eq. 1-3)
// ---------------------------------------------------------------------------

TEST(SizeEstimatorTest, ErdosRenyiOnCompleteDigraph) {
  // K4 complete digraph: n=4, m=12. 2-length simple paths: 4*3*2 = 24.
  // ER expectation: C(4,3) * (12/6)^2 = 4 * 4 = 16 (model underestimates
  // because it ignores ordering of the k+1 subset -- still same order).
  double est = ErdosRenyiPathEstimate(4, 12, 2);
  EXPECT_NEAR(est, 16.0, 1e-6);
  EXPECT_EQ(ErdosRenyiPathEstimate(4, 0, 2), 0);
  EXPECT_EQ(ErdosRenyiPathEstimate(2, 1, 5), 0);  // k+1 > n
  EXPECT_GT(ErdosRenyiPathEstimate(1'000'000'000, 10'000'000'000ull, 2), 0);
}

TEST(SizeEstimatorTest, HomogeneousEstimatorTracksActualOnSocialGraph) {
  PropertyGraph g = datasets::MakeSocialGraph(
      datasets::SocialOptions{.num_vertices = 2000, .edges_per_vertex = 5});
  graph::GraphStats stats = graph::GraphStats::Compute(g);
  uint64_t actual = graph::CountSimpleKPaths(g, 2, 20'000'000);
  double lo = HomogeneousPathEstimate(stats, 2, 50);
  double hi = HomogeneousPathEstimate(stats, 2, 95);
  EXPECT_GT(hi, lo);
  // Power-law out-degrees: the median-based estimate sits below the
  // actual count and the 95th-percentile one brackets it from above
  // within an order of magnitude (the Fig. 5 shape).
  EXPECT_LT(lo, static_cast<double>(actual));
  EXPECT_GT(hi * 10, static_cast<double>(actual));
}

TEST(SizeEstimatorTest, ErdosRenyiUnderestimatesPowerLawGraphs) {
  // The §V-A claim: Eq. (1)'s uniform-edge assumption underestimates
  // path counts on skewed graphs, increasingly so as the tail gets
  // heavier (hub degrees enter the true count as deg^k).
  PropertyGraph g = datasets::MakeSocialGraph(
      datasets::SocialOptions{.num_vertices = 2000,
                              .edges_per_vertex = 5,
                              .zipf_alpha = 1.7,
                              .max_fanout = 400});
  uint64_t actual = graph::CountSimple2Paths(g);
  double er = ErdosRenyiPathEstimate(g.NumVertices(), g.NumEdges(), 2);
  EXPECT_LT(er * 5, static_cast<double>(actual));
}

TEST(SizeEstimatorTest, HeterogeneousSumsOverSourceTypes) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 500,
                            .num_files = 1200,
                            .include_auxiliary = false});
  graph::GraphStats stats = graph::GraphStats::Compute(g);
  uint64_t actual = graph::CountSimpleKPaths(g, 2, 500'000'000);
  double hi = HeterogeneousPathEstimate(g, stats, 2, 95);
  double max_est = HeterogeneousPathEstimate(g, stats, 2, 100);
  EXPECT_GT(max_est, hi * 0.99);
  // alpha=100 is a true upper bound (§V-A).
  EXPECT_GE(max_est, static_cast<double>(actual));
  // Dispatch picks the heterogeneous formula.
  EXPECT_EQ(EstimateKPathCount(g, stats, 2, 95), hi);
}

TEST(SizeEstimatorTest, SummarizerSizesAreExactTypeCounts) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 100, .num_files = 200});
  graph::GraphStats stats = graph::GraphStats::Compute(g);
  ViewDefinition inclusion;
  inclusion.kind = ViewKind::kVertexInclusionSummarizer;
  inclusion.type_list = {"Job", "File"};
  double est = EstimateViewSizeEdges(g, stats, inclusion, 95);
  size_t expected = g.NumEdgesOfType(g.schema().FindEdgeType("WRITES_TO")) +
                    g.NumEdgesOfType(g.schema().FindEdgeType("IS_READ_BY"));
  EXPECT_DOUBLE_EQ(est, static_cast<double>(expected));

  ViewDefinition removal;
  removal.kind = ViewKind::kEdgeRemovalSummarizer;
  removal.type_list = {"SUBMITS"};
  double est2 = EstimateViewSizeEdges(g, stats, removal, 95);
  EXPECT_DOUBLE_EQ(
      est2, static_cast<double>(
                g.NumEdges() -
                g.NumEdgesOfType(g.schema().FindEdgeType("SUBMITS"))));
}

// ---------------------------------------------------------------------------
// Knapsack (§V-B)
// ---------------------------------------------------------------------------

TEST(KnapsackTest, SmallExactInstance) {
  std::vector<KnapsackItem> items{{60, 10}, {100, 20}, {120, 30}};
  KnapsackResult result = SolveKnapsackBranchAndBound(items, 50);
  EXPECT_DOUBLE_EQ(result.total_value, 220);  // items 1 + 2
  EXPECT_EQ(result.selected, (std::vector<size_t>{1, 2}));
}

TEST(KnapsackTest, GreedyIsSuboptimalWhereBnBIsNot) {
  // Classic density trap: greedy takes the densest item first (value 10,
  // weight 5) and then cannot fit either remaining item.
  std::vector<KnapsackItem> items{{10, 5}, {6, 4}, {6, 4}};
  KnapsackResult greedy = SolveKnapsackGreedy(items, 8);
  KnapsackResult exact = SolveKnapsackBranchAndBound(items, 8);
  EXPECT_DOUBLE_EQ(greedy.total_value, 10);
  EXPECT_DOUBLE_EQ(exact.total_value, 12);
}

TEST(KnapsackTest, EdgeCases) {
  EXPECT_TRUE(SolveKnapsackBranchAndBound({}, 10).selected.empty());
  std::vector<KnapsackItem> items{{5, 100}};
  EXPECT_TRUE(SolveKnapsackBranchAndBound(items, 10).selected.empty());
  std::vector<KnapsackItem> zero_weight{{5, 0}, {3, 0}};
  KnapsackResult r = SolveKnapsackBranchAndBound(zero_weight, 1);
  EXPECT_DOUBLE_EQ(r.total_value, 8);
  std::vector<KnapsackItem> zero_value{{0, 1}};
  EXPECT_TRUE(SolveKnapsackBranchAndBound(zero_value, 10).selected.empty());
}

/// Property sweep: branch-and-bound matches exact DP on random instances.
class KnapsackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackPropertyTest, BnBMatchesDP) {
  uint64_t x = static_cast<uint64_t>(GetParam()) * 2654435761u + 1;
  auto next = [&x]() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 33;
  };
  std::vector<KnapsackItem> items;
  size_t n = 5 + next() % 12;
  for (size_t i = 0; i < n; ++i) {
    // Integer weights so the scaled DP is exact.
    items.push_back(KnapsackItem{static_cast<double>(1 + next() % 100),
                                 static_cast<double>(1 + next() % 20)});
  }
  double capacity = static_cast<double>(20 + next() % 60);
  KnapsackResult bnb = SolveKnapsackBranchAndBound(items, capacity);
  KnapsackResult dp = SolveKnapsackDP(items, capacity,
                                      static_cast<size_t>(capacity));
  EXPECT_DOUBLE_EQ(bnb.total_value, dp.total_value)
      << "seed=" << GetParam() << " n=" << n << " cap=" << capacity;
  EXPECT_LE(bnb.total_weight, capacity);
  EXPECT_LE(dp.total_weight, capacity);
  // Greedy never beats the exact solvers.
  KnapsackResult greedy = SolveKnapsackGreedy(items, capacity);
  EXPECT_LE(greedy.total_value, bnb.total_value + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KnapsackPropertyTest,
                         ::testing::Range(1, 26));

// ---------------------------------------------------------------------------
// Rewriter (§V-C)
// ---------------------------------------------------------------------------

ViewDefinition JobToJob2Hop() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

TEST(RewriterTest, ChainExtraction) {
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  auto chain = ExtractChain(*q.InnermostMatch());
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_EQ(chain->node_names,
            (std::vector<std::string>{"q_j1", "q_f1", "q_f2", "q_j2"}));
  EXPECT_EQ(chain->min_total_hops, 2);   // 1 + 0 + 1
  EXPECT_EQ(chain->max_total_hops, 10);  // 1 + 8 + 1
}

TEST(RewriterTest, BranchingPatternsRejected) {
  query::Query q = ParseOrDie(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (a:Job)-[:WRITES_TO]->(g:File) "
      "RETURN a");
  EXPECT_FALSE(ExtractChain(*q.InnermostMatch()).ok());
}

TEST(RewriterTest, ListingOneBecomesListingFour) {
  GraphSchema schema = ProvSchema();
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  auto rewritten = RewriteQueryWithView(q, JobToJob2Hop(), schema);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  const query::MatchQuery* match = rewritten->InnermostMatch();
  ASSERT_NE(match, nullptr);
  ASSERT_EQ(match->edges.size(), 1u);
  EXPECT_EQ(match->edges[0].type, "2_HOP_JOB_TO_JOB");
  EXPECT_TRUE(match->edges[0].variable_length);
  // Exact contraction of raw hop range 2..10 with k = 2: *1..5 (see the
  // rewriter.h note on the paper's *1..4).
  EXPECT_EQ(match->edges[0].min_hops, 1);
  EXPECT_EQ(match->edges[0].max_hops, 5);
  // Outer SELECT layers survive untouched.
  ASSERT_TRUE(rewritten->is_select());
  EXPECT_EQ(rewritten->select().group_by[0].ToString(), "A.pipelineName");
}

TEST(RewriterTest, RewriteWorksOnFullRawSchemaToo) {
  // Tasks/machines are type-reachable from Job but can never lie on a
  // job-to-job path; the co-reachability analysis must see through that.
  PropertyGraph raw = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 5, .num_files = 5, .num_tasks = 5});
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  auto rewritten = RewriteQueryWithView(q, JobToJob2Hop(), raw.schema());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
}

TEST(RewriterTest, InteriorVertexReturnedBlocksRewrite) {
  GraphSchema schema = ProvSchema();
  query::Query q = ParseOrDie(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, f, b");
  EXPECT_FALSE(RewriteQueryWithView(q, JobToJob2Hop(), schema).ok());
}

TEST(RewriterTest, InteriorConditionBlocksRewrite) {
  GraphSchema schema = ProvSchema();
  query::Query q = ParseOrDie(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "WHERE f.bytes > 100 RETURN a, b");
  EXPECT_FALSE(RewriteQueryWithView(q, JobToJob2Hop(), schema).ok());
}

TEST(RewriterTest, NonForcedEdgeTypeBlocksRewrite) {
  GraphSchema schema = ProvSchema();
  ASSERT_TRUE(schema.AddEdgeType("APPENDS_TO", "Job", "File").ok());
  query::Query q = ParseOrDie(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b");
  // WRITES_TO is no longer the unique Job->File type: contraction over
  // "any 2-hop path" would also cover APPENDS_TO paths.
  EXPECT_FALSE(RewriteQueryWithView(q, JobToJob2Hop(), schema).ok());
}

TEST(RewriterTest, EndpointTypeMismatchBlocksRewrite) {
  GraphSchema schema = ProvSchema();
  query::Query q =
      ParseOrDie("MATCH (a:File)-[r*2..2]->(b:File) RETURN a, b");
  EXPECT_FALSE(RewriteQueryWithView(q, JobToJob2Hop(), schema).ok());
  ViewDefinition file_view = JobToJob2Hop();
  file_view.source_type = "File";
  file_view.target_type = "File";
  EXPECT_TRUE(RewriteQueryWithView(q, file_view, schema).ok());
}

TEST(RewriterTest, HopRangeWithoutMultipleOfKBlocksRewrite) {
  GraphSchema schema = ProvSchema();
  // Job-to-file paths have odd lengths; a 2-hop job connector can't help.
  query::Query q =
      ParseOrDie("MATCH (a:Job)-[r*1..1]->(b:File) RETURN a, b");
  EXPECT_FALSE(RewriteQueryWithView(q, JobToJob2Hop(), schema).ok());
}

TEST(RewriterTest, SummarizerIdentityRewrite) {
  PropertyGraph raw = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 5, .num_files = 5, .num_tasks = 5});
  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  EXPECT_TRUE(SummarizerCoversQuery(filter, q, raw.schema()));
  auto rewritten = RewriteQueryWithView(q, filter, raw.schema());
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->ToString(), q.ToString());
  // A summarizer dropping File cannot serve the query.
  ViewDefinition bad;
  bad.kind = ViewKind::kVertexInclusionSummarizer;
  bad.type_list = {"Job", "Task"};
  EXPECT_FALSE(SummarizerCoversQuery(bad, q, raw.schema()));
}

TEST(RewriterTest, VertexRemovalCoverage) {
  PropertyGraph raw = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 5, .num_files = 5, .num_tasks = 5});
  ViewDefinition removal;
  removal.kind = ViewKind::kVertexRemovalSummarizer;
  removal.type_list = {"Task", "Machine", "User"};
  query::Query q = ParseOrDie(datasets::BlastRadiusQueryText());
  EXPECT_TRUE(SummarizerCoversQuery(removal, q, raw.schema()));
  removal.type_list = {"File"};
  EXPECT_FALSE(SummarizerCoversQuery(removal, q, raw.schema()));
}

// ---------------------------------------------------------------------------
// Materializer (§V-B)
// ---------------------------------------------------------------------------

TEST(MaterializerTest, VertexInclusionFiltersProvGraph) {
  PropertyGraph raw = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 50, .num_files = 100,
                            .num_tasks = 80});
  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto view = Materialize(raw, filter);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->graph.NumVertices(), 150u);
  size_t lineage_edges =
      raw.NumEdgesOfType(raw.schema().FindEdgeType("WRITES_TO")) +
      raw.NumEdgesOfType(raw.schema().FindEdgeType("IS_READ_BY"));
  EXPECT_EQ(view->graph.NumEdges(), lineage_edges);
  EXPECT_EQ(view->graph.schema().num_vertex_types(), 2u);
  // Properties carried over, plus lineage.
  EXPECT_FALSE(view->graph.VertexProperty(0, "orig_id").is_null());
}

TEST(MaterializerTest, EdgeRemovalKeepsVertices) {
  PropertyGraph raw = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 20, .num_files = 30,
                            .num_tasks = 10});
  ViewDefinition removal;
  removal.kind = ViewKind::kEdgeRemovalSummarizer;
  removal.type_list = {"SUBMITS", "RUNS_ON"};
  auto view = Materialize(raw, removal);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->graph.NumVertices(), raw.NumVertices());
  EXPECT_EQ(view->graph.NumEdges(),
            raw.NumEdges() -
                raw.NumEdgesOfType(raw.schema().FindEdgeType("SUBMITS")) -
                raw.NumEdgesOfType(raw.schema().FindEdgeType("RUNS_ON")));
}

TEST(MaterializerTest, ConnectorDelegatesToContraction) {
  PropertyGraph filtered = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 50, .num_files = 100,
                            .include_auxiliary = false});
  auto view = Materialize(filtered, JobToJob2Hop());
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_GT(view->graph.NumEdges(), 0u);
  EXPECT_EQ(view->graph.schema().edge_type(0).name, "2_HOP_JOB_TO_JOB");
  // Every view vertex is a Job.
  for (graph::VertexId v = 0; v < view->graph.NumVertices(); ++v) {
    EXPECT_EQ(view->graph.VertexTypeName(v), "Job");
  }
}

TEST(MaterializerTest, VertexAggregatorGroupsByProperty) {
  PropertyGraph filtered = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 40, .num_files = 60,
                            .include_auxiliary = false});
  ViewDefinition agg;
  agg.kind = ViewKind::kVertexAggregatorSummarizer;
  agg.source_type = "Job";
  agg.group_by_property = "pipelineName";
  auto view = Materialize(filtered, agg);
  ASSERT_TRUE(view.ok()) << view.status();
  // 20 pipelines (or fewer) supervertices + all files.
  size_t file_count = filtered.NumVerticesOfType(
      filtered.schema().FindVertexType("File"));
  EXPECT_LE(view->graph.NumVertices(), 20 + file_count);
  EXPECT_LT(view->graph.NumVertices(), filtered.NumVertices());
  // Supervertices carry member counts and summed CPU.
  graph::VertexTypeId job_t = view->graph.schema().FindVertexType("Job");
  bool found_members = false;
  for (graph::VertexId v = 0; v < view->graph.NumVertices(); ++v) {
    if (view->graph.VertexType(v) == job_t &&
        !view->graph.VertexProperty(v, "members").is_null()) {
      found_members = true;
      EXPECT_FALSE(view->graph.VertexProperty(v, "CPU").is_null());
    }
  }
  EXPECT_TRUE(found_members);
}

TEST(MaterializerTest, UnknownTypesRejected) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 5, .num_files = 5});
  ViewDefinition bad = JobToJob2Hop();
  bad.source_type = "Nope";
  EXPECT_FALSE(Materialize(g, bad).ok());
  ViewDefinition bad2;
  bad2.kind = ViewKind::kVertexInclusionSummarizer;
  bad2.type_list = {"Nope"};
  EXPECT_FALSE(Materialize(g, bad2).ok());
}

TEST(ViewDefinitionTest, NamesAndCypherRendering) {
  ViewDefinition v = JobToJob2Hop();
  EXPECT_EQ(v.Name(), "khop2[Job->Job]");
  EXPECT_EQ(v.EdgeName(), "2_HOP_JOB_TO_JOB");
  EXPECT_NE(v.ToCypher().find("MERGE (x)-[:2_HOP_JOB_TO_JOB]->(y)"),
            std::string::npos);
  ViewDefinition s;
  s.kind = ViewKind::kVertexInclusionSummarizer;
  s.type_list = {"Job", "File"};
  EXPECT_EQ(s.Name(), "vinc[Job,File]");
  EXPECT_TRUE(IsConnector(v.kind));
  EXPECT_FALSE(IsConnector(s.kind));
}

}  // namespace
}  // namespace kaskade::core
