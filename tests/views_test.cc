// Tests for the remaining Table I/II view kinds (same-edge-type
// connectors, source-to-sink connectors, subgraph aggregators), the
// facade's view-refresh path, and executor/traversal equivalence sweeps.

#include <gtest/gtest.h>

#include <set>

#include "core/enumerator.h"
#include "core/engine.h"
#include "core/materializer.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/algorithms.h"
#include "query/executor.h"
#include "query/parser.h"

namespace kaskade::core {
namespace {

using graph::GraphSchema;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Same-edge-type connectors (Table I row 3)
// ---------------------------------------------------------------------------

TEST(SameEdgeTypeConnectorTest, EnumeratedForTypedVarLengthQuery) {
  PropertyGraph road = datasets::MakeRoadGraph({.width = 5, .height = 5});
  ViewEnumerator enumerator(&road.schema());
  auto q = query::ParseQueryText(
      "MATCH (a:Intersection)-[:ROAD*1..5]->(b:Intersection) RETURN a, b");
  ASSERT_TRUE(q.ok());
  auto candidates = enumerator.Enumerate(*q);
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  bool found = false;
  for (const CandidateView& c : *candidates) {
    if (c.definition.kind == ViewKind::kSameEdgeTypeConnector) {
      found = true;
      EXPECT_EQ(c.definition.path_edge_type, "ROAD");
      EXPECT_EQ(c.definition.source_type, "Intersection");
    }
  }
  EXPECT_TRUE(found);
  // An untyped variable-length query does not produce one.
  auto untyped = query::ParseQueryText(
      "MATCH (a:Intersection)-[r*1..5]->(b:Intersection) RETURN a, b");
  ASSERT_TRUE(untyped.ok());
  auto candidates2 = enumerator.Enumerate(*untyped);
  ASSERT_TRUE(candidates2.ok());
  for (const CandidateView& c : *candidates2) {
    EXPECT_NE(c.definition.kind, ViewKind::kSameEdgeTypeConnector);
  }
}

TEST(SameEdgeTypeConnectorTest, MaterializesOnlyThatType) {
  // Mixed-type homogeneous-ish graph: ROAD edges chain, FERRY edges too.
  GraphSchema schema;
  schema.AddVertexType("Place");
  ASSERT_TRUE(schema.AddEdgeType("ROAD", "Place", "Place").ok());
  ASSERT_TRUE(schema.AddEdgeType("FERRY", "Place", "Place").ok());
  PropertyGraph g(schema);
  for (int i = 0; i < 5; ++i) g.AddVertexOfType(0);
  ASSERT_TRUE(g.AddEdge(0, 1, "ROAD").ok());
  ASSERT_TRUE(g.AddEdge(1, 2, "ROAD").ok());
  ASSERT_TRUE(g.AddEdge(2, 3, "FERRY").ok());
  ASSERT_TRUE(g.AddEdge(3, 4, "ROAD").ok());

  ViewDefinition def;
  def.kind = ViewKind::kSameEdgeTypeConnector;
  def.k = 8;
  def.path_edge_type = "ROAD";
  def.source_type = "Place";
  def.target_type = "Place";
  auto view = Materialize(g, def);
  ASSERT_TRUE(view.ok()) << view.status();
  // Road-only reachability pairs: 0->1, 0->2, 1->2, 3->4 (the ferry
  // breaks the chain at 2->3).
  EXPECT_EQ(view->graph.NumEdges(), 4u);
}

// ---------------------------------------------------------------------------
// Source-to-sink connectors (Table I row 4)
// ---------------------------------------------------------------------------

TEST(SourceToSinkTest, EnumeratedForDagShapedQuery) {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  ASSERT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  ASSERT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
  ViewEnumerator enumerator(&schema);
  // q_j1 is a query source; q_j2 a query sink.
  auto q = query::ParseQueryText(datasets::BlastRadiusQueryText());
  ASSERT_TRUE(q.ok());
  auto candidates = enumerator.Enumerate(*q);
  ASSERT_TRUE(candidates.ok());
  bool found = false;
  for (const CandidateView& c : *candidates) {
    if (c.definition.kind == ViewKind::kSourceToSinkConnector) {
      found = true;
      EXPECT_EQ(c.definition.source_type, "Job");
      EXPECT_EQ(c.definition.target_type, "Job");
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Subgraph aggregator (Table II row 7)
// ---------------------------------------------------------------------------

TEST(SubgraphAggregatorTest, GroupsAllTypesByProperty) {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  ASSERT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  PropertyGraph g(schema);
  // Two "regions", each with 2 jobs and 2 files; one untagged file.
  std::vector<VertexId> jobs, files;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        g.AddVertex("Job", {{"region", PropertyValue(i < 2 ? "east" : "west")},
                            {"CPU", PropertyValue(10.0)}})
            .value());
  }
  for (int i = 0; i < 4; ++i) {
    files.push_back(
        g.AddVertex("File",
                    {{"region", PropertyValue(i < 2 ? "east" : "west")}})
            .value());
  }
  VertexId loose = g.AddVertex("File").value();  // no region property
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.AddEdge(jobs[i], files[i], "WRITES_TO").ok());
  }
  ASSERT_TRUE(g.AddEdge(jobs[0], loose, "WRITES_TO").ok());

  ViewDefinition def;
  def.kind = ViewKind::kSubgraphAggregatorSummarizer;
  def.group_by_property = "region";
  auto view = Materialize(g, def);
  ASSERT_TRUE(view.ok()) << view.status();
  // Supervertices: Job/east, Job/west, File/east, File/west + loose file.
  EXPECT_EQ(view->graph.NumVertices(), 5u);
  // Edges: east job-super -> east file-super (weight 2), west pair
  // (weight 2), east job-super -> loose (weight 1).
  EXPECT_EQ(view->graph.NumEdges(), 3u);
  // Numeric properties summed: each Job supervertex has CPU 20.
  graph::VertexTypeId job_t = view->graph.schema().FindVertexType("Job");
  for (VertexId v = 0; v < view->graph.NumVertices(); ++v) {
    if (view->graph.VertexType(v) == job_t) {
      EXPECT_EQ(view->graph.VertexProperty(v, "CPU"), PropertyValue(20.0));
      EXPECT_EQ(view->graph.VertexProperty(v, "members"), PropertyValue(2));
    }
  }
  EXPECT_EQ(def.Name(), "sagg[by region]");
}

TEST(SubgraphAggregatorTest, CommunityCompression) {
  // The Q7/Q8-flavored use: detect communities, then compress each into
  // a supervertex.
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 60, .num_files = 120, .include_auxiliary = false});
  auto communities = graph::LabelPropagation(g, 10);
  PropertyGraph tagged = g;  // copy, then tag
  for (VertexId v = 0; v < tagged.NumVertices(); ++v) {
    ASSERT_TRUE(tagged
                    .SetVertexProperty(
                        v, "community",
                        PropertyValue(static_cast<int64_t>(
                            communities.label[v])))
                    .ok());
  }
  ViewDefinition def;
  def.kind = ViewKind::kSubgraphAggregatorSummarizer;
  def.group_by_property = "community";
  auto view = Materialize(tagged, def);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_LT(view->graph.NumVertices(), tagged.NumVertices());
  EXPECT_LE(view->graph.NumEdges(), tagged.NumEdges());
  // At most 2 supervertices per community (Job + File), and no more
  // supervertices than 2x communities.
  EXPECT_LE(view->graph.NumVertices(), 2 * communities.num_communities);
}

// ---------------------------------------------------------------------------
// Facade refresh
// ---------------------------------------------------------------------------

TEST(EngineRefreshTest, ViewsFollowBaseGraphAppends) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .include_auxiliary = false});
  Engine engine(std::move(base));
  ViewDefinition connector;
  connector.kind = ViewKind::kKHopConnector;
  connector.k = 2;
  connector.source_type = "Job";
  connector.target_type = "Job";
  ASSERT_TRUE(engine.AddMaterializedView(connector).ok());
  size_t edges_before =
      engine.catalog().Entries().front()->view.graph.NumEdges();

  // Append a new job consuming two existing files' outputs.
  Status mutation = engine.MutateBaseGraph([](graph::PropertyGraph* g) {
    VertexId new_job =
        g->AddVertex("Job", {{"CPU", PropertyValue(5.0)}}).value();
    graph::VertexTypeId file_t = g->schema().FindVertexType("File");
    std::vector<VertexId> files = g->VerticesOfType(file_t);
    size_t linked = 0;
    for (VertexId f : files) {
      if (g->InDegree(f) > 0 && linked < 2) {  // written by someone
        auto edge = g->AddEdge(f, new_job, "IS_READ_BY");
        if (!edge.ok()) return edge.status();
        ++linked;
      }
    }
    return linked == 2 ? Status::OK()
                       : Status::Internal("expected two linkable files");
  });
  ASSERT_TRUE(mutation.ok()) << mutation;
  ASSERT_TRUE(engine.RefreshViews().ok());
  size_t edges_after =
      engine.catalog().Entries().front()->view.graph.NumEdges();
  EXPECT_GT(edges_after, edges_before);

  // The refreshed view equals a from-scratch materialization.
  auto scratch = Materialize(engine.base_graph(), connector);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(edges_after, scratch->graph.NumEdges());

  // And queries through the engine see the new job's ancestors.
  auto result = engine.Execute(datasets::AncestorsQueryText("Job", 4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->used_view);
}

TEST(EngineRefreshTest, UnsupportedKindsRematerialize) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 20, .num_files = 40, .include_auxiliary = false});
  Engine engine(std::move(base));
  ViewDefinition agg;
  agg.kind = ViewKind::kVertexAggregatorSummarizer;
  agg.source_type = "Job";
  agg.group_by_property = "pipelineName";
  ASSERT_TRUE(engine.AddMaterializedView(agg).ok());

  ASSERT_TRUE(engine
                  .MutateBaseGraph([](graph::PropertyGraph* g) {
                    return g
                        ->AddVertex("Job",
                                    {{"pipelineName",
                                      PropertyValue("brand_new")},
                                     {"CPU", PropertyValue(1.0)}})
                        .status();
                  })
                  .ok());
  ASSERT_TRUE(engine.RefreshViews().ok());
  // The new pipeline's supervertex exists after refresh.
  const PropertyGraph& vg = engine.catalog().Entries().front()->view.graph;
  bool found = false;
  for (VertexId v = 0; v < vg.NumVertices(); ++v) {
    if (vg.VertexProperty(v, "pipelineName") == PropertyValue("brand_new")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Executor vs algorithmic-BFS equivalence sweep
// ---------------------------------------------------------------------------

/// The query executor's variable-length expansion must agree with the
/// library BFS on reachability, across datasets and hop counts.
class TraversalEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TraversalEquivalenceTest, VarLengthMatchesBoundedBfs) {
  auto [dataset, hops] = GetParam();
  PropertyGraph g = dataset == 0
                        ? datasets::MakeSocialGraph({.num_vertices = 150})
                        : datasets::MakeRoadGraph({.width = 10, .height = 10});
  const std::string type_name = dataset == 0 ? "Person" : "Intersection";
  query::QueryExecutor executor(&g);
  auto result = executor.ExecuteText(
      "MATCH (a:" + type_name + ")-[r*1.." + std::to_string(hops) + "]->(b:" +
      type_name + ") RETURN a, b");
  ASSERT_TRUE(result.ok()) << result.status();

  // Count pairs per source from the query result. Self-pairs (a round
  // trip back to the source, which reciprocal graphs admit) are excluded
  // because CountReachable by definition never re-counts the source;
  // closed-walk semantics has its own tests.
  std::map<int64_t, size_t> query_pairs;
  for (const auto& row : result->rows()) {
    if (row[0] == row[1]) continue;
    ++query_pairs[row[0].as_int()];
  }
  graph::TraversalOptions options;
  options.max_hops = hops;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    size_t expected = graph::CountReachable(g, v, options);
    auto it = query_pairs.find(static_cast<int64_t>(v));
    size_t got = it == query_pairs.end() ? 0 : it->second;
    ASSERT_EQ(got, expected) << "vertex " << v << " hops " << hops;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraversalEquivalenceTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace kaskade::core
