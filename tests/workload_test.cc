// Tests for the serving workload harness (src/workload/): spec text
// round-trips and malformed-spec rejection, byte-reproducible op
// generation, HDR-style histogram percentile accuracy, and a short
// multi-threaded mixed-traffic integration run against a live engine
// checking result integrity and telemetry counter balance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/generators.h"
#include "workload/generator.h"
#include "workload/metrics.h"
#include "workload/orchestrator.h"
#include "workload/spec.h"

namespace kaskade::workload {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

WorkloadSpec TwoPhaseSpec() {
  WorkloadSpec spec;
  spec.name = "roundtrip";
  spec.seed = 99;
  spec.dataset = "prov";
  PhaseSpec warm;
  warm.name = "warm";
  warm.threads = 4;
  warm.rate_ops_per_sec = 0;
  warm.ops_per_thread = 2000;
  warm.mix[size_t(OpKind::kExecute)] = 90;
  warm.mix[size_t(OpKind::kExecuteBatch)] = 10;
  PhaseSpec churn;
  churn.name = "churn";
  churn.threads = 2;
  churn.rate_ops_per_sec = 1250.5;
  churn.duration_ms = 1500;
  churn.mix[size_t(OpKind::kExecute)] = 70;
  churn.mix[size_t(OpKind::kApplyDelta)] = 20;
  churn.mix[size_t(OpKind::kMutateBase)] = 5;
  churn.mix[size_t(OpKind::kAutoAdvise)] = 5;
  churn.batch_size = 4;
  churn.delta_edges = 32;
  spec.phases = {warm, churn};
  return spec;
}

TEST(WorkloadSpecTest, RoundTripsThroughText) {
  const WorkloadSpec spec = TwoPhaseSpec();
  auto reparsed = ParseWorkloadSpec(spec.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, spec);
  // Canonical text is a fixed point.
  EXPECT_EQ(reparsed->ToText(), spec.ToText());
}

TEST(WorkloadSpecTest, ParsesDocExample) {
  auto spec = ParseWorkloadSpec(R"(
# comments run to end of line
workload serving_mixed
seed 42
dataset social
phase warmup
  threads 4
  rate 0
  ops_per_thread 2000   # closed loop
  mix execute=90 execute_batch=10
end
)");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "serving_mixed");
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->dataset, "social");
  ASSERT_EQ(spec->phases.size(), 1u);
  const PhaseSpec& phase = spec->phases[0];
  EXPECT_EQ(phase.name, "warmup");
  EXPECT_EQ(phase.threads, 4u);
  EXPECT_EQ(phase.rate_ops_per_sec, 0);
  EXPECT_EQ(phase.ops_per_thread, 2000u);
  EXPECT_EQ(phase.weight(OpKind::kExecute), 90);
  EXPECT_EQ(phase.weight(OpKind::kExecuteBatch), 10);
  EXPECT_EQ(phase.weight(OpKind::kApplyDelta), 0);
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  const struct {
    const char* label;
    const char* text;
  } kCases[] = {
      {"no phases", "workload w\nseed 1\ndataset social\n"},
      {"unknown dataset",
       "dataset road\nphase p\n ops_per_thread 1\n mix execute=1\nend\n"},
      {"both stopping rules",
       "phase p\n ops_per_thread 5\n duration_ms 5\n mix execute=1\nend\n"},
      {"no stopping rule", "phase p\n mix execute=1\nend\n"},
      {"zero threads",
       "phase p\n threads 0\n ops_per_thread 1\n mix execute=1\nend\n"},
      {"unknown phase key",
       "phase p\n ops_per_thread 1\n warmth 9\n mix execute=1\nend\n"},
      {"unknown op in mix",
       "phase p\n ops_per_thread 1\n mix analyze=1\nend\n"},
      {"negative weight",
       "phase p\n ops_per_thread 1\n mix execute=-2\nend\n"},
      {"all-zero mix", "phase p\n ops_per_thread 1\n mix execute=0\nend\n"},
      {"unterminated phase", "phase p\n ops_per_thread 1\n mix execute=1\n"},
      {"end outside phase", "end\n"},
      {"garbage number", "seed banana\n"},
  };
  for (const auto& test_case : kCases) {
    auto spec = ParseWorkloadSpec(test_case.text);
    EXPECT_FALSE(spec.ok()) << "accepted: " << test_case.label;
  }
}

TEST(WorkloadSpecTest, ParseErrorsCarryLineNumbers) {
  auto spec = ParseWorkloadSpec("workload w\nseed banana\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos)
      << spec.status();
}

// ---------------------------------------------------------------------------
// Deterministic generation
// ---------------------------------------------------------------------------

GeneratorProfile TestProfile() {
  GeneratorProfile profile;
  profile.dataset = "social";
  for (graph::VertexId v = 0; v < 50; ++v) {
    profile.delta_sources.push_back(v);
  }
  profile.delta_targets = profile.delta_sources;
  profile.insert_edge_type = "FOLLOWS";
  return profile;
}

PhaseSpec MixedPhase() {
  PhaseSpec phase;
  phase.name = "mixed";
  phase.threads = 2;
  phase.ops_per_thread = 300;
  phase.mix[size_t(OpKind::kExecute)] = 60;
  phase.mix[size_t(OpKind::kExecuteBatch)] = 10;
  phase.mix[size_t(OpKind::kApplyDelta)] = 20;
  phase.mix[size_t(OpKind::kMutateBase)] = 10;
  phase.batch_size = 4;
  phase.delta_edges = 8;
  return phase;
}

uint64_t DigestOfStream(const GeneratorProfile& profile,
                        const PhaseSpec& phase, uint64_t seed,
                        size_t phase_index, size_t thread_index, int ops) {
  OpGenerator gen(&profile, &phase, seed, phase_index, thread_index);
  uint64_t digest = 0;
  for (int i = 0; i < ops; ++i) digest = OpDigest(gen.Next(), digest);
  return digest;
}

TEST(OpGeneratorTest, SameSeedSameStream) {
  const GeneratorProfile profile = TestProfile();
  const PhaseSpec phase = MixedPhase();

  // Two generators with identical coordinates produce identical op
  // sequences — compared op by op, not just by digest.
  OpGenerator a(&profile, &phase, 7, 1, 0);
  OpGenerator b(&profile, &phase, 7, 1, 0);
  uint64_t digest_a = 0;
  uint64_t digest_b = 0;
  for (int i = 0; i < 200; ++i) {
    Op op_a = a.Next();
    Op op_b = b.Next();
    ASSERT_EQ(op_a.kind, op_b.kind) << "op " << i;
    ASSERT_EQ(op_a.query.text, op_b.query.text) << "op " << i;
    digest_a = OpDigest(op_a, digest_a);
    digest_b = OpDigest(op_b, digest_b);
  }
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_NE(digest_a, 0u);
}

TEST(OpGeneratorTest, StreamsDifferAcrossSeedPhaseAndThread) {
  const GeneratorProfile profile = TestProfile();
  const PhaseSpec phase = MixedPhase();
  const uint64_t base = DigestOfStream(profile, phase, 7, 1, 0, 200);
  EXPECT_NE(DigestOfStream(profile, phase, 8, 1, 0, 200), base);
  EXPECT_NE(DigestOfStream(profile, phase, 7, 2, 0, 200), base);
  EXPECT_NE(DigestOfStream(profile, phase, 7, 1, 1, 200), base);
}

TEST(OpGeneratorTest, QueriesAreSkewedTowardHotParameters) {
  // Zipf parameter choice must actually concentrate traffic: the most
  // frequent generated point-lookup text should appear far more often
  // than a uniform draw over the distinct pool would allow.
  const GeneratorProfile profile = TestProfile();
  PhaseSpec phase = MixedPhase();
  OpGenerator gen(&profile, &phase, 3, 0, 0);
  std::map<std::string, int> counts;
  const int kQueries = 2000;
  for (int i = 0; i < kQueries; ++i) ++counts[gen.NextQuery().text];
  int hottest = 0;
  for (const auto& [text, count] : counts) hottest = std::max(hottest, count);
  // Uniform over >= 50 distinct point-lookup params would put ~2% on
  // each text; Zipf(1.1) puts a large multiple of that on rank 1.
  EXPECT_GT(hottest, kQueries / 20);
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, PercentilesOfUniformDistribution) {
  LatencyHistogram hist;
  const int kMax = 100000;
  for (int v = 1; v <= kMax; ++v) hist.Record(double(v));
  EXPECT_EQ(hist.count(), uint64_t(kMax));
  EXPECT_EQ(hist.min_us(), 1.0);
  EXPECT_EQ(hist.max_us(), double(kMax));
  EXPECT_NEAR(hist.mean_us(), double(kMax + 1) / 2, 1.0);
  // Bucket width is <= ~3.2% of magnitude; the percentile returns the
  // bucket's upper edge, so it is an upper bound within 4%.
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact = q * kMax;
    const double got = hist.Percentile(q);
    EXPECT_GE(got, exact - 1) << "q=" << q;
    EXPECT_LE(got, exact * 1.04) << "q=" << q;
  }
  // Extremes are exact.
  EXPECT_EQ(hist.Percentile(1.0), double(kMax));
}

TEST(LatencyHistogramTest, MergeMatchesSingleHistogram) {
  LatencyHistogram all;
  LatencyHistogram low;
  LatencyHistogram high;
  for (int v = 1; v <= 5000; ++v) {
    all.Record(double(v));
    (v <= 2500 ? low : high).Record(double(v));
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), all.count());
  EXPECT_EQ(low.min_us(), all.min_us());
  EXPECT_EQ(low.max_us(), all.max_us());
  for (double q : {0.25, 0.50, 0.75, 0.99}) {
    EXPECT_EQ(low.Percentile(q), all.Percentile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, EdgeCases) {
  LatencyHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  // Sub-microsecond values clamp to 1us; enormous values saturate.
  hist.Record(0.2);
  hist.Record(1e18);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.min_us(), 0.2);
  EXPECT_EQ(hist.max_us(), 1e18);
  EXPECT_EQ(hist.Percentile(0.25), 1.0);
}

TEST(LatencyHistogramTest, ExtremeQuantilesAreExact) {
  LatencyHistogram hist;
  hist.Record(37.5);
  hist.Record(999.25);
  hist.Record(12345.0);
  // q <= 0 answers from the exact tracked minimum, not a bucket's upper
  // edge (which would overshoot 37.5 to the edge of its bucket); q >= 1
  // is clamped to the exact maximum.
  EXPECT_EQ(hist.Percentile(0.0), 37.5);
  EXPECT_EQ(hist.Percentile(-1.0), 37.5);
  EXPECT_EQ(hist.Percentile(1.0), 12345.0);
  EXPECT_EQ(hist.Percentile(2.0), 12345.0);
  // Empty histogram: every quantile is 0, including the extremes.
  LatencyHistogram empty;
  EXPECT_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_EQ(empty.Percentile(1.0), 0.0);
  // One sample: every quantile is that sample.
  LatencyHistogram one;
  one.Record(42.0);
  for (double q : {0.0, 0.001, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(one.Percentile(q), 42.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, HostileRecordValuesStayInRange) {
  // NaN (a broken clock read) and values at or past 2^63 would make the
  // raw double->uint64 cast undefined; Record must normalize first.
  LatencyHistogram hist;
  hist.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.min_us(), 1.0);  // NaN reads as the 1us floor
  EXPECT_EQ(hist.max_us(), 1.0);
  EXPECT_EQ(hist.Percentile(0.5), 1.0);

  hist.Record(9.3e18);  // just past 2^63
  hist.Record(std::numeric_limits<double>::max());
  EXPECT_EQ(hist.count(), 3u);
  // The exact extremes keep the raw finite values; percentiles clamp to
  // them, so the saturated top bucket never leaks a bogus edge value.
  EXPECT_EQ(hist.max_us(), std::numeric_limits<double>::max());
  EXPECT_EQ(hist.Percentile(1.0), std::numeric_limits<double>::max());
  // Interior quantiles of saturated values report the clamp ceiling
  // (~2^46 us), never garbage from an undefined cast.
  const double p90 = hist.Percentile(0.9);
  EXPECT_GE(p90, 6.9e13);
  EXPECT_LE(p90, 7.1e13);
}

TEST(LatencyHistogramTest, MergePreservesExactExtremes) {
  LatencyHistogram a;
  a.Record(100.0);
  LatencyHistogram b;
  b.Record(3.25);
  b.Record(77777.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min_us(), 3.25);
  EXPECT_EQ(a.max_us(), 77777.0);
  EXPECT_EQ(a.Percentile(0.0), 3.25);
  EXPECT_EQ(a.Percentile(1.0), 77777.0);
  // Merging an empty histogram is a no-op in both directions: it must
  // not smuggle a fake 0 minimum into the target's extremes.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min_us(), 3.25);
  empty.Merge(a);
  EXPECT_EQ(empty.min_us(), 3.25);
  EXPECT_EQ(empty.max_us(), 77777.0);
}

TEST(WorkloadSpecTest, ValidationRejectsDegenerateNumericPhases) {
  // Degenerate values that only a programmatic caller (not the text
  // parser) can produce must still be rejected before a run starts: a
  // NaN rate or weight would poison pacing and mix selection silently.
  WorkloadSpec base;
  base.name = "w";
  base.dataset = "social";
  PhaseSpec phase;
  phase.name = "p";
  phase.ops_per_thread = 1;
  phase.mix[size_t(OpKind::kExecute)] = 1;
  base.phases = {phase};
  ASSERT_TRUE(ValidateWorkloadSpec(base).ok());

  WorkloadSpec nan_rate = base;
  nan_rate.phases[0].rate_ops_per_sec =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateWorkloadSpec(nan_rate).ok());

  WorkloadSpec inf_rate = base;
  inf_rate.phases[0].rate_ops_per_sec =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateWorkloadSpec(inf_rate).ok());

  WorkloadSpec nan_weight = base;
  nan_weight.phases[0].mix[size_t(OpKind::kExecute)] =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateWorkloadSpec(nan_weight).ok());

  WorkloadSpec inf_weight = base;
  inf_weight.phases[0].mix[size_t(OpKind::kApplyDelta)] =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateWorkloadSpec(inf_weight).ok());

  // All-zero mix with every other field sane: absence of any op to run.
  WorkloadSpec zero_mix = base;
  zero_mix.phases[0].mix[size_t(OpKind::kExecute)] = 0;
  EXPECT_FALSE(ValidateWorkloadSpec(zero_mix).ok());
}

// ---------------------------------------------------------------------------
// Integration: mixed traffic against a live engine
// ---------------------------------------------------------------------------

graph::PropertyGraph SmallSocial() {
  datasets::SocialOptions options;
  options.num_vertices = 300;
  options.edges_per_vertex = 3;
  return datasets::MakeSocialGraph(options);
}

TEST(WorkloadRunnerTest, MixedTrafficRunIsCleanAndBalanced) {
  core::Engine engine(SmallSocial());
  auto profile = GeneratorProfile::ForDataset("social", engine.base_graph());
  ASSERT_TRUE(profile.ok()) << profile.status();
  WorkloadRunner runner(&engine, *profile);

  auto spec = ParseWorkloadSpec(R"(
workload integration
seed 11
dataset social
phase mixed
  threads 4
  rate 0
  ops_per_thread 40
  mix execute=55 execute_batch=10 apply_delta=25 mutate_base=10
  batch_size 3
  delta_edges 8
end
)");
  ASSERT_TRUE(spec.ok()) << spec.status();

  const core::EngineTelemetry before = engine.TelemetrySnapshot();
  auto run = runner.Run(*spec);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->phases.size(), 1u);
  const PhaseResult& phase = run->phases[0];

  // Every op succeeded and passed the torn-read shape check.
  EXPECT_TRUE(phase.first_error.ok()) << phase.first_error;
  EXPECT_EQ(phase.metrics.total_failed(), 0u);
  EXPECT_EQ(phase.metrics.total_attempted(), 4u * 40u);
  EXPECT_NE(phase.op_digest, 0u);

  // Histogram counts agree with the attempt counters, op type by op
  // type, for both the corrected and the service histograms.
  for (size_t k = 0; k < kNumOpKinds; ++k) {
    const OpMetrics& op = phase.metrics.ops[k];
    EXPECT_EQ(op.latency.count(), op.attempted) << OpKindName(OpKind(k));
    EXPECT_EQ(op.service.count(), op.attempted) << OpKindName(OpKind(k));
  }
  // A 640-op mixed draw leaves every weighted op kind represented.
  EXPECT_GT(phase.metrics.of(OpKind::kExecute).attempted, 0u);
  EXPECT_GT(phase.metrics.of(OpKind::kExecuteBatch).attempted, 0u);
  EXPECT_GT(phase.metrics.of(OpKind::kApplyDelta).attempted, 0u);
  EXPECT_GT(phase.metrics.of(OpKind::kMutateBase).attempted, 0u);

  // Telemetry balance: the tracker recorded exactly one observation per
  // successful query — every Execute op plus batch_size queries per
  // ExecuteBatch op.
  const core::EngineTelemetry after = engine.TelemetrySnapshot();
  const uint64_t expected_queries =
      phase.metrics.of(OpKind::kExecute).attempted +
      3 * phase.metrics.of(OpKind::kExecuteBatch).attempted;
  EXPECT_EQ(after.queries_recorded - before.queries_recorded,
            expected_queries);
  // Catalog snapshot production balances: every production was either a
  // patch or a full build.
  EXPECT_EQ(engine.catalog().snapshot_builds(),
            engine.catalog().snapshot_patches() +
                engine.catalog().snapshot_full_builds());
  // Out-of-band mutations ran, so the runner refreshed views afterwards.
  EXPECT_GT(phase.refresh_seconds, 0.0);
}

TEST(WorkloadRunnerTest, SameSeedRunsProduceIdenticalTrafficDigests) {
  auto spec = ParseWorkloadSpec(R"(
workload repro
seed 5
dataset social
phase p1
  threads 3
  rate 0
  ops_per_thread 30
  mix execute=70 apply_delta=30
  delta_edges 6
end
phase p2
  threads 2
  rate 0
  ops_per_thread 20
  mix execute=100
end
)");
  ASSERT_TRUE(spec.ok()) << spec.status();

  auto run_once = [&]() -> std::vector<uint64_t> {
    core::Engine engine(SmallSocial());
    auto profile =
        GeneratorProfile::ForDataset("social", engine.base_graph());
    EXPECT_TRUE(profile.ok()) << profile.status();
    WorkloadRunner runner(&engine, *profile);
    auto run = runner.Run(*spec);
    EXPECT_TRUE(run.ok()) << run.status();
    std::vector<uint64_t> digests;
    for (const PhaseResult& phase : run->phases) {
      EXPECT_EQ(phase.metrics.total_failed(), 0u);
      digests.push_back(phase.op_digest);
    }
    return digests;
  };

  const std::vector<uint64_t> first = run_once();
  const std::vector<uint64_t> second = run_once();
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, second);

  // A different seed changes the traffic.
  spec->seed = 6;
  EXPECT_NE(run_once(), first);
}

TEST(WorkloadRunnerTest, RejectsDatasetMismatch) {
  core::Engine engine(SmallSocial());
  auto profile = GeneratorProfile::ForDataset("social", engine.base_graph());
  ASSERT_TRUE(profile.ok()) << profile.status();
  WorkloadRunner runner(&engine, *profile);

  WorkloadSpec spec;
  spec.dataset = "prov";
  PhaseSpec phase;
  phase.name = "p";
  phase.ops_per_thread = 1;
  phase.mix[size_t(OpKind::kExecute)] = 1;
  spec.phases = {phase};
  EXPECT_FALSE(runner.Run(spec).ok());
}

}  // namespace
}  // namespace kaskade::workload
