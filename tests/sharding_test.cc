// Sharded execution (EngineOptions::shards >= 2): the scatter-gather
// MATCH layer must return tables byte-identical to the unsharded run
// (row order included) for the solo, parallel, and fused CSR backends
// across mutation streams; the per-shard SegmentStore snapshot pipeline
// must stay exact against fresh builds at every prefix; and concurrent
// snapshot refreshes on disjoint shards interleaved with readers must
// be race-free (this suite runs under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/segment_store.h"
#include "csr_test_util.h"
#include "datasets/generators.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "query/executor.h"

namespace kaskade {
namespace {

using core::Engine;
using core::EngineOptions;
using core::SegmentStore;
using graph::CsrGraph;
using graph::EdgeId;
using graph::GraphDelta;
using graph::PropertyGraph;
using graph::VertexId;

// Multi-segment provenance graph (> 2 * 1024 vertices), so the shard
// partition is non-trivial for K in {2, 4}.
PropertyGraph MakeShardableGraph(uint64_t seed = 11) {
  return datasets::MakeProvenanceGraph({.num_jobs = 600,
                                        .num_files = 1400,
                                        .num_tasks = 700,
                                        .num_machines = 20,
                                        .num_users = 40,
                                        .seed = seed});
}

const char* const kShardQueries[] = {
    "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f",
    "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
    "RETURN a, b",
    "MATCH (u:User)-[:SUBMITS]->(j:Job) (j:Job)-[:SPAWNS]->(t:Task) "
    "RETURN u, t",
    "MATCH (a:File)-[r*1..2]->(b:Task) RETURN a, b",
    "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 8 RETURN j, f",
};

/// One random mutation batch over the provenance schema; `live` tracks
/// removable edge ids. `max_vertex` clusters insert endpoints below an
/// id bound (so a batch dirties few segments — the workload shape the
/// segment-sharing assertions measure); the default spreads uniformly.
GraphDelta RandomBatch(const PropertyGraph& g, std::mt19937_64* rng,
                       std::vector<EdgeId>* live,
                       VertexId max_vertex = graph::kInvalidId) {
  GraphDelta delta;
  const graph::VertexTypeId job_t = g.schema().FindVertexType("Job");
  const graph::VertexTypeId file_t = g.schema().FindVertexType("File");
  std::vector<VertexId> jobs = g.VerticesOfType(job_t);
  std::vector<VertexId> files = g.VerticesOfType(file_t);
  auto clamp_pool = [max_vertex](std::vector<VertexId>* pool) {
    std::vector<VertexId> kept;
    for (VertexId v : *pool) {
      if (v < max_vertex) kept.push_back(v);
    }
    if (!kept.empty()) *pool = std::move(kept);
  };
  clamp_pool(&jobs);
  clamp_pool(&files);
  const size_t inserts = 8 + (*rng)() % 8;
  for (size_t i = 0; i < inserts; ++i) {
    VertexId j = jobs[(*rng)() % jobs.size()];
    VertexId f = files[(*rng)() % files.size()];
    if ((*rng)() % 2 == 0) {
      delta.AddEdge(j, f, "WRITES_TO", {});
    } else {
      delta.AddEdge(f, j, "IS_READ_BY", {});
    }
  }
  const size_t removals = live->size() > 16 ? 4 + (*rng)() % 4 : 0;
  for (size_t i = 0; i < removals; ++i) {
    const size_t at = (*rng)() % live->size();
    delta.RemoveEdge((*live)[at]);
    live->erase(live->begin() + at);
  }
  return delta;
}

// ---------------------------------------------------------------------------
// Executor scatter-gather: sharded output is byte-identical (row order
// included) to the unsharded table for the solo and parallel backends.
// ---------------------------------------------------------------------------

TEST(ShardingTest, ShardedBackendsMatchUnshardedAcrossMutations) {
  PropertyGraph g = MakeShardableGraph();
  std::mt19937_64 rng(77);
  std::vector<EdgeId> live;
  for (EdgeId e = 0; e < static_cast<EdgeId>(g.NumEdges()); ++e) {
    live.push_back(e);
  }

  constexpr int kSteps = 5;
  for (int step = 0; step < kSteps; ++step) {
    if (step > 0) {
      GraphDelta delta = RandomBatch(g, &rng, &live);
      auto applied = graph::ApplyDeltaToGraph(&g, delta);
      ASSERT_TRUE(applied.ok()) << applied.status();
      for (EdgeId e : applied->new_edges) live.push_back(e);
    }
    CsrGraph csr = CsrGraph::Build(g);
    query::QueryExecutor oracle(&g, &csr);  // shards = 1, sequential
    for (const char* text : kShardQueries) {
      auto expected = oracle.ExecuteText(text);
      ASSERT_TRUE(expected.ok()) << text << ": " << expected.status();
      for (size_t shards : {2u, 4u}) {
        for (size_t workers : {1u, 4u}) {
          query::ExecutorOptions opts;
          opts.shards = shards;
          opts.parallelism = workers;
          query::QueryExecutor sharded(&g, &csr, opts);
          auto got = sharded.ExecuteText(text);
          ASSERT_TRUE(got.ok()) << text << ": " << got.status();
          ASSERT_EQ(expected->num_rows(), got->num_rows())
              << text << " shards=" << shards << " workers=" << workers
              << " step " << step;
          for (size_t r = 0; r < expected->num_rows(); ++r) {
            ASSERT_EQ(expected->rows()[r], got->rows()[r])
                << text << " row " << r << " shards=" << shards
                << " workers=" << workers << " step " << step;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine end to end: a sharded engine (per-shard snapshot pipeline +
// scatter-gather MATCH, fused batch path included) returns tables
// byte-identical to an unsharded engine fed the same mutation stream.
// ---------------------------------------------------------------------------

TEST(ShardingTest, EngineShardedMatchesUnshardedWithFusion) {
  for (size_t shards : {2u, 4u}) {
    Engine baseline(MakeShardableGraph());
    EngineOptions sharded_opts;
    sharded_opts.shards = shards;
    sharded_opts.executor.parallelism = 2;
    Engine sharded(MakeShardableGraph(), sharded_opts);

    std::mt19937_64 rng(913 + shards);
    // Only edges this stream inserted are removable, and inserts
    // cluster into the first segment's id window, so each batch
    // dirties one segment and the rest stay refcount-shared — the
    // workload shape the telemetry assertions below measure.
    std::vector<EdgeId> live;
    // Same-shape batch members (only constants differ) so the fused
    // path groups them.
    const std::vector<std::string> fused_batch = {
        "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 4 RETURN j, f",
        "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 8 RETURN j, f",
        "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 16 RETURN j, f",
    };

    constexpr int kSteps = 4;
    for (int step = 0; step < kSteps; ++step) {
      if (step > 0) {
        GraphDelta delta =
            RandomBatch(baseline.base_graph(), &rng, &live,
                        static_cast<VertexId>(graph::kCsrSegmentVertices));
        auto a = baseline.ApplyDelta(delta);
        ASSERT_TRUE(a.ok()) << a.status();
        auto b = sharded.ApplyDelta(delta);
        ASSERT_TRUE(b.ok()) << b.status();
        for (EdgeId e : a->new_edges) live.push_back(e);
      }
      for (const char* text : kShardQueries) {
        auto expected = baseline.Execute(text);
        ASSERT_TRUE(expected.ok()) << text << ": " << expected.status();
        auto got = sharded.Execute(text);
        ASSERT_TRUE(got.ok()) << text << ": " << got.status();
        ASSERT_EQ(expected->table.num_rows(), got->table.num_rows())
            << text << " shards=" << shards << " step " << step;
        for (size_t r = 0; r < expected->table.num_rows(); ++r) {
          ASSERT_EQ(expected->table.rows()[r], got->table.rows()[r])
              << text << " row " << r << " shards=" << shards << " step "
              << step;
        }
      }
      auto expected_batch = baseline.ExecuteBatch(fused_batch);
      auto got_batch = sharded.ExecuteBatch(fused_batch);
      ASSERT_EQ(expected_batch.size(), got_batch.size());
      for (size_t m = 0; m < expected_batch.size(); ++m) {
        ASSERT_TRUE(expected_batch[m].ok()) << expected_batch[m].status();
        ASSERT_TRUE(got_batch[m].ok()) << got_batch[m].status();
        ASSERT_EQ(expected_batch[m]->table.num_rows(),
                  got_batch[m]->table.num_rows())
            << "member " << m << " shards=" << shards;
        for (size_t r = 0; r < expected_batch[m]->table.num_rows(); ++r) {
          ASSERT_EQ(expected_batch[m]->table.rows()[r],
                    got_batch[m]->table.rows()[r])
              << "member " << m << " row " << r << " shards=" << shards;
        }
      }
    }
    // The sharded pipeline actually ran: per-shard writer-lock counters
    // exist and segments were shared across refreshes.
    core::EngineTelemetry t = sharded.TelemetrySnapshot();
    EXPECT_EQ(t.shard_writer_acquisitions.size(), shards);
    EXPECT_GT(t.patch_segments_shared, 0u);
    uint64_t acquisitions = 0;
    for (uint64_t a : t.shard_writer_acquisitions) acquisitions += a;
    EXPECT_GT(acquisitions, 0u);
  }
}

// ---------------------------------------------------------------------------
// SegmentStore differential: the assembled per-shard snapshot equals a
// fresh Build at every mutation prefix, sharing clean segments.
// ---------------------------------------------------------------------------

TEST(ShardingTest, SegmentStoreSnapshotMatchesFreshBuildAtEveryPrefix) {
  PropertyGraph g = MakeShardableGraph(23);
  SegmentStore store(&g, 4);
  std::mt19937_64 rng(5);
  // Clustered stream (see RandomBatch): each batch dirties only the
  // first segment, leaving the others to be shared across refreshes.
  std::vector<EdgeId> live;

  uint64_t version = 1;
  constexpr int kSteps = 12;
  for (int step = 0; step < kSteps; ++step) {
    GraphDelta delta =
        RandomBatch(g, &rng, &live,
                    static_cast<VertexId>(graph::kCsrSegmentVertices));
    auto applied = graph::ApplyDeltaToGraph(&g, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    for (EdgeId e : applied->new_edges) live.push_back(e);
    store.NoteDelta(std::make_shared<const graph::DeltaFootprint>(delta));

    SegmentStore::Outcome outcome;
    auto snap = store.Snapshot(++version, &outcome);
    ASSERT_NE(snap, nullptr);
    EXPECT_NE(outcome, SegmentStore::Outcome::kHit);
    CsrGraph fresh = CsrGraph::Build(g);
    testutil::ExpectCsrEqual(*snap, fresh, g,
                             "store step " + std::to_string(step));
    // Version-keyed cache: the same version is a hit returning the
    // same object.
    auto again = store.Snapshot(version, &outcome);
    EXPECT_EQ(again.get(), snap.get());
    EXPECT_EQ(outcome, SegmentStore::Outcome::kHit);
  }
  // O(delta) claim at the store level: across the run most segments
  // were shared, not rebuilt (the graph spans several segments and each
  // batch touches a handful of vertices).
  EXPECT_GT(store.segments_shared(), store.segments_copied());
  EXPECT_EQ(store.writer_acquisitions().size(), 4u);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan target): readers refreshing disjoint stale shards
// in parallel, racing on the per-shard writer locks, interleaved with
// serialized mutators. Every assembled snapshot must equal the fresh
// build of the graph state it was taken at.
// ---------------------------------------------------------------------------

TEST(ShardingTest, ConcurrentShardRefreshesAndReadersAreRaceFree) {
  constexpr size_t kShards = 4;
  constexpr int kRounds = 20;
  PropertyGraph g = MakeShardableGraph(31);
  SegmentStore store(&g, kShards);
  std::mt19937_64 rng(17);
  std::vector<EdgeId> live;
  for (EdgeId e = 0; e < static_cast<EdgeId>(g.NumEdges()); ++e) {
    live.push_back(e);
  }

  uint64_t version = 1;
  for (int round = 0; round < kRounds; ++round) {
    // Mutation phase (exclusive, as under the engine writer lock).
    GraphDelta delta = RandomBatch(g, &rng, &live);
    auto applied = graph::ApplyDeltaToGraph(&g, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    for (EdgeId e : applied->new_edges) live.push_back(e);
    store.NoteDelta(std::make_shared<const graph::DeltaFootprint>(delta));
    ++version;

    // Reader phase: several threads race to refresh the stale shards —
    // each shard's writer lock arbitrates — and each takes a full
    // snapshot.
    constexpr size_t kReaders = 6;
    std::vector<std::shared_ptr<const CsrGraph>> snaps(kReaders);
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (size_t t = 0; t < kReaders; ++t) {
      readers.emplace_back(
          [&store, &snaps, t, version] { snaps[t] = store.Snapshot(version); });
    }
    for (std::thread& t : readers) t.join();

    CsrGraph fresh = CsrGraph::Build(g);
    for (size_t t = 0; t < kReaders; ++t) {
      ASSERT_NE(snaps[t], nullptr) << "reader " << t;
      // All readers adopt the published snapshot for the version.
      EXPECT_EQ(snaps[t].get(), snaps[0].get());
    }
    testutil::ExpectCsrEqual(*snaps[0], fresh, g,
                             "round " + std::to_string(round));
  }
}

// Engine-level interleaving: concurrent Execute readers (each forcing
// per-shard snapshot refreshes) against serialized ApplyDelta writers.
TEST(ShardingTest, EngineConcurrentReadersDuringMutationStream) {
  EngineOptions opts;
  opts.shards = 4;
  Engine engine(MakeShardableGraph(41), opts);
  std::mt19937_64 rng(3);
  std::vector<EdgeId> live;
  for (EdgeId e = 0; e < static_cast<EdgeId>(engine.base_graph().NumEdges());
       ++e) {
    live.push_back(e);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&engine, &stop, &failures, t] {
      const char* text = kShardQueries[t % 5];
      while (!stop.load(std::memory_order_acquire)) {
        auto result = engine.Execute(text);
        if (!result.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int step = 0; step < 15; ++step) {
    GraphDelta delta = RandomBatch(engine.base_graph(), &rng, &live);
    auto report = engine.ApplyDelta(delta);
    ASSERT_TRUE(report.ok()) << report.status();
    for (EdgeId e : report->new_edges) live.push_back(e);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace kaskade
