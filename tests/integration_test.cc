// End-to-end tests: view selection, the Kaskade facade, and — most
// importantly — the equivalence contract: a query rewritten over a
// materialized view returns exactly the rows of the raw query (§VII-C
// "These rewritings are equivalent and produce the same results").

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/materializer.h"
#include "core/rewriter.h"
#include "core/view_selector.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "query/executor.h"
#include "query/parser.h"

namespace kaskade::core {
namespace {

using graph::PropertyGraph;
using query::Table;

query::Query ParseOrDie(const std::string& text) {
  auto q = query::ParseQueryText(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(*q);
}

/// Executes `text` against `g` and returns sorted rows.
std::vector<Table::Row> RunSorted(const PropertyGraph& g,
                                  const std::string& text) {
  query::QueryExecutor executor(&g);
  auto result = executor.ExecuteText(text);
  EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << text;
  return result.ok() ? result->SortedRows() : std::vector<Table::Row>{};
}

PropertyGraph SmallFilteredProv(uint64_t seed = 42) {
  datasets::ProvOptions options;
  options.num_jobs = 120;
  options.num_files = 260;
  options.include_auxiliary = false;
  options.seed = seed;
  return datasets::MakeProvenanceGraph(options);
}

ViewDefinition JobToJob2Hop() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

/// Maps vertex-id cells of view-result rows back to base-graph ids via
/// the view's "orig_id" property so they compare equal to raw results.
std::vector<Table::Row> MapToBaseIds(const PropertyGraph& view_graph,
                                     const Table& table) {
  std::vector<Table::Row> rows;
  for (const Table::Row& row : table.rows()) {
    Table::Row mapped = row;
    for (size_t c = 0; c < row.size(); ++c) {
      if (table.columns()[c].is_vertex) {
        auto v = static_cast<graph::VertexId>(row[c].as_int());
        mapped[c] = view_graph.VertexProperty(v, "orig_id");
      }
    }
    rows.push_back(std::move(mapped));
  }
  std::sort(rows.begin(), rows.end(), [](const Table::Row& a,
                                         const Table::Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  });
  return rows;
}

// ---------------------------------------------------------------------------
// Rewrite equivalence (the core correctness property)
// ---------------------------------------------------------------------------

/// Property sweep over generator seeds: the ancestors query Q2 rewritten
/// over a 2-hop job-to-job connector returns exactly the raw rows.
class RewriteEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalenceTest, AncestorsQueryMatchesRawResults) {
  PropertyGraph base = SmallFilteredProv(GetParam());
  auto view = Materialize(base, JobToJob2Hop());
  ASSERT_TRUE(view.ok()) << view.status();

  std::string raw_text = datasets::AncestorsQueryText("Job", 4);
  query::Query raw = ParseOrDie(raw_text);
  auto rewritten = RewriteQueryWithView(raw, JobToJob2Hop(), base.schema());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();

  std::vector<Table::Row> raw_rows = RunSorted(base, raw_text);
  query::QueryExecutor view_executor(&view->graph);
  auto view_result = view_executor.Execute(*rewritten);
  ASSERT_TRUE(view_result.ok()) << view_result.status();
  std::vector<Table::Row> view_rows =
      MapToBaseIds(view->graph, *view_result);

  ASSERT_FALSE(raw_rows.empty());
  EXPECT_EQ(raw_rows, view_rows) << "seed=" << GetParam();
}

TEST_P(RewriteEquivalenceTest, BlastRadiusAggregatesMatchRawResults) {
  PropertyGraph base = SmallFilteredProv(GetParam());
  auto view = Materialize(base, JobToJob2Hop());
  ASSERT_TRUE(view.ok()) << view.status();

  query::Query raw = ParseOrDie(datasets::BlastRadiusQueryText());
  auto rewritten = RewriteQueryWithView(raw, JobToJob2Hop(), base.schema());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();

  // Aggregate outputs (pipeline name + average CPU) are plain values, so
  // the tables compare directly.
  std::vector<Table::Row> raw_rows =
      RunSorted(base, datasets::BlastRadiusQueryText());
  query::QueryExecutor view_executor(&view->graph);
  auto view_result = view_executor.Execute(*rewritten);
  ASSERT_TRUE(view_result.ok()) << view_result.status();
  std::vector<Table::Row> view_rows = view_result->SortedRows();
  ASSERT_FALSE(raw_rows.empty());
  ASSERT_EQ(raw_rows.size(), view_rows.size());
  for (size_t i = 0; i < raw_rows.size(); ++i) {
    ASSERT_EQ(raw_rows[i].size(), view_rows[i].size());
    EXPECT_EQ(raw_rows[i][0], view_rows[i][0]);
    EXPECT_NEAR(raw_rows[i][1].ToDouble(), view_rows[i][1].ToDouble(), 1e-6)
        << "seed=" << GetParam() << " row=" << i;
  }
}

TEST_P(RewriteEquivalenceTest, SummarizerIdentityMatchesRawResults) {
  // Full raw graph vs Job/File-filtered view: lineage queries must agree.
  datasets::ProvOptions options;
  options.num_jobs = 80;
  options.num_files = 150;
  options.num_tasks = 120;
  options.seed = GetParam();
  PropertyGraph raw = datasets::MakeProvenanceGraph(options);

  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto view = Materialize(raw, filter);
  ASSERT_TRUE(view.ok()) << view.status();

  std::string text = datasets::DescendantsQueryText("Job", 4);
  std::vector<Table::Row> raw_rows = RunSorted(raw, text);
  query::QueryExecutor view_executor(&view->graph);
  auto view_result = view_executor.ExecuteText(text);
  ASSERT_TRUE(view_result.ok()) << view_result.status();
  std::vector<Table::Row> view_rows =
      MapToBaseIds(view->graph, *view_result);
  ASSERT_FALSE(raw_rows.empty());
  EXPECT_EQ(raw_rows, view_rows) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(RewriteEquivalenceTest, CoauthorQueryOverDblpConnector) {
  datasets::DblpOptions options;
  options.num_authors = 150;
  options.num_articles = 300;
  options.include_venues = false;
  PropertyGraph base = datasets::MakeDblpGraph(options);

  ViewDefinition view_def;
  view_def.kind = ViewKind::kKHopConnector;
  view_def.k = 2;
  view_def.source_type = "Author";
  view_def.target_type = "Author";
  auto view = Materialize(base, view_def);
  ASSERT_TRUE(view.ok()) << view.status();

  query::Query raw = ParseOrDie(datasets::CoauthorQueryText());
  auto rewritten = RewriteQueryWithView(raw, view_def, base.schema());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();

  std::vector<Table::Row> raw_rows =
      RunSorted(base, datasets::CoauthorQueryText());
  query::QueryExecutor view_executor(&view->graph);
  auto view_result = view_executor.Execute(*rewritten);
  ASSERT_TRUE(view_result.ok()) << view_result.status();
  EXPECT_EQ(raw_rows, MapToBaseIds(view->graph, *view_result));
  EXPECT_FALSE(raw_rows.empty());
}

// ---------------------------------------------------------------------------
// View selection (§V-B)
// ---------------------------------------------------------------------------

TEST(ViewSelectorTest, BlastRadiusWorkloadSelectsJobConnector) {
  PropertyGraph base = SmallFilteredProv();
  SelectorOptions options;
  options.budget_edges = 1e6;
  ViewSelector selector(&base, options);
  std::vector<WorkloadEntry> workload;
  workload.push_back(
      WorkloadEntry{ParseOrDie(datasets::BlastRadiusQueryText()), 1.0});
  auto report = selector.Select(workload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->candidates.empty());
  EXPECT_FALSE(report->selected.empty());
  EXPECT_LE(report->selected_size_edges, options.budget_edges);
  // The 2-hop job-to-job connector must be among the selected views: it
  // is the cheapest view that serves the query.
  bool found = false;
  for (const ScoredView& v : report->selected) {
    if (v.definition.Name() == "khop2[Job->Job]") found = true;
    EXPECT_GE(v.improvement, 0);
  }
  EXPECT_TRUE(found);
}

TEST(ViewSelectorTest, ZeroBudgetSelectsNothing) {
  PropertyGraph base = SmallFilteredProv();
  SelectorOptions options;
  options.budget_edges = 0;
  ViewSelector selector(&base, options);
  std::vector<WorkloadEntry> workload;
  workload.push_back(
      WorkloadEntry{ParseOrDie(datasets::BlastRadiusQueryText()), 1.0});
  auto report = selector.Select(workload);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->selected.empty());
  EXPECT_FALSE(report->candidates.empty());
}

TEST(ViewSelectorTest, GreedyNeverBeatsBranchAndBound) {
  PropertyGraph base = SmallFilteredProv();
  std::vector<WorkloadEntry> workload;
  workload.push_back(
      WorkloadEntry{ParseOrDie(datasets::BlastRadiusQueryText()), 1.0});
  workload.push_back(
      WorkloadEntry{ParseOrDie(datasets::AncestorsQueryText("Job", 4)), 2.0});

  SelectorOptions bnb_options;
  bnb_options.budget_edges = 50'000;
  ViewSelector bnb(&base, bnb_options);
  auto bnb_report = bnb.Select(workload);
  ASSERT_TRUE(bnb_report.ok());

  SelectorOptions greedy_options = bnb_options;
  greedy_options.use_greedy = true;
  ViewSelector greedy(&base, greedy_options);
  auto greedy_report = greedy.Select(workload);
  ASSERT_TRUE(greedy_report.ok());

  auto total_value = [](const SelectionReport& r) {
    double v = 0;
    for (const ScoredView& s : r.selected) v += s.value;
    return v;
  };
  EXPECT_GE(total_value(*bnb_report), total_value(*greedy_report) - 1e-9);
}

// ---------------------------------------------------------------------------
// Engine facade (Fig. 2 end to end)
// ---------------------------------------------------------------------------

TEST(EngineTest, AnalyzeWorkloadMaterializesAndExecuteUsesViews) {
  EngineOptions options;
  options.selector.budget_edges = 1e6;
  Engine engine(SmallFilteredProv(), options);

  auto report =
      engine.AnalyzeWorkload({datasets::BlastRadiusQueryText(),
                              datasets::AncestorsQueryText("Job", 4)});
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(engine.catalog().empty());

  auto via_engine = engine.Execute(datasets::BlastRadiusQueryText());
  ASSERT_TRUE(via_engine.ok()) << via_engine.status();
  EXPECT_TRUE(via_engine->used_view);
  EXPECT_FALSE(via_engine->view_name.empty());

  // The engine's answer equals direct raw execution.
  std::vector<Table::Row> raw_rows =
      RunSorted(engine.base_graph(), datasets::BlastRadiusQueryText());
  std::vector<Table::Row> engine_rows = via_engine->table.SortedRows();
  ASSERT_EQ(raw_rows.size(), engine_rows.size());
  for (size_t i = 0; i < raw_rows.size(); ++i) {
    EXPECT_EQ(raw_rows[i][0], engine_rows[i][0]);
    EXPECT_NEAR(raw_rows[i][1].ToDouble(), engine_rows[i][1].ToDouble(),
                1e-6);
  }
}

TEST(EngineTest, ExecuteFallsBackToRawWhenNoViewApplies) {
  Engine engine(SmallFilteredProv());
  // No views materialized: raw execution.
  auto result =
      engine.Execute("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->used_view);
  EXPECT_GT(result->table.num_rows(), 0u);
}

TEST(EngineTest, DuplicateViewRejected) {
  Engine engine(SmallFilteredProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobToJob2Hop()).ok());
  EXPECT_EQ(engine.AddMaterializedView(JobToJob2Hop()).code(),
            StatusCode::kAlreadyExists);
}

TEST(EngineTest, CheaperPlanWins) {
  Engine engine(SmallFilteredProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobToJob2Hop()).ok());
  // The ancestors query benefits from the connector.
  auto result = engine.Execute(datasets::AncestorsQueryText("Job", 4));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->used_view);
  EXPECT_EQ(result->view_name, "khop2[Job->Job]");
  // A query the connector cannot serve still runs raw.
  auto raw_only =
      engine.Execute("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN f");
  ASSERT_TRUE(raw_only.ok());
  EXPECT_FALSE(raw_only->used_view);
}

// ---------------------------------------------------------------------------
// Dataset generators
// ---------------------------------------------------------------------------

TEST(DatasetsTest, GeneratorsAreDeterministic) {
  PropertyGraph a = SmallFilteredProv(9);
  PropertyGraph b = SmallFilteredProv(9);
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  PropertyGraph c = SmallFilteredProv(10);
  EXPECT_NE(a.NumEdges(), c.NumEdges());
}

TEST(DatasetsTest, ProvSchemaShape) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      datasets::ProvOptions{.num_jobs = 10, .num_files = 10, .num_tasks = 5});
  EXPECT_EQ(g.schema().num_vertex_types(), 5u);
  EXPECT_EQ(g.schema().num_edge_types(), 6u);
  // Bipartite lineage core: job-job schema paths only at even k.
  graph::VertexTypeId job = g.schema().FindVertexType("Job");
  EXPECT_FALSE(g.schema().HasKHopSchemaPath(job, job, 3));
  EXPECT_TRUE(g.schema().HasKHopSchemaPath(job, job, 2));
}

TEST(DatasetsTest, SocialGraphIsPowerLawRoadIsNot) {
  PropertyGraph social = datasets::MakeSocialGraph(
      datasets::SocialOptions{.num_vertices = 3000});
  graph::DegreeDistribution social_dist =
      graph::ComputeOutDegreeDistribution(social);
  EXPECT_LT(social_dist.powerlaw_slope, -0.5);
  EXPECT_GT(social_dist.r_squared, 0.7);

  PropertyGraph road =
      datasets::MakeRoadGraph(datasets::RoadOptions{.width = 40, .height = 40});
  graph::GraphStats stats = graph::GraphStats::Compute(road);
  // Bounded degree: nothing above 4.
  EXPECT_LE(stats.overall().p100, 4);
}

TEST(DatasetsTest, PrefixSubgraphTakesFirstEdges) {
  PropertyGraph g = SmallFilteredProv();
  PropertyGraph prefix = datasets::PrefixSubgraph(g, 100);
  EXPECT_EQ(prefix.NumEdges(), 100u);
  EXPECT_LE(prefix.NumVertices(), 200u);
  // Oversized request clamps.
  PropertyGraph all = datasets::PrefixSubgraph(g, g.NumEdges() + 999);
  EXPECT_EQ(all.NumEdges(), g.NumEdges());
}

TEST(DatasetsTest, ZipfSamplerBounds) {
  for (double u : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    int v = datasets::SampleZipf(u, 2.0, 100);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
  EXPECT_EQ(datasets::SampleZipf(0.5, 2.0, 1), 1);
  // Heavier tail -> larger high-quantile draws.
  EXPECT_GE(datasets::SampleZipf(0.999, 1.5, 10'000),
            datasets::SampleZipf(0.999, 3.0, 10'000));
}

TEST(DatasetsTest, WorkloadTextsParse) {
  EXPECT_TRUE(query::ParseQueryText(datasets::BlastRadiusQueryText()).ok());
  EXPECT_TRUE(
      query::ParseQueryText(datasets::BlastRadiusRewrittenText()).ok());
  EXPECT_TRUE(
      query::ParseQueryText(datasets::AncestorsQueryText("Job", 4)).ok());
  EXPECT_TRUE(
      query::ParseQueryText(datasets::DescendantsQueryText("Person", 4)).ok());
  EXPECT_TRUE(query::ParseQueryText(datasets::CoauthorQueryText()).ok());
}

TEST(DatasetsTest, RewrittenListingFourTextMatchesRewriterOutput) {
  PropertyGraph base = SmallFilteredProv();
  query::Query raw = ParseOrDie(datasets::BlastRadiusQueryText());
  auto rewritten = RewriteQueryWithView(raw, JobToJob2Hop(), base.schema());
  ASSERT_TRUE(rewritten.ok());
  query::Query canned = ParseOrDie(datasets::BlastRadiusRewrittenText());
  EXPECT_EQ(rewritten->ToString(), canned.ToString());
}

}  // namespace
}  // namespace kaskade::core
