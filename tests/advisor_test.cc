// Tests for the adaptive view lifecycle: workload-tracker telemetry
// under concurrency, online advice (reproducing offline analysis,
// proposing drops, hysteresis across rounds), and non-blocking
// background materialization (readers progress during a build,
// mid-build deltas replay at publish, out-of-band mutations force a
// rebuild, and the published view is always exact).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/advisor.h"
#include "core/catalog.h"
#include "core/engine.h"
#include "core/materializer.h"
#include "core/workload_tracker.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/delta.h"
#include "query/parser.h"

namespace kaskade::core {
namespace {

using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

PropertyGraph SmallProv(uint64_t seed = 42) {
  datasets::ProvOptions options;
  options.num_jobs = 60;
  options.num_files = 120;
  options.include_auxiliary = false;
  options.seed = seed;
  return datasets::MakeProvenanceGraph(options);
}

ViewDefinition JobConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

ViewDefinition FileConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "File";
  def.target_type = "File";
  return def;
}

/// Canonical (orig_src, orig_dst, paths) multiset of a connector view —
/// the differential-harness equality notion: two views are the same view
/// iff these agree.
std::multiset<std::tuple<int64_t, int64_t, int64_t>> ConnectorCanon(
    const MaterializedView& view) {
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> canon;
  const PropertyGraph& g = view.graph;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const graph::EdgeRecord& rec = g.Edge(e);
    canon.insert({g.VertexProperty(rec.source, "orig_id").as_int(),
                  g.VertexProperty(rec.target, "orig_id").as_int(),
                  g.EdgeProperty(e, "paths").as_int()});
  }
  return canon;
}

/// Asserts the named connector view equals a from-scratch
/// materialization over the engine's current base graph.
void ExpectViewExact(const Engine& engine, const ViewDefinition& def) {
  const CatalogEntry* entry = engine.catalog().Find(def.Name());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, ViewState::kReady);
  auto scratch = Materialize(engine.base_graph(), def);
  ASSERT_TRUE(scratch.ok()) << scratch.status();
  EXPECT_EQ(ConnectorCanon(entry->view), ConnectorCanon(*scratch));
}

// ---------------------------------------------------------------------------
// WorkloadTracker
// ---------------------------------------------------------------------------

TEST(WorkloadTrackerTest, AggregatesPerCanonicalText) {
  WorkloadTracker tracker;
  tracker.Record("q1", 100.0, 5.0, false, "");
  tracker.Record("q1", 300.0, 5.0, true, "khop2[Job->Job]");
  tracker.Record("q2", 50.0, 2.0, false, "");

  WorkloadSnapshot snapshot = tracker.Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 2u);
  EXPECT_EQ(snapshot.total_executions, 3u);
  // Sorted by descending execution count.
  EXPECT_EQ(snapshot.entries[0].query_text, "q1");
  EXPECT_EQ(snapshot.entries[0].executions, 2u);
  EXPECT_DOUBLE_EQ(snapshot.entries[0].total_latency_us, 400.0);
  EXPECT_DOUBLE_EQ(snapshot.entries[0].mean_latency_us(), 200.0);
  EXPECT_EQ(snapshot.entries[0].view_hits, 1u);
  EXPECT_EQ(snapshot.entries[0].last_view, "khop2[Job->Job]");
  EXPECT_EQ(snapshot.entries[1].executions, 1u);

  tracker.Clear();
  EXPECT_EQ(tracker.distinct_queries(), 0u);
  EXPECT_EQ(tracker.total_recorded(), 3u);  // lifetime counter survives
}

TEST(WorkloadTrackerTest, ConcurrentRecordersWithSnapshotReaders) {
  WorkloadTracker tracker;
  constexpr int kThreads = 4;
  constexpr int kRecordsPerThread = 2000;
  std::atomic<bool> start{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kRecordsPerThread; ++i) {
        // A shared hot key plus per-thread keys: stripe contention and
        // stripe spread both get exercised.
        tracker.Record("hot", 1.0, 1.0, i % 2 == 0, "v");
        tracker.Record("t" + std::to_string(t) + "_" + std::to_string(i % 7),
                       2.0, 1.0, false, "");
      }
    });
  }
  // Snapshot reader races the recorders: totals must be internally
  // consistent (sum of entries == snapshot total) at every point.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      WorkloadSnapshot snapshot = tracker.Snapshot();
      uint64_t sum = 0;
      for (const QueryObservation& obs : snapshot.entries) {
        sum += obs.executions;
      }
      ASSERT_EQ(sum, snapshot.total_executions);
    }
  });
  start.store(true);
  for (std::thread& t : recorders) t.join();
  stop.store(true);
  snapshotter.join();

  WorkloadSnapshot final_snapshot = tracker.Snapshot();
  EXPECT_EQ(final_snapshot.total_executions,
            uint64_t(kThreads) * kRecordsPerThread * 2);
  EXPECT_EQ(tracker.total_recorded(),
            uint64_t(kThreads) * kRecordsPerThread * 2);
  EXPECT_EQ(final_snapshot.entries[0].query_text, "hot");
  EXPECT_EQ(final_snapshot.entries[0].executions,
            uint64_t(kThreads) * kRecordsPerThread);
  EXPECT_EQ(final_snapshot.entries[0].view_hits,
            uint64_t(kThreads) * kRecordsPerThread / 2);
}

// ---------------------------------------------------------------------------
// Online advice
// ---------------------------------------------------------------------------

TEST(AdvisorTest, AdviseReproducesAnalyzeWorkloadSelections) {
  const std::vector<std::string> workload = {
      datasets::AncestorsQueryText("Job", 4),
      datasets::BlastRadiusQueryText(),
  };

  // Offline: the one-shot analyzer on a fresh engine.
  Engine offline(SmallProv());
  auto offline_report = offline.AnalyzeWorkload(workload);
  ASSERT_TRUE(offline_report.ok()) << offline_report.status();
  std::set<std::string> offline_names;
  for (const auto* entry : offline.catalog().Entries()) {
    offline_names.insert(entry->name());
  }
  ASSERT_FALSE(offline_names.empty());

  // Online: the same mix observed by the tracker, then Advise().
  Engine online(SmallProv());
  for (int round = 0; round < 2; ++round) {
    for (const std::string& text : workload) {
      ASSERT_TRUE(online.Execute(text).ok());
    }
  }
  EXPECT_EQ(online.workload().distinct_queries(), workload.size());
  auto plan = online.Advise();
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::set<std::string> advised_names;
  for (const ViewDefinition& def : plan->create) {
    advised_names.insert(def.Name());
  }
  EXPECT_EQ(advised_names, offline_names);
  EXPECT_TRUE(plan->drop.empty());
  EXPECT_EQ(plan->observed_queries, workload.size());
  EXPECT_EQ(plan->observed_executions, uint64_t(2 * workload.size()));
}

TEST(AdvisorTest, ProposesDropsForUnusedViews) {
  Engine engine(SmallProv());
  // A File->File connector no observed query can use.
  ASSERT_TRUE(engine.AddMaterializedView(FileConnector()).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());
  }
  auto plan = engine.Advise();
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->drop.size(), 1u);
  EXPECT_EQ(plan->drop[0], FileConnector().Name());

  // Applying the advice removes it; queries still run on the raw graph.
  auto report = engine.ApplyAdvice(*plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->views_dropped, 1u);
  engine.WaitForBuilds();
  EXPECT_EQ(engine.catalog().Find(FileConnector().Name()), nullptr);
  EXPECT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());

  // Re-applying the same plan is a no-op (idempotent advice).
  auto again = engine.ApplyAdvice(*plan);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->views_dropped, 0u);
}

TEST(AdvisorTest, EmptyObservedWorkloadNeverProposesDrops) {
  // No signal is not a drop signal: an advice round firing before any
  // traffic (or right after ResetWorkload) must not nuke the catalog.
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  auto plan = engine.Advise();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->drop.empty());
  EXPECT_TRUE(plan->create.empty());
  EXPECT_EQ(plan->observed_queries, 0u);
}

TEST(AdvisorTest, ResetWorkloadLetsQuietViewsBecomeDropCandidates) {
  // Observations are lifetime-cumulative, so a query that stops
  // arriving keeps protecting its view; epoch-based deployments reset
  // the tracker after each advice round so advice follows the current
  // epoch.
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());
  ASSERT_TRUE(engine.AutoAdvise().ok());
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());
  ASSERT_NE(engine.catalog().Find(JobConnector().Name()), nullptr);

  // New epoch: the old query never arrives again.
  engine.ResetWorkload();
  const std::string unrelated =
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.Execute(unrelated).ok());

  auto plan = engine.Advise();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(std::count(plan->drop.begin(), plan->drop.end(),
                       JobConnector().Name()),
            1);
}

TEST(AdvisorTest, LatencyWeightingLetsSlowRareQueryWinTheView) {
  // §V-B weights workload queries by "frequency or expected execution
  // time". Frequency-only weighting lets a fast query that runs often
  // out-vote a slow analytical query that runs rarely; weighting by
  // frequency x measured latency (the tracker records it) flips that
  // when the rare query's aggregate cost dominates.
  PropertyGraph base = SmallProv();

  const std::string frequent = datasets::AncestorsQueryText("Job", 4);
  const std::string rare = datasets::AncestorsQueryText("File", 4);
  WorkloadSnapshot snapshot;
  QueryObservation frequent_obs;
  frequent_obs.query_text = frequent;
  frequent_obs.executions = 50;
  frequent_obs.total_latency_us = 50 * 40.0;  // fast: 40us each
  QueryObservation rare_obs;
  rare_obs.query_text = rare;
  rare_obs.executions = 2;
  rare_obs.total_latency_us = 2 * 400000.0;  // slow: 400ms each
  snapshot.entries = {frequent_obs, rare_obs};
  snapshot.total_executions = 52;

  // Budget that fits either query's best view but not both, so the
  // weighting decides which one wins the knapsack.
  AdvisorOptions options;
  {
    ViewSelector sizer(&base);
    ViewDefinition job = JobConnector();
    ViewDefinition file = FileConnector();
    options.selector.budget_edges =
        std::max(sizer.cost_model().ViewSizeEdges(job),
                 sizer.cost_model().ViewSizeEdges(file));
  }

  ViewCatalog catalog(&base);
  auto advised_names = [&](const AdvisorOptions& opts) {
    Advisor advisor(&base, opts);
    auto plan = advisor.Advise(snapshot, catalog);
    EXPECT_TRUE(plan.ok()) << plan.status();
    std::set<std::string> names;
    if (plan.ok()) {
      for (const ViewDefinition& def : plan->create) names.insert(def.Name());
    }
    return names;
  };

  std::set<std::string> by_frequency = advised_names(options);
  options.weighting = AdviceWeighting::kExpectedExecutionTime;
  std::set<std::string> by_latency = advised_names(options);

  // Frequency weighting follows the popular Job query...
  EXPECT_EQ(by_frequency.count(JobConnector().Name()), 1u) << "freq";
  EXPECT_EQ(by_frequency.count(FileConnector().Name()), 0u) << "freq";
  // ...expected-execution-time weighting follows the expensive File one.
  EXPECT_EQ(by_latency.count(FileConnector().Name()), 1u) << "latency";
  EXPECT_EQ(by_latency.count(JobConnector().Name()), 0u) << "latency";
}

TEST(AdvisorTest, HysteresisKeepsAdviceStableAcrossAdjacentRounds) {
  Engine engine(SmallProv());
  const std::vector<std::string> workload = {
      datasets::AncestorsQueryText("Job", 4),
      datasets::BlastRadiusQueryText(),
  };
  for (const std::string& text : workload) {
    ASSERT_TRUE(engine.Execute(text).ok());
  }

  // Round 1 creates the selected views.
  auto round1 = engine.AutoAdvise();
  ASSERT_TRUE(round1.ok()) << round1.status();
  EXPECT_GT(round1->builds_scheduled, 0u);
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());
  std::set<std::string> after_round1;
  for (const auto* entry : engine.catalog().Entries()) {
    after_round1.insert(entry->name());
  }
  uint64_t generation_after_round1 = engine.catalog().generation();

  // The workload keeps flowing unchanged (now served by the views).
  for (const std::string& text : workload) {
    ASSERT_TRUE(engine.Execute(text).ok());
  }

  // Round 2 on the unchanged mix must neither drop nor re-create: the
  // incumbents carry the keep boost, and a materialized view is only a
  // drop candidate when no observed query can use it.
  auto round2 = engine.Advise();
  ASSERT_TRUE(round2.ok()) << round2.status();
  EXPECT_TRUE(round2->empty())
      << "round 2 proposed " << round2->create.size() << " creations and "
      << round2->drop.size() << " drops on an unchanged workload";
  auto applied = engine.ApplyAdvice(*round2);
  ASSERT_TRUE(applied.ok());
  engine.WaitForBuilds();
  std::set<std::string> after_round2;
  for (const auto* entry : engine.catalog().Entries()) {
    after_round2.insert(entry->name());
  }
  EXPECT_EQ(after_round1, after_round2);
  EXPECT_EQ(engine.catalog().generation(), generation_after_round1);
}

/// Total estimated size of the views that survive `plan`: the selected
/// set plus every kept incumbent (materialized, not selected, not
/// dropped) — exactly the set the catalog holds after applying the plan.
double SurvivorSizeEdges(const AdvicePlan& plan) {
  auto is_dropped = [&](const std::string& name) {
    return std::count(plan.drop.begin(), plan.drop.end(), name) > 0;
  };
  auto is_selected = [&](const std::string& name) {
    for (const ScoredView& scored : plan.selection.selected) {
      if (scored.definition.Name() == name) return true;
    }
    return false;
  };
  double size = plan.selection.selected_size_edges;
  for (const ScoredView& scored : plan.selection.candidates) {
    if (!scored.currently_materialized) continue;
    const std::string name = scored.definition.Name();
    if (!is_selected(name) && !is_dropped(name)) {
      size += scored.estimated_size_edges;
    }
  }
  return size;
}

TEST(AdvisorTest, BudgetHoldsAcrossRoundsDespiteKeptIncumbents) {
  // Creep regression: each round's *selection* respects the budget, but
  // hysteresis also keeps unselected incumbents that still serve
  // queries — so selected + kept can exceed the budget round over round
  // unless the advisor evicts kept incumbents back under it.
  PropertyGraph base = SmallProv();
  AdvisorOptions options;
  {
    // Budget fits either connector alone, never both.
    ViewSelector sizer(&base);
    ViewDefinition job = JobConnector();
    ViewDefinition file = FileConnector();
    options.selector.budget_edges =
        std::max(sizer.cost_model().ViewSizeEdges(job),
                 sizer.cost_model().ViewSizeEdges(file));
  }

  // Incumbent: the Job connector is already materialized.
  ViewCatalog catalog(&base);
  ASSERT_TRUE(catalog.Add(JobConnector()).ok());

  // The Job query keeps flowing (so the incumbent is applicable and the
  // zero-applicable drop rule never fires), but the File query now
  // dominates and wins the knapsack for the File connector.
  WorkloadSnapshot snapshot;
  QueryObservation rare;
  rare.query_text = datasets::AncestorsQueryText("Job", 4);
  rare.executions = 5;
  QueryObservation frequent;
  frequent.query_text = datasets::AncestorsQueryText("File", 4);
  frequent.executions = 50;
  snapshot.entries = {rare, frequent};
  snapshot.total_executions = 55;

  Advisor advisor(&base, options);
  for (int round = 0; round < 3; ++round) {
    auto plan = advisor.Advise(snapshot, catalog);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_LE(SurvivorSizeEdges(*plan), options.selector.budget_edges)
        << "round " << round << " leaves the catalog over budget";
    if (round == 0) {
      // The fix is the eviction: the still-applicable Job incumbent lost
      // the knapsack to the File view and no longer fits beside it.
      EXPECT_EQ(std::count(plan->drop.begin(), plan->drop.end(),
                           JobConnector().Name()),
                1)
          << "kept incumbent was not evicted to restore the budget";
    }
    for (const std::string& name : plan->drop) {
      ASSERT_TRUE(catalog.Remove(name).ok());
    }
    for (const ViewDefinition& def : plan->create) {
      ASSERT_TRUE(catalog.Add(def).ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Background materialization
// ---------------------------------------------------------------------------

/// Late-bound hook: EngineOptions is copied at construction, so tests
/// install the actual callback after the engine exists.
struct HookSlot {
  std::mutex mu;
  std::function<void()> fn;
  void Set(std::function<void()> f) {
    std::lock_guard<std::mutex> lock(mu);
    fn = std::move(f);
  }
  void Fire() {
    std::function<void()> f;
    {
      std::lock_guard<std::mutex> lock(mu);
      f = fn;
    }
    if (f) f();
  }
};

TEST(BackgroundBuildTest, ReadersCompleteWhileBuildIsInFlight) {
  auto during_build = std::make_shared<HookSlot>();
  EngineOptions options;
  options.build_hooks.during_build = [during_build] { during_build->Fire(); };
  Engine engine(SmallProv(), options);
  const std::string query = datasets::AncestorsQueryText("Job", 4);
  auto baseline = engine.Execute(query);
  ASSERT_TRUE(baseline.ok());
  const size_t expected_rows = baseline->table.num_rows();

  // The build blocks (holding its reader lock) until the main thread
  // has completed a batch of queries — proving readers make progress
  // while the materialization is in flight.
  std::mutex mu;
  std::condition_variable cv;
  bool build_started = false;
  bool readers_done = false;
  during_build->Set([&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      build_started = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return readers_done; });
  });

  AdvicePlan plan;
  plan.create.push_back(JobConnector());
  auto report = engine.ApplyAdvice(plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->builds_scheduled, 1u);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return build_started; });
  }

  // Mid-build: the placeholder is registered but not planner-visible;
  // queries run on the raw graph with pre-build results.
  const CatalogEntry* placeholder = engine.catalog().Find(JobConnector().Name());
  ASSERT_NE(placeholder, nullptr);
  EXPECT_EQ(placeholder->state, ViewState::kBuilding);
  EXPECT_EQ(engine.catalog().size(), 1u);
  EXPECT_EQ(engine.catalog().num_ready(), 0u);
  size_t completed = 0;
  for (int i = 0; i < 8; ++i) {
    auto result = engine.Execute(query);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->used_view);
    EXPECT_EQ(result->table.num_rows(), expected_rows);
    ++completed;
  }
  EXPECT_EQ(completed, 8u);
  EXPECT_GE(engine.builds_pending(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    readers_done = true;
  }
  cv.notify_all();
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());
  EXPECT_EQ(engine.builds_completed(), 1u);
  EXPECT_EQ(engine.catalog().num_ready(), 1u);

  // Published: exact, planner-visible, and the same rows as the raw
  // plan (the rewrite is an equivalence).
  ExpectViewExact(engine, JobConnector());
  auto after = engine.Execute(query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->used_view);
  EXPECT_EQ(after->table.num_rows(), expected_rows);
}

TEST(BackgroundBuildTest, DeltaDuringBuildIsReplayedAtPublish) {
  auto before_publish = std::make_shared<HookSlot>();
  EngineOptions options;
  options.build_hooks.before_publish = [before_publish] {
    before_publish->Fire();
  };
  Engine engine(SmallProv(), options);

  // The delta that will land mid-build: one removal plus an insert pair
  // touching Job->File->Job paths, so the connector genuinely changes.
  VertexId job = engine.base_graph()
                     .VerticesOfType(
                         engine.base_graph().schema().FindVertexType("Job"))
                     .front();
  VertexId file = engine.base_graph()
                      .VerticesOfType(
                          engine.base_graph().schema().FindVertexType("File"))
                      .back();
  std::atomic<int> fires{0};
  before_publish->Set([&] {
    if (fires.fetch_add(1) != 0) return;  // only the first publish attempt
    graph::GraphDelta delta;
    delta.RemoveEdge(0);
    delta.AddEdge(job, file, "WRITES_TO");
    delta.AddEdge(file, job, "IS_READ_BY");
    auto applied = engine.ApplyDelta(std::move(delta));
    ASSERT_TRUE(applied.ok()) << applied.status();
  });

  AdvicePlan plan;
  plan.create.push_back(JobConnector());
  ASSERT_TRUE(engine.ApplyAdvice(plan).ok());
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());
  EXPECT_EQ(fires.load(), 1);

  // The build lost the publish race, caught up through the incremental
  // replay (not a rebuild), and the published view is exact at the
  // post-delta base.
  EXPECT_EQ(engine.builds_completed(), 1u);
  EXPECT_EQ(engine.builds_replayed(), 1u);
  EXPECT_EQ(engine.build_retries(), 0u);
  ExpectViewExact(engine, JobConnector());
}

TEST(BackgroundBuildTest, OutOfBandMutationForcesRebuild) {
  auto before_publish = std::make_shared<HookSlot>();
  EngineOptions options;
  options.build_hooks.before_publish = [before_publish] {
    before_publish->Fire();
  };
  Engine engine(SmallProv(), options);

  VertexId job = engine.base_graph()
                     .VerticesOfType(
                         engine.base_graph().schema().FindVertexType("Job"))
                     .front();
  VertexId file = engine.base_graph()
                      .VerticesOfType(
                          engine.base_graph().schema().FindVertexType("File"))
                      .back();
  std::atomic<int> fires{0};
  before_publish->Set([&] {
    if (fires.fetch_add(1) != 0) return;
    // MutateBaseGraph leaves no replayable delta log entry: the build
    // must notice the version gap and re-materialize.
    auto status = engine.MutateBaseGraph([&](graph::PropertyGraph* g) {
      KASKADE_RETURN_IF_ERROR(g->AddEdge(job, file, "WRITES_TO").status());
      return g->AddEdge(file, job, "IS_READ_BY").status();
    });
    ASSERT_TRUE(status.ok()) << status;
  });

  AdvicePlan plan;
  plan.create.push_back(JobConnector());
  ASSERT_TRUE(engine.ApplyAdvice(plan).ok());
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());

  EXPECT_EQ(engine.builds_completed(), 1u);
  EXPECT_EQ(engine.builds_replayed(), 0u);
  EXPECT_GE(engine.build_retries(), 1u);
  ExpectViewExact(engine, JobConnector());
}

TEST(BackgroundBuildTest, FailedBuildQuarantinesEntryAndReportsError) {
  Engine engine(SmallProv());
  ViewDefinition bogus;
  bogus.kind = ViewKind::kKHopConnector;
  bogus.k = 2;
  bogus.source_type = "NoSuchType";
  bogus.target_type = "Job";

  AdvicePlan plan;
  plan.create.push_back(bogus);
  auto report = engine.ApplyAdvice(plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->builds_scheduled, 1u);
  engine.WaitForBuilds();
  EXPECT_FALSE(engine.TakeBuildError().ok());
  // The failed build quarantines its entry: the name stays reserved
  // with the failure recorded in health, out of the planner's sight.
  const CatalogEntry* entry = engine.catalog().Find(bogus.Name());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, ViewState::kQuarantined);
  EXPECT_FALSE(entry->health.ok());
  EXPECT_EQ(engine.catalog().num_quarantined(), 1u);
  EXPECT_EQ(engine.catalog().num_ready(), 0u);
  EXPECT_EQ(engine.builds_completed(), 0u);
  EXPECT_EQ(engine.TelemetrySnapshot().quarantine_events, 1u);
  // The error slot is one-shot.
  EXPECT_TRUE(engine.TakeBuildError().ok());
  // Queries still run (against the base graph).
  EXPECT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());
  // Dropping the quarantined entry retires the name.
  EXPECT_TRUE(engine.RemoveView(bogus.Name()).ok());
  EXPECT_EQ(engine.catalog().Find(bogus.Name()), nullptr);
}

TEST(BackgroundBuildTest, AnalyzeWorkloadDoesNotStealOtherRoundsBuildErrors) {
  Engine engine(SmallProv());
  ViewDefinition bogus;
  bogus.kind = ViewKind::kKHopConnector;
  bogus.k = 2;
  bogus.source_type = "NoSuchType";
  bogus.target_type = "Job";
  AdvicePlan failing;
  failing.create.push_back(bogus);
  ASSERT_TRUE(engine.ApplyAdvice(failing).ok());
  engine.WaitForBuilds();

  // AnalyzeWorkload's own builds succeed: it must not report (or
  // swallow) the earlier round's failure.
  auto report = engine.AnalyzeWorkload({datasets::AncestorsQueryText("Job", 4)});
  ASSERT_TRUE(report.ok()) << report.status();
  Status stolen = engine.TakeBuildError();
  EXPECT_FALSE(stolen.ok()) << "earlier round's failure was swallowed";
}

TEST(BackgroundBuildTest, ConcurrentReadersHammerThroughPublish) {
  // No hooks: a free-running race. Readers must never fail and must
  // always see either the raw plan or the published (exact) view.
  Engine engine(SmallProv());
  const std::string query = datasets::AncestorsQueryText("Job", 4);
  auto baseline = engine.Execute(query);
  ASSERT_TRUE(baseline.ok());
  const size_t expected_rows = baseline->table.num_rows();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = engine.Execute(query);
        if (!result.ok() || result->table.num_rows() != expected_rows) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int round = 0; round < 3; ++round) {
    AdvicePlan create_plan;
    create_plan.create.push_back(JobConnector());
    ASSERT_TRUE(engine.ApplyAdvice(create_plan).ok());
    engine.WaitForBuilds();
    ASSERT_TRUE(engine.TakeBuildError().ok());
    AdvicePlan drop_plan;
    drop_plan.drop.push_back(JobConnector().Name());
    ASSERT_TRUE(engine.ApplyAdvice(drop_plan).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.builds_completed(), 3u);
}

// ---------------------------------------------------------------------------
// Canonical-text cache path (shared by both Execute overloads)
// ---------------------------------------------------------------------------

TEST(CanonicalTextTest, ParsedQuerySharesPlanCacheAndTrackerEntry) {
  Engine engine(SmallProv());
  auto parsed = query::ParseQueryText(datasets::AncestorsQueryText("Job", 4));
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  // Pre-parsed executions used to bypass the plan cache entirely; now
  // they render to canonical text and share one cache path.
  ASSERT_TRUE(engine.Execute(*parsed).ok());
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  ASSERT_TRUE(engine.Execute(*parsed).ok());
  EXPECT_EQ(engine.plan_cache_hits(), 1u);

  // The text overload of the same canonical form hits the same entry...
  ASSERT_TRUE(engine.Execute(parsed->ToString()).ok());
  EXPECT_EQ(engine.plan_cache_hits(), 2u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  // ...and all three executions aggregate under one tracker key.
  WorkloadSnapshot snapshot = engine.workload().Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 1u);
  EXPECT_EQ(snapshot.entries[0].query_text, parsed->ToString());
  EXPECT_EQ(snapshot.entries[0].executions, 3u);
  EXPECT_GT(snapshot.entries[0].total_latency_us, 0.0);
}

TEST(CanonicalTextTest, ExecutionResultCarriesMeasuredLatency) {
  Engine engine(SmallProv());
  auto result = engine.Execute(datasets::AncestorsQueryText("Job", 4));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->latency_us, 0.0);
}

// ---------------------------------------------------------------------------
// Workload decay
// ---------------------------------------------------------------------------

TEST(WorkloadTrackerTest, DecayFadesAndEventuallyEvictsColdEntries) {
  WorkloadTracker tracker;
  for (int i = 0; i < 8; ++i) tracker.Record("cold", 100.0, 4.0, true, "v");
  tracker.Record("colder", 50.0, 2.0, false, "");

  tracker.Decay(0.5);
  WorkloadSnapshot snapshot = tracker.Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 1u);  // 1 * 0.5 truncates to 0: evicted
  EXPECT_EQ(snapshot.entries[0].query_text, "cold");
  EXPECT_EQ(snapshot.entries[0].executions, 4u);
  EXPECT_EQ(snapshot.entries[0].view_hits, 4u);
  EXPECT_DOUBLE_EQ(snapshot.entries[0].total_latency_us, 400.0);
  EXPECT_DOUBLE_EQ(snapshot.entries[0].total_estimated_cost, 16.0);

  // Un-refreshed entries die under repeated decay; a refreshed one
  // keeps its (faded) weight.
  tracker.Decay(0.5);
  tracker.Record("cold", 100.0, 4.0, false, "");
  tracker.Decay(0.5);
  tracker.Decay(0.5);
  tracker.Decay(0.5);
  EXPECT_EQ(tracker.distinct_queries(), 0u);
  // The lifetime counter is untouched by decay.
  EXPECT_EQ(tracker.total_recorded(), 10u);
}

TEST(WorkloadTrackerTest, DecayFreesStripeCapacityAtTheCap) {
  // A single-stripe tracker fills to the distinct-text cap; new texts
  // are then dropped. Decaying everything to zero evicts the stale set
  // and the stripe accepts new texts again.
  constexpr size_t kCap = 4096;
  WorkloadTracker tracker(/*stripes=*/1);
  for (size_t i = 0; i < kCap; ++i) {
    tracker.Record("old_" + std::to_string(i), 1.0, 1.0, false, "");
  }
  EXPECT_EQ(tracker.distinct_queries(), kCap);
  tracker.Record("new_hot", 1.0, 1.0, false, "");
  EXPECT_EQ(tracker.distinct_queries(), kCap);  // dropped: stripe full

  tracker.Decay(0.0);
  EXPECT_EQ(tracker.distinct_queries(), 0u);
  tracker.Record("new_hot", 1.0, 1.0, false, "");
  EXPECT_EQ(tracker.distinct_queries(), 1u);
  EXPECT_EQ(tracker.Snapshot().entries[0].query_text, "new_hot");
}

TEST(AdvisorTest, DecayedColdQueryLosesItsView) {
  // Same story as ResetWorkloadLetsQuietViewsBecomeDropCandidates, but
  // driven by EngineOptions::workload_decay instead of an explicit
  // reset: each AutoAdvise round halves history, so a phase-1-hot query
  // that goes silent in phase 2 fades until its view is proposed as a
  // drop — while phase 2's own traffic keeps its full weight.
  EngineOptions options;
  options.workload_decay = 0.5;
  Engine engine(SmallProv(), options);

  // Phase 1: the ancestors query is hot; the trigger-free AutoAdvise
  // round materializes its connector view.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());
  }
  ASSERT_TRUE(engine.AutoAdvise().ok());
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());
  ASSERT_NE(engine.catalog().Find(JobConnector().Name()), nullptr);

  // Phase 2: only an unrelated query arrives. Each advice round decays
  // the old observations by half; within a few rounds the hot query's
  // count truncates to zero and its view has no observed supporter.
  const std::string unrelated =
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
  bool dropped = false;
  for (int round = 0; round < 6 && !dropped; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.Execute(unrelated).ok());
    auto plan = engine.Advise();
    ASSERT_TRUE(plan.ok()) << plan.status();
    dropped = std::count(plan->drop.begin(), plan->drop.end(),
                         JobConnector().Name()) == 1;
    ASSERT_TRUE(engine.ApplyAdvice(*plan).ok());
    engine.WaitForBuilds();
    ASSERT_TRUE(engine.TakeBuildError().ok());
    // ApplyAdvice alone never decays; run the decaying round explicitly.
    ASSERT_TRUE(engine.AutoAdvise().ok());
    engine.WaitForBuilds();
    ASSERT_TRUE(engine.TakeBuildError().ok());
  }
  EXPECT_TRUE(dropped);
  EXPECT_EQ(engine.catalog().Find(JobConnector().Name()), nullptr);
}

TEST(AdvisorTest, PeriodicTriggerFiresAutoAdviseMidTraffic) {
  // The opt-in counter trigger: with auto_advise_every_n_ops = 5 the
  // fifth recorded execution runs an advice round on the query thread
  // itself — no external advice loop — and materializes the view for
  // the traffic the tracker observed.
  EngineOptions options;
  options.auto_advise_every_n_ops = 5;
  Engine engine(SmallProv(), options);
  EXPECT_EQ(engine.auto_advises_triggered(), 0u);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());
  }
  EXPECT_EQ(engine.auto_advises_triggered(), 1u);
  EXPECT_EQ(engine.auto_advise_errors(), 0u);
  engine.WaitForBuilds();
  ASSERT_TRUE(engine.TakeBuildError().ok());
  EXPECT_NE(engine.catalog().Find(JobConnector().Name()), nullptr);

  // The threshold advanced: the next few queries don't re-fire...
  ASSERT_TRUE(engine.Execute(datasets::AncestorsQueryText("Job", 4)).ok());
  EXPECT_EQ(engine.auto_advises_triggered(), 1u);
  // ...until another N executions recorded (batch queries count too).
  std::vector<std::string> batch(4, datasets::AncestorsQueryText("Job", 4));
  for (const auto& result : engine.ExecuteBatch(batch)) {
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(engine.auto_advises_triggered(), 2u);
}

}  // namespace
}  // namespace kaskade::core
