// Overload-behavior tests: deadline-aware cooperative cancellation
// (solo, parallel, batch, fused) and the admission gate. The contract
// under test: a query that finishes within its deadline is byte-identical
// to a run with no deadline at all; an expired deadline fails only the
// affected executions with kDeadlineExceeded (never a torn table, never
// the internal sibling-cancel sentinel); the admission gate sheds excess
// arrivals with kUnavailable without touching the graph.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/fault.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "query/executor.h"

namespace kaskade::core {
namespace {

using graph::PropertyGraph;
using std::chrono::steady_clock;

PropertyGraph MediumProv(uint64_t seed = 42) {
  datasets::ProvOptions options;
  options.num_jobs = 80;
  options.num_files = 160;
  options.include_auxiliary = false;
  options.seed = seed;
  return datasets::MakeProvenanceGraph(options);
}

/// Order-preserving row image (determinism checks compare these, so row
/// *order* counts, not just content).
std::vector<std::vector<int64_t>> RowsOf(const query::Table& t) {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(t.num_rows());
  for (const query::Table::Row& row : t.rows()) {
    std::vector<int64_t> r;
    r.reserve(row.size());
    for (const graph::PropertyValue& v : row) r.push_back(v.as_int());
    rows.push_back(std::move(r));
  }
  return rows;
}

steady_clock::time_point Generous() {
  return steady_clock::now() + std::chrono::minutes(10);
}

// ---------------------------------------------------------------------------
// Deadline correctness: generous deadline == no deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, GenerousDeadlineIsByteIdenticalToNoDeadline) {
  Engine engine(MediumProv());
  const std::string text = datasets::AncestorsQueryText("Job", 4);

  auto plain = engine.Execute(text);
  ASSERT_TRUE(plain.ok()) << plain.status();

  CallOptions call;
  call.deadline = Generous();
  auto bounded = engine.Execute(text, call);
  ASSERT_TRUE(bounded.ok()) << bounded.status();

  EXPECT_EQ(RowsOf(plain->table), RowsOf(bounded->table));
  // The guard actually ran: epoch-counted clock tests were performed
  // and surfaced through telemetry.
  EXPECT_GT(engine.deadline_checks(), 0u);
  EXPECT_EQ(engine.queries_timed_out(), 0u);
}

TEST(DeadlineTest, ParallelRunWithDeadlineMatchesSequentialWithout) {
  EngineOptions parallel_options;
  parallel_options.executor.parallelism = 4;
  Engine parallel_engine(MediumProv(), parallel_options);
  Engine sequential_engine(MediumProv());
  const std::string text = datasets::AncestorsQueryText("File", 4);

  auto sequential = sequential_engine.Execute(text);
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  CallOptions call;
  call.deadline = Generous();
  auto parallel = parallel_engine.Execute(text, call);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_EQ(RowsOf(sequential->table), RowsOf(parallel->table));
}

// ---------------------------------------------------------------------------
// Deadline expiry: clean kDeadlineExceeded, counted, no sentinel leak
// ---------------------------------------------------------------------------

TEST(DeadlineTest, PreExpiredDeadlineFailsWithDeadlineExceeded) {
  Engine engine(MediumProv());
  CallOptions call;
  call.deadline = steady_clock::now() - std::chrono::milliseconds(1);
  auto result = engine.Execute(datasets::AncestorsQueryText("Job", 4), call);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.queries_timed_out(), 1u);
  EXPECT_EQ(engine.queries_shed(), 0u);
}

TEST(DeadlineTest, TightDeadlineExpiresMidParallelEvaluationCleanly) {
  EngineOptions options;
  options.executor.parallelism = 4;
  Engine engine(MediumProv(), options);
  const std::string text = datasets::AncestorsQueryText("File", 8);
  // Warm the plan cache so the deadline burns inside evaluation, not
  // planning.
  ASSERT_TRUE(engine.Execute(text).ok());

  CallOptions call;
  call.deadline = steady_clock::now() + std::chrono::microseconds(200);
  auto result = engine.Execute(text, call);
  ASSERT_FALSE(result.ok());
  // The public failure is always kDeadlineExceeded: the sibling-cancel
  // sentinel workers use to stop each other must never escape.
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  EXPECT_EQ(engine.queries_timed_out(), 1u);
}

TEST(DeadlineTest, DefaultQueryDeadlineAppliesWhenCallPassesNone) {
  EngineOptions options;
  options.default_query_deadline = std::chrono::microseconds(1);
  Engine engine(MediumProv(), options);
  auto result = engine.Execute(datasets::AncestorsQueryText("Job", 4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Batch + fused deadlines: per-member failure, finished members keep rows
// ---------------------------------------------------------------------------

TEST(DeadlineTest, BatchGenerousDeadlineMatchesNoDeadline) {
  Engine engine(MediumProv());
  std::vector<std::string> texts = {
      datasets::AncestorsQueryText("Job", 3),
      datasets::DescendantsQueryText("Job", 3),
      datasets::AncestorsQueryText("File", 3),
      datasets::AncestorsQueryText("Job", 3),
  };
  auto plain = engine.ExecuteBatch(texts);
  CallOptions call;
  call.deadline = Generous();
  auto bounded = engine.ExecuteBatch(texts, call);
  ASSERT_EQ(plain.size(), bounded.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    ASSERT_TRUE(plain[i].ok()) << plain[i].status();
    ASSERT_TRUE(bounded[i].ok()) << bounded[i].status();
    EXPECT_EQ(RowsOf(plain[i]->table), RowsOf(bounded[i]->table));
  }
  EXPECT_EQ(engine.queries_timed_out(), 0u);
}

TEST(DeadlineTest, ExpiredBatchFailsEveryMemberIndividually) {
  Engine engine(MediumProv());
  std::vector<std::string> texts = {
      datasets::AncestorsQueryText("Job", 3),
      datasets::DescendantsQueryText("Job", 3),
      datasets::AncestorsQueryText("File", 3),
  };
  CallOptions call;
  call.deadline = steady_clock::now() - std::chrono::milliseconds(1);
  auto results = engine.ExecuteBatch(texts, call);
  ASSERT_EQ(results.size(), texts.size());
  for (const auto& slot : results) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kDeadlineExceeded)
        << slot.status();
  }
  EXPECT_EQ(engine.queries_timed_out(), texts.size());
}

TEST(DeadlineTest, FusedGroupHonorsDeadlinesWithoutTornTables) {
  Engine engine(MediumProv());
  // Eight same-shape queries: the batch runs them as one fused
  // traversal (min_group_size is 2 and fusion defaults on).
  std::vector<std::string> texts(8, datasets::AncestorsQueryText("Job", 3));

  CallOptions generous;
  generous.deadline = Generous();
  auto fused = engine.ExecuteBatch(texts, generous);
  ASSERT_EQ(fused.size(), texts.size());
  auto solo = engine.Execute(texts[0]);
  ASSERT_TRUE(solo.ok()) << solo.status();
  for (const auto& slot : fused) {
    ASSERT_TRUE(slot.ok()) << slot.status();
    EXPECT_EQ(RowsOf(slot->table), RowsOf(solo->table));
  }
  EXPECT_GT(engine.fused_groups(), 0u) << "batch did not take the fused path";

  // An already-expired deadline fails every fused member with the
  // public code — no partial tables, no sentinel leak.
  CallOptions expired;
  expired.deadline = steady_clock::now() - std::chrono::milliseconds(1);
  auto failed = engine.ExecuteBatch(texts, expired);
  for (const auto& slot : failed) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kDeadlineExceeded)
        << slot.status();
  }
}

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

TEST(AdmissionTest, GateShedsArrivalsPastTheLimitWithUnavailable) {
  // Deterministic occupancy: a fault hook *blocks* (without failing)
  // the first snapshot build, so the query holding the single admission
  // slot provably sits inside the engine while the probe arrives.
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;
  };
  auto gate = std::make_shared<Gate>();

  EngineOptions options;
  options.max_concurrent_queries = 1;
  options.admission_wait_budget = std::chrono::microseconds(0);
  options.fault_hooks.hook = [gate](FaultSite site, const std::string&) {
    if (site != FaultSite::kSnapshotBuild) return Status::OK();
    std::unique_lock<std::mutex> lock(gate->mu);
    if (!gate->entered) {
      gate->entered = true;
      gate->cv.notify_all();
      gate->cv.wait(lock, [&] { return gate->release; });
    }
    return Status::OK();
  };
  Engine engine(MediumProv(), options);
  const std::string text = datasets::AncestorsQueryText("Job", 3);

  std::thread occupant([&] {
    auto result = engine.Execute(text);
    EXPECT_TRUE(result.ok()) << result.status();
  });
  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->entered; });
  }

  auto shed = engine.Execute(text);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.queries_shed(), 1u);

  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->release = true;
    gate->cv.notify_all();
  }
  occupant.join();

  // Slot released: the same call now succeeds.
  auto after = engine.Execute(text);
  EXPECT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(engine.queries_shed(), 1u);
}

TEST(AdmissionTest, ShedBatchFillsEverySlotAndCountsEveryMember) {
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;
  };
  auto gate = std::make_shared<Gate>();

  EngineOptions options;
  options.max_concurrent_queries = 1;
  options.fault_hooks.hook = [gate](FaultSite site, const std::string&) {
    if (site != FaultSite::kSnapshotBuild) return Status::OK();
    std::unique_lock<std::mutex> lock(gate->mu);
    if (!gate->entered) {
      gate->entered = true;
      gate->cv.notify_all();
      gate->cv.wait(lock, [&] { return gate->release; });
    }
    return Status::OK();
  };
  Engine engine(MediumProv(), options);
  const std::string text = datasets::AncestorsQueryText("Job", 3);

  std::thread occupant([&] { (void)engine.Execute(text); });
  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->entered; });
  }

  std::vector<std::string> texts(3, text);
  auto results = engine.ExecuteBatch(texts);
  ASSERT_EQ(results.size(), texts.size());
  for (const auto& slot : results) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kUnavailable);
  }
  // One rejected batch counts one shed per member.
  EXPECT_EQ(engine.queries_shed(), texts.size());

  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->release = true;
    gate->cv.notify_all();
  }
  occupant.join();
}

// ---------------------------------------------------------------------------
// WaitForBuilds with a timeout
// ---------------------------------------------------------------------------

TEST(WaitForBuildsTest, BoundedWaitReportsDeadlineExceededWhileBusy) {
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
  };
  auto gate = std::make_shared<Gate>();

  EngineOptions options;
  options.build_hooks.during_build = [gate] {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->release; });
  };
  Engine engine(MediumProv(), options);

  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  AdvicePlan plan;
  plan.create.push_back(def);
  auto report = engine.ApplyAdvice(plan);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->builds_scheduled, 1u);

  Status bounded = engine.WaitForBuilds(std::chrono::milliseconds(10));
  EXPECT_EQ(bounded.code(), StatusCode::kDeadlineExceeded) << bounded;

  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->release = true;
    gate->cv.notify_all();
  }
  // Unblocked: the bounded wait now succeeds and the build published.
  EXPECT_TRUE(engine.WaitForBuilds(std::chrono::seconds(30)).ok());
  EXPECT_TRUE(engine.TakeBuildError().ok());
  EXPECT_EQ(engine.builds_completed(), 1u);
}

}  // namespace
}  // namespace kaskade::core
