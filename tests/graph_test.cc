// Tests for the property-graph substrate: values, schema, storage, stats.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/delta.h"
#include "graph/property_graph.h"
#include "graph/property_value.h"
#include "graph/schema.h"
#include "graph/serialization.h"
#include "graph/stats.h"

namespace kaskade::graph {
namespace {

// ---------------------------------------------------------------------------
// PropertyValue
// ---------------------------------------------------------------------------

TEST(PropertyValueTest, TypePredicates) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_TRUE(PropertyValue(true).is_bool());
  EXPECT_TRUE(PropertyValue(42).is_int());
  EXPECT_TRUE(PropertyValue(1.5).is_double());
  EXPECT_TRUE(PropertyValue("x").is_string());
  EXPECT_TRUE(PropertyValue(42).is_numeric());
  EXPECT_TRUE(PropertyValue(1.5).is_numeric());
  EXPECT_FALSE(PropertyValue("x").is_numeric());
}

TEST(PropertyValueTest, ToStringRendersAllKinds) {
  EXPECT_EQ(PropertyValue().ToString(), "null");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue(42).ToString(), "42");
  EXPECT_EQ(PropertyValue("abc").ToString(), "abc");
}

TEST(PropertyValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(PropertyValue(2), PropertyValue(2.0));
  EXPECT_NE(PropertyValue(2), PropertyValue(2.5));
  EXPECT_EQ(PropertyValue(2), PropertyValue(2));
  EXPECT_NE(PropertyValue(2), PropertyValue("2"));
}

TEST(PropertyValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(PropertyValue(1), PropertyValue(2));
  EXPECT_LT(PropertyValue(1.5), PropertyValue(2));
  EXPECT_LT(PropertyValue("a"), PropertyValue("b"));
  // Cross-type rank: null < bool < numeric < string.
  EXPECT_LT(PropertyValue(), PropertyValue(false));
  EXPECT_LT(PropertyValue(true), PropertyValue(0));
  EXPECT_LT(PropertyValue(99), PropertyValue(""));
}

TEST(PropertyValueTest, ToDoubleWidens) {
  EXPECT_DOUBLE_EQ(PropertyValue(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).ToDouble(), 2.5);
  EXPECT_DOUBLE_EQ(PropertyValue(true).ToDouble(), 1.0);
  EXPECT_DOUBLE_EQ(PropertyValue("x").ToDouble(), 0.0);
}

TEST(PropertyMapTest, SetFindOverwrite) {
  PropertyMap map;
  EXPECT_TRUE(map.empty());
  map.Set("a", PropertyValue(1));
  map.Set("b", PropertyValue("two"));
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find("a"), nullptr);
  EXPECT_EQ(*map.Find("a"), PropertyValue(1));
  map.Set("a", PropertyValue(10));
  EXPECT_EQ(*map.Find("a"), PropertyValue(10));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.Find("zzz"), nullptr);
  EXPECT_TRUE(map.GetOrNull("zzz").is_null());
}

TEST(PropertyMapTest, InitializerList) {
  PropertyMap map{{"k", PropertyValue(5)}, {"s", PropertyValue("v")}};
  EXPECT_EQ(map.GetOrNull("k"), PropertyValue(5));
  EXPECT_EQ(map.GetOrNull("s"), PropertyValue("v"));
}

// ---------------------------------------------------------------------------
// GraphSchema
// ---------------------------------------------------------------------------

GraphSchema ProvSchema() {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  EXPECT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  EXPECT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
  return schema;
}

TEST(SchemaTest, VertexTypeInterning) {
  GraphSchema schema;
  VertexTypeId a = schema.AddVertexType("Job");
  VertexTypeId b = schema.AddVertexType("Job");
  EXPECT_EQ(a, b);
  EXPECT_EQ(schema.num_vertex_types(), 1u);
  EXPECT_EQ(schema.FindVertexType("Job"), a);
  EXPECT_EQ(schema.FindVertexType("Nope"), kInvalidTypeId);
}

TEST(SchemaTest, EdgeTypeValidation) {
  GraphSchema schema = ProvSchema();
  EXPECT_EQ(schema.num_edge_types(), 2u);
  // Duplicate name rejected.
  EXPECT_EQ(schema.AddEdgeType("WRITES_TO", "Job", "File").status().code(),
            StatusCode::kAlreadyExists);
  // Unknown endpoint types rejected.
  EXPECT_EQ(schema.AddEdgeType("X", "Nope", "File").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(schema.AddEdgeType("X", "Job", "Nope").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, EdgeTypesFromInto) {
  GraphSchema schema = ProvSchema();
  VertexTypeId job = schema.FindVertexType("Job");
  VertexTypeId file = schema.FindVertexType("File");
  EXPECT_EQ(schema.EdgeTypesFrom(job).size(), 1u);
  EXPECT_EQ(schema.EdgeTypesInto(job).size(), 1u);
  EXPECT_EQ(schema.edge_type(schema.EdgeTypesFrom(job)[0]).name, "WRITES_TO");
  EXPECT_EQ(schema.edge_type(schema.EdgeTypesInto(file)[0]).name, "WRITES_TO");
}

TEST(SchemaTest, Homogeneity) {
  GraphSchema one;
  one.AddVertexType("V");
  EXPECT_TRUE(one.IsHomogeneous());
  EXPECT_FALSE(ProvSchema().IsHomogeneous());
}

TEST(SchemaTest, KHopSchemaPathParity) {
  // Job<->File is bipartite: job-to-job paths exist only at even k.
  GraphSchema schema = ProvSchema();
  VertexTypeId job = schema.FindVertexType("Job");
  VertexTypeId file = schema.FindVertexType("File");
  EXPECT_TRUE(schema.HasKHopSchemaPath(job, job, 0));
  EXPECT_FALSE(schema.HasKHopSchemaPath(job, job, 1));
  EXPECT_TRUE(schema.HasKHopSchemaPath(job, job, 2));
  EXPECT_FALSE(schema.HasKHopSchemaPath(job, job, 3));
  EXPECT_TRUE(schema.HasKHopSchemaPath(job, job, 10));
  EXPECT_TRUE(schema.HasKHopSchemaPath(job, file, 1));
  EXPECT_FALSE(schema.HasKHopSchemaPath(job, file, 2));
}

// ---------------------------------------------------------------------------
// PropertyGraph
// ---------------------------------------------------------------------------

TEST(PropertyGraphTest, AddVertexByNameValidatesType) {
  PropertyGraph g(ProvSchema());
  ASSERT_TRUE(g.AddVertex("Job").ok());
  EXPECT_EQ(g.AddVertex("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(g.NumVertices(), 1u);
}

TEST(PropertyGraphTest, EdgeEndpointTypeEnforced) {
  PropertyGraph g(ProvSchema());
  VertexId job = g.AddVertex("Job").value();
  VertexId file = g.AddVertex("File").value();
  EXPECT_TRUE(g.AddEdge(job, file, "WRITES_TO").ok());
  // File cannot write to a file: the schema constraint of §III-A.
  EXPECT_EQ(g.AddEdge(file, file, "WRITES_TO").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(job, file, "IS_READ_BY").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(job, file, "NOPE").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(g.AddEdge(job, 999, "WRITES_TO").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(PropertyGraphTest, AdjacencyAndDegrees) {
  PropertyGraph g(ProvSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(f, j2, "IS_READ_BY").ok());
  EXPECT_EQ(g.OutDegree(j1), 1u);
  EXPECT_EQ(g.InDegree(j1), 0u);
  EXPECT_EQ(g.OutDegree(f), 1u);
  EXPECT_EQ(g.InDegree(f), 1u);
  EXPECT_EQ(g.Edge(g.OutEdges(j1)[0]).target, f);
  EXPECT_EQ(g.Edge(g.InEdges(j2)[0]).source, f);
  EXPECT_TRUE(g.HasEdgeBetween(j1, f));
  EXPECT_FALSE(g.HasEdgeBetween(j1, j2));
}

TEST(PropertyGraphTest, TypeCountsMaintained) {
  PropertyGraph g(ProvSchema());
  VertexId j = g.AddVertex("Job").value();
  g.AddVertex("File").value();
  g.AddVertex("File").value();
  VertexTypeId job_t = g.schema().FindVertexType("Job");
  VertexTypeId file_t = g.schema().FindVertexType("File");
  EXPECT_EQ(g.NumVerticesOfType(job_t), 1u);
  EXPECT_EQ(g.NumVerticesOfType(file_t), 2u);
  EXPECT_EQ(g.VerticesOfType(job_t), std::vector<VertexId>{j});
}

TEST(PropertyGraphTest, PropertiesRoundTrip) {
  PropertyGraph g(ProvSchema());
  VertexId j = g.AddVertex("Job", {{"CPU", PropertyValue(4.5)}}).value();
  EXPECT_EQ(g.VertexProperty(j, "CPU"), PropertyValue(4.5));
  EXPECT_TRUE(g.VertexProperty(j, "missing").is_null());
  ASSERT_TRUE(g.SetVertexProperty(j, "CPU", PropertyValue(9.0)).ok());
  EXPECT_EQ(g.VertexProperty(j, "CPU"), PropertyValue(9.0));
  EXPECT_EQ(g.SetVertexProperty(99, "x", PropertyValue(1)).code(),
            StatusCode::kOutOfRange);

  VertexId f = g.AddVertex("File").value();
  EdgeId e = g.AddEdge(j, f, "WRITES_TO", {{"ts", PropertyValue(7)}}).value();
  EXPECT_EQ(g.EdgeProperty(e, "ts"), PropertyValue(7));
  ASSERT_TRUE(g.SetEdgeProperty(e, "ts", PropertyValue(8)).ok());
  EXPECT_EQ(g.EdgeProperty(e, "ts"), PropertyValue(8));
}

TEST(PropertyGraphTest, MultiEdgesAllowed) {
  PropertyGraph g(ProvSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutDegree(j), 2u);
}

// ---------------------------------------------------------------------------
// GraphStats
// ---------------------------------------------------------------------------

PropertyGraph StarGraph(size_t leaves) {
  GraphSchema schema;
  schema.AddVertexType("V");
  EXPECT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  VertexId hub = g.AddVertexOfType(0);
  for (size_t i = 0; i < leaves; ++i) {
    VertexId leaf = g.AddVertexOfType(0);
    EXPECT_TRUE(g.AddEdgeOfType(hub, leaf, 0).ok());
  }
  return g;
}

TEST(GraphStatsTest, StarDegreePercentiles) {
  PropertyGraph g = StarGraph(99);  // 1 hub deg 99, 99 leaves deg 0
  GraphStats stats = GraphStats::Compute(g);
  EXPECT_EQ(stats.num_vertices(), 100u);
  EXPECT_EQ(stats.num_edges(), 99u);
  const TypeDegreeSummary& s = stats.overall();
  EXPECT_DOUBLE_EQ(s.p50, 0);
  EXPECT_DOUBLE_EQ(s.p100, 99);
  // p99+ nearest-rank lands on the hub only at the very top.
  EXPECT_LE(s.p95, 99);
}

TEST(GraphStatsTest, PerTypeSummaries) {
  PropertyGraph g(ProvSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(j2, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(f, j1, "IS_READ_BY").ok());
  GraphStats stats = GraphStats::Compute(g);
  VertexTypeId job_t = g.schema().FindVertexType("Job");
  VertexTypeId file_t = g.schema().FindVertexType("File");
  EXPECT_EQ(stats.ForType(job_t).vertex_count, 2u);
  EXPECT_DOUBLE_EQ(stats.ForType(job_t).p100, 1);
  EXPECT_EQ(stats.ForType(file_t).vertex_count, 1u);
  EXPECT_DOUBLE_EQ(stats.ForType(file_t).p100, 1);
}

TEST(GraphStatsTest, PercentileInterpolationMonotone) {
  TypeDegreeSummary s;
  s.p50 = 2;
  s.p90 = 10;
  s.p95 = 20;
  s.p100 = 100;
  double prev = 0;
  for (double alpha = 50; alpha <= 100; alpha += 5) {
    double v = s.Percentile(alpha);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 2);
  EXPECT_DOUBLE_EQ(s.Percentile(90), 10);
  EXPECT_DOUBLE_EQ(s.Percentile(95), 20);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100);
  EXPECT_DOUBLE_EQ(s.Percentile(30), 2);   // clamps below
  EXPECT_DOUBLE_EQ(s.Percentile(120), 100);  // clamps above
}

TEST(DegreeDistributionTest, CcdfCountsAreDecreasing) {
  PropertyGraph g = StarGraph(9);
  DegreeDistribution dist = ComputeOutDegreeDistribution(g);
  ASSERT_GE(dist.ccdf.size(), 2u);
  for (size_t i = 1; i < dist.ccdf.size(); ++i) {
    EXPECT_GT(dist.ccdf[i].degree, dist.ccdf[i - 1].degree);
    EXPECT_LE(dist.ccdf[i].count, dist.ccdf[i - 1].count);
  }
  // Last bucket: nothing has degree > max.
  EXPECT_EQ(dist.ccdf.back().count, 0u);
}

TEST(DegreeDistributionTest, UniformDegreesFitPoorlyOrFlat) {
  // A cycle where every vertex has out-degree 1: CCDF has a single point
  // at degree 1 with count 0, so no meaningful power law.
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  for (int i = 0; i < 10; ++i) g.AddVertexOfType(0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.AddEdgeOfType(i, (i + 1) % 10, 0).ok());
  }
  DegreeDistribution dist = ComputeOutDegreeDistribution(g);
  EXPECT_EQ(dist.ccdf.size(), 1u);
  EXPECT_DOUBLE_EQ(dist.powerlaw_slope, 0);
}

// ---------------------------------------------------------------------------
// Removal (tombstones) and GraphDelta
// ---------------------------------------------------------------------------

GraphSchema RemovalSchema() {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  EXPECT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  EXPECT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
  return schema;
}

TEST(RemovalTest, RemoveEdgeUnlinksButKeepsRecordReadable) {
  PropertyGraph g(RemovalSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId keep = g.AddEdge(j, f, "WRITES_TO").value();
  EdgeId doomed =
      g.AddEdge(j, f, "WRITES_TO", {{"w", PropertyValue(7)}}).value();

  ASSERT_TRUE(g.RemoveEdge(doomed).ok());
  EXPECT_FALSE(g.IsEdgeLive(doomed));
  EXPECT_TRUE(g.IsEdgeLive(keep));
  EXPECT_EQ(g.NumEdges(), 2u);       // id space untouched
  EXPECT_EQ(g.NumLiveEdges(), 1u);   // live count decremented
  EXPECT_EQ(g.OutDegree(j), 1u);     // adjacency purged
  EXPECT_EQ(g.InDegree(f), 1u);
  EXPECT_EQ(g.NumEdgesOfType(0), 1u);
  EXPECT_TRUE(g.has_removals());
  // The dead record and its properties stay readable (lineage).
  EXPECT_EQ(g.Edge(doomed).source, j);
  EXPECT_EQ(g.EdgeProperty(doomed, "w"), PropertyValue(7));

  // Double removal and bad ids are rejected.
  EXPECT_EQ(g.RemoveEdge(doomed).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.RemoveEdge(99).code(), StatusCode::kOutOfRange);
}

TEST(RemovalTest, RemoveVertexRequiresNoLiveEdges) {
  PropertyGraph g(RemovalSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId e = g.AddEdge(j, f, "WRITES_TO").value();

  EXPECT_EQ(g.RemoveVertex(j).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  ASSERT_TRUE(g.RemoveVertex(j).ok());
  EXPECT_FALSE(g.IsVertexLive(j));
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumLiveVertices(), 1u);
  EXPECT_EQ(g.NumVerticesOfType(0), 0u);
  EXPECT_EQ(g.VerticesOfType(0).size(), 0u);  // scans skip tombstones
  EXPECT_EQ(g.RemoveVertex(j).code(), StatusCode::kFailedPrecondition);
  // New ids are appended after the tombstone, never reusing it.
  VertexId j2 = g.AddVertex("Job").value();
  EXPECT_EQ(j2, 2u);
}

TEST(RemovalTest, StatsAndCsrSkipDeadElements) {
  PropertyGraph g(RemovalSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId e1 = g.AddEdge(j1, f, "WRITES_TO").value();
  ASSERT_TRUE(g.AddEdge(j2, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.RemoveEdge(e1).ok());

  GraphStats stats = GraphStats::Compute(g);
  EXPECT_EQ(stats.num_vertices(), 3u);
  EXPECT_EQ(stats.num_edges(), 1u);
}

TEST(GraphDeltaTest, CoalesceDropsDuplicateRemovals) {
  GraphDelta delta;
  delta.RemoveEdge(3).RemoveEdge(1).RemoveEdge(3).RemoveEdge(1);
  EXPECT_EQ(delta.Coalesce(), 2u);
  EXPECT_EQ(delta.edge_removals, (std::vector<EdgeId>{3, 1}));
  EXPECT_EQ(delta.Coalesce(), 0u);
}

TEST(GraphDeltaTest, ValidateCatchesEveryFailureMode) {
  PropertyGraph g(RemovalSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId e = g.AddEdge(j, f, "WRITES_TO").value();

  GraphDelta ok_delta;
  ok_delta.AddVertex("File").AddEdge(j, 2, "WRITES_TO").RemoveEdge(e);
  EXPECT_TRUE(ok_delta.Validate(g).ok());

  GraphDelta unknown_vertex_type;
  unknown_vertex_type.AddVertex("Nope");
  EXPECT_EQ(unknown_vertex_type.Validate(g).code(), StatusCode::kNotFound);

  GraphDelta unknown_edge_type;
  unknown_edge_type.AddEdge(j, f, "Nope");
  EXPECT_EQ(unknown_edge_type.Validate(g).code(), StatusCode::kNotFound);

  GraphDelta bad_endpoint;
  bad_endpoint.AddEdge(j, 99, "WRITES_TO");
  EXPECT_EQ(bad_endpoint.Validate(g).code(), StatusCode::kOutOfRange);

  GraphDelta type_violation;
  type_violation.AddEdge(f, j, "WRITES_TO");  // File cannot write
  EXPECT_EQ(type_violation.Validate(g).code(), StatusCode::kInvalidArgument);

  GraphDelta missing_removal;
  missing_removal.RemoveEdge(42);
  EXPECT_EQ(missing_removal.Validate(g).code(), StatusCode::kInvalidArgument);

  GraphDelta duplicate_removal;
  duplicate_removal.RemoveEdge(e).RemoveEdge(e);
  EXPECT_EQ(duplicate_removal.Validate(g).code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphDeltaTest, ApplyUsesCanonicalOrderAndReportsIds) {
  PropertyGraph g(RemovalSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId old_edge = g.AddEdge(j, f, "WRITES_TO").value();

  GraphDelta delta;
  // The new edge targets the vertex this same delta creates (future id).
  delta.AddVertex("File", {{"name", PropertyValue("out2")}});
  delta.AddEdge(j, 2, "WRITES_TO");
  delta.RemoveEdge(old_edge);

  auto applied = ApplyDeltaToGraph(&g, delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  ASSERT_EQ(applied->new_vertices.size(), 1u);
  EXPECT_EQ(applied->new_vertices[0], 2u);
  ASSERT_EQ(applied->new_edges.size(), 1u);
  EXPECT_EQ(applied->removed_edges, 1u);
  EXPECT_FALSE(g.IsEdgeLive(old_edge));
  EXPECT_TRUE(g.IsEdgeLive(applied->new_edges[0]));
  EXPECT_EQ(g.Edge(applied->new_edges[0]).target, 2u);
  EXPECT_EQ(g.NumLiveEdges(), 1u);
  EXPECT_EQ(g.VertexProperty(2, "name"), PropertyValue("out2"));

  // Validation failures leave the graph untouched.
  GraphDelta bad;
  bad.AddEdge(j, 2, "WRITES_TO");
  bad.RemoveEdge(old_edge);  // already dead
  size_t live_before = g.NumLiveEdges();
  EXPECT_FALSE(ApplyDeltaToGraph(&g, bad).ok());
  EXPECT_EQ(g.NumLiveEdges(), live_before);
}

TEST(RemovalTest, SerializationCompactsTombstones) {
  PropertyGraph g(RemovalSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId e1 = g.AddEdge(j1, f, "WRITES_TO").value();
  ASSERT_TRUE(g.AddEdge(j2, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.RemoveEdge(e1).ok());
  ASSERT_TRUE(g.RemoveVertex(j1).ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveGraph(g, &stream).ok());
  auto loaded = LoadGraph(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), 2u);  // dense again
  EXPECT_EQ(loaded->NumEdges(), 1u);
  EXPECT_FALSE(loaded->has_removals());
  // The surviving edge still connects a Job to the File.
  EXPECT_EQ(loaded->VertexTypeName(loaded->Edge(0).source), "Job");
  EXPECT_EQ(loaded->VertexTypeName(loaded->Edge(0).target), "File");
}

}  // namespace
}  // namespace kaskade::graph
