// Coverage for smaller public surfaces: result tables, the abstract cost
// model, view naming/Cypher rendering, and assorted invariants.

#include <gtest/gtest.h>

#include "core/view_definition.h"
#include "datasets/generators.h"
#include "graph/stats.h"
#include "query/cost.h"
#include "query/parser.h"
#include "query/table.h"

namespace kaskade {
namespace {

using graph::PropertyValue;
using query::Column;
using query::Table;

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, ColumnsAndRows) {
  Table t({Column{"a", true}, Column{"b", false}});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.FindColumn("b"), 1);
  EXPECT_EQ(t.FindColumn("zzz"), -1);
  t.AddRow({PropertyValue(1), PropertyValue("x")});
  t.AddRow({PropertyValue(0), PropertyValue("y")});
  EXPECT_EQ(t.num_rows(), 2u);
  std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("a | b"), std::string::npos);
  EXPECT_NE(rendered.find("1 | x"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table t({Column{"n", false}});
  for (int i = 0; i < 30; ++i) t.AddRow({PropertyValue(i)});
  std::string rendered = t.ToString(5);
  EXPECT_NE(rendered.find("25 more rows"), std::string::npos);
}

TEST(TableTest, SortedRowsIsRowLexicographic) {
  Table t({Column{"a", false}, Column{"b", false}});
  t.AddRow({PropertyValue(2), PropertyValue(1)});
  t.AddRow({PropertyValue(1), PropertyValue(9)});
  t.AddRow({PropertyValue(1), PropertyValue(2)});
  auto sorted = t.SortedRows();
  EXPECT_EQ(sorted[0][0], PropertyValue(1));
  EXPECT_EQ(sorted[0][1], PropertyValue(2));
  EXPECT_EQ(sorted[2][0], PropertyValue(2));
}

// ---------------------------------------------------------------------------
// Abstract cost model (MatchCostOnCounts)
// ---------------------------------------------------------------------------

query::MatchQuery VarLengthMatch(int max_hops) {
  auto q = query::ParseQueryText("MATCH (a:V)-[r*1.." +
                                 std::to_string(max_hops) +
                                 "]->(b:V) RETURN a, b");
  EXPECT_TRUE(q.ok());
  return q->match();
}

TEST(MatchCostTest, MonotoneInLevelsSeedsAndSize) {
  auto fixed = [](const std::string&) { return 2.0; };
  query::MatchQuery two = VarLengthMatch(2);
  query::MatchQuery eight = VarLengthMatch(8);
  EXPECT_LT(query::MatchCostOnCounts(two, 100, 1000, 5000, fixed),
            query::MatchCostOnCounts(eight, 100, 1000, 5000, fixed));
  EXPECT_LT(query::MatchCostOnCounts(two, 100, 1000, 5000, fixed),
            query::MatchCostOnCounts(two, 200, 1000, 5000, fixed));
  EXPECT_LT(query::MatchCostOnCounts(two, 100, 1000, 5000, fixed),
            query::MatchCostOnCounts(two, 100, 2000, 50000, fixed));
}

TEST(MatchCostTest, FixedEdgesUseExpansionFactor) {
  auto q = query::ParseQueryText("MATCH (a:V)-[:E]->(b:V) RETURN a, b");
  ASSERT_TRUE(q.ok());
  double cheap = query::MatchCostOnCounts(
      q->match(), 10, 100, 200, [](const std::string&) { return 1.0; });
  double dense = query::MatchCostOnCounts(
      q->match(), 10, 100, 200, [](const std::string&) { return 50.0; });
  EXPECT_LT(cheap, dense);
  // Expansion work is capped by an edge sweep.
  double capped = query::MatchCostOnCounts(
      q->match(), 10, 100, 200, [](const std::string&) { return 1e9; });
  EXPECT_LE(capped, 10 + 10.0 * 200 + 1);
}

TEST(MatchCostTest, EmptyPatternCostsSeedScanOnly) {
  auto q = query::ParseQueryText("MATCH (a:V) RETURN a");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(query::MatchCostOnCounts(
                       q->match(), 42, 100, 200,
                       [](const std::string&) { return 3.0; }),
                   42.0);
}

// ---------------------------------------------------------------------------
// View definitions: names, edge names, Cypher
// ---------------------------------------------------------------------------

TEST(ViewNamingTest, EveryKindHasNameAndDescription) {
  using core::ViewKind;
  for (ViewKind kind :
       {ViewKind::kKHopConnector, ViewKind::kSameVertexTypeConnector,
        ViewKind::kSameEdgeTypeConnector, ViewKind::kSourceToSinkConnector,
        ViewKind::kVertexInclusionSummarizer,
        ViewKind::kVertexRemovalSummarizer,
        ViewKind::kEdgeInclusionSummarizer, ViewKind::kEdgeRemovalSummarizer,
        ViewKind::kVertexAggregatorSummarizer,
        ViewKind::kSubgraphAggregatorSummarizer}) {
    core::ViewDefinition def;
    def.kind = kind;
    def.source_type = "Job";
    def.target_type = "Job";
    def.path_edge_type = "E";
    def.type_list = {"Job"};
    def.group_by_property = "p";
    EXPECT_STRNE(core::ViewKindName(kind), "unknown");
    EXPECT_FALSE(def.Name().empty());
    EXPECT_FALSE(def.ToCypher().empty());
  }
}

TEST(ViewNamingTest, ConnectorEdgeNames) {
  core::ViewDefinition def;
  def.kind = core::ViewKind::kKHopConnector;
  def.k = 4;
  def.source_type = "Author";
  def.target_type = "Author";
  EXPECT_EQ(def.EdgeName(), "4_HOP_AUTHOR_TO_AUTHOR");
  def.connector_edge_name = "CUSTOM";
  EXPECT_EQ(def.EdgeName(), "CUSTOM");
  core::ViewDefinition setc;
  setc.kind = core::ViewKind::kSameEdgeTypeConnector;
  setc.path_edge_type = "road";
  EXPECT_EQ(setc.EdgeName(), "CONN_VIA_ROAD");
}

TEST(ViewNamingTest, NamesAreDistinctAcrossParameters) {
  std::set<std::string> names;
  for (int k : {2, 4, 6}) {
    for (const char* type : {"Job", "File"}) {
      core::ViewDefinition def;
      def.kind = core::ViewKind::kKHopConnector;
      def.k = k;
      def.source_type = type;
      def.target_type = type;
      names.insert(def.Name());
    }
  }
  EXPECT_EQ(names.size(), 6u);
}

// ---------------------------------------------------------------------------
// Stats consistency
// ---------------------------------------------------------------------------

TEST(StatsConsistencyTest, PerTypeCountsSumToOverall) {
  graph::PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .num_tasks = 30});
  auto stats = graph::GraphStats::Compute(g);
  size_t total = 0;
  for (const auto& summary : stats.per_type()) total += summary.vertex_count;
  EXPECT_EQ(total, stats.num_vertices());
  EXPECT_EQ(stats.num_vertices(), g.NumVertices());
  EXPECT_EQ(stats.num_edges(), g.NumEdges());
  // Overall max degree >= every per-type max.
  for (const auto& summary : stats.per_type()) {
    EXPECT_LE(summary.p100, stats.overall().p100);
  }
}

TEST(StatsConsistencyTest, SizeBytesGrowWithGraph) {
  graph::GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  graph::PropertyGraph small(schema);
  small.AddVertexOfType(0);
  graph::PropertyGraph big(schema);
  for (int i = 0; i < 100; ++i) big.AddVertexOfType(0);
  for (int i = 0; i < 99; ++i) {
    ASSERT_TRUE(big.AddEdgeOfType(i, i + 1, 0).ok());
  }
  EXPECT_LT(small.EstimateSizeBytes(), big.EstimateSizeBytes());
}

}  // namespace
}  // namespace kaskade
