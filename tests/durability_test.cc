// Durability suite: WAL framing and torn-tail truncation, checkpoint
// atomicity and fallback, checksummed graph serialization (including a
// corruption fuzz), and the crash-recovery differential — at every one
// of dozens of randomized crash points, the recovered engine must equal
// an oracle that applied exactly the durable prefix of the mutation
// stream, and must never serve a wrong answer.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/fault.h"
#include "core/view_definition.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "graph/serialization.h"
#include "table_test_util.h"

namespace kaskade {
namespace {

namespace fs = std::filesystem;
using core::Engine;
using core::EngineOptions;
using core::RecoveryReport;
using core::ViewDefinition;
using core::ViewKind;
using durability::FsyncPolicy;
using durability::WriteAheadLog;
using graph::GraphDelta;
using graph::PropertyGraph;
using testutil::CanonicalRows;

/// Self-cleaning unique temp directory.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("kaskade_durability_" + tag + "_" +
             std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path path_;
};

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy_file(entry.path(), to / entry.path().filename(),
                  fs::copy_options::overwrite_existing);
  }
}

void FlipByteAt(const fs::path& file, uint64_t offset) {
  std::fstream io(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(io.is_open()) << file;
  io.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  io.read(&byte, 1);
  ASSERT_TRUE(io.good());
  byte = static_cast<char>(byte ^ 0x40);
  io.seekp(static_cast<std::streamoff>(offset));
  io.write(&byte, 1);
  ASSERT_TRUE(io.good());
}

std::vector<fs::path> WalFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

PropertyGraph SmallProv() {
  datasets::ProvOptions options;
  options.num_jobs = 12;
  options.num_files = 24;
  options.include_auxiliary = false;
  options.seed = 3;
  return datasets::MakeProvenanceGraph(options);
}

std::string Canonical(const PropertyGraph& g) {
  graph::SaveOptions save;
  save.preserve_tombstones = true;
  return graph::GraphToString(g, save);
}

/// A valid randomized mutation stream over an evolving graph: vertex
/// inserts, edge inserts (between existing and freshly-inserted
/// vertices), and live-edge removals, each delta validated before it
/// enters the stream.
struct MutationStream {
  std::string base_text;              ///< Tombstone-preserving base image.
  std::vector<std::string> deltas;    ///< Serialized, in application order.
  PropertyGraph final_graph{graph::GraphSchema{}};
};

MutationStream MakeStream(const PropertyGraph& base, size_t count,
                          uint64_t seed) {
  MutationStream stream;
  stream.base_text = Canonical(base);
  PropertyGraph oracle = base;
  std::mt19937_64 rng(seed);

  auto pick_live_vertex = [&](const std::string& type) {
    std::vector<graph::VertexId> live;
    for (graph::VertexId v = 0; v < oracle.NumVertices(); ++v) {
      if (oracle.IsVertexLive(v) && oracle.VertexTypeName(v) == type) {
        live.push_back(v);
      }
    }
    return live[rng() % live.size()];
  };
  auto pick_live_edge = [&]() -> int64_t {
    std::vector<graph::EdgeId> live;
    for (graph::EdgeId e = 0; e < oracle.NumEdges(); ++e) {
      if (oracle.IsEdgeLive(e)) live.push_back(e);
    }
    if (live.empty()) return -1;
    return static_cast<int64_t>(live[rng() % live.size()]);
  };

  for (size_t i = 0; i < count; ++i) {
    GraphDelta delta;
    switch (rng() % 4) {
      case 0: {  // New job writing an existing file.
        graph::PropertyMap props;
        props.Set("pipelineName", graph::PropertyValue("p " + std::to_string(i)));
        delta.AddVertex("Job", std::move(props));
        delta.AddEdge(oracle.NumVertices(), pick_live_vertex("File"),
                      "WRITES_TO");
        break;
      }
      case 1: {  // New job + new file, edge between the two inserts.
        delta.AddVertex("Job");
        delta.AddVertex("File");
        delta.AddEdge(oracle.NumVertices(), oracle.NumVertices() + 1,
                      "WRITES_TO");
        break;
      }
      case 2: {  // Edge between existing vertices.
        delta.AddEdge(pick_live_vertex("File"), pick_live_vertex("Job"),
                      "IS_READ_BY");
        break;
      }
      default: {  // Remove a live edge (plus an insert so it's never empty).
        int64_t victim = pick_live_edge();
        if (victim >= 0) delta.RemoveEdge(static_cast<graph::EdgeId>(victim));
        delta.AddVertex("File");
        break;
      }
    }
    EXPECT_TRUE(delta.Validate(oracle).ok());
    stream.deltas.push_back(graph::SerializeDelta(delta));
    auto applied = graph::ApplyDeltaToGraph(&oracle, delta);
    EXPECT_TRUE(applied.ok()) << applied.status();
  }
  stream.final_graph = std::move(oracle);
  return stream;
}

/// The oracle: the state after applying exactly the first `n` deltas.
PropertyGraph OracleAfter(const MutationStream& stream, size_t n) {
  auto base = graph::GraphFromString(stream.base_text);
  EXPECT_TRUE(base.ok()) << base.status();
  PropertyGraph g = std::move(base).value();
  for (size_t i = 0; i < n; ++i) {
    auto delta = graph::ParseDelta(stream.deltas[i]);
    EXPECT_TRUE(delta.ok()) << delta.status();
    auto applied = graph::ApplyDeltaToGraph(&g, delta.value());
    EXPECT_TRUE(applied.ok()) << applied.status();
  }
  return g;
}

ViewDefinition JobConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

ViewDefinition FileConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "File";
  def.target_type = "File";
  return def;
}

// ---------------------------------------------------------------------------
// WAL unit tests
// ---------------------------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  TempDir dir("wal_roundtrip");
  durability::WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryWrite;
  std::vector<std::string> payloads = {"alpha", "", "gamma with spaces",
                                       std::string(3000, 'x')};
  {
    auto wal = WriteAheadLog::Open(dir.str(), 1, options);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (const std::string& payload : payloads) {
      auto token = (*wal)->Append(payload);
      ASSERT_TRUE(token.ok()) << token.status();
      ASSERT_TRUE((*wal)->WaitDurable(token.value()).ok());
    }
    EXPECT_EQ((*wal)->telemetry().appends, payloads.size());
    EXPECT_GE((*wal)->telemetry().fsyncs, payloads.size());
  }
  std::vector<std::pair<uint64_t, std::string>> seen;
  auto report = WriteAheadLog::Replay(
      dir.str(), 1, [&](uint64_t lsn, const std::string& payload) {
        seen.emplace_back(lsn, payload);
        return Status::OK();
      });
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->records, payloads.size());
  EXPECT_EQ(report->first_lsn, 1u);
  EXPECT_EQ(report->last_lsn, payloads.size());
  EXPECT_TRUE(report->data_loss_note.empty());
  ASSERT_EQ(seen.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(seen[i].first, i + 1);
    EXPECT_EQ(seen[i].second, payloads[i]);
  }
}

TEST(WalTest, TornTailIsTruncatedAndReported) {
  TempDir dir("wal_torn");
  durability::WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryWrite;
  {
    auto wal = WriteAheadLog::Open(dir.str(), 1, options);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 5; ++i) {
      auto token = (*wal)->Append("record " + std::to_string(i));
      ASSERT_TRUE(token.ok());
      ASSERT_TRUE((*wal)->WaitDurable(token.value()).ok());
    }
  }
  auto files = WalFiles(dir.path());
  ASSERT_EQ(files.size(), 1u);
  // Tear the file mid-way through the last record.
  uint64_t size = fs::file_size(files[0]);
  fs::resize_file(files[0], size - 3);

  size_t replayed = 0;
  auto report = WriteAheadLog::Replay(
      dir.str(), 1, [&](uint64_t, const std::string&) {
        ++replayed;
        return Status::OK();
      });
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->records, 4u);
  EXPECT_EQ(report->last_lsn, 4u);
  EXPECT_GT(report->truncated_bytes, 0u);
  EXPECT_FALSE(report->data_loss_note.empty());
  EXPECT_EQ(replayed, 4u);

  // The truncation is clean: a second replay sees a healthy log.
  auto again = WriteAheadLog::Replay(
      dir.str(), 1, [&](uint64_t, const std::string&) { return Status::OK(); });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records, 4u);
  EXPECT_TRUE(again->data_loss_note.empty());
}

TEST(WalTest, SegmentRotationAndTruncateBelow) {
  TempDir dir("wal_rotate");
  durability::WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryWrite;
  options.segment_bytes = 64;  // Rotate on nearly every append.
  auto wal = WriteAheadLog::Open(dir.str(), 1, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  for (int i = 0; i < 8; ++i) {
    auto token = (*wal)->Append(std::string(48, 'a' + i));
    ASSERT_TRUE(token.ok());
    ASSERT_TRUE((*wal)->WaitDurable(token.value()).ok());
  }
  EXPECT_GT(WalFiles(dir.path()).size(), 2u);

  // Everything below LSN 6 is checkpoint-covered: whole old segments go.
  ASSERT_TRUE((*wal)->TruncateBelow(6).ok());
  size_t replayed = 0;
  auto report = WriteAheadLog::Replay(
      dir.str(), 6, [&](uint64_t, const std::string&) {
        ++replayed;
        return Status::OK();
      });
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(replayed, 3u);  // LSNs 6, 7, 8.
  EXPECT_EQ(report->first_lsn, 6u);
  EXPECT_EQ(report->last_lsn, 8u);
  EXPECT_TRUE(report->data_loss_note.empty());
}

// ---------------------------------------------------------------------------
// Checkpoint unit tests
// ---------------------------------------------------------------------------

TEST(CheckpointTest, RoundTripPreservesGraphAndViews) {
  TempDir dir("ckpt_roundtrip");
  PropertyGraph g = SmallProv();
  std::vector<ViewDefinition> views = {JobConnector(), FileConnector()};
  ASSERT_TRUE(
      durability::WriteCheckpoint(dir.str(), g, views, 42, {}).ok());

  auto loaded = durability::LoadNewestCheckpoint(dir.str());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->lsn, 42u);
  EXPECT_EQ(Canonical(loaded->graph), Canonical(g));
  ASSERT_EQ(loaded->views.size(), 2u);
  EXPECT_EQ(loaded->views[0].Name(), views[0].Name());
  EXPECT_EQ(loaded->views[1].Name(), views[1].Name());
  EXPECT_TRUE(loaded->skipped_corrupt.empty());
}

TEST(CheckpointTest, CorruptNewestFallsBackToOlder) {
  TempDir dir("ckpt_fallback");
  PropertyGraph old_graph = SmallProv();
  ASSERT_TRUE(durability::WriteCheckpoint(dir.str(), old_graph, {}, 10, {})
                  .ok());
  PropertyGraph new_graph = SmallProv();
  GraphDelta delta;
  delta.AddVertex("Job");
  ASSERT_TRUE(graph::ApplyDeltaToGraph(&new_graph, delta).ok());
  ASSERT_TRUE(durability::WriteCheckpoint(dir.str(), new_graph, {}, 20, {})
                  .ok());

  // Flip a byte in the middle of the newest checkpoint.
  fs::path newest;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().filename().string().find("-0000000000000014") !=
        std::string::npos) {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  FlipByteAt(newest, fs::file_size(newest) / 2);

  auto loaded = durability::LoadNewestCheckpoint(dir.str());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->lsn, 10u);
  EXPECT_EQ(Canonical(loaded->graph), Canonical(old_graph));
  ASSERT_EQ(loaded->skipped_corrupt.size(), 1u);

  // Corrupt the older one too: data loss, not a garbage graph.
  fs::path older = dir.path() / "checkpoint-000000000000000a.ckpt";
  ASSERT_TRUE(fs::exists(older));
  FlipByteAt(older, fs::file_size(older) / 3);
  auto none = durability::LoadNewestCheckpoint(dir.str());
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kDataLoss);

  // And an empty directory is "nothing here", not corruption.
  TempDir empty("ckpt_empty");
  auto missing = durability::LoadNewestCheckpoint(empty.str());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Checksummed graph serialization
// ---------------------------------------------------------------------------

TEST(SerializationTest, TombstonePreservingRoundTripKeepsIdSpace) {
  PropertyGraph g = SmallProv();
  GraphDelta delta;
  delta.RemoveEdge(0);
  delta.RemoveEdge(3);
  delta.AddVertex("Job");
  ASSERT_TRUE(graph::ApplyDeltaToGraph(&g, delta).ok());

  std::string text = Canonical(g);
  auto loaded = graph::GraphFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  EXPECT_FALSE(loaded->IsEdgeLive(0));
  EXPECT_FALSE(loaded->IsEdgeLive(3));
  // Fixed point: serializing the reload is byte-identical.
  EXPECT_EQ(Canonical(loaded.value()), text);
}

TEST(SerializationTest, FuzzedCorruptionNeverYieldsWrongData) {
  PropertyGraph g = SmallProv();
  GraphDelta delta;
  delta.RemoveEdge(1);
  ASSERT_TRUE(graph::ApplyDeltaToGraph(&g, delta).ok());
  const std::string text = Canonical(g);

  std::mt19937_64 rng(20260808);
  size_t rejected = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = text;
    if (trial % 2 == 0) {
      mutated.resize(rng() % text.size());  // Truncate.
    } else {
      size_t at = rng() % text.size();      // Flip one bit.
      mutated[at] = static_cast<char>(mutated[at] ^ (1u << (rng() % 8)));
    }
    if (mutated == text) continue;
    auto loaded = graph::GraphFromString(mutated);
    if (loaded.ok()) {
      // Only acceptable if the corruption was semantically invisible —
      // the reloaded graph must reproduce the original bytes exactly.
      EXPECT_EQ(Canonical(loaded.value()), text)
          << "corrupt input accepted with different contents (trial "
          << trial << ")";
    } else {
      ++rejected;
      EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                  loaded.status().code() == StatusCode::kInvalidArgument)
          << loaded.status();
    }
    if (trial % 2 == 0) {
      // Truncation always loses the end-of-file checksum: must fail.
      EXPECT_FALSE(loaded.ok()) << "truncated input accepted (trial "
                                << trial << ")";
    }
  }
  EXPECT_GT(rejected, 100u);
}

TEST(SerializationTest, ViewDefinitionRecordRoundTrip) {
  std::vector<ViewDefinition> defs = {JobConnector(), FileConnector()};
  ViewDefinition pred;
  pred.kind = ViewKind::kVertexRemovalSummarizer;
  pred.predicate_property = "CPU";
  pred.predicate_op = core::PredicateOp::kGe;
  pred.predicate_value = graph::PropertyValue(int64_t{8});
  pred.type_list = {"Job"};
  defs.push_back(pred);

  for (const ViewDefinition& def : defs) {
    std::string record = def.ToRecord();
    auto parsed = ViewDefinition::FromRecord(record);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for " << record;
    EXPECT_EQ(parsed->ToRecord(), record);
    EXPECT_EQ(parsed->Name(), def.Name());
  }
  EXPECT_FALSE(ViewDefinition::FromRecord("kind=nonsense").ok());
  EXPECT_FALSE(ViewDefinition::FromRecord("k=2").ok());
}

// ---------------------------------------------------------------------------
// Engine recovery
// ---------------------------------------------------------------------------

TEST(EngineDurabilityTest, CleanShutdownRecoversGraphAndViews) {
  TempDir dir("engine_clean");
  MutationStream stream = MakeStream(SmallProv(), 10, 11);

  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kEveryWrite;
  options.durability.checkpoint_wal_bytes = 0;
  {
    Engine engine(SmallProv(), options);
    ASSERT_TRUE(engine.durability_error().ok()) << engine.durability_error();
    ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
    ASSERT_TRUE(engine.AddMaterializedView(FileConnector()).ok());
    for (const std::string& serialized : stream.deltas) {
      auto delta = graph::ParseDelta(serialized);
      ASSERT_TRUE(delta.ok());
      auto report = engine.ApplyDelta(std::move(delta).value());
      ASSERT_TRUE(report.ok()) << report.status();
    }
  }

  RecoveryReport recovery;
  auto reopened = Engine::Open(dir.str(), options, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(recovery.records_replayed, stream.deltas.size());
  EXPECT_EQ(recovery.last_lsn, stream.deltas.size());
  EXPECT_EQ(recovery.views_rematerialized, 2u);
  EXPECT_TRUE(recovery.notes.empty());
  EXPECT_EQ(Canonical((*reopened)->base_graph()), Canonical(stream.final_graph));

  // Views answer identically to a from-scratch engine over the oracle.
  Engine oracle(OracleAfter(stream, stream.deltas.size()));
  ASSERT_TRUE(oracle.AddMaterializedView(JobConnector()).ok());
  ASSERT_TRUE(oracle.AddMaterializedView(FileConnector()).ok());
  for (const std::string& text : {datasets::AncestorsQueryText("Job", 2),
                                  datasets::AncestorsQueryText("File", 2)}) {
    auto got = (*reopened)->Execute(text);
    auto want = oracle.Execute(text);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(want.ok()) << want.status();
    EXPECT_EQ(CanonicalRows(got->table), CanonicalRows(want->table));
  }

  // The reopened engine keeps appending where the log left off.
  GraphDelta more;
  more.AddVertex("Job");
  ASSERT_TRUE((*reopened)->ApplyDelta(std::move(more)).ok());
}

TEST(EngineDurabilityTest, CrashMatrixRecoversExactlyTheDurablePrefix) {
  TempDir dir("engine_crash");
  const size_t kMutations = 24;
  MutationStream stream = MakeStream(SmallProv(), kMutations, 77);

  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kEveryWrite;
  options.durability.checkpoint_wal_bytes = 0;  // Checkpoint manually below.
  options.durability.wal_segment_bytes = 512;   // Force segment rotation.
  uint64_t checkpoint_lsn = 0;
  {
    Engine engine(SmallProv(), options);
    ASSERT_TRUE(engine.durability_error().ok()) << engine.durability_error();
    ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
    for (size_t i = 0; i < stream.deltas.size(); ++i) {
      auto delta = graph::ParseDelta(stream.deltas[i]);
      ASSERT_TRUE(delta.ok());
      ASSERT_TRUE(engine.ApplyDelta(std::move(delta).value()).ok());
      if (i + 1 == kMutations / 3) {
        auto lsn = engine.Checkpoint();
        ASSERT_TRUE(lsn.ok()) << lsn.status();
        checkpoint_lsn = lsn.value();
        EXPECT_EQ(checkpoint_lsn, i + 1);
      }
    }
    EXPECT_EQ(engine.checkpoints_written(), 1u);
  }

  const std::string ancestors = datasets::AncestorsQueryText("Job", 2);
  std::mt19937_64 rng(99);
  size_t corrupt_recoveries = 0;
  const int kCrashPoints = 60;
  for (int crash = 0; crash < kCrashPoints; ++crash) {
    TempDir copy("engine_crash_pt");
    CopyDir(dir.path(), copy.path());
    auto files = WalFiles(copy.path());
    ASSERT_FALSE(files.empty());

    // Crash simulation: pick a WAL file and either tear it at a random
    // offset or flip a random byte. (Replay drops everything after the
    // first invalid record, later segments included.)
    const fs::path victim = files[rng() % files.size()];
    const uint64_t size = fs::file_size(victim);
    const bool flip = (crash % 2 == 1) && size > 0;
    if (flip) {
      FlipByteAt(victim, rng() % size);
    } else {
      fs::resize_file(victim, rng() % (size + 1));
    }

    RecoveryReport recovery;
    auto engine = Engine::Open(copy.str(), options, &recovery);
    ASSERT_TRUE(engine.ok()) << engine.status();
    const uint64_t n = recovery.last_lsn;  // LSN i <=> mutation i.
    ASSERT_LE(n, kMutations);
    ASSERT_GE(n, checkpoint_lsn);
    if (!recovery.notes.empty()) ++corrupt_recoveries;

    // Base graph: byte-equal to the oracle that applied exactly the
    // durable prefix.
    PropertyGraph oracle_graph =
        OracleAfter(stream, static_cast<size_t>(n));
    ASSERT_EQ(Canonical((*engine)->base_graph()), Canonical(oracle_graph))
        << "crash point " << crash << " (n=" << n << ", flip=" << flip << ")";

    // Views: identical answers to a from-scratch materialization.
    Engine oracle(std::move(oracle_graph));
    ASSERT_TRUE(oracle.AddMaterializedView(JobConnector()).ok());
    auto got = (*engine)->Execute(ancestors);
    auto want = oracle.Execute(ancestors);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_EQ(CanonicalRows(got->table), CanonicalRows(want->table))
        << "crash point " << crash;
  }
  // The matrix exercised real corruption, not just no-op truncations.
  EXPECT_GT(corrupt_recoveries, kCrashPoints / 4);
}

TEST(EngineDurabilityTest, GapBetweenCheckpointAndLogIsDataLossNotGarbage) {
  TempDir dir("engine_gap");
  MutationStream stream = MakeStream(SmallProv(), 12, 5);

  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kEveryWrite;
  options.durability.checkpoint_wal_bytes = 0;
  options.durability.wal_segment_bytes = 256;  // Rotate constantly.
  {
    Engine engine(SmallProv(), options);
    ASSERT_TRUE(engine.durability_error().ok());
    for (size_t i = 0; i < stream.deltas.size(); ++i) {
      auto delta = graph::ParseDelta(stream.deltas[i]);
      ASSERT_TRUE(delta.ok());
      ASSERT_TRUE(engine.ApplyDelta(std::move(delta).value()).ok());
      if (i == 7) {
        auto lsn = engine.Checkpoint();  // Truncates segments below lsn 8.
        ASSERT_TRUE(lsn.ok()) << lsn.status();
      }
    }
  }
  // Corrupt the newest checkpoint. Recovery falls back to the initial
  // checkpoint (lsn 0), but the records connecting it to the surviving
  // log were truncated away — that gap must surface as data loss, never
  // as a silently wrong graph.
  fs::path newest;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 &&
        name != "checkpoint-0000000000000000.ckpt") {
      newest = entry.path();
    }
  }
  ASSERT_FALSE(newest.empty());
  FlipByteAt(newest, fs::file_size(newest) / 2);

  auto engine = Engine::Open(dir.str(), options, nullptr);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kDataLoss);
}

TEST(EngineDurabilityTest, EveryWriteNeverLosesAcknowledgedMutations) {
  TempDir dir("engine_everywrite");
  MutationStream stream = MakeStream(SmallProv(), 9, 21);

  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kEveryWrite;
  options.durability.checkpoint_wal_bytes = 0;

  Engine engine(SmallProv(), options);
  ASSERT_TRUE(engine.durability_error().ok());
  for (size_t i = 0; i < stream.deltas.size(); ++i) {
    auto delta = graph::ParseDelta(stream.deltas[i]);
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(engine.ApplyDelta(std::move(delta).value()).ok());
    // The acknowledgement IS the durability claim.
    ASSERT_EQ(engine.wal()->durable_offset(), engine.wal()->end_offset());

    // Simulated crash right now: everything acknowledged must survive.
    TempDir copy("engine_everywrite_pt");
    CopyDir(dir.path(), copy.path());
    auto files = WalFiles(copy.path());
    ASSERT_EQ(files.size(), 1u);
    fs::resize_file(files[0], engine.wal()->durable_offset());
    RecoveryReport recovery;
    auto reopened = Engine::Open(copy.str(), options, &recovery);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    ASSERT_EQ(recovery.last_lsn, i + 1);
    ASSERT_EQ(Canonical((*reopened)->base_graph()),
              Canonical(OracleAfter(stream, i + 1)));
  }
  core::EngineTelemetry telemetry = engine.TelemetrySnapshot();
  EXPECT_EQ(telemetry.wal_appends, stream.deltas.size());
  EXPECT_GE(telemetry.wal_fsyncs, stream.deltas.size());
  EXPECT_GT(telemetry.wal_bytes, 0u);
}

TEST(EngineDurabilityTest, GroupCommitLosesAtMostTheUnflushedBatch) {
  TempDir dir("engine_batch");

  // A hook that can hold the group-commit flusher at the fsync site,
  // pinning the durable position while acknowledgements queue up.
  struct FlushGate {
    std::mutex mu;
    std::condition_variable cv;
    bool block = false;
    void Hold(bool value) {
      {
        std::lock_guard<std::mutex> lock(mu);
        block = value;
      }
      cv.notify_all();
    }
  };
  auto gate = std::make_shared<FlushGate>();

  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kBatch;
  options.durability.flush_interval = std::chrono::milliseconds(1);
  options.durability.checkpoint_wal_bytes = 0;
  options.fault_hooks.hook = [gate](core::FaultSite site,
                                    const std::string&) {
    if (site == core::FaultSite::kWalFsync) {
      std::unique_lock<std::mutex> lock(gate->mu);
      gate->cv.wait(lock, [&] { return !gate->block; });
    }
    return Status::OK();
  };

  {
    Engine engine(SmallProv(), options);
    ASSERT_TRUE(engine.durability_error().ok()) << engine.durability_error();

    // Three mutations committed the normal way: acknowledged == flushed.
    for (int i = 0; i < 3; ++i) {
      GraphDelta delta;
      delta.AddVertex("Job");
      ASSERT_TRUE(engine.ApplyDelta(std::move(delta)).ok());
    }
    const uint64_t durable_before = engine.wal()->durable_offset();
    ASSERT_EQ(durable_before, engine.wal()->end_offset());

    // Gate closed: the next batch appends but can never flush.
    gate->Hold(true);
    std::atomic<size_t> acknowledged{0};
    std::vector<std::thread> writers;
    const size_t kBatchWriters = 4;
    for (size_t w = 0; w < kBatchWriters; ++w) {
      writers.emplace_back([&] {
        GraphDelta delta;
        delta.AddVertex("File");
        Status status = engine.ApplyDelta(std::move(delta)).status();
        EXPECT_TRUE(status.ok()) << status;
        acknowledged.fetch_add(1);
      });
    }
    // Wait until every writer has appended (applied in memory, blocked
    // awaiting the flush)...
    while (engine.TelemetrySnapshot().wal_appends < 3 + kBatchWriters) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // ...and prove no commit is observable before its batch is flushed:
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(acknowledged.load(), 0u);
    EXPECT_EQ(engine.wal()->durable_offset(), durable_before);
    EXPECT_GT(engine.wal()->end_offset(), durable_before);

    // Crash here: the copy holds only the durable prefix. Recovery gets
    // the three committed mutations; the whole unflushed batch — and
    // nothing else — is lost.
    TempDir crash("engine_batch_crash");
    CopyDir(dir.path(), crash.path());
    auto files = WalFiles(crash.path());
    ASSERT_EQ(files.size(), 1u);
    fs::resize_file(files[0], durable_before);
    RecoveryReport recovery;
    EngineOptions reopen = options;
    reopen.fault_hooks = {};
    auto recovered = Engine::Open(crash.str(), reopen, &recovery);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovery.last_lsn, 3u);

    // Open the gate: the batch flushes, every writer completes.
    gate->Hold(false);
    for (std::thread& writer : writers) writer.join();
    EXPECT_EQ(acknowledged.load(), kBatchWriters);
    EXPECT_GE(engine.wal()->durable_offset(), engine.wal()->end_offset());
    EXPECT_GT(engine.TelemetrySnapshot().group_commit_batches, 0u);
  }

  // After the clean shutdown nothing is lost at all.
  RecoveryReport recovery;
  EngineOptions reopen = options;
  reopen.fault_hooks = {};
  auto final_engine = Engine::Open(dir.str(), reopen, &recovery);
  ASSERT_TRUE(final_engine.ok()) << final_engine.status();
  EXPECT_EQ(recovery.last_lsn, 7u);
}

TEST(EngineDurabilityTest, BackgroundCheckpointerTriggersOnWalGrowth) {
  TempDir dir("engine_bg_ckpt");
  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kEveryWrite;
  options.durability.checkpoint_wal_bytes = 1;  // Every mutation trips it.

  Engine engine(SmallProv(), options);
  ASSERT_TRUE(engine.durability_error().ok());
  for (int i = 0; i < 4; ++i) {
    GraphDelta delta;
    delta.AddVertex("Job");
    ASSERT_TRUE(engine.ApplyDelta(std::move(delta)).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.checkpoints_written() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(engine.checkpoints_written(), 0u);
}

TEST(EngineDurabilityTest, WalAppendFaultSurfacesAsMutationError) {
  TempDir dir("engine_append_fault");
  std::atomic<bool> armed{false};
  EngineOptions options;
  options.durability.dir = dir.str();
  options.durability.fsync_policy = FsyncPolicy::kEveryWrite;
  options.durability.checkpoint_wal_bytes = 0;
  options.fault_hooks.hook = [&armed](core::FaultSite site,
                                      const std::string&) {
    if (site == core::FaultSite::kWalAppend && armed.load()) {
      return Status::Internal("injected append fault");
    }
    return Status::OK();
  };

  Engine engine(SmallProv(), options);
  ASSERT_TRUE(engine.durability_error().ok());
  armed.store(true);
  GraphDelta delta;
  delta.AddVertex("Job");
  EXPECT_FALSE(engine.ApplyDelta(std::move(delta)).ok());
  armed.store(false);
  GraphDelta retry;
  retry.AddVertex("Job");
  EXPECT_TRUE(engine.ApplyDelta(std::move(retry)).ok());
}

}  // namespace
}  // namespace kaskade
