// Tests for the CSR snapshot substrate, the same-vertex-type connector
// rewrite, and the facade's plan cache.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/materializer.h"
#include "core/rewriter.h"
#include "csr_test_util.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "query/executor.h"
#include "query/parser.h"

namespace kaskade {
namespace {

using graph::CsrGraph;
using graph::PropertyGraph;
using graph::VertexId;

// ---------------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------------

TEST(CsrTest, TopologyMatchesSource) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .num_tasks = 20});
  CsrGraph csr = CsrGraph::Build(g);
  ASSERT_EQ(csr.NumVertices(), g.NumVertices());
  ASSERT_EQ(csr.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(csr.OutDegree(v), g.OutDegree(v));
    EXPECT_EQ(csr.InDegree(v), g.InDegree(v));
    EXPECT_EQ(csr.VertexType(v), g.VertexType(v));
    // Neighbor multisets agree.
    std::multiset<VertexId> expected;
    for (graph::EdgeId e : g.OutEdges(v)) {
      expected.insert(g.Edge(e).target);
    }
    std::multiset<VertexId> got(csr.OutNeighbors(v).begin(),
                                csr.OutNeighbors(v).end());
    EXPECT_EQ(got, expected) << "vertex " << v;
  }
}

TEST(CsrTest, EmptyGraph) {
  graph::GraphSchema schema;
  schema.AddVertexType("V");
  PropertyGraph g(schema);
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_EQ(csr.NumVertices(), 0u);
  EXPECT_EQ(csr.NumEdges(), 0u);
}

TEST(CsrTest, TypedSlicesMatchFilteredAdjacency) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .num_tasks = 20});
  CsrGraph csr = CsrGraph::Build(g);
  const size_t num_types = g.schema().num_edge_types();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    size_t typed_total = 0;
    for (graph::EdgeTypeId t = 0; t < num_types; ++t) {
      // Expected: the (target, edge id) multiset of v's out-edges of
      // type t, straight from the adjacency lists.
      std::multiset<std::pair<VertexId, graph::EdgeId>> expected;
      for (graph::EdgeId e : g.OutEdges(v)) {
        if (g.Edge(e).type == t) expected.insert({g.Edge(e).target, e});
      }
      graph::EdgeSpan span = csr.TypedOutEdges(v, t);
      std::multiset<std::pair<VertexId, graph::EdgeId>> got;
      for (size_t i = 0; i < span.size; ++i) {
        got.insert({span.vertex(i), span.edge_id(i)});
      }
      EXPECT_EQ(got, expected) << "vertex " << v << " type " << t;
      typed_total += span.size;
      // In-side symmetry.
      std::multiset<std::pair<VertexId, graph::EdgeId>> expected_in;
      for (graph::EdgeId e : g.InEdges(v)) {
        if (g.Edge(e).type == t) expected_in.insert({g.Edge(e).source, e});
      }
      graph::EdgeSpan in_span = csr.TypedInEdges(v, t);
      std::multiset<std::pair<VertexId, graph::EdgeId>> got_in;
      for (size_t i = 0; i < in_span.size; ++i) {
        got_in.insert({in_span.vertex(i), in_span.edge_id(i)});
      }
      EXPECT_EQ(got_in, expected_in) << "vertex " << v << " type " << t;
    }
    // Typed slices tile the full slice exactly.
    EXPECT_EQ(typed_total, csr.OutDegree(v));
    // The untyped slice is the whole thing.
    EXPECT_EQ(csr.TypedOutEdges(v, graph::kInvalidTypeId).size,
              csr.OutDegree(v));
    // Lineage arrays agree with the per-position accessors.
    graph::EdgeSpan all = csr.OutEdges(v);
    for (size_t i = 0; i < all.size; ++i) {
      EXPECT_EQ(all.edge_id(i), csr.OutEdgeId(v, i));
      EXPECT_EQ(g.Edge(all.edge_id(i)).target, all.vertex(i));
      EXPECT_EQ(g.Edge(all.edge_id(i)).type, csr.OutEdgeType(v, i));
    }
  }
}

TEST(CsrTest, TombstonedEdgesDroppedFromTypedSlices) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 20, .num_files = 40, .num_tasks = 10});
  // Remove every third live edge.
  size_t removed = 0;
  for (graph::EdgeId e = 0; e < g.NumEdges(); e += 3) {
    if (g.RemoveEdge(e).ok()) ++removed;
  }
  ASSERT_GT(removed, 0u);
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_EQ(csr.NumEdges(), g.NumLiveEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    graph::EdgeSpan all = csr.OutEdges(v);
    for (size_t i = 0; i < all.size; ++i) {
      EXPECT_TRUE(g.IsEdgeLive(all.edge_id(i)));
    }
    EXPECT_EQ(all.size, [&] {
      size_t live = 0;
      for (graph::EdgeId e : g.OutEdges(v)) live += g.IsEdgeLive(e) ? 1 : 0;
      return live;
    }());
  }
}

/// CSR traversals must agree with the adjacency-list implementations.
class CsrEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrEquivalenceTest, ReachabilityMatches) {
  PropertyGraph g =
      datasets::MakeSocialGraph({.num_vertices = 200,
                                 .seed = static_cast<uint64_t>(GetParam())});
  CsrGraph csr = CsrGraph::Build(g);
  graph::TraversalOptions fwd;
  fwd.max_hops = 3;
  graph::TraversalOptions bwd = fwd;
  bwd.direction = graph::Direction::kBackward;
  for (VertexId v = 0; v < g.NumVertices(); v += 7) {
    EXPECT_EQ(CsrCountReachable(csr, v, 3, false),
              graph::CountReachable(g, v, fwd));
    EXPECT_EQ(CsrCountReachable(csr, v, 3, true),
              graph::CountReachable(g, v, bwd));
  }
}

TEST_P(CsrEquivalenceTest, LabelPropagationMatches) {
  PropertyGraph g =
      datasets::MakeSocialGraph({.num_vertices = 150,
                                 .seed = static_cast<uint64_t>(GetParam())});
  CsrGraph csr = CsrGraph::Build(g);
  auto adjacency = graph::LabelPropagation(g, 10);
  auto csr_labels = graph::CsrLabelPropagation(csr, 10);
  EXPECT_EQ(adjacency.label, csr_labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalenceTest, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Same-vertex-type connector rewrite
// ---------------------------------------------------------------------------

core::ViewDefinition SameTypeView(const std::string& type, int k) {
  core::ViewDefinition def;
  def.kind = core::ViewKind::kSameVertexTypeConnector;
  def.k = k;
  def.source_type = type;
  def.target_type = type;
  return def;
}

TEST(SameTypeRewriteTest, HomogeneousReachabilityQueryRewrites) {
  // Small and sparse: variable-length contraction enumerates *all*
  // simple paths up to 4 hops, which explodes on dense reciprocal
  // graphs (that cost is the paper's argument for the cost model).
  PropertyGraph g = datasets::MakeSocialGraph(
      {.num_vertices = 60, .edges_per_vertex = 2, .reciprocal_prob = 0.2});
  core::ViewDefinition def = SameTypeView("Person", 4);
  auto q = query::ParseQueryText(
      "MATCH (a:Person)-[r*1..4]->(b:Person) RETURN a, b");
  ASSERT_TRUE(q.ok());
  auto rewritten = core::RewriteQueryWithView(*q, def, g.schema());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  const query::MatchQuery* match = rewritten->InnermostMatch();
  ASSERT_EQ(match->edges.size(), 1u);
  EXPECT_FALSE(match->edges[0].variable_length);  // one connector hop
  EXPECT_EQ(match->edges[0].type, "CONN_PERSON_TO_PERSON");

  // Result equivalence against the materialized view.
  auto view = core::Materialize(g, def);
  ASSERT_TRUE(view.ok());
  query::QueryExecutor raw_exec(&g);
  query::QueryExecutor view_exec(&view->graph);
  auto raw = raw_exec.Execute(*q);
  auto over_view = view_exec.Execute(*rewritten);
  ASSERT_TRUE(raw.ok() && over_view.ok());
  // Map view rows to base ids and compare as sets.
  std::set<std::pair<int64_t, int64_t>> raw_pairs;
  for (const auto& row : raw->rows()) {
    raw_pairs.emplace(row[0].as_int(), row[1].as_int());
  }
  std::set<std::pair<int64_t, int64_t>> view_pairs;
  for (const auto& row : over_view->rows()) {
    auto a = static_cast<VertexId>(row[0].as_int());
    auto b = static_cast<VertexId>(row[1].as_int());
    view_pairs.emplace(view->graph.VertexProperty(a, "orig_id").as_int(),
                       view->graph.VertexProperty(b, "orig_id").as_int());
  }
  EXPECT_EQ(raw_pairs, view_pairs);
  EXPECT_FALSE(raw_pairs.empty());
}

TEST(SameTypeRewriteTest, MisalignedWindowsRejected) {
  PropertyGraph g = datasets::MakeSocialGraph({.num_vertices = 50});
  // View merges 1..4; on a self-loop-type schema every length is
  // feasible, so narrower or wider query windows are inexact.
  core::ViewDefinition def = SameTypeView("Person", 4);
  for (const char* text :
       {"MATCH (a:Person)-[r*2..4]->(b:Person) RETURN a, b",    // lr too high
        "MATCH (a:Person)-[r*1..3]->(b:Person) RETURN a, b",    // ur < view k
        "MATCH (a:Person)-[r*1..6]->(b:Person) RETURN a, b"}) { // ur > view k
    auto q = query::ParseQueryText(text);
    ASSERT_TRUE(q.ok());
    EXPECT_FALSE(core::RewriteQueryWithView(*q, def, g.schema()).ok())
        << text;
  }
}

TEST(SameTypeRewriteTest, ParityGapsPermitWiderWindows) {
  // Bipartite lineage schema: job-to-job paths only at even lengths, so
  // a query window of 1..4 aligns exactly with a view bound of 4 even
  // though their ends differ from the feasible lengths {2, 4}.
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .include_auxiliary = false});
  core::ViewDefinition def = SameTypeView("Job", 4);
  auto q = query::ParseQueryText(datasets::AncestorsQueryText("Job", 4));
  ASSERT_TRUE(q.ok());
  auto rewritten = core::RewriteQueryWithView(*q, def, g.schema());
  EXPECT_TRUE(rewritten.ok()) << rewritten.status();
}

// ---------------------------------------------------------------------------
// Snapshot cache: one CSR snapshot per (handle, generation), lazy build,
// implicit invalidation via the catalog generation.
// ---------------------------------------------------------------------------

core::ViewDefinition JobConnector(int k) {
  core::ViewDefinition def;
  def.kind = core::ViewKind::kKHopConnector;
  def.k = k;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

TEST(SnapshotCacheTest, BaseSnapshotCachedPerGeneration) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const core::ViewCatalog& catalog = engine.catalog();

  auto first = catalog.BaseSnapshot();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(catalog.snapshot_builds(), 1u);
  auto second = catalog.BaseSnapshot();
  EXPECT_EQ(second.get(), first.get());  // same generation -> same snapshot
  EXPECT_EQ(catalog.snapshot_builds(), 1u);
  EXPECT_EQ(catalog.snapshot_hits(), 1u);
  EXPECT_EQ(first->NumEdges(), engine.base_graph().NumLiveEdges());
}

TEST(SnapshotCacheTest, MutationsInvalidateAndRebuildLazily) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const core::ViewCatalog& catalog = engine.catalog();

  auto before = catalog.BaseSnapshot();
  const size_t builds_before = catalog.snapshot_builds();
  const size_t edges_before = before->NumEdges();

  // ApplyDelta bumps the generation; the old snapshot must not be
  // served again, and the reader that still holds it keeps a valid,
  // self-contained copy of the pre-delta topology.
  graph::GraphDelta delta;
  delta.AddEdge(0, static_cast<graph::VertexId>(30), "WRITES_TO", {});
  ASSERT_TRUE(engine.ApplyDelta(std::move(delta)).ok());
  EXPECT_EQ(catalog.snapshot_builds(), builds_before);  // lazy: no rebuild yet
  auto after = catalog.BaseSnapshot();
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(catalog.snapshot_builds(), builds_before + 1);
  EXPECT_EQ(after->NumEdges(), edges_before + 1);
  EXPECT_EQ(before->NumEdges(), edges_before);  // old snapshot untouched

  // MutateBaseGraph invalidates through the same generation mechanism.
  auto held = catalog.BaseSnapshot();
  ASSERT_TRUE(engine
                  .MutateBaseGraph([](PropertyGraph* g) {
                    return g->AddEdge(1, 31, "WRITES_TO").status();
                  })
                  .ok());
  EXPECT_NE(catalog.BaseSnapshot().get(), held.get());
}

TEST(SnapshotCacheTest, PerViewSnapshotsKeyedByHandle) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::ViewCatalog catalog(&base);
  auto h2 = catalog.Add(JobConnector(2));
  ASSERT_TRUE(h2.ok());
  auto h4 = catalog.Add(JobConnector(4));
  ASSERT_TRUE(h4.ok());

  auto snap2 = catalog.SnapshotFor(*h2);
  auto snap4 = catalog.SnapshotFor(*h4);
  ASSERT_NE(snap2, nullptr);
  ASSERT_NE(snap4, nullptr);
  EXPECT_NE(snap2.get(), snap4.get());
  EXPECT_EQ(snap2->NumEdges(),
            catalog.Get(*h2)->view.graph.NumLiveEdges());
  // Cached per handle: repeated requests hit.
  EXPECT_EQ(catalog.SnapshotFor(*h2).get(), snap2.get());
  // Unknown handles resolve to null, and dropped views stop resolving.
  EXPECT_EQ(catalog.SnapshotFor(9999), nullptr);
  ASSERT_TRUE(catalog.Remove(catalog.Get(*h2)->name()).ok());
  EXPECT_EQ(catalog.SnapshotFor(*h2), nullptr);
}

TEST(SnapshotCacheTest, EngineMatchRunsOverSnapshots) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const std::string text =
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b";
  auto first = engine.Execute(text);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_GE(engine.catalog().snapshot_builds(), 1u);
  auto second = engine.Execute(text);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(engine.catalog().snapshot_hits(), 1u);
  EXPECT_EQ(first->table.num_rows(), second->table.num_rows());
}

// ---------------------------------------------------------------------------
// Snapshot patching: a generation miss after ApplyDelta produces the next
// snapshot from the previous one in O(|delta|) (telemetry splits
// snapshot_builds into snapshot_patches + snapshot_full_builds), with
// full-rebuild fallbacks when the trail is truncated, the mutation was
// out of band, or patching is disabled.
// ---------------------------------------------------------------------------

TEST(SnapshotPatchTest, ApplyDeltaPatchesBaseSnapshotForward) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const core::ViewCatalog& catalog = engine.catalog();

  auto warm = catalog.BaseSnapshot();
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(catalog.snapshot_full_builds(), 1u);  // first build is full
  EXPECT_EQ(catalog.snapshot_patches(), 0u);

  // Mixed batch: one insert plus one removal.
  graph::GraphDelta delta;
  delta.AddEdge(0, static_cast<VertexId>(30), "WRITES_TO", {});
  delta.RemoveEdge(warm->OutEdges(0).edge_id(0));
  ASSERT_TRUE(engine.ApplyDelta(std::move(delta)).ok());

  auto patched = catalog.BaseSnapshot();
  ASSERT_NE(patched, nullptr);
  EXPECT_NE(patched.get(), warm.get());
  EXPECT_EQ(catalog.snapshot_patches(), 1u);  // the patch path ran
  EXPECT_EQ(catalog.snapshot_full_builds(), 1u);
  // The patched snapshot is indistinguishable from a from-scratch build.
  testutil::ExpectCsrEqual(*patched, CsrGraph::Build(engine.base_graph()),
                           engine.base_graph(), "patched base");

  // A second delta patches again — the trail resets after each publish.
  graph::GraphDelta more;
  more.AddEdge(1, static_cast<VertexId>(31), "WRITES_TO", {});
  ASSERT_TRUE(engine.ApplyDelta(std::move(more)).ok());
  ASSERT_NE(catalog.BaseSnapshot(), nullptr);
  EXPECT_EQ(catalog.snapshot_patches(), 2u);
  EXPECT_EQ(catalog.snapshot_full_builds(), 1u);
}

TEST(SnapshotPatchTest, ViewSnapshotsPatchThroughMaintainedDeltas) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  // A single base removal can touch a sizable fraction of this small
  // connector view, which would (correctly) trip the dirty-fraction
  // fallback; force the patch path — this test is about the trail
  // plumbing, the threshold has its own tests.
  core::EngineOptions options;
  options.snapshot_patch.max_dirty_fraction = 1.0;
  core::Engine engine(std::move(base), options);
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector(2)).ok());
  const core::ViewCatalog& catalog = engine.catalog();
  const core::CatalogEntry* entry =
      catalog.Find(JobConnector(2).Name());
  ASSERT_NE(entry, nullptr);
  const core::ViewHandle handle = entry->handle;

  auto warm = catalog.SnapshotFor(handle);
  ASSERT_NE(warm, nullptr);
  const size_t full_before = catalog.snapshot_full_builds();

  // A removal that maintains the view incrementally: the maintainer's
  // removed-view-edge sink feeds the view's snapshot trail.
  graph::GraphDelta delta;
  delta.RemoveEdge(0);
  delta.AddEdge(0, static_cast<VertexId>(30), "WRITES_TO", {});
  auto report = engine.ApplyDelta(std::move(delta));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->views_incremental, 1u)
      << "cost model chose rematerialization; test premise broken";

  auto patched = catalog.SnapshotFor(handle);
  ASSERT_NE(patched, nullptr);
  EXPECT_NE(patched.get(), warm.get());
  EXPECT_GE(catalog.snapshot_patches(), 1u);
  EXPECT_EQ(catalog.snapshot_full_builds(), full_before);
  testutil::ExpectCsrEqual(*patched, CsrGraph::Build(entry->view.graph),
                           entry->view.graph, "patched view");
}

TEST(SnapshotPatchTest, RegisteringAViewDoesNotInvalidateTheBaseSnapshot) {
  // The generation moves (plan caches must invalidate) but the base
  // graph itself did not: the old snapshot is re-stamped, not rebuilt.
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const core::ViewCatalog& catalog = engine.catalog();
  auto before = catalog.BaseSnapshot();
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector(2)).ok());
  auto after = catalog.BaseSnapshot();
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(catalog.snapshot_builds(), 1u);
}

TEST(SnapshotPatchTest, OutOfBandMutationFallsBackToFullRebuild) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const core::ViewCatalog& catalog = engine.catalog();
  ASSERT_NE(catalog.BaseSnapshot(), nullptr);
  const size_t patches_before = catalog.snapshot_patches();

  // MutateBaseGraph bypasses the delta trail entirely.
  ASSERT_TRUE(engine
                  .MutateBaseGraph([](PropertyGraph* g) {
                    return g->AddEdge(0, 30, "WRITES_TO").status();
                  })
                  .ok());
  ASSERT_NE(catalog.BaseSnapshot(), nullptr);
  EXPECT_EQ(catalog.snapshot_patches(), patches_before);
  EXPECT_EQ(catalog.snapshot_full_builds(), 2u);
}

TEST(SnapshotPatchTest, TruncatedTrailFallsBackToFullRebuild) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const core::ViewCatalog& catalog = engine.catalog();
  auto warm = catalog.BaseSnapshot();
  ASSERT_NE(warm, nullptr);

  // More removal batches than the trail retains (kMaxTrailBatches = 64
  // in catalog.cc): the trail is cut and the next snapshot request must
  // take the full-build path — correct, just not incremental.
  for (int i = 0; i < 70; ++i) {
    graph::GraphDelta delta;
    delta.RemoveEdge(static_cast<graph::EdgeId>(i));
    ASSERT_TRUE(engine.ApplyDelta(std::move(delta)).ok()) << i;
  }
  ASSERT_NE(catalog.BaseSnapshot(), nullptr);
  EXPECT_EQ(catalog.snapshot_patches(), 0u);
  EXPECT_EQ(catalog.snapshot_full_builds(), 2u);
}

TEST(SnapshotPatchTest, DisabledPatchingAlwaysRebuilds) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 30, .num_files = 60, .include_auxiliary = false});
  core::EngineOptions options;
  options.snapshot_patch.max_dirty_fraction = 0.0;
  core::Engine engine(std::move(base), options);
  const core::ViewCatalog& catalog = engine.catalog();
  ASSERT_NE(catalog.BaseSnapshot(), nullptr);

  graph::GraphDelta delta;
  delta.AddEdge(0, static_cast<VertexId>(30), "WRITES_TO", {});
  ASSERT_TRUE(engine.ApplyDelta(std::move(delta)).ok());
  ASSERT_NE(catalog.BaseSnapshot(), nullptr);
  EXPECT_EQ(catalog.snapshot_patches(), 0u);
  EXPECT_EQ(catalog.snapshot_full_builds(), 2u);
}

// ---------------------------------------------------------------------------
// Immutable-segment sharing: PatchedFrom copies only the segments
// containing dirty vertices; every clean segment of the new generation
// is the *same object* (refcount-shared) as the previous generation's.
// ---------------------------------------------------------------------------

/// First Job with outgoing edges, plus any File (layout-independent —
/// the generator's id assignment is not part of its contract).
std::pair<VertexId, VertexId> PickJobAndFile(const PropertyGraph& g) {
  const graph::VertexTypeId job_t = g.schema().FindVertexType("Job");
  const graph::VertexTypeId file_t = g.schema().FindVertexType("File");
  VertexId job = graph::kInvalidId;
  for (VertexId j : g.VerticesOfType(job_t)) {
    if (g.OutDegree(j) > 0) {
      job = j;
      break;
    }
  }
  return {job, g.VerticesOfType(file_t).front()};
}

TEST(SegmentSharingTest, CleanSegmentsSharedByPointerAcrossGenerations) {
  // > 2 segments so there is something to share.
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 800, .num_files = 1500, .num_tasks = 600});
  CsrGraph prev = CsrGraph::Build(g);
  ASSERT_GE(prev.num_segments(), 3u);

  auto [job, file] = PickJobAndFile(g);
  ASSERT_NE(job, graph::kInvalidId);
  const graph::EdgeId victim = g.OutEdges(job)[0];
  // The exact dirty-segment set: both delta endpoints plus both ends of
  // the removed edge.
  std::set<size_t> dirty{graph::CsrSegmentOf(job), graph::CsrSegmentOf(file),
                         graph::CsrSegmentOf(g.Edge(victim).source),
                         graph::CsrSegmentOf(g.Edge(victim).target)};
  graph::GraphDelta delta;
  delta.AddEdge(job, file, "WRITES_TO", {});
  delta.RemoveEdge(victim);
  auto applied = graph::ApplyDeltaToGraph(&g, delta);
  ASSERT_TRUE(applied.ok()) << applied.status();

  graph::CsrPatchStats stats;
  CsrGraph next =
      CsrGraph::PatchedFrom(prev, g, delta.edge_removals, {}, &stats);
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(stats.total_segments, prev.num_segments());
  EXPECT_EQ(stats.segments_copied, dirty.size());
  EXPECT_EQ(stats.segments_shared, prev.num_segments() - dirty.size());
  EXPECT_GT(stats.bytes_copied, 0u);
  // Dirty segments rewritten into fresh objects; clean segments are the
  // previous generation's objects, by identity.
  for (size_t s = 0; s < prev.num_segments(); ++s) {
    if (dirty.count(s) != 0) {
      EXPECT_NE(next.segment(s).get(), prev.segment(s).get())
          << "segment " << s;
    } else {
      EXPECT_EQ(next.segment(s).get(), prev.segment(s).get())
          << "segment " << s;
    }
  }
  testutil::ExpectCsrEqual(next, CsrGraph::Build(g), g, "patched");
}

TEST(SegmentSharingTest, ChurnKeepsSharingAndStaysExact) {
  // Generation chain under churn: patch forward repeatedly, hold every
  // generation alive (exercising shared-segment refcounts), and verify
  // each against a fresh build. The ASan/UBSan CI job runs this suite,
  // covering use-after-free and aliasing bugs in the sharing path.
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 800, .num_files = 1500, .num_tasks = 600});
  auto [job, file] = PickJobAndFile(g);
  ASSERT_NE(job, graph::kInvalidId);
  std::vector<CsrGraph> generations;
  generations.push_back(CsrGraph::Build(g));
  size_t shared_total = 0;
  for (int step = 0; step < 8; ++step) {
    const CsrGraph& prev = generations.back();
    graph::GraphDelta delta;
    delta.AddEdge(job, file, "WRITES_TO", {});
    delta.RemoveEdge(g.OutEdges(job)[0]);
    auto applied = graph::ApplyDeltaToGraph(&g, delta);
    ASSERT_TRUE(applied.ok()) << applied.status();
    graph::CsrPatchStats stats;
    generations.push_back(
        CsrGraph::PatchedFrom(prev, g, delta.edge_removals, {}, &stats));
    ASSERT_FALSE(stats.full_rebuild) << "step " << step;
    shared_total += stats.segments_shared;
    testutil::ExpectCsrEqual(generations.back(), CsrGraph::Build(g), g,
                             "churn step " + std::to_string(step));
  }
  EXPECT_GT(shared_total, 0u);
  // Dropping old generations must leave the survivors intact (shared
  // segments outlive the generations that created them).
  CsrGraph last = std::move(generations.back());
  generations.clear();
  testutil::ExpectCsrEqual(last, CsrGraph::Build(g), g, "after release");
}

TEST(SegmentSharingTest, FullRebuildReportsAllSegmentsCopied) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 800, .num_files = 1500, .num_tasks = 600});
  CsrGraph prev = CsrGraph::Build(g);
  auto [job, file] = PickJobAndFile(g);
  ASSERT_NE(job, graph::kInvalidId);
  graph::GraphDelta delta;
  delta.AddEdge(job, file, "WRITES_TO", {});
  auto applied = graph::ApplyDeltaToGraph(&g, delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  graph::CsrPatchOptions disabled;
  disabled.max_dirty_fraction = 0.0;
  graph::CsrPatchStats stats;
  CsrGraph next =
      CsrGraph::PatchedFrom(prev, g, delta.edge_removals, disabled, &stats);
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_EQ(stats.segments_copied, next.num_segments());
  EXPECT_EQ(stats.segments_shared, 0u);
  EXPECT_GT(stats.bytes_copied, 0u);
  // Nothing aliases the previous generation.
  for (size_t s = 0; s < next.num_segments(); ++s) {
    EXPECT_NE(next.segment(s).get(), prev.segment(s).get()) << "segment " << s;
  }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, RepeatedQueriesHitTheCache) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 50, .num_files = 100, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  core::ViewDefinition connector;
  connector.kind = core::ViewKind::kKHopConnector;
  connector.k = 2;
  connector.source_type = "Job";
  connector.target_type = "Job";
  ASSERT_TRUE(engine.AddMaterializedView(connector).ok());

  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto first = engine.Execute(text);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  EXPECT_EQ(engine.plan_cache_hits(), 0u);
  auto second = engine.Execute(text);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.plan_cache_hits(), 1u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  // Same plan, same results.
  EXPECT_EQ(second->view_name, first->view_name);
  EXPECT_EQ(second->table.num_rows(), first->table.num_rows());
}

TEST(PlanCacheTest, CatalogChangesInvalidate) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 50, .num_files = 100, .include_auxiliary = false});
  core::Engine engine(std::move(base));
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto before = engine.Execute(text);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->used_view);

  core::ViewDefinition connector;
  connector.kind = core::ViewKind::kKHopConnector;
  connector.k = 2;
  connector.source_type = "Job";
  connector.target_type = "Job";
  ASSERT_TRUE(engine.AddMaterializedView(connector).ok());
  // The cached raw plan must not survive the catalog change.
  auto after = engine.Execute(text);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->used_view);
  EXPECT_EQ(engine.plan_cache_misses(), 2u);
}

}  // namespace
}  // namespace kaskade
