// Robustness tests: malformed inputs must produce error Statuses, never
// crashes or hangs; plus EXPLAIN rendering and degenerate-input behavior
// across modules.

#include <gtest/gtest.h>

#include "core/enumerator.h"
#include "core/size_estimator.h"
#include "datasets/generators.h"
#include "graph/algorithms.h"
#include "graph/contraction.h"
#include "graph/serialization.h"
#include "graph/stats.h"
#include "prolog/knowledge_base.h"
#include "prolog/solver.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/parser.h"
#include "workload/spec.h"

namespace kaskade {
namespace {

using graph::GraphSchema;
using graph::PropertyGraph;

/// Deterministic mutation fuzzing: valid text with byte-level edits must
/// parse or fail cleanly (no crash / no exception escaping).
std::string Mutate(const std::string& base, uint64_t seed) {
  std::string out = base;
  uint64_t x = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  int edits = 1 + static_cast<int>((x >> 60) & 3);
  for (int i = 0; i < edits && !out.empty(); ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    size_t pos = (x >> 33) % out.size();
    switch ((x >> 13) % 3) {
      case 0:
        out[pos] = static_cast<char>(32 + ((x >> 5) % 95));
        break;
      case 1:
        out.erase(pos, 1);
        break;
      default:
        out.insert(pos, 1, static_cast<char>(32 + ((x >> 5) % 95)));
        break;
    }
  }
  return out;
}

class QueryParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryParserFuzzTest, MutatedQueriesNeverCrash) {
  const std::string base =
      "SELECT A.pipelineName, AVG(T_CPU) FROM (SELECT A, SUM(B.CPU) AS T_CPU "
      "FROM (MATCH (j:Job)-[:W]->(f:File) (f:File)-[r*0..8]->(g:File) "
      "RETURN j as A, f as B) GROUP BY A, B) GROUP BY A.pipelineName";
  for (int i = 0; i < 100; ++i) {
    std::string text = Mutate(base, GetParam() * 1000 + i);
    auto result = query::ParseQueryText(text);  // ok or clean error
    if (result.ok()) {
      // Parsed mutants must render without crashing.
      (void)result->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryParserFuzzTest, ::testing::Range(0, 5));

class PrologParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PrologParserFuzzTest, MutatedProgramsNeverCrash) {
  const std::string base =
      "path(X, Y) :- edge(X, Z), not(member(Z, [a,b|T])), K is K1 + 1, "
      "findall(W, p(W), L), length(L, N), N >= 0.";
  for (int i = 0; i < 100; ++i) {
    std::string text = Mutate(base, GetParam() * 777 + i);
    auto clauses = prolog::ParseProgram(text);
    if (clauses.ok()) {
      for (const auto& clause : *clauses) (void)clause.head->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrologParserFuzzTest, ::testing::Range(0, 5));

class SerializationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationFuzzTest, MutatedGraphFilesNeverCrash) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 5, .num_files = 8, .num_tasks = 3});
  const std::string base = graph::GraphToString(g);
  for (int i = 0; i < 60; ++i) {
    std::string text = Mutate(base, GetParam() * 31 + i);
    auto loaded = graph::GraphFromString(text);  // ok or clean error
    if (loaded.ok()) {
      EXPECT_LE(loaded->NumEdges(), g.NumEdges() + 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest, ::testing::Range(0, 5));

class WorkloadSpecFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSpecFuzzTest, MutatedSpecsNeverCrash) {
  const std::string base =
      "workload fuzz_target\n"
      "seed 42\n"
      "dataset social\n"
      "phase warm  # comment survives mutation too\n"
      "  threads 4\n"
      "  rate 120.5\n"
      "  ops_per_thread 500\n"
      "  mix execute=70 execute_batch=10 apply_delta=20\n"
      "  batch_size 8\n"
      "  delta_edges 16\n"
      "  deadline_ms 250\n"
      "end\n"
      "phase drain\n"
      "  threads 2\n"
      "  rate 0\n"
      "  duration_ms 1500\n"
      "  mix execute=95 auto_advise=5\n"
      "end\n";
  for (int i = 0; i < 100; ++i) {
    std::string text = Mutate(base, GetParam() * 4099 + i);
    auto spec = workload::ParseWorkloadSpec(text);
    if (spec.ok()) {
      // A parsed mutant passed validation, so it must round-trip: its
      // canonical rendering reparses to the same spec.
      auto again = workload::ParseWorkloadSpec(spec->ToText());
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(*again, *spec);
    } else {
      // Rejections must carry a line number or the missing-header text —
      // a fuzzed operator typo gets an actionable message, not a crash.
      EXPECT_NE(spec.status().message().find("workload spec"),
                std::string::npos)
          << spec.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSpecFuzzTest, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Degenerate inputs
// ---------------------------------------------------------------------------

TEST(DegenerateTest, EmptyGraphEverywhere) {
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);

  EXPECT_EQ(graph::CountSimpleKPaths(g, 3), 0u);
  EXPECT_EQ(graph::CountKLengthWalks(g, 3), 0u);
  EXPECT_EQ(graph::CountSimple2Paths(g), 0u);
  auto communities = graph::LabelPropagation(g, 5);
  EXPECT_EQ(communities.num_communities, 0u);
  EXPECT_TRUE(
      graph::LargestCommunity(g, communities, graph::kInvalidTypeId).empty());
  auto stats = graph::GraphStats::Compute(g);
  EXPECT_EQ(stats.overall().vertex_count, 0u);
  auto dist = graph::ComputeOutDegreeDistribution(g);
  EXPECT_TRUE(dist.ccdf.empty());

  graph::ContractionSpec spec;
  spec.k = 2;
  spec.connector_edge_name = "C2";
  auto view = graph::ContractPaths(g, spec);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->view.NumVertices(), 0u);

  query::QueryExecutor executor(&g);
  auto result = executor.ExecuteText("MATCH (a:V)-[:E]->(b:V) RETURN a, b");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(DegenerateTest, EstimatorsOnEmptyAndTinyGraphs) {
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  auto stats = graph::GraphStats::Compute(g);
  EXPECT_EQ(core::HomogeneousPathEstimate(stats, 2, 95), 0.0);
  EXPECT_EQ(core::HeterogeneousPathEstimate(g, stats, 2, 95), 0.0);
  EXPECT_EQ(core::ErdosRenyiPathEstimate(0, 0, 2), 0.0);
  EXPECT_EQ(core::ErdosRenyiPathEstimate(10, 20, 0), 0.0);
  EXPECT_EQ(core::ErdosRenyiPathEstimate(10, 20, -3), 0.0);
}

TEST(DegenerateTest, EnumeratorOnEmptySchemaAndSingleType) {
  GraphSchema empty;
  core::ViewEnumerator enumerator(&empty);
  auto q = query::ParseQueryText("MATCH (a:V)-[:E]->(b:V) RETURN a");
  ASSERT_TRUE(q.ok());
  auto candidates = enumerator.Enumerate(*q);
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  EXPECT_TRUE(candidates->empty());

  // Self-loop schema: k-hop connectors exist for every k up to the
  // query's bound.
  GraphSchema loop;
  loop.AddVertexType("V");
  ASSERT_TRUE(loop.AddEdgeType("E", "V", "V").ok());
  core::ViewEnumerator loop_enum(&loop);
  auto q2 = query::ParseQueryText("MATCH (a:V)-[r*1..3]->(b:V) RETURN a, b");
  ASSERT_TRUE(q2.ok());
  auto candidates2 = loop_enum.Enumerate(*q2);
  ASSERT_TRUE(candidates2.ok());
  std::set<int> ks;
  for (const auto& c : *candidates2) {
    if (c.definition.kind == core::ViewKind::kKHopConnector) {
      ks.insert(c.definition.k);
    }
  }
  EXPECT_EQ(ks, (std::set<int>{1, 2, 3}));
}

TEST(DegenerateTest, SolverHandlesDeepLists) {
  prolog::KnowledgeBase kb;
  prolog::Solver solver(&kb);
  // 500-element list through the recursive prelude predicates.
  std::string list = "[0";
  for (int i = 1; i < 500; ++i) list += "," + std::to_string(i);
  list += "]";
  auto r = solver.Prove("length(" + list + ", 500), last(" + list +
                        ", 499), member(250, " + list + ").");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

TEST(ExplainTest, RendersPlanTree) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 20, .num_files = 40, .include_auxiliary = false});
  auto stats = graph::GraphStats::Compute(g);
  auto q = query::ParseQueryText(
      "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) "
      "(f:File)-[r*0..8]->(g:File) RETURN a, f) GROUP BY a");
  ASSERT_TRUE(q.ok());
  std::string plan = query::ExplainQuery(*q, g, stats);
  EXPECT_NE(plan.find("SELECT [1 item(s), GROUP BY a]"), std::string::npos);
  EXPECT_NE(plan.find("seed (a:Job)"), std::string::npos);
  EXPECT_NE(plan.find("expand -[:WRITES_TO]-> (f:File)"), std::string::npos);
  EXPECT_NE(plan.find("8 bounded graph sweeps"), std::string::npos);
  EXPECT_NE(plan.find("estimated cost:"), std::string::npos);
}

TEST(ExplainTest, CostOrderingVisibleAcrossPlans) {
  PropertyGraph g = datasets::MakeProvenanceGraph(
      {.num_jobs = 50, .num_files = 100, .include_auxiliary = false});
  auto stats = graph::GraphStats::Compute(g);
  auto shallow =
      query::ParseQueryText("MATCH (a:Job)-[r*1..2]->(b:Job) RETURN a, b");
  auto deep =
      query::ParseQueryText("MATCH (a:Job)-[r*1..8]->(b:Job) RETURN a, b");
  ASSERT_TRUE(shallow.ok() && deep.ok());
  EXPECT_LT(query::EstimateEvalCost(*shallow, g, stats),
            query::EstimateEvalCost(*deep, g, stats));
  // And both render.
  EXPECT_FALSE(query::ExplainQuery(*shallow, g, stats).empty());
  EXPECT_FALSE(query::ExplainQuery(*deep, g, stats).empty());
}

}  // namespace
}  // namespace kaskade
