// Tests for the extension features beyond the paper's core: graph
// serialization, predicate summarizers (footnote 5), and their
// interaction with rewriting and maintenance.

#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "core/materializer.h"
#include "core/rewriter.h"
#include "datasets/generators.h"
#include "graph/serialization.h"
#include "query/executor.h"
#include "query/parser.h"

namespace kaskade {
namespace {

using core::EvalPredicate;
using core::Materialize;
using core::PredicateOp;
using core::ViewDefinition;
using core::ViewKind;
using graph::GraphFromString;
using graph::GraphToString;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializationTest, RoundTripsSmallGraph) {
  graph::GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  ASSERT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  PropertyGraph g(schema);
  VertexId j = g.AddVertex("Job", {{"CPU", PropertyValue(2.5)},
                                   {"name", PropertyValue("job with spaces")},
                                   {"flag", PropertyValue(true)},
                                   {"nothing", PropertyValue()}})
                   .value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO", {{"ts", PropertyValue(42)}}).ok());

  std::string text = GraphToString(g);
  auto loaded = GraphFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), 2u);
  EXPECT_EQ(loaded->NumEdges(), 1u);
  EXPECT_EQ(loaded->VertexProperty(0, "CPU"), PropertyValue(2.5));
  EXPECT_EQ(loaded->VertexProperty(0, "name"),
            PropertyValue("job with spaces"));
  EXPECT_EQ(loaded->VertexProperty(0, "flag"), PropertyValue(true));
  EXPECT_TRUE(loaded->VertexProperty(0, "nothing").is_null());
  EXPECT_EQ(loaded->EdgeProperty(0, "ts"), PropertyValue(42));
  EXPECT_EQ(loaded->EdgeTypeName(0), "WRITES_TO");
  // Round-trip fixed point: serializing the loaded graph is identical.
  EXPECT_EQ(GraphToString(*loaded), text);
}

TEST(SerializationTest, EscapesHostileStrings) {
  graph::GraphSchema schema;
  schema.AddVertexType("V Type");  // type name with a space
  PropertyGraph g(schema);
  g.AddVertexOfType(0, {{"weird key =", PropertyValue("a=b \\ c\nnewline")}});
  auto loaded = GraphFromString(GraphToString(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->schema().vertex_type_name(0), "V Type");
  EXPECT_EQ(loaded->VertexProperty(0, "weird key ="),
            PropertyValue("a=b \\ c\nnewline"));
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(GraphFromString("").ok());
  EXPECT_FALSE(GraphFromString("not a graph\n").ok());
  EXPECT_FALSE(GraphFromString("kaskade-graph 99\n").ok());
  EXPECT_FALSE(
      GraphFromString("kaskade-graph 1\nvertex NoSuchType\n").ok());
  EXPECT_FALSE(GraphFromString("kaskade-graph 1\nbogus record\n").ok());
  EXPECT_FALSE(GraphFromString(
                   "kaskade-graph 1\nvtype V\nedge 0 1 MISSING\n")
                   .ok());
}

/// Property sweep: generated datasets round-trip losslessly.
class SerializationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationPropertyTest, GeneratedGraphsRoundTrip) {
  PropertyGraph g = [&]() -> PropertyGraph {
    switch (GetParam()) {
      case 0:
        return datasets::MakeProvenanceGraph(
            {.num_jobs = 30, .num_files = 60, .num_tasks = 20});
      case 1:
        return datasets::MakeDblpGraph(
            {.num_authors = 40, .num_articles = 80});
      case 2:
        return datasets::MakeSocialGraph({.num_vertices = 100});
      default:
        return datasets::MakeRoadGraph({.width = 8, .height = 8});
    }
  }();
  std::string text = GraphToString(g);
  auto loaded = GraphFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  EXPECT_EQ(GraphToString(*loaded), text);
  // Spot-check topology.
  for (VertexId v = 0; v < g.NumVertices(); v += 17) {
    EXPECT_EQ(loaded->OutDegree(v), g.OutDegree(v));
    EXPECT_EQ(loaded->InDegree(v), g.InDegree(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, SerializationPropertyTest,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Predicate summarizers (footnote 5)
// ---------------------------------------------------------------------------

TEST(PredicateTest, EvalPredicateOperators) {
  PropertyValue five(5);
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kEq, PropertyValue(5)));
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kNe, PropertyValue(6)));
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kLt, PropertyValue(6)));
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kLe, PropertyValue(5)));
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kGt, PropertyValue(4)));
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kGe, PropertyValue(5.0)));
  EXPECT_FALSE(EvalPredicate(five, PredicateOp::kGt, PropertyValue(5)));
  EXPECT_TRUE(EvalPredicate(five, PredicateOp::kNone, PropertyValue(99)));
}

PropertyGraph SmallProv() {
  return datasets::MakeProvenanceGraph(
      {.num_jobs = 60, .num_files = 120, .include_auxiliary = false});
}

TEST(PredicateTest, VertexPredicateShrinksView) {
  PropertyGraph g = SmallProv();
  ViewDefinition plain;
  plain.kind = ViewKind::kVertexInclusionSummarizer;
  plain.type_list = {"Job", "File"};
  ViewDefinition filtered = plain;
  filtered.predicate_property = "CPU";
  filtered.predicate_op = PredicateOp::kGt;
  filtered.predicate_value = PropertyValue(50.0);

  auto all = Materialize(g, plain);
  auto hot = Materialize(g, filtered);
  ASSERT_TRUE(all.ok() && hot.ok());
  EXPECT_LT(hot->graph.NumVertices(), all->graph.NumVertices());
  EXPECT_LT(hot->graph.NumEdges(), all->graph.NumEdges());
  // Every kept Job satisfies the predicate; Files have no CPU property
  // (null fails CPU > 50), so only jobs survive... null < 50 -> dropped.
  graph::VertexTypeId job_t = hot->graph.schema().FindVertexType("Job");
  for (VertexId v = 0; v < hot->graph.NumVertices(); ++v) {
    EXPECT_EQ(hot->graph.VertexType(v), job_t);
    EXPECT_GT(hot->graph.VertexProperty(v, "CPU").ToDouble(), 50.0);
  }
  EXPECT_NE(plain.Name(), filtered.Name());
}

TEST(PredicateTest, EdgePredicateFiltersEdges) {
  PropertyGraph g = SmallProv();
  ViewDefinition recent;
  recent.kind = ViewKind::kEdgeRemovalSummarizer;
  recent.type_list = {};  // remove nothing by type
  recent.predicate_property = "timestamp";
  recent.predicate_op = PredicateOp::kGe;
  recent.predicate_value = PropertyValue(static_cast<int64_t>(200));
  auto view = Materialize(g, recent);
  ASSERT_TRUE(view.ok());
  EXPECT_LT(view->graph.NumEdges(), g.NumEdges());
  EXPECT_GT(view->graph.NumEdges(), 0u);
  for (graph::EdgeId e = 0; e < view->graph.NumEdges(); ++e) {
    EXPECT_GE(view->graph.EdgeProperty(e, "timestamp").as_int(), 200);
  }
  // Vertices all survive (it is an edge filter).
  EXPECT_EQ(view->graph.NumVertices(), g.NumVertices());
}

TEST(PredicateTest, CoverageRequiresMatchingConditionOnEveryNode) {
  PropertyGraph g = SmallProv();
  ViewDefinition view;
  view.kind = ViewKind::kVertexInclusionSummarizer;
  view.type_list = {"Job", "File"};
  view.predicate_property = "CPU";
  view.predicate_op = PredicateOp::kGt;
  view.predicate_value = PropertyValue(50.0);

  auto covered = query::ParseQueryText(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
      "WHERE a.CPU > 50 AND f.CPU > 50 RETURN a, f");
  auto uncovered = query::ParseQueryText(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) WHERE a.CPU > 50 RETURN a, f");
  auto wrong_value = query::ParseQueryText(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
      "WHERE a.CPU > 60 AND f.CPU > 60 RETURN a, f");
  ASSERT_TRUE(covered.ok() && uncovered.ok() && wrong_value.ok());
  EXPECT_TRUE(core::SummarizerCoversQuery(view, *covered, g.schema()));
  EXPECT_FALSE(core::SummarizerCoversQuery(view, *uncovered, g.schema()));
  EXPECT_FALSE(core::SummarizerCoversQuery(view, *wrong_value, g.schema()));
  // Variable-length segments cannot carry interior conditions.
  auto varlen = query::ParseQueryText(
      "MATCH (a:Job)-[r*1..4]->(b:Job) WHERE a.CPU > 50 AND b.CPU > 50 "
      "RETURN a, b");
  ASSERT_TRUE(varlen.ok());
  EXPECT_FALSE(core::SummarizerCoversQuery(view, *varlen, g.schema()));
}

TEST(PredicateTest, CoveredPredicateRewriteIsExact) {
  PropertyGraph g = SmallProv();
  ViewDefinition view;
  view.kind = ViewKind::kVertexInclusionSummarizer;
  view.type_list = {"Job", "File"};
  view.predicate_property = "CPU";
  view.predicate_op = PredicateOp::kGt;
  view.predicate_value = PropertyValue(50.0);
  auto materialized = Materialize(g, view);
  ASSERT_TRUE(materialized.ok());

  // Files carry no CPU property, so this query can only return rows when
  // run over types whose CPU passes; use a job-to-job 2-hop via typed
  // edges where all three nodes carry the condition... files would fail,
  // so assert both plans agree on emptiness semantics instead with a
  // job-only pattern impossible here; use the job-file pattern with both
  // conditions.
  std::string text =
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
      "WHERE a.CPU > 50 AND f.CPU > 50 RETURN a, f";
  auto q = query::ParseQueryText(text);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(core::SummarizerCoversQuery(view, *q, g.schema()));
  query::QueryExecutor raw_exec(&g);
  query::QueryExecutor view_exec(&materialized->graph);
  auto raw = raw_exec.Execute(*q);
  auto over_view = view_exec.Execute(*q);
  ASSERT_TRUE(raw.ok() && over_view.ok());
  // Files never satisfy CPU > 50 (property absent), so both are empty —
  // and, critically, both agree.
  EXPECT_EQ(raw->num_rows(), over_view->num_rows());
}

TEST(PredicateTest, MaintenanceRespectsPredicates) {
  PropertyGraph g = SmallProv();
  ViewDefinition view;
  view.kind = ViewKind::kEdgeRemovalSummarizer;
  view.type_list = {};
  view.predicate_property = "timestamp";
  view.predicate_op = PredicateOp::kGe;
  view.predicate_value = PropertyValue(static_cast<int64_t>(0));
  auto materialized = Materialize(g, view);
  ASSERT_TRUE(materialized.ok());
  core::ViewMaintainer maintainer(&g, &*materialized);

  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  graph::EdgeId keep =
      g.AddEdge(j, f, "WRITES_TO", {{"timestamp", PropertyValue(10)}})
          .value();
  graph::EdgeId drop =
      g.AddEdge(j, f, "WRITES_TO", {{"timestamp", PropertyValue(-5)}})
          .value();
  (void)keep;
  (void)drop;
  auto stats = maintainer.CatchUp();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->edges_added, 1u);  // only the ts>=0 edge
  // Invariant vs from-scratch.
  auto scratch = Materialize(g, view);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(materialized->graph.NumEdges(), scratch->graph.NumEdges());
  EXPECT_EQ(materialized->graph.NumVertices(), scratch->graph.NumVertices());
}

}  // namespace
}  // namespace kaskade
