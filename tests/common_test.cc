// Tests for the Status/Result error model and string utilities.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace kaskade {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  KASKADE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err.ValueOr(42), 42);
}

Result<int> DoublePositive(int x) {
  KASKADE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(DoublePositive(3).ok());
  EXPECT_EQ(DoublePositive(3).value(), 6);
  EXPECT_EQ(DoublePositive(0).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLowerAscii("JoB"), "job");
  EXPECT_EQ(ToUpperAscii("job"), "JOB");
  EXPECT_TRUE(EqualsIgnoreCase("MATCH", "match"));
  EXPECT_FALSE(EqualsIgnoreCase("MATCH", "MATC"));
  EXPECT_TRUE(StartsWith("kaskade", "kas"));
  EXPECT_FALSE(StartsWith("kas", "kaskade"));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace kaskade
