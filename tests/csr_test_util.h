// Shared helper: structural equality of two CsrGraph snapshots through
// the public API, used by the patched-vs-fresh differential tests. Two
// snapshots are equal when every per-vertex slice — neighbors, lineage
// edge ids, out-edge types, and every typed sub-slice — is identical,
// which also (re-)verifies the sorted-by-neighbor, type-partitioned
// invariants the CSR MATCH backend's binary searches rely on.

#ifndef KASKADE_TESTS_CSR_TEST_UTIL_H_
#define KASKADE_TESTS_CSR_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "graph/csr.h"
#include "graph/property_graph.h"

namespace kaskade::testutil {

inline void ExpectEdgeSpansEqual(const graph::EdgeSpan& a,
                                 const graph::EdgeSpan& b,
                                 const std::string& where) {
  ASSERT_EQ(a.size, b.size) << where;
  for (size_t i = 0; i < a.size; ++i) {
    ASSERT_EQ(a.vertex(i), b.vertex(i)) << where << " slot " << i;
    ASSERT_EQ(a.edge_id(i), b.edge_id(i)) << where << " slot " << i;
  }
}

/// Asserts `a` and `b` are indistinguishable snapshots of `g`.
inline void ExpectCsrEqual(const graph::CsrGraph& a, const graph::CsrGraph& b,
                           const graph::PropertyGraph& g,
                           const std::string& context) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices()) << context;
  ASSERT_EQ(a.NumEdges(), b.NumEdges()) << context;
  ASSERT_EQ(a.edge_id_space(), b.edge_id_space()) << context;
  const size_t num_edge_types = g.schema().num_edge_types();
  for (graph::VertexId v = 0; v < a.NumVertices(); ++v) {
    const std::string at = context + " vertex " + std::to_string(v);
    ASSERT_EQ(a.VertexType(v), b.VertexType(v)) << at;
    ExpectEdgeSpansEqual(a.OutEdges(v), b.OutEdges(v), at + " out");
    ExpectEdgeSpansEqual(a.InEdges(v), b.InEdges(v), at + " in");
    for (size_t i = 0; i < a.OutDegree(v); ++i) {
      ASSERT_EQ(a.OutEdgeType(v, i), b.OutEdgeType(v, i))
          << at << " out type slot " << i;
    }
    // Typed sub-slices exercise the per-vertex type directories.
    for (size_t t = 0; t < num_edge_types; ++t) {
      const graph::EdgeTypeId type = static_cast<graph::EdgeTypeId>(t);
      ExpectEdgeSpansEqual(a.TypedOutEdges(v, type), b.TypedOutEdges(v, type),
                           at + " typed-out " + std::to_string(t));
      ExpectEdgeSpansEqual(a.TypedInEdges(v, type), b.TypedInEdges(v, type),
                           at + " typed-in " + std::to_string(t));
    }
    // Invariant check (not just equality): typed slices are sorted
    // ascending by neighbor id so filter edges can binary-search.
    for (size_t t = 0; t < num_edge_types; ++t) {
      graph::EdgeSpan span =
          a.TypedOutEdges(v, static_cast<graph::EdgeTypeId>(t));
      for (size_t i = 1; i < span.size; ++i) {
        ASSERT_LE(span.vertex(i - 1), span.vertex(i))
            << at << " typed-out slice of type " << t << " unsorted";
      }
    }
  }
}

}  // namespace kaskade::testutil

#endif  // KASKADE_TESTS_CSR_TEST_UTIL_H_
