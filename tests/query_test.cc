// Tests for the hybrid query language: parser, executor (legacy, CSR,
// and parallel-CSR backends), cost model.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "datasets/workloads.h"
#include "graph/csr.h"
#include "graph/stats.h"
#include "query/ast.h"
#include "query/cost.h"
#include "query/executor.h"
#include "query/parser.h"
#include "table_test_util.h"

namespace kaskade::query {
namespace {

using graph::CsrGraph;
using graph::GraphSchema;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(QueryParserTest, SimpleMatch) {
  auto q = ParseQueryText(
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f AS out");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->is_match());
  const MatchQuery& m = q->match();
  ASSERT_EQ(m.nodes.size(), 2u);
  EXPECT_EQ(m.nodes[0].name, "j");
  EXPECT_EQ(m.nodes[0].type, "Job");
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_EQ(m.edges[0].type, "WRITES_TO");
  EXPECT_FALSE(m.edges[0].variable_length);
  ASSERT_EQ(m.return_items.size(), 2u);
  EXPECT_EQ(m.return_items[1].OutputName(), "out");
}

TEST(QueryParserTest, VariableLengthEdge) {
  auto q = ParseQueryText("MATCH (a:File)-[r*0..8]->(b:File) RETURN a, b");
  ASSERT_TRUE(q.ok()) << q.status();
  const EdgePattern& e = q->match().edges[0];
  EXPECT_TRUE(e.variable_length);
  EXPECT_EQ(e.min_hops, 0);
  EXPECT_EQ(e.max_hops, 8);
  EXPECT_EQ(e.var, "r");
  EXPECT_TRUE(e.type.empty());
}

TEST(QueryParserTest, ChainedAndJuxtaposedPatterns) {
  // Listing 1 writes pattern segments with no separators at all.
  auto q = ParseQueryText(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->match().nodes.size(), 3u);  // a, f, b (f deduped)
  EXPECT_EQ(q->match().edges.size(), 2u);
  // Comma-separated works too.
  auto q2 = ParseQueryText(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File), (f)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b");
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_EQ(q2->match().edges.size(), 2u);
}

TEST(QueryParserTest, ConflictingNodeTypesRejected) {
  auto q = ParseQueryText(
      "MATCH (a:Job)-[:W]->(f:File) (f:Job)-[:R]->(b:Job) RETURN a");
  EXPECT_FALSE(q.ok());
}

TEST(QueryParserTest, ListingOneParses) {
  auto q = ParseQueryText(datasets::BlastRadiusQueryText());
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->is_select());
  const SelectQuery& outer = q->select();
  ASSERT_EQ(outer.items.size(), 2u);
  EXPECT_EQ(outer.items[0].ref.ToString(), "A.pipelineName");
  EXPECT_EQ(outer.items[1].agg, AggFunc::kAvg);
  ASSERT_EQ(outer.group_by.size(), 1u);
  ASSERT_TRUE(outer.from->is_select());
  const SelectQuery& inner = outer.from->select();
  EXPECT_EQ(inner.items[1].alias, "T_CPU");
  EXPECT_EQ(inner.items[1].agg, AggFunc::kSum);
  const MatchQuery* match = q->InnermostMatch();
  ASSERT_NE(match, nullptr);
  EXPECT_EQ(match->nodes.size(), 4u);
  EXPECT_EQ(match->edges.size(), 3u);
  EXPECT_TRUE(match->edges[1].variable_length);
}

TEST(QueryParserTest, ListingFourConnectorEdgeTypeWithDigitsAndDash) {
  // The paper spells the connector type "2_HOP-JOB_TO_JOB".
  auto q = ParseQueryText(
      "MATCH (a:Job)-[:2_HOP-JOB_TO_JOB*1..4]->(b:Job) RETURN a, b");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->match().edges[0].type, "2_HOP_JOB_TO_JOB");
  EXPECT_EQ(q->match().edges[0].min_hops, 1);
  EXPECT_EQ(q->match().edges[0].max_hops, 4);
  // Underscore spelling parses identically.
  auto q2 = ParseQueryText(
      "MATCH (a:Job)-[:2_HOP_JOB_TO_JOB*1..4]->(b:Job) RETURN a, b");
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_EQ(q2->match().edges[0].type, "2_HOP_JOB_TO_JOB");
}

TEST(QueryParserTest, WhereConditions) {
  auto q = ParseQueryText(
      "MATCH (j:Job)-[:W]->(f:File) WHERE j.CPU > 10 AND f.path = '/x' "
      "RETURN j");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->match().where.size(), 2u);
  EXPECT_EQ(q->match().where[0].op, CompareOp::kGt);
  EXPECT_EQ(q->match().where[1].rhs, PropertyValue("/x"));
}

TEST(QueryParserTest, SelectWithWhereAndCountStar) {
  auto q = ParseQueryText(
      "SELECT COUNT(*) FROM (MATCH (a:Job)-[:W]->(f:File) RETURN a) "
      "WHERE a.CPU >= 5");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->select().items[0].star);
  EXPECT_EQ(q->select().items[0].agg, AggFunc::kCount);
  EXPECT_EQ(q->select().where.size(), 1u);
}

TEST(QueryParserTest, KeywordsCaseInsensitive) {
  auto q = ParseQueryText("match (a:Job)-[:W]->(b:File) return a as x");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->match().return_items[0].alias, "x");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQueryText("").ok());
  EXPECT_FALSE(ParseQueryText("FOO (a) RETURN a").ok());
  EXPECT_FALSE(ParseQueryText("MATCH (a:Job) RETURN").ok());
  EXPECT_FALSE(ParseQueryText("MATCH (a)-[*]->(b) RETURN a").ok());
  EXPECT_FALSE(ParseQueryText("MATCH (a)-[*3..1]->(b) RETURN a").ok());
  EXPECT_FALSE(ParseQueryText("SELECT FROM (MATCH (a) RETURN a)").ok());
  EXPECT_FALSE(ParseQueryText("MATCH (a:Job) RETURN a extra").ok());
}

TEST(QueryAstTest, CloneAndToStringRoundTrip) {
  auto q = ParseQueryText(datasets::BlastRadiusQueryText());
  ASSERT_TRUE(q.ok());
  Query clone = q->Clone();
  EXPECT_EQ(clone.ToString(), q->ToString());
  // Rendered text reparses to the same rendering (fixed point).
  auto reparsed = ParseQueryText(q->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->ToString(), q->ToString());
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Small lineage fixture: j0 -> f0 -> j1 -> f1 -> j2 and j0 -> f2.
class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : g_(MakeSchema()) {
    for (int i = 0; i < 3; ++i) {
      graph::PropertyMap props;
      props.Set("CPU", PropertyValue(10.0 * (i + 1)));
      props.Set("pipelineName", PropertyValue(i < 2 ? "alpha" : "beta"));
      jobs_.push_back(g_.AddVertex("Job", std::move(props)).value());
    }
    for (int i = 0; i < 3; ++i) {
      files_.push_back(g_.AddVertex("File").value());
    }
    Must(g_.AddEdge(jobs_[0], files_[0], "WRITES_TO"));
    Must(g_.AddEdge(files_[0], jobs_[1], "IS_READ_BY"));
    Must(g_.AddEdge(jobs_[1], files_[1], "WRITES_TO"));
    Must(g_.AddEdge(files_[1], jobs_[2], "IS_READ_BY"));
    Must(g_.AddEdge(jobs_[0], files_[2], "WRITES_TO"));
  }

  static GraphSchema MakeSchema() {
    GraphSchema schema;
    schema.AddVertexType("Job");
    schema.AddVertexType("File");
    EXPECT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
    EXPECT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
    return schema;
  }

  template <typename T>
  static void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status();
  }

  Table Run(const std::string& text) {
    QueryExecutor executor(&g_);
    auto result = executor.ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(*result) : Table();
  }

  Table RunCsr(const std::string& text, size_t parallelism = 1) {
    CsrGraph csr = CsrGraph::Build(g_);
    ExecutorOptions opts;
    opts.parallelism = parallelism;
    QueryExecutor executor(&g_, &csr, opts);
    auto result = executor.ExecuteText(text);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(*result) : Table();
  }

  /// Runs `text` on the legacy backend (the oracle), then requires the
  /// CSR backend to return the same row set and the parallel CSR run to
  /// be byte-identical to the sequential CSR run.
  Table RunOnAllBackends(const std::string& text) {
    using testutil::CanonicalRows;
    Table legacy = Run(text);
    Table csr_seq = RunCsr(text, /*parallelism=*/1);
    Table csr_par = RunCsr(text, /*parallelism=*/4);
    EXPECT_EQ(CanonicalRows(legacy), CanonicalRows(csr_seq)) << text;
    EXPECT_EQ(csr_seq.num_rows(), csr_par.num_rows()) << text;
    if (csr_seq.num_rows() == csr_par.num_rows()) {
      for (size_t r = 0; r < csr_seq.num_rows(); ++r) {
        EXPECT_EQ(csr_seq.rows()[r], csr_par.rows()[r])
            << text << " row " << r << " differs between sequential and "
            << "parallel CSR execution";
      }
    }
    return legacy;
  }

  PropertyGraph g_;
  std::vector<VertexId> jobs_;
  std::vector<VertexId> files_;
};

TEST_F(ExecutorTest, FixedEdgeMatch) {
  Table t = Run("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.columns()[0].is_vertex);
}

TEST_F(ExecutorTest, TwoHopChain) {
  Table t = Run(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b");
  // j0->j1 and j1->j2.
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, VariableLengthParityAndBounds) {
  // File-to-file paths have even length in this bipartite schema.
  Table t1 = Run("MATCH (a:File)-[r*1..2]->(b:File) RETURN a, b");
  EXPECT_EQ(t1.num_rows(), 1u);  // f0 -> f1 (2 hops); f2 is a sink
  Table t2 = Run("MATCH (a:File)-[r*1..1]->(b:File) RETURN a, b");
  EXPECT_EQ(t2.num_rows(), 0u);  // no odd-length file-file path
}

TEST_F(ExecutorTest, VariableLengthZeroIncludesSelf) {
  Table t = Run("MATCH (a:File)-[r*0..2]->(b:File) RETURN a, b");
  // 3 self pairs + f0->f1.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(ExecutorTest, SetSemanticsDeduplicatesRows) {
  // Two parallel write edges must not duplicate the (j, f) row.
  Must(g_.AddEdge(jobs_[0], files_[0], "WRITES_TO"));
  Table t = Run("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, BackwardExpansionWhenTargetBoundFirst) {
  // Planner seeds at the smaller side; here both ends typed, so exercise
  // an edge whose source is the only free side by constraining files.
  Table t = Run(
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU > 15 RETURN j, f");
  EXPECT_EQ(t.num_rows(), 1u);  // only j1 (CPU 20) writes f1
}

TEST_F(ExecutorTest, WhereOnStringProperty) {
  Table t = Run(
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.pipelineName = 'alpha' "
      "RETURN j, f");
  EXPECT_EQ(t.num_rows(), 3u);  // j0 (2 writes) + j1 (1 write)
}

TEST_F(ExecutorTest, SelectProjectionWithVertexProperty) {
  Table t = Run(
      "SELECT j.CPU FROM (MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j)");
  // MATCH returns distinct j: j0, j1. Projection keeps 2 rows.
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.columns()[0].name, "j.CPU");
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  Table t = Run(
      "SELECT a, COUNT(*) AS n, SUM(b.CPU) AS total FROM ("
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b) GROUP BY a");
  ASSERT_EQ(t.num_rows(), 2u);
  int n_col = t.FindColumn("n");
  int total_col = t.FindColumn("total");
  ASSERT_GE(n_col, 0);
  ASSERT_GE(total_col, 0);
  for (const auto& row : t.rows()) {
    EXPECT_EQ(row[n_col], PropertyValue(1));
  }
}

TEST_F(ExecutorTest, GlobalAggregateWithoutGroupBy) {
  Table t = Run(
      "SELECT COUNT(*) FROM (MATCH (j:Job)-[:WRITES_TO]->(f:File) "
      "RETURN j, f)");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], PropertyValue(3));
}

TEST_F(ExecutorTest, AvgAndMinMax) {
  Table t = Run(
      "SELECT AVG(j.CPU), MIN(j.CPU), MAX(j.CPU) FROM ("
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j)");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], PropertyValue(15.0));  // (10+20)/2
  EXPECT_EQ(t.rows()[0][1], PropertyValue(10.0));
  EXPECT_EQ(t.rows()[0][2], PropertyValue(20.0));
}

TEST_F(ExecutorTest, NestedSelectLayers) {
  Table t = Run(
      "SELECT A.pipelineName, AVG(T_CPU) FROM ("
      "  SELECT A, SUM(B.CPU) AS T_CPU FROM ("
      "    MATCH (A:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(B:Job)"
      "    RETURN A, B"
      "  ) GROUP BY A, B"
      ") GROUP BY A.pipelineName");
  // j0 (alpha) -> j1: 20; j1 (alpha) -> j2: 30. AVG over jobs = 25.
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], PropertyValue("alpha"));
  EXPECT_EQ(t.rows()[0][1], PropertyValue(25.0));
}

TEST_F(ExecutorTest, UnknownTypesAndColumnsFail) {
  QueryExecutor executor(&g_);
  EXPECT_FALSE(executor.ExecuteText("MATCH (x:Nope) RETURN x").ok());
  EXPECT_FALSE(
      executor.ExecuteText("MATCH (a:Job)-[:NOPE]->(b:File) RETURN a").ok());
  EXPECT_FALSE(
      executor
          .ExecuteText(
              "SELECT zzz FROM (MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j)")
          .ok());
  EXPECT_FALSE(
      executor.ExecuteText("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN zzz")
          .ok());
}

TEST_F(ExecutorTest, RowLimitRespected) {
  ExecutorOptions opts;
  opts.max_rows = 2;
  QueryExecutor executor(&g_, opts);
  auto result =
      executor.ExecuteText("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecutorTest, CyclicPatternAsFilter) {
  // Add a cycle: j2 writes f0 (f0 read by j1... making j1->f1->j2->f0->j1?).
  Must(g_.AddEdge(jobs_[2], files_[2], "WRITES_TO"));
  // Pattern with a closing edge: a writes f, f read by b, b writes f2,
  // and a also writes f2 -- a diamond that needs the filter-edge path.
  Table t = Run(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "(a:Job)-[:WRITES_TO]->(g:File) RETURN a, b, g");
  // Every (a,b) pair combined with every file a writes.
  EXPECT_EQ(t.num_rows(), 3u);  // (j0,j1)x{f0,f2}, (j1,j2)x{f1}
}

// ---------------------------------------------------------------------------
// Executor edge cases the CSR rewrite must preserve. Each expectation is
// pinned against the legacy path, then RunOnAllBackends requires the
// CSR and parallel-CSR paths to return the identical row set.
// ---------------------------------------------------------------------------

TEST_F(ExecutorTest, MinHopsZeroVariableLengthOnAllBackends) {
  Table t = RunOnAllBackends("MATCH (a:File)-[r*0..2]->(b:File) RETURN a, b");
  // 3 self pairs (min_hops == 0 includes each seed itself) + f0 -> f1.
  EXPECT_EQ(t.num_rows(), 4u);
  // Self pair must also appear when the zero-hop edge closes a cycle
  // (both endpoints bound to the same vertex).
  Table closed = RunOnAllBackends(
      "MATCH (a:File)-[r*0..2]->(b:File) (a:File)-[s*0..0]->(b:File) "
      "RETURN a, b");
  EXPECT_EQ(closed.num_rows(), 3u);  // only the self pairs survive *0..0
}

TEST_F(ExecutorTest, CycleClosingFilterEdgeOnAllBackends) {
  Must(g_.AddEdge(jobs_[2], files_[2], "WRITES_TO"));
  // Diamond pattern: the second (a)-[:WRITES_TO]->(g) edge closes a
  // cycle once a, b, g are bound, so it runs as a filter edge.
  Table t = RunOnAllBackends(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "(a:Job)-[:WRITES_TO]->(g:File) RETURN a, b, g");
  EXPECT_EQ(t.num_rows(), 3u);  // (j0,j1)x{f0,f2}, (j1,j2)x{f1}
}

TEST_F(ExecutorTest, VariableLengthCycleClosingFilterEdgeOnAllBackends) {
  // Both endpoints of the *2..2 edge are bound by the chain, so the
  // variable-length reachability check runs in filter position (the
  // early-exit BFS path).
  Table t = RunOnAllBackends(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "(a:Job)-[r*2..2]->(b:Job) RETURN a, b");
  EXPECT_EQ(t.num_rows(), 2u);  // j0->j1 and j1->j2, each via a 2-hop path
  Table none = RunOnAllBackends(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "(a:Job)-[r*3..3]->(b:Job) RETURN a, b");
  EXPECT_EQ(none.num_rows(), 0u);  // no odd-length Job->Job path
}

TEST_F(ExecutorTest, ParallelEdgesSetSemanticsOnAllBackends) {
  // Triple parallel write edges must not multiply rows under set
  // semantics, on any backend.
  Must(g_.AddEdge(jobs_[0], files_[0], "WRITES_TO"));
  Must(g_.AddEdge(jobs_[0], files_[0], "WRITES_TO"));
  Table t = RunOnAllBackends("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
  EXPECT_EQ(t.num_rows(), 3u);
  // Same through a variable-length expansion.
  Table vl = RunOnAllBackends("MATCH (a:Job)-[r*1..2]->(b:Job) RETURN a, b");
  EXPECT_EQ(vl.num_rows(), 2u);  // j0->j1, j1->j2 (2 hops each)
}

TEST_F(ExecutorTest, RowLimitResourceExhaustedOnAllBackends) {
  const std::string query =
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";
  CsrGraph csr = CsrGraph::Build(g_);
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    ExecutorOptions opts;
    opts.max_rows = 2;
    opts.parallelism = parallelism;
    QueryExecutor legacy(&g_, opts);
    auto legacy_result = legacy.ExecuteText(query);
    EXPECT_FALSE(legacy_result.ok());
    EXPECT_EQ(legacy_result.status().code(), StatusCode::kResourceExhausted);
    QueryExecutor over_csr(&g_, &csr, opts);
    auto csr_result = over_csr.ExecuteText(query);
    EXPECT_FALSE(csr_result.ok()) << "parallelism " << parallelism;
    EXPECT_EQ(csr_result.status().code(), StatusCode::kResourceExhausted);
  }
  // At exactly the row count, every backend succeeds.
  ExecutorOptions exact;
  exact.max_rows = 3;
  QueryExecutor ok_exec(&g_, &csr, exact);
  EXPECT_TRUE(ok_exec.ExecuteText(query).ok());
}

TEST_F(ExecutorTest, StaleCsrSnapshotRejected) {
  CsrGraph csr = CsrGraph::Build(g_);
  Must(g_.AddEdge(jobs_[2], files_[2], "WRITES_TO"));  // snapshot now stale
  QueryExecutor executor(&g_, &csr);
  auto result =
      executor.ExecuteText("MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(ExecutorTest, NestedSelectOverCsrBackendMatchesLegacy) {
  const std::string query =
      "SELECT A.pipelineName, AVG(T_CPU) FROM ("
      "  SELECT A, SUM(B.CPU) AS T_CPU FROM ("
      "    MATCH (A:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(B:Job)"
      "    RETURN A, B"
      "  ) GROUP BY A, B"
      ") GROUP BY A.pipelineName";
  Table legacy = Run(query);
  Table over_csr = RunCsr(query, /*parallelism=*/4);
  ASSERT_EQ(legacy.num_rows(), over_csr.num_rows());
  ASSERT_EQ(legacy.num_rows(), 1u);
  EXPECT_EQ(legacy.rows()[0], over_csr.rows()[0]);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST_F(ExecutorTest, CostGrowsWithHops) {
  graph::GraphStats stats = graph::GraphStats::Compute(g_);
  auto q2 = ParseQueryText("MATCH (a:File)-[r*1..2]->(b:File) RETURN a, b");
  auto q8 = ParseQueryText("MATCH (a:File)-[r*1..8]->(b:File) RETURN a, b");
  ASSERT_TRUE(q2.ok() && q8.ok());
  EXPECT_LT(EstimateEvalCost(*q2, g_, stats), EstimateEvalCost(*q8, g_, stats));
}

TEST_F(ExecutorTest, CostPrefersSmallerGraph) {
  graph::GraphStats stats = graph::GraphStats::Compute(g_);
  // Same query, graph with double the vertices ~ higher cost.
  PropertyGraph big(g_.schema());
  for (int i = 0; i < 100; ++i) big.AddVertex("Job").value();
  graph::GraphStats big_stats = graph::GraphStats::Compute(big);
  auto q = ParseQueryText("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a");
  ASSERT_TRUE(q.ok());
  EXPECT_LT(EstimateEvalCost(*q, g_, stats),
            EstimateEvalCost(*q, big, big_stats));
}

TEST_F(ExecutorTest, SelectLayerAddsSmallOverhead) {
  graph::GraphStats stats = graph::GraphStats::Compute(g_);
  auto inner = ParseQueryText("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a");
  auto outer = ParseQueryText(
      "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a)");
  ASSERT_TRUE(inner.ok() && outer.ok());
  double ci = EstimateEvalCost(*inner, g_, stats);
  double co = EstimateEvalCost(*outer, g_, stats);
  EXPECT_GT(co, ci);
  EXPECT_LT(co, ci * 2);
}

}  // namespace
}  // namespace kaskade::query
