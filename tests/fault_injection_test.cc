// Fault-injection suite (see core/fault.h): every named site is failed
// on purpose and the degradation contract is proved against a fault-free
// oracle engine over the same graph — no crash, no stale or torn result,
// failed builds quarantine their view while queries transparently answer
// from the base graph, and the telemetry accounts for every event.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"
#include "core/fault.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/delta.h"
#include "table_test_util.h"

namespace kaskade::core {
namespace {

using graph::PropertyGraph;
using testutil::CanonicalRows;

PropertyGraph FaultProv() {
  datasets::ProvOptions options;
  options.num_jobs = 60;
  options.num_files = 120;
  options.include_auxiliary = false;
  options.seed = 7;
  return datasets::MakeProvenanceGraph(options);
}

ViewDefinition JobConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

ViewDefinition FileConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "File";
  def.target_type = "File";
  return def;
}

/// Shared hook state: fail `site` while `armed`, count what happened.
struct FaultState {
  FaultSite site;
  std::atomic<bool> armed{true};
  std::atomic<size_t> fired{0};
  std::atomic<size_t> failed{0};
  /// When non-empty, only fire for this detail (e.g. one view's name).
  std::string only_detail;
};

FaultHooks FailingHooks(std::shared_ptr<FaultState> state) {
  FaultHooks hooks;
  hooks.hook = [state](FaultSite site, const std::string& detail) {
    if (site != state->site) return Status::OK();
    if (!state->only_detail.empty() && detail != state->only_detail) {
      return Status::OK();
    }
    state->fired.fetch_add(1);
    if (!state->armed.load()) return Status::OK();
    state->failed.fetch_add(1);
    return Status::Internal("injected fault at " +
                            std::string(FaultSiteName(site)) + " (" + detail +
                            ")");
  };
  return hooks;
}

// ---------------------------------------------------------------------------
// Snapshot build faults: degrade to the legacy backend, stay exact
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, SnapshotBuildFaultFallsBackToLegacyBackend) {
  auto state = std::make_shared<FaultState>();
  state->site = FaultSite::kSnapshotBuild;

  EngineOptions options;
  options.fault_hooks = FailingHooks(state);
  Engine subject(FaultProv(), options);
  Engine oracle(FaultProv());

  const std::vector<std::string> texts = {
      datasets::AncestorsQueryText("Job", 3),
      datasets::DescendantsQueryText("Job", 2),
      datasets::AncestorsQueryText("File", 2),
  };
  for (const std::string& text : texts) {
    auto expected = oracle.Execute(text);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto got = subject.Execute(text);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(CanonicalRows(got->table), CanonicalRows(expected->table));
    // The legacy backend performs no CSR expansions — proof the query
    // really degraded rather than using a half-built snapshot.
    EXPECT_EQ(got->expansions, 0u);
  }
  // Telemetry accounts for every failed production, and for nothing else.
  EngineTelemetry telemetry = subject.TelemetrySnapshot();
  EXPECT_GT(telemetry.snapshot_build_failures, 0u);
  EXPECT_EQ(telemetry.snapshot_build_failures, state->failed.load());
  EXPECT_EQ(telemetry.quarantine_events, 0u);

  // Disarm: CSR production recovers without restarting the engine.
  state->armed.store(false);
  auto recovered = subject.Execute(texts[0]);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->expansions, 0u);
}

// ---------------------------------------------------------------------------
// Maintainer faults: quarantine one view, keep the batch and the rest
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, MaintainerApplyFaultQuarantinesOnlyThatView) {
  auto state = std::make_shared<FaultState>();
  state->site = FaultSite::kMaintainerApply;
  state->only_detail = JobConnector().Name();

  EngineOptions options;
  options.fault_hooks = FailingHooks(state);
  Engine subject(FaultProv(), options);
  Engine oracle(FaultProv());
  ASSERT_TRUE(subject.AddMaterializedView(JobConnector()).ok());
  ASSERT_TRUE(subject.AddMaterializedView(FileConnector()).ok());

  // One inserted edge that both engines apply identically (same seed,
  // same vertex ids).
  const graph::PropertyGraph& base = subject.base_graph();
  std::vector<graph::VertexId> jobs =
      base.VerticesOfType(base.schema().FindVertexType("Job"));
  std::vector<graph::VertexId> files =
      base.VerticesOfType(base.schema().FindVertexType("File"));
  ASSERT_FALSE(jobs.empty());
  ASSERT_FALSE(files.empty());
  graph::GraphDelta delta;
  delta.AddEdge(jobs.front(), files.back(), "WRITES_TO");
  graph::GraphDelta oracle_delta;
  oracle_delta.AddEdge(jobs.front(), files.back(), "WRITES_TO");

  auto report = subject.ApplyDelta(std::move(delta));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(oracle.ApplyDelta(std::move(oracle_delta)).ok());

  // The failing maintainer quarantined its view; the other view and the
  // base graph absorbed the delta normally.
  EXPECT_EQ(subject.catalog().num_quarantined(), 1u);
  const CatalogEntry* bad = subject.catalog().Find(JobConnector().Name());
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->state, ViewState::kQuarantined);
  EXPECT_FALSE(bad->health.ok());
  const CatalogEntry* good = subject.catalog().Find(FileConnector().Name());
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->state, ViewState::kReady);

  // Post-delta answers come from the base graph (never the stale view)
  // and match the fault-free oracle exactly.
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto expected = oracle.Execute(text);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got = subject.Execute(text);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_FALSE(got->used_view);
  EXPECT_EQ(CanonicalRows(got->table), CanonicalRows(expected->table));

  EngineTelemetry telemetry = subject.TelemetrySnapshot();
  EXPECT_EQ(telemetry.views_quarantined, 1u);
  EXPECT_EQ(telemetry.quarantine_events, 1u);
  EXPECT_EQ(telemetry.quarantine_events, state->failed.load());
}

// ---------------------------------------------------------------------------
// Background-build faults (materialize / publish): quarantine + reclaim
// ---------------------------------------------------------------------------

void RunBuildFaultScenario(FaultSite site) {
  auto state = std::make_shared<FaultState>();
  state->site = site;

  EngineOptions options;
  options.fault_hooks = FailingHooks(state);
  Engine subject(FaultProv(), options);
  Engine oracle(FaultProv());

  AdvicePlan plan;
  plan.create.push_back(JobConnector());
  auto report = subject.ApplyAdvice(plan);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->builds_scheduled, 1u);
  subject.WaitForBuilds();

  // The build failed and was recorded; the entry is quarantined, not
  // erased — the name stays reserved with the injected failure in its
  // health field.
  Status build_error = subject.TakeBuildError();
  ASSERT_FALSE(build_error.ok());
  EXPECT_NE(build_error.message().find("injected fault"), std::string::npos)
      << build_error;
  EXPECT_EQ(subject.catalog().num_quarantined(), 1u);
  EXPECT_EQ(subject.catalog().num_ready(), 0u);

  // Queries transparently answer from the base graph.
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto expected = oracle.Execute(text);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto during = subject.Execute(text);
  ASSERT_TRUE(during.ok()) << during.status();
  EXPECT_FALSE(during->used_view);
  EXPECT_EQ(CanonicalRows(during->table), CanonicalRows(expected->table));

  // Disarm the fault and rebuild: the quarantined entry is reclaimed in
  // place and the view serves again — identically to a never-faulted
  // engine carrying the same view.
  state->armed.store(false);
  ASSERT_TRUE(subject.AddMaterializedView(JobConnector()).ok());
  EXPECT_EQ(subject.catalog().num_quarantined(), 0u);
  EXPECT_EQ(subject.catalog().num_ready(), 1u);
  Engine healthy(FaultProv());
  ASSERT_TRUE(healthy.AddMaterializedView(JobConnector()).ok());
  auto healthy_result = healthy.Execute(text);
  ASSERT_TRUE(healthy_result.ok()) << healthy_result.status();
  auto after = subject.Execute(text);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(CanonicalRows(after->table), CanonicalRows(healthy_result->table));

  EngineTelemetry telemetry = subject.TelemetrySnapshot();
  EXPECT_EQ(telemetry.quarantine_events, 1u);
  EXPECT_EQ(telemetry.views_quarantined, 0u);
}

TEST(FaultInjectionTest, MaterializeFaultQuarantinesBuildThenReclaims) {
  RunBuildFaultScenario(FaultSite::kMaterialize);
}

TEST(FaultInjectionTest, PublishFaultQuarantinesBuildThenReclaims) {
  RunBuildFaultScenario(FaultSite::kPublish);
}

// ---------------------------------------------------------------------------
// Batch-worker faults: the caller drains the batch, every member answers
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, BatchWorkerFaultNeverLosesABatchMember) {
  auto state = std::make_shared<FaultState>();
  state->site = FaultSite::kBatchWorker;

  EngineOptions options;
  options.fault_hooks = FailingHooks(state);
  Engine subject(FaultProv(), options);
  Engine oracle(FaultProv());

  // Twelve distinct-shape queries: enough independent tasks to start
  // the persistent pool, whose workers all fail their claim.
  std::vector<std::string> texts;
  for (int hops = 1; hops <= 6; ++hops) {
    texts.push_back(datasets::AncestorsQueryText("Job", hops));
    texts.push_back(datasets::DescendantsQueryText("Job", hops));
  }
  std::vector<std::multiset<std::vector<int64_t>>> expected;
  for (const std::string& text : texts) {
    auto result = oracle.Execute(text);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(CanonicalRows(result->table));
  }

  // On one core the calling thread can drain a whole batch before any
  // pool worker wakes, so repeat until a worker provably faulted; every
  // round must be complete and exact regardless.
  for (int round = 0;
       round < 50 && subject.TelemetrySnapshot().batch_worker_faults == 0;
       ++round) {
    auto results = subject.ExecuteBatch(texts);
    ASSERT_EQ(results.size(), texts.size());
    for (size_t i = 0; i < texts.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status();
      EXPECT_EQ(CanonicalRows(results[i]->table), expected[i]);
    }
  }
  // The workers really did abandon rounds — and every batch still
  // completed because the calling thread drained it.
  EngineTelemetry telemetry = subject.TelemetrySnapshot();
  EXPECT_GT(telemetry.batch_worker_faults, 0u);
  EXPECT_GE(state->failed.load(), telemetry.batch_worker_faults);
}

// ---------------------------------------------------------------------------
// Self-healing: opt-in quarantine repair
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, SelfHealRepairsQuarantinedViewAfterOneShotFault) {
  auto state = std::make_shared<FaultState>();
  state->site = FaultSite::kMaintainerApply;
  state->only_detail = JobConnector().Name();

  EngineOptions options;
  options.fault_hooks = FailingHooks(state);
  options.self_heal.enabled = true;
  options.self_heal.initial_backoff = std::chrono::milliseconds(1);
  Engine subject(FaultProv(), options);
  Engine oracle(FaultProv());
  ASSERT_TRUE(subject.AddMaterializedView(JobConnector()).ok());
  ASSERT_TRUE(oracle.AddMaterializedView(JobConnector()).ok());

  const graph::PropertyGraph& base = subject.base_graph();
  std::vector<graph::VertexId> jobs =
      base.VerticesOfType(base.schema().FindVertexType("Job"));
  std::vector<graph::VertexId> files =
      base.VerticesOfType(base.schema().FindVertexType("File"));
  ASSERT_FALSE(jobs.empty());
  ASSERT_FALSE(files.empty());

  // One-shot fault: the maintainer fails exactly once, quarantining the
  // view; every later rebuild attempt is clean.
  graph::GraphDelta delta;
  delta.AddEdge(jobs.front(), files.back(), "WRITES_TO");
  graph::GraphDelta oracle_delta;
  oracle_delta.AddEdge(jobs.front(), files.back(), "WRITES_TO");
  ASSERT_TRUE(subject.ApplyDelta(std::move(delta)).ok());
  ASSERT_TRUE(oracle.ApplyDelta(std::move(oracle_delta)).ok());
  state->armed.store(false);
  ASSERT_EQ(state->failed.load(), 1u);

  // The repair worker notices the quarantine and rebuilds the view
  // without any manual intervention.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (subject.TelemetrySnapshot().quarantine_repairs == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EngineTelemetry telemetry = subject.TelemetrySnapshot();
  EXPECT_GE(telemetry.quarantine_repairs, 1u);
  EXPECT_EQ(telemetry.views_quarantined, 0u);
  const CatalogEntry* healed = subject.catalog().Find(JobConnector().Name());
  ASSERT_NE(healed, nullptr);
  EXPECT_EQ(healed->state, ViewState::kReady);
  EXPECT_TRUE(healed->health.ok());

  // The healed view answers exactly like the fault-free oracle's.
  const std::string text = datasets::AncestorsQueryText("Job", 2);
  auto expected = oracle.Execute(text);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got = subject.Execute(text);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(CanonicalRows(got->table), CanonicalRows(expected->table));

  // A second fault round heals again: repair is a loop, not a one-off.
  state->armed.store(true);
  graph::GraphDelta second;
  second.AddEdge(jobs.back(), files.front(), "WRITES_TO");
  graph::GraphDelta oracle_second;
  oracle_second.AddEdge(jobs.back(), files.front(), "WRITES_TO");
  ASSERT_TRUE(subject.ApplyDelta(std::move(second)).ok());
  ASSERT_TRUE(oracle.ApplyDelta(std::move(oracle_second)).ok());
  state->armed.store(false);
  while (subject.TelemetrySnapshot().quarantine_repairs < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(subject.TelemetrySnapshot().quarantine_repairs, 2u);
  auto after = subject.Execute(text);
  auto after_expected = oracle.Execute(text);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_TRUE(after_expected.ok()) << after_expected.status();
  EXPECT_EQ(CanonicalRows(after->table), CanonicalRows(after_expected->table));
}

}  // namespace
}  // namespace kaskade::core
