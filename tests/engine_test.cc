// Tests for the decomposed Engine / ViewCatalog / Planner architecture:
// plan-cache correctness under catalog and base-graph changes, generation
// monotonicity, stable view handles, batched execution, and concurrent
// reader execution.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "core/catalog.h"
#include "core/engine.h"
#include "core/materializer.h"
#include "core/planner.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/delta.h"
#include "query/parser.h"

namespace kaskade::core {
namespace {

using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

PropertyGraph SmallProv(uint64_t seed = 42) {
  datasets::ProvOptions options;
  options.num_jobs = 60;
  options.num_files = 120;
  options.include_auxiliary = false;
  options.seed = seed;
  return datasets::MakeProvenanceGraph(options);
}

ViewDefinition JobConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

ViewDefinition FileConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "File";
  def.target_type = "File";
  return def;
}

/// Appends one isolated Job vertex through the writer API.
Status AppendJob(Engine* engine) {
  return engine->MutateBaseGraph([](PropertyGraph* g) {
    return g->AddVertex("Job", {{"CPU", PropertyValue(1.0)}}).status();
  });
}

// ---------------------------------------------------------------------------
// ViewCatalog
// ---------------------------------------------------------------------------

TEST(ViewCatalogTest, HandlesAreStableAcrossMutations) {
  PropertyGraph base = SmallProv();
  ViewCatalog catalog(&base);
  auto job = catalog.Add(JobConnector());
  ASSERT_TRUE(job.ok()) << job.status();
  auto file = catalog.Add(FileConnector());
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_NE(*job, *file);
  EXPECT_NE(*job, kInvalidViewHandle);

  const CatalogEntry* by_handle = catalog.Get(*job);
  ASSERT_NE(by_handle, nullptr);
  EXPECT_EQ(by_handle->name(), JobConnector().Name());
  // Dropping one entry leaves the other handle valid.
  ASSERT_TRUE(catalog.Remove(FileConnector().Name()).ok());
  EXPECT_EQ(catalog.Get(*file), nullptr);
  ASSERT_NE(catalog.Get(*job), nullptr);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(ViewCatalogTest, GenerationIsMonotonic) {
  PropertyGraph base = SmallProv();
  ViewCatalog catalog(&base);
  uint64_t g0 = catalog.generation();
  ASSERT_TRUE(catalog.Add(JobConnector()).ok());
  uint64_t g1 = catalog.generation();
  EXPECT_GT(g1, g0);
  ASSERT_TRUE(catalog.RefreshAll().ok());
  uint64_t g2 = catalog.generation();
  EXPECT_GT(g2, g1);
  catalog.NoteBaseGraphChanged();
  uint64_t g3 = catalog.generation();
  EXPECT_GT(g3, g2);
  ASSERT_TRUE(catalog.Remove(JobConnector().Name()).ok());
  EXPECT_GT(catalog.generation(), g3);
}

TEST(ViewCatalogTest, DuplicateAndMissingNames) {
  PropertyGraph base = SmallProv();
  ViewCatalog catalog(&base);
  ASSERT_TRUE(catalog.Add(JobConnector()).ok());
  EXPECT_EQ(catalog.Add(JobConnector()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Remove("no_such_view").code(), StatusCode::kNotFound);
}

TEST(ViewCatalogTest, MaintainerAttachedOnlyForSupportedKinds) {
  PropertyGraph base = SmallProv();
  ViewCatalog catalog(&base);
  ASSERT_TRUE(catalog.Add(JobConnector()).ok());
  ViewDefinition agg;
  agg.kind = ViewKind::kVertexAggregatorSummarizer;
  agg.source_type = "Job";
  agg.group_by_property = "pipelineName";
  ASSERT_TRUE(catalog.Add(agg).ok());

  const CatalogEntry* connector = catalog.Find(JobConnector().Name());
  ASSERT_NE(connector, nullptr);
  EXPECT_NE(connector->maintainer, nullptr);
  const CatalogEntry* aggregator = catalog.Find(agg.Name());
  ASSERT_NE(aggregator, nullptr);
  EXPECT_EQ(aggregator->maintainer, nullptr);
}

// ---------------------------------------------------------------------------
// Plan cache correctness
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, InvalidatedByAddMaterializedView) {
  Engine engine(SmallProv());
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto before = engine.Execute(text);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_FALSE(before->used_view);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  auto after = engine.Execute(text);
  ASSERT_TRUE(after.ok()) << after.status();
  // The cached raw plan must not survive the catalog change.
  EXPECT_TRUE(after->used_view);
  EXPECT_EQ(engine.plan_cache_misses(), 2u);
  EXPECT_EQ(engine.plan_cache_hits(), 0u);
}

TEST(PlanCacheTest, InvalidatedByRefreshViews) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  ASSERT_TRUE(engine.Execute(text).ok());
  ASSERT_TRUE(engine.Execute(text).ok());
  EXPECT_EQ(engine.plan_cache_hits(), 1u);
  EXPECT_EQ(engine.plan_cache_misses(), 1u);

  ASSERT_TRUE(engine.RefreshViews().ok());
  ASSERT_TRUE(engine.Execute(text).ok());
  EXPECT_EQ(engine.plan_cache_misses(), 2u);  // stale generation: miss
  EXPECT_EQ(engine.plan_cache_hits(), 1u);    // telemetry preserved
}

TEST(PlanCacheTest, InvalidatedByBaseGraphMutation) {
  Engine engine(SmallProv());
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  ASSERT_TRUE(engine.Execute(text).ok());
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  ASSERT_TRUE(AppendJob(&engine).ok());
  ASSERT_TRUE(engine.Execute(text).ok());
  EXPECT_EQ(engine.plan_cache_misses(), 2u);
  EXPECT_EQ(engine.plan_cache_hits(), 0u);
}

TEST(PlanCacheTest, RepeatedQueriesHitWithoutIntermediateChanges) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto first = engine.Execute(text);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto repeat = engine.Execute(text);
    ASSERT_TRUE(repeat.ok());
    EXPECT_EQ(repeat->view_name, first->view_name);
    EXPECT_EQ(repeat->table.num_rows(), first->table.num_rows());
  }
  EXPECT_EQ(engine.plan_cache_misses(), 1u);
  EXPECT_EQ(engine.plan_cache_hits(), 5u);
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PropertyGraph base = SmallProv();
  PlannerOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;  // deterministic eviction order
  Planner planner(options);
  ViewCatalog catalog(&base);

  const std::string q1 = datasets::AncestorsQueryText("Job", 4);
  const std::string q2 = datasets::DescendantsQueryText("Job", 4);
  const std::string q3 = "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f";

  ASSERT_TRUE(planner.PlanFor(q1, base, catalog).ok());
  ASSERT_TRUE(planner.PlanFor(q2, base, catalog).ok());
  EXPECT_EQ(planner.cache_size(), 2u);
  ASSERT_TRUE(planner.PlanFor(q3, base, catalog).ok());  // evicts q1
  EXPECT_EQ(planner.cache_size(), 2u);
  EXPECT_EQ(planner.cache_misses(), 3u);

  ASSERT_TRUE(planner.PlanFor(q2, base, catalog).ok());  // still cached
  EXPECT_EQ(planner.cache_hits(), 1u);
  ASSERT_TRUE(planner.PlanFor(q1, base, catalog).ok());  // was evicted
  EXPECT_EQ(planner.cache_misses(), 4u);
}

TEST(PlanCacheTest, RemoveViewFallsBackToRawPlan) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  const std::string text = datasets::AncestorsQueryText("Job", 4);
  auto with_view = engine.Execute(text);
  ASSERT_TRUE(with_view.ok());
  EXPECT_TRUE(with_view->used_view);

  ASSERT_TRUE(engine.RemoveView(JobConnector().Name()).ok());
  auto without_view = engine.Execute(text);
  ASSERT_TRUE(without_view.ok()) << without_view.status();
  EXPECT_FALSE(without_view->used_view);
  // Row counts agree: the view was an equivalent rewrite.
  EXPECT_EQ(without_view->table.num_rows(), with_view->table.num_rows());
}

// ---------------------------------------------------------------------------
// Batched execution
// ---------------------------------------------------------------------------

TEST(ExecuteBatchTest, MatchesSequentialExecute) {
  EngineOptions options;
  options.batch_workers = 4;
  Engine engine(SmallProv(), options);
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());

  std::vector<std::string> batch = {
      datasets::AncestorsQueryText("Job", 4),
      datasets::DescendantsQueryText("Job", 4),
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f",
      datasets::BlastRadiusQueryText(),
      datasets::AncestorsQueryText("Job", 4),  // repeat: cache hit path
      "MATCH (this is not a query",            // per-query error isolation
  };

  std::vector<Result<ExecutionResult>> batched = engine.ExecuteBatch(batch);
  ASSERT_EQ(batched.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto sequential = engine.Execute(batch[i]);
    ASSERT_EQ(batched[i].ok(), sequential.ok()) << batch[i];
    if (!sequential.ok()) continue;
    EXPECT_EQ(batched[i]->used_view, sequential->used_view);
    EXPECT_EQ(batched[i]->view_name, sequential->view_name);
    EXPECT_EQ(batched[i]->executed_query, sequential->executed_query);
    EXPECT_EQ(batched[i]->table.SortedRows(), sequential->table.SortedRows());
  }
}

TEST(ExecuteBatchTest, SingleWorkerAndEmptyBatch) {
  EngineOptions options;
  options.batch_workers = 1;
  Engine engine(SmallProv(), options);
  EXPECT_TRUE(engine.ExecuteBatch({}).empty());
  auto results = engine.ExecuteBatch({datasets::AncestorsQueryText("Job", 4)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
}

TEST(ExecuteBatchTest, PersistentPoolIsReusedAcrossBatches) {
  EngineOptions options;
  options.batch_workers = 4;
  Engine engine(SmallProv(), options);
  // Distinct shapes, so each query is its own task and the batch needs
  // multiple workers.
  std::vector<std::string> batch = {
      datasets::AncestorsQueryText("Job", 4),
      datasets::DescendantsQueryText("Job", 4),
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f",
      datasets::BlastRadiusQueryText(),
  };
  EXPECT_EQ(engine.batch_pool_size(), 0u);  // lazy: nothing started yet
  for (int round = 0; round < 5; ++round) {
    auto results = engine.ExecuteBatch(batch);
    for (const auto& result : results) ASSERT_TRUE(result.ok());
    // The caller is one of the 4 workers, so the pool holds 3 threads —
    // started by the first batch and reused (not respawned) afterwards.
    EXPECT_EQ(engine.batch_pool_size(), 3u) << "round " << round;
  }
}

TEST(ExecuteBatchTest, ShapeGroupsFuseAndMatchSolo) {
  Engine engine(SmallProv());
  // Same shape, different constants: one fused group of 3. The
  // no-WHERE query is a different shape and runs solo.
  std::vector<std::string> batch = {
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = 'job_0' "
      "RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = 'job_1' "
      "RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = 'job_2' "
      "RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f",
  };
  auto results = engine.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << batch[i] << ": " << results[i].status();
    auto solo = engine.Execute(batch[i]);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(results[i]->table.rows(), solo->table.rows()) << batch[i];
  }
  EXPECT_TRUE(results[0]->fused);
  EXPECT_TRUE(results[1]->fused);
  EXPECT_TRUE(results[2]->fused);
  EXPECT_FALSE(results[3]->fused);

  EngineTelemetry t = engine.TelemetrySnapshot();
  EXPECT_EQ(t.fused_groups, 1u);
  EXPECT_EQ(t.fused_members, 3u);
  EXPECT_GT(t.traversal_expansions, 0u);
  // The tracker saw the fused members as fused executions.
  size_t fused_hits = 0;
  for (const QueryObservation& obs : engine.workload().Snapshot().entries) {
    fused_hits += obs.fused_hits;
  }
  EXPECT_EQ(fused_hits, 3u);
}

TEST(ExecuteBatchTest, FusionRespectsGateAndMinGroupSize) {
  std::vector<std::string> batch = {
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = 'job_0' "
      "RETURN j, f",
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.name = 'job_1' "
      "RETURN j, f",
  };
  {
    EngineOptions options;
    options.executor.fusion.enabled = false;
    Engine engine(SmallProv(), options);
    auto results = engine.ExecuteBatch(batch);
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok());
      EXPECT_FALSE(result->fused);
    }
    EXPECT_EQ(engine.TelemetrySnapshot().fused_groups, 0u);
  }
  {
    // A pair is below min_group_size = 3: solo path, no fusion.
    EngineOptions options;
    options.executor.fusion.min_group_size = 3;
    Engine engine(SmallProv(), options);
    auto results = engine.ExecuteBatch(batch);
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok());
      EXPECT_FALSE(result->fused);
    }
    EXPECT_EQ(engine.TelemetrySnapshot().fused_members, 0u);
  }
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, FourThreadExecuteSmoke) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  const std::vector<std::string> queries = {
      datasets::AncestorsQueryText("Job", 4),
      datasets::DescendantsQueryText("Job", 4),
      "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f",
      datasets::BlastRadiusQueryText(),
  };
  // Reference results, computed single-threaded.
  std::vector<size_t> expected_rows;
  for (const std::string& text : queries) {
    auto r = engine.Execute(text);
    ASSERT_TRUE(r.ok()) << r.status();
    expected_rows.push_back(r->table.num_rows());
  }

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        size_t qi = (t + i) % queries.size();
        auto r = engine.Execute(queries[qi]);
        if (!r.ok() || r->table.num_rows() != expected_rows[qi]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every execution was either a hit or a miss; nothing was lost.
  EXPECT_EQ(engine.plan_cache_hits() + engine.plan_cache_misses(),
            static_cast<size_t>(kThreads * kItersPerThread) + queries.size());
}

TEST(ConcurrencyTest, ReadersInterleaveWithWriters) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  const std::string text = datasets::AncestorsQueryText("Job", 4);

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = engine.Execute(text);
        if (!r.ok()) reader_failures.fetch_add(1);
      }
    });
  }
  // Writer: append vertices and refresh views while readers hammer away.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(AppendJob(&engine).ok());
    ASSERT_TRUE(engine.RefreshViews().ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);
  // Still consistent after the dust settles.
  auto final_result = engine.Execute(text);
  ASSERT_TRUE(final_result.ok());
  EXPECT_TRUE(final_result->used_view);
}

// ---------------------------------------------------------------------------
// ApplyDelta writer path
// ---------------------------------------------------------------------------

/// Canonical (orig_src, orig_dst, paths) multiset of a connector view.
std::multiset<std::tuple<int64_t, int64_t, int64_t>> ConnectorCanon(
    const MaterializedView& view) {
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> canon;
  const PropertyGraph& g = view.graph;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const graph::EdgeRecord& rec = g.Edge(e);
    canon.insert({g.VertexProperty(rec.source, "orig_id").as_int(),
                  g.VertexProperty(rec.target, "orig_id").as_int(),
                  g.EdgeProperty(e, "paths").as_int()});
  }
  return canon;
}

/// The deterministic delta sequence the ApplyDelta tests apply: delete
/// the i-th surviving seed edge on even steps, insert a fresh
/// WRITES_TO/IS_READ_BY pairing on odd ones.
std::vector<graph::GraphDelta> MakeDeltaSequence(const PropertyGraph& base,
                                                 int count) {
  std::vector<graph::GraphDelta> deltas;
  VertexId some_job = base.VerticesOfType(base.schema().FindVertexType("Job"))
                          .front();
  std::vector<VertexId> files =
      base.VerticesOfType(base.schema().FindVertexType("File"));
  for (int i = 0; i < count; ++i) {
    graph::GraphDelta delta;
    if (i % 2 == 0) {
      delta.RemoveEdge(static_cast<graph::EdgeId>(i));
    } else {
      VertexId file = files[static_cast<size_t>(i) % files.size()];
      delta.AddEdge(some_job, file, "WRITES_TO");
      delta.AddEdge(file, some_job, "IS_READ_BY");
    }
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

TEST(ApplyDeltaTest, BatchMatchesSingletonDeltasAndScratch) {
  // The same mixed mutation set applied (a) as one batch, (b) as
  // singleton deltas, (c) by re-materializing from scratch must agree.
  PropertyGraph base_a = SmallProv();
  PropertyGraph base_b = SmallProv();
  Engine engine_a(std::move(base_a));
  Engine engine_b(std::move(base_b));
  ASSERT_TRUE(engine_a.AddMaterializedView(JobConnector()).ok());
  ASSERT_TRUE(engine_b.AddMaterializedView(JobConnector()).ok());

  std::vector<graph::GraphDelta> ops =
      MakeDeltaSequence(engine_a.base_graph(), 9);
  graph::GraphDelta batch;
  for (const graph::GraphDelta& op : ops) {
    for (const auto& ins : op.edge_inserts) batch.edge_inserts.push_back(ins);
    for (graph::EdgeId e : op.edge_removals) batch.RemoveEdge(e);
  }

  auto batched = engine_a.ApplyDelta(batch);
  ASSERT_TRUE(batched.ok()) << batched.status();
  for (const graph::GraphDelta& op : ops) {
    auto single = engine_b.ApplyDelta(op);
    ASSERT_TRUE(single.ok()) << single.status();
  }

  const CatalogEntry* view_a = engine_a.catalog().Find(JobConnector().Name());
  const CatalogEntry* view_b = engine_b.catalog().Find(JobConnector().Name());
  ASSERT_NE(view_a, nullptr);
  ASSERT_NE(view_b, nullptr);
  EXPECT_EQ(ConnectorCanon(view_a->view), ConnectorCanon(view_b->view));

  auto scratch = Materialize(engine_a.base_graph(), JobConnector());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(ConnectorCanon(view_a->view), ConnectorCanon(*scratch));
}

TEST(ApplyDeltaTest, GenerationBumpsOncePerBatch) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  graph::GraphDelta batch;
  std::vector<graph::GraphDelta> ops =
      MakeDeltaSequence(engine.base_graph(), 7);
  for (const graph::GraphDelta& op : ops) {
    for (const auto& ins : op.edge_inserts) batch.edge_inserts.push_back(ins);
    for (graph::EdgeId e : op.edge_removals) batch.RemoveEdge(e);
  }
  uint64_t before = engine.catalog().generation();
  ASSERT_TRUE(engine.ApplyDelta(batch).ok());
  EXPECT_EQ(engine.catalog().generation(), before + 1);
}

TEST(ApplyDeltaTest, RejectsInvalidDeltasWithoutMutating) {
  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  size_t edges_before = engine.base_graph().NumLiveEdges();
  uint64_t gen_before = engine.catalog().generation();

  graph::GraphDelta bad;
  bad.RemoveEdge(static_cast<graph::EdgeId>(1u << 30));  // no such edge
  EXPECT_EQ(engine.ApplyDelta(bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.base_graph().NumLiveEdges(), edges_before);

  graph::GraphDelta bad_type;
  bad_type.AddEdge(0, 0, "NO_SUCH_TYPE");
  EXPECT_EQ(engine.ApplyDelta(bad_type).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.base_graph().NumLiveEdges(), edges_before);
  // Failed deltas never advanced the catalog.
  EXPECT_EQ(engine.catalog().generation(), gen_before);
}

TEST(ConcurrencyTest, ApplyDeltaRacingReadersSeesOnlyDeltaBoundaries) {
  // Readers racing the ApplyDelta writer must observe a result that
  // matches some delta prefix — never a torn view. Row counts for every
  // prefix are precomputed on an engine without views (raw plans), then
  // readers hammer a view-rewritten engine while the writer applies the
  // same deltas.
  const std::string query =
      "MATCH (x:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(y:Job) "
      "RETURN x, y";
  constexpr int kDeltas = 14;

  std::vector<graph::GraphDelta> deltas;
  std::set<size_t> expected_rows;
  size_t final_rows = 0;
  {
    Engine reference(SmallProv());
    deltas = MakeDeltaSequence(reference.base_graph(), kDeltas);
    auto r0 = reference.Execute(query);
    ASSERT_TRUE(r0.ok()) << r0.status();
    expected_rows.insert(r0->table.num_rows());
    for (const graph::GraphDelta& delta : deltas) {
      ASSERT_TRUE(reference.ApplyDelta(delta).ok());
      auto r = reference.Execute(query);
      ASSERT_TRUE(r.ok()) << r.status();
      expected_rows.insert(r->table.num_rows());
      final_rows = r->table.num_rows();
    }
  }

  Engine engine(SmallProv());
  ASSERT_TRUE(engine.AddMaterializedView(JobConnector()).ok());
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::atomic<int> torn_results{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = engine.Execute(query);
        if (!r.ok()) {
          reader_failures.fetch_add(1);
          continue;
        }
        if (expected_rows.count(r->table.num_rows()) == 0) {
          torn_results.fetch_add(1);
        }
      }
    });
  }
  for (const graph::GraphDelta& delta : deltas) {
    auto report = engine.ApplyDelta(delta);
    ASSERT_TRUE(report.ok()) << report.status();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_EQ(torn_results.load(), 0);

  // After the dust settles the view-backed answer matches the reference
  // final state, and the rewrite is still in play.
  auto final_result = engine.Execute(query);
  ASSERT_TRUE(final_result.ok());
  EXPECT_TRUE(final_result->used_view);
  EXPECT_EQ(final_result->table.num_rows(), final_rows);
}

}  // namespace
}  // namespace kaskade::core
