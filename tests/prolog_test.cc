// Tests for the micro-Prolog inference engine: terms, parser, solver,
// builtins, and the engine features Kaskade's rule library depends on.

#include <gtest/gtest.h>

#include "prolog/knowledge_base.h"
#include "prolog/parser.h"
#include "prolog/solver.h"
#include "prolog/term.h"

namespace kaskade::prolog {
namespace {

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

TEST(TermTest, FactoriesAndAccessors) {
  TermPtr atom = Term::MakeAtom("job");
  EXPECT_TRUE(atom->is_atom());
  EXPECT_EQ(atom->name(), "job");

  TermPtr num = Term::MakeInt(42);
  EXPECT_TRUE(num->is_int());
  EXPECT_EQ(num->int_value(), 42);

  TermPtr flt = Term::MakeFloat(2.5);
  EXPECT_TRUE(flt->is_float());
  EXPECT_TRUE(flt->is_number());

  TermPtr var = Term::MakeVar(3, "X");
  EXPECT_TRUE(var->is_var());
  EXPECT_EQ(var->var_id(), 3u);

  TermPtr comp = Term::MakeCompound("edge", {atom, num});
  EXPECT_TRUE(comp->is_compound());
  EXPECT_EQ(comp->arity(), 2u);
  EXPECT_EQ(comp->args()[0]->name(), "job");
}

TEST(TermTest, ZeroArityCompoundIsAtom) {
  TermPtr t = Term::MakeCompound("foo", {});
  EXPECT_TRUE(t->is_atom());
}

TEST(TermTest, ListConstructionAndExtraction) {
  std::vector<TermPtr> items{Term::MakeInt(1), Term::MakeInt(2),
                             Term::MakeInt(3)};
  TermPtr list = Term::MakeList(items);
  EXPECT_TRUE(list->is_list_cell());
  std::vector<TermPtr> out;
  EXPECT_TRUE(Term::ListItems(list, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1]->int_value(), 2);
  EXPECT_TRUE(Term::EmptyList()->is_empty_list());
}

TEST(TermTest, ToStringRendering) {
  EXPECT_EQ(Term::MakeAtom("job")->ToString(), "job");
  EXPECT_EQ(Term::MakeAtom("Job")->ToString(), "'Job'");  // needs quotes
  EXPECT_EQ(Term::MakeAtom("WRITES_TO")->ToString(), "'WRITES_TO'");
  EXPECT_EQ(Term::MakeInt(-3)->ToString(), "-3");
  EXPECT_EQ(Term::MakeVar(0, "X")->ToString(), "X");
  EXPECT_EQ(Term::MakeVar(7)->ToString(), "_G7");
  TermPtr list = Term::MakeList({Term::MakeInt(1), Term::MakeAtom("a")});
  EXPECT_EQ(list->ToString(), "[1,a]");
  TermPtr comp =
      Term::MakeCompound("f", {Term::MakeInt(1), Term::MakeVar(0, "X")});
  EXPECT_EQ(comp->ToString(), "f(1,X)");
}

TEST(TermTest, PartialListRendering) {
  TermPtr partial = Term::MakeCompound(
      ".", {Term::MakeInt(1), Term::MakeVar(0, "T")});
  EXPECT_EQ(partial->ToString(), "[1|T]");
}

TEST(TermTest, StructuralEquality) {
  TermPtr a = Term::MakeCompound("f", {Term::MakeInt(1)});
  TermPtr b = Term::MakeCompound("f", {Term::MakeInt(1)});
  TermPtr c = Term::MakeCompound("f", {Term::MakeInt(2)});
  EXPECT_TRUE(Term::Equal(a, b));
  EXPECT_FALSE(Term::Equal(a, c));
  EXPECT_FALSE(Term::Equal(a, Term::MakeAtom("f")));
}

TEST(TermTest, StandardOrder) {
  // Var < Number < Atom < Compound.
  TermPtr var = Term::MakeVar(0);
  TermPtr num = Term::MakeInt(5);
  TermPtr atom = Term::MakeAtom("a");
  TermPtr comp = Term::MakeCompound("f", {num});
  EXPECT_LT(Term::Compare(var, num), 0);
  EXPECT_LT(Term::Compare(num, atom), 0);
  EXPECT_LT(Term::Compare(atom, comp), 0);
  EXPECT_EQ(Term::Compare(num, Term::MakeInt(5)), 0);
  EXPECT_LT(Term::Compare(Term::MakeInt(3), Term::MakeFloat(3.5)), 0);
  // Compounds: arity first, then functor, then args.
  TermPtr g1 = Term::MakeCompound("g", {num});
  TermPtr f2 = Term::MakeCompound("f", {num, num});
  EXPECT_LT(Term::Compare(g1, f2), 0);
  EXPECT_LT(Term::Compare(comp, g1), 0);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesFactsAndRules) {
  auto clauses = ParseProgram(
      "edge(a, b). edge(b, c).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n");
  ASSERT_TRUE(clauses.ok());
  ASSERT_EQ(clauses->size(), 4u);
  EXPECT_EQ((*clauses)[0].head->ToString(), "edge(a,b)");
  EXPECT_TRUE((*clauses)[0].body.empty());
  EXPECT_EQ((*clauses)[2].body.size(), 1u);
  EXPECT_EQ((*clauses)[3].body.size(), 2u);
  EXPECT_EQ((*clauses)[3].num_vars, 3u);  // X, Y, Z
}

TEST(ParserTest, VariableNumberingIsClauseLocal) {
  auto clauses = ParseProgram("p(X) :- q(X). r(Y) :- s(Y).");
  ASSERT_TRUE(clauses.ok());
  EXPECT_EQ((*clauses)[0].num_vars, 1u);
  EXPECT_EQ((*clauses)[1].num_vars, 1u);
  EXPECT_EQ((*clauses)[1].head->args()[0]->var_id(), 0u);
}

TEST(ParserTest, QuotedAtomsAndComments) {
  auto clauses = ParseProgram(
      "% line comment\n"
      "vertexType(j1, 'Job'). /* block\ncomment */ vertexType(f1, 'File').\n");
  ASSERT_TRUE(clauses.ok());
  ASSERT_EQ(clauses->size(), 2u);
  EXPECT_EQ((*clauses)[0].head->args()[1]->name(), "Job");
}

TEST(ParserTest, ArithmeticOperatorPrecedence) {
  auto q = ParseQuery("X is 1 + 2 * 3 - 4.");
  ASSERT_TRUE(q.ok());
  // 1 + (2*3) - 4 => -( +(1, *(2,3)), 4)
  EXPECT_EQ(q->goals[0]->ToString(), "is(X,-(+(1,*(2,3)),4))");
}

TEST(ParserTest, ListsWithTails) {
  auto q = ParseQuery("member(X, [a, b | T]).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->goals[0]->ToString(), "member(X,[a,b|T])");
}

TEST(ParserTest, NegationOperator) {
  auto clauses = ParseProgram("p(X) :- q(X), \\+ r(X).");
  ASSERT_TRUE(clauses.ok());
  EXPECT_EQ((*clauses)[0].body[1]->name(), "\\+");
}

TEST(ParserTest, UnderscoreVarsAreDistinct) {
  auto q = ParseQuery("p(_, _).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars, 2u);
  EXPECT_NE(q->goals[0]->args()[0]->var_id(),
            q->goals[0]->args()[1]->var_id());
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseProgram("p(a").ok());             // missing ')'
  EXPECT_FALSE(ParseProgram("p(a) :- .").ok());       // empty body
  EXPECT_FALSE(ParseProgram("'unterminated").ok());   // bad quote
  EXPECT_FALSE(ParseProgram("/* unterminated").ok()); // bad comment
  EXPECT_FALSE(ParseQuery("p(a)) .").ok());           // trailing tokens
}

TEST(ParserTest, PaperListing2ParsesVerbatim) {
  const char* listing2 = R"PL(
schemaKHopPath(X,Y,K) :-
    schemaKHopPath(X,Y,K,[]).
schemaKHopPath(X,Y,1,_) :-
    schemaEdge(X,Y,_).
schemaKHopPath(X,Y,K,Trail) :-
    schemaEdge(X,Z,_), not(member(Z,Trail)),
    schemaKHopPath(Z,Y,K1,[X|Trail]), K is K1 + 1.
)PL";
  auto clauses = ParseProgram(listing2);
  ASSERT_TRUE(clauses.ok());
  EXPECT_EQ(clauses->size(), 3u);
}

// ---------------------------------------------------------------------------
// Solver: resolution basics
// ---------------------------------------------------------------------------

class SolverTest : public ::testing::Test {
 protected:
  void Consult(const std::string& text) { ASSERT_TRUE(kb_.Consult(text).ok()); }

  std::vector<std::string> Solve(const std::string& query) {
    Solver solver(&kb_);
    std::vector<std::string> out;
    auto n = solver.Query(query, [&](const Solution& s) {
      out.push_back(s.ToString());
      return true;
    });
    EXPECT_TRUE(n.ok()) << n.status();
    return out;
  }

  bool Proves(const std::string& query) {
    Solver solver(&kb_);
    auto r = solver.Prove(query);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && r.value();
  }

  KnowledgeBase kb_;
};

TEST_F(SolverTest, FactsAndConjunction) {
  Consult("edge(a, b). edge(b, c). edge(a, c).");
  EXPECT_EQ(Solve("edge(a, X).").size(), 2u);
  EXPECT_EQ(Solve("edge(X, Y), edge(Y, Z).").size(), 1u);  // a-b-c
  EXPECT_TRUE(Proves("edge(a, b)."));
  EXPECT_FALSE(Proves("edge(c, a)."));
}

TEST_F(SolverTest, RecursiveRulesWithBacktracking) {
  Consult(
      "edge(a, b). edge(b, c). edge(c, d).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).");
  EXPECT_EQ(Solve("path(a, X).").size(), 3u);  // b, c, d
  EXPECT_TRUE(Proves("path(a, d)."));
  EXPECT_FALSE(Proves("path(d, a)."));
}

TEST_F(SolverTest, UnknownPredicatesFailSilently) {
  Consult("p(1).");
  EXPECT_FALSE(Proves("nothing_here(X)."));
}

TEST_F(SolverTest, UnificationBuiltins) {
  EXPECT_TRUE(Proves("X = f(Y), X = f(3), Y =:= 3."));
  EXPECT_TRUE(Proves("f(a, B) = f(A, b), A = a, B = b."));
  EXPECT_FALSE(Proves("f(a) = g(a)."));
  EXPECT_TRUE(Proves("a \\= b."));
  EXPECT_FALSE(Proves("X \\= Y."));  // unbound vars unify
  EXPECT_TRUE(Proves("f(X) == f(X)."));
  EXPECT_TRUE(Proves("f(X) \\== f(Y)."));
}

TEST_F(SolverTest, ArithmeticEvaluation) {
  EXPECT_TRUE(Proves("X is 2 + 3, X =:= 5."));
  EXPECT_TRUE(Proves("X is 7 // 2, X =:= 3."));
  EXPECT_TRUE(Proves("X is 7 mod 2, X =:= 1."));
  EXPECT_TRUE(Proves("X is -3, Y is abs(X), Y =:= 3."));
  EXPECT_TRUE(Proves("X is min(2, 5), X =:= 2."));
  EXPECT_TRUE(Proves("X is max(2, 5), X =:= 5."));
  EXPECT_TRUE(Proves("X is 10 / 4, X =:= 2.5."));
  EXPECT_TRUE(Proves("X is 10 / 5, X =:= 2."));
  EXPECT_TRUE(Proves("1 < 2, 2 =< 2, 3 > 2, 3 >= 3, 1 =\\= 2."));
}

TEST_F(SolverTest, ArithmeticErrorsSurface) {
  Solver solver(&kb_);
  auto r = solver.Query("X is Y + 1.", [](const Solution&) { return true; });
  EXPECT_FALSE(r.ok());
  auto r2 = solver.Query("X is 1 // 0.", [](const Solution&) { return true; });
  EXPECT_FALSE(r2.ok());
}

TEST_F(SolverTest, NegationAsFailure) {
  Consult("p(1). p(2). q(1).");
  EXPECT_EQ(Solve("p(X), not(q(X)).").size(), 1u);
  EXPECT_EQ(Solve("p(X), \\+ q(X).").size(), 1u);
  EXPECT_TRUE(Proves("not(q(7))."));
  EXPECT_FALSE(Proves("not(p(1))."));
}

TEST_F(SolverTest, BetweenGeneratesAndTests) {
  EXPECT_EQ(Solve("between(1, 5, X).").size(), 5u);
  EXPECT_TRUE(Proves("between(1, 5, 3)."));
  EXPECT_FALSE(Proves("between(1, 5, 9)."));
  EXPECT_EQ(Solve("between(3, 1, X).").size(), 0u);
}

TEST_F(SolverTest, FindallCollectsAll) {
  Consult("p(3). p(1). p(2).");
  auto sols = Solve("findall(X, p(X), L).");
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], "L=[3,1,2]");  // assertion order
  // findall of nothing yields [].
  auto empty = Solve("findall(X, p(99, X), L).");
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0], "L=[]");
}

TEST_F(SolverTest, SetofSortsAndDedups) {
  Consult("p(3). p(1). p(2). p(1).");
  auto sols = Solve("setof(X, p(X), L).");
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], "L=[1,2,3]");
  EXPECT_FALSE(Proves("setof(X, nothing(X), L)."));  // fails when empty
}

TEST_F(SolverTest, SortAndMsort) {
  auto s = Solve("sort([3, 1, 2, 1], L).");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], "L=[1,2,3]");
  auto m = Solve("msort([3, 1, 2, 1], L).");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], "L=[1,1,2,3]");
}

TEST_F(SolverTest, LengthBothModes) {
  EXPECT_TRUE(Proves("length([a, b, c], 3)."));
  EXPECT_FALSE(Proves("length([a], 3)."));
  auto sols = Solve("length(L, 2).");
  ASSERT_EQ(sols.size(), 1u);  // L = [_, _]
}

TEST_F(SolverTest, SuccBothModes) {
  EXPECT_TRUE(Proves("succ(3, 4)."));
  EXPECT_TRUE(Proves("succ(X, 4), X =:= 3."));
  EXPECT_TRUE(Proves("succ(3, Y), Y =:= 4."));
  EXPECT_FALSE(Proves("succ(X, 0)."));
}

TEST_F(SolverTest, TypeTestBuiltins) {
  EXPECT_TRUE(Proves("var(X)."));
  EXPECT_TRUE(Proves("X = 1, nonvar(X), integer(X), number(X), atomic(X)."));
  EXPECT_TRUE(Proves("atom(abc), compound(f(x)), is_list([1,2])."));
  EXPECT_FALSE(Proves("atom(1)."));
  EXPECT_FALSE(Proves("is_list([1|_])."));
}

TEST_F(SolverTest, PreludeListLibrary) {
  EXPECT_EQ(Solve("member(X, [a, b, c]).").size(), 3u);
  EXPECT_TRUE(Proves("append([1, 2], [3], [1, 2, 3])."));
  auto splits = Solve("append(A, B, [1, 2, 3]).");
  EXPECT_EQ(splits.size(), 4u);
  EXPECT_TRUE(Proves("reverse([1, 2, 3], [3, 2, 1])."));
  EXPECT_TRUE(Proves("last([1, 2, 3], 3)."));
  EXPECT_TRUE(Proves("sum_list([1, 2, 3], 6)."));
  EXPECT_TRUE(Proves("max_list([3, 1, 2], 3)."));
  EXPECT_TRUE(Proves("min_list([3, 1, 2], 1)."));
  EXPECT_TRUE(Proves("nth0(1, [a, b, c], b)."));
}

TEST_F(SolverTest, HigherOrderFoldlAndConvlist) {
  Consult("add(X, A, R) :- R is A + X.");
  EXPECT_TRUE(Proves("foldl(add, [1, 2, 3], 0, 6)."));
  Consult("half(X, R) :- 0 is X mod 2, R is X // 2.");
  auto sols = Solve("convlist(half, [1, 2, 3, 4], L).");
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], "L=[1,2]");
  EXPECT_TRUE(Proves("maplist(integer, [1, 2, 3])."));
}

TEST_F(SolverTest, CallWithExtraArgs) {
  Consult("plus3(A, B, C, R) :- R is A + B + C.");
  EXPECT_TRUE(Proves("G = plus3(1), call(G, 2, 3, 6)."));
  Solver solver(&kb_);
  auto r = solver.Query("call(X).", [](const Solution&) { return true; });
  EXPECT_FALSE(r.ok());  // unbound call target is an error
}

TEST_F(SolverTest, MaxSolutionsStopsSearch) {
  Consult("p(1). p(2). p(3).");
  SolverOptions opts;
  opts.max_solutions = 2;
  Solver solver(&kb_, opts);
  size_t count = 0;
  auto n = solver.Query("p(X).", [&](const Solution&) {
    ++count;
    return true;
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(count, 2u);
}

TEST_F(SolverTest, CallbackCanStopEarly) {
  Consult("p(1). p(2). p(3).");
  Solver solver(&kb_);
  size_t count = 0;
  auto n = solver.Query("p(X).", [&](const Solution&) {
    ++count;
    return false;
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(count, 1u);
}

TEST_F(SolverTest, DepthLimitPrunesInfiniteRecursion) {
  // Left-recursive loop: without the depth bound this never terminates.
  Consult("loop(X) :- loop(X).");
  SolverOptions opts;
  opts.max_depth = 64;
  Solver solver(&kb_, opts);
  auto r = solver.Query("loop(1).", [](const Solution&) { return true; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
  EXPECT_TRUE(solver.depth_limit_hit());
}

TEST_F(SolverTest, StepBudgetSurfacesAsError) {
  Consult("count(0). count(N) :- count(M), N is M + 1.");
  SolverOptions opts;
  opts.max_steps = 500;
  opts.max_depth = 1'000'000;
  Solver solver(&kb_, opts);
  auto r = solver.Query("count(N), N > 100000.",
                        [](const Solution&) { return true; });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SolverTest, SolutionBindingsAreResolved) {
  Consult("edge(a, b).");
  Solver solver(&kb_);
  std::map<std::string, std::string> bindings;
  auto n = solver.Query("edge(X, Y).", [&](const Solution& s) {
    for (const auto& [k, v] : s.bindings) bindings[k] = v->ToString();
    return true;
  });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(bindings["X"], "a");
  EXPECT_EQ(bindings["Y"], "b");
}

TEST_F(SolverTest, AssertFactProgrammatically) {
  ASSERT_TRUE(kb_.AssertFact("queryVertex", {Term::MakeAtom("q_j1")}).ok());
  EXPECT_TRUE(Proves("queryVertex(q_j1)."));
  // Non-ground facts rejected.
  EXPECT_FALSE(kb_.AssertFact("bad", {Term::MakeVar(0, "X")}).ok());
}

// ---------------------------------------------------------------------------
// The paper's rules running on this engine
// ---------------------------------------------------------------------------

TEST_F(SolverTest, PaperListing2FindsTypeAcyclicPaths) {
  Consult(
      "schemaEdge('Job', 'File', 'WRITES_TO').\n"
      "schemaEdge('File', 'Job', 'IS_READ_BY').\n"
      "schemaKHopPath(X,Y,K) :- schemaKHopPath(X,Y,K,[]).\n"
      "schemaKHopPath(X,Y,1,_) :- schemaEdge(X,Y,_).\n"
      "schemaKHopPath(X,Y,K,Trail) :- schemaEdge(X,Z,_), "
      "not(member(Z,Trail)), schemaKHopPath(Z,Y,K1,[X|Trail]), K is K1 + 1.");
  // Lst. 2's trail blocks type revisits: the only derivable job-to-job
  // k is 2 (see rules.h fidelity note).
  EXPECT_TRUE(Proves("schemaKHopPath('Job', 'Job', 2)."));
  EXPECT_FALSE(Proves("schemaKHopPath('Job', 'Job', 3)."));
  EXPECT_TRUE(Proves("schemaKHopPath('Job', 'File', 1)."));
  auto all = Solve("schemaKHopPath(X, Y, K).");
  EXPECT_EQ(all.size(), 4u);  // J-F:1, F-J:1, J-J:2, F-F:2
}

TEST_F(SolverTest, EgoNetworkAggregatorFromListing5) {
  // kHopNborsAggregator over explicit property facts (appendix example).
  Consult(
      "queryVertex(j2). queryEdge(j1, j2). queryEdge(j2, j3).\n"
      "queryKHopPath(X, Y, 1) :- queryEdge(X, Y).\n"
      "property(P, N, V) :- propertyFact(N, P, V).\n"
      "propertyFact(j1, bytes, 10). propertyFact(j3, bytes, 32).\n"
      "sum(X, Y, R) :- R is X + Y.\n"
      "queryVertexKHopNbors(K, X, LIST) :- queryVertex(X),\n"
      "  findall(SRC, queryKHopPath(SRC, X, K), INLIST),\n"
      "  findall(DST, queryKHopPath(X, DST, K), OUTLIST),\n"
      "  append(INLIST, OUTLIST, TMPLIST), sort(TMPLIST, LIST).\n"
      "kHopNborsAggregator(K, X, P, AGGR, RESULT) :-\n"
      "  queryVertexKHopNbors(K, X, NBORS),\n"
      "  convlist(property(P), NBORS, OUTLIST),\n"
      "  foldl(AGGR, OUTLIST, 0, RESULT).");
  auto sols = Solve("kHopNborsAggregator(1, j2, bytes, sum, R).");
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0], "R=42");
}

}  // namespace
}  // namespace kaskade::prolog
