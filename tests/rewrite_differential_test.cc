// Rewrite-vs-raw differential suite: every query the engine may answer
// through a view rewrite must return exactly the rows the raw query
// returns over the base graph — in base-graph vertex ids — across view
// kinds, hop windows, and mutation streams. This pins the fix for the
// carried-over divergence where rewritten plans returned view-local ids
// (e.g. AncestorsQueryText("Job", 4) through a k=2 Job->Job connector
// returning {1, 15} where the raw plan returned {1, 19}): results are
// now mapped through `MaterializedView::view_to_base` after execution.
//
// Hop-composition audit (the rewrite rule this suite exercises): a
// variable-length window [lr, ur] maps onto a k-hop connector as
// [ceil(lr/k), floor(ur/k)] connector hops. Soundness (every rewritten
// row is a raw row) holds unconditionally: h connector hops replay an
// (h*k)-hop base path with lr <= h*k <= ur. Completeness (every raw row
// is a rewritten row) holds when lr <= k — every feasible base length
// in the window then decomposes into whole connector hops, possibly
// skipping parity-infeasible lengths (the bipartite provenance schema
// makes odd Job->Job lengths infeasible, which is why 1..4 aligns with
// k=2). For lr > k, closed walks shorter than lr could in principle be
// assembled from connector hops that revisit vertices; the rewriter
// rejects those windows (`MisalignedWindowsRejected` in
// csr_and_cache_test.cc), so the suite below only sees windows the rule
// accepts — and asserts exact equality, not containment.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/delta.h"
#include "graph/property_graph.h"
#include "query/executor.h"
#include "table_test_util.h"

namespace kaskade {
namespace {

using core::Engine;
using core::ViewDefinition;
using core::ViewKind;
using graph::EdgeId;
using graph::GraphDelta;
using graph::PropertyGraph;
using graph::VertexId;
using testutil::CanonicalRows;

ViewDefinition Connector(ViewKind kind, const std::string& type, int k) {
  ViewDefinition def;
  def.kind = kind;
  def.k = k;
  def.source_type = type;
  def.target_type = type;
  return def;
}

/// Runs every query in `pool` through the engine (rewrite eligible) and
/// raw over the engine's base graph, asserting identical row multisets.
/// Adds how many engine executions used a view to `*used_view`.
void ComparePool(Engine* engine, const std::vector<std::string>& pool,
                 const std::string& context, size_t* used_view) {
  SCOPED_TRACE(context);
  query::QueryExecutor raw(&engine->base_graph());
  for (const std::string& text : pool) {
    auto expected = raw.ExecuteText(text);
    ASSERT_TRUE(expected.ok()) << context << " " << text << ": "
                               << expected.status();
    auto got = engine->Execute(text);
    ASSERT_TRUE(got.ok()) << context << " " << text << ": " << got.status();
    if (got->used_view) ++*used_view;
    // Sorted-row comparison: a view plan may emit rows in a different
    // order (set semantics permits that); contents must agree exactly,
    // and in *base-graph* ids.
    EXPECT_EQ(CanonicalRows(*expected), CanonicalRows(got->table))
        << context << " " << text << " diverged (used_view="
        << got->used_view << ", view=" << got->view_name << ")";
  }
}

TEST(RewriteDifferentialTest, ProvenancePoolMatchesRawAcrossMutations) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .include_auxiliary = false});
  Engine engine(std::move(base));
  ASSERT_TRUE(
      engine.AddMaterializedView(Connector(ViewKind::kKHopConnector, "Job", 2))
          .ok());
  ASSERT_TRUE(engine
                  .AddMaterializedView(
                      Connector(ViewKind::kSameVertexTypeConnector, "Job", 4))
                  .ok());

  // Template pool: aligned windows (rewrite eligible), a misaligned one
  // (must run raw and still match), and both traversal directions.
  const std::vector<std::string> pool = {
      datasets::AncestorsQueryText("Job", 2),
      datasets::AncestorsQueryText("Job", 3),
      datasets::AncestorsQueryText("Job", 4),
      datasets::DescendantsQueryText("Job", 2),
      datasets::DescendantsQueryText("Job", 4),
  };

  const graph::VertexTypeId job_t =
      engine.base_graph().schema().FindVertexType("Job");
  const graph::VertexTypeId file_t =
      engine.base_graph().schema().FindVertexType("File");
  std::vector<VertexId> jobs = engine.base_graph().VerticesOfType(job_t);
  std::vector<VertexId> files = engine.base_graph().VerticesOfType(file_t);

  size_t used_view = 0;
  constexpr int kSteps = 4;
  for (int step = 0; step < kSteps; ++step) {
    if (step > 0) {
      // Mutate through the engine (views maintained incrementally) and
      // re-compare: the rewrite must stay exact as the view drifts from
      // its original materialization.
      GraphDelta delta;
      delta.AddEdge(jobs[(step * 7) % jobs.size()],
                    files[(step * 13) % files.size()], "WRITES_TO", {});
      delta.AddEdge(files[(step * 11) % files.size()],
                    jobs[(step * 5) % jobs.size()], "IS_READ_BY", {});
      auto report = engine.ApplyDelta(std::move(delta));
      ASSERT_TRUE(report.ok()) << report.status();
    }
    ComparePool(&engine, pool, "prov step " + std::to_string(step),
                &used_view);
    if (HasFatalFailure()) return;
  }
  // The suite must exercise the rewrite path, not pass because the
  // planner always chose the raw plan.
  EXPECT_GT(used_view, 0u);
}

TEST(RewriteDifferentialTest, DblpPoolMatchesRawAcrossMutations) {
  PropertyGraph base = datasets::MakeDblpGraph(
      {.num_authors = 50, .num_articles = 100, .include_venues = false});
  Engine engine(std::move(base));
  ASSERT_TRUE(engine
                  .AddMaterializedView(Connector(
                      ViewKind::kSameVertexTypeConnector, "Author", 2))
                  .ok());

  const std::vector<std::string> pool = {
      "MATCH (a1:Author)-[r*1..2]->(a2:Author) RETURN a1, a2",
      datasets::CoauthorQueryText(),
  };

  const graph::VertexTypeId author_t =
      engine.base_graph().schema().FindVertexType("Author");
  const graph::VertexTypeId article_t =
      engine.base_graph().schema().FindVertexType("Article");
  std::vector<VertexId> authors = engine.base_graph().VerticesOfType(author_t);
  std::vector<VertexId> articles =
      engine.base_graph().VerticesOfType(article_t);

  size_t used_view = 0;
  constexpr int kSteps = 3;
  for (int step = 0; step < kSteps; ++step) {
    if (step > 0) {
      GraphDelta delta;
      delta.AddEdge(authors[(step * 3) % authors.size()],
                    articles[(step * 17) % articles.size()], "WROTE", {});
      delta.AddEdge(articles[(step * 17) % articles.size()],
                    authors[(step * 3) % authors.size()], "WRITTEN_BY", {});
      auto report = engine.ApplyDelta(std::move(delta));
      ASSERT_TRUE(report.ok()) << report.status();
    }
    ComparePool(&engine, pool, "dblp step " + std::to_string(step),
                &used_view);
    if (HasFatalFailure()) return;
  }
  EXPECT_GT(used_view, 0u);
}

// The original divergence scenario, pinned as a regression: a mutation
// appends a Job consuming existing files, and the rewritten
// AncestorsQueryText("Job", 4) must report the *base* ids of the new
// job's ancestors — not the connector view's compact ids.
TEST(RewriteDifferentialTest, AppendedJobAncestorsReportedInBaseIds) {
  PropertyGraph base = datasets::MakeProvenanceGraph(
      {.num_jobs = 40, .num_files = 80, .include_auxiliary = false});
  Engine engine(std::move(base));
  ASSERT_TRUE(
      engine.AddMaterializedView(Connector(ViewKind::kKHopConnector, "Job", 2))
          .ok());

  Status mutation = engine.MutateBaseGraph([](PropertyGraph* g) {
    VertexId new_job =
        g->AddVertex("Job", {{"CPU", graph::PropertyValue(5.0)}}).value();
    const graph::VertexTypeId file_t = g->schema().FindVertexType("File");
    size_t linked = 0;
    for (VertexId f : g->VerticesOfType(file_t)) {
      if (g->InDegree(f) > 0 && linked < 2) {
        auto edge = g->AddEdge(f, new_job, "IS_READ_BY");
        if (!edge.ok()) return edge.status();
        ++linked;
      }
    }
    return linked == 2 ? Status::OK()
                       : Status::Internal("expected two linkable files");
  });
  ASSERT_TRUE(mutation.ok()) << mutation;
  ASSERT_TRUE(engine.RefreshViews().ok());

  const std::string text = datasets::AncestorsQueryText("Job", 4);
  query::QueryExecutor raw(&engine.base_graph());
  auto expected = raw.ExecuteText(text);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto got = engine.Execute(text);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got->used_view);
  EXPECT_EQ(CanonicalRows(*expected), CanonicalRows(got->table));
  EXPECT_FALSE(expected->rows().empty());
}

}  // namespace
}  // namespace kaskade
