/// \file table_test_util.h
/// \brief Shared result-table helpers for the executor test suites.

#ifndef KASKADE_TESTS_TABLE_TEST_UTIL_H_
#define KASKADE_TESTS_TABLE_TEST_UTIL_H_

#include <cstdint>
#include <set>
#include <vector>

#include "query/table.h"

namespace kaskade::testutil {

/// Rows of an all-vertex-column table as a canonical multiset: backends
/// may emit distinct rows in different orders (set semantics permits
/// that), contents must agree exactly.
inline std::multiset<std::vector<int64_t>> CanonicalRows(
    const query::Table& t) {
  std::multiset<std::vector<int64_t>> rows;
  for (const query::Table::Row& row : t.rows()) {
    std::vector<int64_t> r;
    r.reserve(row.size());
    for (const graph::PropertyValue& v : row) r.push_back(v.as_int());
    rows.insert(std::move(r));
  }
  return rows;
}

}  // namespace kaskade::testutil

#endif  // KASKADE_TESTS_TABLE_TEST_UTIL_H_
