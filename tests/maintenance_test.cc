// Tests for incremental view maintenance: after any insertion sequence,
// the maintained view must equal a from-scratch rematerialization (up to
// vertex/edge ordering).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/maintenance.h"
#include "core/materializer.h"
#include "datasets/generators.h"
#include "graph/delta.h"
#include "graph/property_graph.h"

namespace kaskade::core {
namespace {

using graph::EdgeId;
using graph::GraphSchema;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

GraphSchema LineageSchema() {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  EXPECT_TRUE(schema.AddEdgeType("WRITES_TO", "Job", "File").ok());
  EXPECT_TRUE(schema.AddEdgeType("IS_READ_BY", "File", "Job").ok());
  return schema;
}

ViewDefinition JobConnector(int k = 2) {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = k;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

/// Canonical form of a view graph keyed by base-graph ids:
/// multiset of (orig_src, orig_dst, edge_type_name, paths) plus the set
/// of orig vertex ids — invariant under vertex/edge insertion order.
struct CanonicalView {
  std::multiset<std::tuple<int64_t, int64_t, std::string, int64_t>> edges;
  std::set<int64_t> vertices;

  bool operator==(const CanonicalView&) const = default;
};

CanonicalView Canonicalize(const PropertyGraph& view) {
  CanonicalView canon;
  for (VertexId v = 0; v < view.NumVertices(); ++v) {
    if (!view.IsVertexLive(v)) continue;
    canon.vertices.insert(view.VertexProperty(v, "orig_id").as_int());
  }
  for (EdgeId e = 0; e < view.NumEdges(); ++e) {
    if (!view.IsEdgeLive(e)) continue;
    const graph::EdgeRecord& rec = view.Edge(e);
    PropertyValue paths = view.EdgeProperty(e, "paths");
    canon.edges.insert(
        {view.VertexProperty(rec.source, "orig_id").as_int(),
         view.VertexProperty(rec.target, "orig_id").as_int(),
         view.schema().edge_type(rec.type).name,
         paths.is_int() ? paths.as_int() : 1});
  }
  return canon;
}

TEST(MaintenanceTest, SingleEdgeInsertCreatesNewConnectorEdge) {
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f, "WRITES_TO").ok());

  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->graph.NumEdges(), 0u);

  ViewMaintainer maintainer(&g, &*view);
  EdgeId e = g.AddEdge(f, j2, "IS_READ_BY").value();
  auto stats = maintainer.OnEdgeAdded(e);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_added, 1u);
  EXPECT_EQ(stats->edges_added, 1u);
  EXPECT_EQ(stats->vertices_added, 2u);  // j1 and j2 enter the view
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

TEST(MaintenanceTest, RepeatedPairIncrementsMultiplicity) {
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f1 = g.AddVertex("File").value();
  VertexId f2 = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f1, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(f1, j2, "IS_READ_BY").ok());

  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // A second 2-path between the same jobs: the connector edge's "paths"
  // property goes to 2, not a second edge.
  ASSERT_TRUE(g.AddEdge(j1, f2, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(f2, j2, "IS_READ_BY").ok());
  auto stats = maintainer.CatchUp();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_added, 1u);
  EXPECT_EQ(stats->edges_updated, 1u);
  EXPECT_EQ(stats->edges_added, 0u);
  EXPECT_EQ(view->graph.NumEdges(), 1u);
  EXPECT_EQ(view->graph.EdgeProperty(0, "paths"), PropertyValue(2));
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

TEST(MaintenanceTest, RejectsReprocessingAndUnknownEdges) {
  PropertyGraph g(LineageSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);
  EXPECT_EQ(maintainer.OnEdgeAdded(0).status().code(),
            StatusCode::kInvalidArgument);  // already reflected
  EXPECT_EQ(maintainer.OnEdgeAdded(99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MaintenanceTest, UnsupportedViewKindsReportUnimplemented) {
  PropertyGraph g(LineageSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  ViewDefinition agg;
  agg.kind = ViewKind::kVertexAggregatorSummarizer;
  agg.source_type = "Job";
  agg.group_by_property = "pipelineName";
  auto view = Materialize(g, agg);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);
  EdgeId e = g.AddEdge(j, f, "WRITES_TO").value();
  EXPECT_EQ(maintainer.OnEdgeAdded(e).status().code(),
            StatusCode::kUnimplemented);
}

/// Property sweep: grow a random lineage graph edge by edge; the
/// incrementally-maintained connector must match a from-scratch
/// materialization at every step (checked at the end and at a midpoint).
class MaintenancePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(MaintenancePropertyTest, IncrementalMatchesScratchConnector) {
  auto [seed, k] = GetParam();
  PropertyGraph g(LineageSchema());
  std::vector<VertexId> jobs;
  std::vector<VertexId> files;
  for (int i = 0; i < 12; ++i) jobs.push_back(g.AddVertex("Job").value());
  for (int i = 0; i < 12; ++i) files.push_back(g.AddVertex("File").value());

  uint64_t x = seed * 2654435761u + 17;
  auto next = [&x]() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 33;
  };

  // Seed graph with a few edges, then materialize + attach maintainer.
  for (int i = 0; i < 6; ++i) {
    if (next() % 2 == 0) {
      (void)g.AddEdge(jobs[next() % 12], files[next() % 12], "WRITES_TO");
    } else {
      (void)g.AddEdge(files[next() % 12], jobs[next() % 12], "IS_READ_BY");
    }
  }
  auto view = Materialize(g, JobConnector(k));
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // Stream 40 more edges; verify at midpoint and end.
  for (int i = 0; i < 40; ++i) {
    EdgeId e;
    if (next() % 2 == 0) {
      e = g.AddEdge(jobs[next() % 12], files[next() % 12], "WRITES_TO")
              .value();
    } else {
      e = g.AddEdge(files[next() % 12], jobs[next() % 12], "IS_READ_BY")
              .value();
    }
    auto stats = maintainer.OnEdgeAdded(e);
    ASSERT_TRUE(stats.ok()) << stats.status();
    if (i == 19 || i == 39) {
      auto scratch = Materialize(g, JobConnector(k));
      ASSERT_TRUE(scratch.ok());
      EXPECT_EQ(Canonicalize(view->graph), Canonicalize(scratch->graph))
          << "seed=" << seed << " k=" << k << " after edge " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, MaintenancePropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(2, 4)));

TEST(MaintenanceTest, BatchCatchUpAvoidsDoubleCounting) {
  // Two new edges that together form one new 2-path: the path must be
  // counted exactly once even though both insertions "see" it.
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);
  ASSERT_TRUE(g.AddEdge(j1, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(f, j2, "IS_READ_BY").ok());
  auto stats = maintainer.CatchUp();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_added, 1u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

GraphSchema SocialSchema() {
  GraphSchema schema;
  schema.AddVertexType("Person");
  EXPECT_TRUE(schema.AddEdgeType("FOLLOWS", "Person", "Person").ok());
  return schema;
}

ViewDefinition PersonConnector(int k = 2) {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = k;
  def.source_type = "Person";
  def.target_type = "Person";
  return def;
}

TEST(MaintenanceTest, SelfLoopInsertAddsNoPathsForK2) {
  PropertyGraph g(SocialSchema());
  VertexId a = g.AddVertex("Person").value();
  VertexId b = g.AddVertex("Person").value();
  VertexId c = g.AddVertex("Person").value();
  ASSERT_TRUE(g.AddEdge(a, b, "FOLLOWS").ok());
  ASSERT_TRUE(g.AddEdge(b, c, "FOLLOWS").ok());
  auto view = Materialize(g, PersonConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // No simple 2-path can traverse a self-loop, so the view must not
  // move; a from-scratch contraction agrees.
  EdgeId loop = g.AddEdge(b, b, "FOLLOWS").value();
  auto stats = maintainer.OnEdgeAdded(loop);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_added, 0u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, PersonConnector())->graph));
}

TEST(MaintenanceTest, SelfLoopRemovalAfterLaterInsertStaysExact) {
  PropertyGraph g(SocialSchema());
  VertexId a = g.AddVertex("Person").value();
  VertexId b = g.AddVertex("Person").value();
  auto view = Materialize(g, PersonConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // The serving-workload failure shape: a self-loop lands, an ordinary
  // edge follows, then the self-loop is retracted. The retraction used
  // to count the phantom walk a -> a -> b through the newer edge and
  // subtract a pair no insertion ever added ("view lost a maintained
  // connector edge").
  EdgeId loop = g.AddEdge(a, a, "FOLLOWS").value();
  ASSERT_TRUE(maintainer.OnEdgeAdded(loop).ok());
  EdgeId ab = g.AddEdge(a, b, "FOLLOWS").value();
  ASSERT_TRUE(maintainer.OnEdgeAdded(ab).ok());
  ASSERT_TRUE(g.RemoveEdge(loop).ok());
  auto stats = maintainer.OnEdgeRemoved(loop);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, PersonConnector())->graph));
}

TEST(MaintenanceTest, SelfLoopIsTheWholePathForK1) {
  // For k == 1 the self-loop *is* a contracted closed path (v -> v);
  // the guard against phantom walks must not suppress it.
  PropertyGraph g(SocialSchema());
  VertexId a = g.AddVertex("Person").value();
  auto view = Materialize(g, PersonConnector(1));
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  EdgeId loop = g.AddEdge(a, a, "FOLLOWS").value();
  auto stats = maintainer.OnEdgeAdded(loop);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_added, 1u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, PersonConnector(1))->graph));

  ASSERT_TRUE(g.RemoveEdge(loop).ok());
  ASSERT_TRUE(maintainer.OnEdgeRemoved(loop).ok());
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, PersonConnector(1))->graph));
}

TEST(MaintenanceTest, SummarizerMaintenanceCopiesKeptElements) {
  datasets::ProvOptions options;
  options.num_jobs = 30;
  options.num_files = 60;
  options.num_tasks = 20;
  PropertyGraph g = datasets::MakeProvenanceGraph(options);
  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto view = Materialize(g, filter);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // New job + file + lineage edge: copied. New task edge: dropped.
  VertexId nj = g.AddVertex("Job").value();
  VertexId nf = g.AddVertex("File").value();
  VertexId nt = g.AddVertex("Task").value();
  ASSERT_TRUE(g.AddEdge(nj, nf, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(nj, nt, "SPAWNS").ok());
  auto stats = maintainer.CatchUp();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->edges_added, 1u);
  EXPECT_EQ(stats->vertices_added, 2u);  // job + file, not the task
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, filter)->graph));
}

// ---------------------------------------------------------------------------
// Removal maintenance
// ---------------------------------------------------------------------------

TEST(MaintenanceTest, RemovingOneOfTwoPathsDecrementsMultiplicity) {
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f1 = g.AddVertex("File").value();
  VertexId f2 = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f1, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(f1, j2, "IS_READ_BY").ok());
  EdgeId doomed = g.AddEdge(j1, f2, "WRITES_TO").value();
  ASSERT_TRUE(g.AddEdge(f2, j2, "IS_READ_BY").ok());

  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->graph.NumLiveEdges(), 1u);  // one pair, multiplicity 2
  ViewMaintainer maintainer(&g, &*view);

  ASSERT_TRUE(g.RemoveEdge(doomed).ok());
  auto stats = maintainer.OnEdgeRemoved(doomed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_removed, 1u);
  EXPECT_EQ(stats->edges_updated, 1u);
  EXPECT_EQ(stats->edges_removed, 0u);
  EXPECT_EQ(view->graph.EdgeProperty(0, "paths"), PropertyValue(1));
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

TEST(MaintenanceTest, RemovingLastPathDropsEdgeAndCollectsOrphans) {
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f, "WRITES_TO").ok());
  EdgeId doomed = g.AddEdge(f, j2, "IS_READ_BY").value();

  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->graph.NumLiveEdges(), 1u);
  ASSERT_EQ(view->graph.NumLiveVertices(), 2u);
  ViewMaintainer maintainer(&g, &*view);

  ASSERT_TRUE(g.RemoveEdge(doomed).ok());
  auto stats = maintainer.OnEdgeRemoved(doomed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_removed, 1u);
  EXPECT_EQ(stats->edges_removed, 1u);
  EXPECT_EQ(stats->vertices_removed, 2u);  // both endpoints orphaned
  EXPECT_EQ(view->graph.NumLiveEdges(), 0u);
  EXPECT_EQ(view->graph.NumLiveVertices(), 0u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));

  // The same pair can come back after collection: ids differ, lineage
  // matches.
  EdgeId back = g.AddEdge(f, j2, "IS_READ_BY").value();
  auto readd = maintainer.OnEdgeAdded(back);
  ASSERT_TRUE(readd.ok()) << readd.status();
  EXPECT_EQ(readd->vertices_added, 2u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

TEST(MaintenanceTest, SummarizerRemovalIsConstantTimeLookup) {
  datasets::ProvOptions options;
  options.num_jobs = 20;
  options.num_files = 40;
  options.num_tasks = 15;
  PropertyGraph g = datasets::MakeProvenanceGraph(options);
  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto view = Materialize(g, filter);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // Remove one kept edge (WRITES_TO) and one filtered edge (SPAWNS):
  // only the former changes the view.
  EdgeId kept = graph::kInvalidId;
  EdgeId filtered = graph::kInvalidId;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (g.EdgeTypeName(e) == "WRITES_TO" && kept == graph::kInvalidId) {
      kept = e;
    }
    if (g.EdgeTypeName(e) == "SPAWNS" && filtered == graph::kInvalidId) {
      filtered = e;
    }
  }
  ASSERT_NE(kept, graph::kInvalidId);
  ASSERT_NE(filtered, graph::kInvalidId);

  ASSERT_TRUE(g.RemoveEdge(kept).ok());
  auto kept_stats = maintainer.OnEdgeRemoved(kept);
  ASSERT_TRUE(kept_stats.ok()) << kept_stats.status();
  EXPECT_EQ(kept_stats->edges_removed, 1u);
  EXPECT_EQ(kept_stats->vertices_removed, 0u);  // kept by type, not degree

  ASSERT_TRUE(g.RemoveEdge(filtered).ok());
  auto filtered_stats = maintainer.OnEdgeRemoved(filtered);
  ASSERT_TRUE(filtered_stats.ok()) << filtered_stats.status();
  EXPECT_EQ(filtered_stats->edges_removed, 0u);

  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, filter)->graph));
}

TEST(MaintenanceTest, RemovalContractIsEnforced) {
  PropertyGraph g(LineageSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId e = g.AddEdge(j, f, "WRITES_TO").value();
  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // Reporting a removal the base graph has not performed is an error.
  EXPECT_EQ(maintainer.OnEdgeRemoved(e).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(maintainer.OnEdgeRemoved(99).status().code(),
            StatusCode::kOutOfRange);

  // Removing behind the maintainer's back poisons CatchUp.
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  EXPECT_EQ(maintainer.CatchUp().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MaintenanceTest, DeferredMultiRemovalReportingIsRejected) {
  // Two removals performed before the first report: single-edge
  // accounting could no longer see the shared paths, so the maintainer
  // must refuse instead of silently under-subtracting.
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId first = g.AddEdge(j1, f, "WRITES_TO").value();
  EdgeId second = g.AddEdge(f, j2, "IS_READ_BY").value();
  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  ASSERT_TRUE(g.RemoveEdge(first).ok());
  ASSERT_TRUE(g.RemoveEdge(second).ok());
  EXPECT_EQ(maintainer.OnEdgeRemoved(first).status().code(),
            StatusCode::kFailedPrecondition);
  // The batch entry point handles it exactly.
  graph::GraphDelta delta;
  delta.RemoveEdge(first);
  delta.RemoveEdge(second);
  auto stats = maintainer.ApplyDelta(delta);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_removed, 1u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

TEST(MaintenanceTest, OutOfBandVertexRemovalPoisonsCatchUp) {
  PropertyGraph g(LineageSchema());
  VertexId j = g.AddVertex("Job").value();
  VertexId isolated = g.AddVertex("File").value();
  VertexId f = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto view = Materialize(g, filter);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  // The summarizer copied the isolated File; removing it from the base
  // without telling the maintainer would leave the view serving it.
  ASSERT_TRUE(g.RemoveVertex(isolated).ok());
  EXPECT_EQ(maintainer.CatchUp().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MaintenanceTest, BatchDeltaSubtractsSharedPathsExactlyOnce) {
  // Both edges of the only 2-path die in one batch: the path must be
  // subtracted once, not twice (and not zero times).
  PropertyGraph g(LineageSchema());
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  EdgeId first = g.AddEdge(j1, f, "WRITES_TO").value();
  EdgeId second = g.AddEdge(f, j2, "IS_READ_BY").value();

  auto view = Materialize(g, JobConnector());
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->graph.NumLiveEdges(), 1u);
  ViewMaintainer maintainer(&g, &*view);

  graph::GraphDelta delta;
  delta.RemoveEdge(first);
  delta.RemoveEdge(second);
  auto applied = graph::ApplyDeltaToGraph(&g, delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  auto stats = maintainer.ApplyDelta(delta);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_removed, 1u);
  EXPECT_EQ(stats->edges_removed, 1u);
  EXPECT_EQ(view->graph.NumLiveEdges(), 0u);
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, JobConnector())->graph));
}

TEST(MaintenanceTest, SummarizerStreamMatchesScratch) {
  datasets::ProvOptions options;
  options.num_jobs = 40;
  options.num_files = 80;
  options.num_tasks = 30;
  PropertyGraph g = datasets::MakeProvenanceGraph(options);
  ViewDefinition filter;
  filter.kind = ViewKind::kEdgeRemovalSummarizer;
  filter.type_list = {"SUBMITS"};
  auto view = Materialize(g, filter);
  ASSERT_TRUE(view.ok());
  ViewMaintainer maintainer(&g, &*view);

  VertexId j = g.AddVertex("Job").value();
  VertexId f = g.AddVertex("File").value();
  VertexId u = g.AddVertex("User").value();
  ASSERT_TRUE(g.AddEdge(j, f, "WRITES_TO").ok());
  ASSERT_TRUE(g.AddEdge(u, j, "SUBMITS").ok());  // removed type
  ASSERT_TRUE(g.AddEdge(f, j, "IS_READ_BY").ok());
  ASSERT_TRUE(maintainer.CatchUp().ok());
  EXPECT_EQ(Canonicalize(view->graph),
            Canonicalize(Materialize(g, filter)->graph));
}

}  // namespace
}  // namespace kaskade::core
