// Tests for graph algorithms: traversals, path counting, label
// propagation, weighted path aggregates, components, and contraction
// (including the paper's Fig. 3 worked example).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/contraction.h"
#include "graph/property_graph.h"

namespace kaskade::graph {
namespace {

GraphSchema LineageSchema() {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  EXPECT_TRUE(schema.AddEdgeType("w", "Job", "File").ok());
  EXPECT_TRUE(schema.AddEdgeType("r", "File", "Job").ok());
  return schema;
}

/// The input graph of Fig. 3(a): j1 -w-> f1 -r-> j2, j1 -w-> f2 -r-> j3,
/// j2 -w-> f3, j3 -w-> f4.
struct Fig3Graph {
  PropertyGraph g{LineageSchema()};
  VertexId j1, j2, j3, f1, f2, f3, f4;

  Fig3Graph() {
    j1 = g.AddVertex("Job").value();
    j2 = g.AddVertex("Job").value();
    j3 = g.AddVertex("Job").value();
    f1 = g.AddVertex("File").value();
    f2 = g.AddVertex("File").value();
    f3 = g.AddVertex("File").value();
    f4 = g.AddVertex("File").value();
    EXPECT_TRUE(g.AddEdge(j1, f1, "w").ok());
    EXPECT_TRUE(g.AddEdge(f1, j2, "r").ok());
    EXPECT_TRUE(g.AddEdge(j1, f2, "w").ok());
    EXPECT_TRUE(g.AddEdge(f2, j3, "r").ok());
    EXPECT_TRUE(g.AddEdge(j2, f3, "w").ok());
    EXPECT_TRUE(g.AddEdge(j3, f4, "w").ok());
  }
};

// ---------------------------------------------------------------------------
// BoundedBfs / CountReachable
// ---------------------------------------------------------------------------

TEST(BoundedBfsTest, ForwardHopsAreExact) {
  Fig3Graph fig;
  TraversalOptions opts;
  opts.max_hops = 1;
  auto reached = BoundedBfs(fig.g, fig.j1, opts);
  EXPECT_EQ(reached.size(), 2u);  // f1, f2

  opts.max_hops = 2;
  EXPECT_EQ(CountReachable(fig.g, fig.j1, opts), 4u);  // f1,f2,j2,j3
  opts.max_hops = 3;
  EXPECT_EQ(CountReachable(fig.g, fig.j1, opts), 6u);  // + f3, f4
}

TEST(BoundedBfsTest, BackwardTraversal) {
  Fig3Graph fig;
  TraversalOptions opts;
  opts.direction = Direction::kBackward;
  opts.max_hops = 2;
  EXPECT_EQ(CountReachable(fig.g, fig.f3, opts), 2u);  // j2, f1
  opts.max_hops = 4;
  EXPECT_EQ(CountReachable(fig.g, fig.f3, opts), 3u);  // + j1
}

TEST(BoundedBfsTest, EdgeTypeRestriction) {
  Fig3Graph fig;
  TraversalOptions opts;
  opts.max_hops = 10;
  opts.edge_types = {fig.g.schema().FindEdgeType("w")};
  // Only write edges: from j1 we reach f1, f2 and stop.
  EXPECT_EQ(CountReachable(fig.g, fig.j1, opts), 2u);
}

TEST(BoundedBfsTest, HandlesInvalidInputs) {
  Fig3Graph fig;
  TraversalOptions opts;
  opts.max_hops = 0;
  EXPECT_EQ(CountReachable(fig.g, fig.j1, opts), 0u);
  opts.max_hops = 3;
  EXPECT_EQ(CountReachable(fig.g, 9999, opts), 0u);
}

TEST(BoundedBfsTest, HopsAreNondecreasing) {
  Fig3Graph fig;
  TraversalOptions opts;
  opts.max_hops = 5;
  auto reached = BoundedBfs(fig.g, fig.j1, opts);
  for (size_t i = 1; i < reached.size(); ++i) {
    EXPECT_LE(reached[i - 1].hops, reached[i].hops);
  }
}

// ---------------------------------------------------------------------------
// Path counting
// ---------------------------------------------------------------------------

TEST(PathCountTest, Fig3TwoPaths) {
  Fig3Graph fig;
  // 2-length simple paths: j1-f1-j2, j1-f2-j3, f1-j2-f3, f2-j3-f4.
  EXPECT_EQ(CountSimpleKPaths(fig.g, 2), 4u);
  EXPECT_EQ(CountSimple2Paths(fig.g), 4u);
  EXPECT_EQ(CountKLengthWalks(fig.g, 2), 4u);  // DAG: walks == paths
}

TEST(PathCountTest, LongerPathsOnFig3) {
  Fig3Graph fig;
  // 3-length: j1-f1-j2-f3, j1-f2-j3-f4. 4-length: none... via j1 only.
  EXPECT_EQ(CountSimpleKPaths(fig.g, 3), 2u);
  EXPECT_EQ(CountSimpleKPaths(fig.g, 4), 0u);
  EXPECT_EQ(CountSimpleKPaths(fig.g, 1), fig.g.NumEdges());
}

TEST(PathCountTest, CycleWalksDivergeFromSimplePaths) {
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  VertexId a = g.AddVertexOfType(0);
  VertexId b = g.AddVertexOfType(0);
  ASSERT_TRUE(g.AddEdgeOfType(a, b, 0).ok());
  ASSERT_TRUE(g.AddEdgeOfType(b, a, 0).ok());
  // Simple 2-paths: none (a-b-a repeats a). Walks: a-b-a and b-a-b.
  EXPECT_EQ(CountSimpleKPaths(g, 2), 0u);
  EXPECT_EQ(CountKLengthWalks(g, 2), 2u);
  EXPECT_EQ(CountSimple2Paths(g), 0u);
}

TEST(PathCountTest, ClosedFormMatchesDfsOnDenserGraph) {
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  for (int i = 0; i < 8; ++i) g.AddVertexOfType(0);
  // Deterministic pseudo-random edges (with one reciprocal pair).
  uint64_t x = 12345;
  for (int i = 0; i < 20; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    VertexId s = static_cast<VertexId>((x >> 16) % 8);
    VertexId t = static_cast<VertexId>((x >> 32) % 8);
    if (s == t) continue;
    ASSERT_TRUE(g.AddEdgeOfType(s, t, 0).ok());
  }
  ASSERT_TRUE(g.AddEdgeOfType(0, 1, 0).ok());
  ASSERT_TRUE(g.AddEdgeOfType(1, 0, 0).ok());
  EXPECT_EQ(CountSimple2Paths(g), CountSimpleKPaths(g, 2));
}

TEST(PathCountTest, CapIsRespected) {
  Fig3Graph fig;
  EXPECT_EQ(CountSimpleKPaths(fig.g, 2, 3), 3u);
  EXPECT_EQ(CountKLengthWalks(fig.g, 2, 2), 2u);
}

TEST(PathCountTest, ZeroAndNegativeK) {
  Fig3Graph fig;
  EXPECT_EQ(CountSimpleKPaths(fig.g, 0), 0u);
  EXPECT_EQ(CountKLengthWalks(fig.g, 0), 0u);
}

// ---------------------------------------------------------------------------
// Label propagation / communities
// ---------------------------------------------------------------------------

PropertyGraph TwoCliques() {
  GraphSchema schema;
  schema.AddVertexType("V");
  EXPECT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  for (int i = 0; i < 8; ++i) g.AddVertexOfType(0);
  auto connect = [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      for (int j = lo; j < hi; ++j) {
        if (i != j) EXPECT_TRUE(g.AddEdgeOfType(i, j, 0).ok());
      }
    }
  };
  connect(0, 4);
  connect(4, 8);
  // One weak bridge.
  EXPECT_TRUE(g.AddEdgeOfType(3, 4, 0).ok());
  return g;
}

TEST(LabelPropagationTest, FindsTwoCliques) {
  PropertyGraph g = TwoCliques();
  CommunityAssignment result = LabelPropagation(g, 25);
  EXPECT_LE(result.num_communities, 3u);
  // Vertices within each clique share a label.
  EXPECT_EQ(result.label[0], result.label[1]);
  EXPECT_EQ(result.label[1], result.label[2]);
  EXPECT_EQ(result.label[5], result.label[6]);
  EXPECT_EQ(result.label[6], result.label[7]);
}

TEST(LabelPropagationTest, DeterministicAcrossRuns) {
  PropertyGraph g = TwoCliques();
  CommunityAssignment a = LabelPropagation(g, 25);
  CommunityAssignment b = LabelPropagation(g, 25);
  EXPECT_EQ(a.label, b.label);
}

TEST(LabelPropagationTest, ConvergesEarly) {
  PropertyGraph g = TwoCliques();
  CommunityAssignment result = LabelPropagation(g, 1000);
  EXPECT_LT(result.passes, 1000);
}

TEST(LabelPropagationTest, IsolatedVerticesKeepOwnLabel) {
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  g.AddVertexOfType(0);
  g.AddVertexOfType(0);
  CommunityAssignment result = LabelPropagation(g, 5);
  EXPECT_EQ(result.label[0], 0u);
  EXPECT_EQ(result.label[1], 1u);
  EXPECT_EQ(result.num_communities, 2u);
}

TEST(LargestCommunityTest, CountsByType) {
  Fig3Graph fig;
  CommunityAssignment communities = LabelPropagation(fig.g, 10);
  VertexTypeId job_t = fig.g.schema().FindVertexType("Job");
  std::vector<VertexId> members =
      LargestCommunity(fig.g, communities, job_t);
  EXPECT_FALSE(members.empty());
  // All members share a single label.
  for (VertexId v : members) {
    EXPECT_EQ(communities.label[v], communities.label[members[0]]);
  }
}

// ---------------------------------------------------------------------------
// WeightedPathAggregate (Q4)
// ---------------------------------------------------------------------------

TEST(WeightedPathAggregateTest, MaxTimestampAlongPaths) {
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  VertexId a = g.AddVertexOfType(0);
  VertexId b = g.AddVertexOfType(0);
  VertexId c = g.AddVertexOfType(0);
  ASSERT_TRUE(g.AddEdgeOfType(a, b, 0, {{"ts", PropertyValue(5)}}).ok());
  ASSERT_TRUE(g.AddEdgeOfType(b, c, 0, {{"ts", PropertyValue(3)}}).ok());
  auto result = WeightedPathAggregate(g, a, 4, "ts");
  ASSERT_EQ(result.size(), 2u);
  // b via edge ts=5; c via max(5, 3) = 5.
  EXPECT_EQ(result[0].vertex, b);
  EXPECT_DOUBLE_EQ(result[0].value, 5);
  EXPECT_EQ(result[1].vertex, c);
  EXPECT_DOUBLE_EQ(result[1].value, 5);
}

TEST(WeightedPathAggregateTest, HopBoundRespected) {
  Fig3Graph fig;
  auto hop1 = WeightedPathAggregate(fig.g, fig.j1, 1, "ts");
  EXPECT_EQ(hop1.size(), 2u);
  auto hop3 = WeightedPathAggregate(fig.g, fig.j1, 3, "ts");
  EXPECT_EQ(hop3.size(), 6u);
}

// ---------------------------------------------------------------------------
// WeakComponents
// ---------------------------------------------------------------------------

TEST(WeakComponentsTest, CountsComponents) {
  Fig3Graph fig;
  auto [comp, count] = WeakComponents(fig.g);
  EXPECT_EQ(count, 1u);  // everything hangs off j1
  GraphSchema schema;
  schema.AddVertexType("V");
  ASSERT_TRUE(schema.AddEdgeType("E", "V", "V").ok());
  PropertyGraph g(schema);
  g.AddVertexOfType(0);
  g.AddVertexOfType(0);
  auto [comp2, count2] = WeakComponents(g);
  EXPECT_EQ(count2, 2u);
  EXPECT_NE(comp2[0], comp2[1]);
}

// ---------------------------------------------------------------------------
// Path contraction (Fig. 3(c) and (d))
// ---------------------------------------------------------------------------

TEST(ContractionTest, Fig3JobToJobConnector) {
  Fig3Graph fig;
  VertexTypeId job_t = fig.g.schema().FindVertexType("Job");
  auto result = BuildKHopSameTypeConnector(fig.g, job_t, 2);
  ASSERT_TRUE(result.ok());
  const PropertyGraph& view = result->view;
  // Fig. 3(c) left: j1->j2 and j1->j3.
  EXPECT_EQ(view.NumVertices(), 3u);
  EXPECT_EQ(view.NumEdges(), 2u);
  EXPECT_EQ(result->contracted_paths, 2u);
  EXPECT_EQ(view.schema().num_edge_types(), 1u);
  EXPECT_EQ(view.schema().edge_type(0).name, "2_HOP_JOB_TO_JOB");
  // Lineage mapping returns base ids.
  EXPECT_EQ(result->view_to_base.size(), view.NumVertices());
  for (VertexId v = 0; v < view.NumVertices(); ++v) {
    EXPECT_EQ(view.VertexProperty(v, "orig_id"),
              PropertyValue(static_cast<int64_t>(result->view_to_base[v])));
  }
}

TEST(ContractionTest, Fig3FileToFileConnector) {
  Fig3Graph fig;
  VertexTypeId file_t = fig.g.schema().FindVertexType("File");
  auto result = BuildKHopSameTypeConnector(fig.g, file_t, 2);
  ASSERT_TRUE(result.ok());
  // Fig. 3(c) right: f1->f3 and f2->f4.
  EXPECT_EQ(result->view.NumVertices(), 4u);
  EXPECT_EQ(result->view.NumEdges(), 2u);
}

TEST(ContractionTest, DedupMergesParallelPathsWithCount) {
  // Two jobs connected by two distinct 2-hop paths (via two files).
  GraphSchema schema = LineageSchema();
  PropertyGraph g(schema);
  VertexId j1 = g.AddVertex("Job").value();
  VertexId j2 = g.AddVertex("Job").value();
  VertexId f1 = g.AddVertex("File").value();
  VertexId f2 = g.AddVertex("File").value();
  ASSERT_TRUE(g.AddEdge(j1, f1, "w").ok());
  ASSERT_TRUE(g.AddEdge(f1, j2, "r").ok());
  ASSERT_TRUE(g.AddEdge(j1, f2, "w").ok());
  ASSERT_TRUE(g.AddEdge(f2, j2, "r").ok());

  VertexTypeId job_t = schema.FindVertexType("Job");
  auto dedup = BuildKHopSameTypeConnector(g, job_t, 2);
  ASSERT_TRUE(dedup.ok());
  EXPECT_EQ(dedup->view.NumEdges(), 1u);
  EXPECT_EQ(dedup->view.EdgeProperty(0, "paths"), PropertyValue(2));
  EXPECT_EQ(dedup->contracted_paths, 2u);

  ContractionSpec spec;
  spec.k = 2;
  spec.source_type = job_t;
  spec.target_type = job_t;
  spec.deduplicate_pairs = false;
  auto multi = ContractPaths(g, spec);
  ASSERT_TRUE(multi.ok());
  // The literal §VI-A definition: one edge per contracted path.
  EXPECT_EQ(multi->view.NumEdges(), 2u);
  EXPECT_EQ(multi->view.NumEdges(), CountSimpleKPaths(g, 2));
}

TEST(ContractionTest, VariableLengthConnector) {
  Fig3Graph fig;
  ContractionSpec spec;
  spec.k = 0;
  spec.max_hops = 4;
  spec.source_type = fig.g.schema().FindVertexType("Job");
  spec.target_type = spec.source_type;
  spec.connector_edge_name = "JOB_REACHES";
  auto result = ContractPaths(fig.g, spec);
  ASSERT_TRUE(result.ok());
  // j1 reaches j2 and j3 (2 hops); no other job-job pairs.
  EXPECT_EQ(result->view.NumEdges(), 2u);
}

TEST(ContractionTest, SourceToSinkConnector) {
  Fig3Graph fig;
  ContractionSpec spec;
  spec.k = 0;
  spec.max_hops = 8;
  spec.sources_and_sinks_only = true;
  spec.connector_edge_name = "SRC_TO_SINK";
  auto result = ContractPaths(fig.g, spec);
  ASSERT_TRUE(result.ok());
  // Source: j1 (indeg 0). Sinks reachable: f3, f4.
  EXPECT_EQ(result->view.NumEdges(), 2u);
  for (EdgeId e = 0; e < result->view.NumEdges(); ++e) {
    VertexId src = result->view.Edge(e).source;
    EXPECT_EQ(result->view_to_base[src], fig.j1);
  }
}

TEST(ContractionTest, EdgeTypeRestrictedConnector) {
  Fig3Graph fig;
  ContractionSpec spec;
  spec.k = 0;
  spec.max_hops = 8;
  spec.edge_types = {fig.g.schema().FindEdgeType("w")};
  spec.connector_edge_name = "VIA_WRITES";
  auto result = ContractPaths(fig.g, spec);
  ASSERT_TRUE(result.ok());
  // Write edges never chain (Job->File only), so exactly the w-edges
  // appear as 1-hop contractions.
  EXPECT_EQ(result->view.NumEdges(), 4u);
}

TEST(ContractionTest, RejectsBadSpecs) {
  Fig3Graph fig;
  ContractionSpec spec;
  spec.k = -1;
  EXPECT_FALSE(ContractPaths(fig.g, spec).ok());
  spec.k = 0;
  spec.max_hops = 0;
  EXPECT_FALSE(ContractPaths(fig.g, spec).ok());
  EXPECT_FALSE(BuildKHopSameTypeConnector(fig.g, kInvalidTypeId, 2).ok());
  EXPECT_FALSE(BuildKHopSameTypeConnector(fig.g, 99, 2).ok());
}

TEST(ContractionTest, ConnectorEdgeCountEqualsSimplePathsWithoutDedup) {
  // Property check on a denser random-ish lineage graph.
  GraphSchema schema = LineageSchema();
  PropertyGraph g(schema);
  std::vector<VertexId> jobs, files;
  for (int i = 0; i < 10; ++i) jobs.push_back(g.AddVertex("Job").value());
  for (int i = 0; i < 10; ++i) files.push_back(g.AddVertex("File").value());
  uint64_t x = 99;
  for (int i = 0; i < 40; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    if (i % 2 == 0) {
      ASSERT_TRUE(
          g.AddEdge(jobs[(x >> 13) % 10], files[(x >> 29) % 10], "w").ok());
    } else {
      ASSERT_TRUE(
          g.AddEdge(files[(x >> 13) % 10], jobs[(x >> 29) % 10], "r").ok());
    }
  }
  ContractionSpec spec;
  spec.k = 2;
  spec.deduplicate_pairs = false;
  spec.include_closed_paths = false;  // strict simple paths = Fig. 5 count
  spec.connector_edge_name = "ANY_2";
  auto result = ContractPaths(g, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->view.NumEdges(), CountSimpleKPaths(g, 2));
}

TEST(ContractionTest, ClosedPathsProduceSelfEdges) {
  // Author writes article, article written-by author: the 2-hop
  // author-to-author contraction must include the closed path (pattern
  // matching can bind both chain endpoints to the same author).
  GraphSchema schema;
  schema.AddVertexType("Author");
  schema.AddVertexType("Article");
  ASSERT_TRUE(schema.AddEdgeType("WROTE", "Author", "Article").ok());
  ASSERT_TRUE(schema.AddEdgeType("WRITTEN_BY", "Article", "Author").ok());
  PropertyGraph g(schema);
  VertexId a1 = g.AddVertex("Author").value();
  VertexId a2 = g.AddVertex("Author").value();
  VertexId p = g.AddVertex("Article").value();
  ASSERT_TRUE(g.AddEdge(a1, p, "WROTE").ok());
  ASSERT_TRUE(g.AddEdge(a2, p, "WROTE").ok());
  ASSERT_TRUE(g.AddEdge(p, a1, "WRITTEN_BY").ok());
  ASSERT_TRUE(g.AddEdge(p, a2, "WRITTEN_BY").ok());

  VertexTypeId author_t = schema.FindVertexType("Author");
  auto with_closed = BuildKHopSameTypeConnector(g, author_t, 2);
  ASSERT_TRUE(with_closed.ok());
  // a1->a2, a2->a1, a1->a1, a2->a2.
  EXPECT_EQ(with_closed->view.NumEdges(), 4u);

  ContractionSpec spec;
  spec.k = 2;
  spec.source_type = author_t;
  spec.target_type = author_t;
  spec.include_closed_paths = false;
  spec.connector_edge_name = "COAUTH";
  auto strict = ContractPaths(g, spec);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->view.NumEdges(), 2u);  // self-loops excluded
}

}  // namespace
}  // namespace kaskade::graph
