/// \file bench_fig8_degree_dist.cc
/// \brief Reproduces Figure 8: out-degree CCDF (log-log) and best-fit
/// power-law slope per dataset.
///
/// Expected shape: prov, dblp and soc-livejournal fit a straight line on
/// the log-log CCDF (power law; r^2 close to 1); roadnet-usa has bounded
/// degrees and is clearly not power-law.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/stats.h"

namespace {

using kaskade::graph::ComputeOutDegreeDistribution;
using kaskade::graph::DegreeDistribution;
using kaskade::graph::PropertyGraph;

void Report(const char* name, const PropertyGraph& g) {
  DegreeDistribution dist = ComputeOutDegreeDistribution(g);
  std::printf("\n%s: |V|=%zu |E|=%zu\n", name, g.NumVertices(), g.NumEdges());
  std::printf("  power-law fit: slope=%.2f (CCDF exponent), r^2=%.3f%s\n",
              dist.powerlaw_slope, dist.r_squared,
              dist.r_squared > 0.8 && dist.powerlaw_slope < -0.5
                  ? "  [power-law]"
                  : "  [not power-law]");
  kaskade::bench::JsonReport::Record(name, "powerlaw_slope",
                                     dist.powerlaw_slope);
  kaskade::bench::JsonReport::Record(name, "r_squared", dist.r_squared);
  std::printf("  %10s %12s\n", "degree", "count(deg>x)");
  // Print up to 12 CCDF points, log-spaced.
  size_t printed = 0;
  size_t last_degree = 0;
  for (const auto& point : dist.ccdf) {
    if (printed > 0 && point.degree < last_degree * 2) continue;
    std::printf("  %10zu %12zu\n", point.degree, point.count);
    last_degree = std::max<size_t>(point.degree, 1);
    if (++printed >= 12) break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "fig8_degree_dist");
  std::printf(
      "Figure 8: degree-distribution CCDF (log-log) with power-law fits.\n");
  Report("prov", kaskade::bench::BenchProvRaw());
  Report("dblp", kaskade::bench::BenchDblpRaw());
  Report("roadnet-usa", kaskade::bench::BenchRoad());
  Report("soc-livejournal", kaskade::bench::BenchSocial());
  return kaskade::bench::JsonReport::Finish();
}
