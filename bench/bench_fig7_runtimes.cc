/// \file bench_fig7_runtimes.cc
/// \brief Reproduces Figure 7 (and documents Table IV): total runtimes of
/// queries Q1-Q8 over the filtered graph vs the 2-hop connector view
/// (heterogeneous datasets), and over the raw graph vs connector
/// (homogeneous datasets).
///
/// Query workload (Table IV):
///   Q1 Job blast radius (prov only)  — retrieval, subgraph
///   Q2 Ancestors (*1..4)             — retrieval, vertex set
///   Q3 Descendants (*1..4)           — retrieval, vertex set
///   Q4 Path lengths (max timestamp)  — retrieval, bag of scalars
///   Q5 Edge count                    — retrieval, scalar
///   Q6 Vertex count                  — retrieval, scalar
///   Q7 Community detection (LP x25)  — update
///   Q8 Largest community             — retrieval, subgraph
///
/// Rewrites over the 2-hop connector halve traversal hops (Q1-Q4) and
/// label-propagation passes (Q7/Q8); Q5/Q6 run unmodified (§VII-C).
/// Expected shape: every prov/dblp query at least as fast on the
/// connector, Q2/Q3 modest (<2x), path-heavy Q4/Q8 largest; on
/// homogeneous graphs the connector is larger than the raw graph, so
/// gains shrink (and some queries lose), matching the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/materializer.h"
#include "core/rewriter.h"
#include "datasets/workloads.h"
#include "graph/algorithms.h"
#include "graph/contraction.h"
#include "query/executor.h"
#include "query/parser.h"

namespace {

using kaskade::bench::TimeSeconds;
using kaskade::graph::CommunityAssignment;
using kaskade::graph::PropertyGraph;
using kaskade::graph::TraversalOptions;
using kaskade::graph::VertexId;
using kaskade::graph::VertexTypeId;

constexpr int kLpPassesRaw = 25;
constexpr int kLpPassesView = 13;

/// Dataset label for JSON records emitted by PrintRow.
std::string g_section;

void PrintRow(const char* query, double base_s, double view_s) {
  std::printf("%-4s %12.4f %12.4f %9.2fx\n", query, base_s, view_s,
              view_s > 0 ? base_s / view_s : 0.0);
  kaskade::bench::JsonReport::Record(g_section,
                                     std::string(query) + "_base_seconds",
                                     base_s);
  kaskade::bench::JsonReport::Record(g_section,
                                     std::string(query) + "_view_seconds",
                                     view_s);
}

/// Times a textual query on a graph; returns seconds (negative on error).
double TimeQuery(const PropertyGraph& g, const std::string& text,
                 size_t* rows) {
  kaskade::query::QueryExecutor executor(&g);
  double seconds = TimeSeconds([&] {
    auto result = executor.ExecuteText(text);
    if (result.ok()) {
      *rows = result->num_rows();
    } else {
      std::printf("  [query error: %s]\n", result.status().ToString().c_str());
      *rows = 0;
    }
  });
  return seconds;
}

/// Q4: for every vertex of `anchor` type (all when kInvalidTypeId, capped
/// at `max_sources`), the max-timestamp path aggregate within `hops`.
double TimeQ4(const PropertyGraph& g, VertexTypeId anchor, int hops,
              size_t max_sources) {
  std::vector<VertexId> sources;
  for (VertexId v = 0; v < g.NumVertices() && sources.size() < max_sources;
       ++v) {
    if (anchor == kaskade::graph::kInvalidTypeId || g.VertexType(v) == anchor) {
      sources.push_back(v);
    }
  }
  return TimeSeconds([&] {
    size_t total = 0;
    for (VertexId v : sources) {
      total += kaskade::graph::WeightedPathAggregate(g, v, hops, "timestamp")
                   .size();
    }
    (void)total;
  });
}

/// Q2/Q3 for homogeneous graphs: algorithmic bounded BFS over sampled
/// sources (the executor's all-pairs form is used on the typed graphs).
double TimeReachability(const PropertyGraph& g, int hops, bool backward,
                        size_t max_sources) {
  TraversalOptions options;
  options.max_hops = hops;
  options.direction = backward ? kaskade::graph::Direction::kBackward
                               : kaskade::graph::Direction::kForward;
  size_t stride = std::max<size_t>(1, g.NumVertices() / max_sources);
  return TimeSeconds([&] {
    size_t total = 0;
    for (VertexId v = 0; v < g.NumVertices(); v += stride) {
      total += kaskade::graph::CountReachable(g, v, options);
    }
    (void)total;
  });
}

struct Q78Times {
  double q7 = 0;
  double q8 = 0;
};

Q78Times TimeCommunities(const PropertyGraph& g, int passes,
                         VertexTypeId count_type) {
  Q78Times times;
  CommunityAssignment communities;
  times.q7 = TimeSeconds(
      [&] { communities = kaskade::graph::LabelPropagation(g, passes); });
  times.q8 = TimeSeconds([&] {
    auto members =
        kaskade::graph::LargestCommunity(g, communities, count_type);
    (void)members;
  });
  return times;
}

/// Runs the full workload over a heterogeneous dataset: the filtered
/// graph vs its 2-hop same-type connector.
void RunHeterogeneous(const char* name, const PropertyGraph& filtered,
                      const std::string& vertex_type, bool run_q1) {
  g_section = name;
  std::printf("\n%s (filter vs connector; connector contracts %s-to-%s)\n",
              name, vertex_type.c_str(), vertex_type.c_str());
  kaskade::core::ViewDefinition def;
  def.kind = kaskade::core::ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = vertex_type;
  def.target_type = vertex_type;

  // Materialize with Q4's timestamp aggregation.
  kaskade::graph::ContractionSpec spec;
  spec.k = 2;
  spec.source_type = filtered.schema().FindVertexType(vertex_type);
  spec.target_type = spec.source_type;
  spec.connector_edge_name = def.EdgeName();
  spec.max_property = "timestamp";
  auto contracted = kaskade::graph::ContractPaths(filtered, spec);
  if (!contracted.ok()) {
    std::printf("materialization failed: %s\n",
                contracted.status().ToString().c_str());
    return;
  }
  const PropertyGraph& view = contracted->view;
  std::printf("filter: |V|=%zu |E|=%zu   connector: |V|=%zu |E|=%zu\n",
              filtered.NumVertices(), filtered.NumEdges(), view.NumVertices(),
              view.NumEdges());
  std::printf("%-4s %12s %12s %10s\n", "qry", "filter (s)", "connector (s)",
              "speedup");

  size_t rows = 0;
  if (run_q1) {
    kaskade::query::Query raw_q1 =
        *kaskade::query::ParseQueryText(kaskade::datasets::BlastRadiusQueryText());
    auto rewritten =
        kaskade::core::RewriteQueryWithView(raw_q1, def, filtered.schema());
    double base = TimeQuery(filtered, raw_q1.ToString(), &rows);
    double over_view =
        rewritten.ok() ? TimeQuery(view, rewritten->ToString(), &rows) : -1;
    PrintRow("q1", base, over_view);
  }

  kaskade::query::Query q2 = *kaskade::query::ParseQueryText(
      kaskade::datasets::AncestorsQueryText(vertex_type, 4));
  auto q2v = kaskade::core::RewriteQueryWithView(q2, def, filtered.schema());
  PrintRow("q2", TimeQuery(filtered, q2.ToString(), &rows),
           q2v.ok() ? TimeQuery(view, q2v->ToString(), &rows) : -1);

  kaskade::query::Query q3 = *kaskade::query::ParseQueryText(
      kaskade::datasets::DescendantsQueryText(vertex_type, 4));
  auto q3v = kaskade::core::RewriteQueryWithView(q3, def, filtered.schema());
  PrintRow("q3", TimeQuery(filtered, q3.ToString(), &rows),
           q3v.ok() ? TimeQuery(view, q3v->ToString(), &rows) : -1);

  VertexTypeId anchor = filtered.schema().FindVertexType(vertex_type);
  VertexTypeId anchor_view = view.schema().FindVertexType(vertex_type);
  PrintRow("q4", TimeQ4(filtered, anchor, 4, 2000),
           TimeQ4(view, anchor_view, 2, 2000));

  PrintRow("q5", TimeSeconds([&] { (void)filtered.NumEdges(); }),
           TimeSeconds([&] { (void)view.NumEdges(); }));
  PrintRow("q6", TimeSeconds([&] { (void)filtered.NumVertices(); }),
           TimeSeconds([&] { (void)view.NumVertices(); }));

  Q78Times base_c = TimeCommunities(filtered, kLpPassesRaw, anchor);
  Q78Times view_c = TimeCommunities(view, kLpPassesView, anchor_view);
  PrintRow("q7", base_c.q7, view_c.q7);
  PrintRow("q8", base_c.q8, view_c.q8);
}

/// Runs the workload over a homogeneous dataset: raw graph vs its
/// vertex-to-vertex 2-hop connector (which may be *larger* than the raw
/// graph — the paper's point about when not to materialize).
void RunHomogeneous(const char* name, const PropertyGraph& raw,
                    size_t q2_sources) {
  g_section = name;
  std::printf("\n%s (raw vs connector; vertex-to-vertex 2-hop)\n", name);
  VertexTypeId vtype = 0;
  kaskade::graph::ContractionSpec spec;
  spec.k = 2;
  spec.source_type = vtype;
  spec.target_type = vtype;
  spec.connector_edge_name = "2_HOP_V_TO_V";
  spec.max_property = "timestamp";
  auto contracted = kaskade::graph::ContractPaths(raw, spec);
  if (!contracted.ok()) {
    std::printf("materialization failed: %s\n",
                contracted.status().ToString().c_str());
    return;
  }
  const PropertyGraph& view = contracted->view;
  std::printf("raw: |V|=%zu |E|=%zu   connector: |V|=%zu |E|=%zu\n",
              raw.NumVertices(), raw.NumEdges(), view.NumVertices(),
              view.NumEdges());
  std::printf("%-4s %12s %12s %10s\n", "qry", "raw (s)", "connector (s)",
              "speedup");

  PrintRow("q2", TimeReachability(raw, 4, true, q2_sources),
           TimeReachability(view, 2, true, q2_sources));
  PrintRow("q3", TimeReachability(raw, 4, false, q2_sources),
           TimeReachability(view, 2, false, q2_sources));
  PrintRow("q4", TimeQ4(raw, kaskade::graph::kInvalidTypeId, 4, q2_sources),
           TimeQ4(view, kaskade::graph::kInvalidTypeId, 2, q2_sources));
  PrintRow("q5", TimeSeconds([&] { (void)raw.NumEdges(); }),
           TimeSeconds([&] { (void)view.NumEdges(); }));
  PrintRow("q6", TimeSeconds([&] { (void)raw.NumVertices(); }),
           TimeSeconds([&] { (void)view.NumVertices(); }));
  Q78Times base_c =
      TimeCommunities(raw, kLpPassesRaw, kaskade::graph::kInvalidTypeId);
  Q78Times view_c =
      TimeCommunities(view, kLpPassesView, kaskade::graph::kInvalidTypeId);
  PrintRow("q7", base_c.q7, view_c.q7);
  PrintRow("q8", base_c.q8, view_c.q8);
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "fig7_runtimes");
  std::printf(
      "Figure 7: total query runtimes, Table IV workload. Heterogeneous\n"
      "datasets run filter-vs-connector; homogeneous run raw-vs-connector.\n"
      "Q2-Q4 on homogeneous graphs sample sources (documented in\n"
      "EXPERIMENTS.md); rewrites follow §VII-C (half the hops / half the\n"
      "label-propagation passes).\n");
  RunHeterogeneous("prov", kaskade::bench::BenchProvFiltered(), "Job",
                   /*run_q1=*/true);
  RunHeterogeneous("dblp", kaskade::bench::BenchDblpFiltered(), "Author",
                   /*run_q1=*/false);
  RunHomogeneous("roadnet-usa", kaskade::bench::BenchRoad(), 400);
  // Fewer sampled sources: the livejournal connector is ~45x larger than
  // the raw graph, so per-source traversals are expensive by design
  // (that asymmetry *is* the result).
  RunHomogeneous("soc-livejournal", kaskade::bench::BenchSocial(), 100);
  return kaskade::bench::JsonReport::Finish();
}
