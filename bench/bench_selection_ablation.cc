/// \file bench_selection_ablation.cc
/// \brief Ablation for §V-B: branch-and-bound knapsack vs the greedy
/// density heuristic across a space-budget sweep, on the real candidate
/// set of the prov workload.
///
/// Expected shape: branch-and-bound total value >= greedy at every
/// budget, with gaps at budgets where the density order misleads; solve
/// times stay sub-millisecond at these candidate counts (the paper
/// solves with OR-tools for the same reason: the instance is small, the
/// modeling is the contribution).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/knapsack.h"
#include "core/view_selector.h"
#include "datasets/workloads.h"
#include "query/parser.h"

namespace {

using kaskade::core::KnapsackItem;
using kaskade::core::KnapsackResult;

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "selection_ablation");
  std::printf(
      "Selection ablation (§V-B): knapsack branch-and-bound vs greedy over\n"
      "a budget sweep; candidates scored from the prov workload.\n\n");
  kaskade::graph::PropertyGraph base = kaskade::bench::BenchProvFiltered();

  // A mixed workload so several views carry value: job-centric traversals
  // (served by the job-to-job connector) and file-lineage traversals
  // (served by the file-to-file connector), with weights playing the
  // paper's query-frequency role.
  std::vector<kaskade::core::WorkloadEntry> workload;
  std::vector<std::pair<std::string, double>> queries = {
      {kaskade::datasets::BlastRadiusQueryText(), 3.0},
      {kaskade::datasets::AncestorsQueryText("Job", 4), 2.0},
      {kaskade::datasets::DescendantsQueryText("Job", 8), 1.0},
      {"MATCH (a:File)-[r*2..4]->(b:File) RETURN a, b", 2.0},
      {"MATCH (a:File)-[r*2..2]->(b:File) RETURN a, b", 1.0},
  };
  for (const auto& [text, weight] : queries) {
    auto q = kaskade::query::ParseQueryText(text);
    if (!q.ok()) return 1;
    workload.push_back(
        kaskade::core::WorkloadEntry{std::move(*q).Clone(), weight});
  }

  kaskade::core::SelectorOptions options;
  options.budget_edges = 1e12;  // unconstrained scoring pass
  kaskade::core::ViewSelector selector(&base, options);
  auto report = selector.Select(workload);
  if (!report.ok()) {
    std::printf("selection failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("scored candidates: %zu\n", report->candidates.size());
  std::vector<KnapsackItem> items;
  for (const auto& c : report->candidates) {
    items.push_back(KnapsackItem{c.value, c.estimated_size_edges});
  }

  // Print the scored items that carry value (what the knapsack sees).
  std::printf("\nviews with positive value:\n");
  for (const auto& c : report->candidates) {
    if (c.value > 0) {
      std::printf("  %-22s size=%.3g value=%.3g serves %zu queries\n",
                  c.definition.Name().c_str(), c.estimated_size_edges,
                  c.value, c.applicable_queries);
    }
  }

  std::printf("\n%14s %12s %12s %12s %10s %10s\n", "budget(edges)",
              "bnb-value", "greedy-value", "dp-value", "bnb#", "greedy#");
  for (double budget : {1e4, 5e4, 1e5, 2e5, 5e5, 1e6}) {
    KnapsackResult bnb =
        kaskade::core::SolveKnapsackBranchAndBound(items, budget);
    KnapsackResult greedy = kaskade::core::SolveKnapsackGreedy(items, budget);
    KnapsackResult dp = kaskade::core::SolveKnapsackDP(items, budget, 20000);
    std::printf("%14.3g %12.4g %12.4g %12.4g %10zu %10zu\n", budget,
                bnb.total_value, greedy.total_value, dp.total_value,
                bnb.selected.size(), greedy.selected.size());
    std::string section = "budget_" + std::to_string(budget);
    kaskade::bench::JsonReport::Record(section, "bnb_value", bnb.total_value);
    kaskade::bench::JsonReport::Record(section, "greedy_value",
                                       greedy.total_value);
    kaskade::bench::JsonReport::Record(section, "dp_value", dp.total_value);
    for (size_t index : bnb.selected) {
      std::printf("%14s   + %s\n", "",
                  report->candidates[index].definition.Name().c_str());
    }
  }

  double solve_seconds = kaskade::bench::TimeSeconds([&] {
    for (int i = 0; i < 1000; ++i) {
      auto r = kaskade::core::SolveKnapsackBranchAndBound(items, 1e6);
      (void)r;
    }
  });
  std::printf("\nbranch-and-bound solve time: %.1f us/solve\n",
              solve_seconds * 1e3);
  kaskade::bench::JsonReport::Record("solver", "bnb_us_per_solve",
                                     solve_seconds * 1e3);
  return kaskade::bench::JsonReport::Finish();
}
