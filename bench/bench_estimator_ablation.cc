/// \file bench_estimator_ablation.cc
/// \brief Ablation for §V-A: the Erdős–Rényi estimator (Eq. 1) vs
/// Kaskade's degree-percentile estimators (Eq. 2/3) vs exact counts.
///
/// The paper's claim: Eq. 1 "significantly underestimates — by several
/// orders of magnitude — the number of directed k-length paths in
/// real-world graphs", because edges are correlated (hubs). Expected
/// shape: ER underestimates on the skewed graphs (prov, dblp, social)
/// and is closest on the near-uniform road network.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/size_estimator.h"
#include "graph/algorithms.h"
#include "graph/stats.h"

namespace {

using kaskade::core::ErdosRenyiPathEstimate;
using kaskade::core::EstimateKPathCount;
using kaskade::graph::GraphStats;
using kaskade::graph::PropertyGraph;

void Report(const char* name, const PropertyGraph& g) {
  GraphStats stats = GraphStats::Compute(g);
  uint64_t actual = kaskade::graph::CountSimple2Paths(g);
  double er = ErdosRenyiPathEstimate(g.NumVertices(), g.NumEdges(), 2);
  double eq95 = EstimateKPathCount(g, stats, 2, 95);
  double eq50 = EstimateKPathCount(g, stats, 2, 50);
  std::printf("%-18s %12llu %12.3g %8.2fx %12.3g %12.3g\n", name,
              static_cast<unsigned long long>(actual), er,
              er > 0 ? static_cast<double>(actual) / er : 0.0, eq50, eq95);
  kaskade::bench::JsonReport::Record(name, "actual",
                                     static_cast<double>(actual));
  kaskade::bench::JsonReport::Record(name, "eq1_er", er);
  kaskade::bench::JsonReport::Record(name, "eq23_a50", eq50);
  kaskade::bench::JsonReport::Record(name, "eq23_a95", eq95);
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "estimator_ablation");
  std::printf(
      "Estimator ablation (§V-A): exact 2-path count vs Eq. 1 (ER) vs\n"
      "Eq. 2/3 at alpha=50/95.\n\n");
  std::printf("%-18s %12s %12s %8s %12s %12s\n", "dataset", "actual",
              "eq1(ER)", "act/ER", "eq23(a=50)", "eq23(a=95)");
  Report("prov", kaskade::bench::BenchProvRaw());
  Report("dblp", kaskade::bench::BenchDblpRaw());
  Report("roadnet-usa", kaskade::bench::BenchRoad());
  Report("soc-livejournal", kaskade::bench::BenchSocial());
  std::printf(
      "\nReading: act/ER >> 1 on skewed graphs (the §V-A claim); the\n"
      "road network's uniform degrees keep ER honest there.\n");
  return kaskade::bench::JsonReport::Finish();
}
