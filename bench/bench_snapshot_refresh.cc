/// \file bench_snapshot_refresh.cc
/// \brief Mutation-to-first-query latency: incremental CSR snapshot
/// patching vs full rebuild.
///
/// PR 2 made *logical* view maintenance O(|delta|); this bench measures
/// the *execution-layer* half of the same story. After every
/// `ApplyDelta` the catalog's topology snapshots are stale; the first
/// query then pays snapshot production. With patching
/// (`CsrGraph::PatchedFrom` through the catalog's delta trail) that cost
/// is O(|delta|); with patching disabled (the PR-3 behavior) it is a
/// full O(|V| + |E|) rebuild. We sweep delta sizes — a single edge,
/// 0.1%, 1%, and 10% of |E| — over the social bench graph at 4x the
/// usual scale, measuring per-mutation snapshot production and
/// end-to-end mutation-to-first-query latency, and record the catalog's
/// `snapshot_patches` / `snapshot_full_builds` counters so the JSON
/// proves which path produced each number (at 10% the catalog cuts the
/// delta trail at logging time — the batch exceeds the trail caps and
/// the touched-vertex heuristic in `ViewCatalog::NoteBaseDelta` — so
/// snapshot production takes the full-build path by design).
///
/// `--json[=path]` additionally writes BENCH_snapshot_refresh.json.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "graph/csr.h"
#include "graph/delta.h"
#include "graph/property_graph.h"

namespace {

using kaskade::bench::JsonReport;
using kaskade::bench::OrDie;
using kaskade::bench::PrintHeader;
using kaskade::bench::TimeSeconds;
using kaskade::core::Engine;
using kaskade::core::EngineOptions;
using kaskade::graph::EdgeId;
using kaskade::graph::GraphDelta;
using kaskade::graph::PropertyGraph;
using kaskade::graph::VertexId;

/// Social graph scaled for this bench: ~60k vertices at average degree
/// ~6 (the Zipf fan-out multiplies the nominal edges_per_vertex). Large
/// enough that a full snapshot rebuild visibly dwarfs an O(|delta|)
/// patch, sparse enough that a 1%-of-|E| delta dirties well under the
/// patch threshold's fraction of vertices (2 * |E|/100 endpoints vs
/// 0.2 * |V|), and still quick enough for the CI smoke job.
PropertyGraph RefreshBenchGraph() {
  kaskade::datasets::SocialOptions options;
  options.num_vertices = 60000;
  options.edges_per_vertex = 1;
  return kaskade::datasets::MakeSocialGraph(options);
}

/// A query with a small result set, so mutation-to-first-query latency
/// is dominated by snapshot production + matching, not by table
/// materialization.
const char* kFirstQuery =
    "MATCH (a:Person)-[:FOLLOWS]->(b:Person) "
    "WHERE a.handle = 'person_4242' RETURN a, b";

struct ModeResult {
  double snapshot_seconds = 0;      // min over iterations (noise floor)
  double snapshot_seconds_mean = 0;
  double mutation_to_first_query = 0;  // mean ApplyDelta + snapshot + query
  size_t patches = 0;                  // catalog telemetry over the run
  size_t full_builds = 0;
};

/// Runs `iterations` mutate-then-query rounds of `delta_edges` edge
/// mutations (half removals, half inserts) against a fresh engine.
/// Exits non-zero on any warm/mutate/query failure (never lets CI
/// record an all-zero "trajectory" as a green run).
ModeResult RunMode(const PropertyGraph& graph, bool patching,
                   size_t delta_edges, int iterations) {
  EngineOptions options;
  if (!patching) options.snapshot_patch.max_dirty_fraction = 0.0;
  Engine engine(PropertyGraph(graph), options);

  std::mt19937_64 rng(1234);
  std::vector<EdgeId> live;
  live.reserve(graph.NumEdges());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) live.push_back(e);
  const size_t num_people = graph.NumVertices();

  // Warm: steady-state serving has a current snapshot before the
  // mutation arrives.
  OrDie(engine.Execute(kFirstQuery).status(), "warm query");
  const size_t patches_before = engine.catalog().snapshot_patches();
  const size_t full_before = engine.catalog().snapshot_full_builds();

  ModeResult result;
  for (int it = 0; it < iterations; ++it) {
    GraphDelta delta;
    const size_t removals = delta_edges / 2;
    const size_t inserts = delta_edges - removals;
    for (size_t i = 0; i < removals && !live.empty(); ++i) {
      size_t slot = rng() % live.size();
      delta.RemoveEdge(live[slot]);
      live[slot] = live.back();
      live.pop_back();
    }
    for (size_t i = 0; i < inserts; ++i) {
      VertexId src = static_cast<VertexId>(rng() % num_people);
      VertexId dst = static_cast<VertexId>(rng() % num_people);
      if (src == dst) dst = (dst + 1) % num_people;
      delta.AddEdge(src, dst, "FOLLOWS", {});
    }

    double snapshot_seconds = 0;
    double query_seconds = 0;
    double apply_seconds = TimeSeconds([&] {
      auto report = OrDie(engine.ApplyDelta(std::move(delta)), "ApplyDelta");
      for (EdgeId e : report.new_edges) live.push_back(e);
    });
    // First snapshot acquisition after the mutation: the patched vs
    // full-rebuild cost under measurement.
    snapshot_seconds =
        TimeSeconds([&] { (void)engine.catalog().BaseSnapshot(); });
    query_seconds = TimeSeconds([&] {
      OrDie(engine.Execute(kFirstQuery).status(), "first query");
    });
    result.snapshot_seconds_mean += snapshot_seconds;
    result.snapshot_seconds = it == 0
                                  ? snapshot_seconds
                                  : std::min(result.snapshot_seconds,
                                             snapshot_seconds);
    result.mutation_to_first_query +=
        apply_seconds + snapshot_seconds + query_seconds;
  }
  result.snapshot_seconds_mean /= iterations;
  result.mutation_to_first_query /= iterations;
  result.patches = engine.catalog().snapshot_patches() - patches_before;
  result.full_builds = engine.catalog().snapshot_full_builds() - full_before;
  return result;
}

struct SharingResult {
  double bytes_per_patch = 0;       // mean CSR bytes copied per patch
  double segs_copied_per_patch = 0;
  double segs_shared_per_patch = 0;
  size_t patches = 0;
  size_t full_builds = 0;
};

/// Measures the segmented store's copy cost: per-patch bytes actually
/// rebuilt (catalog `patch_bytes_copied`) against the full CSR size.
/// `clustered` draws all delta endpoints from one segment-sized id
/// window — the locality case the segment layout is built for; uniform
/// endpoints on this graph dirty nearly every segment and are reported
/// honestly as such.
SharingResult RunSharingMode(const PropertyGraph& graph, size_t delta_edges,
                             bool clustered, int iterations) {
  Engine engine(PropertyGraph(graph), EngineOptions{});
  std::mt19937_64 rng(99);
  const size_t num_people = graph.NumVertices();
  const size_t window =
      std::min<size_t>(kaskade::graph::kCsrSegmentVertices, num_people);

  // Clustered runs only remove edges they inserted (endpoints stay in
  // the window); uniform runs may remove any pre-existing edge.
  std::vector<EdgeId> live;
  if (!clustered) {
    live.reserve(graph.NumEdges());
    for (EdgeId e = 0; e < graph.NumEdges(); ++e) live.push_back(e);
  }

  OrDie(engine.Execute(kFirstQuery).status(), "warm query");
  const uint64_t bytes_before = engine.catalog().patch_bytes_copied();
  const uint64_t copied_before = engine.catalog().patch_segments_copied();
  const uint64_t shared_before = engine.catalog().patch_segments_shared();
  const size_t patches_before = engine.catalog().snapshot_patches();
  const size_t full_before = engine.catalog().snapshot_full_builds();

  for (int it = 0; it < iterations; ++it) {
    GraphDelta delta;
    const size_t removals = live.size() > 16 ? delta_edges / 2 : 0;
    const size_t inserts = delta_edges - removals;
    for (size_t i = 0; i < removals && !live.empty(); ++i) {
      size_t slot = rng() % live.size();
      delta.RemoveEdge(live[slot]);
      live[slot] = live.back();
      live.pop_back();
    }
    const size_t span = clustered ? window : num_people;
    for (size_t i = 0; i < inserts; ++i) {
      VertexId src = static_cast<VertexId>(rng() % span);
      VertexId dst = static_cast<VertexId>(rng() % span);
      if (src == dst) dst = (dst + 1) % span;
      delta.AddEdge(src, dst, "FOLLOWS", {});
    }
    auto report = OrDie(engine.ApplyDelta(std::move(delta)), "ApplyDelta");
    for (EdgeId e : report.new_edges) live.push_back(e);
    (void)engine.catalog().BaseSnapshot();
  }

  SharingResult result;
  result.patches = engine.catalog().snapshot_patches() - patches_before;
  result.full_builds = engine.catalog().snapshot_full_builds() - full_before;
  const double n = std::max<double>(1, result.patches + result.full_builds);
  result.bytes_per_patch =
      double(engine.catalog().patch_bytes_copied() - bytes_before) / n;
  result.segs_copied_per_patch =
      double(engine.catalog().patch_segments_copied() - copied_before) / n;
  result.segs_shared_per_patch =
      double(engine.catalog().patch_segments_shared() - shared_before) / n;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport::Init(argc, argv, "snapshot_refresh");

  PropertyGraph graph = RefreshBenchGraph();
  const size_t num_edges = graph.NumLiveEdges();
  std::printf("social graph: %zu vertices, %zu edges\n", graph.NumVertices(),
              num_edges);
  JsonReport::Record("graph", "vertices", double(graph.NumVertices()));
  JsonReport::Record("graph", "edges", double(num_edges));

  struct DeltaSize {
    const char* label;
    size_t edges;
  };
  const DeltaSize kSizes[] = {
      {"delta_1_edge", 1},
      {"delta_0.1pct", num_edges / 1000},
      {"delta_1pct", num_edges / 100},
      {"delta_10pct", num_edges / 10},
  };
  constexpr int kIterations = 6;

  PrintHeader("mutation-to-first-query: patched vs full rebuild");
  std::printf("%-14s %10s %14s %14s %9s %22s\n", "delta", "|delta|",
              "patched_snap_s", "rebuild_snap_s", "speedup",
              "patched run (p/f)");
  for (const DeltaSize& size : kSizes) {
    ModeResult patched =
        RunMode(graph, /*patching=*/true, size.edges, kIterations);
    ModeResult full =
        RunMode(graph, /*patching=*/false, size.edges, kIterations);
    const double speedup = patched.snapshot_seconds > 0
                               ? full.snapshot_seconds / patched.snapshot_seconds
                               : 0;
    std::printf("%-14s %10zu %14.6f %14.6f %8.1fx %12zu / %zu\n", size.label,
                size.edges, patched.snapshot_seconds, full.snapshot_seconds,
                speedup, patched.patches, patched.full_builds);
    JsonReport::Record(size.label, "delta_edges", double(size.edges));
    JsonReport::Record(size.label, "patched_snapshot_seconds",
                       patched.snapshot_seconds);
    JsonReport::Record(size.label, "full_rebuild_snapshot_seconds",
                       full.snapshot_seconds);
    JsonReport::Record(size.label, "patched_snapshot_seconds_mean",
                       patched.snapshot_seconds_mean);
    JsonReport::Record(size.label, "full_rebuild_snapshot_seconds_mean",
                       full.snapshot_seconds_mean);
    JsonReport::Record(size.label, "snapshot_speedup", speedup);
    JsonReport::Record(size.label, "patched_mutation_to_first_query_seconds",
                       patched.mutation_to_first_query);
    JsonReport::Record(size.label, "full_mutation_to_first_query_seconds",
                       full.mutation_to_first_query);
    // Path proof: how many of the patched run's snapshot productions
    // actually took the patch path vs fell back to a full build.
    JsonReport::Record(size.label, "patched_run_snapshot_patches",
                       double(patched.patches));
    JsonReport::Record(size.label, "patched_run_snapshot_full_builds",
                       double(patched.full_builds));
    JsonReport::Record(size.label, "full_run_snapshot_full_builds",
                       double(full.full_builds));
  }
  std::printf(
      "\nnote: at 10%% the catalog cuts the delta trail at logging time\n"
      "(trail caps + touched-vertex heuristic in NoteBaseDelta), so the\n"
      "next snapshot takes the full-build path by design — the telemetry\n"
      "columns prove which path produced each row.\n");

  // ---- Segment sharing: patch bytes vs full-CSR bytes -----------------
  // PR 5's patch path rewrote the whole CSR arrays every time, so its
  // per-patch copy cost was always ~|csr| bytes. The segmented store
  // copies only dirty segments; the ratio below is the measured
  // reduction. The 1-edge and clustered 0.1% cases carry hard floors
  // (>=5x reduction, clustered <20% of |csr| bytes); the uniform 0.1%
  // case is reported honestly — random endpoints on a 60k-vertex graph
  // land in nearly every 1024-vertex segment, so sharing is minimal and
  // the win there is the patch-vs-rebuild speedup above, not bytes.
  PrintHeader("segment sharing: per-patch copy bytes");
  const auto base_csr = kaskade::graph::CsrGraph::Build(graph);
  size_t csr_bytes = 0;
  for (size_t i = 0; i < base_csr.num_segments(); ++i)
    csr_bytes += base_csr.segment(i)->ByteSize();
  std::printf("full CSR: %zu segments, %.2f MiB\n", base_csr.num_segments(),
              csr_bytes / (1024.0 * 1024.0));
  JsonReport::Record("segment_sharing", "csr_segments",
                     double(base_csr.num_segments()));
  JsonReport::Record("segment_sharing", "csr_bytes", double(csr_bytes));

  struct SharingCase {
    const char* label;
    size_t edges;
    bool clustered;
    double max_bytes_fraction;  // 0 = no assertion (honest reporting)
  };
  const SharingCase kSharing[] = {
      {"sharing_1_edge", 1, false, 0.20},
      {"sharing_0.1pct_clustered", num_edges / 1000, true, 0.20},
      {"sharing_0.1pct_uniform", num_edges / 1000, false, 0.0},
  };
  bool sharing_ok = true;
  std::printf("%-26s %12s %14s %10s %10s\n", "case", "bytes/patch",
              "of_csr_bytes", "segs_cp", "segs_sh");
  for (const SharingCase& c : kSharing) {
    SharingResult r = RunSharingMode(graph, c.edges, c.clustered, kIterations);
    const double fraction = csr_bytes > 0 ? r.bytes_per_patch / csr_bytes : 1;
    const double reduction = r.bytes_per_patch > 0
                                 ? csr_bytes / r.bytes_per_patch
                                 : 0;
    std::printf("%-26s %12.0f %13.1f%% %10.1f %10.1f\n", c.label,
                r.bytes_per_patch, fraction * 100, r.segs_copied_per_patch,
                r.segs_shared_per_patch);
    JsonReport::Record(c.label, "delta_edges", double(c.edges));
    JsonReport::Record(c.label, "bytes_copied_per_patch", r.bytes_per_patch);
    JsonReport::Record(c.label, "fraction_of_csr_bytes", fraction);
    JsonReport::Record(c.label, "copy_reduction_vs_full", reduction);
    JsonReport::Record(c.label, "segments_copied_per_patch",
                       r.segs_copied_per_patch);
    JsonReport::Record(c.label, "segments_shared_per_patch",
                       r.segs_shared_per_patch);
    JsonReport::Record(c.label, "snapshot_patches", double(r.patches));
    JsonReport::Record(c.label, "snapshot_full_builds",
                       double(r.full_builds));
    if (c.max_bytes_fraction > 0 &&
        (fraction >= c.max_bytes_fraction || reduction < 5.0)) {
      std::printf("FAIL: %s copied %.1f%% of the CSR per patch "
                  "(budget %.0f%%, reduction %.1fx < 5x)\n",
                  c.label, fraction * 100, c.max_bytes_fraction * 100,
                  reduction);
      sharing_ok = false;
    }
  }
  if (!sharing_ok) return 1;
  return JsonReport::Finish();
}
