/// \file bench_serving.cc
/// \brief Tier-1 serving benchmark: multi-phase mixed traffic through
/// the declarative workload harness (`src/workload/`).
///
/// The default spec tells the serving story end to end on the social
/// bench graph:
///
///   1. `warmup`      — closed-loop read-heavy traffic; the tracker
///                      observes the hot query set, plan cache fills.
///   2. `mixed`       — open-loop reads + `ApplyDelta` churn; snapshot
///                      patching and incremental maintenance under
///                      concurrent readers.
///   3. `write_burst` — delta-heavy traffic with out-of-band
///                      `MutateBaseGraph` appends; the worst case for
///                      a view-serving engine.
///   4. `recovery`    — read-heavy again with the engine's *periodic
///                      auto-advise trigger* armed
///                      (`auto_advise_every_n_ops` + `workload_decay`):
///                      the engine materializes views for the observed
///                      hot set by itself, mid-traffic.
///   5. `overload`    — open-loop arrivals far above single-core
///                      capacity with a tight per-op `deadline_ms` and
///                      more client threads than the engine's admission
///                      gate admits (`max_concurrent_queries`): the
///                      graceful-degradation story. Excess load is shed
///                      (`kUnavailable`) or expires (`kDeadlineExceeded`)
///                      — by design neither counts as an op failure, and
///                      the phase must finish with zero genuine errors.
///
/// Per phase, the report carries coordinated-omission-corrected latency
/// percentiles (p50/p90/p99/p999) and service-time percentiles per op
/// type, throughput, and the engine telemetry *delta* across the phase
/// (plan-cache hits, snapshot patches vs full builds, background builds,
/// auto-advise rounds) — plus the phase's op-stream digest, which is
/// equal across runs with the same seed (the reproducibility proof).
///
/// Usage: bench_serving [--smoke] [--spec=<path>] [--seed=<n>]
///                      [--shards=<k>] [--durability=<policy>] [--json[=path]]
///   --smoke       seconds-scale 2-phase spec for the CI bench-smoke job
///   --spec        run a spec file instead of the built-in one
///   --seed        override the spec seed (reproducibility experiments)
///   --shards      vertex shards for the snapshot/patch pipeline and the
///                 MATCH scatter-gather backends (default 1 = unsharded)
///   --durability  none|batch|every_write: run the engine durable (WAL in
///                 a throwaway dir, given fsync policy) and report the
///                 write-path overhead in the JSON durability section
///
/// Exits non-zero on any phase error, op failure, or empty histogram.

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "durability/wal.h"
#include "workload/generator.h"
#include "workload/orchestrator.h"
#include "workload/spec.h"

namespace {

using kaskade::bench::Die;
using kaskade::bench::JsonReport;
using kaskade::bench::OrDie;
using kaskade::bench::PrintHeader;
using kaskade::core::Engine;
using kaskade::core::EngineOptions;
using kaskade::core::EngineTelemetry;
using kaskade::workload::GeneratorProfile;
using kaskade::workload::kNumOpKinds;
using kaskade::workload::OpKind;
using kaskade::workload::OpKindName;
using kaskade::workload::OpMetrics;
using kaskade::workload::ParseWorkloadSpec;
using kaskade::workload::PhaseResult;
using kaskade::workload::RunResult;
using kaskade::workload::WorkloadRunner;
using kaskade::workload::WorkloadSpec;

/// The built-in 4-phase serving spec (see file comment). Sized for a
/// single-core container (a few minutes of wall clock); the mixed
/// phase's open-loop target sits slightly above what one core sustains
/// (~47 ops/s), so its corrected percentiles visibly exceed the service
/// percentiles — the coordinated-omission story — without degenerating
/// into a pure backlog measurement.
const char* kDefaultSpec = R"(
workload serving_mixed
seed 42
dataset social
phase warmup
  threads 4
  rate 0
  ops_per_thread 1000
  mix execute=90 execute_batch=10
end
phase mixed
  threads 4
  rate 60
  ops_per_thread 800
  mix execute=70 execute_batch=10 apply_delta=20
  batch_size 8
  delta_edges 16
end
phase write_burst
  threads 4
  rate 0
  ops_per_thread 400
  mix execute=30 apply_delta=55 mutate_base=15
  delta_edges 16
end
phase recovery
  threads 4
  rate 0
  ops_per_thread 1000
  mix execute=95 execute_batch=5
end
phase overload
  threads 8
  rate 500
  ops_per_thread 150
  mix execute=100
  deadline_ms 100
end
)";

/// CI smoke spec: same shape, seconds of wall clock.
const char* kSmokeSpec = R"(
workload serving_smoke
seed 7
dataset social
phase smoke_read
  threads 2
  rate 0
  ops_per_thread 150
  mix execute=90 execute_batch=10
end
phase smoke_batch
  threads 2
  rate 0
  ops_per_thread 60
  mix execute=10 execute_batch=90
  batch_size 16
end
phase smoke_mixed
  threads 2
  rate 200
  ops_per_thread 100
  mix execute=70 apply_delta=25 mutate_base=5
  delta_edges 8
end
phase smoke_overload
  threads 6
  rate 400
  ops_per_thread 40
  mix execute=100
  deadline_ms 50
end
)";

/// The recovery phase relies on the engine's own trigger: one advise
/// round every N recorded executions, with epoch decay so the advice
/// tracks the current phase's traffic, not the whole run's history.
EngineOptions ServingEngineOptions(size_t shards) {
  EngineOptions options;
  options.shards = shards;
  options.auto_advise_every_n_ops = 2000;
  options.workload_decay = 0.5;
  // Admission gate: every non-overload phase runs <= 4 client threads,
  // so the gate only engages in the overload phases (8 resp. 6 threads)
  // — there the short wait budget makes contention shed visibly instead
  // of queueing invisibly.
  options.max_concurrent_queries = 4;
  options.admission_wait_budget = std::chrono::microseconds(500);
  return options;
}

/// Serving-scale social graph: smaller than `BenchSocial` because the
/// workload mixes point lookups with full variable-length scans — on
/// the single-core container a scan must cost hundreds of milliseconds,
/// not seconds, for a mixed run to finish in tens of seconds.
kaskade::graph::PropertyGraph ServingSocialGraph() {
  kaskade::datasets::SocialOptions options;
  options.num_vertices = 1200;
  options.edges_per_vertex = 3;
  return kaskade::datasets::MakeSocialGraph(options);
}

/// Serving-scale provenance graph (`--spec` with `dataset prov`).
kaskade::graph::PropertyGraph ServingProvGraph() {
  kaskade::datasets::ProvOptions options;
  options.num_jobs = 300;
  options.num_files = 750;
  options.include_auxiliary = false;
  return kaskade::datasets::MakeProvenanceGraph(options);
}

void PrintPhaseTable(const PhaseResult& phase) {
  std::printf("phase %-12s  %7.2fs wall  %8.0f ops/s  digest %016" PRIx64
              "\n",
              phase.name.c_str(), phase.wall_seconds,
              phase.throughput_ops_per_sec(), phase.op_digest);
  if (phase.refresh_seconds > 0) {
    std::printf("  view refresh after out-of-band mutations: %.3fs\n",
                phase.refresh_seconds);
  }
  std::printf("  %-14s %9s %7s %7s %7s %9s %9s %9s %9s\n", "op", "count",
              "fail", "shed", "t_out", "p50_us", "p90_us", "p99_us",
              "p999_us");
  for (size_t k = 0; k < kNumOpKinds; ++k) {
    const OpMetrics& op = phase.metrics.ops[k];
    if (op.attempted == 0) continue;
    std::printf("  %-14s %9" PRIu64 " %7" PRIu64 " %7" PRIu64 " %7" PRIu64
                " %9.0f %9.0f %9.0f %9.0f\n",
                OpKindName(OpKind(k)), op.attempted, op.failed, op.shed,
                op.timed_out, op.latency.Percentile(0.50),
                op.latency.Percentile(0.90), op.latency.Percentile(0.99),
                op.latency.Percentile(0.999));
  }
  const EngineTelemetry& a = phase.before;
  const EngineTelemetry& b = phase.after;
  std::printf("  engine: +%zu cache hits, +%zu misses, +%zu snap patches, "
              "+%zu snap rebuilds, +%zu builds, +%zu auto-advises, "
              "%zu views ready\n",
              b.plan_cache_hits - a.plan_cache_hits,
              b.plan_cache_misses - a.plan_cache_misses,
              b.snapshot_patches - a.snapshot_patches,
              b.snapshot_full_builds - a.snapshot_full_builds,
              b.builds_completed - a.builds_completed,
              b.auto_advises - a.auto_advises, b.views_ready);
  if (b.fused_groups > a.fused_groups) {
    std::printf("  fusion: +%zu groups, +%zu members fused\n",
                b.fused_groups - a.fused_groups,
                b.fused_members - a.fused_members);
  }
  if (b.queries_shed > a.queries_shed ||
      b.queries_timed_out > a.queries_timed_out ||
      b.quarantine_events > a.quarantine_events) {
    std::printf("  overload: +%zu shed, +%zu timed out, +%" PRIu64
                " deadline checks, +%zu quarantine events (%zu views "
                "quarantined)\n",
                b.queries_shed - a.queries_shed,
                b.queries_timed_out - a.queries_timed_out,
                uint64_t(b.deadline_checks - a.deadline_checks),
                b.quarantine_events - a.quarantine_events,
                b.views_quarantined);
  }
}

void RecordPhase(const PhaseResult& phase) {
  const std::string& s = phase.name;
  JsonReport::Record(s, "wall_seconds", phase.wall_seconds);
  JsonReport::Record(s, "refresh_seconds", phase.refresh_seconds);
  JsonReport::Record(s, "throughput_ops_per_sec",
                     phase.throughput_ops_per_sec());
  JsonReport::Record(s, "op_digest", double(phase.op_digest));
  JsonReport::Record(s, "ops_attempted",
                     double(phase.metrics.total_attempted()));
  JsonReport::Record(s, "ops_failed", double(phase.metrics.total_failed()));
  JsonReport::Record(s, "ops_shed", double(phase.metrics.total_shed()));
  JsonReport::Record(s, "ops_timed_out",
                     double(phase.metrics.total_timed_out()));
  for (size_t k = 0; k < kNumOpKinds; ++k) {
    const OpMetrics& op = phase.metrics.ops[k];
    if (op.attempted == 0) continue;
    const std::string prefix = OpKindName(OpKind(k));
    JsonReport::Record(s, prefix + "_count", double(op.attempted));
    JsonReport::Record(s, prefix + "_failed", double(op.failed));
    JsonReport::Record(s, prefix + "_p50_us", op.latency.Percentile(0.50));
    JsonReport::Record(s, prefix + "_p90_us", op.latency.Percentile(0.90));
    JsonReport::Record(s, prefix + "_p99_us", op.latency.Percentile(0.99));
    JsonReport::Record(s, prefix + "_p999_us", op.latency.Percentile(0.999));
    JsonReport::Record(s, prefix + "_mean_us", op.latency.mean_us());
    JsonReport::Record(s, prefix + "_service_p99_us",
                       op.service.Percentile(0.99));
  }
  const EngineTelemetry& a = phase.before;
  const EngineTelemetry& b = phase.after;
  JsonReport::Record(s, "plan_cache_hits_delta",
                     double(b.plan_cache_hits - a.plan_cache_hits));
  JsonReport::Record(s, "plan_cache_misses_delta",
                     double(b.plan_cache_misses - a.plan_cache_misses));
  JsonReport::Record(s, "snapshot_patches_delta",
                     double(b.snapshot_patches - a.snapshot_patches));
  JsonReport::Record(s, "snapshot_full_builds_delta",
                     double(b.snapshot_full_builds - a.snapshot_full_builds));
  JsonReport::Record(s, "builds_completed_delta",
                     double(b.builds_completed - a.builds_completed));
  JsonReport::Record(s, "builds_replayed_delta",
                     double(b.builds_replayed - a.builds_replayed));
  JsonReport::Record(s, "auto_advises_delta",
                     double(b.auto_advises - a.auto_advises));
  JsonReport::Record(s, "auto_advise_errors_delta",
                     double(b.auto_advise_errors - a.auto_advise_errors));
  JsonReport::Record(s, "views_ready_end", double(b.views_ready));
  JsonReport::Record(s, "queries_recorded_delta",
                     double(b.queries_recorded - a.queries_recorded));
  JsonReport::Record(s, "fused_groups_delta",
                     double(b.fused_groups - a.fused_groups));
  JsonReport::Record(s, "fused_members_delta",
                     double(b.fused_members - a.fused_members));
  JsonReport::Record(s, "traversal_expansions_delta",
                     double(b.traversal_expansions - a.traversal_expansions));
  JsonReport::Record(s, "queries_shed_delta",
                     double(b.queries_shed - a.queries_shed));
  JsonReport::Record(s, "queries_timed_out_delta",
                     double(b.queries_timed_out - a.queries_timed_out));
  JsonReport::Record(s, "deadline_checks_delta",
                     double(b.deadline_checks - a.deadline_checks));
  JsonReport::Record(s, "quarantine_events_delta",
                     double(b.quarantine_events - a.quarantine_events));
  JsonReport::Record(s, "views_quarantined_end",
                     double(b.views_quarantined));
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) Die("spec file", "cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport::Init(argc, argv, "serving");

  bool smoke = false;
  std::string spec_path;
  uint64_t seed_override = 0;
  bool seed_set = false;
  size_t shards = 1;
  std::string durability_policy;  // empty or "off" = volatile engine
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--spec=", 7) == 0) {
      spec_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed_override = std::strtoull(argv[i] + 7, nullptr, 10);
      seed_set = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = std::strtoull(argv[i] + 9, nullptr, 10);
      if (shards == 0) shards = 1;
    } else if (std::strncmp(argv[i], "--durability=", 13) == 0) {
      durability_policy = argv[i] + 13;
    }
  }

  const std::string spec_text = !spec_path.empty() ? ReadFileOrDie(spec_path)
                                : smoke            ? kSmokeSpec
                                                   : kDefaultSpec;
  WorkloadSpec spec = OrDie(ParseWorkloadSpec(spec_text), "parse spec");
  if (seed_set) spec.seed = seed_override;

  kaskade::graph::PropertyGraph graph =
      spec.dataset == "prov" ? ServingProvGraph() : ServingSocialGraph();
  std::printf("workload %s: dataset %s (%zu vertices, %zu edges), seed "
              "%" PRIu64 ", %zu phases\n",
              spec.name.c_str(), spec.dataset.c_str(), graph.NumVertices(),
              graph.NumLiveEdges(), spec.seed, spec.phases.size());
  JsonReport::Record("meta", "seed", double(spec.seed));
  JsonReport::Record("meta", "phases", double(spec.phases.size()));

  JsonReport::Record("meta", "shards", double(shards));
  EngineOptions engine_options = ServingEngineOptions(shards);
  std::filesystem::path wal_dir;
  if (!durability_policy.empty() && durability_policy != "off") {
    auto policy = kaskade::durability::ParseFsyncPolicy(durability_policy);
    if (!policy.ok()) Die("--durability", policy.status().ToString());
    wal_dir = std::filesystem::temp_directory_path() /
              ("bench_serving_wal_" + std::to_string(::getpid()));
    std::filesystem::remove_all(wal_dir);
    engine_options.durability.dir = wal_dir.string();
    engine_options.durability.fsync_policy = policy.value();
    std::printf("durability on: policy %s, WAL dir %s\n",
                kaskade::durability::FsyncPolicyName(policy.value()),
                wal_dir.string().c_str());
  }
  Engine engine(std::move(graph), engine_options);
  if (engine_options.durability.enabled() &&
      !engine.durability_error().ok()) {
    Die("durability init", engine.durability_error().ToString());
  }
  GeneratorProfile profile = OrDie(
      GeneratorProfile::ForDataset(spec.dataset, engine.base_graph()),
      "generator profile");
  WorkloadRunner runner(&engine, std::move(profile));

  PrintHeader("serving run");
  RunResult run = OrDie(runner.Run(spec), "workload run");

  bool failed = false;
  for (const PhaseResult& phase : run.phases) {
    PrintPhaseTable(phase);
    RecordPhase(phase);
    if (!phase.first_error.ok()) {
      std::fprintf(stderr, "phase %s: first error: %s\n", phase.name.c_str(),
                   phase.first_error.ToString().c_str());
      failed = true;
    }
    if (phase.metrics.total_attempted() == 0) {
      std::fprintf(stderr, "phase %s: empty histogram (no ops ran)\n",
                   phase.name.c_str());
      failed = true;
    }
  }
  // The smoke spec's batch-heavy phase must exercise cross-query
  // fusion: generated batches repeat query templates with different
  // constants, so shape groups are guaranteed at batch_size 16. A zero
  // here means the fusion path silently stopped engaging.
  if (smoke) {
    size_t fused_groups = 0;
    for (const PhaseResult& phase : run.phases) {
      fused_groups += phase.after.fused_groups - phase.before.fused_groups;
    }
    if (fused_groups == 0) {
      std::fprintf(stderr, "smoke run fused no batch groups\n");
      failed = true;
    }
    // The overload phase runs more client threads than the admission
    // gate admits at an arrival rate far past capacity, so degradation
    // MUST engage: zero shed + zero timeouts means the gate or the
    // deadline path silently stopped working. Genuine errors are still
    // forbidden — degradation is shed/timeout, never a failure.
    if (run.total_shed() + run.total_timed_out() == 0) {
      std::fprintf(stderr,
                   "smoke overload phase neither shed nor timed out any op — "
                   "the admission gate / deadline path did not engage\n");
      failed = true;
    }
  }

  std::printf("\ntotal: %" PRIu64 " ops, %" PRIu64 " failed, %" PRIu64
              " shed, %" PRIu64 " timed out\n",
              run.total_attempted(), run.total_failed(), run.total_shed(),
              run.total_timed_out());
  JsonReport::Record("total", "ops_attempted", double(run.total_attempted()));
  JsonReport::Record("total", "ops_failed", double(run.total_failed()));
  JsonReport::Record("total", "ops_shed", double(run.total_shed()));
  JsonReport::Record("total", "ops_timed_out", double(run.total_timed_out()));
  if (shards > 1) {
    // Sharded-run proof: per-shard snapshot writers actually engaged,
    // and how much of the patch work the segment store shared vs copied.
    const auto telemetry = engine.TelemetrySnapshot();
    uint64_t writer_acqs = 0;
    for (uint64_t a : telemetry.shard_writer_acquisitions) writer_acqs += a;
    std::printf("shards: %zu, writer acquisitions %" PRIu64
                ", segments copied %" PRIu64 " / shared %" PRIu64 "\n",
                shards, writer_acqs, telemetry.patch_segments_copied,
                telemetry.patch_segments_shared);
    JsonReport::Record("sharding", "writer_acquisitions",
                       double(writer_acqs));
    JsonReport::Record("sharding", "patch_segments_copied",
                       double(telemetry.patch_segments_copied));
    JsonReport::Record("sharding", "patch_segments_shared",
                       double(telemetry.patch_segments_shared));
  }

  if (engine_options.durability.enabled()) {
    // WAL overhead of the whole run: how many records and fsyncs the
    // mutation traffic cost under this policy. Policy is encoded as its
    // enum index (0=none, 1=batch, 2=every_write) — the JSON schema is
    // numbers-only.
    const auto telemetry = engine.TelemetrySnapshot();
    std::printf("durability: %" PRIu64 " WAL appends, %" PRIu64 " bytes, "
                "%" PRIu64 " fsyncs, %" PRIu64 " group-commit batches, "
                "%zu checkpoints\n",
                telemetry.wal_appends, telemetry.wal_bytes,
                telemetry.wal_fsyncs, telemetry.group_commit_batches,
                telemetry.checkpoints_written);
    JsonReport::Record(
        "durability", "fsync_policy",
        double(static_cast<int>(engine_options.durability.fsync_policy)));
    JsonReport::Record("durability", "wal_appends",
                       double(telemetry.wal_appends));
    JsonReport::Record("durability", "wal_bytes", double(telemetry.wal_bytes));
    JsonReport::Record("durability", "wal_fsyncs",
                       double(telemetry.wal_fsyncs));
    JsonReport::Record("durability", "group_commit_batches",
                       double(telemetry.group_commit_batches));
    JsonReport::Record("durability", "checkpoints_written",
                       double(telemetry.checkpoints_written));
  }

  int json_exit = JsonReport::Finish();
  if (!wal_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(wal_dir, ec);
  }
  if (failed || run.total_failed() > 0) return 1;
  return json_exit;
}
