/// \file bench_enumeration_ablation.cc
/// \brief Ablation for §IV-A2: how much does constraint injection shrink
/// the view-enumeration search space?
///
/// Compares, over schemas with a growing number of edge types M and a
/// growing hop cap k:
///  (a) constrained enumeration (query + schema constraints injected):
///      candidates actually produced for the blast-radius query;
///  (b) unconstrained schema-walk space (>= M^k for cyclic schemas);
///  (c) the procedural baseline of Alg. 1 (k-hop schema path sets).
///
/// Expected shape: (b) grows exponentially with k and M while (a) stays
/// flat (bounded by the query's hop budget and endpoint types).

#include <cstdio>

#include "core/enumerator.h"
#include "datasets/workloads.h"
#include "graph/schema.h"
#include "query/parser.h"

namespace {

using kaskade::core::EnumerationStats;
using kaskade::core::ViewEnumerator;
using kaskade::graph::GraphSchema;

/// Lineage schema with `parallel` edge types in each direction between
/// Job and File (writes/appends/touches/... and their read
/// counterparts), so M = 2*parallel and every schema-walk step has
/// `parallel` choices: the unconstrained k-walk space grows like
/// parallel^k — the >= M^k blowup of §IV-A2.
GraphSchema WideSchema(int parallel) {
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  (void)schema.AddEdgeType("WRITES_TO", "Job", "File");
  (void)schema.AddEdgeType("IS_READ_BY", "File", "Job");
  for (int i = 1; i < parallel; ++i) {
    (void)schema.AddEdgeType("PRODUCES_" + std::to_string(i), "Job", "File");
    (void)schema.AddEdgeType("CONSUMED_BY_" + std::to_string(i), "File",
                             "Job");
  }
  return schema;
}

}  // namespace

int main() {
  std::printf(
      "Enumeration ablation (§IV-A2): constrained candidates vs\n"
      "unconstrained schema-walk space vs procedural Alg. 1 baseline.\n\n");
  auto query =
      kaskade::query::ParseQueryText(kaskade::datasets::BlastRadiusQueryText());
  if (!query.ok()) return 1;

  std::printf("%4s %4s %14s %18s %14s %16s\n", "M", "k", "constrained",
              "unconstrained", "alg1-paths", "inference-steps");
  for (int parallel : {1, 2, 3, 4}) {
    GraphSchema schema = WideSchema(parallel);
    int m = static_cast<int>(schema.num_edge_types());
    for (int k : {4, 8, 12}) {
      kaskade::core::EnumeratorOptions options;
      options.max_k = k;
      ViewEnumerator enumerator(&schema, options);
      EnumerationStats stats;
      auto candidates = enumerator.Enumerate(*query, &stats);
      if (!candidates.ok()) {
        std::printf("enumeration failed: %s\n",
                    candidates.status().ToString().c_str());
        return 1;
      }
      auto unconstrained = enumerator.CountUnconstrainedSchemaWalks(k);
      uint64_t alg1 = ViewEnumerator::ProceduralKHopSchemaPaths(schema, k);
      char unconstrained_text[32];
      if (unconstrained.ok()) {
        std::snprintf(unconstrained_text, sizeof(unconstrained_text), "%llu",
                      static_cast<unsigned long long>(*unconstrained));
      } else {
        // The walk space itself exceeded the inference step budget —
        // the strongest form of the point being made.
        std::snprintf(unconstrained_text, sizeof(unconstrained_text),
                      ">step-budget");
      }
      std::printf("%4d %4d %14zu %18s %14llu %16llu\n", m, k,
                  candidates->size(), unconstrained_text,
                  static_cast<unsigned long long>(alg1),
                  static_cast<unsigned long long>(stats.inference_steps));
    }
  }
  std::printf(
      "\nReading: 'constrained' stays flat as M and k grow because the\n"
      "query facts bind the connector length and endpoint types before\n"
      "the schema walk fires; 'unconstrained' is the >= M^k space.\n");
  return 0;
}
