/// \file bench_fig5_estimation.cc
/// \brief Reproduces Figure 5: estimated vs actual 2-hop connector sizes
/// over edge-count prefixes of each dataset.
///
/// For each graph and each prefix of its first n edges, prints the
/// alpha=50 and alpha=95 estimates (Eq. 2 homogeneous / Eq. 3
/// heterogeneous), the original size |E|, and the actual number of
/// 2-length simple paths (the edge count of a non-deduplicated 2-hop
/// connector). Expected shapes (paper Fig. 5):
///  - on power-law graphs the two alphas bracket the actual curve;
///  - homogeneous 2-hop connectors exceed |E|;
///  - the prov curve sits far below its homogeneous counterparts.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/size_estimator.h"
#include "graph/algorithms.h"
#include "graph/stats.h"

namespace {

using kaskade::core::EstimateKPathCount;
using kaskade::graph::GraphStats;
using kaskade::graph::PropertyGraph;

void Sweep(const char* name, const PropertyGraph& full) {
  std::printf("\n%s\n", name);
  std::printf("%10s %14s %14s %14s %14s\n", "edges", "est(a=50)", "est(a=95)",
              "actual", "|E|");
  for (size_t n : {1000ul, 3000ul, 10000ul, 30000ul, 100000ul}) {
    if (n > full.NumEdges() * 2) break;
    PropertyGraph prefix = kaskade::datasets::PrefixSubgraph(full, n);
    GraphStats stats = GraphStats::Compute(prefix);
    double lo = EstimateKPathCount(prefix, stats, 2, 50);
    double hi = EstimateKPathCount(prefix, stats, 2, 95);
    uint64_t actual = kaskade::graph::CountSimple2Paths(prefix);
    std::printf("%10zu %14.3g %14.3g %14llu %14zu\n", prefix.NumEdges(), lo,
                hi, static_cast<unsigned long long>(actual),
                prefix.NumEdges());
    std::string prefix_label = std::to_string(prefix.NumEdges());
    kaskade::bench::JsonReport::Record(
        std::string(name) + "/" + prefix_label, "est_a50", lo);
    kaskade::bench::JsonReport::Record(
        std::string(name) + "/" + prefix_label, "est_a95", hi);
    kaskade::bench::JsonReport::Record(std::string(name) + "/" + prefix_label,
                                       "actual",
                                       static_cast<double>(actual));
    if (n >= full.NumEdges()) break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "fig5_estimation");
  std::printf(
      "Figure 5: 2-hop connector size estimates vs actual (log-log in the\n"
      "paper; printed as series here). Estimators: Eq. 2 (homogeneous),\n"
      "Eq. 3 (heterogeneous), alpha = 50 and 95.\n");
  Sweep("prov", kaskade::bench::BenchProvRaw());
  Sweep("dblp", kaskade::bench::BenchDblpRaw());
  Sweep("roadnet-usa", kaskade::bench::BenchRoad());
  Sweep("soc-livejournal", kaskade::bench::BenchSocial());
  return kaskade::bench::JsonReport::Finish();
}
