/// \file bench_maintenance.cc
/// \brief Extension experiment: incremental connector maintenance vs
/// full re-materialization under an append-only edge stream.
///
/// The paper defers maintenance to the graph-view literature (§VIII);
/// this measures our implementation: per-insert delta cost for the 2-hop
/// job-to-job connector vs re-running the materializer, over growing
/// base-graph sizes. Expected shape: per-insert delta cost is orders of
/// magnitude below re-materialization and roughly independent of graph
/// size (it depends on local degrees only).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/maintenance.h"
#include "core/materializer.h"
#include "datasets/generators.h"

namespace {

using kaskade::core::Materialize;
using kaskade::core::ViewDefinition;
using kaskade::core::ViewMaintainer;
using kaskade::graph::PropertyGraph;
using kaskade::graph::VertexId;

ViewDefinition JobConnector() {
  ViewDefinition def;
  def.kind = kaskade::core::ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Job";
  def.target_type = "Job";
  return def;
}

void Run(size_t num_jobs) {
  kaskade::datasets::ProvOptions options;
  options.num_jobs = num_jobs;
  options.num_files = num_jobs * 5 / 2;
  options.include_auxiliary = false;
  PropertyGraph g = kaskade::datasets::MakeProvenanceGraph(options);

  auto view = Materialize(g, JobConnector());
  if (!view.ok()) return;
  ViewMaintainer maintainer(&g, &*view);

  // Stream 200 new lineage edges (one new job writing + several reads).
  constexpr int kInserts = 200;
  std::vector<kaskade::graph::EdgeId> new_edges;
  uint64_t x = 99;
  auto next = [&x]() {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return x >> 33;
  };
  VertexId job_count = static_cast<VertexId>(num_jobs);
  VertexId file_base = job_count;  // generator lays out jobs then files
  for (int i = 0; i < kInserts; ++i) {
    if (i % 2 == 0) {
      new_edges.push_back(
          g.AddEdge(next() % job_count, file_base + next() % (num_jobs * 2),
                    "WRITES_TO")
              .value());
    } else {
      new_edges.push_back(
          g.AddEdge(file_base + next() % (num_jobs * 2), next() % job_count,
                    "IS_READ_BY")
              .value());
    }
  }

  double incremental_seconds = kaskade::bench::TimeSeconds([&] {
    for (kaskade::graph::EdgeId e : new_edges) {
      auto stats = maintainer.OnEdgeAdded(e);
      (void)stats;
    }
  });
  double scratch_seconds = kaskade::bench::TimeSeconds([&] {
    auto scratch = Materialize(g, JobConnector());
    (void)scratch;
  });
  std::printf("%10zu %12zu %16.1f %16.1f %14.0fx\n", num_jobs,
              view->graph.NumEdges(), incremental_seconds / kInserts * 1e6,
              scratch_seconds * 1e6,
              scratch_seconds / (incremental_seconds / kInserts));
  std::string section = "jobs_" + std::to_string(num_jobs);
  kaskade::bench::JsonReport::Record(section, "us_per_insert",
                                     incremental_seconds / kInserts * 1e6);
  kaskade::bench::JsonReport::Record(section, "us_rematerialize",
                                     scratch_seconds * 1e6);
  kaskade::bench::JsonReport::Record(
      section, "advantage_x",
      scratch_seconds / (incremental_seconds / kInserts));
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "maintenance");
  std::printf(
      "Incremental maintenance vs re-materialization (2-hop job-to-job\n"
      "connector; 200 streamed lineage edges per configuration).\n\n");
  std::printf("%10s %12s %16s %16s %14s\n", "jobs", "view edges",
              "us/insert", "us/rematerial.", "advantage");
  for (size_t jobs : {200, 800, 3200}) Run(jobs);
  std::printf(
      "\nReading: per-insert cost tracks local degrees, not graph size;\n"
      "re-materialization cost grows with the graph.\n");
  return kaskade::bench::JsonReport::Finish();
}
