// MATCH hot-path latency: CSR-backed execution vs. the legacy
// adjacency-list backtracker, plus parallel seed-partitioned scaling.
//
// Measures, per (dataset, query):
//   - legacy_seconds        adjacency-list backtracking (the old path)
//   - csr_seconds           type-partitioned CSR snapshot, 1 thread
//   - csr_speedup           legacy / csr (the tentpole number)
//   - par{2,4}_seconds      CSR backend with parallelism 2 / 4
//   - par{2,4}_scaling      csr_seconds / parN_seconds
//   - snapshot_build_seconds  one-off CsrGraph::Build cost (amortized
//                             across queries by the catalog cache)
//
// Scaling numbers are only meaningful on multi-core hosts; the
// `hardware_threads` metric records what this run had so the perf
// trajectory stays interpretable (a 1-core container shows ~1x).
//
// A final `fusion` section pushes a 100-query same-shape batch through
// `Engine::ExecuteBatch` with cross-query fusion on vs off and records
// the shared-traversal expansion ratio (enforced >= 10x).
//
// Usage: bench_query_latency [--json[=path]]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "graph/csr.h"
#include "query/executor.h"

namespace {

using kaskade::bench::JsonReport;
using kaskade::bench::PrintHeader;
using kaskade::bench::TimeSeconds;
using kaskade::graph::CsrGraph;
using kaskade::graph::PropertyGraph;
using kaskade::query::ExecutorOptions;
using kaskade::query::QueryExecutor;
using kaskade::query::Table;

struct BenchQuery {
  const char* label;
  const char* text;
};

/// Best-of-N wall clock for one executor configuration.
double BestOf(int reps, QueryExecutor* executor, const std::string& text,
              size_t* rows_out) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    size_t rows = 0;
    double secs = TimeSeconds([&] {
      auto result = executor->ExecuteText(text);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      rows = result->num_rows();
    });
    *rows_out = rows;
    if (secs < best) best = secs;
  }
  return best;
}

void RunDataset(const std::string& section, const PropertyGraph& g,
                const std::vector<BenchQuery>& queries) {
  PrintHeader(section);
  CsrGraph csr;
  double build_secs = TimeSeconds([&] { csr = CsrGraph::Build(g); });
  JsonReport::Record(section, "snapshot_build_seconds", build_secs);
  std::printf("snapshot build: %.4fs (%zu vertices, %zu edges)\n", build_secs,
              csr.NumVertices(), csr.NumEdges());
  std::printf("%-28s %10s %10s %8s %10s %10s\n", "query", "legacy(s)",
              "csr(s)", "speedup", "par2", "par4");

  const int reps = 3;
  for (const BenchQuery& q : queries) {
    QueryExecutor legacy(&g);
    ExecutorOptions seq_opts;
    QueryExecutor csr_seq(&g, &csr, seq_opts);
    ExecutorOptions par2_opts;
    par2_opts.parallelism = 2;
    QueryExecutor csr_par2(&g, &csr, par2_opts);
    ExecutorOptions par4_opts;
    par4_opts.parallelism = 4;
    QueryExecutor csr_par4(&g, &csr, par4_opts);

    size_t legacy_rows = 0, csr_rows = 0, par2_rows = 0, par4_rows = 0;
    double legacy_s = BestOf(reps, &legacy, q.text, &legacy_rows);
    double csr_s = BestOf(reps, &csr_seq, q.text, &csr_rows);
    double par2_s = BestOf(reps, &csr_par2, q.text, &par2_rows);
    double par4_s = BestOf(reps, &csr_par4, q.text, &par4_rows);
    if (csr_rows != legacy_rows || par2_rows != legacy_rows ||
        par4_rows != legacy_rows) {
      std::fprintf(stderr,
                   "row-count divergence on %s: legacy=%zu csr=%zu "
                   "par2=%zu par4=%zu\n",
                   q.label, legacy_rows, csr_rows, par2_rows, par4_rows);
      std::exit(1);
    }

    const std::string metric = q.label;
    JsonReport::Record(section, metric + "_legacy_seconds", legacy_s);
    JsonReport::Record(section, metric + "_csr_seconds", csr_s);
    JsonReport::Record(section, metric + "_csr_speedup", legacy_s / csr_s);
    JsonReport::Record(section, metric + "_par2_seconds", par2_s);
    JsonReport::Record(section, metric + "_par2_scaling", csr_s / par2_s);
    JsonReport::Record(section, metric + "_par4_seconds", par4_s);
    JsonReport::Record(section, metric + "_par4_scaling", csr_s / par4_s);
    JsonReport::Record(section, metric + "_rows",
                       static_cast<double>(legacy_rows));
    std::printf("%-28s %10.4f %10.4f %7.2fx %9.2fx %9.2fx  (%zu rows)\n",
                q.label, legacy_s, csr_s, legacy_s / csr_s, csr_s / par2_s,
                csr_s / par4_s, legacy_rows);
  }
}

/// Cross-query fusion: a 100-query batch of one plan shape (constants
/// differ) through two engines, fusion on vs off. The fused engine runs
/// one shared traversal per shape group where the unfused engine pays
/// the full traversal per member, so the expansion ratio should sit
/// near the batch size; the bench enforces a conservative 10x floor.
void RunFusionSection() {
  PrintHeader("fusion");
  kaskade::core::EngineOptions unfused_opts;
  unfused_opts.executor.fusion.enabled = false;
  kaskade::core::Engine fused(kaskade::bench::BenchProvRaw());
  kaskade::core::Engine unfused(kaskade::bench::BenchProvRaw(), unfused_opts);

  constexpr int kBatchSize = 100;
  std::vector<std::string> batch;
  batch.reserve(kBatchSize);
  for (int i = 0; i < kBatchSize; ++i) {
    // 20 distinct pipelines exist; every constant (matching or not)
    // keeps the same shape key, which is all fusion grouping needs.
    batch.push_back(
        "MATCH (a:Job)-[:WRITES_TO]->(f:File) WHERE a.pipelineName = "
        "'pipeline_" +
        std::to_string(i % 25) + "' RETURN a, f");
  }

  const int reps = 3;
  double fused_s = 1e100, unfused_s = 1e100;
  size_t fused_rows = 0, unfused_rows = 0;
  for (int r = 0; r < reps; ++r) {
    size_t rows = 0;
    double secs = TimeSeconds([&] {
      for (const auto& result : fused.ExecuteBatch(batch)) {
        if (!result.ok()) {
          std::fprintf(stderr, "fused batch failed: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
        rows += result->table.num_rows();
      }
    });
    fused_rows = rows;
    if (secs < fused_s) fused_s = secs;
    rows = 0;
    secs = TimeSeconds([&] {
      for (const auto& result : unfused.ExecuteBatch(batch)) {
        if (!result.ok()) {
          std::fprintf(stderr, "unfused batch failed: %s\n",
                       result.status().ToString().c_str());
          std::exit(1);
        }
        rows += result->table.num_rows();
      }
    });
    unfused_rows = rows;
    if (secs < unfused_s) unfused_s = secs;
  }
  if (fused_rows != unfused_rows) {
    std::fprintf(stderr, "fusion row divergence: fused=%zu unfused=%zu\n",
                 fused_rows, unfused_rows);
    std::exit(1);
  }

  const double fused_exp = double(fused.traversal_expansions()) / reps;
  const double unfused_exp = double(unfused.traversal_expansions()) / reps;
  const double ratio = fused_exp > 0 ? unfused_exp / fused_exp : 0;
  JsonReport::Record("fusion", "batch_size", double(kBatchSize));
  JsonReport::Record("fusion", "rows", double(fused_rows));
  JsonReport::Record("fusion", "fused_seconds", fused_s);
  JsonReport::Record("fusion", "unfused_seconds", unfused_s);
  JsonReport::Record("fusion", "batch_speedup", unfused_s / fused_s);
  JsonReport::Record("fusion", "fused_expansions_per_batch", fused_exp);
  JsonReport::Record("fusion", "unfused_expansions_per_batch", unfused_exp);
  JsonReport::Record("fusion", "expansion_ratio", ratio);
  std::printf("batch of %d same-shape queries: %.4fs fused vs %.4fs solo "
              "(%.2fx), expansions %.0f vs %.0f (%.1fx fewer)\n",
              kBatchSize, fused_s, unfused_s, unfused_s / fused_s, fused_exp,
              unfused_exp, ratio);
  if (ratio < 10.0) {
    std::fprintf(stderr,
                 "fusion expansion ratio %.1fx below the 10x floor\n", ratio);
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport::Init(argc, argv, "query_latency");
  JsonReport::Record("meta", "hardware_threads",
                     static_cast<double>(std::thread::hardware_concurrency()));

  // Heterogeneous provenance graph (5 vertex / 6 edge types): typed
  // expansion has the most to skip, the paper's primary workload. The
  // `_proj` variants project a subset of the pattern variables — the
  // shape of the paper's Listing 1 (MATCH feeding GROUP BY) — where
  // enumeration, not result materialization, dominates; the full-output
  // variants are bounded below by the shared Table-building cost both
  // backends pay per emitted row.
  RunDataset(
      "prov", kaskade::bench::BenchProvRaw(),
      {
          {"typed_2hop",
           "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
           "(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b"},
          {"typed_2hop_proj",
           "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
           "(f:File)-[:IS_READ_BY]->(b:Job) RETURN a"},
          {"typed_3hop",
           "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
           "(f:File)-[:IS_READ_BY]->(b:Job) (b:Job)-[:WRITES_TO]->(g:File) "
           "RETURN a, b, g"},
          {"typed_3hop_proj",
           "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
           "(f:File)-[:IS_READ_BY]->(b:Job) (b:Job)-[:WRITES_TO]->(g:File) "
           "RETURN a, b"},
          {"varlen_0_4",
           "MATCH (a:File)-[r*0..4]->(b:File) RETURN a, b"},
          {"spawn_fanout",
           "MATCH (u:User)-[:SUBMITS]->(j:Job) (j:Job)-[:SPAWNS]->(t:Task) "
           "RETURN u, t"},
      });

  // Pre-summarized provenance (jobs + files only): the §VII-B runtime
  // input; fewer types, denser bipartite core.
  RunDataset(
      "prov_summarized", kaskade::bench::BenchProvFiltered(),
      {
          {"typed_2hop",
           "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
           "(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b"},
          {"typed_3hop",
           "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
           "(f:File)-[:IS_READ_BY]->(b:Job) (b:Job)-[:WRITES_TO]->(g:File) "
           "RETURN a, b, g"},
      });

  // Homogeneous social graph: enumeration-heavy expansion over skewed
  // degrees, the parallel-scaling workload. Scaled to 2000 vertices —
  // the preferential-attachment hubs make multi-hop output quadratic,
  // and the full bench-scale graph (4000) already takes minutes on the
  // legacy path, too slow for a CI smoke job.
  kaskade::datasets::SocialOptions social;
  social.num_vertices = 2000;
  social.edges_per_vertex = 6;
  RunDataset(
      "social", kaskade::datasets::MakeSocialGraph(social),
      {
          {"follows_2hop",
           "MATCH (a:Person)-[:FOLLOWS]->(b:Person) "
           "(b:Person)-[:FOLLOWS]->(c:Person) RETURN a, c"},
          {"triangle_filter",
           "MATCH (a:Person)-[:FOLLOWS]->(b:Person) "
           "(b:Person)-[:FOLLOWS]->(c:Person) (a:Person)-[:FOLLOWS]->(c:Person) "
           "RETURN a, c"},
      });

  // Road grid: sparse uniform degrees, deep traversals with bounded
  // fan-out — the long-chain enumeration profile.
  RunDataset(
      "road", kaskade::bench::BenchRoad(),
      {
          {"road_3hop",
           "MATCH (a:Intersection)-[:ROAD]->(b:Intersection) "
           "(b:Intersection)-[:ROAD]->(c:Intersection) "
           "(c:Intersection)-[:ROAD]->(d:Intersection) RETURN a, d"},
          {"varlen_1_6",
           "MATCH (a:Intersection)-[r*1..6]->(b:Intersection) RETURN a, b"},
      });

  RunFusionSection();

  return JsonReport::Finish();
}
