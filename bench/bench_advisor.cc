// Adaptive view lifecycle: what readers experience while a view is
// being materialized, blocking-writer path vs the background builder,
// plus the advisor's round cost.
//
// Measures:
//   - build_seconds                 one heavy connector materialization
//                                   (social graph: a 2-hop FOLLOWS
//                                   connector, ~1s of path contraction)
//   - blocking_reader_p{50,99}_us   Execute latency while the build runs
//                                   under the writer lock
//                                   (AddMaterializedView: every reader
//                                   stalls for the whole build)
//   - background_reader_p{50,99}_us Execute latency while the same build
//                                   runs on the background worker
//                                   (ApplyAdvice: readers share the lock
//                                   with the builder)
//   - p99_improvement               blocking p99 / background p99 — the
//                                   tentpole number; the build no longer
//                                   shows up in the reader tail
//   - advise_round_seconds          one Advise() pass over the observed
//                                   workload (enumerate/score/knapsack),
//                                   on the prov workload
//
// Single-core note: with one hardware thread the background builder and
// the readers timeslice, so background latencies include scheduler
// quanta (milliseconds); the blocking path stalls readers for entire
// builds (hundreds of milliseconds), so the improvement factor is
// robustly large either way.
//
// Usage: bench_advisor [--json[=path]]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "datasets/generators.h"

namespace {

using kaskade::bench::JsonReport;
using kaskade::bench::OrDie;
using kaskade::bench::PrintHeader;
using kaskade::bench::TimeSeconds;
using kaskade::core::AdvicePlan;
using kaskade::core::Engine;
using kaskade::core::ViewDefinition;
using kaskade::core::ViewKind;

/// Preferential-attachment social graph: the 2-hop FOLLOWS connector
/// contracts every a->b->c path through the hubs, which makes its
/// materialization genuinely heavy (~1s) at this scale.
kaskade::graph::PropertyGraph BuildPhaseGraph() {
  kaskade::datasets::SocialOptions options;
  options.num_vertices = 1200;
  options.edges_per_vertex = 6;
  return kaskade::datasets::MakeSocialGraph(options);
}

ViewDefinition HeavyConnector() {
  ViewDefinition def;
  def.kind = ViewKind::kKHopConnector;
  def.k = 2;
  def.source_type = "Person";
  def.target_type = "Person";
  return def;
}

/// The query readers hammer while builds run: a cheap typed 1-hop with
/// projection, the "interactive traffic" a build must not stall.
const char* kReaderQuery = "MATCH (a:Person)-[:FOLLOWS]->(b:Person) RETURN a";

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * double(samples.size() - 1));
  return samples[index];
}

/// Runs `cycles` build+drop rounds through `build_and_drop` while one
/// reader thread hammers `kReaderQuery`, collecting per-call latencies
/// (in microseconds) for the whole phase.
std::vector<double> ReaderLatenciesDuring(
    Engine* engine, int cycles,
    const std::function<void(Engine*)>& build_and_drop) {
  std::vector<double> latencies;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      double secs = TimeSeconds([&] {
        kaskade::bench::OrDie(engine->Execute(kReaderQuery).status(),
                              "reader query");
      });
      latencies.push_back(secs * 1e6);
    }
  });
  for (int c = 0; c < cycles; ++c) build_and_drop(engine);
  stop.store(true);
  reader.join();
  return latencies;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport::Init(argc, argv, "advisor");
  JsonReport::Record("meta", "hardware_threads",
                     static_cast<double>(std::thread::hardware_concurrency()));
  const ViewDefinition heavy = HeavyConnector();
  constexpr int kCycles = 3;

  PrintHeader("build cost");
  double build_secs;
  {
    Engine engine(BuildPhaseGraph());
    build_secs = TimeSeconds([&] {
      OrDie(engine.AddMaterializedView(heavy), "materialize heavy connector");
    });
  }
  JsonReport::Record("social", "build_seconds", build_secs);
  std::printf("one %s materialization: %.3fs\n", heavy.Name().c_str(),
              build_secs);

  // --- Blocking-writer path: AddMaterializedView holds the writer lock
  // for the whole materialization; every reader queues behind it.
  PrintHeader("blocking-writer path");
  std::vector<double> blocking;
  {
    Engine engine(BuildPhaseGraph());
    blocking = ReaderLatenciesDuring(&engine, kCycles, [&](Engine* e) {
      OrDie(e->AddMaterializedView(heavy), "blocking build");
      OrDie(e->RemoveView(heavy.Name()), "drop after blocking build");
    });
  }
  double blocking_p50 = Percentile(blocking, 0.50);
  double blocking_p99 = Percentile(blocking, 0.99);
  JsonReport::Record("social", "blocking_reader_p50_us", blocking_p50);
  JsonReport::Record("social", "blocking_reader_p99_us", blocking_p99);
  JsonReport::Record("social", "blocking_reader_samples",
                     static_cast<double>(blocking.size()));
  std::printf("%zu reader samples over %d builds: p50=%.0fus p99=%.0fus\n",
              blocking.size(), kCycles, blocking_p50, blocking_p99);

  // --- Background path: ApplyAdvice materializes on the build worker
  // under the *reader* lock; publish is one short writer section.
  PrintHeader("background-build path");
  std::vector<double> background;
  size_t builds_completed = 0;
  {
    Engine engine(BuildPhaseGraph());
    background = ReaderLatenciesDuring(&engine, kCycles, [&](Engine* e) {
      AdvicePlan create;
      create.create.push_back(heavy);
      OrDie(e->ApplyAdvice(create).status(), "schedule background build");
      e->WaitForBuilds();
      OrDie(e->TakeBuildError(), "background build");
      OrDie(e->RemoveView(heavy.Name()), "drop after background build");
    });
    builds_completed = engine.builds_completed();
  }
  if (builds_completed != static_cast<size_t>(kCycles)) {
    kaskade::bench::Die("background path",
                        "expected " + std::to_string(kCycles) +
                            " background builds, saw " +
                            std::to_string(builds_completed));
  }
  double background_p50 = Percentile(background, 0.50);
  double background_p99 = Percentile(background, 0.99);
  JsonReport::Record("social", "background_reader_p50_us", background_p50);
  JsonReport::Record("social", "background_reader_p99_us", background_p99);
  JsonReport::Record("social", "background_reader_samples",
                     static_cast<double>(background.size()));
  std::printf("%zu reader samples over %d builds: p50=%.0fus p99=%.0fus\n",
              background.size(), kCycles, background_p50, background_p99);

  double p50_improvement = background_p50 > 0 ? blocking_p50 / background_p50
                                              : 0;
  double p99_improvement = background_p99 > 0 ? blocking_p99 / background_p99
                                              : 0;
  JsonReport::Record("social", "p50_improvement", p50_improvement);
  JsonReport::Record("social", "p99_improvement", p99_improvement);
  std::printf("reader improvement, background vs blocking: p50 %.1fx, "
              "p99 %.1fx\n",
              p50_improvement, p99_improvement);

  // --- Advisor round: observe a workload, then time one Advise() pass.
  PrintHeader("advisor round (prov workload)");
  {
    Engine engine(kaskade::bench::BenchProvFiltered());
    const std::vector<std::string> workload = {
        "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j",
        "MATCH (a:Job)-[:WRITES_TO]->(f:File) "
        "(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b",
    };
    for (int round = 0; round < 3; ++round) {
      for (const std::string& text : workload) {
        OrDie(engine.Execute(text).status(), "prov workload query");
      }
    }
    double advise_secs = TimeSeconds([&] {
      AdvicePlan plan = OrDie(engine.Advise(), "advise round");
      std::printf("advice: %zu creations, %zu drops over %zu observed "
                  "queries\n",
                  plan.create.size(), plan.drop.size(),
                  plan.observed_queries);
    });
    JsonReport::Record("prov", "advise_round_seconds", advise_secs);
    std::printf("one Advise() round: %.4fs\n", advise_secs);
  }

  return JsonReport::Finish();
}
