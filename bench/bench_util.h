/// \file bench_util.h
/// \brief Shared helpers for the paper-reproduction bench binaries: the
/// four evaluation datasets at bench scale, wall-clock timing, and table
/// formatting.
///
/// Scale note: the paper's graphs range from 24M to 16B edges on a
/// 128 GB / 28-core box; ours are scaled to tens of thousands of edges
/// for a single-core container. EXPERIMENTS.md records the mapping. The
/// *shapes* (who wins, by what factor, where crossovers happen) are the
/// reproduction target, not absolute numbers.

#ifndef KASKADE_BENCH_BENCH_UTIL_H_
#define KASKADE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "datasets/generators.h"
#include "graph/property_graph.h"

namespace kaskade::bench {

/// Provenance graph (heterogeneous, 5 vertex types) at bench scale. Tasks
/// outnumber jobs 10:1 — production clusters spawn billions of tasks for
/// hundreds of thousands of jobs, which is why the schema-level
/// summarizer wins so much in the paper.
inline graph::PropertyGraph BenchProvRaw() {
  datasets::ProvOptions options;
  options.num_jobs = 800;
  options.num_files = 2000;
  options.num_tasks = 8000;
  options.num_machines = 40;
  options.num_users = 60;
  return datasets::MakeProvenanceGraph(options);
}

/// Pre-summarized provenance graph (jobs + files only), the §VII-B
/// "prov (summarized)" input used for runtime experiments.
inline graph::PropertyGraph BenchProvFiltered() {
  datasets::ProvOptions options;
  options.num_jobs = 800;
  options.num_files = 2000;
  options.include_auxiliary = false;
  return datasets::MakeProvenanceGraph(options);
}

/// dblp-like publication graph (heterogeneous, 3 vertex types).
inline graph::PropertyGraph BenchDblpRaw() {
  datasets::DblpOptions options;
  options.num_authors = 1200;
  options.num_articles = 2400;
  options.num_venues = 40;
  return datasets::MakeDblpGraph(options);
}

/// Pre-summarized dblp (authors + articles only).
inline graph::PropertyGraph BenchDblpFiltered() {
  datasets::DblpOptions options;
  options.num_authors = 1200;
  options.num_articles = 2400;
  options.include_venues = false;
  return datasets::MakeDblpGraph(options);
}

/// soc-livejournal-like homogeneous social graph.
inline graph::PropertyGraph BenchSocial() {
  datasets::SocialOptions options;
  options.num_vertices = 4000;
  options.edges_per_vertex = 6;
  return datasets::MakeSocialGraph(options);
}

/// roadnet-usa-like homogeneous road grid.
inline graph::PropertyGraph BenchRoad() {
  datasets::RoadOptions options;
  options.width = 70;
  options.height = 70;
  return datasets::MakeRoadGraph(options);
}

/// Wall-clock seconds for `fn()`.
inline double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Prints a section header in the style used across bench outputs.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace kaskade::bench

#endif  // KASKADE_BENCH_BENCH_UTIL_H_
