/// \file bench_util.h
/// \brief Shared helpers for the paper-reproduction bench binaries: the
/// four evaluation datasets at bench scale, wall-clock timing, and table
/// formatting.
///
/// Scale note: the paper's graphs range from 24M to 16B edges on a
/// 128 GB / 28-core box; ours are scaled to tens of thousands of edges
/// for a single-core container. EXPERIMENTS.md records the mapping. The
/// *shapes* (who wins, by what factor, where crossovers happen) are the
/// reproduction target, not absolute numbers.

#ifndef KASKADE_BENCH_BENCH_UTIL_H_
#define KASKADE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "datasets/generators.h"
#include "graph/property_graph.h"

namespace kaskade::bench {

/// \name Run-or-die plumbing.
///
/// Bench binaries have no caller to propagate a `Status` to: any
/// engine-setup failure is a bug in the bench itself, and the only
/// honest reaction is to print the status and exit non-zero (so CI's
/// bench-smoke job turns red instead of uploading an empty report).
/// Every bench previously open-coded this; these helpers are the one
/// shared spelling.
/// @{

/// Prints `context: message` to stderr and exits with code 1.
[[noreturn]] inline void Die(const std::string& context,
                             const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", context.c_str(), message.c_str());
  std::exit(1);
}

/// Exits via `Die` when `status` is not OK.
inline void OrDie(const Status& status, const std::string& context) {
  if (!status.ok()) Die(context, status.ToString());
}

/// Returns the value or exits via `Die`.
template <typename T>
T OrDie(Result<T> result, const std::string& context) {
  if (!result.ok()) Die(context, result.status().ToString());
  return std::move(result).value();
}

/// @}

/// \brief Machine-readable result sink for the bench binaries.
///
/// Benches print their human tables as always; when launched with
/// `--json` (or `--json=<path>`) they additionally write every recorded
/// measurement to a JSON file — `BENCH_<name>.json` by default, one
/// file per run (rerunning overwrites it) — for perf-trajectory
/// tracking across commits. Usage:
///
/// ```cpp
/// int main(int argc, char** argv) {
///   kaskade::bench::JsonReport::Init(argc, argv, "fig7_runtimes");
///   ...
///   kaskade::bench::JsonReport::Record("prov", "q2_filter_seconds", 0.8);
///   return kaskade::bench::JsonReport::Finish();
/// }
/// ```
class JsonReport {
 public:
  /// Parses `--json` / `--json=<path>` out of argv. No-op (and all
  /// subsequent Records are dropped) when the flag is absent.
  static void Init(int argc, char** argv, const std::string& bench_name) {
    State& s = state();
    s.bench_name = bench_name;
    s.path = "BENCH_" + bench_name + ".json";
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        s.enabled = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        s.enabled = true;
        s.path = argv[i] + 7;
      }
    }
  }

  /// Records one measurement under a section (dataset, figure panel, ...).
  static void Record(const std::string& section, const std::string& metric,
                     double value) {
    State& s = state();
    if (!s.enabled) return;
    s.entries.push_back(Entry{section, metric, value});
  }

  /// Writes the JSON file when enabled. Returns a process exit code
  /// (0 on success) so `return JsonReport::Finish();` ends main cleanly.
  static int Finish() {
    State& s = state();
    if (!s.enabled) return 0;
    std::FILE* out = std::fopen(s.path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", s.path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 s.bench_name.c_str());
    for (size_t i = 0; i < s.entries.size(); ++i) {
      const Entry& e = s.entries[i];
      std::fprintf(out,
                   "    {\"section\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %.9g}%s\n",
                   e.section.c_str(), e.metric.c_str(), e.value,
                   i + 1 < s.entries.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %zu results to %s\n", s.entries.size(),
                s.path.c_str());
    return 0;
  }

 private:
  struct Entry {
    std::string section;
    std::string metric;
    double value;
  };
  struct State {
    bool enabled = false;
    std::string bench_name;
    std::string path;
    std::vector<Entry> entries;
  };
  static State& state() {
    static State s;
    return s;
  }
};

/// Provenance graph (heterogeneous, 5 vertex types) at bench scale. Tasks
/// outnumber jobs 10:1 — production clusters spawn billions of tasks for
/// hundreds of thousands of jobs, which is why the schema-level
/// summarizer wins so much in the paper.
inline graph::PropertyGraph BenchProvRaw() {
  datasets::ProvOptions options;
  options.num_jobs = 800;
  options.num_files = 2000;
  options.num_tasks = 8000;
  options.num_machines = 40;
  options.num_users = 60;
  return datasets::MakeProvenanceGraph(options);
}

/// Pre-summarized provenance graph (jobs + files only), the §VII-B
/// "prov (summarized)" input used for runtime experiments.
inline graph::PropertyGraph BenchProvFiltered() {
  datasets::ProvOptions options;
  options.num_jobs = 800;
  options.num_files = 2000;
  options.include_auxiliary = false;
  return datasets::MakeProvenanceGraph(options);
}

/// dblp-like publication graph (heterogeneous, 3 vertex types).
inline graph::PropertyGraph BenchDblpRaw() {
  datasets::DblpOptions options;
  options.num_authors = 1200;
  options.num_articles = 2400;
  options.num_venues = 40;
  return datasets::MakeDblpGraph(options);
}

/// Pre-summarized dblp (authors + articles only).
inline graph::PropertyGraph BenchDblpFiltered() {
  datasets::DblpOptions options;
  options.num_authors = 1200;
  options.num_articles = 2400;
  options.include_venues = false;
  return datasets::MakeDblpGraph(options);
}

/// soc-livejournal-like homogeneous social graph.
inline graph::PropertyGraph BenchSocial() {
  datasets::SocialOptions options;
  options.num_vertices = 4000;
  options.edges_per_vertex = 6;
  return datasets::MakeSocialGraph(options);
}

/// roadnet-usa-like homogeneous road grid.
inline graph::PropertyGraph BenchRoad() {
  datasets::RoadOptions options;
  options.width = 70;
  options.height = 70;
  return datasets::MakeRoadGraph(options);
}

/// Wall-clock seconds for `fn()`.
inline double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Prints a section header in the style used across bench outputs.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace kaskade::bench

#endif  // KASKADE_BENCH_BENCH_UTIL_H_
