/// \file bench_enumeration_latency.cc
/// \brief Verifies the §VII-A claim that constraint extraction plus view
/// inference adds only milliseconds to query runtime.
///
/// Times the full enumeration path (fact extraction, rule consult,
/// template evaluation) for the blast-radius query, amortized over
/// repetitions, plus the one-time schema-fact extraction.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/enumerator.h"
#include "core/fact_extractor.h"
#include "core/rules.h"
#include "datasets/workloads.h"
#include "prolog/knowledge_base.h"
#include "query/parser.h"

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "enumeration_latency");
  std::printf(
      "Enumeration latency (§VII-A): the paper reports 'a few\n"
      "milliseconds' added to total query runtime.\n\n");
  kaskade::graph::PropertyGraph base = kaskade::bench::BenchProvRaw();
  auto query =
      kaskade::query::ParseQueryText(kaskade::datasets::BlastRadiusQueryText());
  if (!query.ok()) return 1;

  constexpr int kReps = 50;

  double schema_seconds = kaskade::bench::TimeSeconds([&] {
    for (int i = 0; i < kReps; ++i) {
      kaskade::prolog::KnowledgeBase kb;
      (void)kaskade::core::ExtractSchemaFacts(base.schema(), &kb);
    }
  });
  std::printf("schema fact extraction: %8.3f ms (one-time per workload)\n",
              schema_seconds / kReps * 1e3);

  double parse_seconds = kaskade::bench::TimeSeconds([&] {
    for (int i = 0; i < kReps; ++i) {
      auto q = kaskade::query::ParseQueryText(
          kaskade::datasets::BlastRadiusQueryText());
      (void)q;
    }
  });
  std::printf("query parse:            %8.3f ms\n",
              parse_seconds / kReps * 1e3);

  kaskade::core::ViewEnumerator enumerator(&base.schema());
  kaskade::core::EnumerationStats stats;
  double enum_seconds = kaskade::bench::TimeSeconds([&] {
    for (int i = 0; i < kReps; ++i) {
      auto candidates = enumerator.Enumerate(*query, &stats);
      (void)candidates;
    }
  });
  std::printf(
      "view enumeration:       %8.3f ms (%zu candidates, %llu inference "
      "steps)\n",
      enum_seconds / kReps * 1e3, stats.candidates,
      static_cast<unsigned long long>(stats.inference_steps));
  std::printf("\ntotal optimizer overhead per new query: %.3f ms\n",
              (parse_seconds + enum_seconds) / kReps * 1e3);
  kaskade::bench::JsonReport::Record("prov", "schema_facts_ms",
                                     schema_seconds / kReps * 1e3);
  kaskade::bench::JsonReport::Record("prov", "parse_ms",
                                     parse_seconds / kReps * 1e3);
  kaskade::bench::JsonReport::Record("prov", "enumeration_ms",
                                     enum_seconds / kReps * 1e3);
  kaskade::bench::JsonReport::Record(
      "prov", "optimizer_overhead_ms",
      (parse_seconds + enum_seconds) / kReps * 1e3);
  return kaskade::bench::JsonReport::Finish();
}
