// Delta-maintenance bench: per-delta incremental view maintenance
// (ViewMaintainer::ApplyDelta) versus re-materializing the view from
// scratch after every delta, across delete ratios. The paper defers
// maintenance to the graph-view literature (§VIII); this quantifies why
// the incremental path matters once the workload stops being
// append-only: a single-edge delta touches O(k * deg^(k-1)) paths while
// a rebuild re-enumerates every path in the graph.
//
// Usage: bench_delta_maintenance [--json[=path]]

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/maintenance.h"
#include "core/materializer.h"
#include "graph/delta.h"
#include "graph/property_graph.h"

namespace {

using kaskade::core::Materialize;
using kaskade::core::ViewDefinition;
using kaskade::core::ViewKind;
using kaskade::core::ViewMaintainer;
using kaskade::graph::EdgeId;
using kaskade::graph::GraphDelta;
using kaskade::graph::PropertyGraph;
using kaskade::graph::VertexId;

struct RunResult {
  double incremental_seconds = 0;
  double rematerialize_seconds = 0;
  size_t deltas = 0;
  size_t inserts = 0;
  size_t deletes = 0;
};

/// Streams `num_deltas` single-edge deltas (deletes with probability
/// `delete_ratio`, lineage-edge inserts otherwise) into `base`, timing
/// the maintainer's incremental update and a from-scratch Materialize of
/// the same post-delta state.
RunResult RunStream(const ViewDefinition& def, double delete_ratio,
                    size_t num_deltas, uint64_t seed) {
  PropertyGraph base = kaskade::bench::BenchProvFiltered();
  std::vector<VertexId> jobs =
      base.VerticesOfType(base.schema().FindVertexType("Job"));
  std::vector<VertexId> files =
      base.VerticesOfType(base.schema().FindVertexType("File"));
  std::vector<EdgeId> live;
  live.reserve(base.NumEdges());
  for (EdgeId e = 0; e < base.NumEdges(); ++e) live.push_back(e);

  auto view = Materialize(base, def);
  if (!view.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 view.status().ToString().c_str());
    std::exit(1);
  }
  ViewMaintainer maintainer(&base, &*view);

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  RunResult result;
  result.deltas = num_deltas;
  for (size_t i = 0; i < num_deltas; ++i) {
    GraphDelta delta;
    if (coin(rng) < delete_ratio && live.size() > 8) {
      size_t pick = rng() % live.size();
      delta.RemoveEdge(live[pick]);
      live[pick] = live.back();
      live.pop_back();
      ++result.deletes;
    } else {
      bool writes = rng() % 2 == 0;
      VertexId job = jobs[rng() % jobs.size()];
      VertexId file = files[rng() % files.size()];
      if (writes) {
        delta.AddEdge(job, file, "WRITES_TO");
      } else {
        delta.AddEdge(file, job, "IS_READ_BY");
      }
      ++result.inserts;
    }
    auto applied = kaskade::graph::ApplyDeltaToGraph(&base, delta);
    if (!applied.ok()) {
      std::fprintf(stderr, "delta failed: %s\n",
                   applied.status().ToString().c_str());
      std::exit(1);
    }
    for (EdgeId e : applied->new_edges) live.push_back(e);

    result.incremental_seconds += kaskade::bench::TimeSeconds([&] {
      auto stats = maintainer.ApplyDelta(delta);
      if (!stats.ok()) {
        std::fprintf(stderr, "maintain failed: %s\n",
                     stats.status().ToString().c_str());
        std::exit(1);
      }
    });
    result.rematerialize_seconds += kaskade::bench::TimeSeconds([&] {
      auto scratch = Materialize(base, def);
      if (!scratch.ok()) std::exit(1);
    });
  }

  // Sanity: the maintained view must agree with the final rebuild.
  auto scratch = Materialize(base, def);
  if (!scratch.ok() ||
      scratch->graph.NumLiveEdges() != view->graph.NumLiveEdges() ||
      scratch->graph.NumLiveVertices() != view->graph.NumLiveVertices()) {
    std::fprintf(stderr, "maintained view diverged from scratch rebuild\n");
    std::exit(1);
  }
  return result;
}

void Report(const char* section, const RunResult& r) {
  double speedup = r.incremental_seconds > 0
                       ? r.rematerialize_seconds / r.incremental_seconds
                       : 0;
  std::printf("%-14s %7zu %8zu %8zu %12.4f %12.4f %9.1fx\n", section,
              r.deltas, r.inserts, r.deletes, r.incremental_seconds,
              r.rematerialize_seconds, speedup);
  kaskade::bench::JsonReport::Record(section, "incremental_seconds",
                                     r.incremental_seconds);
  kaskade::bench::JsonReport::Record(section, "rematerialize_seconds",
                                     r.rematerialize_seconds);
  kaskade::bench::JsonReport::Record(section, "speedup", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "delta_maintenance");
  constexpr size_t kDeltas = 150;

  kaskade::bench::PrintHeader(
      "delta maintenance: incremental vs re-materialization per delta "
      "(prov, 150 single-edge deltas)");
  std::printf("%-14s %7s %8s %8s %12s %12s %9s\n", "view/ratio", "deltas",
              "inserts", "deletes", "incr_s", "remat_s", "speedup");

  ViewDefinition connector;
  connector.kind = ViewKind::kKHopConnector;
  connector.k = 2;
  connector.source_type = "Job";
  connector.target_type = "Job";
  const double kRatios[] = {0.0, 0.1, 0.3, 0.5};
  for (double ratio : kRatios) {
    char section[32];
    std::snprintf(section, sizeof(section), "khop2_del%.0f%%", ratio * 100);
    Report(section, RunStream(connector, ratio, kDeltas, /*seed=*/1234));
  }

  ViewDefinition filter;
  filter.kind = ViewKind::kEdgeInclusionSummarizer;
  filter.type_list = {"WRITES_TO"};
  Report("einc_del10%", RunStream(filter, 0.1, kDeltas, /*seed=*/1234));

  return kaskade::bench::JsonReport::Finish();
}
