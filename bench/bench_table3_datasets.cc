/// \file bench_table3_datasets.cc
/// \brief Reproduces Table III: the dataset inventory — |V| and |E| for
/// each evaluation graph, raw and summarized.
///
/// Paper rows (for reference):
///   prov (raw)          3.2B / 16.4B      prov (summarized)  7M / 34M
///   dblp-net            5.1M / 24.7M      soc-livejournal    4.8M / 68.9M
///   roadnet-usa         23.9M / 28.8M
/// Ours are scaled ~1e3-1e5x down; the structural ratios (summarization
/// shrink factor, heterogeneous vs homogeneous) are the target.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/materializer.h"

namespace {

using kaskade::FormatWithCommas;
using kaskade::graph::PropertyGraph;

void Row(const char* name, const char* type, const PropertyGraph& g) {
  std::printf("%-22s %-16s %12s %12s %8zu %8zu\n", name, type,
              FormatWithCommas(static_cast<long long>(g.NumVertices())).c_str(),
              FormatWithCommas(static_cast<long long>(g.NumEdges())).c_str(),
              g.schema().num_vertex_types(), g.schema().num_edge_types());
  kaskade::bench::JsonReport::Record(name, "vertices",
                                     static_cast<double>(g.NumVertices()));
  kaskade::bench::JsonReport::Record(name, "edges",
                                     static_cast<double>(g.NumEdges()));
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "table3_datasets");
  std::printf("Table III: networks used for evaluation (scaled reproduction)\n");
  std::printf("%-22s %-16s %12s %12s %8s %8s\n", "Short Name", "Type", "|V|",
              "|E|", "VTypes", "ETypes");

  PropertyGraph prov_raw = kaskade::bench::BenchProvRaw();
  Row("prov (raw)", "Data lineage", prov_raw);

  // The summarized prov of Table III is the vertex-inclusion summarizer
  // keeping jobs/files, materialized from the raw graph.
  kaskade::core::ViewDefinition filter;
  filter.kind = kaskade::core::ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto summarized = kaskade::core::Materialize(prov_raw, filter);
  if (summarized.ok()) {
    Row("prov (summarized)", "Data lineage", summarized->graph);
  }

  Row("dblp-net", "Publications", kaskade::bench::BenchDblpRaw());
  Row("soc-livejournal", "Social network", kaskade::bench::BenchSocial());
  Row("roadnet-usa", "Road network", kaskade::bench::BenchRoad());

  std::printf(
      "\nNote: paper scale is 3.2B/16.4B vertices/edges for prov (raw); this\n"
      "reproduction holds the schema shapes and degree-distribution classes\n"
      "at ~1e3-1e5x smaller scale (see EXPERIMENTS.md).\n");
  return kaskade::bench::JsonReport::Finish();
}
