/// \file bench_fig6_reduction.cc
/// \brief Reproduces Figure 6: effective graph size reduction from the
/// schema-level summarizer and the 2-hop connector, over the two
/// heterogeneous graphs (prov and dblp).
///
/// Expected shape (paper): the summarizer cuts prov by ~3 orders of
/// magnitude (vertices+edges of pruned types dominate the raw graph);
/// the connector cuts a further 1-2 orders of magnitude relative to the
/// filtered graph's task-irrelevant halves; dblp shows the same
/// direction with smaller factors.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/materializer.h"

namespace {

using kaskade::core::Materialize;
using kaskade::core::ViewDefinition;
using kaskade::core::ViewKind;
using kaskade::graph::PropertyGraph;

void Report(const char* dataset, const char* section,
            const PropertyGraph& raw,
            const std::vector<std::string>& kept_types,
            const std::string& connector_type) {
  std::printf("\n%s\n", dataset);
  std::printf("%-12s %12s %12s\n", "stage", "vertices", "edges");
  std::printf("%-12s %12zu %12zu\n", "raw", raw.NumVertices(), raw.NumEdges());

  ViewDefinition filter;
  filter.kind = ViewKind::kVertexInclusionSummarizer;
  filter.type_list = kept_types;
  auto filtered = Materialize(raw, filter);
  if (!filtered.ok()) {
    std::printf("filter failed: %s\n", filtered.status().ToString().c_str());
    return;
  }
  std::printf("%-12s %12zu %12zu\n", "filter", filtered->graph.NumVertices(),
              filtered->graph.NumEdges());

  ViewDefinition connector;
  connector.kind = ViewKind::kKHopConnector;
  connector.k = 2;
  connector.source_type = connector_type;
  connector.target_type = connector_type;
  auto view = Materialize(filtered->graph, connector);
  if (!view.ok()) {
    std::printf("connector failed: %s\n", view.status().ToString().c_str());
    return;
  }
  std::printf("%-12s %12zu %12zu\n", "connector", view->graph.NumVertices(),
              view->graph.NumEdges());
  double vr = static_cast<double>(raw.NumVertices()) /
              std::max<size_t>(view->graph.NumVertices(), 1);
  double er = static_cast<double>(raw.NumEdges()) /
              std::max<size_t>(view->graph.NumEdges(), 1);
  std::printf("reduction raw->connector: %.1fx vertices, %.1fx edges\n", vr,
              er);
  using kaskade::bench::JsonReport;
  JsonReport::Record(section, "raw_edges",
                     static_cast<double>(raw.NumEdges()));
  JsonReport::Record(section, "filter_edges",
                     static_cast<double>(filtered->graph.NumEdges()));
  JsonReport::Record(section, "connector_edges",
                     static_cast<double>(view->graph.NumEdges()));
  JsonReport::Record(section, "vertex_reduction_x", vr);
  JsonReport::Record(section, "edge_reduction_x", er);
}

}  // namespace

int main(int argc, char** argv) {
  kaskade::bench::JsonReport::Init(argc, argv, "fig6_reduction");
  std::printf(
      "Figure 6: effective graph size after summarizer and 2-hop connector\n"
      "views (paper plots log-scale bars; printed as rows here).\n");
  Report("prov (blast-radius workload: keep Job/File, contract job-to-job)",
         "prov", kaskade::bench::BenchProvRaw(), {"Job", "File"}, "Job");
  Report("dblp (co-authorship workload: keep Author/Article, contract "
         "author-to-author)",
         "dblp", kaskade::bench::BenchDblpRaw(), {"Author", "Article"},
         "Author");
  return kaskade::bench::JsonReport::Finish();
}
