/// \file bench_micro.cc
/// \brief google-benchmark microbenchmarks for the individual Kaskade
/// components: inference, pattern matching, contraction, estimation,
/// knapsack. These track regressions in the substrate rather than
/// reproducing a paper figure.

#include <benchmark/benchmark.h>

#include "core/enumerator.h"
#include "core/knapsack.h"
#include "core/rules.h"
#include "core/size_estimator.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "graph/algorithms.h"
#include "graph/contraction.h"
#include "graph/csr.h"
#include "graph/stats.h"
#include "prolog/knowledge_base.h"
#include "prolog/solver.h"
#include "query/executor.h"
#include "query/parser.h"

namespace {

kaskade::graph::PropertyGraph& SmallProv() {
  static kaskade::graph::PropertyGraph graph = [] {
    kaskade::datasets::ProvOptions options;
    options.num_jobs = 300;
    options.num_files = 700;
    options.include_auxiliary = false;
    return kaskade::datasets::MakeProvenanceGraph(options);
  }();
  return graph;
}

void BM_PrologSchemaKHopPath(benchmark::State& state) {
  kaskade::prolog::KnowledgeBase kb;
  (void)kb.Consult(kaskade::core::SchemaConstraintRules());
  (void)kb.Consult(
      "schemaEdge('Job','File',w). schemaEdge('File','Job',r).");
  kaskade::prolog::Solver solver(&kb);
  for (auto _ : state) {
    auto result = solver.QueryAll("schemaKHopPath(X, Y, K).");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PrologSchemaKHopPath);

void BM_PrologFindallOverFacts(benchmark::State& state) {
  kaskade::prolog::KnowledgeBase kb;
  for (int i = 0; i < state.range(0); ++i) {
    (void)kb.AssertFact(
        "f", {kaskade::prolog::Term::MakeInt(i)});
  }
  kaskade::prolog::Solver solver(&kb);
  for (auto _ : state) {
    auto result = solver.QueryAll("findall(X, f(X), L), length(L, N).");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PrologFindallOverFacts)->Arg(64)->Arg(512);

void BM_ViewEnumerationBlastRadius(benchmark::State& state) {
  auto& graph = SmallProv();
  auto query = kaskade::query::ParseQueryText(
      kaskade::datasets::BlastRadiusQueryText());
  kaskade::core::ViewEnumerator enumerator(&graph.schema());
  for (auto _ : state) {
    auto candidates = enumerator.Enumerate(*query);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_ViewEnumerationBlastRadius);

void BM_FixedPatternMatch(benchmark::State& state) {
  auto& graph = SmallProv();
  kaskade::query::QueryExecutor executor(&graph);
  auto query = kaskade::query::ParseQueryText(
      "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) "
      "RETURN a, b");
  for (auto _ : state) {
    auto result = executor.Execute(*query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FixedPatternMatch);

void BM_VariableLengthMatch(benchmark::State& state) {
  auto& graph = SmallProv();
  kaskade::query::QueryExecutor executor(&graph);
  auto query = kaskade::query::ParseQueryText(
      kaskade::datasets::AncestorsQueryText("Job", state.range(0)));
  for (auto _ : state) {
    auto result = executor.Execute(*query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_VariableLengthMatch)->Arg(2)->Arg(4);

void BM_Contraction2Hop(benchmark::State& state) {
  auto& graph = SmallProv();
  kaskade::graph::VertexTypeId job =
      graph.schema().FindVertexType("Job");
  for (auto _ : state) {
    auto view = kaskade::graph::BuildKHopSameTypeConnector(graph, job, 2);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_Contraction2Hop);

void BM_SizeEstimation(benchmark::State& state) {
  auto& graph = SmallProv();
  kaskade::graph::GraphStats stats =
      kaskade::graph::GraphStats::Compute(graph);
  for (auto _ : state) {
    double estimate =
        kaskade::core::EstimateKPathCount(graph, stats, 2, 95);
    benchmark::DoNotOptimize(estimate);
  }
}
BENCHMARK(BM_SizeEstimation);

void BM_GraphStatsCompute(benchmark::State& state) {
  auto& graph = SmallProv();
  for (auto _ : state) {
    auto stats = kaskade::graph::GraphStats::Compute(graph);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_GraphStatsCompute);

void BM_KnapsackBranchAndBound(benchmark::State& state) {
  std::vector<kaskade::core::KnapsackItem> items;
  uint64_t x = 42;
  for (int i = 0; i < state.range(0); ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    items.push_back(kaskade::core::KnapsackItem{
        static_cast<double>(1 + (x >> 33) % 100),
        static_cast<double>(1 + (x >> 13) % 50)});
  }
  for (auto _ : state) {
    auto result = kaskade::core::SolveKnapsackBranchAndBound(
        items, state.range(0) * 10.0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KnapsackBranchAndBound)->Arg(16)->Arg(64);

void BM_LabelPropagation(benchmark::State& state) {
  auto& graph = SmallProv();
  for (auto _ : state) {
    auto communities = kaskade::graph::LabelPropagation(graph, 5);
    benchmark::DoNotOptimize(communities);
  }
}
BENCHMARK(BM_LabelPropagation);

void BM_CsrBuild(benchmark::State& state) {
  auto& graph = SmallProv();
  for (auto _ : state) {
    auto csr = kaskade::graph::CsrGraph::Build(graph);
    benchmark::DoNotOptimize(csr);
  }
}
BENCHMARK(BM_CsrBuild);

void BM_AdjacencyBfs(benchmark::State& state) {
  auto& graph = SmallProv();
  kaskade::graph::TraversalOptions options;
  options.max_hops = 4;
  for (auto _ : state) {
    size_t total = 0;
    for (kaskade::graph::VertexId v = 0; v < graph.NumVertices(); v += 10) {
      total += kaskade::graph::CountReachable(graph, v, options);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AdjacencyBfs);

void BM_CsrBfs(benchmark::State& state) {
  auto& graph = SmallProv();
  static kaskade::graph::CsrGraph csr = kaskade::graph::CsrGraph::Build(graph);
  for (auto _ : state) {
    size_t total = 0;
    for (kaskade::graph::VertexId v = 0; v < csr.NumVertices(); v += 10) {
      total += kaskade::graph::CsrCountReachable(csr, v, 4);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CsrBfs);

void BM_CsrLabelPropagation(benchmark::State& state) {
  auto& graph = SmallProv();
  static kaskade::graph::CsrGraph csr = kaskade::graph::CsrGraph::Build(graph);
  for (auto _ : state) {
    auto labels = kaskade::graph::CsrLabelPropagation(csr, 5);
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_CsrLabelPropagation);

}  // namespace

BENCHMARK_MAIN();
