/// \file view_selection.cpp
/// \brief The workload analyzer in detail (§V-B): score candidate views
/// for a mixed workload and watch the knapsack's choices change as the
/// space budget shrinks.
///
/// Build & run:  cmake --build build && ./build/examples/view_selection

#include <cstdio>

#include "core/view_selector.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "query/parser.h"

int main() {
  kaskade::datasets::ProvOptions options;
  options.num_jobs = 400;
  options.num_files = 900;
  options.include_auxiliary = false;
  kaskade::graph::PropertyGraph graph =
      kaskade::datasets::MakeProvenanceGraph(options);

  // A mixed workload: job-impact analytics (frequent), job ancestry
  // (occasional), and file-lineage exploration (frequent). Weights play
  // the paper's query-frequency role.
  struct WorkloadSpec {
    const char* description;
    std::string text;
    double weight;
  };
  std::vector<WorkloadSpec> specs = {
      {"job blast radius", kaskade::datasets::BlastRadiusQueryText(), 5.0},
      {"job ancestors", kaskade::datasets::AncestorsQueryText("Job", 4), 1.0},
      {"file lineage", "MATCH (a:File)-[r*2..4]->(b:File) RETURN a, b", 4.0},
  };

  std::vector<kaskade::core::WorkloadEntry> workload;
  std::printf("workload:\n");
  for (const auto& spec : specs) {
    std::printf("  [w=%.0f] %s\n", spec.weight, spec.description);
    auto q = kaskade::query::ParseQueryText(spec.text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return 1;
    }
    workload.push_back(
        kaskade::core::WorkloadEntry{std::move(*q), spec.weight});
  }

  for (double budget : {1e6, 1.5e5, 5e4}) {
    kaskade::core::SelectorOptions selector_options;
    selector_options.budget_edges = budget;
    kaskade::core::ViewSelector selector(&graph, selector_options);
    auto report = selector.Select(workload);
    if (!report.ok()) {
      std::printf("selection failed: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
    std::printf("\nbudget = %.0e edges: %zu candidates, %zu selected\n",
                budget, report->candidates.size(), report->selected.size());
    std::printf("  %-24s %12s %12s %10s %6s\n", "view", "est. size", "value",
                "improve", "qrys");
    for (const auto& c : report->candidates) {
      if (c.value <= 0) continue;  // only show views that serve the workload
      bool selected = false;
      for (const auto& s : report->selected) {
        if (s.definition.Name() == c.definition.Name()) selected = true;
      }
      std::printf("  %-24s %12.3g %12.3g %10.3g %6zu %s\n",
                  c.definition.Name().c_str(), c.estimated_size_edges,
                  c.value, c.improvement, c.applicable_queries,
                  selected ? "<= selected" : "");
    }
  }

  std::printf(
      "\nReading: with a generous budget both connectors are worth\n"
      "materializing; as it tightens, the knapsack keeps the view with\n"
      "the best improvement-per-edge for the weighted workload.\n");
  return 0;
}
