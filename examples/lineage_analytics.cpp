/// \file lineage_analytics.cpp
/// \brief Dependency-driven analytics over a provenance graph (§I-A):
/// the operational queries the paper's introduction motivates —
/// summarization for governance, reachability for impact analysis,
/// communities for workload insight, and a source-to-sink connector for
/// end-to-end dataflows.
///
/// Build & run:  cmake --build build && ./build/examples/lineage_analytics

#include <cstdio>

#include "core/materializer.h"
#include "datasets/generators.h"
#include "graph/algorithms.h"
#include "graph/contraction.h"
#include "graph/stats.h"

using kaskade::graph::PropertyGraph;
using kaskade::graph::VertexId;
using kaskade::graph::VertexTypeId;

int main() {
  // The full provenance graph, tasks and machines included.
  kaskade::datasets::ProvOptions options;
  options.num_jobs = 400;
  options.num_files = 1000;
  options.num_tasks = 2000;
  PropertyGraph raw = kaskade::datasets::MakeProvenanceGraph(options);
  std::printf("raw provenance graph: %zu vertices, %zu edges, %zu types\n",
              raw.NumVertices(), raw.NumEdges(),
              raw.schema().num_vertex_types());

  // --- Governance view: drop everything but the data-lineage core. ----
  kaskade::core::ViewDefinition filter;
  filter.kind = kaskade::core::ViewKind::kVertexInclusionSummarizer;
  filter.type_list = {"Job", "File"};
  auto filtered = kaskade::core::Materialize(raw, filter);
  if (!filtered.ok()) return 1;
  const PropertyGraph& lineage = filtered->graph;
  std::printf("lineage view:         %zu vertices, %zu edges (%.1fx smaller)\n",
              lineage.NumVertices(), lineage.NumEdges(),
              static_cast<double>(raw.NumEdges()) / lineage.NumEdges());

  // --- Impact analysis: how far does a job's influence reach? ----------
  VertexTypeId job_type = lineage.schema().FindVertexType("Job");
  std::vector<VertexId> jobs = lineage.VerticesOfType(job_type);
  kaskade::graph::TraversalOptions forward;
  forward.max_hops = 8;
  size_t widest_reach = 0;
  VertexId widest_job = 0;
  for (VertexId job : jobs) {
    size_t reach = kaskade::graph::CountReachable(lineage, job, forward);
    if (reach > widest_reach) {
      widest_reach = reach;
      widest_job = job;
    }
  }
  std::printf(
      "\nimpact analysis: job '%s' reaches %zu downstream vertices within 8 "
      "hops\n",
      lineage.VertexProperty(widest_job, "name").ToString().c_str(),
      widest_reach);

  // --- Data valuation: files by consumer count (in-degree centrality). -
  VertexTypeId file_type = lineage.schema().FindVertexType("File");
  VertexId hottest_file = 0;
  size_t most_readers = 0;
  for (VertexId v : lineage.VerticesOfType(file_type)) {
    if (lineage.OutDegree(v) > most_readers) {
      most_readers = lineage.OutDegree(v);
      hottest_file = v;
    }
  }
  std::printf("data valuation: '%s' feeds %zu jobs\n",
              lineage.VertexProperty(hottest_file, "path").ToString().c_str(),
              most_readers);

  // --- Workload insight: pipeline communities via label propagation. ---
  auto communities = kaskade::graph::LabelPropagation(lineage, 25);
  auto largest =
      kaskade::graph::LargestCommunity(lineage, communities, job_type);
  std::printf(
      "community detection: %zu communities after %d passes; the largest "
      "touches %zu vertices\n",
      communities.num_communities, communities.passes, largest.size());

  // --- End-to-end dataflows: source-to-sink connector. -----------------
  kaskade::graph::ContractionSpec spec;
  spec.k = 0;
  spec.max_hops = 12;
  spec.sources_and_sinks_only = true;
  spec.connector_edge_name = "FLOWS_TO";
  auto flows = kaskade::graph::ContractPaths(lineage, spec);
  if (!flows.ok()) return 1;
  std::printf(
      "source-to-sink connector: %zu end-to-end dataflows between %zu "
      "terminals\n",
      flows->view.NumEdges(), flows->view.NumVertices());

  // --- Capacity insight: degree distribution of the lineage core. ------
  auto dist = kaskade::graph::ComputeOutDegreeDistribution(lineage);
  std::printf(
      "degree distribution: power-law slope %.2f (r^2=%.2f) — plan for "
      "hotspots\n",
      dist.powerlaw_slope, dist.r_squared);
  return 0;
}
