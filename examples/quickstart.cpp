/// \file quickstart.cpp
/// \brief Kaskade in five minutes: build a property graph, let Kaskade
/// pick and materialize views for a workload, and run queries through
/// the optimizer.
///
/// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "graph/property_graph.h"

using kaskade::core::Engine;
using kaskade::graph::GraphSchema;
using kaskade::graph::PropertyGraph;
using kaskade::graph::PropertyValue;
using kaskade::graph::VertexId;

int main() {
  // 1. Declare a schema: vertex types plus edge types with their
  //    (domain -> range) connectivity constraints. These constraints are
  //    what Kaskade's constraint miner feeds to the inference engine.
  GraphSchema schema;
  schema.AddVertexType("Job");
  schema.AddVertexType("File");
  if (!schema.AddEdgeType("WRITES_TO", "Job", "File").ok()) return 1;
  if (!schema.AddEdgeType("IS_READ_BY", "File", "Job").ok()) return 1;

  // 2. Load a small data-lineage graph: a chain of jobs passing files.
  PropertyGraph graph(schema);
  std::vector<VertexId> jobs;
  std::vector<VertexId> files;
  for (int i = 0; i < 6; ++i) {
    kaskade::graph::PropertyMap props;
    props.Set("CPU", PropertyValue(10.0 * (i + 1)));
    props.Set("pipelineName", PropertyValue(i % 2 == 0 ? "etl" : "reporting"));
    jobs.push_back(graph.AddVertex("Job", std::move(props)).value());
  }
  for (int i = 0; i < 5; ++i) {
    files.push_back(graph.AddVertex("File").value());
  }
  for (int i = 0; i < 5; ++i) {
    // job[i] writes file[i]; file[i] is read by job[i+1].
    if (!graph.AddEdge(jobs[i], files[i], "WRITES_TO").ok()) return 1;
    if (!graph.AddEdge(files[i], jobs[i + 1], "IS_READ_BY").ok()) return 1;
  }
  std::printf("graph: %zu vertices, %zu edges\n", graph.NumVertices(),
              graph.NumEdges());

  // 3. Hand the graph to Kaskade and analyze a workload. The analyzer
  //    mines constraints, enumerates candidate views with the inference
  //    engine, scores them, solves the knapsack, and materializes the
  //    winners.
  Engine engine(std::move(graph));
  const std::string workload_query =
      "MATCH (a:Job)-[r*1..4]->(b:Job) RETURN a, b";
  auto report = engine.AnalyzeWorkload({workload_query});
  if (!report.ok()) {
    std::printf("workload analysis failed: %s\n",
                report.status().ToString().c_str());
    return 1;
  }
  std::printf("candidate views scored: %zu, materialized: %zu\n",
              report->candidates.size(), report->selected.size());
  for (const auto* entry : engine.catalog().Entries()) {
    std::printf("  materialized %s: %zu vertices, %zu edges\n",
                entry->name().c_str(), entry->view.graph.NumVertices(),
                entry->view.graph.NumEdges());
  }

  // 4. Execute a query. The rewriter picks the cheapest plan: here the
  //    4-hop job reachability runs as a 2-hop traversal of the
  //    2_HOP_JOB_TO_JOB connector view.
  auto result = engine.Execute(workload_query);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nplan: %s\n",
              result->used_view ? ("view " + result->view_name).c_str()
                                : "raw graph");
  std::printf("executed query: %s\n", result->executed_query.c_str());
  std::printf("results (%zu rows):\n%s", result->table.num_rows(),
              result->table.ToString().c_str());
  return 0;
}
