/// \file blast_radius.cpp
/// \brief The paper's running example (§I-A, Listings 1 and 4): the job
/// blast radius over a provenance graph, raw vs rewritten over the 2-hop
/// job-to-job connector, with timings and result verification.
///
/// Build & run:  cmake --build build && ./build/examples/blast_radius

#include <chrono>
#include <cstdio>
#include <functional>

#include "core/materializer.h"
#include "core/rewriter.h"
#include "datasets/generators.h"
#include "datasets/workloads.h"
#include "query/executor.h"
#include "query/parser.h"

using kaskade::graph::PropertyGraph;

namespace {

double Seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  // A summarized provenance graph (jobs + files), as in §VII-B.
  kaskade::datasets::ProvOptions options;
  options.num_jobs = 500;
  options.num_files = 1200;
  options.include_auxiliary = false;
  PropertyGraph graph = kaskade::datasets::MakeProvenanceGraph(options);
  std::printf("provenance graph: %zu vertices, %zu edges\n",
              graph.NumVertices(), graph.NumEdges());

  // Listing 1: rank pipelines by the average CPU consumed by downstream
  // consumers of their jobs, up to 10 hops away.
  std::string raw_text = kaskade::datasets::BlastRadiusQueryText();
  std::printf("\nListing 1 (over the raw lineage):\n%s\n\n", raw_text.c_str());

  // The rewriter turns it into Listing 4: a 1..5-hop traversal over the
  // 2-hop job-to-job connector (the exact contraction of raw hop range
  // 2..10; the paper's listing prints *1..4 — see EXPERIMENTS.md).
  kaskade::core::ViewDefinition connector;
  connector.kind = kaskade::core::ViewKind::kKHopConnector;
  connector.k = 2;
  connector.source_type = "Job";
  connector.target_type = "Job";

  auto query = kaskade::query::ParseQueryText(raw_text);
  if (!query.ok()) return 1;
  auto rewritten =
      kaskade::core::RewriteQueryWithView(*query, connector, graph.schema());
  if (!rewritten.ok()) {
    std::printf("rewrite failed: %s\n", rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("Listing 4 (rewritten over the connector):\n%s\n\n",
              rewritten->ToString().c_str());

  // Materialize the view (this is what the workload analyzer would do).
  auto t0 = std::chrono::steady_clock::now();
  auto materialized = kaskade::core::Materialize(graph, connector);
  double creation_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!materialized.ok()) {
    std::printf("materialization failed: %s\n",
                materialized.status().ToString().c_str());
    return 1;
  }
  const kaskade::core::MaterializedView& view = *materialized;
  std::printf("materialized %s: %zu vertices, %zu edges (%.3fs)\n",
              connector.Name().c_str(), view.graph.NumVertices(),
              view.graph.NumEdges(), creation_seconds);

  // Run both plans and compare.
  kaskade::query::QueryExecutor raw_executor(&graph);
  kaskade::query::QueryExecutor view_executor(&view.graph);
  kaskade::query::Table raw_table;
  kaskade::query::Table view_table;
  double raw_seconds = Seconds([&] {
    auto r = raw_executor.Execute(*query);
    if (r.ok()) raw_table = std::move(*r);
  });
  double view_seconds = Seconds([&] {
    auto r = view_executor.Execute(*rewritten);
    if (r.ok()) view_table = std::move(*r);
  });

  std::printf("\nraw plan:  %.3fs (%zu pipelines)\n", raw_seconds,
              raw_table.num_rows());
  std::printf("view plan: %.3fs (%zu pipelines)  -> %.1fx speedup\n",
              view_seconds, view_table.num_rows(),
              view_seconds > 0 ? raw_seconds / view_seconds : 0.0);

  // Verify the rewrite returned identical aggregates.
  auto raw_rows = raw_table.SortedRows();
  auto view_rows = view_table.SortedRows();
  bool equal = raw_rows.size() == view_rows.size();
  for (size_t i = 0; equal && i < raw_rows.size(); ++i) {
    equal = raw_rows[i][0] == view_rows[i][0] &&
            std::abs(raw_rows[i][1].ToDouble() - view_rows[i][1].ToDouble()) <
                1e-6;
  }
  std::printf("results identical: %s\n", equal ? "yes" : "NO (bug!)");

  std::printf("\ntop pipelines by blast radius:\n%s",
              view_table.ToString(8).c_str());
  return equal ? 0 : 1;
}
