/// \file kaskade_shell.cpp
/// \brief A small interactive shell over the Kaskade engine: generate or
/// load a graph, analyze workloads, run queries (with EXPLAIN), inspect
/// the view catalog, and save graphs to disk.
///
/// Usage:  ./build/examples/kaskade_shell
/// Commands (also: pipe a script into stdin):
///   gen prov|dblp|social|road     build a synthetic dataset
///   load <path> / save <path>     graph serialization
///   open <dir>                    durable engine: recover, or persist the
///                                 loaded graph into <dir>
///   checkpoint                    write a checkpoint + truncate the WAL
///   wal                           durability telemetry (WAL, checkpoints)
///   analyze <query>               workload analyzer: select+materialize
///   q <query>                     execute through the rewriter
///   explain <query>               show the raw-graph plan
///   deadline <ms>|off             deadline for subsequent q/batch calls
///   views                         list the view catalog (with state)
///   workload                      observed-workload tracker snapshot
///   telemetry                     engine counters (incl. overload)
///   advise                        dry-run advice from the observed workload
///   adapt                         apply advice (background builds) + wait
///   stats                         base-graph statistics
///   help / quit

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"
#include "datasets/generators.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "graph/serialization.h"
#include "graph/stats.h"
#include "query/explain.h"
#include "query/parser.h"

namespace {

using kaskade::core::Engine;
using kaskade::graph::PropertyGraph;

std::unique_ptr<Engine> MakeEngine(PropertyGraph graph) {
  std::printf("graph ready: %zu vertices, %zu edges, %zu vertex types\n",
              graph.NumVertices(), graph.NumEdges(),
              graph.schema().num_vertex_types());
  return std::make_unique<Engine>(std::move(graph));
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  gen prov|dblp|social|road   build a synthetic dataset\n"
      "  load <path>                 load a serialized graph\n"
      "  save <path>                 save the base graph\n"
      "  open <dir>                  durable engine: recover from <dir>, or\n"
      "                              persist the loaded graph into it\n"
      "  checkpoint                  checkpoint now + truncate the WAL\n"
      "  wal                         durability telemetry (WAL, "
      "checkpoints)\n"
      "  analyze <query>             select + materialize views for a "
      "query\n"
      "  q <query>                   execute (rewriter picks the plan)\n"
      "  batch <q1> ; <q2> ; ...     execute queries concurrently\n"
      "  explain <query>             show the raw-graph plan\n"
      "  deadline <ms>|off           set/clear the deadline for q and "
      "batch\n"
      "  views                       list materialized views (with state)\n"
      "  workload                    observed queries (the tracker)\n"
      "  telemetry                   engine counters (cache, overload, "
      "faults)\n"
      "  advise                      dry-run view advice for the observed "
      "workload\n"
      "  adapt                       apply advice: drop now, build in "
      "background\n"
      "  stats                       base graph statistics\n"
      "  help | quit\n");
}

}  // namespace

int main() {
  std::unique_ptr<Engine> engine;
  // Deadline budget for q/batch; zero means no deadline. Each call
  // anchors a fresh absolute deadline at its own arrival.
  std::chrono::milliseconds deadline_budget{0};
  auto call_options = [&deadline_budget] {
    kaskade::core::CallOptions call;
    if (deadline_budget.count() > 0) {
      call.deadline = std::chrono::steady_clock::now() + deadline_budget;
    }
    return call;
  };
  PrintHelp();
  std::string line;
  std::printf("kaskade> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(kaskade::TrimWhitespace(line));
    std::string command = trimmed.substr(0, trimmed.find(' '));
    std::string rest(kaskade::TrimWhitespace(
        trimmed.size() > command.size() ? trimmed.substr(command.size())
                                        : ""));
    if (command == "quit" || command == "exit") break;
    if (command.empty()) {
      // fallthrough to prompt
    } else if (command == "help") {
      PrintHelp();
    } else if (command == "gen") {
      if (rest == "prov") {
        engine = MakeEngine(kaskade::datasets::MakeProvenanceGraph(
            {.num_jobs = 400, .num_files = 1000}));
      } else if (rest == "dblp") {
        engine = MakeEngine(kaskade::datasets::MakeDblpGraph(
            {.num_authors = 600, .num_articles = 1200}));
      } else if (rest == "social") {
        engine = MakeEngine(
            kaskade::datasets::MakeSocialGraph({.num_vertices = 1000}));
      } else if (rest == "road") {
        engine = MakeEngine(
            kaskade::datasets::MakeRoadGraph({.width = 30, .height = 30}));
      } else {
        std::printf("unknown dataset '%s'\n", rest.c_str());
      }
    } else if (command == "load") {
      std::ifstream in(rest);
      if (!in) {
        std::printf("cannot open '%s'\n", rest.c_str());
      } else {
        auto graph = kaskade::graph::LoadGraph(&in);
        if (!graph.ok()) {
          std::printf("load failed: %s\n", graph.status().ToString().c_str());
        } else {
          engine = MakeEngine(std::move(*graph));
        }
      }
    } else if (command == "open") {
      if (rest.empty()) {
        std::printf("usage: open <dir>\n");
      } else if (!kaskade::durability::ListCheckpoints(rest).empty()) {
        // The directory holds durable state: recover it.
        kaskade::core::RecoveryReport recovery;
        auto opened = Engine::Open(rest, {}, &recovery);
        if (!opened.ok()) {
          std::printf("recovery failed: %s\n",
                      opened.status().ToString().c_str());
        } else {
          engine = std::move(opened).value();
          std::printf(
              "recovered from %s: checkpoint lsn %llu, %llu WAL records "
              "replayed (last lsn %llu), %zu views rematerialized\n",
              rest.c_str(),
              static_cast<unsigned long long>(recovery.checkpoint_lsn),
              static_cast<unsigned long long>(recovery.records_replayed),
              static_cast<unsigned long long>(recovery.last_lsn),
              recovery.views_rematerialized);
          for (const auto& note : recovery.notes) {
            std::printf("  note: %s\n", note.c_str());
          }
          std::printf("graph: %zu vertices, %zu edges\n",
                      engine->base_graph().NumVertices(),
                      engine->base_graph().NumEdges());
        }
      } else if (engine == nullptr) {
        std::printf("no durable state in '%s' and no graph loaded; "
                    "gen/load first, then 'open <dir>' to persist it\n",
                    rest.c_str());
      } else {
        // Fresh durable directory seeded from the current base graph.
        kaskade::core::EngineOptions options;
        options.durability.dir = rest;
        auto durable =
            std::make_unique<Engine>(engine->base_graph(), options);
        if (!durable->durability_error().ok()) {
          std::printf("cannot persist into '%s': %s\n", rest.c_str(),
                      durable->durability_error().ToString().c_str());
        } else {
          engine = std::move(durable);
          std::printf("engine now durable in %s (policy %s)\n", rest.c_str(),
                      kaskade::durability::FsyncPolicyName(
                          options.durability.fsync_policy));
        }
      }
    } else if (command == "deadline") {
      if (rest == "off" || rest == "0") {
        deadline_budget = std::chrono::milliseconds{0};
        std::printf("deadline off\n");
      } else if (rest.empty()) {
        if (deadline_budget.count() > 0) {
          std::printf("deadline %lld ms\n",
                      static_cast<long long>(deadline_budget.count()));
        } else {
          std::printf("deadline off\n");
        }
      } else {
        char* end = nullptr;
        long value = std::strtol(rest.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || value <= 0) {
          std::printf("usage: deadline <ms>|off\n");
        } else {
          deadline_budget = std::chrono::milliseconds{value};
          std::printf("deadline %ld ms (applies to q and batch)\n", value);
        }
      }
    } else if (engine == nullptr) {
      std::printf("no graph loaded; use 'gen' or 'load' first\n");
    } else if (command == "save") {
      std::ofstream out(rest);
      kaskade::Status st = out
                               ? kaskade::graph::SaveGraph(
                                     engine->base_graph(), &out)
                               : kaskade::Status::InvalidArgument(
                                     "cannot open '" + rest + "'");
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else if (command == "analyze") {
      auto report = engine->AnalyzeWorkload({rest});
      if (!report.ok()) {
        std::printf("error: %s\n", report.status().ToString().c_str());
      } else {
        std::printf("%zu candidates, %zu selected+materialized\n",
                    report->candidates.size(), report->selected.size());
        for (const auto& view : report->selected) {
          std::printf("  %s (est. %.3g edges)\n",
                      view.definition.Name().c_str(),
                      view.estimated_size_edges);
        }
      }
    } else if (command == "q") {
      auto result = engine->Execute(rest, call_options());
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("plan: %s\n",
                    result->used_view
                        ? ("view " + result->view_name).c_str()
                        : "raw graph");
        std::printf("%s", result->table.ToString(10).c_str());
      }
    } else if (command == "batch") {
      std::vector<std::string> texts;
      std::stringstream stream(rest);
      std::string piece;
      while (std::getline(stream, piece, ';')) {
        std::string query(kaskade::TrimWhitespace(piece));
        if (!query.empty()) texts.push_back(std::move(query));
      }
      if (texts.empty()) {
        std::printf("usage: batch <q1> ; <q2> ; ...\n");
      } else {
        auto results = engine->ExecuteBatch(texts, call_options());
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok()) {
            std::printf("[%zu] error: %s\n", i,
                        results[i].status().ToString().c_str());
          } else {
            std::printf("[%zu] plan: %s, %zu rows\n", i,
                        results[i]->used_view
                            ? ("view " + results[i]->view_name).c_str()
                            : "raw graph",
                        results[i]->table.num_rows());
          }
        }
      }
    } else if (command == "explain") {
      auto query = kaskade::query::ParseQueryText(rest);
      if (!query.ok()) {
        std::printf("error: %s\n", query.status().ToString().c_str());
      } else {
        auto stats = kaskade::graph::GraphStats::Compute(engine->base_graph());
        std::printf("%s", kaskade::query::ExplainQuery(
                              *query, engine->base_graph(), stats)
                              .c_str());
      }
    } else if (command == "views") {
      std::printf("catalog generation %llu\n",
                  static_cast<unsigned long long>(
                      engine->catalog().generation()));
      if (engine->catalog().empty()) std::printf("(no views)\n");
      for (const auto* entry : engine->catalog().Entries()) {
        std::printf("  %-28s [%s] |V|=%zu |E|=%zu\n", entry->name().c_str(),
                    kaskade::core::ViewStateName(entry->state),
                    entry->view.graph.NumVertices(),
                    entry->view.graph.NumEdges());
        if (!entry->health.ok()) {
          std::printf("    quarantined: %s\n",
                      entry->health.ToString().c_str());
        }
      }
      auto telemetry = engine->TelemetrySnapshot();
      if (telemetry.views_quarantined > 0 ||
          telemetry.quarantine_events > 0) {
        std::printf("%zu quarantined now, %zu quarantine events total "
                    "(re-add the definition to reclaim)\n",
                    telemetry.views_quarantined,
                    telemetry.quarantine_events);
      }
    } else if (command == "telemetry") {
      auto t = engine->TelemetrySnapshot();
      std::printf("catalog generation %llu, %zu views ready, "
                  "%zu quarantined\n",
                  static_cast<unsigned long long>(t.catalog_generation),
                  t.views_ready, t.views_quarantined);
      std::printf("plan cache: %zu hits, %zu misses\n", t.plan_cache_hits,
                  t.plan_cache_misses);
      std::printf("snapshots: %zu hits, %zu patches, %zu full builds, "
                  "%zu build failures\n",
                  t.snapshot_hits, t.snapshot_patches,
                  t.snapshot_full_builds, t.snapshot_build_failures);
      std::printf("builds: %zu completed, %zu replayed, %zu pending\n",
                  t.builds_completed, t.builds_replayed, t.builds_pending);
      std::printf("overload: %zu shed, %zu timed out, %llu deadline "
                  "checks, %zu quarantine events, %zu batch-worker "
                  "faults\n",
                  t.queries_shed, t.queries_timed_out,
                  static_cast<unsigned long long>(t.deadline_checks),
                  t.quarantine_events, t.batch_worker_faults);
    } else if (command == "workload") {
      auto snapshot = engine->workload().Snapshot();
      std::printf("%zu distinct queries, %llu executions observed\n",
                  snapshot.entries.size(),
                  static_cast<unsigned long long>(snapshot.total_executions));
      for (const auto& obs : snapshot.entries) {
        std::printf("  %5llu x  %8.0fus avg  %5llu view hits  %s\n",
                    static_cast<unsigned long long>(obs.executions),
                    obs.mean_latency_us(),
                    static_cast<unsigned long long>(obs.view_hits),
                    obs.query_text.c_str());
      }
    } else if (command == "advise" || command == "adapt") {
      auto plan = engine->Advise();
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("advice over %zu observed queries: %zu creations, "
                    "%zu drops\n",
                    plan->observed_queries, plan->create.size(),
                    plan->drop.size());
        for (const auto& def : plan->create) {
          std::printf("  + %s\n", def.Name().c_str());
        }
        for (const auto& name : plan->drop) {
          std::printf("  - %s\n", name.c_str());
        }
        if (command == "adapt") {
          auto report = engine->ApplyAdvice(*plan);
          if (!report.ok()) {
            std::printf("error: %s\n", report.status().ToString().c_str());
          } else {
            engine->WaitForBuilds();
            // Drain every failure, not just the oldest, so stale
            // errors never bleed into the next round's report.
            bool failed = false;
            for (auto error = engine->TakeBuildError(); !error.ok();
                 error = engine->TakeBuildError()) {
              std::printf("build failed: %s\n", error.ToString().c_str());
              failed = true;
            }
            if (!failed) {
              std::printf("applied: %zu dropped, %zu built in background\n",
                          report->views_dropped, report->builds_scheduled);
            }
          }
        }
      }
    } else if (command == "checkpoint") {
      auto lsn = engine->Checkpoint();
      if (!lsn.ok()) {
        std::printf("checkpoint failed: %s\n", lsn.status().ToString().c_str());
      } else {
        std::printf("checkpoint written at lsn %llu; WAL truncated below it\n",
                    static_cast<unsigned long long>(lsn.value()));
      }
    } else if (command == "wal") {
      if (engine->wal() == nullptr) {
        std::printf("durability off (use 'open <dir>')\n");
      } else {
        auto t = engine->TelemetrySnapshot();
        std::printf("wal: %llu appends, %llu bytes, %llu fsyncs, "
                    "%llu group-commit batches\n",
                    static_cast<unsigned long long>(t.wal_appends),
                    static_cast<unsigned long long>(t.wal_bytes),
                    static_cast<unsigned long long>(t.wal_fsyncs),
                    static_cast<unsigned long long>(t.group_commit_batches));
        std::printf("checkpoints: %zu written, %zu failed\n",
                    t.checkpoints_written, t.checkpoint_failures);
        std::printf("segment %s: %llu bytes appended, %llu durable\n",
                    engine->wal()->current_segment_path().c_str(),
                    static_cast<unsigned long long>(
                        engine->wal()->end_offset()),
                    static_cast<unsigned long long>(
                        engine->wal()->durable_offset()));
        if (!engine->durability_error().ok()) {
          std::printf("DURABILITY ERROR (engine read-only): %s\n",
                      engine->durability_error().ToString().c_str());
        }
      }
    } else if (command == "stats") {
      auto stats = kaskade::graph::GraphStats::Compute(engine->base_graph());
      std::printf("|V|=%zu |E|=%zu\n", stats.num_vertices(),
                  stats.num_edges());
      for (const auto& summary : stats.per_type()) {
        std::printf("  %-14s n=%-8zu out-deg p50=%.0f p95=%.0f max=%.0f\n",
                    summary.type_name.c_str(), summary.vertex_count,
                    summary.p50, summary.p95, summary.p100);
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
    std::printf("kaskade> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
