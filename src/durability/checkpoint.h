/// \file checkpoint.h
/// \brief Versioned, checksummed snapshots of the engine's durable state.
///
/// A checkpoint captures everything recovery needs that the WAL tail
/// does not: the base graph as of some LSN (tombstones preserved, so the
/// WAL tail's pre-delta edge ids stay meaningful) and the catalog's view
/// definitions. View *contents* are deliberately not persisted — they
/// are re-materialized from their definitions on recovery, keeping
/// checkpoints O(|base graph|).
///
/// File format (`checkpoint-<lsn 16hex>.ckpt`):
///
/// ```
/// kaskade-checkpoint 1
/// lsn <n>
/// graph <line-count>
/// <embedded `kaskade-graph 2` text, tombstones preserved>
/// views <count>
/// <one ViewDefinition::ToRecord line per view>
/// end <crc32c of all previous lines, 8hex>
/// ```
///
/// Writes are atomic: the file is written and fsynced under a `.tmp`
/// name, renamed into place, and the directory fsynced — a crash leaves
/// either the old checkpoint set or the new one, never a half-written
/// file with a valid name. Loading verifies the trailing CRC before
/// parsing anything, and falls back to the next-older checkpoint when a
/// file is corrupt.

#ifndef KASKADE_DURABILITY_CHECKPOINT_H_
#define KASKADE_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/fault.h"
#include "core/view_definition.h"
#include "graph/property_graph.h"

namespace kaskade::durability {

/// \brief A loaded checkpoint: the durable state as of `lsn`.
struct CheckpointState {
  /// LSN of the last mutation reflected in `graph`; WAL replay resumes
  /// at `lsn + 1`.
  uint64_t lsn = 0;
  graph::PropertyGraph graph{graph::GraphSchema{}};
  std::vector<core::ViewDefinition> views;
  /// Per-file notes about corrupt checkpoints that were skipped on the
  /// way to this one (empty when the newest file was valid).
  std::vector<std::string> skipped_corrupt;
};

/// Writes `checkpoint-<lsn>.ckpt` atomically into `dir`. Fires the
/// `kCheckpointWrite` fault site first; on failure nothing is left
/// behind but a removed tmp file.
Status WriteCheckpoint(const std::string& dir, const graph::PropertyGraph& g,
                       const std::vector<core::ViewDefinition>& views,
                       uint64_t lsn, const core::FaultHooks& hooks);

/// Loads the newest valid checkpoint in `dir`, skipping (and noting)
/// corrupt ones. Fails with `kNotFound` when no checkpoint file exists
/// and `kDataLoss` when files exist but none passes validation.
Result<CheckpointState> LoadNewestCheckpoint(const std::string& dir);

/// Lists the LSNs of all checkpoint files in `dir`, newest first.
std::vector<uint64_t> ListCheckpoints(const std::string& dir);

/// Atomically persists the catalog's current view-definition set to
/// `dir`'s `views.cat` sidecar (same tmp/rename/fsync protocol as a
/// checkpoint). The sidecar — not the checkpoint — is the authoritative
/// durable record of which views exist: it is rewritten on every
/// add/remove, so a view added after the last checkpoint survives a
/// crash; checkpoints embed a copy only as a fallback for directories
/// that predate the sidecar.
Status WriteViewSet(const std::string& dir,
                    const std::vector<core::ViewDefinition>& views);

/// Loads the view-definition sidecar. `kNotFound` when the file does
/// not exist, `kDataLoss` when it fails checksum or parse validation.
Result<std::vector<core::ViewDefinition>> LoadViewSet(const std::string& dir);

}  // namespace kaskade::durability

#endif  // KASKADE_DURABILITY_CHECKPOINT_H_
