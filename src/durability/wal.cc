#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/crc32c.h"

namespace kaskade::durability {

namespace fs = std::filesystem;

namespace {

/// Frame header: [u32 payload-length][u32 crc][u64 lsn], little-endian.
constexpr size_t kHeaderBytes = 16;
/// Sanity bound on a single record; anything larger is treated as a
/// corrupt length field rather than an allocation request.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v);
  out[1] = static_cast<char>(v >> 8);
  out[2] = static_cast<char>(v >> 16);
  out[3] = static_cast<char>(v >> 24);
}

void PutU64(char* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* in) {
  const auto* p = reinterpret_cast<const unsigned char*>(in);
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const char* in) {
  return static_cast<uint64_t>(GetU32(in)) |
         static_cast<uint64_t>(GetU32(in + 4)) << 32;
}

/// CRC over the (lsn, payload) pair — covers the sequence number so a
/// record can't be silently replayed under the wrong LSN.
uint32_t RecordCrc(uint64_t lsn, std::string_view payload) {
  char lsn_bytes[8];
  PutU64(lsn_bytes, lsn);
  uint32_t crc = Crc32cExtend(0, lsn_bytes, sizeof(lsn_bytes));
  return Crc32cExtend(crc, payload.data(), payload.size());
}

std::string SegmentName(uint64_t first_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

struct SegmentFile {
  uint64_t first_lsn;
  std::string path;
};

/// The directory's segment files, sorted by first LSN.
Result<std::vector<SegmentFile>> ListSegments(const std::string& dir) {
  std::vector<SegmentFile> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    unsigned long long first = 0;
    if (std::sscanf(name.c_str(), "wal-%16llx.log", &first) == 1 &&
        name == SegmentName(first)) {
      segments.push_back({first, entry.path().string()});
    }
  }
  if (ec) {
    return Status::Internal("cannot list WAL dir " + dir + ": " +
                            ec.message());
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir " + dir);
  return Status::OK();
}

Status WriteFully(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("WAL write");
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kEveryWrite:
      return "every_write";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "every_write") return FsyncPolicy::kEveryWrite;
  return Status::InvalidArgument("unknown fsync policy '" + name +
                                 "' (want none|batch|every_write)");
}

WriteAheadLog::WriteAheadLog(std::string dir, uint64_t next_lsn,
                             WalOptions options)
    : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(std::string dir,
                                                           uint64_t next_lsn,
                                                           WalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL dir " + dir + ": " +
                            ec.message());
  }
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(std::move(dir), next_lsn, options));
  KASKADE_RETURN_IF_ERROR(wal->OpenSegment(next_lsn));
  if (options.fsync_policy == FsyncPolicy::kBatch) {
    wal->flusher_ = std::thread([raw = wal.get()] { raw->FlusherLoop(); });
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> io(io_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (options_.fsync_policy != FsyncPolicy::kNone && io_error_.ok() &&
        end_ > durable_) {
      ::fsync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteAheadLog::OpenSegment(uint64_t first_lsn) {
  std::string path = dir_ + "/" + SegmentName(first_lsn);
  // O_APPEND (not O_TRUNC): after recovery truncated a torn tail in
  // place, the same segment may be re-opened and must keep its surviving
  // records.
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open WAL segment " + path);
  KASKADE_RETURN_IF_ERROR(SyncDir(dir_));
  std::lock_guard<std::mutex> lock(mu_);
  fd_ = fd;
  segment_path_ = path;
  segment_start_ = end_;
  return Status::OK();
}

Result<WriteAheadLog::AppendToken> WriteAheadLog::Append(
    std::string_view payload) {
  KASKADE_RETURN_IF_ERROR(
      options_.fault_hooks.Fire(core::FaultSite::kWalAppend, dir_));
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL record too large");
  }

  uint64_t lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string frame(kHeaderBytes, '\0');
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, RecordCrc(lsn, payload));
  PutU64(frame.data() + 8, lsn);
  frame.append(payload.data(), payload.size());

  AppendToken token;
  bool rotate = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!io_error_.ok()) return io_error_;
    Status written = WriteFully(fd_, frame.data(), frame.size());
    if (!written.ok()) {
      io_error_ = written;
      durable_cv_.notify_all();
      return written;
    }
    end_ += frame.size();
    token = {lsn, end_};
    rotate = end_ - segment_start_ >= options_.segment_bytes;
    if (options_.fsync_policy == FsyncPolicy::kBatch) {
      flusher_has_work_ = true;
    }
  }
  next_lsn_.store(lsn + 1, std::memory_order_relaxed);
  appends_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (options_.fsync_policy == FsyncPolicy::kBatch) flush_cv_.notify_one();

  if (rotate) {
    // Seal the old segment: everything in it becomes durable before the
    // new file takes over, so TruncateBelow can delete whole segments
    // without a durability check.
    std::lock_guard<std::mutex> io(io_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    int old_fd = fd_;
    uint64_t sealed_end = end_;
    lock.unlock();
    if (::fsync(old_fd) != 0) {
      Status failed = ErrnoStatus("fsync WAL segment");
      lock.lock();
      io_error_ = failed;
      durable_cv_.notify_all();
      return failed;
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    ::close(old_fd);
    lock.lock();
    fd_ = -1;
    durable_ = std::max(durable_, sealed_end);
    lock.unlock();
    durable_cv_.notify_all();
    KASKADE_RETURN_IF_ERROR(OpenSegment(lsn + 1));
  }
  return token;
}

Status WriteAheadLog::FlushToDisk(uint64_t target_end) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!io_error_.ok()) return io_error_;
    if (durable_ >= target_end) return Status::OK();
  }
  // The fault site fires outside every lock so a blocking hook stalls
  // only durability, never appends (crash tests rely on this to pin the
  // durable position while acknowledged-in-memory writes accumulate).
  Status hook = options_.fault_hooks.Fire(core::FaultSite::kWalFsync, dir_);

  std::lock_guard<std::mutex> io(io_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (!io_error_.ok()) return io_error_;
  if (durable_ >= target_end) return Status::OK();
  Status failed = hook;
  uint64_t covered = end_;
  if (failed.ok()) {
    int fd = fd_;
    lock.unlock();
    if (::fsync(fd) != 0) failed = ErrnoStatus("fsync WAL segment");
    lock.lock();
  }
  if (!failed.ok()) {
    io_error_ = failed;
    lock.unlock();
    durable_cv_.notify_all();
    return failed;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  durable_ = std::max(durable_, covered);
  lock.unlock();
  durable_cv_.notify_all();
  return Status::OK();
}

void WriteAheadLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    flush_cv_.wait_for(lock, options_.flush_interval,
                       [&] { return stop_ || flusher_has_work_; });
    if (stop_) break;
    flusher_has_work_ = false;
    if (!io_error_.ok() || end_ <= durable_) continue;
    uint64_t target = end_;
    lock.unlock();
    Status flushed = FlushToDisk(target);
    if (flushed.ok()) batches_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

Status WriteAheadLog::WaitDurable(const AppendToken& token) {
  switch (options_.fsync_policy) {
    case FsyncPolicy::kNone:
      return Status::OK();
    case FsyncPolicy::kEveryWrite:
      return FlushToDisk(token.end);
    case FsyncPolicy::kBatch: {
      std::unique_lock<std::mutex> lock(mu_);
      durable_cv_.wait(lock, [&] {
        return durable_ >= token.end || !io_error_.ok() || stop_;
      });
      if (durable_ >= token.end) return Status::OK();
      if (!io_error_.ok()) return io_error_;
      return Status::Unavailable("WAL shut down before flush");
    }
  }
  return Status::Internal("bad fsync policy");
}

Status WriteAheadLog::Sync() {
  uint64_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = end_;
  }
  return FlushToDisk(target);
}

Status WriteAheadLog::TruncateBelow(uint64_t lsn) {
  KASKADE_ASSIGN_OR_RETURN(std::vector<SegmentFile> segments,
                           ListSegments(dir_));
  std::string active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = segment_path_;
  }
  bool removed = false;
  // A segment covers [its first LSN, next segment's first LSN): it is
  // redundant only when the NEXT segment already starts at or below the
  // cutoff.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first_lsn > lsn) break;
    if (segments[i].path == active) continue;
    std::error_code ec;
    fs::remove(segments[i].path, ec);
    if (ec) {
      return Status::Internal("cannot remove WAL segment " +
                              segments[i].path + ": " + ec.message());
    }
    removed = true;
  }
  if (removed) KASKADE_RETURN_IF_ERROR(SyncDir(dir_));
  return Status::OK();
}

uint64_t WriteAheadLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_;
}

uint64_t WriteAheadLog::durable_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_;
}

std::string WriteAheadLog::current_segment_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_path_;
}

WalTelemetry WriteAheadLog::telemetry() const {
  WalTelemetry t;
  t.appends = appends_.load(std::memory_order_relaxed);
  t.bytes = bytes_.load(std::memory_order_relaxed);
  t.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  t.batches = batches_.load(std::memory_order_relaxed);
  return t;
}

Result<ReplayReport> WriteAheadLog::Replay(
    const std::string& dir, uint64_t start_lsn,
    const std::function<Status(uint64_t lsn, const std::string& payload)>&
        apply) {
  ReplayReport report;
  if (!fs::exists(dir)) return report;
  KASKADE_ASSIGN_OR_RETURN(std::vector<SegmentFile> segments,
                           ListSegments(dir));

  bool corrupt = false;
  uint64_t expected_lsn = 0;  // 0 = accept whatever the log starts with.
  for (size_t seg = 0; seg < segments.size() && !corrupt; ++seg) {
    const SegmentFile& segment = segments[seg];
    std::ifstream in(segment.path, std::ios::binary);
    if (!in) {
      return Status::Internal("cannot read WAL segment " + segment.path);
    }
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    size_t offset = 0;
    std::string why;
    while (offset < data.size()) {
      if (offset + kHeaderBytes > data.size()) {
        why = "partial frame header";
        break;
      }
      uint32_t length = GetU32(data.data() + offset);
      uint32_t crc = GetU32(data.data() + offset + 4);
      uint64_t lsn = GetU64(data.data() + offset + 8);
      if (length > kMaxPayloadBytes) {
        why = "implausible record length";
        break;
      }
      if (offset + kHeaderBytes + length > data.size()) {
        why = "torn record (length past end of file)";
        break;
      }
      std::string payload = data.substr(offset + kHeaderBytes, length);
      if (RecordCrc(lsn, payload) != crc) {
        why = "checksum mismatch";
        break;
      }
      if (expected_lsn != 0 && lsn != expected_lsn) {
        why = "sequence break (expected lsn " + std::to_string(expected_lsn) +
              ", found " + std::to_string(lsn) + ")";
        break;
      }
      expected_lsn = lsn + 1;
      report.last_lsn = lsn;
      offset += kHeaderBytes + length;
      if (lsn >= start_lsn) {
        if (report.records == 0) report.first_lsn = lsn;
        KASKADE_RETURN_IF_ERROR(apply(lsn, payload));
        ++report.records;
      }
    }
    if (offset < data.size()) {
      // Invalid record: cut the tail here and drop every later segment —
      // nothing past a corruption point can be trusted to be in
      // sequence.
      corrupt = true;
      report.data_loss_note = "WAL " + segment.path + " @" +
                              std::to_string(offset) + ": " + why +
                              "; truncated torn tail";
      report.truncated_bytes += data.size() - offset;
      std::error_code ec;
      fs::resize_file(segment.path, offset, ec);
      if (ec) {
        return Status::Internal("cannot truncate torn WAL tail in " +
                                segment.path + ": " + ec.message());
      }
      for (size_t later = seg + 1; later < segments.size(); ++later) {
        std::error_code size_ec;
        auto size = fs::file_size(segments[later].path, size_ec);
        if (!size_ec) report.truncated_bytes += size;
        fs::remove(segments[later].path, ec);
        if (ec) {
          return Status::Internal("cannot remove WAL segment " +
                                  segments[later].path + ": " + ec.message());
        }
      }
      KASKADE_RETURN_IF_ERROR(SyncDir(dir));
    }
  }
  return report;
}

}  // namespace kaskade::durability
