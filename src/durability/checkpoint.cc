#include "durability/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32c.h"
#include "graph/serialization.h"

namespace kaskade::durability {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[] = "kaskade-checkpoint";
constexpr int kVersion = 1;

std::string CheckpointName(uint64_t lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%016llx.ckpt",
                static_cast<unsigned long long>(lsn));
  return buf;
}

std::string HexCrc(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

Status SyncPath(const std::string& path, int open_flags) {
  int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::Internal("open for fsync " + path + ": " +
                            std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

/// Parses one checkpoint file; any integrity or structure problem is a
/// `kDataLoss` (the caller falls back to an older file).
Result<CheckpointState> ParseCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Internal("cannot read " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  // The trailing `end <crc>` line is verified over the raw bytes before
  // anything is parsed.
  size_t end_pos = text.rfind("\nend ");
  if (end_pos == std::string::npos || text.empty() || text.back() != '\n') {
    return Status::DataLoss("missing 'end' checksum line");
  }
  std::string body = text.substr(0, end_pos + 1);  // includes final '\n'
  std::istringstream end_line(text.substr(end_pos + 1));
  std::string end_word, end_hex;
  end_line >> end_word >> end_hex;
  uint32_t declared = 0;
  if (end_word != "end" ||
      std::sscanf(end_hex.c_str(), "%8x", &declared) != 1 ||
      end_hex.size() != 8) {
    return Status::DataLoss("malformed 'end' checksum line");
  }
  if (Crc32c(body) != declared) {
    return Status::DataLoss("checkpoint checksum mismatch");
  }

  std::istringstream is(body);
  std::string line;
  auto next_line = [&](const char* what) -> Status {
    if (!std::getline(is, line)) {
      return Status::DataLoss(std::string("truncated before ") + what);
    }
    return Status::OK();
  };

  KASKADE_RETURN_IF_ERROR(next_line("header"));
  if (line != std::string(kMagic) + " " + std::to_string(kVersion)) {
    return Status::DataLoss("bad checkpoint header '" + line + "'");
  }

  CheckpointState state;
  KASKADE_RETURN_IF_ERROR(next_line("lsn"));
  unsigned long long lsn = 0;
  if (std::sscanf(line.c_str(), "lsn %llu", &lsn) != 1) {
    return Status::DataLoss("bad lsn line '" + line + "'");
  }
  state.lsn = lsn;

  KASKADE_RETURN_IF_ERROR(next_line("graph section"));
  unsigned long long graph_lines = 0;
  if (std::sscanf(line.c_str(), "graph %llu", &graph_lines) != 1) {
    return Status::DataLoss("bad graph line '" + line + "'");
  }
  std::string graph_text;
  for (unsigned long long i = 0; i < graph_lines; ++i) {
    KASKADE_RETURN_IF_ERROR(next_line("graph body"));
    graph_text += line;
    graph_text += '\n';
  }
  auto loaded = graph::GraphFromString(graph_text);
  if (!loaded.ok()) {
    // The outer CRC passed, so this is a writer/format bug rather than
    // disk corruption — still unusable, still data loss for recovery.
    return Status::DataLoss("embedded graph rejected: " +
                            loaded.status().message());
  }
  state.graph = std::move(loaded).value();

  KASKADE_RETURN_IF_ERROR(next_line("views section"));
  unsigned long long view_count = 0;
  if (std::sscanf(line.c_str(), "views %llu", &view_count) != 1) {
    return Status::DataLoss("bad views line '" + line + "'");
  }
  for (unsigned long long i = 0; i < view_count; ++i) {
    KASKADE_RETURN_IF_ERROR(next_line("view record"));
    auto view = core::ViewDefinition::FromRecord(line);
    if (!view.ok()) {
      return Status::DataLoss("view record rejected: " +
                              view.status().message());
    }
    state.views.push_back(std::move(view).value());
  }
  return state;
}

}  // namespace

Status WriteCheckpoint(const std::string& dir, const graph::PropertyGraph& g,
                       const std::vector<core::ViewDefinition>& views,
                       uint64_t lsn, const core::FaultHooks& hooks) {
  KASKADE_RETURN_IF_ERROR(
      hooks.Fire(core::FaultSite::kCheckpointWrite, dir));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint dir " + dir + ": " +
                            ec.message());
  }

  graph::SaveOptions save_options;
  save_options.preserve_tombstones = true;
  std::string graph_text = graph::GraphToString(g, save_options);
  if (graph_text.empty()) {
    return Status::Internal("graph serialization failed");
  }
  size_t graph_lines =
      static_cast<size_t>(std::count(graph_text.begin(), graph_text.end(),
                                     '\n'));

  std::string body = std::string(kMagic) + " " + std::to_string(kVersion) +
                     "\n";
  body += "lsn " + std::to_string(lsn) + "\n";
  body += "graph " + std::to_string(graph_lines) + "\n";
  body += graph_text;
  body += "views " + std::to_string(views.size()) + "\n";
  for (const core::ViewDefinition& view : views) {
    body += view.ToRecord();
    body += '\n';
  }
  std::string content = body + "end " + HexCrc(Crc32c(body)) + "\n";

  std::string final_path = dir + "/" + CheckpointName(lsn);
  std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return Status::Internal("cannot create " + tmp_path);
    out << content;
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return Status::Internal("write failed for " + tmp_path);
    }
  }
  Status synced = SyncPath(tmp_path, O_RDONLY);
  if (!synced.ok()) {
    fs::remove(tmp_path, ec);
    return synced;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::Internal("cannot rename " + tmp_path + ": " +
                            ec.message());
  }
  return SyncPath(dir, O_RDONLY | O_DIRECTORY);
}

std::vector<uint64_t> ListCheckpoints(const std::string& dir) {
  std::vector<uint64_t> lsns;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    unsigned long long lsn = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%16llx.ckpt", &lsn) == 1 &&
        name == CheckpointName(lsn)) {
      lsns.push_back(lsn);
    }
  }
  std::sort(lsns.rbegin(), lsns.rend());
  return lsns;
}

namespace {
constexpr char kViewSetMagic[] = "kaskade-views";
constexpr int kViewSetVersion = 1;
constexpr char kViewSetFile[] = "views.cat";

/// Writes `content` to `dir/name` via tmp + fsync + rename + dir fsync.
Status WriteFileAtomically(const std::string& dir, const std::string& name,
                           const std::string& content) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create dir " + dir + ": " + ec.message());
  }
  std::string final_path = dir + "/" + name;
  std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return Status::Internal("cannot create " + tmp_path);
    out << content;
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(tmp_path, ec);
      return Status::Internal("write failed for " + tmp_path);
    }
  }
  Status synced = SyncPath(tmp_path, O_RDONLY);
  if (!synced.ok()) {
    fs::remove(tmp_path, ec);
    return synced;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::Internal("cannot rename " + tmp_path + ": " + ec.message());
  }
  return SyncPath(dir, O_RDONLY | O_DIRECTORY);
}
}  // namespace

Status WriteViewSet(const std::string& dir,
                    const std::vector<core::ViewDefinition>& views) {
  std::string body = std::string(kViewSetMagic) + " " +
                     std::to_string(kViewSetVersion) + "\n";
  for (const core::ViewDefinition& view : views) {
    body += view.ToRecord();
    body += '\n';
  }
  return WriteFileAtomically(dir, kViewSetFile,
                             body + "end " + HexCrc(Crc32c(body)) + "\n");
}

Result<std::vector<core::ViewDefinition>> LoadViewSet(const std::string& dir) {
  std::string path = dir + "/" + kViewSetFile;
  if (!fs::exists(path)) {
    return Status::NotFound("no view set sidecar in " + dir);
  }
  std::ifstream in(path);
  if (!in) return Status::Internal("cannot read " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  size_t end_pos = text.rfind("\nend ");
  if (end_pos == std::string::npos || text.empty() || text.back() != '\n') {
    return Status::DataLoss("view set missing 'end' checksum line");
  }
  std::string body = text.substr(0, end_pos + 1);
  uint32_t declared = 0;
  if (std::sscanf(text.c_str() + end_pos + 1, "end %8x", &declared) != 1) {
    return Status::DataLoss("view set malformed 'end' line");
  }
  if (Crc32c(body) != declared) {
    return Status::DataLoss("view set checksum mismatch");
  }

  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) ||
      line != std::string(kViewSetMagic) + " " +
                  std::to_string(kViewSetVersion)) {
    return Status::DataLoss("bad view set header");
  }
  std::vector<core::ViewDefinition> views;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto view = core::ViewDefinition::FromRecord(line);
    if (!view.ok()) {
      return Status::DataLoss("view set record rejected: " +
                              view.status().message());
    }
    views.push_back(std::move(view).value());
  }
  return views;
}

Result<CheckpointState> LoadNewestCheckpoint(const std::string& dir) {
  std::vector<uint64_t> lsns = ListCheckpoints(dir);
  if (lsns.empty()) {
    return Status::NotFound("no checkpoint in " + dir);
  }
  std::vector<std::string> notes;
  for (uint64_t lsn : lsns) {
    std::string path = dir + "/" + CheckpointName(lsn);
    auto state = ParseCheckpoint(path);
    if (state.ok()) {
      state.value().skipped_corrupt = std::move(notes);
      return std::move(state).value();
    }
    notes.push_back(path + ": " + state.status().message());
  }
  std::string all;
  for (const std::string& note : notes) {
    if (!all.empty()) all += "; ";
    all += note;
  }
  return Status::DataLoss("every checkpoint in " + dir +
                          " failed validation: " + all);
}

}  // namespace kaskade::durability
