/// \file wal.h
/// \brief Checksummed, segment-rotated write-ahead log.
///
/// Every engine mutation appends one record here before it is
/// acknowledged, so a crash can be recovered by replaying the log tail
/// on top of the newest checkpoint. The on-disk record framing is
///
/// ```
/// [u32 payload-length][u32 crc32c(lsn || payload)][u64 lsn][payload]
/// ```
///
/// (little-endian integers). LSNs are assigned by the single writer and
/// increase by exactly one per record, which lets replay detect a
/// corrupt or torn record three independent ways: a length that runs
/// past the file, a CRC mismatch, or an LSN break. Replay stops at the
/// first invalid record, truncates it and everything after it (including
/// later segments), and reports the loss — a torn tail is never
/// propagated into the recovered graph.
///
/// Durability is policy-driven (`FsyncPolicy`):
/// - `kNone`: no fsync; the OS decides when bytes hit disk.
/// - `kBatch` (group commit): a flusher thread fsyncs at a bounded
///   interval; writers block until the batch containing their record is
///   flushed, so one fsync amortizes over every record appended since
///   the last one.
/// - `kEveryWrite`: each writer fsyncs (or rides a concurrent fsync that
///   already covers its record) before its mutation is acknowledged.
///
/// Threading contract: `Append` calls must be externally serialized (the
/// engine holds its writer lock); `WaitDurable`, telemetry reads, and
/// the background flusher are free-threaded.

#ifndef KASKADE_DURABILITY_WAL_H_
#define KASKADE_DURABILITY_WAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "core/fault.h"

namespace kaskade::durability {

/// \brief When acknowledged writes are forced to stable storage.
enum class FsyncPolicy {
  kNone,       ///< Never fsync from the engine; fastest, widest loss window.
  kBatch,      ///< Group commit: one fsync per flush interval covers a batch.
  kEveryWrite, ///< Fsync before every acknowledgement; zero acknowledged loss.
};

const char* FsyncPolicyName(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

/// \brief WAL tuning knobs.
struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  /// Upper bound on how long a `kBatch` writer waits for its group's
  /// fsync (the flusher wakes at this cadence, or immediately when poked).
  std::chrono::milliseconds flush_interval{2};
  /// Rotate to a new segment file once the current one exceeds this.
  uint64_t segment_bytes = 64ull << 20;
  /// Durability fault sites (`kWalAppend`, `kWalFsync`) fire through
  /// these hooks.
  core::FaultHooks fault_hooks;
};

/// \brief Monotonic counters, readable while the log is live.
struct WalTelemetry {
  uint64_t appends = 0;   ///< Records appended.
  uint64_t bytes = 0;     ///< Bytes appended (framing included).
  uint64_t fsyncs = 0;    ///< fsync(2) calls issued.
  uint64_t batches = 0;   ///< Group-commit flushes that advanced durability.
};

/// \brief What `Replay` found on disk.
struct ReplayReport {
  uint64_t records = 0;          ///< Records delivered to the callback.
  uint64_t first_lsn = 0;        ///< LSN of the first record delivered.
  uint64_t last_lsn = 0;         ///< Highest LSN seen (0 = log empty).
  uint64_t truncated_bytes = 0;  ///< Torn/corrupt tail bytes removed.
  /// Human-readable description of a detected torn tail; empty when the
  /// log was clean.
  std::string data_loss_note;
};

/// \brief The write-ahead log over one directory of `wal-<lsn>.log`
/// segment files.
class WriteAheadLog {
 public:
  /// Handle for `WaitDurable`: identifies the log position a record's
  /// acknowledgement must wait for.
  struct AppendToken {
    uint64_t lsn = 0;
    uint64_t end = 0;  ///< Logical byte offset just past the record.
  };

  /// Opens the log for appending; the next record gets `next_lsn`. A
  /// segment file named for `next_lsn` is created (or re-opened for
  /// append after recovery truncated it in place).
  static Result<std::unique_ptr<WriteAheadLog>> Open(std::string dir,
                                                     uint64_t next_lsn,
                                                     WalOptions options);

  /// Stops the flusher and closes the active segment (with a final
  /// fsync unless the policy is `kNone`).
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record. Calls must be externally serialized; the
  /// returned token is what `WaitDurable` blocks on. The record is NOT
  /// durable yet when this returns.
  Result<AppendToken> Append(std::string_view payload);

  /// Blocks per the fsync policy until `token`'s record is durable
  /// (no-op for `kNone`). Returns the sticky I/O error if the log hit
  /// an unrecoverable write/fsync failure.
  Status WaitDurable(const AppendToken& token);

  /// Deletes whole segment files all of whose records have LSN below
  /// `lsn` (called after a checkpoint at `lsn - 1` made them redundant).
  /// The active segment is never deleted.
  Status TruncateBelow(uint64_t lsn);

  /// Forces everything appended so far to disk regardless of policy.
  Status Sync();

  uint64_t next_lsn() const { return next_lsn_; }

  /// Logical byte offsets since `Open` — `end_offset` counts appended
  /// bytes, `durable_offset` the prefix known to have been fsynced.
  /// While the log stays in its first segment these equal offsets into
  /// the segment file, which is what crash tests use to truncate a
  /// copied directory at the exact durability boundary.
  uint64_t end_offset() const;
  uint64_t durable_offset() const;

  /// Path of the segment currently being appended to.
  std::string current_segment_path() const;

  WalTelemetry telemetry() const;

  /// Replays every record with `lsn >= start_lsn` from the segments in
  /// `dir`, in LSN order, through `apply`. Detects a torn or corrupt
  /// tail (bad length, bad CRC, LSN break, partial frame), truncates it
  /// in place — later segments included — and reports what was dropped.
  /// An `apply` error aborts the replay and is returned as-is.
  static Result<ReplayReport> Replay(
      const std::string& dir, uint64_t start_lsn,
      const std::function<Status(uint64_t lsn, const std::string& payload)>&
          apply);

 private:
  WriteAheadLog(std::string dir, uint64_t next_lsn, WalOptions options);

  Status OpenSegment(uint64_t first_lsn);
  /// Fsyncs bytes up to the captured end offset; returns the sticky
  /// error on failure. Caller must NOT hold `mu_`.
  Status FlushToDisk(uint64_t target_end);
  void FlusherLoop();

  const std::string dir_;
  const WalOptions options_;

  /// Serializes fsync(2) against segment-file close during rotation, so
  /// a flush never syncs a recycled descriptor. Held across the (slow)
  /// fsync call itself; `mu_` is never held while waiting for it.
  mutable std::mutex io_mu_;
  /// Guards segment fd value and the offsets/error below.
  mutable std::mutex mu_;
  std::condition_variable durable_cv_;  ///< Signaled when durable_ advances.
  std::condition_variable flush_cv_;    ///< Pokes the flusher.
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_start_ = 0;  ///< Logical offset where the segment begins.
  uint64_t end_ = 0;            ///< Logical bytes appended.
  uint64_t durable_ = 0;        ///< Logical bytes known fsynced.
  Status io_error_;             ///< Sticky; set on write/fsync failure.
  bool flusher_has_work_ = false;
  bool stop_ = false;

  std::atomic<uint64_t> next_lsn_;
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> batches_{0};

  std::thread flusher_;
};

}  // namespace kaskade::durability

#endif  // KASKADE_DURABILITY_WAL_H_
