#include "prolog/knowledge_base.h"

#include <cassert>

namespace kaskade::prolog {

namespace {

std::string Key(const std::string& functor, size_t arity) {
  return functor + "/" + std::to_string(arity);
}

bool IsGround(const TermPtr& t) {
  if (t->is_var()) return false;
  for (const TermPtr& arg : t->args()) {
    if (!IsGround(arg)) return false;
  }
  return true;
}

}  // namespace

const char* KnowledgeBase::PreludeSource() {
  return R"PL(
% ---- Kaskade inference-engine standard library ----
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

reverse([], []).
reverse([H|T], R) :- reverse(T, RT), append(RT, [H], R).

last([X], X).
last([_|T], X) :- last(T, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X).
max_list([H|T], H) :- max_list(T, M), H >= M.
max_list([H|T], M) :- max_list(T, M), M > H.

min_list([X], X).
min_list([H|T], H) :- min_list(T, M), H =< M.
min_list([H|T], M) :- min_list(T, M), M < H.

% Higher-order helpers used by aggregator view templates (Lst. 5).
foldl(_, [], A, A).
foldl(G, [H|T], A0, A) :- call(G, H, A0, A1), foldl(G, T, A1, A).

convlist(_, [], []).
convlist(G, [H|T], [RH|RT]) :- call(G, H, RH), convlist(G, T, RT).
convlist(G, [H|T], R) :- \+ call(G, H, _), convlist(G, T, R).

maplist(_, []).
maplist(G, [H|T]) :- call(G, H), maplist(G, T).
maplist(_, [], []).
maplist(G, [H|T], [RH|RT]) :- call(G, H, RH), maplist(G, T, RT).

nth0(0, [X|_], X).
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).
)PL";
}

KnowledgeBase::KnowledgeBase(bool with_prelude) {
  if (with_prelude) {
    Status st = Consult(PreludeSource());
    assert(st.ok());
    (void)st;
  }
}

Status KnowledgeBase::Consult(const std::string& program_text) {
  Result<std::vector<Clause>> parsed = ParseProgram(program_text);
  if (!parsed.ok()) return parsed.status();
  for (Clause& clause : parsed.value()) {
    AddClause(std::move(clause));
  }
  return Status::OK();
}

Status KnowledgeBase::AssertFact(const std::string& functor,
                                 std::vector<TermPtr> args) {
  Clause clause;
  clause.head = Term::MakeCompound(functor, std::move(args));
  if (!IsGround(clause.head)) {
    return Status::InvalidArgument("AssertFact requires a ground fact: " +
                                   clause.head->ToString());
  }
  AddClause(std::move(clause));
  return Status::OK();
}

void KnowledgeBase::AddClause(Clause clause) {
  std::string key = Key(clause.head->name(), clause.head->arity());
  by_key_[key].push_back(std::move(clause));
  ++num_clauses_;
}

const std::vector<Clause>& KnowledgeBase::Lookup(const std::string& functor,
                                                 size_t arity) const {
  auto it = by_key_.find(Key(functor, arity));
  return it == by_key_.end() ? empty_ : it->second;
}

}  // namespace kaskade::prolog
