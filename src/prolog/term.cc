#include "prolog/term.h"

#include <cctype>
#include <sstream>

namespace kaskade::prolog {

namespace {

bool IsSymbolCharForPrint(char c) {
  static const std::string kSymbols = "+-*/\\^<>=~:.?@#&";
  return kSymbols.find(c) != std::string::npos;
}

bool AtomNeedsQuotes(const std::string& name) {
  if (name.empty()) return true;
  if (name == "[]" || name == "!") return false;
  // Purely symbolic atoms (operators) print bare, like SWI.
  bool all_symbolic = true;
  for (char c : name) {
    if (!IsSymbolCharForPrint(c)) all_symbolic = false;
  }
  if (all_symbolic) return false;
  if (!std::islower(static_cast<unsigned char>(name[0]))) return true;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return true;
  }
  return false;
}

}  // namespace

TermPtr MakeTermInternal(Term t) {
  return std::make_shared<const Term>(std::move(t));
}

TermPtr Term::MakeAtom(std::string name) {
  Term t;
  t.kind_ = TermKind::kAtom;
  t.name_ = std::move(name);
  return MakeTermInternal(std::move(t));
}

TermPtr Term::MakeInt(int64_t value) {
  Term t;
  t.kind_ = TermKind::kInt;
  t.int_value_ = value;
  return MakeTermInternal(std::move(t));
}

TermPtr Term::MakeFloat(double value) {
  Term t;
  t.kind_ = TermKind::kFloat;
  t.float_value_ = value;
  return MakeTermInternal(std::move(t));
}

TermPtr Term::MakeVar(size_t id, std::string name) {
  Term t;
  t.kind_ = TermKind::kVar;
  t.var_id_ = id;
  t.name_ = std::move(name);
  return MakeTermInternal(std::move(t));
}

TermPtr Term::MakeCompound(std::string functor, std::vector<TermPtr> args) {
  if (args.empty()) return MakeAtom(std::move(functor));
  Term t;
  t.kind_ = TermKind::kCompound;
  t.name_ = std::move(functor);
  t.args_ = std::move(args);
  return MakeTermInternal(std::move(t));
}

TermPtr Term::EmptyList() {
  static const TermPtr empty = MakeAtom("[]");
  return empty;
}

TermPtr Term::MakeList(const std::vector<TermPtr>& items, TermPtr tail) {
  TermPtr list = tail == nullptr ? EmptyList() : std::move(tail);
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    list = MakeCompound(".", {*it, list});
  }
  return list;
}

bool Term::ListItems(const TermPtr& list, std::vector<TermPtr>* items) {
  TermPtr cur = list;
  while (true) {
    if (cur->is_empty_list()) return true;
    if (!cur->is_list_cell()) return false;
    items->push_back(cur->args()[0]);
    cur = cur->args()[1];
  }
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kAtom:
      return AtomNeedsQuotes(name_) ? "'" + name_ + "'" : name_;
    case TermKind::kInt:
      return std::to_string(int_value_);
    case TermKind::kFloat: {
      std::ostringstream os;
      os << float_value_;
      return os.str();
    }
    case TermKind::kVar:
      return name_.empty() ? "_G" + std::to_string(var_id_) : name_;
    case TermKind::kCompound: {
      if (is_list_cell()) {
        std::string out = "[";
        const Term* cur = this;
        bool first = true;
        while (true) {
          if (!first) out += ",";
          out += cur->args_[0]->ToString();
          first = false;
          const Term& tail = *cur->args_[1];
          if (tail.is_empty_list()) break;
          if (!tail.is_list_cell()) {
            out += "|" + tail.ToString();
            break;
          }
          cur = &tail;
        }
        return out + "]";
      }
      std::string out =
          AtomNeedsQuotes(name_) ? "'" + name_ + "'" : name_;
      out += "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ",";
        out += args_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool Term::Equal(const TermPtr& a, const TermPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TermKind::kAtom:
      return a->name() == b->name();
    case TermKind::kInt:
      return a->int_value() == b->int_value();
    case TermKind::kFloat:
      return a->float_value() == b->float_value();
    case TermKind::kVar:
      return a->var_id() == b->var_id();
    case TermKind::kCompound: {
      if (a->name() != b->name() || a->arity() != b->arity()) return false;
      for (size_t i = 0; i < a->arity(); ++i) {
        if (!Equal(a->args()[i], b->args()[i])) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

int KindRank(const Term& t) {
  switch (t.kind()) {
    case TermKind::kVar:
      return 0;
    case TermKind::kFloat:
    case TermKind::kInt:
      return 1;
    case TermKind::kAtom:
      return 2;
    case TermKind::kCompound:
      return 3;
  }
  return 4;
}

}  // namespace

int Term::Compare(const TermPtr& a, const TermPtr& b) {
  int ra = KindRank(*a);
  int rb = KindRank(*b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a->kind()) {
    case TermKind::kVar: {
      if (a->var_id() == b->var_id()) return 0;
      return a->var_id() < b->var_id() ? -1 : 1;
    }
    case TermKind::kInt:
    case TermKind::kFloat: {
      double va = a->is_int() ? static_cast<double>(a->int_value())
                              : a->float_value();
      double vb = b->is_int() ? static_cast<double>(b->int_value())
                              : b->float_value();
      if (va == vb) return 0;
      return va < vb ? -1 : 1;
    }
    case TermKind::kAtom:
      return a->name().compare(b->name());
    case TermKind::kCompound: {
      if (a->arity() != b->arity()) return a->arity() < b->arity() ? -1 : 1;
      int c = a->name().compare(b->name());
      if (c != 0) return c < 0 ? -1 : 1;
      for (size_t i = 0; i < a->arity(); ++i) {
        int ci = Compare(a->args()[i], b->args()[i]);
        if (ci != 0) return ci;
      }
      return 0;
    }
  }
  return 0;
}

}  // namespace kaskade::prolog
