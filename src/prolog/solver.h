/// \file solver.h
/// \brief SLD-resolution solver with negation-as-failure, arithmetic, and
/// the all-solutions builtins Kaskade's rules rely on.
///
/// The solver is depth-first with chronological backtracking, like
/// SWI-Prolog's core loop. Recursive constraint-mining rules (e.g.
/// `queryPath/2` on a cyclic query pattern) are kept terminating by a
/// resolution-depth bound — exceeding it prunes the branch and sets
/// `depth_limit_hit()`; exceeding the total step budget aborts with an
/// error so runaway rule sets are surfaced rather than silently truncated.

#ifndef KASKADE_PROLOG_SOLVER_H_
#define KASKADE_PROLOG_SOLVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "prolog/knowledge_base.h"
#include "prolog/term.h"

namespace kaskade::prolog {

/// \brief Solver resource limits.
struct SolverOptions {
  /// Maximum resolution depth along one branch (prunes, not errors).
  size_t max_depth = 2048;
  /// Total resolution-step budget across the query (errors when exceeded).
  uint64_t max_steps = 50'000'000;
  /// Stop after this many solutions.
  size_t max_solutions = SIZE_MAX;
};

/// \brief One solution: the query's named variables resolved to terms.
struct Solution {
  std::map<std::string, TermPtr> bindings;

  /// Renders "X=a, Y=2" for debugging and tests.
  std::string ToString() const;
};

/// \brief Executes queries against a `KnowledgeBase`.
///
/// A Solver is single-use-at-a-time but reusable across queries; bindings
/// are reset per query. Builtins: `true/0`, `fail/0`, `=/2`, `\=/2`,
/// `==/2`, `\==/2`, `is/2`, `</2`, `>/2`, `=</2`, `>=/2`, `=:=/2`,
/// `=\=/2`, `not/1`, `\+/1`, `var/1`, `nonvar/1`, `atom/1`, `number/1`,
/// `integer/1`, `between/3`, `succ/2`, `length/2`, `findall/3`,
/// `setof/3`, `bagof/3`, `sort/2`, `msort/2`, `call/1..8`. Predicates
/// with no clauses and no builtin simply fail (no existence errors), so
/// rule sets can reference fact families that happen to be empty.
class Solver {
 public:
  explicit Solver(const KnowledgeBase* kb, SolverOptions options = {})
      : kb_(kb), options_(options) {}

  /// Callback per solution; return false to stop the search.
  using SolutionCallback = std::function<bool(const Solution&)>;

  /// Parses and runs `query_text`; returns the number of solutions found.
  Result<size_t> Query(const std::string& query_text,
                       const SolutionCallback& on_solution);

  /// Runs an already-parsed query.
  Result<size_t> Run(const ParsedQuery& query,
                     const SolutionCallback& on_solution);

  /// Convenience: collects all solutions of `query_text`.
  Result<std::vector<Solution>> QueryAll(const std::string& query_text);

  /// True if a solution was found for `query_text` (ignores bindings).
  Result<bool> Prove(const std::string& query_text);

  /// True when the last query pruned at least one branch at `max_depth`.
  bool depth_limit_hit() const { return depth_limit_hit_; }

  /// Resolution steps consumed by the last query.
  uint64_t steps_used() const { return steps_; }

 private:
  enum class SearchOutcome { kExhausted, kStopRequested, kError };

  SearchOutcome SolveGoals(const std::vector<TermPtr>& goals, size_t depth);

  /// Flattens nested ','/2 conjunctions into `out` (used when a
  /// conjunction reaches the goal position, e.g. via call/1).
  static void TermParserFlatten(const TermPtr& t, std::vector<TermPtr>* out);

  // -- binding store ---------------------------------------------------
  TermPtr Deref(TermPtr t) const;
  void Bind(size_t var_id, TermPtr value);
  bool Unify(TermPtr a, TermPtr b);
  size_t TrailMark() const { return trail_.size(); }
  void UndoTrail(size_t mark);
  size_t FreshVar();
  /// Renames a clause's local variables to fresh store variables.
  TermPtr RenameTerm(const TermPtr& t, size_t var_base);
  /// Resolves `t` fully: bound vars replaced by their values, unbound vars
  /// by fresh store variables (the `findall` copy semantics).
  TermPtr ResolveCopy(const TermPtr& t,
                      std::map<size_t, TermPtr>* fresh_map);

  // -- builtins ----------------------------------------------------------
  /// Handles a builtin goal; `handled` reports whether the functor/arity
  /// was a builtin at all. For handled goals, continues with `rest`.
  SearchOutcome TryBuiltin(const TermPtr& goal,
                           const std::vector<TermPtr>& rest, size_t depth,
                           bool* handled);

  struct Number {
    bool is_float = false;
    int64_t i = 0;
    double f = 0;
    double AsDouble() const { return is_float ? f : static_cast<double>(i); }
  };
  Result<Number> EvalArith(const TermPtr& t);

  SearchOutcome EmitSolution();
  SearchOutcome ErrorOut(Status status);

  const KnowledgeBase* kb_;
  SolverOptions options_;

  std::vector<TermPtr> bindings_;
  std::vector<size_t> trail_;
  /// Continuation slots for sub-searches (negation, findall); a reserved
  /// `$cont(i)` goal invokes `continuations_[i]`.
  std::vector<std::function<SearchOutcome()>> continuations_;
  uint64_t steps_ = 0;
  size_t solutions_found_ = 0;
  bool depth_limit_hit_ = false;
  Status error_;
  const ParsedQuery* active_query_ = nullptr;
  const SolutionCallback* callback_ = nullptr;
};

}  // namespace kaskade::prolog

#endif  // KASKADE_PROLOG_SOLVER_H_
