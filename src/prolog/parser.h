/// \file parser.h
/// \brief Reader for the ISO-ish Prolog subset Kaskade's rules use.
///
/// Supported syntax: facts and rules (`head.` / `head :- body.`),
/// conjunction `,`, atoms (unquoted and 'quoted'), variables, integers,
/// floats, compounds, lists `[a,b|T]`, infix arithmetic/comparison
/// operators (`is`, `<`, `>`, `=<`, `>=`, `=:=`, `=\=`, `=`, `\=`, `==`,
/// `\==`, `+`, `-`, `*`, `/`, `//`, `mod`), prefix `-` and `\+`, and `%`
/// and `/* */` comments. This covers Listings 2, 3, 5 and 6 of the paper.

#ifndef KASKADE_PROLOG_PARSER_H_
#define KASKADE_PROLOG_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "prolog/term.h"

namespace kaskade::prolog {

/// \brief A parsed clause: `head :- body1, ..., bodyN.` (empty body for a
/// fact). Variables are numbered 0..num_vars-1 locally to the clause.
struct Clause {
  TermPtr head;
  std::vector<TermPtr> body;
  size_t num_vars = 0;
};

/// \brief A parsed query: goal conjunction plus the name->local-id map of
/// its named variables (for extracting solution bindings).
struct ParsedQuery {
  std::vector<TermPtr> goals;
  size_t num_vars = 0;
  std::map<std::string, size_t> var_names;
};

/// Parses a whole program (any number of clauses).
Result<std::vector<Clause>> ParseProgram(const std::string& text);

/// Parses a single query ("goal1, goal2." — final '.' optional).
Result<ParsedQuery> ParseQuery(const std::string& text);

}  // namespace kaskade::prolog

#endif  // KASKADE_PROLOG_PARSER_H_
