#include "prolog/parser.h"

#include <cctype>
#include <optional>

namespace kaskade::prolog {

namespace {

enum class TokKind {
  kAtom,     // lowercase identifier, quoted atom, or symbolic operator
  kVar,      // uppercase/underscore identifier
  kInt,
  kFloat,
  kPunct,    // ( ) [ ] , |
  kEnd,      // clause-terminating '.'
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  size_t pos = 0;
};

bool IsSymbolChar(char c) {
  static const std::string kSymbols = "+-*/\\^<>=~:.?@#&";
  return kSymbols.find(c) != std::string::npos;
}

/// \brief Single-pass tokenizer.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      KASKADE_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (pos_ >= text_.size()) {
        out.push_back(Token{TokKind::kEof, "", 0, 0, pos_});
        return out;
      }
      KASKADE_ASSIGN_OR_RETURN(Token tok, Next());
      out.push_back(std::move(tok));
    }
  }

 private:
  Status SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated block comment");
        }
        pos_ = end + 2;
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Result<Token> Next() {
    size_t start = pos_;
    char c = text_[pos_];
    // Punctuation.
    if (c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '|') {
      ++pos_;
      return Token{TokKind::kPunct, std::string(1, c), 0, 0, start};
    }
    // Clause end: '.' followed by layout or EOF (otherwise '.' is symbolic).
    if (c == '.') {
      bool at_end = pos_ + 1 >= text_.size() ||
                    std::isspace(static_cast<unsigned char>(text_[pos_ + 1])) ||
                    text_[pos_ + 1] == '%';
      if (at_end) {
        ++pos_;
        return Token{TokKind::kEnd, ".", 0, 0, start};
      }
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = pos_;
      while (end < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[end]))) {
        ++end;
      }
      bool is_float = false;
      if (end + 1 < text_.size() && text_[end] == '.' &&
          std::isdigit(static_cast<unsigned char>(text_[end + 1]))) {
        is_float = true;
        ++end;
        while (end < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[end]))) {
          ++end;
        }
      }
      std::string digits = text_.substr(pos_, end - pos_);
      pos_ = end;
      Token tok;
      tok.pos = start;
      if (is_float) {
        tok.kind = TokKind::kFloat;
        tok.float_value = std::stod(digits);
      } else {
        tok.kind = TokKind::kInt;
        tok.int_value = std::stoll(digits);
      }
      tok.text = digits;
      return tok;
    }
    // Quoted atom.
    if (c == '\'') {
      std::string name;
      ++pos_;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\'') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            name.push_back('\'');
            pos_ += 2;
            continue;
          }
          ++pos_;
          return Token{TokKind::kAtom, name, 0, 0, start};
        }
        name.push_back(text_[pos_++]);
      }
      return Status::InvalidArgument("unterminated quoted atom");
    }
    // Identifiers.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      std::string name = text_.substr(pos_, end - pos_);
      pos_ = end;
      bool is_var = std::isupper(static_cast<unsigned char>(name[0])) ||
                    name[0] == '_';
      return Token{is_var ? TokKind::kVar : TokKind::kAtom, name, 0, 0, start};
    }
    // Symbolic atom/operator (maximal munch over the symbol charset).
    if (IsSymbolChar(c)) {
      size_t end = pos_;
      while (end < text_.size() && IsSymbolChar(text_[end])) ++end;
      std::string sym = text_.substr(pos_, end - pos_);
      pos_ = end;
      return Token{TokKind::kAtom, sym, 0, 0, start};
    }
    if (c == '!') {
      ++pos_;
      return Token{TokKind::kAtom, "!", 0, 0, start};
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(start));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// \brief Infix/prefix operator table entry.
struct OpInfo {
  int precedence;
  bool right_assoc;  // xfy
};

std::optional<OpInfo> InfixOp(const std::string& name) {
  static const std::map<std::string, OpInfo> kOps = {
      {":-", {1200, false}}, {"->", {1050, true}},
      {"is", {700, false}},  {"<", {700, false}},   {">", {700, false}},
      {"=<", {700, false}},  {">=", {700, false}},  {"=:=", {700, false}},
      {"=\\=", {700, false}}, {"=", {700, false}},  {"\\=", {700, false}},
      {"==", {700, false}},  {"\\==", {700, false}},
      {"+", {500, false}},   {"-", {500, false}},
      {"*", {400, false}},   {"/", {400, false}},   {"//", {400, false}},
      {"mod", {400, false}},
  };
  auto it = kOps.find(name);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

/// \brief Recursive-descent / Pratt parser over the token stream.
class TermParser {
 public:
  TermParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses a full clause term up to the clause-end token.
  Result<TermPtr> ParseClauseTerm() {
    KASKADE_ASSIGN_OR_RETURN(TermPtr t, ParseExpr(1200));
    KASKADE_RETURN_IF_ERROR(Expect(TokKind::kEnd, "."));
    return t;
  }

  bool AtEof() const { return Peek().kind == TokKind::kEof; }

  /// Resets per-clause variable numbering.
  void BeginClause() {
    var_ids_.clear();
    next_var_ = 0;
  }

  size_t num_vars() const { return next_var_; }
  const std::map<std::string, size_t>& var_names() const { return var_ids_; }

  /// Parses "goal[, goal]*" with optional trailing '.'.
  Result<std::vector<TermPtr>> ParseGoals() {
    KASKADE_ASSIGN_OR_RETURN(TermPtr t, ParseExpr(1200));
    if (Peek().kind == TokKind::kEnd) ++pos_;
    if (Peek().kind != TokKind::kEof) {
      return Status::InvalidArgument("trailing tokens after query");
    }
    std::vector<TermPtr> goals;
    FlattenConj(t, &goals);
    return goals;
  }

  /// Flattens nested ','/2 into a goal list.
  static void FlattenConj(const TermPtr& t, std::vector<TermPtr>* out) {
    if (t->is_compound() && t->name() == "," && t->arity() == 2) {
      FlattenConj(t->args()[0], out);
      FlattenConj(t->args()[1], out);
      return;
    }
    out->push_back(t);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Status Expect(TokKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected '" + what + "' but found '" +
                                     Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectPunct(const std::string& text) {
    if (Peek().kind != TokKind::kPunct || Peek().text != text) {
      return Status::InvalidArgument("expected '" + text + "' but found '" +
                                     Peek().text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  size_t VarId(const std::string& name) {
    if (name == "_") return next_var_++;  // each _ is distinct
    auto it = var_ids_.find(name);
    if (it != var_ids_.end()) return it->second;
    size_t id = next_var_++;
    var_ids_.emplace(name, id);
    return id;
  }

  /// Expression parsing at a maximum operator precedence. Comma is treated
  /// as an operator of precedence 1000 only when max_prec >= 1000 (i.e.
  /// not inside argument lists).
  Result<TermPtr> ParseExpr(int max_prec) {
    KASKADE_ASSIGN_OR_RETURN(TermPtr left, ParsePrimary(max_prec));
    while (true) {
      const Token& tok = Peek();
      std::optional<OpInfo> op;
      std::string op_name;
      if (tok.kind == TokKind::kAtom) {
        op = InfixOp(tok.text);
        op_name = tok.text;
      } else if (tok.kind == TokKind::kPunct && tok.text == "," &&
                 max_prec >= 1000) {
        op = OpInfo{1000, true};
        op_name = ",";
      }
      if (!op.has_value() || op->precedence > max_prec) break;
      ++pos_;
      int rhs_prec = op->right_assoc ? op->precedence : op->precedence - 1;
      KASKADE_ASSIGN_OR_RETURN(TermPtr right, ParseExpr(rhs_prec));
      left = Term::MakeCompound(op_name, {left, right});
    }
    return left;
  }

  Result<TermPtr> ParsePrimary(int max_prec) {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kInt:
        ++pos_;
        return Term::MakeInt(tok.int_value);
      case TokKind::kFloat:
        ++pos_;
        return Term::MakeFloat(tok.float_value);
      case TokKind::kVar: {
        ++pos_;
        return Term::MakeVar(VarId(tok.text), tok.text);
      }
      case TokKind::kAtom: {
        // Prefix operators.
        if (tok.text == "-" &&
            (Peek(1).kind == TokKind::kInt || Peek(1).kind == TokKind::kFloat)) {
          ++pos_;
          const Token& num = Peek();
          ++pos_;
          return num.kind == TokKind::kInt ? Term::MakeInt(-num.int_value)
                                           : Term::MakeFloat(-num.float_value);
        }
        if (tok.text == "\\+" && max_prec >= 900) {
          ++pos_;
          KASKADE_ASSIGN_OR_RETURN(TermPtr arg, ParseExpr(900));
          return Term::MakeCompound("\\+", {arg});
        }
        std::string name = tok.text;
        ++pos_;
        // Compound: name immediately followed by '('.
        if (Peek().kind == TokKind::kPunct && Peek().text == "(") {
          ++pos_;
          std::vector<TermPtr> args;
          while (true) {
            KASKADE_ASSIGN_OR_RETURN(TermPtr arg, ParseExpr(999));
            args.push_back(std::move(arg));
            if (Peek().kind == TokKind::kPunct && Peek().text == ",") {
              ++pos_;
              continue;
            }
            break;
          }
          KASKADE_RETURN_IF_ERROR(ExpectPunct(")"));
          return Term::MakeCompound(std::move(name), std::move(args));
        }
        return Term::MakeAtom(std::move(name));
      }
      case TokKind::kPunct: {
        if (tok.text == "(") {
          ++pos_;
          KASKADE_ASSIGN_OR_RETURN(TermPtr inner, ParseExpr(1200));
          KASKADE_RETURN_IF_ERROR(ExpectPunct(")"));
          return inner;
        }
        if (tok.text == "[") {
          ++pos_;
          if (Peek().kind == TokKind::kPunct && Peek().text == "]") {
            ++pos_;
            return Term::EmptyList();
          }
          std::vector<TermPtr> items;
          TermPtr tail = nullptr;
          while (true) {
            KASKADE_ASSIGN_OR_RETURN(TermPtr item, ParseExpr(999));
            items.push_back(std::move(item));
            if (Peek().kind == TokKind::kPunct && Peek().text == ",") {
              ++pos_;
              continue;
            }
            if (Peek().kind == TokKind::kPunct && Peek().text == "|") {
              ++pos_;
              KASKADE_ASSIGN_OR_RETURN(TermPtr t, ParseExpr(999));
              tail = std::move(t);
            }
            break;
          }
          KASKADE_RETURN_IF_ERROR(ExpectPunct("]"));
          return Term::MakeList(items, tail);
        }
        return Status::InvalidArgument("unexpected token '" + tok.text + "'");
      }
      case TokKind::kEnd:
      case TokKind::kEof:
        return Status::InvalidArgument("unexpected end of input");
    }
    return Status::InvalidArgument("unparsable token '" + tok.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, size_t> var_ids_;
  size_t next_var_ = 0;
};

}  // namespace

Result<std::vector<Clause>> ParseProgram(const std::string& text) {
  Lexer lexer(text);
  KASKADE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  TermParser parser(std::move(tokens));
  std::vector<Clause> clauses;
  while (!parser.AtEof()) {
    parser.BeginClause();
    KASKADE_ASSIGN_OR_RETURN(TermPtr t, parser.ParseClauseTerm());
    Clause clause;
    if (t->is_compound() && t->name() == ":-" && t->arity() == 2) {
      clause.head = t->args()[0];
      TermParser::FlattenConj(t->args()[1], &clause.body);
    } else {
      clause.head = t;
    }
    if (!clause.head->is_atom() && !clause.head->is_compound()) {
      return Status::InvalidArgument("clause head must be atom or compound: " +
                                     clause.head->ToString());
    }
    clause.num_vars = parser.num_vars();
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

Result<ParsedQuery> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  KASKADE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  TermParser parser(std::move(tokens));
  parser.BeginClause();
  ParsedQuery query;
  KASKADE_ASSIGN_OR_RETURN(query.goals, parser.ParseGoals());
  query.num_vars = parser.num_vars();
  query.var_names = parser.var_names();
  return query;
}

}  // namespace kaskade::prolog
