#include "prolog/solver.h"

#include <algorithm>
#include <cmath>

namespace kaskade::prolog {

std::string Solution::ToString() const {
  std::string out;
  for (const auto& [name, term] : bindings) {
    if (!out.empty()) out += ", ";
    out += name + "=" + term->ToString();
  }
  return out;
}

Result<size_t> Solver::Query(const std::string& query_text,
                             const SolutionCallback& on_solution) {
  KASKADE_ASSIGN_OR_RETURN(ParsedQuery query, ParseQuery(query_text));
  return Run(query, on_solution);
}

Result<size_t> Solver::Run(const ParsedQuery& query,
                           const SolutionCallback& on_solution) {
  bindings_.assign(query.num_vars, nullptr);
  trail_.clear();
  steps_ = 0;
  solutions_found_ = 0;
  depth_limit_hit_ = false;
  error_ = Status::OK();
  active_query_ = &query;
  callback_ = &on_solution;
  SearchOutcome out = SolveGoals(query.goals, 0);
  active_query_ = nullptr;
  callback_ = nullptr;
  if (out == SearchOutcome::kError) return error_;
  return solutions_found_;
}

Result<std::vector<Solution>> Solver::QueryAll(const std::string& query_text) {
  std::vector<Solution> solutions;
  Result<size_t> n = Query(query_text, [&](const Solution& s) {
    solutions.push_back(s);
    return true;
  });
  if (!n.ok()) return n.status();
  return solutions;
}

Result<bool> Solver::Prove(const std::string& query_text) {
  SolverOptions saved = options_;
  options_.max_solutions = 1;
  Result<size_t> n = Query(query_text, [](const Solution&) { return false; });
  options_ = saved;
  if (!n.ok()) return n.status();
  return n.value() > 0;
}

// ---------------------------------------------------------------------------
// Binding store
// ---------------------------------------------------------------------------

TermPtr Solver::Deref(TermPtr t) const {
  while (t->is_var()) {
    size_t id = t->var_id();
    if (id >= bindings_.size() || bindings_[id] == nullptr) return t;
    t = bindings_[id];
  }
  return t;
}

void Solver::Bind(size_t var_id, TermPtr value) {
  bindings_[var_id] = std::move(value);
  trail_.push_back(var_id);
}

void Solver::UndoTrail(size_t mark) {
  while (trail_.size() > mark) {
    bindings_[trail_.back()] = nullptr;
    trail_.pop_back();
  }
}

size_t Solver::FreshVar() {
  bindings_.push_back(nullptr);
  return bindings_.size() - 1;
}

bool Solver::Unify(TermPtr a, TermPtr b) {
  a = Deref(std::move(a));
  b = Deref(std::move(b));
  if (a->is_var()) {
    if (b->is_var() && a->var_id() == b->var_id()) return true;
    Bind(a->var_id(), b);
    return true;
  }
  if (b->is_var()) {
    Bind(b->var_id(), a);
    return true;
  }
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TermKind::kAtom:
      return a->name() == b->name();
    case TermKind::kInt:
      return a->int_value() == b->int_value();
    case TermKind::kFloat:
      return a->float_value() == b->float_value();
    case TermKind::kCompound: {
      if (a->name() != b->name() || a->arity() != b->arity()) return false;
      for (size_t i = 0; i < a->arity(); ++i) {
        if (!Unify(a->args()[i], b->args()[i])) return false;
      }
      return true;
    }
    case TermKind::kVar:
      return false;  // unreachable
  }
  return false;
}

TermPtr Solver::RenameTerm(const TermPtr& t, size_t var_base) {
  switch (t->kind()) {
    case TermKind::kVar:
      return Term::MakeVar(var_base + t->var_id(), t->name());
    case TermKind::kCompound: {
      std::vector<TermPtr> args;
      args.reserve(t->arity());
      for (const TermPtr& arg : t->args()) {
        args.push_back(RenameTerm(arg, var_base));
      }
      return Term::MakeCompound(t->name(), std::move(args));
    }
    default:
      return t;
  }
}

TermPtr Solver::ResolveCopy(const TermPtr& t,
                            std::map<size_t, TermPtr>* fresh_map) {
  TermPtr d = Deref(t);
  switch (d->kind()) {
    case TermKind::kVar: {
      auto it = fresh_map->find(d->var_id());
      if (it != fresh_map->end()) return it->second;
      TermPtr fresh = Term::MakeVar(FreshVar(), d->name());
      fresh_map->emplace(d->var_id(), fresh);
      return fresh;
    }
    case TermKind::kCompound: {
      std::vector<TermPtr> args;
      args.reserve(d->arity());
      for (const TermPtr& arg : d->args()) {
        args.push_back(ResolveCopy(arg, fresh_map));
      }
      return Term::MakeCompound(d->name(), std::move(args));
    }
    default:
      return d;
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Solver::SearchOutcome Solver::ErrorOut(Status status) {
  error_ = std::move(status);
  return SearchOutcome::kError;
}

Solver::SearchOutcome Solver::EmitSolution() {
  Solution solution;
  if (active_query_ != nullptr) {
    std::map<size_t, TermPtr> fresh;
    for (const auto& [name, id] : active_query_->var_names) {
      TermPtr value = ResolveCopy(Term::MakeVar(id, name), &fresh);
      // Variables the query left unbound are omitted (like the solution
      // display of interactive Prolog systems).
      if (value->is_var()) continue;
      solution.bindings[name] = std::move(value);
    }
  }
  ++solutions_found_;
  bool keep_going = callback_ != nullptr ? (*callback_)(solution) : true;
  if (!keep_going || solutions_found_ >= options_.max_solutions) {
    return SearchOutcome::kStopRequested;
  }
  return SearchOutcome::kExhausted;  // backtrack for more solutions
}

Solver::SearchOutcome Solver::SolveGoals(const std::vector<TermPtr>& goals,
                                         size_t depth) {
  if (++steps_ > options_.max_steps) {
    return ErrorOut(Status::ResourceExhausted(
        "inference step budget exceeded (" +
        std::to_string(options_.max_steps) + " steps)"));
  }
  if (goals.empty()) return EmitSolution();
  if (depth > options_.max_depth) {
    depth_limit_hit_ = true;
    return SearchOutcome::kExhausted;
  }

  TermPtr goal = Deref(goals.front());
  std::vector<TermPtr> rest(goals.begin() + 1, goals.end());

  if (goal->is_var()) {
    return ErrorOut(Status::InvalidArgument("unbound variable used as goal"));
  }
  if (goal->is_number()) {
    return ErrorOut(
        Status::InvalidArgument("number used as goal: " + goal->ToString()));
  }
  // Flatten stray conjunctions (e.g. from call/1 of a conjunction).
  if (goal->is_compound() && goal->name() == "," && goal->arity() == 2) {
    std::vector<TermPtr> expanded;
    TermParserFlatten(goal, &expanded);
    expanded.insert(expanded.end(), rest.begin(), rest.end());
    return SolveGoals(expanded, depth);
  }

  bool handled = false;
  SearchOutcome out = TryBuiltin(goal, rest, depth, &handled);
  if (handled) return out;

  const std::vector<Clause>& clauses = kb_->Lookup(goal->name(), goal->arity());
  for (const Clause& clause : clauses) {
    size_t mark = TrailMark();
    size_t base = bindings_.size();
    bindings_.resize(base + clause.num_vars, nullptr);
    TermPtr head = RenameTerm(clause.head, base);
    if (Unify(goal, head)) {
      std::vector<TermPtr> next;
      next.reserve(clause.body.size() + rest.size());
      for (const TermPtr& b : clause.body) next.push_back(RenameTerm(b, base));
      next.insert(next.end(), rest.begin(), rest.end());
      SearchOutcome sub = SolveGoals(next, depth + 1);
      if (sub != SearchOutcome::kExhausted) return sub;
    }
    UndoTrail(mark);
  }
  return SearchOutcome::kExhausted;
}

void Solver::TermParserFlatten(const TermPtr& t, std::vector<TermPtr>* out) {
  if (t->is_compound() && t->name() == "," && t->arity() == 2) {
    TermParserFlatten(t->args()[0], out);
    TermParserFlatten(t->args()[1], out);
    return;
  }
  out->push_back(t);
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

Result<Solver::Number> Solver::EvalArith(const TermPtr& t) {
  TermPtr d = Deref(t);
  if (d->is_int()) return Number{false, d->int_value(), 0};
  if (d->is_float()) return Number{true, 0, d->float_value()};
  if (d->is_var()) {
    return Status::InvalidArgument("arguments are not sufficiently instantiated");
  }
  if (d->is_atom()) {
    return Status::InvalidArgument("atom '" + d->name() + "' is not evaluable");
  }
  const std::string& op = d->name();
  if (d->arity() == 1) {
    KASKADE_ASSIGN_OR_RETURN(Number a, EvalArith(d->args()[0]));
    if (op == "-") {
      return a.is_float ? Number{true, 0, -a.f} : Number{false, -a.i, 0};
    }
    if (op == "+") return a;
    if (op == "abs") {
      return a.is_float ? Number{true, 0, std::fabs(a.f)}
                        : Number{false, std::llabs(a.i), 0};
    }
    if (op == "sign") {
      double v = a.AsDouble();
      return Number{false, v > 0 ? 1 : (v < 0 ? -1 : 0), 0};
    }
    return Status::InvalidArgument("unknown arithmetic function " + op + "/1");
  }
  if (d->arity() == 2) {
    KASKADE_ASSIGN_OR_RETURN(Number a, EvalArith(d->args()[0]));
    KASKADE_ASSIGN_OR_RETURN(Number b, EvalArith(d->args()[1]));
    bool flt = a.is_float || b.is_float;
    if (op == "+") {
      return flt ? Number{true, 0, a.AsDouble() + b.AsDouble()}
                 : Number{false, a.i + b.i, 0};
    }
    if (op == "-") {
      return flt ? Number{true, 0, a.AsDouble() - b.AsDouble()}
                 : Number{false, a.i - b.i, 0};
    }
    if (op == "*") {
      return flt ? Number{true, 0, a.AsDouble() * b.AsDouble()}
                 : Number{false, a.i * b.i, 0};
    }
    if (op == "/") {
      if (!flt && b.i != 0 && a.i % b.i == 0) return Number{false, a.i / b.i, 0};
      if (b.AsDouble() == 0) {
        return Status::InvalidArgument("division by zero");
      }
      return Number{true, 0, a.AsDouble() / b.AsDouble()};
    }
    if (op == "//") {
      if (flt) return Status::InvalidArgument("// requires integers");
      if (b.i == 0) return Status::InvalidArgument("division by zero");
      return Number{false, a.i / b.i, 0};
    }
    if (op == "mod") {
      if (flt) return Status::InvalidArgument("mod requires integers");
      if (b.i == 0) return Status::InvalidArgument("division by zero");
      int64_t m = a.i % b.i;
      if (m != 0 && ((m < 0) != (b.i < 0))) m += b.i;  // ISO mod sign
      return Number{false, m, 0};
    }
    if (op == "min") {
      return a.AsDouble() <= b.AsDouble() ? a : b;
    }
    if (op == "max") {
      return a.AsDouble() >= b.AsDouble() ? a : b;
    }
    return Status::InvalidArgument("unknown arithmetic function " + op + "/2");
  }
  return Status::InvalidArgument("unknown arithmetic term " + d->ToString());
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

Solver::SearchOutcome Solver::TryBuiltin(const TermPtr& goal,
                                         const std::vector<TermPtr>& rest,
                                         size_t depth, bool* handled) {
  *handled = true;
  const std::string& f = goal->name();
  const size_t n = goal->arity();
  auto arg = [&](size_t i) { return goal->args()[i]; };

  // -- control -------------------------------------------------------------
  if (n == 0 && (f == "true" || f == "!")) return SolveGoals(rest, depth);
  if (n == 0 && (f == "fail" || f == "false")) {
    return SearchOutcome::kExhausted;
  }
  if (n == 0 && f == "nl") return SolveGoals(rest, depth);
  if (n == 1 && (f == "write" || f == "writeln")) {
    return SolveGoals(rest, depth);  // output is discarded
  }

  // -- internal continuation hook -------------------------------------------
  if (f == "$cont" && n == 1) {
    TermPtr idx = Deref(arg(0));
    return continuations_[static_cast<size_t>(idx->int_value())]();
  }

  // -- unification -----------------------------------------------------------
  if (f == "=" && n == 2) {
    size_t mark = TrailMark();
    if (Unify(arg(0), arg(1))) {
      SearchOutcome out = SolveGoals(rest, depth);
      if (out != SearchOutcome::kExhausted) return out;
    }
    UndoTrail(mark);
    return SearchOutcome::kExhausted;
  }
  if (f == "\\=" && n == 2) {
    size_t mark = TrailMark();
    bool unifies = Unify(arg(0), arg(1));
    UndoTrail(mark);
    if (unifies) return SearchOutcome::kExhausted;
    return SolveGoals(rest, depth);
  }
  if ((f == "==" || f == "\\==") && n == 2) {
    std::map<size_t, TermPtr> fresh;
    // Two unbound occurrences of the same variable must compare equal, so
    // resolve both under one fresh map.
    TermPtr a = ResolveCopy(arg(0), &fresh);
    TermPtr b = ResolveCopy(arg(1), &fresh);
    bool equal = Term::Compare(a, b) == 0;
    if (equal == (f == "==")) return SolveGoals(rest, depth);
    return SearchOutcome::kExhausted;
  }

  // -- type tests --------------------------------------------------------------
  if (n == 1 && (f == "var" || f == "nonvar" || f == "atom" || f == "number" ||
                 f == "integer" || f == "float" || f == "atomic" ||
                 f == "compound" || f == "is_list")) {
    TermPtr d = Deref(arg(0));
    bool pass = false;
    if (f == "var") pass = d->is_var();
    if (f == "nonvar") pass = !d->is_var();
    if (f == "atom") pass = d->is_atom();
    if (f == "number") pass = d->is_number();
    if (f == "integer") pass = d->is_int();
    if (f == "float") pass = d->is_float();
    if (f == "atomic") pass = d->is_atom() || d->is_number();
    if (f == "compound") pass = d->is_compound();
    if (f == "is_list") {
      std::map<size_t, TermPtr> fresh;
      std::vector<TermPtr> items;
      pass = Term::ListItems(ResolveCopy(d, &fresh), &items);
    }
    if (pass) return SolveGoals(rest, depth);
    return SearchOutcome::kExhausted;
  }

  // -- arithmetic ---------------------------------------------------------------
  if (f == "is" && n == 2) {
    Result<Number> value = EvalArith(arg(1));
    if (!value.ok()) return ErrorOut(value.status());
    TermPtr num = value->is_float ? Term::MakeFloat(value->f)
                                  : Term::MakeInt(value->i);
    size_t mark = TrailMark();
    if (Unify(arg(0), num)) {
      SearchOutcome out = SolveGoals(rest, depth);
      if (out != SearchOutcome::kExhausted) return out;
    }
    UndoTrail(mark);
    return SearchOutcome::kExhausted;
  }
  if (n == 2 && (f == "<" || f == ">" || f == "=<" || f == ">=" ||
                 f == "=:=" || f == "=\\=")) {
    Result<Number> a = EvalArith(arg(0));
    if (!a.ok()) return ErrorOut(a.status());
    Result<Number> b = EvalArith(arg(1));
    if (!b.ok()) return ErrorOut(b.status());
    double x = a->AsDouble();
    double y = b->AsDouble();
    bool pass = (f == "<" && x < y) || (f == ">" && x > y) ||
                (f == "=<" && x <= y) || (f == ">=" && x >= y) ||
                (f == "=:=" && x == y) || (f == "=\\=" && x != y);
    if (pass) return SolveGoals(rest, depth);
    return SearchOutcome::kExhausted;
  }
  if (f == "succ" && n == 2) {
    TermPtr a = Deref(arg(0));
    TermPtr b = Deref(arg(1));
    size_t mark = TrailMark();
    bool unified = false;
    if (a->is_int()) {
      unified = Unify(b, Term::MakeInt(a->int_value() + 1));
    } else if (b->is_int()) {
      if (b->int_value() <= 0) return SearchOutcome::kExhausted;
      unified = Unify(a, Term::MakeInt(b->int_value() - 1));
    } else {
      return ErrorOut(Status::InvalidArgument(
          "succ/2: arguments are not sufficiently instantiated"));
    }
    if (unified) {
      SearchOutcome out = SolveGoals(rest, depth);
      if (out != SearchOutcome::kExhausted) return out;
    }
    UndoTrail(mark);
    return SearchOutcome::kExhausted;
  }
  if (f == "between" && n == 3) {
    TermPtr lo = Deref(arg(0));
    TermPtr hi = Deref(arg(1));
    if (!lo->is_int() || !hi->is_int()) {
      return ErrorOut(
          Status::InvalidArgument("between/3 requires integer bounds"));
    }
    TermPtr x = Deref(arg(2));
    if (x->is_int()) {
      if (x->int_value() >= lo->int_value() && x->int_value() <= hi->int_value()) {
        return SolveGoals(rest, depth);
      }
      return SearchOutcome::kExhausted;
    }
    if (!x->is_var()) return SearchOutcome::kExhausted;
    for (int64_t i = lo->int_value(); i <= hi->int_value(); ++i) {
      size_t mark = TrailMark();
      Bind(x->var_id(), Term::MakeInt(i));
      SearchOutcome out = SolveGoals(rest, depth);
      if (out != SearchOutcome::kExhausted) return out;
      UndoTrail(mark);
    }
    return SearchOutcome::kExhausted;
  }

  // -- negation as failure ------------------------------------------------------
  if (n == 1 && (f == "not" || f == "\\+")) {
    size_t mark = TrailMark();
    bool found = false;
    continuations_.push_back([&found]() {
      found = true;
      return SearchOutcome::kStopRequested;
    });
    std::vector<TermPtr> sub = {
        arg(0), Term::MakeCompound(
                    "$cont", {Term::MakeInt(
                                 static_cast<int64_t>(continuations_.size() - 1))})};
    SearchOutcome out = SolveGoals(sub, depth + 1);
    continuations_.pop_back();
    UndoTrail(mark);
    if (out == SearchOutcome::kError) return out;
    if (found) return SearchOutcome::kExhausted;
    return SolveGoals(rest, depth);
  }

  // -- all-solutions ----------------------------------------------------------
  if ((f == "findall" || f == "setof" || f == "bagof") && n == 3) {
    std::vector<TermPtr> results;
    size_t mark = TrailMark();
    continuations_.push_back([&]() {
      std::map<size_t, TermPtr> fresh;
      results.push_back(ResolveCopy(arg(0), &fresh));
      return SearchOutcome::kExhausted;  // keep backtracking for more
    });
    std::vector<TermPtr> sub = {
        arg(1), Term::MakeCompound(
                    "$cont", {Term::MakeInt(
                                 static_cast<int64_t>(continuations_.size() - 1))})};
    SearchOutcome out = SolveGoals(sub, depth + 1);
    continuations_.pop_back();
    UndoTrail(mark);
    if (out == SearchOutcome::kError) return out;
    if (f != "findall") {
      if (results.empty()) return SearchOutcome::kExhausted;
      if (f == "setof") {
        std::sort(results.begin(), results.end(),
                  [](const TermPtr& a, const TermPtr& b) {
                    return Term::Compare(a, b) < 0;
                  });
        results.erase(std::unique(results.begin(), results.end(),
                                  [](const TermPtr& a, const TermPtr& b) {
                                    return Term::Compare(a, b) == 0;
                                  }),
                      results.end());
      }
    }
    size_t mark2 = TrailMark();
    if (Unify(arg(2), Term::MakeList(results))) {
      SearchOutcome out2 = SolveGoals(rest, depth);
      if (out2 != SearchOutcome::kExhausted) return out2;
    }
    UndoTrail(mark2);
    return SearchOutcome::kExhausted;
  }

  // -- list utilities -----------------------------------------------------------
  if ((f == "sort" || f == "msort") && n == 2) {
    std::map<size_t, TermPtr> fresh;
    TermPtr list = ResolveCopy(arg(0), &fresh);
    std::vector<TermPtr> items;
    if (!Term::ListItems(list, &items)) {
      return ErrorOut(Status::InvalidArgument(f + "/2 requires a proper list"));
    }
    std::sort(items.begin(), items.end(),
              [](const TermPtr& a, const TermPtr& b) {
                return Term::Compare(a, b) < 0;
              });
    if (f == "sort") {
      items.erase(std::unique(items.begin(), items.end(),
                              [](const TermPtr& a, const TermPtr& b) {
                                return Term::Compare(a, b) == 0;
                              }),
                  items.end());
    }
    size_t mark = TrailMark();
    if (Unify(arg(1), Term::MakeList(items))) {
      SearchOutcome out = SolveGoals(rest, depth);
      if (out != SearchOutcome::kExhausted) return out;
    }
    UndoTrail(mark);
    return SearchOutcome::kExhausted;
  }
  if (f == "length" && n == 2) {
    // Walk list cells; handles bound lists and var-list-with-bound-length.
    TermPtr cur = Deref(arg(0));
    int64_t count = 0;
    while (cur->is_list_cell()) {
      ++count;
      cur = Deref(cur->args()[1]);
    }
    size_t mark = TrailMark();
    if (cur->is_empty_list()) {
      if (Unify(arg(1), Term::MakeInt(count))) {
        SearchOutcome out = SolveGoals(rest, depth);
        if (out != SearchOutcome::kExhausted) return out;
      }
      UndoTrail(mark);
      return SearchOutcome::kExhausted;
    }
    if (cur->is_var()) {
      TermPtr len = Deref(arg(1));
      if (!len->is_int() || len->int_value() < count) {
        UndoTrail(mark);
        return SearchOutcome::kExhausted;
      }
      std::vector<TermPtr> suffix;
      for (int64_t i = count; i < len->int_value(); ++i) {
        suffix.push_back(Term::MakeVar(FreshVar()));
      }
      if (Unify(cur, Term::MakeList(suffix))) {
        SearchOutcome out = SolveGoals(rest, depth);
        if (out != SearchOutcome::kExhausted) return out;
      }
      UndoTrail(mark);
      return SearchOutcome::kExhausted;
    }
    UndoTrail(mark);
    return SearchOutcome::kExhausted;
  }

  // -- call/N ---------------------------------------------------------------------
  if (f == "call" && n >= 1 && n <= 8) {
    TermPtr target = Deref(arg(0));
    if (target->is_var()) {
      return ErrorOut(Status::InvalidArgument("call/N on unbound variable"));
    }
    if (!target->is_atom() && !target->is_compound()) {
      return ErrorOut(Status::InvalidArgument("call/N target not callable"));
    }
    std::vector<TermPtr> args(target->args());
    for (size_t i = 1; i < n; ++i) args.push_back(arg(i));
    std::vector<TermPtr> next;
    next.reserve(1 + rest.size());
    next.push_back(Term::MakeCompound(target->name(), std::move(args)));
    next.insert(next.end(), rest.begin(), rest.end());
    return SolveGoals(next, depth + 1);
  }

  *handled = false;
  return SearchOutcome::kExhausted;
}

}  // namespace kaskade::prolog
