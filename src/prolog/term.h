/// \file term.h
/// \brief Prolog term representation for Kaskade's inference engine.
///
/// The paper evaluates view templates and constraint-mining rules in
/// SWI-Prolog (§IV); this module is the term layer of our from-scratch
/// replacement. Terms are immutable trees shared via `TermPtr`; variables
/// are indices into the solver's binding store.

#ifndef KASKADE_PROLOG_TERM_H_
#define KASKADE_PROLOG_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace kaskade::prolog {

class Term;
/// Shared immutable term handle.
using TermPtr = std::shared_ptr<const Term>;

/// \brief Discriminator for the five term shapes.
enum class TermKind { kAtom, kInt, kFloat, kVar, kCompound };

/// \brief An immutable Prolog term.
///
/// Lists use the standard encoding: `'.'(Head, Tail)` cells terminated by
/// the atom `[]`. Construction goes through the `Make*` factories.
class Term {
 public:
  TermKind kind() const { return kind_; }

  bool is_atom() const { return kind_ == TermKind::kAtom; }
  bool is_int() const { return kind_ == TermKind::kInt; }
  bool is_float() const { return kind_ == TermKind::kFloat; }
  bool is_var() const { return kind_ == TermKind::kVar; }
  bool is_compound() const { return kind_ == TermKind::kCompound; }
  bool is_number() const { return is_int() || is_float(); }

  /// Atom text, or compound functor name.
  const std::string& name() const { return name_; }
  int64_t int_value() const { return int_value_; }
  double float_value() const { return float_value_; }
  /// Binding-store index of a variable.
  size_t var_id() const { return var_id_; }

  const std::vector<TermPtr>& args() const { return args_; }
  size_t arity() const { return args_.size(); }

  /// True for `[]` or a `'.'/2` cell.
  bool is_list_cell() const {
    return is_compound() && name_ == "." && args_.size() == 2;
  }
  bool is_empty_list() const { return is_atom() && name_ == "[]"; }

  /// Renders the term in Prolog syntax (lists as [a,b], operators as
  /// canonical compounds, variables as their name or _G<id>).
  std::string ToString() const;

  /// Structural equality (variables equal iff same id; no dereferencing).
  static bool Equal(const TermPtr& a, const TermPtr& b);

  /// ISO standard order: Var < Number < Atom < Compound; numbers by value,
  /// atoms lexicographically, compounds by (arity, functor, args).
  /// Returns <0, 0, >0.
  static int Compare(const TermPtr& a, const TermPtr& b);

  /// \name Factories
  /// @{
  static TermPtr MakeAtom(std::string name);
  static TermPtr MakeInt(int64_t value);
  static TermPtr MakeFloat(double value);
  static TermPtr MakeVar(size_t id, std::string name = "");
  static TermPtr MakeCompound(std::string functor, std::vector<TermPtr> args);
  /// Builds a proper list from `items` (tail defaults to `[]`).
  static TermPtr MakeList(const std::vector<TermPtr>& items,
                          TermPtr tail = nullptr);
  static TermPtr EmptyList();
  /// @}

  /// If `list` is a proper list (after no dereferencing), appends its
  /// items to `*items` and returns true.
  static bool ListItems(const TermPtr& list, std::vector<TermPtr>* items);

 private:
  friend TermPtr MakeTermInternal(Term t);
  Term() = default;

  TermKind kind_ = TermKind::kAtom;
  std::string name_;
  int64_t int_value_ = 0;
  double float_value_ = 0;
  size_t var_id_ = 0;
  std::vector<TermPtr> args_;
};

}  // namespace kaskade::prolog

#endif  // KASKADE_PROLOG_TERM_H_
