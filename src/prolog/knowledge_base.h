/// \file knowledge_base.h
/// \brief Clause database for the inference engine, indexed by
/// functor/arity.
///
/// Holds the facts mined from the query and schema (§IV-A1), the
/// constraint-mining rules (§IV-A2), and the view templates (§IV-B).

#ifndef KASKADE_PROLOG_KNOWLEDGE_BASE_H_
#define KASKADE_PROLOG_KNOWLEDGE_BASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "prolog/parser.h"
#include "prolog/term.h"

namespace kaskade::prolog {

/// \brief An ordered clause store with first-argument-free functor/arity
/// indexing.
class KnowledgeBase {
 public:
  /// Creates a knowledge base; when `with_prelude` (default) the standard
  /// library rules (member/2, append/3, foldl/4, convlist/3, ...) are
  /// preloaded.
  explicit KnowledgeBase(bool with_prelude = true);

  /// Parses `program_text` and appends all clauses.
  Status Consult(const std::string& program_text);

  /// Appends a ground fact built programmatically (no parsing); the args
  /// must not contain variables.
  Status AssertFact(const std::string& functor, std::vector<TermPtr> args);

  /// Appends an already-parsed clause.
  void AddClause(Clause clause);

  /// Clauses whose head matches functor/arity, in assertion order.
  const std::vector<Clause>& Lookup(const std::string& functor,
                                    size_t arity) const;

  size_t num_clauses() const { return num_clauses_; }

  /// The Prolog source of the standard library preloaded by the default
  /// constructor (exposed for tests and documentation).
  static const char* PreludeSource();

 private:
  std::unordered_map<std::string, std::vector<Clause>> by_key_;
  std::vector<Clause> empty_;
  size_t num_clauses_ = 0;
};

}  // namespace kaskade::prolog

#endif  // KASKADE_PROLOG_KNOWLEDGE_BASE_H_
