/// \file crc32c.h
/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41) for durable-state
/// checksumming.
///
/// Every byte Kaskade persists — WAL records, checkpoint sections,
/// serialized graph sections — carries a CRC32C so a torn write, a
/// truncated file, or a flipped bit is detected at load time and
/// surfaced as `kDataLoss` instead of silently reconstructing a wrong
/// graph. Software table-driven implementation (no SSE4.2 dependency);
/// throughput is far above what the text formats need.

#ifndef KASKADE_COMMON_CRC32C_H_
#define KASKADE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace kaskade {

/// Extends a running CRC-32C with `n` more bytes. Start a fresh
/// computation with `crc = 0`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC-32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(const std::string& s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace kaskade

#endif  // KASKADE_COMMON_CRC32C_H_
