/// \file result.h
/// \brief `Result<T>`: value-or-Status, the fallible-producer counterpart
/// of `Status` (see status.h).

#ifndef KASKADE_COMMON_RESULT_H_
#define KASKADE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace kaskade {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`. Constructing from an OK status is a programming
/// error (asserted in debug builds, coerced to Internal otherwise).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \name Value accessors; must only be called when `ok()`.
  /// @{
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  /// @}

  /// Returns the held value or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace kaskade

/// \brief Assigns the value of a `Result` expression to `lhs`, or
/// propagates its error status.
#define KASKADE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define KASKADE_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define KASKADE_ASSIGN_OR_RETURN_UNIQ(a, b) KASKADE_ASSIGN_OR_RETURN_CAT(a, b)
#define KASKADE_ASSIGN_OR_RETURN(lhs, expr)                                  \
  KASKADE_ASSIGN_OR_RETURN_IMPL(                                             \
      KASKADE_ASSIGN_OR_RETURN_UNIQ(_result_tmp_, __LINE__), lhs, expr)

#endif  // KASKADE_COMMON_RESULT_H_
