#include "common/crc32c.h"

#include <array>

namespace kaskade {

namespace {

// Reflected CRC-32C: process bytes LSB-first against the reversed
// polynomial 0x82F63B78. The table is built once at startup; the
// computation is the standard one-byte-per-step Sarwate loop.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPolyReflected = 0x82F63B78u;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kaskade
