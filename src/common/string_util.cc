#include "common/string_util.h"

#include <cctype>

namespace kaskade {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpperAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatWithCommas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace kaskade
