/// \file string_util.h
/// \brief Small string helpers shared across modules.

#ifndef KASKADE_COMMON_STRING_UTIL_H_
#define KASKADE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kaskade {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Returns `input` with ASCII whitespace removed from both ends.
std::string_view TrimWhitespace(std::string_view input);

/// ASCII lower-casing (locale-independent).
std::string ToLowerAscii(std::string_view input);

/// ASCII upper-casing (locale-independent).
std::string ToUpperAscii(std::string_view input);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats `value` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(long long value);

}  // namespace kaskade

#endif  // KASKADE_COMMON_STRING_UTIL_H_
