/// \file status.h
/// \brief Status-based error model used across all Kaskade public APIs.
///
/// Kaskade follows the Arrow/RocksDB convention of returning a `Status`
/// (or `Result<T>`, see result.h) instead of throwing exceptions across
/// library boundaries. Exceptions are never thrown out of public entry
/// points; internal code is exception-free as well.

#ifndef KASKADE_COMMON_STATUS_H_
#define KASKADE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace kaskade {

/// \brief Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
  /// Durable state is missing, truncated, or fails its checksum: the
  /// bytes on disk cannot be trusted to reconstruct what was written.
  /// Recovery paths treat a kDataLoss tail as "stop here, never
  /// propagate garbage".
  kDataLoss,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// message string otherwise. Functions that produce a value use
/// `Result<T>` instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// \name Factory helpers, one per error code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace kaskade

/// \brief Propagates a non-OK Status from the current function.
#define KASKADE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::kaskade::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // KASKADE_COMMON_STATUS_H_
