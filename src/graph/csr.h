/// \file csr.h
/// \brief Immutable compressed-sparse-row snapshot of a property graph.
///
/// `PropertyGraph` optimizes for append-only mutation (per-vertex edge-id
/// vectors); traversal-heavy analytics want contiguous neighbor arrays.
/// `CsrGraph` is a frozen topology snapshot in the style of
/// shared-memory graph frameworks (Ligra et al., which the paper's
/// related work surveys): O(1) neighbor slices, cache-friendly scans, no
/// property access (go back to the base graph by vertex id for that —
/// ids are preserved).

#ifndef KASKADE_GRAPH_CSR_H_
#define KASKADE_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"

namespace kaskade::graph {

/// \brief A contiguous, read-only neighbor slice.
struct NeighborSpan {
  const VertexId* data = nullptr;
  size_t size = 0;

  const VertexId* begin() const { return data; }
  const VertexId* end() const { return data + size; }
  VertexId operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

/// \brief CSR topology snapshot (out- and in-adjacency), vertex ids
/// shared with the source graph.
class CsrGraph {
 public:
  /// Freezes the topology of `g`. O(|V| + |E|).
  static CsrGraph Build(const PropertyGraph& g);

  size_t NumVertices() const { return vertex_types_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }

  NeighborSpan OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  NeighborSpan InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  VertexTypeId VertexType(VertexId v) const { return vertex_types_[v]; }

  /// Edge type of the i-th out-edge of v (parallel to OutNeighbors).
  EdgeTypeId OutEdgeType(VertexId v, size_t i) const {
    return out_edge_types_[out_offsets_[v] + i];
  }

 private:
  std::vector<uint64_t> out_offsets_;  // |V|+1
  std::vector<VertexId> out_targets_;  // |E|
  std::vector<EdgeTypeId> out_edge_types_;
  std::vector<uint64_t> in_offsets_;
  std::vector<VertexId> in_sources_;
  std::vector<VertexTypeId> vertex_types_;
};

/// Bounded BFS over a CSR snapshot: distinct vertices within `max_hops`
/// of `source` (excluding the source), like `CountReachable`.
size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward = false);

/// Label propagation over a CSR snapshot; semantics identical to
/// `LabelPropagation` (most frequent neighbor label over in+out edges,
/// smaller label on ties, synchronous, early exit).
std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_CSR_H_
