/// \file csr.h
/// \brief Immutable compressed-sparse-row snapshot of a property graph.
///
/// `PropertyGraph` optimizes for append-only mutation (per-vertex edge-id
/// vectors); traversal-heavy analytics want contiguous neighbor arrays.
/// `CsrGraph` is a frozen topology snapshot in the style of
/// shared-memory graph frameworks (Ligra et al., which the paper's
/// related work surveys): O(1) neighbor slices and cache-friendly scans.
///
/// The snapshot is *type-partitioned*: within each vertex's neighbor
/// slice, edges are grouped by edge type, and a per-vertex type directory
/// maps an `EdgeTypeId` to its contiguous sub-slice. A typed expansion —
/// the MATCH hot path — is therefore an O(#types-at-vertex) directory
/// probe plus a contiguous scan, instead of a filter over every incident
/// edge. Base-graph `EdgeId` lineage arrays run parallel to the neighbor
/// arrays, so property access on a traversed edge goes straight back to
/// the source graph (vertex ids are shared with the source graph too).
///
/// Dead (tombstoned) vertices keep empty rows so base ids stay valid as
/// CSR indices; dead edges are dropped at build time.

#ifndef KASKADE_GRAPH_CSR_H_
#define KASKADE_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/delta.h"
#include "graph/property_graph.h"

namespace kaskade::graph {

/// \brief Tuning for incremental snapshot patching (`CsrGraph::PatchedFrom`).
struct CsrPatchOptions {
  /// Patch only while (vertices incident to the delta) / |V| stays at or
  /// below this fraction; above it re-deriving dirty slices approaches
  /// the cost of a full rebuild (which also has better locality), so
  /// `PatchedFrom` falls back to `Build`. Set to 0 to disable patching
  /// entirely (every snapshot is a full rebuild — the PR-3 behavior).
  double max_dirty_fraction = 0.20;

  bool enabled() const { return max_dirty_fraction > 0.0; }
};

/// \brief What one `PatchedFrom` call did (telemetry for benches/tests).
struct CsrPatchStats {
  /// Pre-existing vertices whose out- or in-slice had to be re-derived,
  /// plus vertices appended since the previous snapshot.
  size_t dirty_vertices = 0;
  /// True when the dirty fraction exceeded the threshold and the result
  /// came from a full `Build` instead of the patch path.
  bool full_rebuild = false;
};

/// \brief A contiguous, read-only neighbor slice.
struct NeighborSpan {
  const VertexId* data = nullptr;
  size_t size = 0;

  const VertexId* begin() const { return data; }
  const VertexId* end() const { return data + size; }
  VertexId operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

/// \brief A neighbor slice with the parallel base-graph edge-id lineage:
/// `edge_ids[i]` is the base edge that contributed `vertices[i]`.
struct EdgeSpan {
  const VertexId* vertices = nullptr;
  const EdgeId* edge_ids = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }
  VertexId vertex(size_t i) const { return vertices[i]; }
  EdgeId edge_id(size_t i) const { return edge_ids[i]; }
};

/// \brief CSR topology snapshot (out- and in-adjacency), vertex ids
/// shared with the source graph, neighbors grouped by edge type.
class CsrGraph {
 public:
  /// Freezes the topology of `g`. O(|V| + |E|).
  static CsrGraph Build(const PropertyGraph& g);

  /// Derives the snapshot of `g` from `prev`, a snapshot of an earlier
  /// state of the same graph, re-deriving only the slices of vertices
  /// incident to what changed (the *dirty set*): `removed_edges` must
  /// list exactly the edge ids tombstoned in `g` since `prev` was built
  /// (their records stay readable), and every edge id appended since is
  /// discovered from the id space (`prev.edge_id_space()` up to
  /// `g.NumEdges()`), so insertions need no explicit list. Untouched
  /// vertices' neighbor slices, lineage arrays, and type directories are
  /// block-copied from `prev`; dirty vertices are re-derived from `g`'s
  /// adjacency, preserving the type-partitioned, sorted-by-neighbor
  /// invariants `Build` guarantees — the result is indistinguishable
  /// from `Build(g)`. O(|V| + |delta| + sum of dirty degrees) instead of
  /// O(|V| + |E| log deg).
  ///
  /// Falls back to `Build(g)` automatically when the dirty fraction
  /// exceeds `options.max_dirty_fraction` (reported via
  /// `stats->full_rebuild`).
  static CsrGraph PatchedFrom(const CsrGraph& prev, const PropertyGraph& g,
                              const std::vector<EdgeId>& removed_edges,
                              const CsrPatchOptions& options = {},
                              CsrPatchStats* stats = nullptr);

  /// As above with the removals taken from one applied `GraphDelta`
  /// batch (`g` must be the post-delta graph).
  static CsrGraph PatchedFrom(const CsrGraph& prev, const PropertyGraph& g,
                              const GraphDelta& delta,
                              const CsrPatchOptions& options = {},
                              CsrPatchStats* stats = nullptr) {
    return PatchedFrom(prev, g, delta.edge_removals, options, stats);
  }

  size_t NumVertices() const { return vertex_types_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }

  /// The source graph's edge *id space* (`PropertyGraph::NumEdges()`,
  /// dead ids included) when this snapshot was taken. Edge ids at or
  /// beyond it were inserted after the snapshot — which is how
  /// `PatchedFrom` discovers insertions, and how the executor's
  /// staleness tripwire catches balanced insert+remove churn that leaves
  /// the live count unchanged.
  EdgeId edge_id_space() const { return edge_id_space_; }

  NeighborSpan OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  NeighborSpan InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Full out-slice of `v` with edge-id lineage (all edge types,
  /// grouped by type).
  EdgeSpan OutEdges(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_edge_ids_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  EdgeSpan InEdges(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_edge_ids_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  /// Out-edges of `v` with edge type `type`, as one contiguous slice
  /// sorted ascending by target id (so membership checks can binary
  /// search). `kInvalidTypeId` means "any type" and returns the full
  /// slice (type-grouped, sorted within each type group).
  EdgeSpan TypedOutEdges(VertexId v, EdgeTypeId type) const {
    if (type == kInvalidTypeId) return OutEdges(v);
    return TypedSlice(out_type_dir_offsets_, out_type_dirs_, out_offsets_,
                      out_targets_, out_edge_ids_, v, type);
  }
  EdgeSpan TypedInEdges(VertexId v, EdgeTypeId type) const {
    if (type == kInvalidTypeId) return InEdges(v);
    return TypedSlice(in_type_dir_offsets_, in_type_dirs_, in_offsets_,
                      in_sources_, in_edge_ids_, v, type);
  }

  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  VertexTypeId VertexType(VertexId v) const { return vertex_types_[v]; }

  /// Edge type of the i-th out-edge of v (parallel to OutNeighbors).
  EdgeTypeId OutEdgeType(VertexId v, size_t i) const {
    return out_edge_types_[out_offsets_[v] + i];
  }

  /// Base-graph edge id of the i-th out-edge of v (parallel to
  /// OutNeighbors).
  EdgeId OutEdgeId(VertexId v, size_t i) const {
    return out_edge_ids_[out_offsets_[v] + i];
  }

 private:
  /// One entry of a vertex's type directory: edges of `type` occupy
  /// [begin, next entry's begin or the vertex's slice end).
  struct TypeDirEntry {
    EdgeTypeId type;
    uint64_t begin;  ///< Absolute index into the neighbor arrays.
  };

  static EdgeSpan TypedSlice(const std::vector<uint64_t>& dir_offsets,
                             const std::vector<TypeDirEntry>& dirs,
                             const std::vector<uint64_t>& offsets,
                             const std::vector<VertexId>& vertices,
                             const std::vector<EdgeId>& edge_ids, VertexId v,
                             EdgeTypeId type) {
    const uint64_t dir_end = dir_offsets[v + 1];
    for (uint64_t d = dir_offsets[v]; d < dir_end; ++d) {
      if (dirs[d].type != type) continue;
      uint64_t begin = dirs[d].begin;
      uint64_t end = d + 1 < dir_end ? dirs[d + 1].begin : offsets[v + 1];
      return {vertices.data() + begin, edge_ids.data() + begin, end - begin};
    }
    return {};
  }

  std::vector<uint64_t> out_offsets_;  // |V|+1
  std::vector<VertexId> out_targets_;  // |E|, grouped by edge type
  std::vector<EdgeTypeId> out_edge_types_;
  std::vector<EdgeId> out_edge_ids_;  // base-graph lineage, parallel
  std::vector<uint64_t> in_offsets_;
  std::vector<VertexId> in_sources_;  // |E|, grouped by edge type
  std::vector<EdgeId> in_edge_ids_;
  std::vector<VertexTypeId> vertex_types_;
  /// Per-vertex type directories (CSR-of-CSR): vertex v's directory is
  /// `*_type_dirs_[*_type_dir_offsets_[v] .. *_type_dir_offsets_[v+1])`,
  /// one entry per distinct edge type incident in that direction.
  std::vector<uint64_t> out_type_dir_offsets_;  // |V|+1
  std::vector<TypeDirEntry> out_type_dirs_;
  std::vector<uint64_t> in_type_dir_offsets_;
  std::vector<TypeDirEntry> in_type_dirs_;
  EdgeId edge_id_space_ = 0;  ///< Source NumEdges() at snapshot time.
};

/// Bounded BFS over a CSR snapshot: distinct vertices within `max_hops`
/// of `source` (excluding the source), like `CountReachable`.
size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward = false);

/// Label propagation over a CSR snapshot; semantics identical to
/// `LabelPropagation` (most frequent neighbor label over in+out edges,
/// smaller label on ties, synchronous, early exit).
std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_CSR_H_
