/// \file csr.h
/// \brief Immutable compressed-sparse-row snapshot of a property graph,
/// stored as fixed-size immutable segments shared between generations.
///
/// `PropertyGraph` optimizes for append-only mutation (per-vertex edge-id
/// vectors); traversal-heavy analytics want contiguous neighbor arrays.
/// `CsrGraph` is a frozen topology snapshot in the style of
/// shared-memory graph frameworks (Ligra et al., which the paper's
/// related work surveys): O(1) neighbor slices and cache-friendly scans.
///
/// The snapshot is *type-partitioned*: within each vertex's neighbor
/// slice, edges are grouped by edge type, and a per-vertex type directory
/// maps an `EdgeTypeId` to its contiguous sub-slice. A typed expansion —
/// the MATCH hot path — is therefore an O(#types-at-vertex) directory
/// probe plus a contiguous scan, instead of a filter over every incident
/// edge. Base-graph `EdgeId` lineage arrays run parallel to the neighbor
/// arrays, so property access on a traversed edge goes straight back to
/// the source graph (vertex ids are shared with the source graph too).
///
/// Dead (tombstoned) vertices keep empty rows so base ids stay valid as
/// CSR indices; dead edges are dropped at build time.
///
/// **Segmented storage.** The vertex id space is cut into fixed-size
/// ranges of `kCsrSegmentVertices` ids; each range's slices, lineage and
/// type directories live in one immutable `CsrSegment` held by
/// `shared_ptr`. `PatchedFrom` rebuilds only the segments containing
/// vertices incident to the delta and *shares* every clean segment with
/// the previous generation by refcount — patch cost is O(dirty
/// segments), independent of |E|, where the former monolithic layout
/// memcpy'd ~|E| bytes of clean runs per patch. Both `Build` and
/// `PatchedFrom` produce each segment through the same `BuildSegment`
/// routine, so a patched snapshot is bit-identical to a fresh build by
/// construction. The segment boundaries double as the engine's shard
/// boundaries (`ShardOfVertex`).

#ifndef KASKADE_GRAPH_CSR_H_
#define KASKADE_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/delta.h"
#include "graph/property_graph.h"

namespace kaskade::graph {

/// Log2 of the segment width: each `CsrSegment` covers
/// `kCsrSegmentVertices` consecutive vertex ids. Power of two so the
/// hot-path accessors are a shift and a mask.
inline constexpr uint32_t kCsrSegmentShift = 10;
inline constexpr uint32_t kCsrSegmentVertices = 1u << kCsrSegmentShift;
inline constexpr uint32_t kCsrSegmentMask = kCsrSegmentVertices - 1;

/// Segment index of the segment containing vertex `v`.
inline size_t CsrSegmentOf(VertexId v) { return v >> kCsrSegmentShift; }

/// Number of segments covering a vertex id space of size `n`.
inline size_t CsrSegmentCount(size_t n) {
  return (n + kCsrSegmentVertices - 1) >> kCsrSegmentShift;
}

/// \brief Shard router: vertices map to shards by segment, so one
/// segment (and everything a patch rebuilds) lives in exactly one
/// shard. Used by the engine's per-shard snapshot pipelines and the
/// MATCH scatter-gather layer; `shards == 1` maps everything to 0.
inline uint32_t ShardOfVertex(VertexId v, size_t shards) {
  return static_cast<uint32_t>(CsrSegmentOf(v) % shards);
}
inline uint32_t ShardOfSegment(size_t segment, size_t shards) {
  return static_cast<uint32_t>(segment % shards);
}

/// \brief Tuning for incremental snapshot patching (`CsrGraph::PatchedFrom`).
struct CsrPatchOptions {
  /// Patch only while (vertices incident to the delta) / |V| stays at or
  /// below this fraction; above it re-deriving dirty slices approaches
  /// the cost of a full rebuild (which also has better locality), so
  /// `PatchedFrom` falls back to `Build`. Set to 0 to disable patching
  /// entirely (every snapshot is a full rebuild — the PR-3 behavior).
  /// The catalog can auto-tune its effective value at runtime from the
  /// observed segments-copied telemetry (`ViewCatalog`).
  double max_dirty_fraction = 0.20;

  bool enabled() const { return max_dirty_fraction > 0.0; }
};

/// \brief What one `PatchedFrom` call did (telemetry for benches/tests).
struct CsrPatchStats {
  /// Pre-existing vertices whose out- or in-slice had to be re-derived,
  /// plus vertices appended since the previous snapshot.
  size_t dirty_vertices = 0;
  /// Segments re-derived from the graph (they contained dirty or
  /// appended vertices). On the full-rebuild path this counts every
  /// segment — a rebuild copies everything.
  size_t segments_copied = 0;
  /// Segments shared with the previous snapshot by refcount (zero bytes
  /// copied for them).
  size_t segments_shared = 0;
  /// Total segments in the produced snapshot.
  size_t total_segments = 0;
  /// Heap bytes of the re-derived segments (the actual copy cost of the
  /// patch; shared segments contribute nothing).
  size_t bytes_copied = 0;
  /// True when the dirty fraction exceeded the threshold and the result
  /// came from a full `Build` instead of the patch path.
  bool full_rebuild = false;
};

/// \brief A contiguous, read-only neighbor slice.
struct NeighborSpan {
  const VertexId* data = nullptr;
  size_t size = 0;

  const VertexId* begin() const { return data; }
  const VertexId* end() const { return data + size; }
  VertexId operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

/// \brief A neighbor slice with the parallel base-graph edge-id lineage:
/// `edge_ids[i]` is the base edge that contributed `vertices[i]`.
struct EdgeSpan {
  const VertexId* vertices = nullptr;
  const EdgeId* edge_ids = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }
  VertexId vertex(size_t i) const { return vertices[i]; }
  EdgeId edge_id(size_t i) const { return edge_ids[i]; }
};

/// \brief One immutable segment: the CSR rows of vertices
/// `[first_vertex, first_vertex + num_vertices)`. All offsets are local
/// to the segment's own arrays. Built once, never mutated afterwards —
/// generations share clean segments by `shared_ptr`.
struct CsrSegment {
  /// One entry of a vertex's type directory: edges of `type` occupy
  /// [begin, next entry's begin or the vertex's slice end).
  struct TypeDirEntry {
    EdgeTypeId type;
    uint64_t begin;  ///< Index into this segment's neighbor arrays.
  };

  VertexId first_vertex = 0;
  uint32_t num_vertices = 0;  ///< ≤ kCsrSegmentVertices (tail may be short).

  std::vector<uint64_t> out_offsets;  // num_vertices + 1
  std::vector<VertexId> out_targets;  // grouped by edge type per vertex
  std::vector<EdgeTypeId> out_edge_types;
  std::vector<EdgeId> out_edge_ids;  // base-graph lineage, parallel
  std::vector<uint64_t> in_offsets;
  std::vector<VertexId> in_sources;
  std::vector<EdgeId> in_edge_ids;
  std::vector<VertexTypeId> vertex_types;  // num_vertices
  /// Per-vertex type directories (CSR-of-CSR): local vertex l's
  /// directory is `*_type_dirs[*_type_dir_offsets[l] ..
  /// *_type_dir_offsets[l+1])`, one entry per distinct incident type.
  std::vector<uint64_t> out_type_dir_offsets;  // num_vertices + 1
  std::vector<TypeDirEntry> out_type_dirs;
  std::vector<uint64_t> in_type_dir_offsets;
  std::vector<TypeDirEntry> in_type_dirs;

  /// Heap bytes held by this segment's arrays (copy-cost telemetry).
  size_t ByteSize() const;
};

using CsrSegmentPtr = std::shared_ptr<const CsrSegment>;

/// \brief CSR topology snapshot (out- and in-adjacency), vertex ids
/// shared with the source graph, neighbors grouped by edge type,
/// storage segmented and structurally shared between generations.
class CsrGraph {
 public:
  /// Freezes the topology of `g`. O(|V| + |E|).
  static CsrGraph Build(const PropertyGraph& g);

  /// Builds the single segment `seg` (vertex ids
  /// `[seg << kCsrSegmentShift, ...)`) from `g`'s current adjacency.
  /// `Build` and `PatchedFrom` both produce segments through this
  /// routine, so patched snapshots equal fresh builds bit-for-bit; the
  /// per-shard segment store uses it to rebuild exactly the segments a
  /// shard dirtied.
  static CsrSegmentPtr BuildSegment(const PropertyGraph& g, size_t seg);

  /// Assembles a snapshot from already-built segments (the per-shard
  /// segment store's publish path). `segments[i]` must cover vertex ids
  /// `[i << kCsrSegmentShift, ...)` of a graph with `num_vertices`
  /// vertices and edge id space `edge_id_space`.
  static CsrGraph FromSegments(std::vector<CsrSegmentPtr> segments,
                               size_t num_vertices, EdgeId edge_id_space);

  /// Derives the snapshot of `g` from `prev`, a snapshot of an earlier
  /// state of the same graph, rebuilding only the *segments* containing
  /// vertices incident to what changed: `removed_edges` must list
  /// exactly the edge ids tombstoned in `g` since `prev` was built
  /// (their records stay readable), and every edge id appended since is
  /// discovered from the id space (`prev.edge_id_space()` up to
  /// `g.NumEdges()`), so insertions need no explicit list. Clean
  /// segments are shared with `prev` by refcount (zero copy); dirty
  /// segments are re-derived from `g`'s adjacency via `BuildSegment`,
  /// so the result is indistinguishable from `Build(g)`. Copy cost is
  /// O(dirty segments), independent of |E|.
  ///
  /// Falls back to `Build(g)` automatically when the dirty *vertex*
  /// fraction exceeds `options.max_dirty_fraction` (reported via
  /// `stats->full_rebuild`); the segment-level copy/share counts in
  /// `stats` let callers tune that threshold from observed behavior.
  static CsrGraph PatchedFrom(const CsrGraph& prev, const PropertyGraph& g,
                              const std::vector<EdgeId>& removed_edges,
                              const CsrPatchOptions& options = {},
                              CsrPatchStats* stats = nullptr);

  /// As above with the removals taken from one applied `GraphDelta`
  /// batch (`g` must be the post-delta graph).
  static CsrGraph PatchedFrom(const CsrGraph& prev, const PropertyGraph& g,
                              const GraphDelta& delta,
                              const CsrPatchOptions& options = {},
                              CsrPatchStats* stats = nullptr) {
    return PatchedFrom(prev, g, delta.edge_removals, options, stats);
  }

  size_t NumVertices() const { return num_vertices_; }
  size_t NumEdges() const { return num_edges_; }

  /// The source graph's edge *id space* (`PropertyGraph::NumEdges()`,
  /// dead ids included) when this snapshot was taken. Edge ids at or
  /// beyond it were inserted after the snapshot — which is how
  /// `PatchedFrom` discovers insertions, and how the executor's
  /// staleness tripwire catches balanced insert+remove churn that leaves
  /// the live count unchanged.
  EdgeId edge_id_space() const { return edge_id_space_; }

  /// Segment store introspection (sharing tests, the per-shard store,
  /// and copy-cost accounting).
  size_t num_segments() const { return segments_.size(); }
  const CsrSegmentPtr& segment(size_t i) const { return segments_[i]; }

  NeighborSpan OutNeighbors(VertexId v) const {
    const CsrSegment& s = Seg(v);
    const uint32_t l = v & kCsrSegmentMask;
    return {s.out_targets.data() + s.out_offsets[l],
            s.out_offsets[l + 1] - s.out_offsets[l]};
  }
  NeighborSpan InNeighbors(VertexId v) const {
    const CsrSegment& s = Seg(v);
    const uint32_t l = v & kCsrSegmentMask;
    return {s.in_sources.data() + s.in_offsets[l],
            s.in_offsets[l + 1] - s.in_offsets[l]};
  }

  /// Full out-slice of `v` with edge-id lineage (all edge types,
  /// grouped by type).
  EdgeSpan OutEdges(VertexId v) const {
    const CsrSegment& s = Seg(v);
    const uint32_t l = v & kCsrSegmentMask;
    return {s.out_targets.data() + s.out_offsets[l],
            s.out_edge_ids.data() + s.out_offsets[l],
            s.out_offsets[l + 1] - s.out_offsets[l]};
  }
  EdgeSpan InEdges(VertexId v) const {
    const CsrSegment& s = Seg(v);
    const uint32_t l = v & kCsrSegmentMask;
    return {s.in_sources.data() + s.in_offsets[l],
            s.in_edge_ids.data() + s.in_offsets[l],
            s.in_offsets[l + 1] - s.in_offsets[l]};
  }

  /// Out-edges of `v` with edge type `type`, as one contiguous slice
  /// sorted ascending by target id (so membership checks can binary
  /// search). `kInvalidTypeId` means "any type" and returns the full
  /// slice (type-grouped, sorted within each type group).
  EdgeSpan TypedOutEdges(VertexId v, EdgeTypeId type) const {
    if (type == kInvalidTypeId) return OutEdges(v);
    const CsrSegment& s = Seg(v);
    return TypedSlice(s.out_type_dir_offsets, s.out_type_dirs, s.out_offsets,
                      s.out_targets, s.out_edge_ids, v & kCsrSegmentMask,
                      type);
  }
  EdgeSpan TypedInEdges(VertexId v, EdgeTypeId type) const {
    if (type == kInvalidTypeId) return InEdges(v);
    const CsrSegment& s = Seg(v);
    return TypedSlice(s.in_type_dir_offsets, s.in_type_dirs, s.in_offsets,
                      s.in_sources, s.in_edge_ids, v & kCsrSegmentMask, type);
  }

  size_t OutDegree(VertexId v) const {
    const CsrSegment& s = Seg(v);
    const uint32_t l = v & kCsrSegmentMask;
    return s.out_offsets[l + 1] - s.out_offsets[l];
  }
  size_t InDegree(VertexId v) const {
    const CsrSegment& s = Seg(v);
    const uint32_t l = v & kCsrSegmentMask;
    return s.in_offsets[l + 1] - s.in_offsets[l];
  }

  VertexTypeId VertexType(VertexId v) const {
    return Seg(v).vertex_types[v & kCsrSegmentMask];
  }

  /// Edge type of the i-th out-edge of v (parallel to OutNeighbors).
  EdgeTypeId OutEdgeType(VertexId v, size_t i) const {
    const CsrSegment& s = Seg(v);
    return s.out_edge_types[s.out_offsets[v & kCsrSegmentMask] + i];
  }

  /// Base-graph edge id of the i-th out-edge of v (parallel to
  /// OutNeighbors).
  EdgeId OutEdgeId(VertexId v, size_t i) const {
    const CsrSegment& s = Seg(v);
    return s.out_edge_ids[s.out_offsets[v & kCsrSegmentMask] + i];
  }

 private:
  const CsrSegment& Seg(VertexId v) const {
    return *segments_[v >> kCsrSegmentShift];
  }

  static EdgeSpan TypedSlice(const std::vector<uint64_t>& dir_offsets,
                             const std::vector<CsrSegment::TypeDirEntry>& dirs,
                             const std::vector<uint64_t>& offsets,
                             const std::vector<VertexId>& vertices,
                             const std::vector<EdgeId>& edge_ids, uint32_t l,
                             EdgeTypeId type) {
    const uint64_t dir_end = dir_offsets[l + 1];
    for (uint64_t d = dir_offsets[l]; d < dir_end; ++d) {
      if (dirs[d].type != type) continue;
      uint64_t begin = dirs[d].begin;
      uint64_t end = d + 1 < dir_end ? dirs[d + 1].begin : offsets[l + 1];
      return {vertices.data() + begin, edge_ids.data() + begin, end - begin};
    }
    return {};
  }

  std::vector<CsrSegmentPtr> segments_;  // segments_[i] covers ids i<<shift..
  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;      ///< Live edges in the snapshot.
  EdgeId edge_id_space_ = 0;  ///< Source NumEdges() at snapshot time.
};

/// Bounded BFS over a CSR snapshot: distinct vertices within `max_hops`
/// of `source` (excluding the source), like `CountReachable`.
size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward = false);

/// Label propagation over a CSR snapshot; semantics identical to
/// `LabelPropagation` (most frequent neighbor label over in+out edges,
/// smaller label on ties, synchronous, early exit).
std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_CSR_H_
