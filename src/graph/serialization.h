/// \file serialization.h
/// \brief Text serialization for property graphs and mutation deltas.
///
/// A line-oriented, diff-friendly format so graphs and materialized views
/// can be saved, shipped, and reloaded (Kaskade materializes views as
/// physical data objects — this is their on-disk form in this
/// implementation). Since version 2 the format is integrity-checked:
/// every section carries a CRC32C and the file ends with a whole-file
/// CRC, so truncation or corruption fails the load with `kDataLoss`
/// instead of constructing a silently wrong graph:
///
/// ```
/// kaskade-graph 2
/// section schema 3
/// vtype Job
/// vtype File
/// etype WRITES_TO Job File
/// crc schema 1a2b3c4d
/// section vertices 2
/// vertex Job CPU=d:12.5 name=s:job\_0
/// vertex File
/// crc vertices 5e6f7a8b
/// section edges 1
/// edge 0 1 WRITES_TO timestamp=i:7
/// crc edges 9c0d1e2f
/// end 3a4b5c6d
/// ```
///
/// Property values are typed (`i:`/`d:`/`s:`/`b:`/`n:`); strings escape
/// whitespace, `=`, and backslash with `\xx` hex escapes. Vertices appear
/// before edges; ids are implicit (declaration order), matching the
/// append-only id assignment of `PropertyGraph`.
///
/// By default dead elements are dropped and ids compacted. Durability
/// consumers (checkpoints, whose WAL tail references pre-checkpoint edge
/// ids) pass `SaveOptions::preserve_tombstones`, which writes dead
/// elements as `xvertex`/`xedge` records in id order so the reloaded
/// graph reproduces the exact id space, tombstones included.
///
/// Version 1 files (no sections, no checksums) remain loadable.

#ifndef KASKADE_GRAPH_SERIALIZATION_H_
#define KASKADE_GRAPH_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/delta.h"
#include "graph/property_graph.h"

namespace kaskade::graph {

/// \brief Serialization knobs for `SaveGraph`.
struct SaveOptions {
  /// Write dead vertices/edges (as `xvertex`/`xedge`) in id order so the
  /// loaded graph reproduces the saver's exact id space, tombstones
  /// included. Default (false) drops dead elements and compacts ids.
  bool preserve_tombstones = false;
};

/// Writes `graph` (schema, vertices, edges, properties) to `out` in the
/// current (checksummed) format version.
Status SaveGraph(const PropertyGraph& graph, std::ostream* out,
                 const SaveOptions& options = {});

/// Reads a graph previously written by `SaveGraph` (any supported
/// version). A truncated or corrupted version-2 file fails with
/// `kDataLoss`; structurally invalid content fails with
/// `kInvalidArgument`. Never constructs a graph from bytes that fail
/// their checksum.
Result<PropertyGraph> LoadGraph(std::istream* in);

/// Convenience: serialize to / parse from a string.
std::string GraphToString(const PropertyGraph& graph,
                          const SaveOptions& options = {});
Result<PropertyGraph> GraphFromString(const std::string& text);

/// \name Mutation-delta serialization (WAL record payloads).
///
/// A `GraphDelta` round-trips through a line-oriented body (`addv` /
/// `adde` / `rme` records in canonical order). No header or checksum —
/// the WAL record framing owns integrity.
/// @{
std::string SerializeDelta(const GraphDelta& delta);
Result<GraphDelta> ParseDelta(const std::string& text);
/// @}

/// \name Shared token codecs.
///
/// The building blocks of the graph format, exposed so other persisted
/// records (view-definition records in checkpoints, WAL payloads) encode
/// strings and property values identically.
/// @{

/// Escapes whitespace, '=', '\' and non-printables as `\xx` hex.
std::string EscapeToken(const std::string& raw);
Result<std::string> UnescapeToken(const std::string& escaped);

/// Typed property-value codec (`i:`/`d:`/`s:`/`b:`/`n:`).
std::string EncodePropertyValue(const PropertyValue& value);
Result<PropertyValue> DecodePropertyValue(const std::string& encoded);

/// Appends " key=value" pairs for every property.
void AppendProperties(const PropertyMap& props, std::string* out);

/// Parses `key=value` property tokens starting at `tokens[start]`.
Status ParsePropertyTokens(const std::vector<std::string>& tokens,
                           size_t start, PropertyMap* props);

/// Whitespace tokenizer shared by every line-oriented record parser.
std::vector<std::string> TokenizeLine(const std::string& line);
/// @}

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_SERIALIZATION_H_
