/// \file serialization.h
/// \brief Text serialization for property graphs.
///
/// A line-oriented, diff-friendly format so graphs and materialized views
/// can be saved, shipped, and reloaded (Kaskade materializes views as
/// physical data objects — this is their on-disk form in this
/// implementation):
///
/// ```
/// kaskade-graph 1
/// vtype Job
/// vtype File
/// etype WRITES_TO Job File
/// vertex 0 Job CPU=d:12.5 name=s:job\_0
/// edge 0 1 WRITES_TO timestamp=i:7
/// ```
///
/// Property values are typed (`i:`/`d:`/`s:`/`b:`/`n:`); strings escape
/// whitespace, `=`, and backslash with `\xx` hex escapes. Vertices appear
/// before edges; ids are implicit (declaration order), matching the
/// append-only id assignment of `PropertyGraph`.

#ifndef KASKADE_GRAPH_SERIALIZATION_H_
#define KASKADE_GRAPH_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/property_graph.h"

namespace kaskade::graph {

/// Writes `graph` (schema, vertices, edges, properties) to `out`.
Status SaveGraph(const PropertyGraph& graph, std::ostream* out);

/// Reads a graph previously written by `SaveGraph`.
Result<PropertyGraph> LoadGraph(std::istream* in);

/// Convenience: serialize to / parse from a string.
std::string GraphToString(const PropertyGraph& graph);
Result<PropertyGraph> GraphFromString(const std::string& text);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_SERIALIZATION_H_
