#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace kaskade::graph {

namespace {

bool EdgeTypeAllowed(const TraversalOptions& options, EdgeTypeId type) {
  if (options.edge_types.empty()) return true;
  return std::find(options.edge_types.begin(), options.edge_types.end(),
                   type) != options.edge_types.end();
}

}  // namespace

std::vector<ReachedVertex> BoundedBfs(const PropertyGraph& graph,
                                      VertexId source,
                                      const TraversalOptions& options) {
  std::vector<ReachedVertex> reached;
  if (source >= graph.NumVertices() || options.max_hops <= 0) return reached;
  std::vector<bool> visited(graph.NumVertices(), false);
  visited[source] = true;
  std::deque<ReachedVertex> frontier;
  frontier.push_back({source, 0});
  while (!frontier.empty()) {
    auto [v, hops] = frontier.front();
    frontier.pop_front();
    if (hops >= options.max_hops) continue;
    const std::vector<EdgeId>& incident = options.direction == Direction::kForward
                                              ? graph.OutEdges(v)
                                              : graph.InEdges(v);
    for (EdgeId e : incident) {
      const EdgeRecord& rec = graph.Edge(e);
      if (!EdgeTypeAllowed(options, rec.type)) continue;
      VertexId next =
          options.direction == Direction::kForward ? rec.target : rec.source;
      if (visited[next]) continue;
      visited[next] = true;
      reached.push_back({next, hops + 1});
      frontier.push_back({next, hops + 1});
    }
  }
  return reached;
}

size_t CountReachable(const PropertyGraph& graph, VertexId source,
                      const TraversalOptions& options) {
  return BoundedBfs(graph, source, options).size();
}

namespace {

/// DFS path extension for simple-path counting. Returns the number of
/// simple paths of exactly `remaining` further edges starting at `v`,
/// bounded by `cap - *count_so_far`.
void CountSimplePathsFrom(const PropertyGraph& graph, VertexId v,
                          int remaining, std::vector<bool>* on_path,
                          uint64_t cap, uint64_t* count) {
  if (*count >= cap) return;
  if (remaining == 0) {
    ++*count;
    return;
  }
  (*on_path)[v] = true;
  for (EdgeId e : graph.OutEdges(v)) {
    VertexId next = graph.Edge(e).target;
    if ((*on_path)[next]) continue;
    CountSimplePathsFrom(graph, next, remaining - 1, on_path, cap, count);
    if (*count >= cap) break;
  }
  (*on_path)[v] = false;
}

}  // namespace

uint64_t CountSimpleKPaths(const PropertyGraph& graph, int k, uint64_t cap) {
  if (k <= 0) return 0;
  uint64_t count = 0;
  std::vector<bool> on_path(graph.NumVertices(), false);
  for (VertexId v = 0; v < graph.NumVertices() && count < cap; ++v) {
    CountSimplePathsFrom(graph, v, k, &on_path, cap, &count);
  }
  return std::min(count, cap);
}

uint64_t CountKLengthWalks(const PropertyGraph& graph, int k, uint64_t cap) {
  if (k <= 0) return 0;
  // walks[v] = number of k'-length walks ending at v; iterate k' from 0
  // (walks[v] = 1) to k, pushing counts along out-edges. Saturating at cap.
  std::vector<uint64_t> walks(graph.NumVertices(), 1);
  auto saturating_add = [cap](uint64_t a, uint64_t b) {
    return (a > cap - b) ? cap : a + b;  // b <= cap always holds here
  };
  for (int step = 0; step < k; ++step) {
    std::vector<uint64_t> next(graph.NumVertices(), 0);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (walks[v] == 0) continue;
      for (EdgeId e : graph.OutEdges(v)) {
        VertexId t = graph.Edge(e).target;
        next[t] = saturating_add(next[t], std::min(walks[v], cap));
      }
    }
    walks = std::move(next);
  }
  uint64_t total = 0;
  for (uint64_t w : walks) {
    total = saturating_add(total, std::min(w, cap));
    if (total >= cap) return cap;
  }
  return total;
}

uint64_t CountSimple2Paths(const PropertyGraph& graph) {
  uint64_t total = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    total += static_cast<uint64_t>(graph.InDegree(v)) * graph.OutDegree(v);
  }
  // Subtract u->v->u round trips: one per (u->v, v->u) edge pair.
  uint64_t round_trips = 0;
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    if (!graph.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = graph.Edge(e);
    for (EdgeId back : graph.OutEdges(rec.target)) {
      if (graph.Edge(back).target == rec.source) ++round_trips;
    }
  }
  return total - round_trips;
}

CommunityAssignment LabelPropagation(const PropertyGraph& graph, int passes) {
  CommunityAssignment result;
  result.label.resize(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) result.label[v] = v;

  std::unordered_map<VertexId, size_t> freq;
  for (int pass = 0; pass < passes; ++pass) {
    result.passes = pass + 1;
    bool changed = false;
    std::vector<VertexId> next_label(result.label);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      freq.clear();
      for (EdgeId e : graph.OutEdges(v)) ++freq[result.label[graph.Edge(e).target]];
      for (EdgeId e : graph.InEdges(v)) ++freq[result.label[graph.Edge(e).source]];
      if (freq.empty()) continue;
      // Most frequent neighbor label; ties toward the smaller label so the
      // result is deterministic.
      VertexId best = result.label[v];
      size_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count || (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      if (best != result.label[v]) {
        next_label[v] = best;
        changed = true;
      }
    }
    result.label = std::move(next_label);
    if (!changed) break;
  }
  std::vector<VertexId> sorted;
  sorted.reserve(result.label.size());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (graph.IsVertexLive(v)) sorted.push_back(result.label[v]);
  }
  std::sort(sorted.begin(), sorted.end());
  result.num_communities =
      std::unique(sorted.begin(), sorted.end()) - sorted.begin();
  return result;
}

std::vector<VertexId> LargestCommunity(const PropertyGraph& graph,
                                       const CommunityAssignment& communities,
                                       VertexTypeId count_type) {
  std::unordered_map<VertexId, size_t> weight;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!graph.IsVertexLive(v)) continue;
    if (count_type == kInvalidTypeId || graph.VertexType(v) == count_type) {
      ++weight[communities.label[v]];
    }
  }
  VertexId best_label = kInvalidId;
  size_t best_weight = 0;
  for (const auto& [label, w] : weight) {
    if (w > best_weight || (w == best_weight && label < best_label)) {
      best_label = label;
      best_weight = w;
    }
  }
  std::vector<VertexId> members;
  if (best_label == kInvalidId) return members;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (communities.label[v] == best_label) members.push_back(v);
  }
  return members;
}

std::vector<VertexAggregate> WeightedPathAggregate(
    const PropertyGraph& graph, VertexId source, int max_hops,
    const std::string& edge_property) {
  std::vector<VertexAggregate> out;
  if (source >= graph.NumVertices() || max_hops <= 0) return out;
  // BFS layer by layer; value[v] = max over discovery paths of the max
  // edge property along the path (monotone, so one relaxation per layer
  // suffices).
  std::unordered_map<VertexId, double> value;
  value[source] = std::numeric_limits<double>::lowest();
  std::vector<VertexId> frontier{source};
  std::vector<bool> visited(graph.NumVertices(), false);
  visited[source] = true;
  for (int hop = 0; hop < max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next_frontier;
    for (VertexId v : frontier) {
      for (EdgeId e : graph.OutEdges(v)) {
        VertexId t = graph.Edge(e).target;
        double ts = graph.EdgeProperty(e, edge_property).ToDouble();
        double candidate = std::max(value[v], ts);
        auto it = value.find(t);
        if (it == value.end() || candidate > it->second) value[t] = candidate;
        if (!visited[t]) {
          visited[t] = true;
          next_frontier.push_back(t);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  value.erase(source);
  out.reserve(value.size());
  for (const auto& [v, val] : value) out.push_back({v, val});
  std::sort(out.begin(), out.end(),
            [](const VertexAggregate& a, const VertexAggregate& b) {
              return a.vertex < b.vertex;
            });
  return out;
}

std::pair<std::vector<uint32_t>, size_t> WeakComponents(
    const PropertyGraph& graph) {
  std::vector<uint32_t> comp(graph.NumVertices(), kInvalidId);
  size_t count = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < graph.NumVertices(); ++start) {
    if (comp[start] != kInvalidId) continue;
    if (!graph.IsVertexLive(start)) continue;  // tombstones are not components
    uint32_t id = static_cast<uint32_t>(count++);
    comp[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      auto visit = [&](VertexId next) {
        if (comp[next] == kInvalidId) {
          comp[next] = id;
          stack.push_back(next);
        }
      };
      for (EdgeId e : graph.OutEdges(v)) visit(graph.Edge(e).target);
      for (EdgeId e : graph.InEdges(v)) visit(graph.Edge(e).source);
    }
  }
  return {std::move(comp), count};
}

}  // namespace kaskade::graph
