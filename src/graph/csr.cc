#include "graph/csr.h"

#include <algorithm>
#include <deque>
#include <tuple>
#include <unordered_map>

namespace kaskade::graph {

CsrGraph CsrGraph::Build(const PropertyGraph& g) {
  CsrGraph csr;
  const size_t n = g.NumVertices();
  const size_t m = g.NumLiveEdges();
  csr.edge_id_space_ = static_cast<EdgeId>(g.NumEdges());
  csr.vertex_types_.resize(n);
  for (VertexId v = 0; v < n; ++v) csr.vertex_types_[v] = g.VertexType(v);

  // Counting pass. Dead vertices keep (empty) rows so base ids stay
  // valid as CSR indices; dead edges are dropped.
  csr.out_offsets_.assign(n + 1, 0);
  csr.in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    ++csr.out_offsets_[rec.source + 1];
    ++csr.in_offsets_[rec.target + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    csr.out_offsets_[v + 1] += csr.out_offsets_[v];
    csr.in_offsets_[v + 1] += csr.in_offsets_[v];
  }
  // Placement pass, in edge-id order (so each vertex slice starts out in
  // base insertion order).
  csr.out_targets_.resize(m);
  csr.out_edge_types_.resize(m);
  csr.out_edge_ids_.resize(m);
  csr.in_sources_.resize(m);
  csr.in_edge_ids_.resize(m);
  std::vector<EdgeTypeId> in_edge_types(m);  // scratch for in-side grouping
  std::vector<uint64_t> out_cursor(csr.out_offsets_.begin(),
                                   csr.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(csr.in_offsets_.begin(),
                                  csr.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    uint64_t out_slot = out_cursor[rec.source]++;
    csr.out_targets_[out_slot] = rec.target;
    csr.out_edge_types_[out_slot] = rec.type;
    csr.out_edge_ids_[out_slot] = e;
    uint64_t in_slot = in_cursor[rec.target]++;
    csr.in_sources_[in_slot] = rec.source;
    in_edge_types[in_slot] = rec.type;
    csr.in_edge_ids_[in_slot] = e;
  }

  // Grouping pass: stably partition each vertex's slice by
  // (edge type, neighbor id) — grouped by type so a typed expansion is
  // one contiguous slice, sorted by neighbor within the type so filter
  // edges (cycle closings) resolve by binary search — and record the
  // per-vertex type directory. Within (type, neighbor), base insertion
  // order survives.
  std::vector<uint32_t> perm;
  std::vector<VertexId> tmp_vertices;
  std::vector<EdgeTypeId> tmp_types;
  std::vector<EdgeId> tmp_ids;
  auto group_by_type = [&](const std::vector<uint64_t>& offsets,
                           std::vector<VertexId>& vertices,
                           std::vector<EdgeTypeId>& types,
                           std::vector<EdgeId>& edge_ids,
                           std::vector<uint64_t>& dir_offsets,
                           std::vector<TypeDirEntry>& dirs) {
    dir_offsets.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      const uint64_t begin = offsets[v];
      const uint64_t end = offsets[v + 1];
      const size_t deg = static_cast<size_t>(end - begin);
      bool grouped = true;
      for (uint64_t i = begin + 1; i < end; ++i) {
        if (types[i] < types[i - 1] ||
            (types[i] == types[i - 1] && vertices[i] < vertices[i - 1])) {
          grouped = false;
          break;
        }
      }
      if (!grouped) {
        perm.resize(deg);
        for (size_t i = 0; i < deg; ++i) perm[i] = static_cast<uint32_t>(i);
        std::stable_sort(perm.begin(), perm.end(),
                         [&](uint32_t a, uint32_t b) {
                           if (types[begin + a] != types[begin + b]) {
                             return types[begin + a] < types[begin + b];
                           }
                           return vertices[begin + a] < vertices[begin + b];
                         });
        tmp_vertices.assign(vertices.begin() + begin, vertices.begin() + end);
        tmp_types.assign(types.begin() + begin, types.begin() + end);
        tmp_ids.assign(edge_ids.begin() + begin, edge_ids.begin() + end);
        for (size_t i = 0; i < deg; ++i) {
          vertices[begin + i] = tmp_vertices[perm[i]];
          types[begin + i] = tmp_types[perm[i]];
          edge_ids[begin + i] = tmp_ids[perm[i]];
        }
      }
      for (uint64_t i = begin; i < end; ++i) {
        if (i == begin || types[i] != types[i - 1]) {
          dirs.push_back(TypeDirEntry{types[i], i});
          ++dir_offsets[v + 1];
        }
      }
    }
    for (size_t v = 0; v < n; ++v) dir_offsets[v + 1] += dir_offsets[v];
  };
  group_by_type(csr.out_offsets_, csr.out_targets_, csr.out_edge_types_,
                csr.out_edge_ids_, csr.out_type_dir_offsets_,
                csr.out_type_dirs_);
  group_by_type(csr.in_offsets_, csr.in_sources_, in_edge_types,
                csr.in_edge_ids_, csr.in_type_dir_offsets_, csr.in_type_dirs_);
  return csr;
}

CsrGraph CsrGraph::PatchedFrom(const CsrGraph& prev, const PropertyGraph& g,
                               const std::vector<EdgeId>& removed_edges,
                               const CsrPatchOptions& options,
                               CsrPatchStats* stats_out) {
  CsrPatchStats local_stats;
  CsrPatchStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats = CsrPatchStats{};
  const size_t n_prev = prev.NumVertices();
  const size_t n = g.NumVertices();
  const EdgeId first_new = prev.edge_id_space_;

  // Dirty pass: a vertex's out-slice must be re-derived when an edge
  // left or entered it since `prev` (in-slices symmetric). Vertices
  // appended since `prev` are built fresh regardless, so they need no
  // mark. Tombstoned records stay readable, which is all this needs —
  // an edge inserted *and* removed within the window (id >= first_new,
  // now dead) never reached `prev` and is simply absent from the
  // re-derived slices.
  std::vector<uint8_t> dirty(n_prev, 0);  // bit 1: out side, bit 2: in side
  size_t dirty_old = 0;
  auto mark = [&](VertexId v, uint8_t bit) {
    if (static_cast<size_t>(v) >= n_prev) return;
    if (dirty[v] == 0) ++dirty_old;
    dirty[v] |= bit;
  };
  for (EdgeId e : removed_edges) {
    if (e >= first_new) continue;  // never made it into `prev`
    const EdgeRecord& rec = g.Edge(e);
    mark(rec.source, 1);
    mark(rec.target, 2);
  }
  for (EdgeId e = first_new; e < static_cast<EdgeId>(g.NumEdges()); ++e) {
    const EdgeRecord& rec = g.Edge(e);
    mark(rec.source, 1);
    mark(rec.target, 2);
  }
  stats.dirty_vertices = dirty_old + (n - n_prev);
  if (n == 0 || static_cast<double>(stats.dirty_vertices) >
                    options.max_dirty_fraction * static_cast<double>(n)) {
    stats.full_rebuild = true;
    return Build(g);
  }

  CsrGraph csr;
  csr.edge_id_space_ = static_cast<EdgeId>(g.NumEdges());
  csr.vertex_types_.resize(n);
  std::copy(prev.vertex_types_.begin(), prev.vertex_types_.end(),
            csr.vertex_types_.begin());
  for (size_t v = n_prev; v < n; ++v) {
    csr.vertex_types_[v] = g.VertexType(static_cast<VertexId>(v));
  }

  // Edges appended since `prev`, grouped per endpoint and pre-sorted in
  // each dirty vertex's slice order. Gathered only after the threshold
  // check so the fallback path never pays for it.
  struct InsertedEdge {
    VertexId v;        ///< Slice owner (source for out, target for in).
    EdgeTypeId type;
    VertexId nbr;
    EdgeId id;
  };
  std::vector<InsertedEdge> out_inserts;
  std::vector<InsertedEdge> in_inserts;
  for (EdgeId e = first_new; e < static_cast<EdgeId>(g.NumEdges()); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    out_inserts.push_back(InsertedEdge{rec.source, rec.type, rec.target, e});
    in_inserts.push_back(InsertedEdge{rec.target, rec.type, rec.source, e});
  }
  auto slice_order = [](const InsertedEdge& a, const InsertedEdge& b) {
    if (a.v != b.v) return a.v < b.v;
    if (a.type != b.type) return a.type < b.type;
    if (a.nbr != b.nbr) return a.nbr < b.nbr;
    return a.id < b.id;
  };
  std::sort(out_inserts.begin(), out_inserts.end(), slice_order);
  std::sort(in_inserts.begin(), in_inserts.end(), slice_order);

  // One side (out or in) of the patched snapshot. Clean vertices are
  // block-copied from `prev` in maximal runs (their slices shift by a
  // per-run constant, so type-directory entries rebase with one add).
  // Dirty and appended vertices *merge* their slice in linear time: the
  // previous slice is already in (type, neighbor, edge id) order — walk
  // it dropping entries whose edge died (exactly the recorded removals)
  // while interleaving the window's pre-sorted insertions; no per-slice
  // sort, so even a hub's slice costs O(degree). Every inserted edge id
  // exceeds every previous id, so ties within (type, neighbor) keep
  // base insertion order — the order `Build`'s stable grouping pass
  // produces.
  auto patch_side = [&](uint8_t bit, bool out_side,
                        const std::vector<InsertedEdge>& inserts,
                        const std::vector<uint64_t>& prev_offsets,
                        const std::vector<VertexId>& prev_neighbors,
                        const std::vector<EdgeTypeId>* prev_types,
                        const std::vector<EdgeId>& prev_edge_ids,
                        const std::vector<uint64_t>& prev_dir_offsets,
                        const std::vector<TypeDirEntry>& prev_dirs,
                        std::vector<uint64_t>& offsets,
                        std::vector<VertexId>& neighbors,
                        std::vector<EdgeTypeId>* types,
                        std::vector<EdgeId>& edge_ids,
                        std::vector<uint64_t>& dir_offsets,
                        std::vector<TypeDirEntry>& dirs) {
    auto fresh = [&](size_t v) {
      return v >= n_prev || (dirty[v] & bit) != 0;
    };
    auto adjacency = [&](size_t v) -> const std::vector<EdgeId>& {
      return out_side ? g.OutEdges(static_cast<VertexId>(v))
                      : g.InEdges(static_cast<VertexId>(v));
    };
    offsets.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      offsets[v + 1] =
          offsets[v] + (fresh(v) ? adjacency(v).size()
                                 : prev_offsets[v + 1] - prev_offsets[v]);
    }
    const size_t m = offsets[n];
    neighbors.resize(m);
    edge_ids.resize(m);
    if (types != nullptr) types->resize(m);
    dir_offsets.assign(n + 1, 0);
    dirs.clear();
    dirs.reserve(prev_dirs.size() + 8);

    size_t ins = 0;  // cursor into `inserts` (sorted by owner vertex)
    size_t v = 0;
    while (v < n) {
      if (!fresh(v)) {
        size_t run_end = v;
        while (run_end < n && !fresh(run_end)) ++run_end;
        const uint64_t src_begin = prev_offsets[v];
        const uint64_t src_end = prev_offsets[run_end];
        const uint64_t dst = offsets[v];
        std::copy(prev_neighbors.begin() + src_begin,
                  prev_neighbors.begin() + src_end, neighbors.begin() + dst);
        std::copy(prev_edge_ids.begin() + src_begin,
                  prev_edge_ids.begin() + src_end, edge_ids.begin() + dst);
        if (types != nullptr) {
          std::copy(prev_types->begin() + src_begin,
                    prev_types->begin() + src_end, types->begin() + dst);
        }
        const uint64_t shift = dst - src_begin;  // may wrap; adds back exactly
        for (size_t w = v; w < run_end; ++w) {
          const uint64_t d0 = prev_dir_offsets[w];
          const uint64_t d1 = prev_dir_offsets[w + 1];
          for (uint64_t d = d0; d < d1; ++d) {
            dirs.push_back(
                TypeDirEntry{prev_dirs[d].type, prev_dirs[d].begin + shift});
          }
          dir_offsets[w + 1] = d1 - d0;
        }
        v = run_end;
        continue;
      }
      // Merge: surviving previous entries x this vertex's insertions.
      uint64_t d = 0, dend = 0, p = 0, pend = 0;
      if (v < n_prev) {
        d = prev_dir_offsets[v];
        dend = prev_dir_offsets[v + 1];
        p = prev_offsets[v];
        pend = prev_offsets[v + 1];
      }
      // Next surviving previous entry (type from the directory segment
      // containing it), or false when the previous slice is exhausted.
      EdgeTypeId ptype = kInvalidTypeId;
      VertexId pnbr = 0;
      EdgeId pid = 0;
      auto prev_next_live = [&]() {
        while (p < pend) {
          EdgeId id = prev_edge_ids[p];
          if (!g.IsEdgeLive(id)) {
            ++p;
            continue;
          }
          while (d + 1 < dend && p >= prev_dirs[d + 1].begin) ++d;
          ptype = prev_dirs[d].type;
          pnbr = prev_neighbors[p];
          pid = id;
          return true;
        }
        return false;
      };
      while (ins < inserts.size() &&
             inserts[ins].v < static_cast<VertexId>(v)) {
        ++ins;  // owners below v were consumed when v was processed
      }
      uint64_t w = offsets[v];
      uint64_t ndirs = 0;
      EdgeTypeId last_type = kInvalidTypeId;
      bool first_entry = true;
      auto emit = [&](EdgeTypeId type, VertexId nbr, EdgeId id) {
        neighbors[w] = nbr;
        edge_ids[w] = id;
        if (types != nullptr) (*types)[w] = type;
        if (first_entry || type != last_type) {
          dirs.push_back(TypeDirEntry{type, w});
          ++ndirs;
          first_entry = false;
          last_type = type;
        }
        ++w;
      };
      bool have_prev = prev_next_live();
      while (have_prev || (ins < inserts.size() &&
                           inserts[ins].v == static_cast<VertexId>(v))) {
        const bool have_ins = ins < inserts.size() &&
                              inserts[ins].v == static_cast<VertexId>(v);
        bool take_prev = have_prev;
        if (have_prev && have_ins) {
          const InsertedEdge& cand = inserts[ins];
          take_prev = std::tie(ptype, pnbr, pid) <
                      std::tie(cand.type, cand.nbr, cand.id);
        }
        if (take_prev) {
          emit(ptype, pnbr, pid);
          ++p;
          have_prev = prev_next_live();
        } else {
          emit(inserts[ins].type, inserts[ins].nbr, inserts[ins].id);
          ++ins;
        }
      }
      dir_offsets[v + 1] = ndirs;
      ++v;
    }
    for (size_t w = 0; w < n; ++w) dir_offsets[w + 1] += dir_offsets[w];
  };

  patch_side(1, /*out_side=*/true, out_inserts, prev.out_offsets_,
             prev.out_targets_, &prev.out_edge_types_, prev.out_edge_ids_,
             prev.out_type_dir_offsets_, prev.out_type_dirs_,
             csr.out_offsets_, csr.out_targets_, &csr.out_edge_types_,
             csr.out_edge_ids_, csr.out_type_dir_offsets_,
             csr.out_type_dirs_);
  patch_side(2, /*out_side=*/false, in_inserts, prev.in_offsets_,
             prev.in_sources_, nullptr, prev.in_edge_ids_,
             prev.in_type_dir_offsets_, prev.in_type_dirs_, csr.in_offsets_,
             csr.in_sources_, nullptr, csr.in_edge_ids_,
             csr.in_type_dir_offsets_, csr.in_type_dirs_);
  return csr;
}

size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward) {
  if (source >= g.NumVertices() || max_hops <= 0) return 0;
  std::vector<bool> visited(g.NumVertices(), false);
  visited[source] = true;
  std::deque<std::pair<VertexId, int>> frontier{{source, 0}};
  size_t reached = 0;
  while (!frontier.empty()) {
    auto [v, hops] = frontier.front();
    frontier.pop_front();
    if (hops >= max_hops) continue;
    NeighborSpan neighbors = backward ? g.InNeighbors(v) : g.OutNeighbors(v);
    for (VertexId next : neighbors) {
      if (visited[next]) continue;
      visited[next] = true;
      ++reached;
      frontier.emplace_back(next, hops + 1);
    }
  }
  return reached;
}

std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes) {
  std::vector<VertexId> label(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) label[v] = v;
  std::unordered_map<VertexId, size_t> freq;
  for (int pass = 0; pass < passes; ++pass) {
    bool changed = false;
    std::vector<VertexId> next_label(label);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      freq.clear();
      for (VertexId u : g.OutNeighbors(v)) ++freq[label[u]];
      for (VertexId u : g.InNeighbors(v)) ++freq[label[u]];
      if (freq.empty()) continue;
      VertexId best = label[v];
      size_t best_count = 0;
      for (const auto& [candidate, count] : freq) {
        if (count > best_count ||
            (count == best_count && candidate < best)) {
          best = candidate;
          best_count = count;
        }
      }
      if (best != label[v]) {
        next_label[v] = best;
        changed = true;
      }
    }
    label = std::move(next_label);
    if (!changed) break;
  }
  return label;
}

}  // namespace kaskade::graph
