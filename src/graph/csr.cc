#include "graph/csr.h"

#include <deque>
#include <unordered_map>

namespace kaskade::graph {

CsrGraph CsrGraph::Build(const PropertyGraph& g) {
  CsrGraph csr;
  const size_t n = g.NumVertices();
  const size_t m = g.NumLiveEdges();
  csr.vertex_types_.resize(n);
  for (VertexId v = 0; v < n; ++v) csr.vertex_types_[v] = g.VertexType(v);

  // Counting pass. Dead vertices keep (empty) rows so base ids stay
  // valid as CSR indices; dead edges are dropped.
  csr.out_offsets_.assign(n + 1, 0);
  csr.in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    ++csr.out_offsets_[rec.source + 1];
    ++csr.in_offsets_[rec.target + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    csr.out_offsets_[v + 1] += csr.out_offsets_[v];
    csr.in_offsets_[v + 1] += csr.in_offsets_[v];
  }
  // Placement pass.
  csr.out_targets_.resize(m);
  csr.out_edge_types_.resize(m);
  csr.in_sources_.resize(m);
  std::vector<uint64_t> out_cursor(csr.out_offsets_.begin(),
                                   csr.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(csr.in_offsets_.begin(),
                                  csr.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    uint64_t out_slot = out_cursor[rec.source]++;
    csr.out_targets_[out_slot] = rec.target;
    csr.out_edge_types_[out_slot] = rec.type;
    csr.in_sources_[in_cursor[rec.target]++] = rec.source;
  }
  return csr;
}

size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward) {
  if (source >= g.NumVertices() || max_hops <= 0) return 0;
  std::vector<bool> visited(g.NumVertices(), false);
  visited[source] = true;
  std::deque<std::pair<VertexId, int>> frontier{{source, 0}};
  size_t reached = 0;
  while (!frontier.empty()) {
    auto [v, hops] = frontier.front();
    frontier.pop_front();
    if (hops >= max_hops) continue;
    NeighborSpan neighbors = backward ? g.InNeighbors(v) : g.OutNeighbors(v);
    for (VertexId next : neighbors) {
      if (visited[next]) continue;
      visited[next] = true;
      ++reached;
      frontier.emplace_back(next, hops + 1);
    }
  }
  return reached;
}

std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes) {
  std::vector<VertexId> label(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) label[v] = v;
  std::unordered_map<VertexId, size_t> freq;
  for (int pass = 0; pass < passes; ++pass) {
    bool changed = false;
    std::vector<VertexId> next_label(label);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      freq.clear();
      for (VertexId u : g.OutNeighbors(v)) ++freq[label[u]];
      for (VertexId u : g.InNeighbors(v)) ++freq[label[u]];
      if (freq.empty()) continue;
      VertexId best = label[v];
      size_t best_count = 0;
      for (const auto& [candidate, count] : freq) {
        if (count > best_count ||
            (count == best_count && candidate < best)) {
          best = candidate;
          best_count = count;
        }
      }
      if (best != label[v]) {
        next_label[v] = best;
        changed = true;
      }
    }
    label = std::move(next_label);
    if (!changed) break;
  }
  return label;
}

}  // namespace kaskade::graph
