#include "graph/csr.h"

#include <algorithm>
#include <deque>
#include <tuple>
#include <unordered_map>

namespace kaskade::graph {

namespace {

template <typename V>
size_t VectorBytes(const V& v) {
  return v.size() * sizeof(typename V::value_type);
}

}  // namespace

size_t CsrSegment::ByteSize() const {
  return VectorBytes(out_offsets) + VectorBytes(out_targets) +
         VectorBytes(out_edge_types) + VectorBytes(out_edge_ids) +
         VectorBytes(in_offsets) + VectorBytes(in_sources) +
         VectorBytes(in_edge_ids) + VectorBytes(vertex_types) +
         VectorBytes(out_type_dir_offsets) + VectorBytes(out_type_dirs) +
         VectorBytes(in_type_dir_offsets) + VectorBytes(in_type_dirs);
}

CsrSegmentPtr CsrGraph::BuildSegment(const PropertyGraph& g, size_t seg_index) {
  auto owned = std::make_shared<CsrSegment>();
  CsrSegment& seg = *owned;
  const size_t n = g.NumVertices();
  const VertexId first =
      static_cast<VertexId>(seg_index << kCsrSegmentShift);
  const uint32_t count = static_cast<uint32_t>(
      std::min<size_t>(n - first, kCsrSegmentVertices));
  seg.first_vertex = first;
  seg.num_vertices = count;
  seg.vertex_types.resize(count);
  for (uint32_t l = 0; l < count; ++l) {
    seg.vertex_types[l] = g.VertexType(first + l);
  }

  // One slice entry: the canonical per-vertex order is
  // (edge type, neighbor, edge id) — grouped by type so a typed
  // expansion is one contiguous slice, sorted by neighbor within the
  // type so filter edges (cycle closings) resolve by binary search,
  // base insertion order surviving within (type, neighbor) because edge
  // ids are distinct and ascend in insertion order.
  struct Entry {
    EdgeTypeId type;
    VertexId nbr;
    EdgeId id;
  };
  std::vector<Entry> entries;
  auto build_side = [&](bool out_side, std::vector<uint64_t>& offsets,
                        std::vector<VertexId>& neighbors,
                        std::vector<EdgeTypeId>* types,
                        std::vector<EdgeId>& edge_ids,
                        std::vector<uint64_t>& dir_offsets,
                        std::vector<CsrSegment::TypeDirEntry>& dirs) {
    offsets.assign(count + 1, 0);
    dir_offsets.assign(count + 1, 0);
    for (uint32_t l = 0; l < count; ++l) {
      const VertexId v = first + l;
      // Live edges only; dead vertices have empty adjacency, so they
      // keep (empty) rows and base ids stay valid as CSR indices.
      const std::vector<EdgeId>& ids = out_side ? g.OutEdges(v) : g.InEdges(v);
      entries.clear();
      entries.reserve(ids.size());
      for (EdgeId e : ids) {
        const EdgeRecord& rec = g.Edge(e);
        entries.push_back(Entry{rec.type, out_side ? rec.target : rec.source,
                                e});
      }
      bool sorted = true;
      for (size_t i = 1; i < entries.size(); ++i) {
        if (std::tie(entries[i].type, entries[i].nbr, entries[i].id) <
            std::tie(entries[i - 1].type, entries[i - 1].nbr,
                     entries[i - 1].id)) {
          sorted = false;
          break;
        }
      }
      if (!sorted) {
        std::sort(entries.begin(), entries.end(),
                  [](const Entry& a, const Entry& b) {
                    return std::tie(a.type, a.nbr, a.id) <
                           std::tie(b.type, b.nbr, b.id);
                  });
      }
      for (size_t i = 0; i < entries.size(); ++i) {
        const Entry& ent = entries[i];
        if (i == 0 || ent.type != entries[i - 1].type) {
          dirs.push_back(CsrSegment::TypeDirEntry{
              ent.type, static_cast<uint64_t>(neighbors.size())});
          ++dir_offsets[l + 1];
        }
        neighbors.push_back(ent.nbr);
        if (types != nullptr) types->push_back(ent.type);
        edge_ids.push_back(ent.id);
      }
      offsets[l + 1] = neighbors.size();
    }
    for (uint32_t l = 0; l < count; ++l) dir_offsets[l + 1] += dir_offsets[l];
  };
  build_side(/*out_side=*/true, seg.out_offsets, seg.out_targets,
             &seg.out_edge_types, seg.out_edge_ids, seg.out_type_dir_offsets,
             seg.out_type_dirs);
  build_side(/*out_side=*/false, seg.in_offsets, seg.in_sources, nullptr,
             seg.in_edge_ids, seg.in_type_dir_offsets, seg.in_type_dirs);
  return owned;
}

CsrGraph CsrGraph::Build(const PropertyGraph& g) {
  CsrGraph csr;
  const size_t n = g.NumVertices();
  csr.num_vertices_ = n;
  csr.edge_id_space_ = static_cast<EdgeId>(g.NumEdges());
  const size_t num_segs = CsrSegmentCount(n);
  csr.segments_.reserve(num_segs);
  for (size_t s = 0; s < num_segs; ++s) {
    csr.segments_.push_back(BuildSegment(g, s));
    csr.num_edges_ += csr.segments_.back()->out_targets.size();
  }
  return csr;
}

CsrGraph CsrGraph::FromSegments(std::vector<CsrSegmentPtr> segments,
                                size_t num_vertices, EdgeId edge_id_space) {
  CsrGraph csr;
  csr.segments_ = std::move(segments);
  csr.num_vertices_ = num_vertices;
  csr.edge_id_space_ = edge_id_space;
  for (const CsrSegmentPtr& s : csr.segments_) {
    csr.num_edges_ += s->out_targets.size();
  }
  return csr;
}

CsrGraph CsrGraph::PatchedFrom(const CsrGraph& prev, const PropertyGraph& g,
                               const std::vector<EdgeId>& removed_edges,
                               const CsrPatchOptions& options,
                               CsrPatchStats* stats_out) {
  CsrPatchStats local_stats;
  CsrPatchStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  stats = CsrPatchStats{};
  const size_t n_prev = prev.NumVertices();
  const size_t n = g.NumVertices();
  const EdgeId first_new = prev.edge_id_space_;
  const size_t num_segs = CsrSegmentCount(n);

  auto full_rebuild = [&]() {
    stats.full_rebuild = true;
    CsrGraph built = Build(g);
    stats.total_segments = built.num_segments();
    stats.segments_copied = built.num_segments();
    for (const CsrSegmentPtr& s : built.segments_) {
      stats.bytes_copied += s->ByteSize();
    }
    return built;
  };

  // Dirty pass: a vertex's slice must be re-derived (and therefore its
  // whole segment rebuilt) when an edge left or entered it since
  // `prev`. Vertices appended since `prev` live in segments at or past
  // the old tail, which rebuild regardless. Tombstoned records stay
  // readable, which is all this needs — an edge inserted *and* removed
  // within the window (id >= first_new, now dead) never reached `prev`
  // and is simply absent from the re-derived segments.
  std::vector<uint8_t> dirty(n_prev, 0);
  std::vector<uint8_t> seg_dirty(num_segs, 0);
  size_t dirty_old = 0;
  auto mark = [&](VertexId v) {
    if (static_cast<size_t>(v) < n_prev && dirty[v] == 0) {
      dirty[v] = 1;
      ++dirty_old;
    }
    const size_t s = CsrSegmentOf(v);
    if (s < num_segs) seg_dirty[s] = 1;
  };
  for (EdgeId e : removed_edges) {
    if (e >= first_new) continue;  // never made it into `prev`
    const EdgeRecord& rec = g.Edge(e);
    mark(rec.source);
    mark(rec.target);
  }
  for (EdgeId e = first_new; e < static_cast<EdgeId>(g.NumEdges()); ++e) {
    const EdgeRecord& rec = g.Edge(e);
    mark(rec.source);
    mark(rec.target);
  }
  stats.dirty_vertices = dirty_old + (n - n_prev);
  // The fallback guard stays on the *vertex* dirty fraction — the
  // long-standing contract callers tune — while the segment counts
  // below report what a patch actually cost so the catalog's auto-tuner
  // can move the effective threshold from observed behavior.
  if (n == 0 || n < n_prev ||
      static_cast<double>(stats.dirty_vertices) >
          options.max_dirty_fraction * static_cast<double>(n)) {
    return full_rebuild();
  }
  // The segment straddling the old vertex-count boundary changes shape
  // when vertices were appended; segments wholly past it are new.
  if (n != n_prev && (n_prev >> kCsrSegmentShift) < num_segs) {
    seg_dirty[n_prev >> kCsrSegmentShift] = 1;
  }

  CsrGraph csr;
  csr.num_vertices_ = n;
  csr.edge_id_space_ = static_cast<EdgeId>(g.NumEdges());
  csr.segments_.reserve(num_segs);
  stats.total_segments = num_segs;
  for (size_t s = 0; s < num_segs; ++s) {
    if (s < prev.segments_.size() && seg_dirty[s] == 0) {
      // Clean: share the previous generation's segment by refcount.
      csr.segments_.push_back(prev.segments_[s]);
      ++stats.segments_shared;
    } else {
      csr.segments_.push_back(BuildSegment(g, s));
      ++stats.segments_copied;
      stats.bytes_copied += csr.segments_.back()->ByteSize();
    }
    csr.num_edges_ += csr.segments_.back()->out_targets.size();
  }
  return csr;
}

size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward) {
  if (source >= g.NumVertices() || max_hops <= 0) return 0;
  std::vector<bool> visited(g.NumVertices(), false);
  visited[source] = true;
  std::deque<std::pair<VertexId, int>> frontier{{source, 0}};
  size_t reached = 0;
  while (!frontier.empty()) {
    auto [v, hops] = frontier.front();
    frontier.pop_front();
    if (hops >= max_hops) continue;
    NeighborSpan neighbors = backward ? g.InNeighbors(v) : g.OutNeighbors(v);
    for (VertexId next : neighbors) {
      if (visited[next]) continue;
      visited[next] = true;
      ++reached;
      frontier.emplace_back(next, hops + 1);
    }
  }
  return reached;
}

std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes) {
  std::vector<VertexId> label(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) label[v] = v;
  std::unordered_map<VertexId, size_t> freq;
  for (int pass = 0; pass < passes; ++pass) {
    bool changed = false;
    std::vector<VertexId> next_label(label);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      freq.clear();
      for (VertexId u : g.OutNeighbors(v)) ++freq[label[u]];
      for (VertexId u : g.InNeighbors(v)) ++freq[label[u]];
      if (freq.empty()) continue;
      VertexId best = label[v];
      size_t best_count = 0;
      for (const auto& [candidate, count] : freq) {
        if (count > best_count ||
            (count == best_count && candidate < best)) {
          best = candidate;
          best_count = count;
        }
      }
      if (best != label[v]) {
        next_label[v] = best;
        changed = true;
      }
    }
    label = std::move(next_label);
    if (!changed) break;
  }
  return label;
}

}  // namespace kaskade::graph
