#include "graph/csr.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace kaskade::graph {

CsrGraph CsrGraph::Build(const PropertyGraph& g) {
  CsrGraph csr;
  const size_t n = g.NumVertices();
  const size_t m = g.NumLiveEdges();
  csr.vertex_types_.resize(n);
  for (VertexId v = 0; v < n; ++v) csr.vertex_types_[v] = g.VertexType(v);

  // Counting pass. Dead vertices keep (empty) rows so base ids stay
  // valid as CSR indices; dead edges are dropped.
  csr.out_offsets_.assign(n + 1, 0);
  csr.in_offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    ++csr.out_offsets_[rec.source + 1];
    ++csr.in_offsets_[rec.target + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    csr.out_offsets_[v + 1] += csr.out_offsets_[v];
    csr.in_offsets_[v + 1] += csr.in_offsets_[v];
  }
  // Placement pass, in edge-id order (so each vertex slice starts out in
  // base insertion order).
  csr.out_targets_.resize(m);
  csr.out_edge_types_.resize(m);
  csr.out_edge_ids_.resize(m);
  csr.in_sources_.resize(m);
  csr.in_edge_ids_.resize(m);
  std::vector<EdgeTypeId> in_edge_types(m);  // scratch for in-side grouping
  std::vector<uint64_t> out_cursor(csr.out_offsets_.begin(),
                                   csr.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(csr.in_offsets_.begin(),
                                  csr.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!g.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = g.Edge(e);
    uint64_t out_slot = out_cursor[rec.source]++;
    csr.out_targets_[out_slot] = rec.target;
    csr.out_edge_types_[out_slot] = rec.type;
    csr.out_edge_ids_[out_slot] = e;
    uint64_t in_slot = in_cursor[rec.target]++;
    csr.in_sources_[in_slot] = rec.source;
    in_edge_types[in_slot] = rec.type;
    csr.in_edge_ids_[in_slot] = e;
  }

  // Grouping pass: stably partition each vertex's slice by
  // (edge type, neighbor id) — grouped by type so a typed expansion is
  // one contiguous slice, sorted by neighbor within the type so filter
  // edges (cycle closings) resolve by binary search — and record the
  // per-vertex type directory. Within (type, neighbor), base insertion
  // order survives.
  std::vector<uint32_t> perm;
  std::vector<VertexId> tmp_vertices;
  std::vector<EdgeTypeId> tmp_types;
  std::vector<EdgeId> tmp_ids;
  auto group_by_type = [&](const std::vector<uint64_t>& offsets,
                           std::vector<VertexId>& vertices,
                           std::vector<EdgeTypeId>& types,
                           std::vector<EdgeId>& edge_ids,
                           std::vector<uint64_t>& dir_offsets,
                           std::vector<TypeDirEntry>& dirs) {
    dir_offsets.assign(n + 1, 0);
    for (size_t v = 0; v < n; ++v) {
      const uint64_t begin = offsets[v];
      const uint64_t end = offsets[v + 1];
      const size_t deg = static_cast<size_t>(end - begin);
      bool grouped = true;
      for (uint64_t i = begin + 1; i < end; ++i) {
        if (types[i] < types[i - 1] ||
            (types[i] == types[i - 1] && vertices[i] < vertices[i - 1])) {
          grouped = false;
          break;
        }
      }
      if (!grouped) {
        perm.resize(deg);
        for (size_t i = 0; i < deg; ++i) perm[i] = static_cast<uint32_t>(i);
        std::stable_sort(perm.begin(), perm.end(),
                         [&](uint32_t a, uint32_t b) {
                           if (types[begin + a] != types[begin + b]) {
                             return types[begin + a] < types[begin + b];
                           }
                           return vertices[begin + a] < vertices[begin + b];
                         });
        tmp_vertices.assign(vertices.begin() + begin, vertices.begin() + end);
        tmp_types.assign(types.begin() + begin, types.begin() + end);
        tmp_ids.assign(edge_ids.begin() + begin, edge_ids.begin() + end);
        for (size_t i = 0; i < deg; ++i) {
          vertices[begin + i] = tmp_vertices[perm[i]];
          types[begin + i] = tmp_types[perm[i]];
          edge_ids[begin + i] = tmp_ids[perm[i]];
        }
      }
      for (uint64_t i = begin; i < end; ++i) {
        if (i == begin || types[i] != types[i - 1]) {
          dirs.push_back(TypeDirEntry{types[i], i});
          ++dir_offsets[v + 1];
        }
      }
    }
    for (size_t v = 0; v < n; ++v) dir_offsets[v + 1] += dir_offsets[v];
  };
  group_by_type(csr.out_offsets_, csr.out_targets_, csr.out_edge_types_,
                csr.out_edge_ids_, csr.out_type_dir_offsets_,
                csr.out_type_dirs_);
  group_by_type(csr.in_offsets_, csr.in_sources_, in_edge_types,
                csr.in_edge_ids_, csr.in_type_dir_offsets_, csr.in_type_dirs_);
  return csr;
}

size_t CsrCountReachable(const CsrGraph& g, VertexId source, int max_hops,
                         bool backward) {
  if (source >= g.NumVertices() || max_hops <= 0) return 0;
  std::vector<bool> visited(g.NumVertices(), false);
  visited[source] = true;
  std::deque<std::pair<VertexId, int>> frontier{{source, 0}};
  size_t reached = 0;
  while (!frontier.empty()) {
    auto [v, hops] = frontier.front();
    frontier.pop_front();
    if (hops >= max_hops) continue;
    NeighborSpan neighbors = backward ? g.InNeighbors(v) : g.OutNeighbors(v);
    for (VertexId next : neighbors) {
      if (visited[next]) continue;
      visited[next] = true;
      ++reached;
      frontier.emplace_back(next, hops + 1);
    }
  }
  return reached;
}

std::vector<VertexId> CsrLabelPropagation(const CsrGraph& g, int passes) {
  std::vector<VertexId> label(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) label[v] = v;
  std::unordered_map<VertexId, size_t> freq;
  for (int pass = 0; pass < passes; ++pass) {
    bool changed = false;
    std::vector<VertexId> next_label(label);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      freq.clear();
      for (VertexId u : g.OutNeighbors(v)) ++freq[label[u]];
      for (VertexId u : g.InNeighbors(v)) ++freq[label[u]];
      if (freq.empty()) continue;
      VertexId best = label[v];
      size_t best_count = 0;
      for (const auto& [candidate, count] : freq) {
        if (count > best_count ||
            (count == best_count && candidate < best)) {
          best = candidate;
          best_count = count;
        }
      }
      if (best != label[v]) {
        next_label[v] = best;
        changed = true;
      }
    }
    label = std::move(next_label);
    if (!changed) break;
  }
  return label;
}

}  // namespace kaskade::graph
