#include "graph/stats.h"

#include <algorithm>
#include <cmath>

namespace kaskade::graph {

namespace {

/// Nearest-rank percentile of a sorted vector (alpha in (0, 100]).
double SortedPercentile(const std::vector<size_t>& sorted, double alpha) {
  if (sorted.empty()) return 0;
  if (alpha >= 100) return static_cast<double>(sorted.back());
  double rank = alpha / 100.0 * static_cast<double>(sorted.size());
  size_t idx = rank <= 1 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return static_cast<double>(sorted[idx]);
}

TypeDegreeSummary Summarize(const std::string& name,
                            std::vector<size_t>* degrees) {
  TypeDegreeSummary s;
  s.type_name = name;
  s.vertex_count = degrees->size();
  std::sort(degrees->begin(), degrees->end());
  s.p50 = SortedPercentile(*degrees, 50);
  s.p90 = SortedPercentile(*degrees, 90);
  s.p95 = SortedPercentile(*degrees, 95);
  s.p100 = SortedPercentile(*degrees, 100);
  return s;
}

}  // namespace

double TypeDegreeSummary::Percentile(double alpha) const {
  if (alpha <= 50) return p50;
  if (alpha >= 100) return p100;
  // Piecewise-linear interpolation across the retained summary points.
  auto lerp = [](double a, double b, double t) { return a + (b - a) * t; };
  if (alpha <= 90) return lerp(p50, p90, (alpha - 50) / 40.0);
  if (alpha <= 95) return lerp(p90, p95, (alpha - 90) / 5.0);
  return lerp(p95, p100, (alpha - 95) / 5.0);
}

GraphStats GraphStats::Compute(const PropertyGraph& graph) {
  GraphStats stats;
  stats.num_vertices_ = graph.NumLiveVertices();
  stats.num_edges_ = graph.NumLiveEdges();

  const size_t num_types = graph.schema().num_vertex_types();
  std::vector<std::vector<size_t>> degrees_by_type(num_types);
  std::vector<size_t> all_degrees;
  all_degrees.reserve(graph.NumLiveVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!graph.IsVertexLive(v)) continue;
    degrees_by_type[graph.VertexType(v)].push_back(graph.OutDegree(v));
    all_degrees.push_back(graph.OutDegree(v));
  }
  stats.per_type_.reserve(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    stats.per_type_.push_back(Summarize(
        graph.schema().vertex_type_name(static_cast<VertexTypeId>(t)),
        &degrees_by_type[t]));
  }
  stats.overall_ = Summarize("*", &all_degrees);
  return stats;
}

DegreeDistribution ComputeOutDegreeDistribution(const PropertyGraph& graph) {
  DegreeDistribution dist;
  std::map<size_t, size_t> histogram;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!graph.IsVertexLive(v)) continue;
    ++histogram[graph.OutDegree(v)];
  }
  // CCDF: count of vertices with degree strictly greater than d, for each
  // observed degree d.
  size_t above = graph.NumLiveVertices();
  for (const auto& [degree, count] : histogram) {
    above -= count;
    dist.ccdf.push_back(CcdfPoint{degree, above});
  }
  // Least-squares fit of log10(count) against log10(degree), degrees >= 1
  // and counts >= 1 only.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  size_t n = 0;
  for (const CcdfPoint& p : dist.ccdf) {
    if (p.degree < 1 || p.count < 1) continue;
    double x = std::log10(static_cast<double>(p.degree));
    double y = std::log10(static_cast<double>(p.count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    ++n;
  }
  if (n >= 2) {
    double denom = static_cast<double>(n) * sxx - sx * sx;
    if (denom != 0) {
      dist.powerlaw_slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
      double ss_tot = syy - sy * sy / static_cast<double>(n);
      double intercept = (sy - dist.powerlaw_slope * sx) / static_cast<double>(n);
      double ss_res = 0;
      for (const CcdfPoint& p : dist.ccdf) {
        if (p.degree < 1 || p.count < 1) continue;
        double x = std::log10(static_cast<double>(p.degree));
        double y = std::log10(static_cast<double>(p.count));
        double pred = intercept + dist.powerlaw_slope * x;
        ss_res += (y - pred) * (y - pred);
      }
      dist.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    }
  }
  return dist;
}

}  // namespace kaskade::graph
