#include "graph/property_graph.h"

#include <algorithm>

namespace kaskade::graph {

Result<VertexId> PropertyGraph::AddVertex(const std::string& type_name,
                                          PropertyMap properties) {
  VertexTypeId type = schema_.FindVertexType(type_name);
  if (type == kInvalidTypeId) {
    return Status::NotFound("unknown vertex type '" + type_name + "'");
  }
  return AddVertexOfType(type, std::move(properties));
}

VertexId PropertyGraph::AddVertexOfType(VertexTypeId type,
                                        PropertyMap properties) {
  VertexId id = static_cast<VertexId>(vertex_types_.size());
  vertex_types_.push_back(type);
  vertex_props_.push_back(std::move(properties));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  vertex_live_.push_back(true);
  if (type >= vertex_type_counts_.size()) vertex_type_counts_.resize(type + 1, 0);
  ++vertex_type_counts_[type];
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(VertexId source, VertexId target,
                                      const std::string& type_name,
                                      PropertyMap properties) {
  EdgeTypeId type = schema_.FindEdgeType(type_name);
  if (type == kInvalidTypeId) {
    return Status::NotFound("unknown edge type '" + type_name + "'");
  }
  return AddEdgeOfType(source, target, type, std::move(properties));
}

Result<EdgeId> PropertyGraph::AddEdgeOfType(VertexId source, VertexId target,
                                            EdgeTypeId type,
                                            PropertyMap properties) {
  if (source >= NumVertices() || target >= NumVertices()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  const EdgeTypeDecl& decl = schema_.edge_type(type);
  if (vertex_types_[source] != decl.source_type) {
    return Status::InvalidArgument(
        "edge type '" + decl.name + "' requires source type '" +
        schema_.vertex_type_name(decl.source_type) + "' but got '" +
        schema_.vertex_type_name(vertex_types_[source]) + "'");
  }
  if (vertex_types_[target] != decl.target_type) {
    return Status::InvalidArgument(
        "edge type '" + decl.name + "' requires target type '" +
        schema_.vertex_type_name(decl.target_type) + "' but got '" +
        schema_.vertex_type_name(vertex_types_[target]) + "'");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(EdgeRecord{source, target, type});
  edge_props_.push_back(std::move(properties));
  out_edges_[source].push_back(id);
  in_edges_[target].push_back(id);
  edge_live_.push_back(true);
  if (type >= edge_type_counts_.size()) edge_type_counts_.resize(type + 1, 0);
  ++edge_type_counts_[type];
  return id;
}

Status PropertyGraph::RemoveEdge(EdgeId e) {
  if (e >= NumEdges()) return Status::OutOfRange("edge id out of range");
  if (!edge_live_[e]) {
    return Status::FailedPrecondition("edge " + std::to_string(e) +
                                      " was already removed");
  }
  const EdgeRecord& rec = edges_[e];
  auto unlink = [e](std::vector<EdgeId>* list) {
    list->erase(std::find(list->begin(), list->end(), e));
  };
  unlink(&out_edges_[rec.source]);
  unlink(&in_edges_[rec.target]);
  edge_live_[e] = false;
  ++num_removed_edges_;
  --edge_type_counts_[rec.type];
  return Status::OK();
}

Status PropertyGraph::RemoveVertex(VertexId v) {
  if (v >= NumVertices()) return Status::OutOfRange("vertex id out of range");
  if (!vertex_live_[v]) {
    return Status::FailedPrecondition("vertex " + std::to_string(v) +
                                      " was already removed");
  }
  if (!out_edges_[v].empty() || !in_edges_[v].empty()) {
    return Status::FailedPrecondition(
        "vertex " + std::to_string(v) + " still has live incident edges");
  }
  vertex_live_[v] = false;
  ++num_removed_vertices_;
  --vertex_type_counts_[vertex_types_[v]];
  return Status::OK();
}

Status PropertyGraph::SetVertexProperty(VertexId v, const std::string& key,
                                        PropertyValue value) {
  if (v >= NumVertices()) return Status::OutOfRange("vertex id out of range");
  vertex_props_[v].Set(key, std::move(value));
  return Status::OK();
}

Status PropertyGraph::SetEdgeProperty(EdgeId e, const std::string& key,
                                      PropertyValue value) {
  if (e >= NumEdges()) return Status::OutOfRange("edge id out of range");
  edge_props_[e].Set(key, std::move(value));
  return Status::OK();
}

std::vector<VertexId> PropertyGraph::VerticesOfType(VertexTypeId type) const {
  std::vector<VertexId> out;
  out.reserve(NumVerticesOfType(type));
  for (VertexId v = 0; v < vertex_types_.size(); ++v) {
    if (vertex_types_[v] == type && vertex_live_[v]) out.push_back(v);
  }
  return out;
}

bool PropertyGraph::HasEdgeBetween(VertexId source, VertexId target) const {
  if (source >= NumVertices()) return false;
  // Scan the smaller of the two incident lists.
  if (out_edges_[source].size() <= in_edges_[target].size()) {
    for (EdgeId e : out_edges_[source]) {
      if (edges_[e].target == target) return true;
    }
  } else {
    for (EdgeId e : in_edges_[target]) {
      if (edges_[e].source == source) return true;
    }
  }
  return false;
}

size_t PropertyGraph::EstimateSizeBytes() const {
  // Topology: per-vertex type id + two adjacency vectors; per-edge record
  // plus its two adjacency slots.
  size_t bytes = vertex_types_.size() *
                 (sizeof(VertexTypeId) + 2 * sizeof(std::vector<EdgeId>));
  bytes += edges_.size() * (sizeof(EdgeRecord) + 2 * sizeof(EdgeId));
  return bytes;
}

}  // namespace kaskade::graph
