#include "graph/schema.h"

namespace kaskade::graph {

VertexTypeId GraphSchema::AddVertexType(const std::string& name) {
  auto it = vertex_type_ids_.find(name);
  if (it != vertex_type_ids_.end()) return it->second;
  VertexTypeId id = static_cast<VertexTypeId>(vertex_type_names_.size());
  vertex_type_names_.push_back(name);
  vertex_type_ids_.emplace(name, id);
  return id;
}

Result<EdgeTypeId> GraphSchema::AddEdgeType(const std::string& name,
                                            const std::string& source_type,
                                            const std::string& target_type) {
  if (edge_type_ids_.count(name) > 0) {
    return Status::AlreadyExists("edge type '" + name + "' already declared");
  }
  VertexTypeId src = FindVertexType(source_type);
  if (src == kInvalidTypeId) {
    return Status::NotFound("unknown source vertex type '" + source_type + "'");
  }
  VertexTypeId dst = FindVertexType(target_type);
  if (dst == kInvalidTypeId) {
    return Status::NotFound("unknown target vertex type '" + target_type + "'");
  }
  EdgeTypeId id = static_cast<EdgeTypeId>(edge_types_.size());
  edge_types_.push_back(EdgeTypeDecl{name, src, dst});
  edge_type_ids_.emplace(name, id);
  return id;
}

VertexTypeId GraphSchema::FindVertexType(const std::string& name) const {
  auto it = vertex_type_ids_.find(name);
  return it == vertex_type_ids_.end() ? kInvalidTypeId : it->second;
}

EdgeTypeId GraphSchema::FindEdgeType(const std::string& name) const {
  auto it = edge_type_ids_.find(name);
  return it == edge_type_ids_.end() ? kInvalidTypeId : it->second;
}

std::vector<EdgeTypeId> GraphSchema::EdgeTypesFrom(VertexTypeId type) const {
  std::vector<EdgeTypeId> out;
  for (EdgeTypeId i = 0; i < edge_types_.size(); ++i) {
    if (edge_types_[i].source_type == type) out.push_back(i);
  }
  return out;
}

std::vector<EdgeTypeId> GraphSchema::EdgeTypesInto(VertexTypeId type) const {
  std::vector<EdgeTypeId> out;
  for (EdgeTypeId i = 0; i < edge_types_.size(); ++i) {
    if (edge_types_[i].target_type == type) out.push_back(i);
  }
  return out;
}

bool GraphSchema::HasKHopSchemaPath(VertexTypeId from, VertexTypeId to,
                                    int k) const {
  if (k <= 0) return k == 0 && from == to;
  // Reachable type set after i steps, starting from {from}.
  std::vector<bool> current(vertex_type_names_.size(), false);
  current[from] = true;
  for (int step = 0; step < k; ++step) {
    std::vector<bool> next(vertex_type_names_.size(), false);
    bool any = false;
    for (const EdgeTypeDecl& et : edge_types_) {
      if (current[et.source_type]) {
        next[et.target_type] = true;
        any = true;
      }
    }
    if (!any) return false;
    current = std::move(next);
  }
  return current[to];
}

}  // namespace kaskade::graph
