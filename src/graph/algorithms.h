/// \file algorithms.h
/// \brief Graph algorithms backing the paper's workload (Table IV) and the
/// exact path counts used as ground truth in Fig. 5.
///
/// Q2/Q3 (ancestors/descendants) use the bounded BFS; Q4 (path lengths)
/// uses `WeightedPathAggregate`; Q7/Q8 (community detection / largest
/// community) use `LabelPropagation`; the Fig. 5 "actual" series uses
/// `CountSimpleKPaths` / `CountKLengthWalks`.

#ifndef KASKADE_GRAPH_ALGORITHMS_H_
#define KASKADE_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/property_graph.h"

namespace kaskade::graph {

/// Direction of traversal.
enum class Direction { kForward, kBackward };

/// \brief Options for bounded BFS traversals.
struct TraversalOptions {
  Direction direction = Direction::kForward;
  /// Maximum number of hops from the source (inclusive).
  int max_hops = std::numeric_limits<int>::max();
  /// When non-empty, only edges of these types are traversed.
  std::vector<EdgeTypeId> edge_types;
};

/// \brief A vertex reached by a traversal and its hop distance.
struct ReachedVertex {
  VertexId vertex;
  int hops;
};

/// Bounded BFS from `source`; returns reached vertices (excluding the
/// source itself) in nondecreasing hop order.
std::vector<ReachedVertex> BoundedBfs(const PropertyGraph& graph,
                                      VertexId source,
                                      const TraversalOptions& options);

/// Number of distinct vertices within `max_hops` of `source` (excluding
/// `source`).
size_t CountReachable(const PropertyGraph& graph, VertexId source,
                      const TraversalOptions& options);

/// \brief Exact count of directed k-length *simple* paths (no repeated
/// vertex). Matches the paper's definition of the number of edges in a
/// k-hop connector (§V-A). DFS-based; `cap` bounds work for large graphs
/// (counting stops once the cap is reached and the cap is returned).
uint64_t CountSimpleKPaths(const PropertyGraph& graph, int k,
                           uint64_t cap = std::numeric_limits<uint64_t>::max());

/// \brief Exact count of directed k-length walks (vertices may repeat);
/// cheaper (DP over adjacency) and equal to the simple-path count on
/// DAG-like graphs. Used to cross-check CountSimpleKPaths.
uint64_t CountKLengthWalks(const PropertyGraph& graph, int k,
                           uint64_t cap = std::numeric_limits<uint64_t>::max());

/// Closed-form count of 2-length simple paths:
/// sum_v indeg(v)*outdeg(v) - #(u->v->u round trips).
uint64_t CountSimple2Paths(const PropertyGraph& graph);

/// \brief Result of label-propagation community detection.
struct CommunityAssignment {
  /// Community label per vertex (label = some member vertex id).
  std::vector<VertexId> label;
  /// Number of distinct labels after the final pass.
  size_t num_communities = 0;
  /// Passes actually executed.
  int passes = 0;
};

/// \brief Synchronous label propagation over the *undirected* view of the
/// graph (each vertex adopts the most frequent label among its in+out
/// neighbors; ties break toward the smaller label). Deterministic.
/// Stops early when a pass changes no label.
CommunityAssignment LabelPropagation(const PropertyGraph& graph, int passes);

/// Returns the vertices of the largest community, where community size is
/// measured by the number of member vertices whose type is `count_type`
/// (pass kInvalidTypeId to count all member vertices) — Q8's "largest
/// community by number of job vertices".
std::vector<VertexId> LargestCommunity(const PropertyGraph& graph,
                                       const CommunityAssignment& communities,
                                       VertexTypeId count_type);

/// \brief Q4 "path lengths": for every vertex within `max_hops` forward of
/// `source`, the maximum value of `edge_property` over the edges of its
/// BFS discovery paths (a weighted distance with max-aggregation).
struct VertexAggregate {
  VertexId vertex;
  double value;
};
std::vector<VertexAggregate> WeightedPathAggregate(
    const PropertyGraph& graph, VertexId source, int max_hops,
    const std::string& edge_property);

/// Weakly connected components; returns component id per vertex and the
/// component count.
std::pair<std::vector<uint32_t>, size_t> WeakComponents(
    const PropertyGraph& graph);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_ALGORITHMS_H_
