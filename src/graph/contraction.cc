#include "graph/contraction.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/string_util.h"

namespace kaskade::graph {

namespace {

bool EdgeAllowed(const ContractionSpec& spec, EdgeTypeId type) {
  if (spec.edge_types.empty()) return true;
  return std::find(spec.edge_types.begin(), spec.edge_types.end(), type) !=
         spec.edge_types.end();
}

/// Accepts `v` (reached at `depth`) as a contraction endpoint?
bool EndpointOk(const PropertyGraph& base, const ContractionSpec& spec,
                VertexId v, int depth) {
  bool depth_ok = spec.k > 0 ? depth == spec.k : depth >= 1;
  return depth_ok &&
         (spec.target_type == kInvalidTypeId ||
          base.VertexType(v) == spec.target_type) &&
         (!spec.sources_and_sinks_only || base.OutDegree(v) == 0);
}

/// Per-endpoint contraction record: how many paths were contracted and
/// the maximum of `spec.max_property` over them (when requested).
struct EndpointHit {
  uint64_t paths = 0;
  double max_value = std::numeric_limits<double>::lowest();
};

/// Enumerates simple paths from `start` and records endpoints reached at
/// an acceptable depth into `hits`. When `include_closed_paths`, a final
/// step back to `start` also counts (the path interior stays simple; the
/// start is never expanded twice). `path_max` carries the running max of
/// the aggregated edge property along the current path.
void CollectEndpoints(const PropertyGraph& base, const ContractionSpec& spec,
                      VertexId start, VertexId v, int depth, double path_max,
                      std::vector<bool>* on_path,
                      std::map<VertexId, EndpointHit>* hits) {
  bool exact = spec.k > 0;
  int limit = exact ? spec.k : spec.max_hops;
  if (depth > 0 && EndpointOk(base, spec, v, depth)) {
    EndpointHit& hit = (*hits)[v];
    ++hit.paths;
    hit.max_value = std::max(hit.max_value, path_max);
  }
  if (depth == limit) return;
  (*on_path)[v] = true;
  for (EdgeId e : base.OutEdges(v)) {
    const EdgeRecord& rec = base.Edge(e);
    if (!EdgeAllowed(spec, rec.type)) continue;
    double next_max = path_max;
    if (!spec.max_property.empty()) {
      next_max = std::max(next_max,
                          base.EdgeProperty(e, spec.max_property).ToDouble());
    }
    if ((*on_path)[rec.target]) {
      if (spec.include_closed_paths && rec.target == start &&
          EndpointOk(base, spec, start, depth + 1)) {
        EndpointHit& hit = (*hits)[start];
        ++hit.paths;
        hit.max_value = std::max(hit.max_value, next_max);
      }
      continue;
    }
    CollectEndpoints(base, spec, start, rec.target, depth + 1, next_max,
                     on_path, hits);
  }
  (*on_path)[v] = false;
}

}  // namespace

Result<ConnectorView> ContractPaths(const PropertyGraph& base,
                                    const ContractionSpec& spec) {
  if (spec.k < 0) return Status::InvalidArgument("negative path length k");
  if (spec.k == 0 && spec.max_hops < 1) {
    return Status::InvalidArgument(
        "variable-length contraction needs max_hops >= 1");
  }

  // The view schema: only the vertex types that can appear as endpoints.
  // When both endpoint types are fixed, a single connector edge type is
  // declared under the requested name; with untyped endpoints the schema
  // model still requires a (domain, range) per edge type, so one edge
  // type per endpoint-type pair is declared ("NAME__SRC__DST"), except
  // that a single feasible pair keeps the plain name.
  GraphSchema view_schema;
  const GraphSchema& base_schema = base.schema();
  std::vector<std::string> endpoint_types;
  bool fully_typed = spec.source_type != kInvalidTypeId &&
                     spec.target_type != kInvalidTypeId;
  if (fully_typed) {
    view_schema.AddVertexType(base_schema.vertex_type_name(spec.source_type));
    view_schema.AddVertexType(base_schema.vertex_type_name(spec.target_type));
    KASKADE_RETURN_IF_ERROR(
        view_schema
            .AddEdgeType(spec.connector_edge_name,
                         base_schema.vertex_type_name(spec.source_type),
                         base_schema.vertex_type_name(spec.target_type))
            .status());
  } else {
    for (const std::string& name : base_schema.vertex_type_names()) {
      view_schema.AddVertexType(name);
    }
    bool single_pair = base_schema.num_vertex_types() == 1;
    for (const std::string& src : base_schema.vertex_type_names()) {
      for (const std::string& dst : base_schema.vertex_type_names()) {
        std::string name =
            single_pair ? spec.connector_edge_name
                        : spec.connector_edge_name + "__" +
                              ToUpperAscii(src) + "__" + ToUpperAscii(dst);
        KASKADE_RETURN_IF_ERROR(
            view_schema.AddEdgeType(name, src, dst).status());
      }
    }
  }

  PropertyGraph view(view_schema);
  std::vector<VertexId> view_to_base;
  std::unordered_map<VertexId, VertexId> base_to_view;
  uint64_t total_paths = 0;

  auto view_vertex_for = [&](VertexId base_vertex) {
    auto it = base_to_view.find(base_vertex);
    if (it != base_to_view.end()) return it->second;
    const std::string& type_name =
        base_schema.vertex_type_name(base.VertexType(base_vertex));
    VertexTypeId view_type = view.schema().FindVertexType(type_name);
    PropertyMap props;
    if (spec.copy_vertex_properties) props = base.VertexProperties(base_vertex);
    props.Set("orig_id", PropertyValue(static_cast<int64_t>(base_vertex)));
    VertexId vid = view.AddVertexOfType(view_type, std::move(props));
    base_to_view.emplace(base_vertex, vid);
    view_to_base.push_back(base_vertex);
    return vid;
  };

  auto connector_type_for = [&](VertexId src_base,
                                VertexId dst_base) -> EdgeTypeId {
    if (fully_typed || base_schema.num_vertex_types() == 1) {
      return view.schema().FindEdgeType(spec.connector_edge_name);
    }
    const std::string& src =
        base_schema.vertex_type_name(base.VertexType(src_base));
    const std::string& dst =
        base_schema.vertex_type_name(base.VertexType(dst_base));
    return view.schema().FindEdgeType(spec.connector_edge_name + "__" +
                                      ToUpperAscii(src) + "__" +
                                      ToUpperAscii(dst));
  };
  std::vector<bool> on_path(base.NumVertices(), false);
  std::map<VertexId, EndpointHit> hits;
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    if (!base.IsVertexLive(v)) continue;
    if (spec.source_type != kInvalidTypeId &&
        base.VertexType(v) != spec.source_type) {
      continue;
    }
    if (spec.sources_and_sinks_only && base.InDegree(v) != 0) continue;
    hits.clear();
    CollectEndpoints(base, spec, v, v, 0,
                     std::numeric_limits<double>::lowest(), &on_path, &hits);
    if (hits.empty()) continue;
    VertexId src_view = view_vertex_for(v);
    for (const auto& [endpoint, hit] : hits) {
      VertexId dst_view = view_vertex_for(endpoint);
      EdgeTypeId connector_type = connector_type_for(v, endpoint);
      total_paths += hit.paths;
      if (spec.deduplicate_pairs) {
        PropertyMap eprops;
        eprops.Set("paths", PropertyValue(static_cast<int64_t>(hit.paths)));
        if (!spec.max_property.empty()) {
          eprops.Set(spec.max_property, PropertyValue(hit.max_value));
        }
        KASKADE_RETURN_IF_ERROR(
            view.AddEdgeOfType(src_view, dst_view, connector_type,
                               std::move(eprops))
                .status());
      } else {
        for (uint64_t i = 0; i < hit.paths; ++i) {
          PropertyMap eprops;
          if (!spec.max_property.empty()) {
            eprops.Set(spec.max_property, PropertyValue(hit.max_value));
          }
          KASKADE_RETURN_IF_ERROR(view.AddEdgeOfType(src_view, dst_view,
                                                     connector_type,
                                                     std::move(eprops))
                                      .status());
        }
      }
    }
  }
  return ConnectorView{std::move(view), std::move(view_to_base), total_paths};
}

Result<ConnectorView> BuildKHopSameTypeConnector(const PropertyGraph& base,
                                                 VertexTypeId vertex_type,
                                                 int k) {
  if (vertex_type == kInvalidTypeId ||
      vertex_type >= base.schema().num_vertex_types()) {
    return Status::InvalidArgument("invalid vertex type for connector");
  }
  ContractionSpec spec;
  spec.k = k;
  spec.source_type = vertex_type;
  spec.target_type = vertex_type;
  std::string type_name =
      ToUpperAscii(base.schema().vertex_type_name(vertex_type));
  spec.connector_edge_name = std::to_string(k) + "_HOP_" + type_name + "_TO_" +
                             type_name;
  return ContractPaths(base, spec);
}

}  // namespace kaskade::graph
