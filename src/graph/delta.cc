#include "graph/delta.h"

#include <unordered_set>
#include <utility>

namespace kaskade::graph {

GraphDelta& GraphDelta::AddVertex(std::string type_name,
                                  PropertyMap properties) {
  vertex_inserts.push_back(
      VertexInsert{std::move(type_name), std::move(properties)});
  return *this;
}

GraphDelta& GraphDelta::AddEdge(VertexId source, VertexId target,
                                std::string type_name,
                                PropertyMap properties) {
  edge_inserts.push_back(EdgeInsert{source, target, std::move(type_name),
                                    std::move(properties)});
  return *this;
}

GraphDelta& GraphDelta::RemoveEdge(EdgeId e) {
  edge_removals.push_back(e);
  return *this;
}

size_t GraphDelta::Coalesce() {
  std::unordered_set<EdgeId> seen;
  size_t dropped = 0;
  std::vector<EdgeId> unique;
  unique.reserve(edge_removals.size());
  for (EdgeId e : edge_removals) {
    if (seen.insert(e).second) {
      unique.push_back(e);
    } else {
      ++dropped;
    }
  }
  edge_removals = std::move(unique);
  return dropped;
}

Status GraphDelta::Validate(const PropertyGraph& graph) const {
  const GraphSchema& schema = graph.schema();
  std::unordered_set<EdgeId> removal_set;
  for (EdgeId e : edge_removals) {
    if (!graph.IsEdgeLive(e)) {
      return Status::InvalidArgument("delta removes edge " +
                                     std::to_string(e) +
                                     " which is not a live edge");
    }
    if (!removal_set.insert(e).second) {
      return Status::InvalidArgument(
          "delta removes edge " + std::to_string(e) +
          " twice; Coalesce() the delta first");
    }
  }
  for (const VertexInsert& vi : vertex_inserts) {
    if (schema.FindVertexType(vi.type_name) == kInvalidTypeId) {
      return Status::NotFound("unknown vertex type '" + vi.type_name + "'");
    }
  }
  // Type of each endpoint an edge insert may legally reference: an
  // existing live vertex, or the j-th delta vertex at id NumVertices()+j.
  const VertexId first_new = static_cast<VertexId>(graph.NumVertices());
  auto endpoint_type = [&](VertexId v) -> Result<VertexTypeId> {
    if (v < first_new) {
      if (!graph.IsVertexLive(v)) {
        return Status::InvalidArgument("edge insert references removed "
                                       "vertex " +
                                       std::to_string(v));
      }
      return graph.VertexType(v);
    }
    size_t j = v - first_new;
    if (j >= vertex_inserts.size()) {
      return Status::OutOfRange("edge insert endpoint " + std::to_string(v) +
                                " is out of range");
    }
    return schema.FindVertexType(vertex_inserts[j].type_name);
  };
  for (const EdgeInsert& ei : edge_inserts) {
    EdgeTypeId type = schema.FindEdgeType(ei.type_name);
    if (type == kInvalidTypeId) {
      return Status::NotFound("unknown edge type '" + ei.type_name + "'");
    }
    const EdgeTypeDecl& decl = schema.edge_type(type);
    KASKADE_ASSIGN_OR_RETURN(VertexTypeId source_type,
                             endpoint_type(ei.source));
    KASKADE_ASSIGN_OR_RETURN(VertexTypeId target_type,
                             endpoint_type(ei.target));
    if (source_type != decl.source_type || target_type != decl.target_type) {
      return Status::InvalidArgument(
          "edge insert of type '" + ei.type_name +
          "' violates the schema's (domain, range) declaration");
    }
  }
  return Status::OK();
}

Result<AppliedDelta> ApplyDeltaToGraph(PropertyGraph* graph,
                                       const GraphDelta& delta) {
  KASKADE_RETURN_IF_ERROR(delta.Validate(*graph));
  AppliedDelta applied;
  applied.new_vertices.reserve(delta.vertex_inserts.size());
  for (const GraphDelta::VertexInsert& vi : delta.vertex_inserts) {
    KASKADE_ASSIGN_OR_RETURN(VertexId v,
                             graph->AddVertex(vi.type_name, vi.properties));
    applied.new_vertices.push_back(v);
  }
  for (EdgeId e : delta.edge_removals) {
    KASKADE_RETURN_IF_ERROR(graph->RemoveEdge(e));
    ++applied.removed_edges;
  }
  applied.new_edges.reserve(delta.edge_inserts.size());
  for (const GraphDelta::EdgeInsert& ei : delta.edge_inserts) {
    KASKADE_ASSIGN_OR_RETURN(
        EdgeId e,
        graph->AddEdge(ei.source, ei.target, ei.type_name, ei.properties));
    applied.new_edges.push_back(e);
  }
  return applied;
}

}  // namespace kaskade::graph
