#include "graph/property_value.h"

#include <sstream>

namespace kaskade::graph {

std::string PropertyValue::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::ostringstream os;
    os << as_double();
    return os.str();
  }
  return as_string();
}

bool PropertyValue::operator==(const PropertyValue& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return ToDouble() == other.ToDouble();
  }
  return repr_ == other.repr_;
}

bool PropertyValue::operator<(const PropertyValue& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() < other.as_int();
    return ToDouble() < other.ToDouble();
  }
  if (TypeRank() != other.TypeRank()) return TypeRank() < other.TypeRank();
  return repr_ < other.repr_;
}

bool PropertyValue::operator<=(const PropertyValue& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() <= other.as_int();
    return ToDouble() <= other.ToDouble();
  }
  if (TypeRank() != other.TypeRank()) return TypeRank() < other.TypeRank();
  return repr_ <= other.repr_;
}

PropertyMap::PropertyMap(
    std::initializer_list<std::pair<std::string, PropertyValue>> init) {
  for (const auto& [k, v] : init) Set(k, v);
}

void PropertyMap::Set(const std::string& key, PropertyValue value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

const PropertyValue* PropertyMap::Find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

PropertyValue PropertyMap::GetOrNull(const std::string& key) const {
  const PropertyValue* v = Find(key);
  return v == nullptr ? PropertyValue() : *v;
}

}  // namespace kaskade::graph
