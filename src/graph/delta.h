/// \file delta.h
/// \brief `GraphDelta`: a batch of base-graph mutations (vertex/edge
/// insertions and edge removals) applied as one unit.
///
/// The paper's provenance workload is append-only, but a serving system
/// (Graphsurge-style view collections) must absorb arbitrary deltas.
/// A delta is applied in a canonical order — vertex inserts, then edge
/// removals (in list order), then edge inserts — which every consumer
/// (the graph writer here, the view maintainers in `core/maintenance`)
/// agrees on, so incremental view updates account for each path exactly
/// once even when one batch mixes inserts and deletes.

#ifndef KASKADE_GRAPH_DELTA_H_
#define KASKADE_GRAPH_DELTA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"

namespace kaskade::graph {

/// \brief One batch of base-graph mutations.
struct GraphDelta {
  struct VertexInsert {
    std::string type_name;
    PropertyMap properties;
  };
  struct EdgeInsert {
    /// Endpoints may reference vertices created by this delta: the j-th
    /// `vertex_inserts` entry gets id `pre_delta_num_vertices + j`.
    VertexId source;
    VertexId target;
    std::string type_name;
    PropertyMap properties;
  };

  std::vector<VertexInsert> vertex_inserts;
  std::vector<EdgeInsert> edge_inserts;
  /// Ids of pre-delta edges to remove, applied in list order.
  std::vector<EdgeId> edge_removals;

  bool empty() const {
    return vertex_inserts.empty() && edge_inserts.empty() &&
           edge_removals.empty();
  }
  size_t size() const {
    return vertex_inserts.size() + edge_inserts.size() + edge_removals.size();
  }

  /// \name Fluent builders
  /// @{
  GraphDelta& AddVertex(std::string type_name, PropertyMap properties = {});
  GraphDelta& AddEdge(VertexId source, VertexId target, std::string type_name,
                      PropertyMap properties = {});
  GraphDelta& RemoveEdge(EdgeId e);
  /// @}

  /// Coalesces the batch: drops duplicate removals of the same edge id
  /// (keeping the first occurrence's position). Returns the number of
  /// operations dropped. Inserts are never coalesced — a multigraph may
  /// legitimately receive identical parallel edges.
  size_t Coalesce();

  /// Validates the delta against the graph it will be applied to: every
  /// removal names a distinct live edge, every type name exists, every
  /// edge endpoint is a live existing vertex or a vertex this delta
  /// creates, and endpoint types satisfy the edge type's (domain, range)
  /// declaration. A valid delta applies without partial failure.
  Status Validate(const PropertyGraph& graph) const;
};

/// \brief What an applied batch leaves behind for the logs that outlive
/// it: the removal ids (in application order) plus insert *counts*.
/// Insert payloads are consumed at application time and never read
/// again — appended elements are rediscovered from id-space growth —
/// so the logs must not pin them.
///
/// One shared, immutable footprint per applied batch is held by both
/// the engine's pending-delta log (replay-at-publish for in-flight
/// builds) and the catalog's CSR-snapshot delta trail: the removal
/// list is materialized once, however many consumers log the batch.
struct DeltaFootprint {
  std::vector<EdgeId> edge_removals;
  size_t edge_inserts = 0;
  size_t vertex_inserts = 0;

  DeltaFootprint() = default;
  /// Captures `delta`'s footprint (copies the removal list — the one
  /// copy every log then shares).
  explicit DeltaFootprint(const GraphDelta& delta)
      : edge_removals(delta.edge_removals),
        edge_inserts(delta.edge_inserts.size()),
        vertex_inserts(delta.vertex_inserts.size()) {}

  /// Upper bound on the vertices whose adjacency this batch touches
  /// (each edge mutation dirties at most its two endpoints). Consumers
  /// that patch per-vertex state forward (the catalog's CSR snapshot
  /// trail) use it to skip logging batches that already guarantee a
  /// full rebuild.
  size_t TouchedVertexBound() const {
    return 2 * (edge_inserts + edge_removals.size());
  }
};

/// \brief Shared ownership of one applied batch's footprint.
using DeltaFootprintPtr = std::shared_ptr<const DeltaFootprint>;

/// \brief Ids allocated while applying a delta.
struct AppliedDelta {
  std::vector<VertexId> new_vertices;
  std::vector<EdgeId> new_edges;
  size_t removed_edges = 0;
};

/// Applies `delta` to `graph` in canonical order (vertices, removals,
/// inserts). Validates first, so a returned error means the graph was not
/// modified. Callers that dislike duplicate-removal errors should
/// `Coalesce()` beforehand.
Result<AppliedDelta> ApplyDeltaToGraph(PropertyGraph* graph,
                                       const GraphDelta& delta);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_DELTA_H_
