/// \file contraction.h
/// \brief Path-contraction transformations that build connector views
/// (§VI-A, Fig. 3).
///
/// A connector of G is a graph G' where every edge (u, v) contracts a
/// single directed path between target vertices u, v of G, and V(G') is
/// the union of all target vertices. The functions here implement the
/// connector family of Table I as graph-to-graph transformations; the
/// `core` module wraps them behind `ViewDefinition`s.

#ifndef KASKADE_GRAPH_CONTRACTION_H_
#define KASKADE_GRAPH_CONTRACTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"

namespace kaskade::graph {

/// \brief Parameters of a path-contraction pass.
struct ContractionSpec {
  /// Exact number of hops each contracted path must have; 0 means
  /// variable-length (1..max_hops).
  int k = 2;
  /// Upper bound on path length for variable-length contraction (ignored
  /// when k > 0).
  int max_hops = 8;
  /// Required type of path start vertices (kInvalidTypeId = any).
  VertexTypeId source_type = kInvalidTypeId;
  /// Required type of path end vertices (kInvalidTypeId = any).
  VertexTypeId target_type = kInvalidTypeId;
  /// When non-empty, paths may only use edges of these types.
  std::vector<EdgeTypeId> edge_types;
  /// Name of the connector edge type in the view graph, e.g.
  /// "2_HOP_JOB_TO_JOB".
  std::string connector_edge_name = "CONNECTOR";
  /// Copy vertex property maps from the base graph into the view.
  bool copy_vertex_properties = true;
  /// When true (default), at most one connector edge is created per
  /// distinct (u, v) pair, and its "paths" property holds the number of
  /// contracted simple paths. When false, one edge per path (the literal
  /// §VI-A definition; view sizes then equal the simple-path counts that
  /// the §V-A estimators target).
  bool deduplicate_pairs = true;
  /// When true, restrict target vertices to (source, sink) pairs of the
  /// base graph (for the source-to-sink connector of Table I).
  bool sources_and_sinks_only = false;
  /// When true (default), a path may close back on its start vertex
  /// (producing a self-loop connector edge) as long as its interior is
  /// simple. Pattern matching with homomorphism semantics can bind both
  /// chain endpoints to one vertex (e.g. author-article-author), so
  /// closed paths must be contracted for view-based rewrites to be
  /// exact. Set false to contract strictly simple paths (whose count is
  /// what the §V-A estimators target).
  bool include_closed_paths = true;
  /// When non-empty, every connector edge carries a property of this name
  /// holding the maximum of that edge property over the contracted path
  /// (and over all merged paths when deduplicating). Lets max-aggregating
  /// path queries (Q4 "path lengths") run on the view.
  std::string max_property;
};

/// \brief A materialized connector plus the base-graph lineage of its
/// vertices.
struct ConnectorView {
  PropertyGraph view;
  /// Base-graph vertex id for each view vertex.
  std::vector<VertexId> view_to_base;
  /// Total contracted simple paths (== sum of "paths" properties).
  uint64_t contracted_paths = 0;
};

/// Builds a connector view by contracting simple paths of the base graph
/// according to `spec`. Vertices of the view carry an "orig_id" integer
/// property referring to the base graph. Fails with InvalidArgument for a
/// nonsensical spec (k < 0, k == 0 with max_hops < 1).
Result<ConnectorView> ContractPaths(const PropertyGraph& base,
                                    const ContractionSpec& spec);

/// Convenience wrapper: the paper's workhorse k-hop same-vertex-type
/// connector (e.g. 2-hop job-to-job). Edge name defaults to
/// "<k>_HOP_<TYPE>_TO_<TYPE>".
Result<ConnectorView> BuildKHopSameTypeConnector(const PropertyGraph& base,
                                                 VertexTypeId vertex_type,
                                                 int k);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_CONTRACTION_H_
