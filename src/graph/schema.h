/// \file schema.h
/// \brief Graph schema: vertex types plus edge types with (domain, range)
/// connectivity constraints (§III-A).
///
/// The schema is what makes Kaskade's constraint mining possible: an edge
/// type such as `WRITES_TO` is declared to connect only `Job` vertices to
/// `File` vertices, so no job-job or file-file edge can ever exist, and
/// only even-length job-to-job paths are feasible.

#ifndef KASKADE_GRAPH_SCHEMA_H_
#define KASKADE_GRAPH_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace kaskade::graph {

/// Dense id of a vertex type within a schema.
using VertexTypeId = uint32_t;
/// Dense id of an edge type within a schema.
using EdgeTypeId = uint32_t;

/// Sentinel meaning "no such type".
inline constexpr uint32_t kInvalidTypeId = ~0u;

/// \brief Declaration of an edge type: its name and the vertex types it is
/// allowed to connect (domain -> range).
struct EdgeTypeDecl {
  std::string name;
  VertexTypeId source_type;
  VertexTypeId target_type;
};

/// \brief A property-graph schema.
///
/// Vertex and edge types are interned to dense ids. Multiple edge types may
/// share a name pair; names must be unique per kind. A schema with one
/// vertex type and one edge type models a homogeneous graph.
class GraphSchema {
 public:
  /// Registers a vertex type; returns its id (existing id if duplicate).
  VertexTypeId AddVertexType(const std::string& name);

  /// Registers an edge type between two existing vertex types.
  /// Fails with NotFound if either endpoint type is unknown, or
  /// AlreadyExists if the edge-type name is taken.
  Result<EdgeTypeId> AddEdgeType(const std::string& name,
                                 const std::string& source_type,
                                 const std::string& target_type);

  /// Returns the id for a vertex type name, or kInvalidTypeId.
  VertexTypeId FindVertexType(const std::string& name) const;

  /// Returns the id for an edge type name, or kInvalidTypeId.
  EdgeTypeId FindEdgeType(const std::string& name) const;

  size_t num_vertex_types() const { return vertex_type_names_.size(); }
  size_t num_edge_types() const { return edge_types_.size(); }

  const std::string& vertex_type_name(VertexTypeId id) const {
    return vertex_type_names_[id];
  }
  const EdgeTypeDecl& edge_type(EdgeTypeId id) const { return edge_types_[id]; }

  const std::vector<std::string>& vertex_type_names() const {
    return vertex_type_names_;
  }
  const std::vector<EdgeTypeDecl>& edge_types() const { return edge_types_; }

  /// Edge types whose domain (source) is `type`.
  std::vector<EdgeTypeId> EdgeTypesFrom(VertexTypeId type) const;

  /// Edge types whose range (target) is `type`.
  std::vector<EdgeTypeId> EdgeTypesInto(VertexTypeId type) const;

  /// True when the schema has exactly one vertex type (the paper's notion
  /// of a homogeneous graph).
  bool IsHomogeneous() const { return vertex_type_names_.size() == 1; }

  /// True if a directed path of exactly `k` edge-type steps can lead from
  /// `from` to `to` under the schema (walks over the schema graph —
  /// schema-level feasibility as used by `schemaKHopPath`).
  bool HasKHopSchemaPath(VertexTypeId from, VertexTypeId to, int k) const;

 private:
  std::vector<std::string> vertex_type_names_;
  std::unordered_map<std::string, VertexTypeId> vertex_type_ids_;
  std::vector<EdgeTypeDecl> edge_types_;
  std::unordered_map<std::string, EdgeTypeId> edge_type_ids_;
};

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_SCHEMA_H_
