#include "graph/serialization.h"

#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/string_util.h"

namespace kaskade::graph {

namespace {

constexpr char kMagic[] = "kaskade-graph";
constexpr int kVersion = 1;

bool NeedsEscape(char c) {
  return std::isspace(static_cast<unsigned char>(c)) || c == '=' ||
         c == '\\' || !std::isprint(static_cast<unsigned char>(c));
}

std::string Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  char buf[8];
  for (char c : raw) {
    if (NeedsEscape(c)) {
      std::snprintf(buf, sizeof(buf), "\\%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      return Status::InvalidArgument("truncated escape sequence");
    }
    int value = 0;
    for (int d = 1; d <= 2; ++d) {
      char c = escaped[i + d];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        return Status::InvalidArgument("bad escape digit");
      }
      value = value * 16 + digit;
    }
    out.push_back(static_cast<char>(value));
    i += 2;
  }
  return out;
}

std::string EncodeValue(const PropertyValue& value) {
  if (value.is_null()) return "n:";
  if (value.is_bool()) return value.as_bool() ? "b:1" : "b:0";
  if (value.is_int()) return "i:" + std::to_string(value.as_int());
  if (value.is_double()) {
    std::ostringstream os;
    os << std::setprecision(17) << value.as_double();
    return "d:" + os.str();
  }
  return "s:" + Escape(value.as_string());
}

Result<PropertyValue> DecodeValue(const std::string& encoded) {
  if (encoded.size() < 2 || encoded[1] != ':') {
    return Status::InvalidArgument("bad property encoding '" + encoded + "'");
  }
  std::string payload = encoded.substr(2);
  switch (encoded[0]) {
    case 'n':
      return PropertyValue();
    case 'b':
      return PropertyValue(payload == "1");
    case 'i':
      try {
        return PropertyValue(static_cast<int64_t>(std::stoll(payload)));
      } catch (...) {
        return Status::InvalidArgument("bad integer '" + payload + "'");
      }
    case 'd':
      try {
        return PropertyValue(std::stod(payload));
      } catch (...) {
        return Status::InvalidArgument("bad double '" + payload + "'");
      }
    case 's': {
      KASKADE_ASSIGN_OR_RETURN(std::string raw, Unescape(payload));
      return PropertyValue(std::move(raw));
    }
    default:
      return Status::InvalidArgument("unknown property tag '" +
                                     std::string(1, encoded[0]) + "'");
  }
}

void WriteProperties(const PropertyMap& props, std::ostream* out) {
  for (const auto& [key, value] : props) {
    *out << " " << Escape(key) << "=" << EncodeValue(value);
  }
}

Status ParseProperties(const std::vector<std::string>& tokens, size_t start,
                       PropertyMap* props) {
  for (size_t i = start; i < tokens.size(); ++i) {
    if (tokens[i].empty()) continue;
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("property token missing '=': " +
                                     tokens[i]);
    }
    KASKADE_ASSIGN_OR_RETURN(std::string key,
                             Unescape(tokens[i].substr(0, eq)));
    KASKADE_ASSIGN_OR_RETURN(PropertyValue value,
                             DecodeValue(tokens[i].substr(eq + 1)));
    props->Set(key, std::move(value));
  }
  return Status::OK();
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

Status SaveGraph(const PropertyGraph& graph, std::ostream* out) {
  *out << kMagic << " " << kVersion << "\n";
  const GraphSchema& schema = graph.schema();
  for (const std::string& name : schema.vertex_type_names()) {
    *out << "vtype " << Escape(name) << "\n";
  }
  for (const EdgeTypeDecl& decl : schema.edge_types()) {
    *out << "etype " << Escape(decl.name) << " "
         << Escape(schema.vertex_type_name(decl.source_type)) << " "
         << Escape(schema.vertex_type_name(decl.target_type)) << "\n";
  }
  // Dead elements are dropped and vertex ids compacted (the format has
  // no tombstone notion); loading a saved graph yields dense live ids.
  std::vector<VertexId> remap(graph.NumVertices(), kInvalidId);
  VertexId next_id = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!graph.IsVertexLive(v)) continue;
    remap[v] = next_id++;
    *out << "vertex " << Escape(graph.VertexTypeName(v));
    WriteProperties(graph.VertexProperties(v), out);
    *out << "\n";
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    if (!graph.IsEdgeLive(e)) continue;
    const EdgeRecord& rec = graph.Edge(e);
    *out << "edge " << remap[rec.source] << " " << remap[rec.target] << " "
         << Escape(graph.EdgeTypeName(e));
    WriteProperties(graph.EdgeProperties(e), out);
    *out << "\n";
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<PropertyGraph> LoadGraph(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("empty input");
  }
  std::vector<std::string> header = Tokenize(line);
  if (header.size() != 2 || header[0] != kMagic) {
    return Status::InvalidArgument("not a kaskade-graph file");
  }
  if (header[1] != std::to_string(kVersion)) {
    return Status::InvalidArgument("unsupported version " + header[1]);
  }

  // Pass 1: schema lines must precede data lines; we build as we stream.
  GraphSchema schema;
  std::vector<std::pair<std::string, PropertyMap>> pending_vertices;
  struct PendingEdge {
    VertexId source;
    VertexId target;
    std::string type;
    PropertyMap props;
  };
  std::vector<PendingEdge> pending_edges;
  size_t line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + why);
    };
    if (tokens[0] == "vtype") {
      if (tokens.size() != 2) return fail("vtype wants 1 argument");
      KASKADE_ASSIGN_OR_RETURN(std::string name, Unescape(tokens[1]));
      schema.AddVertexType(name);
    } else if (tokens[0] == "etype") {
      if (tokens.size() != 4) return fail("etype wants 3 arguments");
      KASKADE_ASSIGN_OR_RETURN(std::string name, Unescape(tokens[1]));
      KASKADE_ASSIGN_OR_RETURN(std::string src, Unescape(tokens[2]));
      KASKADE_ASSIGN_OR_RETURN(std::string dst, Unescape(tokens[3]));
      KASKADE_RETURN_IF_ERROR(schema.AddEdgeType(name, src, dst).status());
    } else if (tokens[0] == "vertex") {
      if (tokens.size() < 2) return fail("vertex wants a type");
      KASKADE_ASSIGN_OR_RETURN(std::string type, Unescape(tokens[1]));
      PropertyMap props;
      KASKADE_RETURN_IF_ERROR(ParseProperties(tokens, 2, &props));
      pending_vertices.emplace_back(std::move(type), std::move(props));
    } else if (tokens[0] == "edge") {
      if (tokens.size() < 4) return fail("edge wants src dst type");
      PendingEdge edge;
      try {
        edge.source = static_cast<VertexId>(std::stoul(tokens[1]));
        edge.target = static_cast<VertexId>(std::stoul(tokens[2]));
      } catch (...) {
        return fail("bad endpoint id");
      }
      KASKADE_ASSIGN_OR_RETURN(edge.type, Unescape(tokens[3]));
      KASKADE_RETURN_IF_ERROR(ParseProperties(tokens, 4, &edge.props));
      pending_edges.push_back(std::move(edge));
    } else {
      return fail("unknown record '" + tokens[0] + "'");
    }
  }

  PropertyGraph graph(schema);
  for (auto& [type, props] : pending_vertices) {
    KASKADE_RETURN_IF_ERROR(
        graph.AddVertex(type, std::move(props)).status());
  }
  for (PendingEdge& edge : pending_edges) {
    KASKADE_RETURN_IF_ERROR(
        graph.AddEdge(edge.source, edge.target, edge.type,
                      std::move(edge.props))
            .status());
  }
  return graph;
}

std::string GraphToString(const PropertyGraph& graph) {
  std::ostringstream os;
  Status st = SaveGraph(graph, &os);
  return st.ok() ? os.str() : "";
}

Result<PropertyGraph> GraphFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadGraph(&is);
}

}  // namespace kaskade::graph
