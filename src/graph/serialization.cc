#include "graph/serialization.h"

#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/crc32c.h"
#include "common/string_util.h"

namespace kaskade::graph {

namespace {

constexpr char kMagic[] = "kaskade-graph";
/// Version 2 added sections, per-section CRC32C, the whole-file `end`
/// checksum, and the tombstone-preserving `xvertex`/`xedge` records.
constexpr int kVersion = 2;
constexpr int kLegacyVersion = 1;

bool NeedsEscape(char c) {
  return std::isspace(static_cast<unsigned char>(c)) || c == '=' ||
         c == '\\' || !std::isprint(static_cast<unsigned char>(c));
}

std::string HexCrc(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

Result<uint32_t> ParseHexCrc(const std::string& token) {
  if (token.size() != 8) {
    return Status::DataLoss("bad checksum token '" + token + "'");
  }
  uint32_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::DataLoss("bad checksum digit in '" + token + "'");
    }
    value = value * 16 + static_cast<uint32_t>(digit);
  }
  return value;
}

/// Everything a data line can declare, version-independent: the loader
/// first collects these, then constructs the graph, then applies the
/// tombstones — so a dead vertex's dead incident edges are removed
/// before `RemoveVertex` runs.
struct PendingGraph {
  GraphSchema schema;
  struct PendingVertex {
    std::string type;
    PropertyMap props;
    bool live = true;
  };
  struct PendingEdge {
    VertexId source;
    VertexId target;
    std::string type;
    PropertyMap props;
    bool live = true;
  };
  std::vector<PendingVertex> vertices;
  std::vector<PendingEdge> edges;
};

Status ParseDataLine(const std::vector<std::string>& tokens,
                     PendingGraph* pending) {
  const std::string& record = tokens[0];
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument(why);
  };
  if (record == "vtype") {
    if (tokens.size() != 2) return fail("vtype wants 1 argument");
    KASKADE_ASSIGN_OR_RETURN(std::string name, UnescapeToken(tokens[1]));
    pending->schema.AddVertexType(name);
  } else if (record == "etype") {
    if (tokens.size() != 4) return fail("etype wants 3 arguments");
    KASKADE_ASSIGN_OR_RETURN(std::string name, UnescapeToken(tokens[1]));
    KASKADE_ASSIGN_OR_RETURN(std::string src, UnescapeToken(tokens[2]));
    KASKADE_ASSIGN_OR_RETURN(std::string dst, UnescapeToken(tokens[3]));
    KASKADE_RETURN_IF_ERROR(
        pending->schema.AddEdgeType(name, src, dst).status());
  } else if (record == "vertex" || record == "xvertex") {
    if (tokens.size() < 2) return fail("vertex wants a type");
    PendingGraph::PendingVertex vertex;
    vertex.live = record[0] != 'x';
    KASKADE_ASSIGN_OR_RETURN(vertex.type, UnescapeToken(tokens[1]));
    KASKADE_RETURN_IF_ERROR(ParsePropertyTokens(tokens, 2, &vertex.props));
    pending->vertices.push_back(std::move(vertex));
  } else if (record == "edge" || record == "xedge") {
    if (tokens.size() < 4) return fail("edge wants src dst type");
    PendingGraph::PendingEdge edge;
    edge.live = record[0] != 'x';
    try {
      edge.source = static_cast<VertexId>(std::stoul(tokens[1]));
      edge.target = static_cast<VertexId>(std::stoul(tokens[2]));
    } catch (...) {
      return fail("bad endpoint id");
    }
    KASKADE_ASSIGN_OR_RETURN(edge.type, UnescapeToken(tokens[3]));
    KASKADE_RETURN_IF_ERROR(ParsePropertyTokens(tokens, 4, &edge.props));
    pending->edges.push_back(std::move(edge));
  } else {
    return fail("unknown record '" + record + "'");
  }
  return Status::OK();
}

/// Builds the graph from collected records: everything is added live
/// first (so dead edges can reference dead endpoints), then edges and
/// vertices are tombstoned in that order (`RemoveVertex` requires no
/// live incident edges).
Result<PropertyGraph> ConstructGraph(PendingGraph pending) {
  PropertyGraph graph(pending.schema);
  for (auto& vertex : pending.vertices) {
    KASKADE_RETURN_IF_ERROR(
        graph.AddVertex(vertex.type, std::move(vertex.props)).status());
  }
  std::vector<EdgeId> dead_edges;
  for (size_t i = 0; i < pending.edges.size(); ++i) {
    auto& edge = pending.edges[i];
    KASKADE_ASSIGN_OR_RETURN(EdgeId id,
                             graph.AddEdge(edge.source, edge.target, edge.type,
                                           std::move(edge.props)));
    if (!edge.live) dead_edges.push_back(id);
  }
  for (EdgeId e : dead_edges) {
    KASKADE_RETURN_IF_ERROR(graph.RemoveEdge(e));
  }
  for (size_t v = 0; v < pending.vertices.size(); ++v) {
    if (pending.vertices[v].live) continue;
    KASKADE_RETURN_IF_ERROR(graph.RemoveVertex(static_cast<VertexId>(v)));
  }
  return graph;
}

/// Reads the remaining lines of a version-1 (unchecksummed) stream.
Result<PropertyGraph> LoadLegacyGraph(std::istream* in) {
  PendingGraph pending;
  std::string line;
  size_t line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    std::vector<std::string> tokens = TokenizeLine(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "xvertex" || tokens[0] == "xedge") {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": tombstone records require format version 2");
    }
    Status parsed = ParseDataLine(tokens, &pending);
    if (!parsed.ok()) {
      return Status(parsed.code(), "line " + std::to_string(line_number) +
                                       ": " + parsed.message());
    }
  }
  return ConstructGraph(std::move(pending));
}

/// One integrity-checked section of a version-2 stream: reads the
/// declared number of data lines, verifies the trailing `crc <name>
/// <hex>` line, and feeds each data line to the record parser. `total`
/// accumulates the whole-file checksum.
Status ReadSection(std::istream* in, const std::string& expect_name,
                   std::string* first_line, uint32_t* total,
                   PendingGraph* pending) {
  auto extend_total = [&](const std::string& line) {
    *total = Crc32cExtend(*total, line.data(), line.size());
    *total = Crc32cExtend(*total, "\n", 1);
  };
  std::vector<std::string> header = TokenizeLine(*first_line);
  if (header.size() != 3 || header[0] != "section" ||
      header[1] != expect_name) {
    return Status::DataLoss("expected 'section " + expect_name +
                            " <count>', got '" + *first_line + "'");
  }
  size_t count = 0;
  try {
    count = std::stoul(header[2]);
  } catch (...) {
    return Status::DataLoss("bad section count '" + header[2] + "'");
  }
  extend_total(*first_line);

  uint32_t section_crc = 0;
  std::vector<std::vector<std::string>> data_lines;
  data_lines.reserve(count);
  std::string line;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(*in, line)) {
      return Status::DataLoss("section '" + expect_name +
                              "' truncated: expected " + std::to_string(count) +
                              " records, file ended after " +
                              std::to_string(i));
    }
    section_crc = Crc32cExtend(section_crc, line.data(), line.size());
    section_crc = Crc32cExtend(section_crc, "\n", 1);
    extend_total(line);
    data_lines.push_back(TokenizeLine(line));
  }
  if (!std::getline(*in, line)) {
    return Status::DataLoss("section '" + expect_name +
                            "' truncated: missing checksum line");
  }
  std::vector<std::string> crc_tokens = TokenizeLine(line);
  if (crc_tokens.size() != 3 || crc_tokens[0] != "crc" ||
      crc_tokens[1] != expect_name) {
    return Status::DataLoss("expected 'crc " + expect_name + " <hex>', got '" +
                            line + "'");
  }
  KASKADE_ASSIGN_OR_RETURN(uint32_t declared, ParseHexCrc(crc_tokens[2]));
  if (declared != section_crc) {
    return Status::DataLoss("section '" + expect_name +
                            "' checksum mismatch: declared " + crc_tokens[2] +
                            ", computed " + HexCrc(section_crc));
  }
  extend_total(line);

  // Only after the checksum passed do the records get parsed — corrupted
  // bytes never reach graph construction.
  for (size_t i = 0; i < data_lines.size(); ++i) {
    if (data_lines[i].empty()) {
      return Status::DataLoss("empty record in section '" + expect_name + "'");
    }
    Status parsed = ParseDataLine(data_lines[i], pending);
    if (!parsed.ok()) {
      return Status(parsed.code(), "section '" + expect_name + "' record " +
                                       std::to_string(i) + ": " +
                                       parsed.message());
    }
  }
  return Status::OK();
}

Result<PropertyGraph> LoadCheckedGraph(std::istream* in,
                                       const std::string& header_line) {
  uint32_t total = 0;
  total = Crc32cExtend(total, header_line.data(), header_line.size());
  total = Crc32cExtend(total, "\n", 1);

  PendingGraph pending;
  const char* section_names[] = {"schema", "vertices", "edges"};
  std::string line;
  for (const char* name : section_names) {
    if (!std::getline(*in, line)) {
      return Status::DataLoss(std::string("truncated before section '") +
                              name + "'");
    }
    KASKADE_RETURN_IF_ERROR(ReadSection(in, name, &line, &total, &pending));
  }
  if (!std::getline(*in, line)) {
    return Status::DataLoss("truncated: missing 'end' checksum line");
  }
  std::vector<std::string> end_tokens = TokenizeLine(line);
  if (end_tokens.size() != 2 || end_tokens[0] != "end") {
    return Status::DataLoss("expected 'end <hex>', got '" + line + "'");
  }
  KASKADE_ASSIGN_OR_RETURN(uint32_t declared, ParseHexCrc(end_tokens[1]));
  if (declared != total) {
    return Status::DataLoss("file checksum mismatch: declared " +
                            end_tokens[1] + ", computed " + HexCrc(total));
  }
  return ConstructGraph(std::move(pending));
}

}  // namespace

std::string EscapeToken(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  char buf[8];
  for (char c : raw) {
    if (NeedsEscape(c)) {
      std::snprintf(buf, sizeof(buf), "\\%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeToken(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 2 >= escaped.size()) {
      return Status::InvalidArgument("truncated escape sequence");
    }
    int value = 0;
    for (int d = 1; d <= 2; ++d) {
      char c = escaped[i + d];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        return Status::InvalidArgument("bad escape digit");
      }
      value = value * 16 + digit;
    }
    out.push_back(static_cast<char>(value));
    i += 2;
  }
  return out;
}

std::string EncodePropertyValue(const PropertyValue& value) {
  if (value.is_null()) return "n:";
  if (value.is_bool()) return value.as_bool() ? "b:1" : "b:0";
  if (value.is_int()) return "i:" + std::to_string(value.as_int());
  if (value.is_double()) {
    std::ostringstream os;
    os << std::setprecision(17) << value.as_double();
    return "d:" + os.str();
  }
  return "s:" + EscapeToken(value.as_string());
}

Result<PropertyValue> DecodePropertyValue(const std::string& encoded) {
  if (encoded.size() < 2 || encoded[1] != ':') {
    return Status::InvalidArgument("bad property encoding '" + encoded + "'");
  }
  std::string payload = encoded.substr(2);
  switch (encoded[0]) {
    case 'n':
      return PropertyValue();
    case 'b':
      return PropertyValue(payload == "1");
    case 'i':
      try {
        return PropertyValue(static_cast<int64_t>(std::stoll(payload)));
      } catch (...) {
        return Status::InvalidArgument("bad integer '" + payload + "'");
      }
    case 'd':
      try {
        return PropertyValue(std::stod(payload));
      } catch (...) {
        return Status::InvalidArgument("bad double '" + payload + "'");
      }
    case 's': {
      KASKADE_ASSIGN_OR_RETURN(std::string raw, UnescapeToken(payload));
      return PropertyValue(std::move(raw));
    }
    default:
      return Status::InvalidArgument("unknown property tag '" +
                                     std::string(1, encoded[0]) + "'");
  }
}

void AppendProperties(const PropertyMap& props, std::string* out) {
  for (const auto& [key, value] : props) {
    *out += " ";
    *out += EscapeToken(key);
    *out += "=";
    *out += EncodePropertyValue(value);
  }
}

Status ParsePropertyTokens(const std::vector<std::string>& tokens,
                           size_t start, PropertyMap* props) {
  for (size_t i = start; i < tokens.size(); ++i) {
    if (tokens[i].empty()) continue;
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("property token missing '=': " +
                                     tokens[i]);
    }
    KASKADE_ASSIGN_OR_RETURN(std::string key,
                             UnescapeToken(tokens[i].substr(0, eq)));
    KASKADE_ASSIGN_OR_RETURN(PropertyValue value,
                             DecodePropertyValue(tokens[i].substr(eq + 1)));
    props->Set(key, std::move(value));
  }
  return Status::OK();
}

std::vector<std::string> TokenizeLine(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

Status SaveGraph(const PropertyGraph& graph, std::ostream* out,
                 const SaveOptions& options) {
  // Render every section's data lines first, then emit with counts and
  // checksums — the writer and the loader compute the CRCs over the
  // same byte runs (each line plus its newline).
  const GraphSchema& schema = graph.schema();
  std::vector<std::string> schema_lines;
  for (const std::string& name : schema.vertex_type_names()) {
    schema_lines.push_back("vtype " + EscapeToken(name));
  }
  for (const EdgeTypeDecl& decl : schema.edge_types()) {
    schema_lines.push_back(
        "etype " + EscapeToken(decl.name) + " " +
        EscapeToken(schema.vertex_type_name(decl.source_type)) + " " +
        EscapeToken(schema.vertex_type_name(decl.target_type)));
  }

  std::vector<std::string> vertex_lines;
  std::vector<std::string> edge_lines;
  if (options.preserve_tombstones) {
    // Exact id-space reproduction: every element in id order, dead ones
    // marked — the checkpoint/WAL contract (a WAL tail names pre-delta
    // edge ids, which must mean the same thing after reload).
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      std::string line = graph.IsVertexLive(v) ? "vertex " : "xvertex ";
      line += EscapeToken(graph.VertexTypeName(v));
      AppendProperties(graph.VertexProperties(v), &line);
      vertex_lines.push_back(std::move(line));
    }
    for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
      const EdgeRecord& rec = graph.Edge(e);
      std::string line = graph.IsEdgeLive(e) ? "edge " : "xedge ";
      line += std::to_string(rec.source) + " " + std::to_string(rec.target) +
              " " + EscapeToken(graph.EdgeTypeName(e));
      AppendProperties(graph.EdgeProperties(e), &line);
      edge_lines.push_back(std::move(line));
    }
  } else {
    // Dead elements are dropped and vertex ids compacted; loading a
    // graph saved this way yields dense live ids.
    std::vector<VertexId> remap(graph.NumVertices(), kInvalidId);
    VertexId next_id = 0;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (!graph.IsVertexLive(v)) continue;
      remap[v] = next_id++;
      std::string line = "vertex " + EscapeToken(graph.VertexTypeName(v));
      AppendProperties(graph.VertexProperties(v), &line);
      vertex_lines.push_back(std::move(line));
    }
    for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
      if (!graph.IsEdgeLive(e)) continue;
      const EdgeRecord& rec = graph.Edge(e);
      std::string line = "edge " + std::to_string(remap[rec.source]) + " " +
                         std::to_string(remap[rec.target]) + " " +
                         EscapeToken(graph.EdgeTypeName(e));
      AppendProperties(graph.EdgeProperties(e), &line);
      edge_lines.push_back(std::move(line));
    }
  }

  uint32_t total = 0;
  auto emit = [&](const std::string& line) {
    total = Crc32cExtend(total, line.data(), line.size());
    total = Crc32cExtend(total, "\n", 1);
    *out << line << "\n";
  };
  auto emit_section = [&](const char* name,
                          const std::vector<std::string>& lines) {
    emit(std::string("section ") + name + " " + std::to_string(lines.size()));
    uint32_t section_crc = 0;
    for (const std::string& line : lines) {
      section_crc = Crc32cExtend(section_crc, line.data(), line.size());
      section_crc = Crc32cExtend(section_crc, "\n", 1);
      emit(line);
    }
    emit(std::string("crc ") + name + " " + HexCrc(section_crc));
  };

  emit(std::string(kMagic) + " " + std::to_string(kVersion));
  emit_section("schema", schema_lines);
  emit_section("vertices", vertex_lines);
  emit_section("edges", edge_lines);
  *out << "end " << HexCrc(total) << "\n";
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<PropertyGraph> LoadGraph(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("empty input");
  }
  std::vector<std::string> header = TokenizeLine(line);
  if (header.size() != 2 || header[0] != kMagic) {
    return Status::InvalidArgument("not a kaskade-graph file");
  }
  if (header[1] == std::to_string(kLegacyVersion)) {
    return LoadLegacyGraph(in);
  }
  if (header[1] != std::to_string(kVersion)) {
    return Status::InvalidArgument("unsupported version " + header[1]);
  }
  return LoadCheckedGraph(in, line);
}

std::string GraphToString(const PropertyGraph& graph,
                          const SaveOptions& options) {
  std::ostringstream os;
  Status st = SaveGraph(graph, &os, options);
  return st.ok() ? os.str() : "";
}

Result<PropertyGraph> GraphFromString(const std::string& text) {
  std::istringstream is(text);
  return LoadGraph(&is);
}

// ---------------------------------------------------------------------------
// GraphDelta serialization (WAL record payloads)
// ---------------------------------------------------------------------------

std::string SerializeDelta(const GraphDelta& delta) {
  std::string out;
  for (const GraphDelta::VertexInsert& v : delta.vertex_inserts) {
    out += "addv " + EscapeToken(v.type_name);
    AppendProperties(v.properties, &out);
    out += "\n";
  }
  for (EdgeId e : delta.edge_removals) {
    out += "rme " + std::to_string(e) + "\n";
  }
  for (const GraphDelta::EdgeInsert& e : delta.edge_inserts) {
    out += "adde " + std::to_string(e.source) + " " +
           std::to_string(e.target) + " " + EscapeToken(e.type_name);
    AppendProperties(e.properties, &out);
    out += "\n";
  }
  return out;
}

Result<GraphDelta> ParseDelta(const std::string& text) {
  GraphDelta delta;
  std::istringstream is(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    std::vector<std::string> tokens = TokenizeLine(line);
    if (tokens.empty()) continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("delta line " +
                                     std::to_string(line_number) + ": " + why);
    };
    if (tokens[0] == "addv") {
      if (tokens.size() < 2) return fail("addv wants a type");
      GraphDelta::VertexInsert insert;
      KASKADE_ASSIGN_OR_RETURN(insert.type_name, UnescapeToken(tokens[1]));
      KASKADE_RETURN_IF_ERROR(
          ParsePropertyTokens(tokens, 2, &insert.properties));
      delta.vertex_inserts.push_back(std::move(insert));
    } else if (tokens[0] == "adde") {
      if (tokens.size() < 4) return fail("adde wants src dst type");
      GraphDelta::EdgeInsert insert;
      try {
        insert.source = static_cast<VertexId>(std::stoul(tokens[1]));
        insert.target = static_cast<VertexId>(std::stoul(tokens[2]));
      } catch (...) {
        return fail("bad endpoint id");
      }
      KASKADE_ASSIGN_OR_RETURN(insert.type_name, UnescapeToken(tokens[3]));
      KASKADE_RETURN_IF_ERROR(
          ParsePropertyTokens(tokens, 4, &insert.properties));
      delta.edge_inserts.push_back(std::move(insert));
    } else if (tokens[0] == "rme") {
      if (tokens.size() != 2) return fail("rme wants an edge id");
      try {
        delta.edge_removals.push_back(
            static_cast<EdgeId>(std::stoul(tokens[1])));
      } catch (...) {
        return fail("bad edge id");
      }
    } else {
      return fail("unknown delta record '" + tokens[0] + "'");
    }
  }
  return delta;
}

}  // namespace kaskade::graph
