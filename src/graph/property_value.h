/// \file property_value.h
/// \brief Dynamically-typed property values attached to vertices and edges
/// of a property graph (§III-A of the Kaskade paper).

#ifndef KASKADE_GRAPH_PROPERTY_VALUE_H_
#define KASKADE_GRAPH_PROPERTY_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace kaskade::graph {

/// \brief A property value: null, boolean, 64-bit integer, double, or
/// string.
///
/// The property-graph data model attaches key/value pairs to both vertices
/// and edges. Values are compared first by type rank (null < bool < int <
/// double < string), then by value, so they can be used as grouping keys.
class PropertyValue {
 public:
  PropertyValue() : repr_(std::monostate{}) {}
  PropertyValue(bool v) : repr_(v) {}                       // NOLINT
  PropertyValue(int64_t v) : repr_(v) {}                    // NOLINT
  PropertyValue(int v) : repr_(static_cast<int64_t>(v)) {}  // NOLINT
  PropertyValue(double v) : repr_(v) {}                     // NOLINT
  PropertyValue(std::string v) : repr_(std::move(v)) {}     // NOLINT
  PropertyValue(const char* v) : repr_(std::string(v)) {}   // NOLINT

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// True for int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(repr_); }
  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }

  /// Numeric value widened to double; 0.0 for non-numeric values.
  double ToDouble() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    if (is_bool()) return as_bool() ? 1.0 : 0.0;
    return 0.0;
  }

  /// Renders the value for display ("null", "true", "42", "1.5", "abc").
  std::string ToString() const;

  bool operator==(const PropertyValue& other) const;
  bool operator!=(const PropertyValue& other) const { return !(*this == other); }
  /// Total order: by type rank, then value (numerics compared as double
  /// within the cross-type numeric case).
  bool operator<(const PropertyValue& other) const;
  /// First-class `<=` (single comparison, not `a < b || a == b`).
  bool operator<=(const PropertyValue& other) const;
  bool operator>(const PropertyValue& other) const { return other < *this; }
  bool operator>=(const PropertyValue& other) const { return other <= *this; }

 private:
  int TypeRank() const { return static_cast<int>(repr_.index()); }

  std::variant<std::monostate, bool, int64_t, double, std::string> repr_;
};

/// \brief A flat list of key/value pairs; small maps dominate so linear
/// scan beats hashing.
class PropertyMap {
 public:
  PropertyMap() = default;
  PropertyMap(std::initializer_list<std::pair<std::string, PropertyValue>> init);

  /// Inserts or overwrites `key`.
  void Set(const std::string& key, PropertyValue value);

  /// Returns the value for `key`, or nullptr when absent.
  const PropertyValue* Find(const std::string& key) const;

  /// Returns the value for `key`, or a null PropertyValue when absent.
  PropertyValue GetOrNull(const std::string& key) const;

  bool Contains(const std::string& key) const { return Find(key) != nullptr; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  bool operator==(const PropertyMap& other) const = default;

 private:
  std::vector<std::pair<std::string, PropertyValue>> entries_;
};

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_PROPERTY_VALUE_H_
