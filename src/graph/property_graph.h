/// \file property_graph.h
/// \brief In-memory directed property graph with typed vertices and edges.
///
/// This is Kaskade's execution substrate (the role Neo4j plays in the
/// paper): it stores the raw graph and all materialized graph views, and
/// the query executor in `src/query` pattern-matches against it.

#ifndef KASKADE_GRAPH_PROPERTY_GRAPH_H_
#define KASKADE_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/property_value.h"
#include "graph/schema.h"

namespace kaskade::graph {

/// Dense vertex identifier (index into the vertex arrays).
using VertexId = uint32_t;
/// Dense edge identifier (index into the edge arrays).
using EdgeId = uint32_t;

/// Sentinel meaning "no such vertex/edge".
inline constexpr uint32_t kInvalidId = ~0u;

/// \brief An edge record: (source, target, type).
struct EdgeRecord {
  VertexId source;
  VertexId target;
  EdgeTypeId type;
};

/// \brief Directed multigraph with schema-validated typed vertices/edges
/// and per-element property maps.
///
/// Ids are dense and append-only: `AddVertex`/`AddEdge` allocate the next
/// id and ids are never reused. Removal is tombstone-based: `RemoveEdge`
/// and `RemoveVertex` unlink the element from the adjacency lists and
/// mark it dead, but its id (and its record/properties, for lineage
/// consumers) stays readable. Consequently `NumVertices()`/`NumEdges()`
/// bound the *id space* — loops indexing by id stay valid after removals
/// but must skip dead elements via `IsVertexLive`/`IsEdgeLive`; use
/// `NumLiveVertices()`/`NumLiveEdges()` for element *counts*. Views are
/// materialized as *new* PropertyGraph instances, which matches the
/// paper's design where views live beside the raw graph. Adjacency is
/// stored as per-vertex out/in edge lists for O(degree) expansion.
class PropertyGraph {
 public:
  /// Creates a graph over `schema` (copied; the schema of a graph is
  /// immutable once the graph exists).
  explicit PropertyGraph(GraphSchema schema) : schema_(std::move(schema)) {}

  const GraphSchema& schema() const { return schema_; }

  /// \name Mutation
  /// @{

  /// Adds a vertex of the named type. Fails with NotFound for an unknown
  /// type name.
  Result<VertexId> AddVertex(const std::string& type_name,
                             PropertyMap properties = {});

  /// Adds a vertex of the given type id (no name lookup; hot path for
  /// generators and materializers).
  VertexId AddVertexOfType(VertexTypeId type, PropertyMap properties = {});

  /// Adds an edge of the named type. Fails with NotFound for an unknown
  /// type, OutOfRange for bad endpoints, and InvalidArgument when the
  /// endpoints violate the edge type's (domain, range) declaration.
  Result<EdgeId> AddEdge(VertexId source, VertexId target,
                         const std::string& type_name,
                         PropertyMap properties = {});

  /// Adds an edge by type id, still validating endpoints against the
  /// schema constraint.
  Result<EdgeId> AddEdgeOfType(VertexId source, VertexId target,
                               EdgeTypeId type, PropertyMap properties = {});

  /// Sets a property on an existing vertex.
  Status SetVertexProperty(VertexId v, const std::string& key,
                           PropertyValue value);

  /// Sets a property on an existing edge.
  Status SetEdgeProperty(EdgeId e, const std::string& key,
                         PropertyValue value);

  /// Removes an edge: unlinks it from both adjacency lists and marks it
  /// dead. The id is never reused; the record and properties remain
  /// readable (maintenance code subtracts the paths a dead edge carried).
  /// Fails with OutOfRange for an unknown id, FailedPrecondition when the
  /// edge was already removed.
  Status RemoveEdge(EdgeId e);

  /// Removes a vertex with no live incident edges (callers remove or
  /// re-route edges first). Fails with FailedPrecondition when live
  /// edges still touch it or it was already removed.
  Status RemoveVertex(VertexId v);
  /// @}

  /// \name Topology accessors
  /// @{

  /// Id-space bounds: include removed (dead) elements so id-indexed
  /// loops stay valid. Guard with `IsVertexLive`/`IsEdgeLive` when a
  /// graph may have seen removals; use the `NumLive*` pair for counts.
  size_t NumVertices() const { return vertex_types_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Live element counts (id-space size minus tombstones).
  size_t NumLiveVertices() const {
    return vertex_types_.size() - num_removed_vertices_;
  }
  size_t NumLiveEdges() const { return edges_.size() - num_removed_edges_; }

  bool IsVertexLive(VertexId v) const {
    return v < vertex_live_.size() && vertex_live_[v];
  }
  bool IsEdgeLive(EdgeId e) const {
    return e < edge_live_.size() && edge_live_[e];
  }

  /// True when any element was ever removed (cheap "can dead ids exist"
  /// check for scan paths that want to skip liveness tests entirely).
  bool has_removals() const {
    return num_removed_vertices_ + num_removed_edges_ != 0;
  }

  /// Total edges/vertices ever removed (monotonic; maintainers use them
  /// to detect removals applied behind their back).
  size_t num_removed_edges() const { return num_removed_edges_; }
  size_t num_removed_vertices() const { return num_removed_vertices_; }

  VertexTypeId VertexType(VertexId v) const { return vertex_types_[v]; }
  const std::string& VertexTypeName(VertexId v) const {
    return schema_.vertex_type_name(vertex_types_[v]);
  }

  const EdgeRecord& Edge(EdgeId e) const { return edges_[e]; }
  const std::string& EdgeTypeName(EdgeId e) const {
    return schema_.edge_type(edges_[e].type).name;
  }

  const std::vector<EdgeId>& OutEdges(VertexId v) const {
    return out_edges_[v];
  }
  const std::vector<EdgeId>& InEdges(VertexId v) const { return in_edges_[v]; }

  size_t OutDegree(VertexId v) const { return out_edges_[v].size(); }
  size_t InDegree(VertexId v) const { return in_edges_[v].size(); }

  /// Number of live vertices of the given type (O(1), maintained on
  /// insert and removal).
  size_t NumVerticesOfType(VertexTypeId type) const {
    return type < vertex_type_counts_.size() ? vertex_type_counts_[type] : 0;
  }

  /// Number of live edges of the given type (O(1), maintained on insert
  /// and removal).
  size_t NumEdgesOfType(EdgeTypeId type) const {
    return type < edge_type_counts_.size() ? edge_type_counts_[type] : 0;
  }

  /// All live vertex ids of a type (O(|V|) scan).
  std::vector<VertexId> VerticesOfType(VertexTypeId type) const;
  /// @}

  /// \name Properties
  /// @{
  const PropertyMap& VertexProperties(VertexId v) const {
    return vertex_props_[v];
  }
  const PropertyMap& EdgeProperties(EdgeId e) const { return edge_props_[e]; }

  PropertyValue VertexProperty(VertexId v, const std::string& key) const {
    return vertex_props_[v].GetOrNull(key);
  }
  PropertyValue EdgeProperty(EdgeId e, const std::string& key) const {
    return edge_props_[e].GetOrNull(key);
  }
  /// @}

  /// True if there is at least one edge source->target (any type).
  bool HasEdgeBetween(VertexId source, VertexId target) const;

  /// Approximate heap footprint in bytes (topology only; used by the view
  /// selector's space budget accounting).
  size_t EstimateSizeBytes() const;

 private:
  GraphSchema schema_;
  std::vector<VertexTypeId> vertex_types_;
  std::vector<PropertyMap> vertex_props_;
  std::vector<EdgeRecord> edges_;
  std::vector<PropertyMap> edge_props_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<size_t> vertex_type_counts_;
  std::vector<size_t> edge_type_counts_;
  /// Tombstone bitmaps, parallel to the id spaces.
  std::vector<bool> vertex_live_;
  std::vector<bool> edge_live_;
  size_t num_removed_vertices_ = 0;
  size_t num_removed_edges_ = 0;
};

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_PROPERTY_GRAPH_H_
