/// \file stats.h
/// \brief Graph data properties maintained for view size estimation
/// (§V-A "Graph data properties") and degree-distribution reporting
/// (Fig. 8).
///
/// Kaskade keeps, per vertex type: the vertex cardinality and a coarse
/// out-degree distribution summary (50th/90th/95th/100th percentile).
/// These are the only statistics the size estimators of §V-A consume.

#ifndef KASKADE_GRAPH_STATS_H_
#define KASKADE_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace kaskade::graph {

/// \brief Out-degree summary for one vertex type.
struct TypeDegreeSummary {
  std::string type_name;
  size_t vertex_count = 0;
  /// Out-degree percentiles; `Percentile(alpha)` interpolates among these
  /// exactly (the full sorted degree list is retained only while building).
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p100 = 0;

  /// Returns the out-degree percentile for alpha in (0, 100].
  /// Exact for 50/90/95/100; piecewise-linear in between.
  double Percentile(double alpha) const;
};

/// \brief Per-type degree statistics for a graph.
///
/// Built once after loading (and after updates, in the paper's design); a
/// pure function of the graph so there is no staleness logic here.
class GraphStats {
 public:
  /// Computes statistics for all vertex types of `graph`.
  static GraphStats Compute(const PropertyGraph& graph);

  /// Summary for a vertex type id; types with zero vertices report zeros.
  const TypeDegreeSummary& ForType(VertexTypeId type) const {
    return per_type_[type];
  }

  const std::vector<TypeDegreeSummary>& per_type() const { return per_type_; }

  /// Whole-graph (type-blind) out-degree summary.
  const TypeDegreeSummary& overall() const { return overall_; }

  size_t num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return num_edges_; }

 private:
  std::vector<TypeDegreeSummary> per_type_;
  TypeDegreeSummary overall_;
  size_t num_vertices_ = 0;
  size_t num_edges_ = 0;
};

/// \brief One point of a degree-distribution CCDF: `count` vertices have
/// degree > `degree`.
struct CcdfPoint {
  size_t degree;
  size_t count;
};

/// \brief Degree-distribution report used by the Fig. 8 bench: CCDF points
/// plus a least-squares power-law exponent fit on the log-log CCDF.
struct DegreeDistribution {
  std::vector<CcdfPoint> ccdf;
  /// Fitted slope of log(ccdf) vs log(degree); for a power-law degree
  /// distribution with exponent gamma this is approximately -(gamma - 1).
  double powerlaw_slope = 0;
  /// Coefficient of determination of the linear fit (goodness of fit);
  /// close to 1 means the distribution is well modeled by a power law.
  double r_squared = 0;
};

/// Computes the out-degree CCDF (all vertices, type-blind) and fits a
/// power law. Degree-0 vertices participate in counts but log-log fitting
/// starts at degree 1.
DegreeDistribution ComputeOutDegreeDistribution(const PropertyGraph& graph);

}  // namespace kaskade::graph

#endif  // KASKADE_GRAPH_STATS_H_
