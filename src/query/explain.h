/// \file explain.h
/// \brief Human-readable plan explanations (EXPLAIN) for hybrid queries.
///
/// Renders the evaluation strategy the executor will follow — seed scan,
/// expansion steps, relational layers — annotated with the cost model's
/// estimates, so users can see *why* the rewriter preferred a plan
/// (mirrors the role of Neo4j's EXPLAIN in the paper's workflow).

#ifndef KASKADE_QUERY_EXPLAIN_H_
#define KASKADE_QUERY_EXPLAIN_H_

#include <string>

#include "graph/property_graph.h"
#include "graph/stats.h"
#include "query/ast.h"
#include "query/cost.h"

namespace kaskade::query {

/// Renders a multi-line plan for `query` against `graph`, e.g.:
///
/// ```
/// SELECT [2 items, GROUP BY A.pipelineName]          ~1.1x input
///   MATCH
///     seed (q_j1:Job)                                 2,000 vertices
///     expand -[:WRITES_TO]-> (q_f1:File)              x2.0
///     expand -[*0..8]-> (q_f2:File)                   8 graph sweeps
///     expand -[:IS_READ_BY]-> (q_j2:Job)              x1.0
///   estimated cost: 3.9e+08
/// ```
std::string ExplainQuery(const Query& query, const graph::PropertyGraph& graph,
                         const graph::GraphStats& stats,
                         const CostModelOptions& options = {});

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_EXPLAIN_H_
