/// \file match_common.h
/// \brief Internal MATCH machinery shared by the per-query executor
/// (`query/executor.cc`) and the fused batch runner
/// (`query/fused_runner.cc`): pattern resolution, plan ordering, the
/// per-candidate acceptance check, the allocation-free distinct-row
/// sink, and the CSR traversal primitives (typed-slice gathers,
/// variable-length BFS, filter-edge probes) with their epoch-stamped
/// visited arrays.
///
/// Everything here is deterministic in a way both consumers rely on:
/// `PlanMatchOrder` depends only on the pattern structure and graph
/// statistics (never on predicate constants), gathers enumerate
/// candidates in first-occurrence order of the typed CSR slice, and
/// `RowSet` preserves insertion order — so a fused group run and a solo
/// run explore candidates in the same order and emit rows in the same
/// order.
///
/// This header is internal to `src/query/`; it is not part of the
/// engine-facing API.

#ifndef KASKADE_QUERY_MATCH_COMMON_H_
#define KASKADE_QUERY_MATCH_COMMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr.h"
#include "graph/property_graph.h"
#include "query/ast.h"
#include "query/table.h"

namespace kaskade::query::internal {

/// \brief Cooperative deadline / sibling-cancellation guard shared by
/// every MATCH backend (legacy backtracker, solo CSR runner, parallel
/// CSR workers, fused group runner).
///
/// Reading the clock per expansion would dominate the traversal inner
/// loops, so the guard is *epoch-counted*: `Charge(work)` accumulates
/// traversal progress and only tests the clock (and the shared cancel
/// flag) once at least `kCheckInterval` units have accrued since the
/// last test. A parallel worker whose deadline fires broadcasts through
/// the shared flag so every sibling stops within one check interval.
///
/// The guard never alters enumeration order — it only decides *when* to
/// unwind — so a run that finishes before its deadline is byte-identical
/// to a run with no deadline at all.
class CancelGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// Work units between clock tests. Expansion counting charges one
  /// unit per candidate, so this bounds both the clock-read overhead
  /// (<1% of traversal work) and the cancellation latency.
  static constexpr uint64_t kCheckInterval = 256;

  CancelGuard() = default;
  /// `deadline` of time_point{} means "no deadline"; `cancel` may be
  /// null (sequential execution) or shared between sibling workers.
  CancelGuard(Clock::time_point deadline, std::atomic<bool>* cancel)
      : deadline_(deadline),
        has_deadline_(deadline != Clock::time_point{}),
        cancel_(cancel) {}

  bool active() const { return has_deadline_ || cancel_ != nullptr; }

  /// Charges `work` traversal units; tests the stop conditions once per
  /// `kCheckInterval` accrued units. Returns true when the caller must
  /// unwind.
  bool Charge(uint64_t work) {
    if (stopped_) return true;
    if (!active()) return false;
    pending_ += work;
    if (pending_ < kCheckInterval) return false;
    pending_ = 0;
    return CheckNow();
  }

  /// Unconditional stop-condition test (coarse boundaries: query entry,
  /// post-BFS). Cheap when inactive.
  bool CheckNow() {
    if (stopped_) return true;
    if (!active()) return false;
    ++checks_;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      stopped_ = true;
      cancelled_ = true;
      return true;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      stopped_ = true;
      expired_ = true;
      // Broadcast so sibling workers stop promptly too.
      if (cancel_ != nullptr) cancel_->store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool stopped() const { return stopped_; }
  /// This guard's own deadline fired.
  bool expired() const { return expired_; }
  /// Stopped because a sibling raised the shared flag, not because this
  /// guard's deadline fired — the sibling carries the real error.
  bool cancelled_by_peer() const { return cancelled_ && !expired_; }
  /// Number of actual clock/flag tests performed (telemetry).
  uint64_t checks() const { return checks_; }

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool>* cancel_ = nullptr;
  uint64_t pending_ = 0;
  uint64_t checks_ = 0;
  bool stopped_ = false;
  bool expired_ = false;
  bool cancelled_ = false;
};

inline Status DeadlineExceededError() {
  return Status::DeadlineExceeded("query deadline exceeded");
}

/// Sentinel a parallel worker returns when it stopped because a sibling
/// raised the shared abort flag. The parallel driver replaces it with
/// the originating sibling's real error; it must never escape to a
/// caller.
inline Status CancelledBySiblingError() {
  return Status::Internal("cancelled by sibling worker");
}

inline bool IsCancelledBySibling(const Status& st) {
  return st.code() == StatusCode::kInternal &&
         st.message() == "cancelled by sibling worker";
}

/// Resolved pattern: names mapped to dense slots, types to ids.
struct ResolvedPattern {
  struct Node {
    std::string name;
    graph::VertexTypeId type = graph::kInvalidTypeId;  // kInvalidTypeId = any
    bool has_type_constraint = false;
  };
  struct Edge {
    int from = -1;
    int to = -1;
    graph::EdgeTypeId type = graph::kInvalidTypeId;  // kInvalidTypeId = any
    bool variable_length = false;
    int min_hops = 1;
    int max_hops = 1;
    /// Expansion across this edge needs no per-candidate NodeAccepts:
    /// the free endpoint carries no WHERE conditions and its type
    /// constraint (if any) is already implied — by the edge type's
    /// schema (domain, range) declaration for fixed typed edges, which
    /// `AddEdge` validates on every insert. Forward = `to` free,
    /// backward = `from` free. Used by the CSR backend's hot loop.
    bool trivial_forward = false;
    bool trivial_backward = false;
  };
  std::vector<Node> nodes;
  std::vector<Edge> edges;
  /// Conditions indexed by the node slot they constrain.
  std::vector<std::vector<Condition>> node_conditions;

  int SlotOf(const std::string& name) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// One step of the evaluation plan.
struct Step {
  enum Kind { kSeed, kEdge } kind;
  int node_slot;
  int edge_index;
};

/// Everything a backend needs to evaluate one MATCH: the resolved
/// pattern, the step plan, and the projection.
struct ResolvedMatch {
  ResolvedPattern pattern;
  std::vector<Step> plan;
  std::vector<int> return_slots;
  std::vector<Column> columns;
};

Status ResolvePattern(const graph::PropertyGraph& graph,
                      const MatchQuery& match, ResolvedPattern* pattern);

/// Chooses an evaluation order: seed at the node with the smallest
/// candidate count, then repeatedly take an edge with a bound endpoint
/// (connected expansion); falls back to new seeds for disconnected
/// components. Cycle-closing edges come last, as filters. Depends only
/// on the pattern structure and the graph's type statistics — never on
/// predicate constants — so same-shape queries share one plan.
std::vector<Step> PlanMatchOrder(const graph::PropertyGraph& graph,
                                 const ResolvedPattern& pattern);

Result<ResolvedMatch> ResolveMatch(const graph::PropertyGraph& graph,
                                   const MatchQuery& match);

/// Type constraint + WHERE conditions for binding `v` to `slot`.
bool NodeAccepts(const graph::PropertyGraph& graph,
                 const ResolvedPattern& pattern, size_t slot,
                 graph::VertexId v);

/// \brief Distinct-row sink: flat integer row storage plus an
/// open-addressed index set keyed by row contents. No string keys, no
/// per-row allocation (amortized). Rows are kept in insertion order.
class RowSet {
 public:
  explicit RowSet(size_t width) : width_(width == 0 ? 1 : width) {}

  size_t size() const { return num_rows_; }
  const graph::VertexId* row(size_t i) const {
    return data_.data() + i * width_;
  }

  /// Inserts a row of `width` vertex ids; returns true when it is new.
  bool Insert(const graph::VertexId* row) {
    if ((num_rows_ + 1) * 10 >= slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    size_t i = HashRow(row) & mask;
    while (slots_[i] != 0) {
      if (std::memcmp(this->row(slots_[i] - 1), row,
                      width_ * sizeof(graph::VertexId)) == 0) {
        return false;
      }
      i = (i + 1) & mask;
    }
    data_.insert(data_.end(), row, row + width_);
    ++num_rows_;
    slots_[i] = num_rows_;  // row index + 1; 0 marks an empty slot
    return true;
  }

 private:
  uint64_t HashRow(const graph::VertexId* row) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < width_; ++i) {
      uint64_t x = row[i];
      x *= 0x9e3779b97f4a7c15ULL;
      x ^= x >> 29;
      h = (h ^ x) * 0x100000001b3ULL;
    }
    return h ^ (h >> 32);
  }

  void Grow() {
    const size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<uint64_t> bigger(capacity, 0);
    const size_t mask = capacity - 1;
    for (size_t r = 0; r < num_rows_; ++r) {
      size_t i = HashRow(row(r)) & mask;
      while (bigger[i] != 0) i = (i + 1) & mask;
      bigger[i] = r + 1;
    }
    slots_ = std::move(bigger);
  }

  size_t width_;
  std::vector<graph::VertexId> data_;  ///< Distinct rows, flat, in order.
  std::vector<uint64_t> slots_;        ///< Open-addressed row-index set.
  size_t num_rows_ = 0;
};

/// Per-plan-step reusable buffers: gathered candidates survive across
/// the recursion into deeper steps, so they cannot be shared between
/// steps.
struct StepScratch {
  std::vector<graph::VertexId> candidates;
  std::vector<graph::VertexId> cur;
  std::vector<graph::VertexId> next;
};

/// \brief CSR traversal primitives with epoch-stamped visited arrays:
/// distinct-neighbor gathers, variable-length frontier BFS, and
/// filter-edge probes. Owns the `mark_`/`result_mark_` arrays so inner
/// loops allocate nothing after warmup. Not thread-safe; one instance
/// per runner.
class CsrTraversal {
 public:
  explicit CsrTraversal(const graph::CsrGraph& csr) : csr_(csr) {
    mark_.assign(csr.NumVertices(), 0);
    result_mark_.assign(csr.NumVertices(), 0);
  }

  /// Installs a cancellation guard: the variable-length BFS loops charge
  /// traversal work against it and bail out early when it fires. Results
  /// are then partial — the caller must test `guard->stopped()` after
  /// any BFS call before using them. Null disables the checks.
  void set_guard(CancelGuard* guard) { guard_ = guard; }

  /// Distinct neighbors of `anchor` over edges of `type`, into `out`
  /// (first-occurrence order of the typed CSR slice).
  void GatherDistinctNeighbors(graph::VertexId anchor, graph::EdgeTypeId type,
                               bool forward, std::vector<graph::VertexId>* out);

  /// Variable-length targets as a frontier BFS over typed CSR slices:
  /// vertices at some depth in [min_hops, max_hops] from `start`, into
  /// `s->candidates`. Per-level dedup on `mark_`, whole-call result
  /// dedup on `result_mark_` — same (vertex, depth) semantics as the
  /// legacy evaluator.
  void VarLengthTargets(graph::VertexId start, graph::EdgeTypeId type,
                        int min_hops, int max_hops, bool backward,
                        StepScratch* s);

  /// True if some path start->...->end with length in [min,max] exists;
  /// stops the BFS the moment `end` enters the hop window.
  bool VarLengthConnected(graph::VertexId start, graph::VertexId end,
                          graph::EdgeTypeId type, int min_hops, int max_hops,
                          StepScratch* s);

  /// Fixed filter edge: any from->to edge of `type`? Binary-searches
  /// the smaller of the two typed slices (typed slices are sorted by
  /// neighbor id). With a type wildcard the slices are only sorted per
  /// type group, so fall back to a linear scan.
  bool HasFixedEdge(graph::VertexId from, graph::VertexId to,
                    graph::EdgeTypeId type) const;

 private:
  /// Fresh epoch for `mark_` (per-gather / per-BFS-level dedup). The
  /// array is only consulted while one gather runs, and gathers finish
  /// before the recursion descends, so one array serves every step.
  uint32_t NextMark() {
    if (++mark_epoch_ == 0) {
      std::fill(mark_.begin(), mark_.end(), 0u);
      mark_epoch_ = 1;
    }
    return mark_epoch_;
  }

  /// Fresh epoch for `result_mark_` (whole-BFS result dedup; lives
  /// across the per-level epochs of one variable-length expansion).
  uint32_t NextResultMark() {
    if (++result_epoch_ == 0) {
      std::fill(result_mark_.begin(), result_mark_.end(), 0u);
      result_epoch_ = 1;
    }
    return result_epoch_;
  }

  const graph::CsrGraph& csr_;
  CancelGuard* guard_ = nullptr;
  std::vector<uint32_t> mark_;
  uint32_t mark_epoch_ = 0;
  std::vector<uint32_t> result_mark_;
  uint32_t result_epoch_ = 0;
};

/// The staleness tripwire both CSR backends raise when a snapshot does
/// not match its property graph (generation keying at the engine layer
/// is the real guarantee; this catches misuse).
inline bool CsrSnapshotIsStale(const graph::PropertyGraph& graph,
                               const graph::CsrGraph& csr) {
  return csr.NumVertices() != graph.NumVertices() ||
         csr.NumEdges() != graph.NumLiveEdges() ||
         csr.edge_id_space() != graph.NumEdges();
}

inline Status StaleSnapshotError() {
  return Status::Internal(
      "CSR snapshot is stale relative to its property graph");
}

}  // namespace kaskade::query::internal

#endif  // KASKADE_QUERY_MATCH_COMMON_H_
