#include "query/table.h"

#include <algorithm>

namespace kaskade::query {

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns_[i].name;
  }
  out += "\n";
  for (size_t r = 0; r < rows_.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows_[r][c].ToString();
    }
    out += "\n";
  }
  if (rows_.size() > max_rows) {
    out += "... (" + std::to_string(rows_.size() - max_rows) + " more rows)\n";
  }
  return out;
}

std::vector<Table::Row> Table::SortedRows() const {
  std::vector<Row> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  });
  return sorted;
}

}  // namespace kaskade::query
