#include "query/cost.h"

#include <algorithm>
#include <cmath>

namespace kaskade::query {

namespace {

constexpr double kCostCap = 1e30;

/// Expansion factor for one hop out of a node of type `type` (any edge
/// type): its alpha-percentile out-degree, floored by `min_expansion`.
double ExpansionFactor(const graph::GraphStats& stats,
                       graph::VertexTypeId type,
                       const CostModelOptions& options) {
  const graph::TypeDegreeSummary& summary =
      type == graph::kInvalidTypeId ? stats.overall() : stats.ForType(type);
  return std::max(summary.Percentile(options.degree_alpha),
                  options.min_expansion);
}

}  // namespace

double MatchCostOnCounts(const MatchQuery& match, double seeds,
                         double num_vertices, double num_edges,
                         const std::function<double(const std::string&)>&
                             fixed_expansion) {
  // Per-source frontier model with two regimes:
  //  - fixed edges expand by the source type's degree statistic and are
  //    capped by a full edge sweep (set semantics saturates);
  //  - variable-length edges are charged `max_hops` graph sweeps
  //    (n + m each). The paper's workload anchors traversals at a full
  //    vertex-type scan, so in aggregate each BFS level is bounded by —
  //    and at saturation costs — one pass over the adjacency structure.
  //    Charging the bound keeps the model sensitive to exactly the two
  //    levers Kaskade exploits: hop counts (halved by connectors) and
  //    graph size (shrunk by summarizers). Degree-based expansion
  //    estimates for deep paths proved unable to order plans reliably
  //    (they model trees, not visited-set BFS).
  double per_source = 0;
  double frontier = 1;
  double n = std::max(num_vertices, 1.0);
  double m = std::max(num_edges, 1.0);
  for (const EdgePattern& edge : match.edges) {
    if (edge.variable_length) {
      per_source = std::min(per_source + edge.max_hops * (n + m), kCostCap);
      frontier = n;  // saturated
    } else {
      double d = fixed_expansion(edge.from);
      per_source = std::min(per_source + std::min(frontier * d, m), kCostCap);
      frontier = std::min(frontier * d, n);
    }
  }
  return std::min(seeds + seeds * per_source, kCostCap);
}

double EstimateEvalCost(const Query& query, const graph::PropertyGraph& graph,
                        const graph::GraphStats& stats,
                        const CostModelOptions& options) {
  if (query.is_select()) {
    const SelectQuery& select = query.select();
    double inner = EstimateEvalCost(*select.from, graph, stats, options);
    // Filters, grouping and aggregation are linear passes over the inner
    // result, which is bounded by the inner cost.
    return std::min(inner * 1.1, kCostCap);
  }

  const MatchQuery& match = query.match();
  double seeds = 1;
  if (!match.nodes.empty()) {
    const NodePattern& seed = match.nodes.front();
    graph::VertexTypeId type = seed.type.empty()
                                   ? graph::kInvalidTypeId
                                   : graph.schema().FindVertexType(seed.type);
    seeds = type == graph::kInvalidTypeId
                ? static_cast<double>(graph.NumLiveVertices())
                : static_cast<double>(graph.NumVerticesOfType(type));
    seeds = std::max(seeds, 1.0);
  }
  auto fixed_expansion = [&](const std::string& from_node) {
    const NodePattern* from = match.FindNode(from_node);
    graph::VertexTypeId from_type =
        (from != nullptr && !from->type.empty())
            ? graph.schema().FindVertexType(from->type)
            : graph::kInvalidTypeId;
    return ExpansionFactor(stats, from_type, options);
  };
  return MatchCostOnCounts(match, seeds,
                           static_cast<double>(graph.NumLiveVertices()),
                           static_cast<double>(graph.NumLiveEdges()),
                           fixed_expansion);
}

}  // namespace kaskade::query
