#include "query/fused_runner.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "query/match_common.h"

namespace kaskade::query {

using graph::CsrGraph;
using graph::EdgeSpan;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;

using internal::CancelGuard;
using internal::CsrTraversal;
using internal::ResolvedMatch;
using internal::ResolvedPattern;
using internal::ResolveMatch;
using internal::RowSet;
using internal::Step;
using internal::StepScratch;

namespace {

/// One WHERE conjunct of the group with its constant lifted into a
/// per-member binding vector: the structure (lhs property, operator) is
/// shared by every member — that is what the plan shape guarantees —
/// and `rhs[m]` is member m's constant.
struct FusedCondition {
  std::string property;
  CompareOp op = CompareOp::kEq;
  std::vector<PropertyValue> rhs;
};

/// \brief The shared-traversal backtracker. Mirrors `CsrMatchRunner`
/// (executor.cc) step for step — same plan, same candidate enumeration
/// order, same emission points — but carries a per-member alive bitmask
/// instead of evaluating one query's predicates, and splits rows into
/// per-member row sets at emit time. Byte-identity with the solo
/// sequential run follows from that mirroring; keep the two in lockstep
/// when changing either.
class FusedMatchRunner {
 public:
  FusedMatchRunner(const PropertyGraph& graph, const CsrGraph& csr,
                   const ResolvedMatch& rm,
                   std::vector<std::vector<FusedCondition>> slot_conditions,
                   size_t num_members, size_t max_rows,
                   CancelGuard::Clock::time_point deadline)
      : graph_(graph),
        csr_(csr),
        rm_(rm),
        slot_conditions_(std::move(slot_conditions)),
        num_members_(num_members),
        words_((num_members + 63) / 64),
        max_rows_(max_rows),
        guard_(deadline, /*cancel=*/nullptr),
        traversal_(csr) {
    traversal_.set_guard(&guard_);
    binding_.assign(rm.pattern.nodes.size(), graph::kInvalidId);
    scratch_.resize(rm.plan.size());
    row_buf_.assign(std::max<size_t>(1, rm.return_slots.size()), 0);
    masks_.assign(rm.plan.size(), std::vector<uint64_t>(words_, 0));
    root_mask_.assign(words_, 0);
    for (size_t m = 0; m < num_members; ++m) {
      root_mask_[m / 64] |= uint64_t(1) << (m % 64);
    }
    failed_.assign(words_, 0);
    member_errors_.assign(num_members, Status::OK());
    member_rows_.reserve(num_members);
    for (size_t m = 0; m < num_members; ++m) {
      member_rows_.emplace_back(rm.return_slots.size());
    }
  }

  void Run() { Backtrack(0, root_mask_.data()); }

  /// One top-level seed candidate (the first plan step is always an
  /// unbound seed): mirrors one iteration of `Run()`'s seed loop, for
  /// the scatter-gather driver that partitions the candidates by shard.
  void RunSeed(VertexId v) {
    const size_t slot = static_cast<size_t>(rm_.plan[0].node_slot);
    uint64_t* narrowed = masks_[0].data();
    ++expansions_;
    if (guard_.Charge(1)) return;
    if (!FusedAccept(slot, v, root_mask_.data(), narrowed)) return;
    binding_[slot] = v;
    Backtrack(1, narrowed);
    binding_[slot] = graph::kInvalidId;
  }

  bool all_members_failed() const { return AllFailed(); }

  const RowSet& rows_of(size_t member) const { return member_rows_[member]; }
  const Status& error_of(size_t member) const {
    return member_errors_[member];
  }
  uint64_t expansions() const { return expansions_; }
  uint64_t deadline_checks() const { return guard_.checks(); }
  /// The group's deadline fired and the shared walk stopped early: every
  /// member without its own error holds a *partial* row set and must be
  /// failed by the caller, never materialized.
  bool deadline_expired() const { return guard_.expired(); }

 private:
  bool AnyAlive(const uint64_t* mask) const {
    uint64_t any = 0;
    for (size_t w = 0; w < words_; ++w) any |= mask[w] & ~failed_[w];
    return any != 0;
  }

  bool AllFailed() const {
    size_t failed = 0;
    for (size_t w = 0; w < words_; ++w) failed += std::popcount(failed_[w]);
    return failed == num_members_;
  }

  void FailMember(size_t m, Status status) {
    member_errors_[m] = std::move(status);
    failed_[m / 64] |= uint64_t(1) << (m % 64);
  }

  /// Binding `v` to `slot`: the shared type constraint first (clears
  /// everyone at once), then each conjunct fetches the property value
  /// once and compares it against every still-alive member's constant.
  /// Writes the narrowed mask into `out`; returns false (and leaves
  /// `out` unspecified) when no member survives.
  bool FusedAccept(size_t slot, VertexId v, const uint64_t* in,
                   uint64_t* out) {
    const ResolvedPattern::Node& n = rm_.pattern.nodes[slot];
    if (n.has_type_constraint && graph_.VertexType(v) != n.type) return false;
    uint64_t any = 0;
    for (size_t w = 0; w < words_; ++w) {
      out[w] = in[w] & ~failed_[w];
      any |= out[w];
    }
    if (any == 0) return false;
    for (const FusedCondition& cond : slot_conditions_[slot]) {
      PropertyValue value = graph_.VertexProperty(v, cond.property);
      any = 0;
      for (size_t w = 0; w < words_; ++w) {
        uint64_t bits = out[w];
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          if (!EvaluateCompare(cond.op, value, cond.rhs[w * 64 + size_t(b)])) {
            out[w] &= ~(uint64_t(1) << b);
          }
        }
        any |= out[w];
      }
      if (any == 0) return false;
    }
    return true;
  }

  /// Every alive member receives the current binding's row. The row
  /// content is shared (bindings are group-wide); distinctness and the
  /// row limit are per member — a member past `max_rows_` fails with
  /// the same error its solo run would raise at the same insertion, and
  /// its bit leaves the traversal.
  void EmitRows(const uint64_t* mask) {
    const size_t width = rm_.return_slots.size();
    for (size_t k = 0; k < width; ++k) {
      row_buf_[k] = binding_[rm_.return_slots[k]];
    }
    for (size_t w = 0; w < words_; ++w) {
      uint64_t bits = mask[w] & ~failed_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const size_t m = w * 64 + size_t(b);
        if (member_rows_[m].Insert(row_buf_.data()) &&
            member_rows_[m].size() > max_rows_) {
          FailMember(m, Status::ResourceExhausted("MATCH row limit exceeded"));
        }
      }
    }
  }

  void Backtrack(size_t step_index, const uint64_t* mask) {
    if (guard_.stopped()) return;  // prompt unwind of the whole walk
    if (!AnyAlive(mask)) return;
    if (step_index == rm_.plan.size()) {
      EmitRows(mask);
      return;
    }
    const Step& step = rm_.plan[step_index];
    const ResolvedPattern& pattern = rm_.pattern;
    uint64_t* narrowed = masks_[step_index].data();

    if (step.kind == Step::kSeed) {
      size_t slot = static_cast<size_t>(step.node_slot);
      if (binding_[slot] != graph::kInvalidId) {
        Backtrack(step_index + 1, mask);
        return;
      }
      const ResolvedPattern::Node& n = pattern.nodes[slot];
      auto try_seed = [&](VertexId v) {
        ++expansions_;
        if (guard_.Charge(1)) return;
        if (!FusedAccept(slot, v, mask, narrowed)) return;
        binding_[slot] = v;
        Backtrack(step_index + 1, narrowed);
        binding_[slot] = graph::kInvalidId;
      };
      if (n.has_type_constraint) {
        for (VertexId v : graph_.VerticesOfType(n.type)) {
          if (AllFailed() || guard_.stopped()) return;
          try_seed(v);
        }
      } else {
        for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
          if (!graph_.IsVertexLive(v)) continue;
          if (AllFailed() || guard_.stopped()) return;
          try_seed(v);
        }
      }
      return;
    }

    const ResolvedPattern::Edge& edge = pattern.edges[step.edge_index];
    VertexId from = binding_[edge.from];
    VertexId to = binding_[edge.to];
    bool from_bound = from != graph::kInvalidId;
    bool to_bound = to != graph::kInvalidId;
    StepScratch* scratch = &scratch_[step_index];

    if (from_bound && to_bound) {
      // Filter edge (closes a cycle): purely structural, so shared.
      ++expansions_;
      if (guard_.Charge(1)) return;
      bool connected =
          edge.variable_length
              ? traversal_.VarLengthConnected(from, to, edge.type,
                                              edge.min_hops, edge.max_hops,
                                              scratch)
              : traversal_.HasFixedEdge(from, to, edge.type);
      if (guard_.stopped()) return;
      if (connected) Backtrack(step_index + 1, mask);
      return;
    }

    const bool forward = from_bound;  // else expand backward from `to`
    size_t free_slot = forward ? edge.to : edge.from;
    VertexId anchor = forward ? from : to;
    // A trivial endpoint narrows no member (no conditions, type
    // implied): the parent mask flows through untouched.
    const bool trivial = forward ? edge.trivial_forward : edge.trivial_backward;

    if (!edge.variable_length && step_index + 1 == rm_.plan.size()) {
      // Fused final expansion, as in the solo runner: iterate the typed
      // slice directly and emit.
      EdgeSpan span = forward ? csr_.TypedOutEdges(anchor, edge.type)
                              : csr_.TypedInEdges(anchor, edge.type);
      expansions_ += span.size;
      if (guard_.Charge(span.size)) return;
      for (size_t i = 0; i < span.size; ++i) {
        VertexId v = span.vertices[i];
        if (trivial) {
          binding_[free_slot] = v;
          EmitRows(mask);
        } else if (FusedAccept(free_slot, v, mask, narrowed)) {
          binding_[free_slot] = v;
          EmitRows(narrowed);
        }
      }
      binding_[free_slot] = graph::kInvalidId;
      return;
    }

    if (edge.variable_length) {
      traversal_.VarLengthTargets(anchor, edge.type, edge.min_hops,
                                  edge.max_hops, !forward, scratch);
    } else {
      traversal_.GatherDistinctNeighbors(anchor, edge.type, forward,
                                         &scratch->candidates);
    }
    expansions_ += scratch->candidates.size();
    if (guard_.Charge(scratch->candidates.size()) || guard_.stopped()) return;
    for (VertexId v : scratch->candidates) {
      if (trivial) {
        binding_[free_slot] = v;
        Backtrack(step_index + 1, mask);
        binding_[free_slot] = graph::kInvalidId;
      } else if (FusedAccept(free_slot, v, mask, narrowed)) {
        binding_[free_slot] = v;
        Backtrack(step_index + 1, narrowed);
        binding_[free_slot] = graph::kInvalidId;
      }
    }
  }

  const PropertyGraph& graph_;
  const CsrGraph& csr_;
  const ResolvedMatch& rm_;
  const std::vector<std::vector<FusedCondition>> slot_conditions_;
  const size_t num_members_;
  const size_t words_;
  const size_t max_rows_;
  CancelGuard guard_;
  CsrTraversal traversal_;
  std::vector<VertexId> binding_;
  std::vector<StepScratch> scratch_;
  std::vector<VertexId> row_buf_;
  /// Per-plan-step narrowed-mask buffer: the mask a binding at that step
  /// passes to the subtree below it. Reused per candidate; deeper steps
  /// use deeper buffers, so a parent's mask is never clobbered while a
  /// child still reads it.
  std::vector<std::vector<uint64_t>> masks_;
  std::vector<uint64_t> root_mask_;
  std::vector<uint64_t> failed_;
  std::vector<Status> member_errors_;
  std::vector<RowSet> member_rows_;
  uint64_t expansions_ = 0;
};

/// Lifts each member's WHERE constants into the group's shared conjunct
/// structure (taken from member 0's resolved pattern). Conjuncts map to
/// (slot, position) exactly as `ResolvePattern` assigned them — by
/// walking `where` in order — so member m's k-th conjunct on a slot
/// lines up with member 0's. Structure mismatches mean the caller
/// grouped queries that do not share a shape.
Status LiftConstants(const ResolvedMatch& rm,
                     const std::vector<const MatchQuery*>& members,
                     std::vector<std::vector<FusedCondition>>* slot_conditions) {
  const size_t num_slots = rm.pattern.nodes.size();
  slot_conditions->assign(num_slots, {});
  for (size_t s = 0; s < num_slots; ++s) {
    for (const Condition& cond : rm.pattern.node_conditions[s]) {
      FusedCondition fused;
      fused.property = cond.lhs.property;
      fused.op = cond.op;
      fused.rhs.assign(members.size(), PropertyValue());
      (*slot_conditions)[s].push_back(std::move(fused));
    }
  }
  std::vector<size_t> cursor(num_slots);
  for (size_t m = 0; m < members.size(); ++m) {
    std::fill(cursor.begin(), cursor.end(), 0);
    for (const Condition& cond : members[m]->where) {
      int slot = rm.pattern.SlotOf(cond.lhs.base);
      if (slot < 0 || cursor[slot] >= (*slot_conditions)[slot].size()) {
        return Status::Internal(
            "fused group members do not share one plan shape");
      }
      FusedCondition& fused = (*slot_conditions)[slot][cursor[slot]++];
      if (fused.property != cond.lhs.property || fused.op != cond.op) {
        return Status::Internal(
            "fused group members do not share one plan shape");
      }
      fused.rhs[m] = cond.rhs;
    }
    for (size_t s = 0; s < num_slots; ++s) {
      if (cursor[s] != (*slot_conditions)[s].size()) {
        return Status::Internal(
            "fused group members do not share one plan shape");
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<Result<Table>> ExecuteFusedMatch(
    const PropertyGraph& graph, const CsrGraph& csr,
    const std::vector<const MatchQuery*>& members,
    const ExecutorOptions& options, FusedGroupStats* stats) {
  const auto started = std::chrono::steady_clock::now();
  std::vector<Result<Table>> results;
  results.reserve(members.size());
  auto finish_timing = [&] {
    if (stats != nullptr) {
      stats->elapsed_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - started)
                              .count();
    }
  };
  auto fail_all = [&](const Status& status) {
    results.clear();
    for (size_t m = 0; m < members.size(); ++m) results.push_back(status);
    finish_timing();
    return results;
  };

  if (members.empty()) {
    finish_timing();
    return results;
  }
  if (options.deadline != CancelGuard::Clock::time_point{} &&
      started >= options.deadline) {
    // Already past the deadline at entry: every member's solo run would
    // fail the same way, so fail the group without touching the graph.
    if (stats != nullptr) stats->deadline_checks = 1;
    return fail_all(internal::DeadlineExceededError());
  }
  // Group-level failures are shape-determined: every member's solo run
  // would raise the identical error, so filling each slot with it keeps
  // the fused path indistinguishable from the sequential one.
  if (internal::CsrSnapshotIsStale(graph, csr)) {
    return fail_all(internal::StaleSnapshotError());
  }
  Result<ResolvedMatch> rm = ResolveMatch(graph, *members[0]);
  if (!rm.ok()) return fail_all(rm.status());

  std::vector<std::vector<FusedCondition>> slot_conditions;
  Status lifted = LiftConstants(*rm, members, &slot_conditions);
  if (!lifted.ok()) return fail_all(lifted);

  if (options.shards > 1) {
    // Scatter-gather over engine shards, mirroring the solo evaluator's
    // sharded path: the top-level seed candidates are materialized in
    // sequential enumeration order and partitioned by `ShardOfVertex`;
    // each shard runs its own shared walk over its seeds (one fused
    // traversal per shard), recording the row span every seed produced
    // per member; the gather replays each member's spans in original
    // seed order with global first-occurrence dedup, so every member's
    // table is byte-identical to the unsharded fused run — which is
    // itself byte-identical to the member's solo run.
    const size_t num_shards = options.shards;
    const ResolvedPattern::Node& n0 =
        rm->pattern.nodes[static_cast<size_t>(rm->plan[0].node_slot)];
    std::vector<VertexId> seeds;
    if (n0.has_type_constraint) {
      seeds = graph.VerticesOfType(n0.type);
    } else {
      seeds.reserve(graph.NumLiveVertices());
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        if (graph.IsVertexLive(v)) seeds.push_back(v);
      }
    }
    std::vector<std::vector<size_t>> shard_seeds(num_shards);
    for (size_t i = 0; i < seeds.size(); ++i) {
      shard_seeds[graph::ShardOfVertex(seeds[i], num_shards)].push_back(i);
    }

    // Sparse per-(member, seed) spans: most seeds emit nothing for most
    // members, so only size changes are recorded.
    struct MemberSpan {
      uint32_t seed;
      uint32_t shard;
      size_t begin;
      size_t end;
    };
    std::vector<std::vector<MemberSpan>> member_spans(members.size());
    std::vector<std::unique_ptr<FusedMatchRunner>> runners(num_shards);
    std::vector<size_t> prev_size(members.size());
    bool expired = false;
    for (size_t s = 0; s < num_shards && !expired; ++s) {
      runners[s] = std::make_unique<FusedMatchRunner>(
          graph, csr, *rm, slot_conditions, members.size(), options.max_rows,
          options.deadline);
      std::fill(prev_size.begin(), prev_size.end(), 0);
      for (size_t i : shard_seeds[s]) {
        if (runners[s]->all_members_failed()) break;
        runners[s]->RunSeed(seeds[i]);
        for (size_t m = 0; m < members.size(); ++m) {
          const size_t sz = runners[s]->rows_of(m).size();
          if (sz != prev_size[m]) {
            member_spans[m].push_back(MemberSpan{
                static_cast<uint32_t>(i), static_cast<uint32_t>(s),
                prev_size[m], sz});
            prev_size[m] = sz;
          }
        }
        if (runners[s]->deadline_expired()) {
          expired = true;
          break;
        }
      }
    }
    if (stats != nullptr) {
      for (const auto& r : runners) {
        if (r == nullptr) continue;
        stats->expansions += r->expansions();
        stats->deadline_checks += r->deadline_checks();
      }
    }

    const size_t width = rm->return_slots.size();
    for (size_t m = 0; m < members.size(); ++m) {
      // A member's own error (row limit) beats the group deadline,
      // preferred in shard order so the outcome is deterministic.
      Status member_error = Status::OK();
      for (const auto& r : runners) {
        if (r != nullptr && !r->error_of(m).ok()) {
          member_error = r->error_of(m);
          break;
        }
      }
      if (!member_error.ok()) {
        results.push_back(member_error);
        continue;
      }
      if (expired) {
        results.push_back(internal::DeadlineExceededError());
        continue;
      }
      // Each seed lives in exactly one shard, so sorting by seed index
      // recovers the sequential emission order.
      std::sort(member_spans[m].begin(), member_spans[m].end(),
                [](const MemberSpan& a, const MemberSpan& b) {
                  return a.seed < b.seed;
                });
      RowSet merged(width);
      Status merge_status = Status::OK();
      for (const MemberSpan& sp : member_spans[m]) {
        const RowSet& rows = runners[sp.shard]->rows_of(m);
        for (size_t r = sp.begin; r < sp.end; ++r) {
          if (merged.Insert(rows.row(r)) && merged.size() > options.max_rows) {
            merge_status =
                Status::ResourceExhausted("MATCH row limit exceeded");
            break;
          }
        }
        if (!merge_status.ok()) break;
      }
      if (!merge_status.ok()) {
        results.push_back(merge_status);
        continue;
      }
      Table table(std::vector<Column>(rm->columns));
      for (size_t r = 0; r < merged.size(); ++r) {
        const VertexId* row = merged.row(r);
        Table::Row out;
        out.reserve(width);
        for (size_t k = 0; k < width; ++k) {
          out.emplace_back(static_cast<int64_t>(row[k]));
        }
        table.AddRow(std::move(out));
      }
      results.push_back(std::move(table));
    }
    finish_timing();
    return results;
  }

  FusedMatchRunner runner(graph, csr, *rm, std::move(slot_conditions),
                          members.size(), options.max_rows,
                          options.deadline);
  runner.Run();
  if (stats != nullptr) {
    stats->expansions = runner.expansions();
    stats->deadline_checks = runner.deadline_checks();
  }

  const size_t width = rm->return_slots.size();
  for (size_t m = 0; m < members.size(); ++m) {
    if (!runner.error_of(m).ok()) {
      results.push_back(runner.error_of(m));
      continue;
    }
    if (runner.deadline_expired()) {
      // The shared walk stopped early; this member's row set is partial.
      results.push_back(internal::DeadlineExceededError());
      continue;
    }
    Table table(std::vector<Column>(rm->columns));
    const RowSet& rows = runner.rows_of(m);
    for (size_t r = 0; r < rows.size(); ++r) {
      const VertexId* row = rows.row(r);
      Table::Row out;
      out.reserve(width);
      for (size_t k = 0; k < width; ++k) {
        out.emplace_back(static_cast<int64_t>(row[k]));
      }
      table.AddRow(std::move(out));
    }
    results.push_back(std::move(table));
  }
  finish_timing();
  return results;
}

}  // namespace kaskade::query
