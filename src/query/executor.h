/// \file executor.h
/// \brief Evaluates hybrid queries against a `PropertyGraph`.
///
/// This plays the role of Neo4j's execution engine in the paper's stack
/// (Fig. 2): MATCH patterns run as a backtracking join over the adjacency
/// lists, variable-length paths expand with a level-synchronized BFS, and
/// the relational shell evaluates filters, grouping and aggregates over
/// the match rows.
///
/// MATCH projection has *set semantics*: the executor returns distinct
/// rows of the returned variables. This is the semantics under which the
/// paper's raw-vs-connector rewrites return identical results (§VII-C
/// "These rewritings are equivalent and produce the same results").

#ifndef KASKADE_QUERY_EXECUTOR_H_
#define KASKADE_QUERY_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "graph/property_graph.h"
#include "query/ast.h"
#include "query/table.h"

namespace kaskade::query {

/// \brief Executor resource limits.
struct ExecutorOptions {
  /// Abort with ResourceExhausted when a MATCH produces more distinct
  /// rows than this.
  size_t max_rows = 50'000'000;
};

/// \brief Executes parsed or textual queries against one graph.
class QueryExecutor {
 public:
  explicit QueryExecutor(const graph::PropertyGraph* graph,
                         ExecutorOptions options = {})
      : graph_(graph), options_(options) {}

  /// Runs a parsed query.
  Result<Table> Execute(const Query& query);

  /// Parses and runs `text`.
  Result<Table> ExecuteText(const std::string& text);

 private:
  Result<Table> ExecuteMatch(const MatchQuery& match);
  Result<Table> ExecuteSelect(const SelectQuery& select);

  const graph::PropertyGraph* graph_;
  ExecutorOptions options_;
};

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_EXECUTOR_H_
