/// \file executor.h
/// \brief Evaluates hybrid queries against a `PropertyGraph`.
///
/// This plays the role of Neo4j's execution engine in the paper's stack
/// (Fig. 2): MATCH patterns run as a backtracking join over the adjacency
/// lists, variable-length paths expand with a level-synchronized BFS, and
/// the relational shell evaluates filters, grouping and aggregates over
/// the match rows.
///
/// MATCH projection has *set semantics*: the executor returns distinct
/// rows of the returned variables. This is the semantics under which the
/// paper's raw-vs-connector rewrites return identical results (§VII-C
/// "These rewritings are equivalent and produce the same results").
///
/// Two MATCH backends share one resolver and planner:
///
/// - The *legacy* backtracker walks `PropertyGraph`'s per-vertex edge-id
///   vectors with an `EdgeRecord` lookup per edge. It is the semantic
///   oracle the differential tests trust, and the baseline the latency
///   bench measures against.
/// - The *CSR* backtracker (selected by constructing the executor with a
///   `CsrGraph` snapshot) expands over type-partitioned contiguous
///   neighbor slices with allocation-free inner loops: epoch-stamped
///   visited arrays instead of per-call hash sets, reusable per-step
///   candidate buffers, and integer row deduplication in place of string
///   keys. It returns exactly the same row set (row *order* may differ,
///   as set semantics permit). With `ExecutorOptions::parallelism > 1`
///   the CSR backend seed-partitions the top-level backtracking across
///   worker threads; the merged output is byte-identical to the
///   sequential CSR run, which therefore remains the oracle.

#ifndef KASKADE_QUERY_EXECUTOR_H_
#define KASKADE_QUERY_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "graph/csr.h"
#include "graph/property_graph.h"
#include "query/ast.h"
#include "query/table.h"

namespace kaskade::query {

/// \brief Cross-query fusion knobs for the engine's batch path: queries
/// in one `ExecuteBatch` whose plans share a canonical shape (identical
/// MATCH topology, edge types, plan order, and WHERE structure — only
/// predicate constants may differ) are run as one shared CSR traversal
/// by `ExecuteFusedMatch` (query/fused_runner.h) instead of N
/// independent ones. Fused output is byte-identical to per-query
/// sequential execution.
struct FusionOptions {
  /// Master switch; off reverts every batch member to the solo path.
  bool enabled = true;
  /// Shape groups smaller than this run as singletons (sharing one
  /// traversal between fewer members than this is not worth the masked
  /// predicate evaluation). Minimum meaningful value is 2.
  size_t min_group_size = 2;
};

/// \brief Executor resource limits and execution knobs.
struct ExecutorOptions {
  /// Abort with ResourceExhausted when a MATCH produces more distinct
  /// rows than this.
  size_t max_rows = 50'000'000;
  /// Worker threads for the top-level MATCH backtracking (CSR backend
  /// only). 1 = sequential — the differential-test oracle; 0 = hardware
  /// concurrency. Parallel output is identical to sequential output,
  /// including row order.
  size_t parallelism = 1;
  /// Engine shard count (`EngineOptions::shards`). When > 1 the CSR
  /// MATCH backends scatter the top-level seeds across shards by
  /// `graph::ShardOfVertex` — one traversal per shard, workers claiming
  /// shards — and gather the per-seed row spans back in the original
  /// seed order with global first-occurrence dedup, so the merged table
  /// is byte-identical to the unsharded run, row order included. 1 =
  /// today's unsharded paths, byte-identical by construction.
  size_t shards = 1;
  /// Cross-query fusion on the engine's batch path.
  FusionOptions fusion;
  /// Cooperative evaluation deadline. `time_point{}` (the default)
  /// disables it. MATCH backends test the clock roughly once per
  /// `internal::CancelGuard::kCheckInterval` traversal expansions —
  /// including inside variable-length BFS levels — and fail with
  /// `kDeadlineExceeded`; parallel workers and fused-group members
  /// cancel their siblings promptly and never publish a torn table. A
  /// query that finishes in time is byte-identical to one run with no
  /// deadline. The relational SELECT shell is only covered by the
  /// entry check and its MATCH input; its own loops are bounded by the
  /// (already row-capped) match output.
  std::chrono::steady_clock::time_point deadline{};
};

/// \brief Measured timing of one execution, filled in by the executor so
/// callers (the engine's workload tracker) see the evaluation cost, not
/// their own lock-acquisition overhead.
struct ExecutionTiming {
  double elapsed_us = 0;  ///< Wall-clock microseconds of evaluation.
  /// Traversal expansions performed by the CSR MATCH backend: candidate
  /// vertices enumerated at seed and expansion steps plus filter-edge
  /// probes. The unit the fusion telemetry compares — a fused group
  /// pays these once where N solo runs pay them N times. 0 for the
  /// legacy (non-CSR) backend and for SELECT shells.
  uint64_t expansions = 0;
  /// Deadline/cancellation clock tests actually performed (epoch-counted,
  /// so orders of magnitude below `expansions`). 0 when no deadline and
  /// no sibling-cancel flag was installed.
  uint64_t deadline_checks = 0;
};

/// \brief Executes parsed or textual queries against one graph.
class QueryExecutor {
 public:
  explicit QueryExecutor(const graph::PropertyGraph* graph,
                         ExecutorOptions options = {})
      : graph_(graph), options_(options) {}

  /// CSR-backed executor: `csr` must be a topology snapshot of `*graph`
  /// (vertex ids shared). MATCH expansion then runs over the snapshot's
  /// typed slices; schema and property access still go to `graph`.
  QueryExecutor(const graph::PropertyGraph* graph, const graph::CsrGraph* csr,
                ExecutorOptions options = {})
      : graph_(graph), csr_(csr), options_(options) {}

  /// Runs a parsed query. When `timing` is non-null it receives the
  /// measured evaluation wall clock (set on success and on failure).
  Result<Table> Execute(const Query& query, ExecutionTiming* timing = nullptr);

  /// Parses and runs `text`; `timing` covers evaluation only, not the
  /// parse.
  Result<Table> ExecuteText(const std::string& text,
                            ExecutionTiming* timing = nullptr);

 private:
  /// `stats` accumulates expansions + deadline checks (never null).
  Result<Table> ExecuteMatch(const MatchQuery& match, ExecutionTiming* stats);
  Result<Table> ExecuteSelect(const SelectQuery& select,
                              ExecutionTiming* stats);

  const graph::PropertyGraph* graph_;
  const graph::CsrGraph* csr_ = nullptr;
  ExecutorOptions options_;
};

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_EXECUTOR_H_
