/// \file ast.h
/// \brief Abstract syntax for Kaskade's hybrid query language (§III-B).
///
/// The language combines Cypher-style graph pattern matching (`MATCH`
/// with typed nodes, typed edges, and variable-length paths) with
/// relational constructs (`SELECT` / `GROUP BY` / aggregates) layered on
/// top, exactly as in Listings 1 and 4 of the paper:
///
/// ```
/// SELECT A.pipelineName, AVG(T_CPU) FROM (
///   SELECT A, SUM(B.CPU) AS T_CPU FROM (
///     MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
///           (q_f1:File)-[r*0..8]->(q_f2:File)
///           (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
///     RETURN q_j1 as A, q_j2 as B
///   ) GROUP BY A, B
/// ) GROUP BY A.pipelineName
/// ```

#ifndef KASKADE_QUERY_AST_H_
#define KASKADE_QUERY_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "graph/property_value.h"

namespace kaskade::query {

/// \brief A node in a MATCH pattern: `(name:Type)` (type optional).
struct NodePattern {
  std::string name;
  std::string type;  ///< Empty means "any vertex type".
};

/// \brief An edge in a MATCH pattern: `-[:TYPE]->` or `-[r*L..U]->`.
struct EdgePattern {
  std::string from;  ///< Source node name.
  std::string to;    ///< Target node name.
  std::string var;   ///< Optional relationship variable (unused in eval).
  std::string type;  ///< Edge type; empty means "any edge type".
  bool variable_length = false;
  int min_hops = 1;
  int max_hops = 1;
};

/// \brief Reference to a column or a property of a vertex column:
/// `A` or `A.pipelineName`.
struct ColumnRef {
  std::string base;
  std::string property;  ///< Empty for a bare column reference.

  std::string ToString() const {
    return property.empty() ? base : base + "." + property;
  }
  bool operator==(const ColumnRef&) const = default;
};

/// \brief Comparison operator in WHERE predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluates `lhs <op> rhs` under `PropertyValue`'s total order. The one
/// shared comparison kernel — WHERE filters, MATCH node conditions, and
/// the summarizer predicate path all route through here.
inline bool EvaluateCompare(CompareOp op, const graph::PropertyValue& lhs,
                            const graph::PropertyValue& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// \brief One conjunct of a WHERE clause: `<ref> <op> <literal>`.
struct Condition {
  ColumnRef lhs;
  CompareOp op = CompareOp::kEq;
  graph::PropertyValue rhs;
};

/// \brief One item of a RETURN clause: `variable [AS alias]`.
struct ReturnItem {
  std::string variable;
  std::string alias;  ///< Empty means "use the variable name".

  const std::string& OutputName() const {
    return alias.empty() ? variable : alias;
  }
};

/// \brief A Cypher-style pattern-matching query.
struct MatchQuery {
  std::vector<NodePattern> nodes;
  std::vector<EdgePattern> edges;
  std::vector<Condition> where;
  std::vector<ReturnItem> return_items;

  /// Returns the pattern node with the given name, or nullptr.
  const NodePattern* FindNode(const std::string& name) const {
    for (const NodePattern& n : nodes) {
      if (n.name == name) return &n;
    }
    return nullptr;
  }
};

/// \brief Aggregate functions of the relational shell.
enum class AggFunc { kNone, kSum, kAvg, kCount, kMin, kMax };

/// \brief One item of a SELECT list: column ref or aggregate call, with
/// optional alias.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ColumnRef ref;       ///< Argument (ignored when `star`).
  bool star = false;   ///< COUNT(*).
  std::string alias;

  std::string OutputName() const;
};

struct Query;

/// \brief A relational SELECT over a subquery.
struct SelectQuery {
  std::vector<SelectItem> items;
  std::unique_ptr<Query> from;
  std::vector<Condition> where;
  std::vector<ColumnRef> group_by;
};

/// \brief Root query node: either a MATCH or a SELECT.
struct Query {
  std::variant<MatchQuery, SelectQuery> node;

  bool is_match() const { return std::holds_alternative<MatchQuery>(node); }
  bool is_select() const { return std::holds_alternative<SelectQuery>(node); }
  MatchQuery& match() { return std::get<MatchQuery>(node); }
  const MatchQuery& match() const { return std::get<MatchQuery>(node); }
  SelectQuery& select() { return std::get<SelectQuery>(node); }
  const SelectQuery& select() const { return std::get<SelectQuery>(node); }

  /// Deep copy (SelectQuery holds a unique_ptr, so Query is move-only).
  Query Clone() const;

  /// The innermost MATCH of the query (every query bottoms out in one);
  /// nullptr if malformed.
  const MatchQuery* InnermostMatch() const;
  MatchQuery* MutableInnermostMatch();

  /// Renders the query back to (normalized) source text.
  std::string ToString() const;
};

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_AST_H_
