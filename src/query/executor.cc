#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "query/match_common.h"
#include "query/parser.h"

namespace kaskade::query {

using graph::CsrGraph;
using graph::EdgeId;
using graph::EdgeSpan;
using graph::EdgeTypeId;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;
using graph::VertexTypeId;

using internal::CancelGuard;
using internal::CsrTraversal;
using internal::NodeAccepts;
using internal::ResolvedMatch;
using internal::ResolvedPattern;
using internal::ResolveMatch;
using internal::RowSet;
using internal::Step;
using internal::StepScratch;

namespace {

// ---------------------------------------------------------------------------
// Legacy MATCH backend: backtracking over PropertyGraph adjacency lists.
// Kept structurally intact as the semantic oracle (and the bench
// baseline) for the CSR backend below.
// ---------------------------------------------------------------------------

/// \brief Backtracking pattern matcher with set-semantics projection.
class MatchEvaluator {
 public:
  MatchEvaluator(const PropertyGraph& graph, const ExecutorOptions& options)
      : graph_(graph),
        options_(options),
        guard_(options.deadline, /*cancel=*/nullptr) {}

  Result<Table> Run(const MatchQuery& match) {
    KASKADE_ASSIGN_OR_RETURN(rm_, ResolveMatch(graph_, match));
    table_ = Table(std::move(rm_.columns));
    binding_.assign(rm_.pattern.nodes.size(), graph::kInvalidId);
    Status st = Backtrack(0);
    if (!st.ok()) return st;
    return std::move(table_);
  }

  uint64_t deadline_checks() const { return guard_.checks(); }

 private:
  /// Vertices reachable from `start` in exactly d hops for some d in
  /// [min_hops, max_hops], following edges of `type` (reverse when
  /// `backward`). Level-synchronized BFS so all reachable depths are seen
  /// (bipartite graphs reach vertices at several parities).
  std::vector<VertexId> VarLengthTargets(VertexId start, EdgeTypeId type,
                                         int min_hops, int max_hops,
                                         bool backward) {
    std::vector<VertexId> result;
    std::unordered_set<VertexId> result_set;
    if (min_hops == 0) {
      result.push_back(start);
      result_set.insert(start);
    }
    // Per-level frontiers: a vertex may recur at several depths (e.g. at
    // both parities of a bipartite lineage graph), and membership in
    // [min_hops, max_hops] is decided per depth, so dedup is on
    // (vertex, depth) rather than vertex.
    std::vector<std::vector<VertexId>> levels(max_hops + 1);
    levels[0] = {start};
    std::unordered_set<uint64_t> visited_at_level;
    visited_at_level.insert(static_cast<uint64_t>(start) << 32);
    for (int depth = 1; depth <= max_hops; ++depth) {
      std::vector<VertexId>& prev = levels[depth - 1];
      if (prev.empty()) break;
      std::vector<VertexId>& cur = levels[depth];
      for (VertexId v : prev) {
        const std::vector<EdgeId>& incident =
            backward ? graph_.InEdges(v) : graph_.OutEdges(v);
        if (guard_.Charge(incident.size() + 1)) return result;
        for (EdgeId e : incident) {
          const graph::EdgeRecord& rec = graph_.Edge(e);
          if (type != graph::kInvalidTypeId && rec.type != type) continue;
          VertexId next = backward ? rec.source : rec.target;
          uint64_t key = (static_cast<uint64_t>(next) << 32) |
                         static_cast<uint64_t>(depth);
          if (!visited_at_level.insert(key).second) continue;
          cur.push_back(next);
          if (depth >= min_hops && result_set.insert(next).second) {
            result.push_back(next);
          }
        }
      }
    }
    return result;
  }

  /// True if some path start->...->end with length in [min,max] exists.
  /// The BFS stops the moment `end` is reached inside the hop window,
  /// instead of materializing every target and scanning for `end`.
  bool VarLengthConnected(VertexId start, VertexId end, EdgeTypeId type,
                          int min_hops, int max_hops) {
    if (min_hops == 0 && start == end) return true;
    std::vector<VertexId> cur{start};
    std::vector<VertexId> next;
    std::unordered_set<VertexId> level_seen;
    for (int depth = 1; depth <= max_hops && !cur.empty(); ++depth) {
      next.clear();
      level_seen.clear();
      for (VertexId v : cur) {
        if (guard_.Charge(graph_.OutEdges(v).size() + 1)) return false;
        for (EdgeId e : graph_.OutEdges(v)) {
          const graph::EdgeRecord& rec = graph_.Edge(e);
          if (type != graph::kInvalidTypeId && rec.type != type) continue;
          VertexId n = rec.target;
          if (!level_seen.insert(n).second) continue;
          if (depth >= min_hops && n == end) return true;
          next.push_back(n);
        }
      }
      std::swap(cur, next);
    }
    return false;
  }

  Status EmitRow() {
    if (guard_.Charge(1)) return internal::DeadlineExceededError();
    Table::Row row;
    row.reserve(rm_.return_slots.size());
    std::string key;
    for (int slot : rm_.return_slots) {
      VertexId v = binding_[slot];
      row.emplace_back(static_cast<int64_t>(v));
      key += std::to_string(v);
      key += ",";
    }
    if (!distinct_rows_.insert(key).second) return Status::OK();
    if (table_.num_rows() >= options_.max_rows) {
      return Status::ResourceExhausted("MATCH row limit exceeded");
    }
    table_.AddRow(std::move(row));
    return Status::OK();
  }

  Status Backtrack(size_t step_index) {
    if (step_index == rm_.plan.size()) return EmitRow();
    const Step& step = rm_.plan[step_index];
    const ResolvedPattern& pattern = rm_.pattern;
    if (step.kind == Step::kSeed) {
      size_t slot = static_cast<size_t>(step.node_slot);
      if (binding_[slot] != graph::kInvalidId) {
        return Backtrack(step_index + 1);
      }
      const ResolvedPattern::Node& n = pattern.nodes[slot];
      if (n.has_type_constraint) {
        for (VertexId v : graph_.VerticesOfType(n.type)) {
          if (guard_.Charge(1)) return internal::DeadlineExceededError();
          if (!NodeAccepts(graph_, pattern, slot, v)) continue;
          binding_[slot] = v;
          KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
          binding_[slot] = graph::kInvalidId;
        }
      } else {
        for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
          if (!graph_.IsVertexLive(v)) continue;
          if (guard_.Charge(1)) return internal::DeadlineExceededError();
          if (!NodeAccepts(graph_, pattern, slot, v)) continue;
          binding_[slot] = v;
          KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
          binding_[slot] = graph::kInvalidId;
        }
      }
      return Status::OK();
    }

    const ResolvedPattern::Edge& edge = pattern.edges[step.edge_index];
    VertexId from = binding_[edge.from];
    VertexId to = binding_[edge.to];
    bool from_bound = from != graph::kInvalidId;
    bool to_bound = to != graph::kInvalidId;

    if (from_bound && to_bound) {
      // Filter edge (closes a cycle).
      bool connected =
          edge.variable_length
              ? VarLengthConnected(from, to, edge.type, edge.min_hops,
                                   edge.max_hops)
              : [&] {
                  for (EdgeId e : graph_.OutEdges(from)) {
                    const graph::EdgeRecord& rec = graph_.Edge(e);
                    if (rec.target == to &&
                        (edge.type == graph::kInvalidTypeId ||
                         rec.type == edge.type)) {
                      return true;
                    }
                  }
                  return false;
                }();
      if (guard_.stopped()) return internal::DeadlineExceededError();
      if (connected) return Backtrack(step_index + 1);
      return Status::OK();
    }

    const bool forward = from_bound;  // else expand backward from `to`
    size_t free_slot = forward ? edge.to : edge.from;
    VertexId anchor = forward ? from : to;

    if (edge.variable_length) {
      std::vector<VertexId> targets = VarLengthTargets(
          anchor, edge.type, edge.min_hops, edge.max_hops, !forward);
      if (guard_.stopped()) return internal::DeadlineExceededError();
      for (VertexId v : targets) {
        if (!NodeAccepts(graph_, pattern, free_slot, v)) continue;
        binding_[free_slot] = v;
        KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
        binding_[free_slot] = graph::kInvalidId;
      }
      return Status::OK();
    }

    const std::vector<EdgeId>& incident =
        forward ? graph_.OutEdges(anchor) : graph_.InEdges(anchor);
    // Distinct neighbor set: parallel edges must not multiply rows under
    // set semantics, and NodeAccepts can be expensive.
    std::unordered_set<VertexId> tried;
    for (EdgeId e : incident) {
      if (guard_.Charge(1)) return internal::DeadlineExceededError();
      const graph::EdgeRecord& rec = graph_.Edge(e);
      if (edge.type != graph::kInvalidTypeId && rec.type != edge.type) continue;
      VertexId next = forward ? rec.target : rec.source;
      if (!tried.insert(next).second) continue;
      if (!NodeAccepts(graph_, pattern, free_slot, next)) continue;
      binding_[free_slot] = next;
      KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
      binding_[free_slot] = graph::kInvalidId;
    }
    return Status::OK();
  }

  const PropertyGraph& graph_;
  ExecutorOptions options_;
  CancelGuard guard_;
  ResolvedMatch rm_;
  std::vector<VertexId> binding_;
  std::unordered_set<std::string> distinct_rows_;
  Table table_;
};

// ---------------------------------------------------------------------------
// CSR MATCH backend
// ---------------------------------------------------------------------------

/// \brief One backtracking worker over a CSR snapshot: owns the binding,
/// the traversal primitives (epoch-stamped visited arrays), the per-step
/// candidate buffers, and its (partial) distinct-row table. Inner loops
/// allocate nothing after warmup.
class CsrMatchRunner {
 public:
  /// `direct_table`, when set (sequential mode), receives each new
  /// distinct row as it is emitted, so no second pass over the row set
  /// is needed. Parallel workers leave it null — their rows merge into
  /// the final table in block order after the join.
  ///
  /// `deadline` (time_point{} = none) and `abort` feed the runner's
  /// CancelGuard: a parallel worker shares `abort` with its siblings so
  /// the first stop reason (row limit, deadline) cancels the whole run.
  CsrMatchRunner(const PropertyGraph& graph, const CsrGraph& csr,
                 const ResolvedMatch& rm, size_t max_rows,
                 CancelGuard::Clock::time_point deadline,
                 std::atomic<bool>* abort, Table* direct_table = nullptr)
      : graph_(graph),
        csr_(csr),
        rm_(rm),
        max_rows_(max_rows),
        guard_(deadline, abort),
        direct_table_(direct_table),
        traversal_(csr),
        rows_(rm.return_slots.size()) {
    binding_.assign(rm.pattern.nodes.size(), graph::kInvalidId);
    scratch_.resize(rm.plan.size());
    row_buf_.assign(std::max<size_t>(1, rm.return_slots.size()), 0);
    traversal_.set_guard(&guard_);
  }

  /// Runs the plan for top-level seed candidates `seeds[begin, end)`
  /// (the first plan step is always a seed). Emitted rows accumulate in
  /// `rows()` in enumeration order.
  Status RunSeedRange(const std::vector<VertexId>& seeds, size_t begin,
                      size_t end) {
    const size_t slot = static_cast<size_t>(rm_.plan[0].node_slot);
    for (size_t i = begin; i < end; ++i) {
      if (guard_.Charge(1)) return StopStatus();
      VertexId v = seeds[i];
      ++expansions_;
      if (!NodeAccepts(graph_, rm_.pattern, slot, v)) continue;
      binding_[slot] = v;
      Status st = Backtrack(1);
      binding_[slot] = graph::kInvalidId;
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  const RowSet& rows() const { return rows_; }
  /// Candidates enumerated + filter-edge probes (see
  /// `ExecutionTiming::expansions`).
  uint64_t expansions() const { return expansions_; }
  /// Clock/flag tests this runner's guard performed.
  uint64_t deadline_checks() const { return guard_.checks(); }

 private:
  /// Error to surface once the guard fires. A peer-cancelled worker
  /// returns the sibling sentinel, which the parallel driver swaps for
  /// the originating worker's real error.
  Status StopStatus() const {
    return guard_.expired() ? internal::DeadlineExceededError()
                            : internal::CancelledBySiblingError();
  }

  Status EmitRow() {
    if (guard_.Charge(1)) return StopStatus();
    const size_t width = rm_.return_slots.size();
    for (size_t k = 0; k < width; ++k) {
      row_buf_[k] = binding_[rm_.return_slots[k]];
    }
    if (!rows_.Insert(row_buf_.data())) return Status::OK();
    if (rows_.size() > max_rows_) {
      return Status::ResourceExhausted("MATCH row limit exceeded");
    }
    if (direct_table_ != nullptr) {
      Table::Row out;
      out.reserve(width);
      for (size_t k = 0; k < width; ++k) {
        out.emplace_back(static_cast<int64_t>(row_buf_[k]));
      }
      direct_table_->AddRow(std::move(out));
    }
    return Status::OK();
  }

  Status Backtrack(size_t step_index) {
    if (step_index == rm_.plan.size()) return EmitRow();
    const Step& step = rm_.plan[step_index];
    const ResolvedPattern& pattern = rm_.pattern;
    if (step.kind == Step::kSeed) {
      // Secondary seed (disconnected pattern component).
      size_t slot = static_cast<size_t>(step.node_slot);
      if (binding_[slot] != graph::kInvalidId) {
        return Backtrack(step_index + 1);
      }
      const ResolvedPattern::Node& n = pattern.nodes[slot];
      if (n.has_type_constraint) {
        for (VertexId v : graph_.VerticesOfType(n.type)) {
          ++expansions_;
          if (guard_.Charge(1)) return StopStatus();
          if (!NodeAccepts(graph_, pattern, slot, v)) continue;
          binding_[slot] = v;
          KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
          binding_[slot] = graph::kInvalidId;
        }
      } else {
        for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
          if (!graph_.IsVertexLive(v)) continue;
          ++expansions_;
          if (guard_.Charge(1)) return StopStatus();
          if (!NodeAccepts(graph_, pattern, slot, v)) continue;
          binding_[slot] = v;
          KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
          binding_[slot] = graph::kInvalidId;
        }
      }
      return Status::OK();
    }

    const ResolvedPattern::Edge& edge = pattern.edges[step.edge_index];
    VertexId from = binding_[edge.from];
    VertexId to = binding_[edge.to];
    bool from_bound = from != graph::kInvalidId;
    bool to_bound = to != graph::kInvalidId;
    StepScratch* scratch = &scratch_[step_index];

    if (from_bound && to_bound) {
      // Filter edge (closes a cycle).
      ++expansions_;
      if (guard_.Charge(1)) return StopStatus();
      bool connected =
          edge.variable_length
              ? traversal_.VarLengthConnected(from, to, edge.type,
                                              edge.min_hops, edge.max_hops,
                                              scratch)
              : traversal_.HasFixedEdge(from, to, edge.type);
      if (guard_.stopped()) return StopStatus();
      if (connected) return Backtrack(step_index + 1);
      return Status::OK();
    }

    const bool forward = from_bound;  // else expand backward from `to`
    size_t free_slot = forward ? edge.to : edge.from;
    VertexId anchor = forward ? from : to;
    const bool trivial = forward ? edge.trivial_forward : edge.trivial_backward;

    if (!edge.variable_length && step_index + 1 == rm_.plan.size()) {
      // Fused final expansion: the recursion below this step is just
      // EmitRow, and the row set already deduplicates, so duplicate
      // neighbors (parallel edges) need no expansion-level dedup —
      // iterate the typed slice directly, no gather, no buffers.
      // First-occurrence emission order is unchanged.
      EdgeSpan span = forward ? csr_.TypedOutEdges(anchor, edge.type)
                              : csr_.TypedInEdges(anchor, edge.type);
      Status st = Status::OK();
      expansions_ += span.size;
      if (guard_.Charge(span.size)) return StopStatus();
      for (size_t i = 0; i < span.size; ++i) {
        VertexId v = span.vertices[i];
        if (!trivial && !NodeAccepts(graph_, pattern, free_slot, v)) continue;
        binding_[free_slot] = v;
        st = EmitRow();
        if (!st.ok()) break;
      }
      binding_[free_slot] = graph::kInvalidId;
      return st;
    }

    if (edge.variable_length) {
      traversal_.VarLengthTargets(anchor, edge.type, edge.min_hops,
                                  edge.max_hops, !forward, scratch);
    } else {
      // Distinct neighbors: parallel edges must not multiply rows under
      // set semantics, NodeAccepts can be expensive, and the subtree
      // below this step would otherwise be re-explored per duplicate.
      traversal_.GatherDistinctNeighbors(anchor, edge.type, forward,
                                         &scratch->candidates);
    }
    expansions_ += scratch->candidates.size();
    if (guard_.Charge(scratch->candidates.size()) || guard_.stopped()) {
      return StopStatus();
    }
    for (VertexId v : scratch->candidates) {
      if (!trivial && !NodeAccepts(graph_, pattern, free_slot, v)) continue;
      binding_[free_slot] = v;
      KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
      binding_[free_slot] = graph::kInvalidId;
    }
    return Status::OK();
  }

  const PropertyGraph& graph_;
  const CsrGraph& csr_;
  const ResolvedMatch& rm_;
  const size_t max_rows_;
  CancelGuard guard_;
  Table* direct_table_;
  CsrTraversal traversal_;
  RowSet rows_;
  std::vector<VertexId> binding_;
  std::vector<StepScratch> scratch_;
  std::vector<VertexId> row_buf_;
  uint64_t expansions_ = 0;
};

/// \brief CSR MATCH driver: resolves and plans once, then runs the
/// backtracking sequentially or seed-partitioned across worker threads.
///
/// Parallel determinism: the top-level seed candidates are materialized
/// once in the same order the sequential run enumerates them, split
/// into contiguous blocks claimed off an atomic counter, and each
/// block's rows are merged back in block order with global
/// first-occurrence dedup. Workers claim blocks in increasing order, so
/// a worker-local duplicate is always preceded by its first occurrence
/// in an earlier block — the merged table is therefore identical to the
/// sequential table, row order included.
class CsrMatchEvaluator {
 public:
  CsrMatchEvaluator(const PropertyGraph& graph, const CsrGraph& csr,
                    const ExecutorOptions& options)
      : graph_(graph), csr_(csr), options_(options) {}

  Result<Table> Run(const MatchQuery& match, ExecutionTiming* stats) {
    KASKADE_ASSIGN_OR_RETURN(ResolvedMatch rm, ResolveMatch(graph_, match));
    std::vector<VertexId> seeds = TopSeedCandidates(rm);

    size_t workers =
        options_.parallelism == 0
            ? std::max(1u, std::thread::hardware_concurrency())
            : options_.parallelism;
    workers = std::min(workers, std::max<size_t>(1, seeds.size()));

    if (options_.shards > 1) {
      return RunSharded(&rm, seeds, workers, stats);
    }

    if (workers <= 1) {
      Table table(std::move(rm.columns));
      CsrMatchRunner runner(graph_, csr_, rm, options_.max_rows,
                            options_.deadline, /*abort=*/nullptr, &table);
      Status st = runner.RunSeedRange(seeds, 0, seeds.size());
      stats->expansions += runner.expansions();
      stats->deadline_checks += runner.deadline_checks();
      KASKADE_RETURN_IF_ERROR(st);
      return table;
    }
    return RunParallel(&rm, seeds, workers, stats);
  }

 private:
  static constexpr uint32_t kUnclaimed = ~0u;

  /// Candidates for the first plan step (always a seed), in the exact
  /// order a sequential run enumerates them.
  std::vector<VertexId> TopSeedCandidates(const ResolvedMatch& rm) const {
    const ResolvedPattern::Node& n =
        rm.pattern.nodes[static_cast<size_t>(rm.plan[0].node_slot)];
    if (n.has_type_constraint) return graph_.VerticesOfType(n.type);
    std::vector<VertexId> all;
    all.reserve(graph_.NumLiveVertices());
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      if (graph_.IsVertexLive(v)) all.push_back(v);
    }
    return all;
  }

  Result<Table> BuildTable(ResolvedMatch* rm, const RowSet& rows) const {
    Table table(std::move(rm->columns));
    const size_t width = rm->return_slots.size();
    for (size_t r = 0; r < rows.size(); ++r) {
      const VertexId* row = rows.row(r);
      Table::Row out;
      out.reserve(width);
      for (size_t k = 0; k < width; ++k) {
        out.emplace_back(static_cast<int64_t>(row[k]));
      }
      table.AddRow(std::move(out));
    }
    return table;
  }

  /// Scatter-gather over engine shards: seeds are partitioned by
  /// `ShardOfVertex` (relative order preserved), one runner per shard
  /// walks its seeds recording the row span each seed produced, and the
  /// gather replays the spans in the *original* seed order with global
  /// first-occurrence dedup. Byte-identity with the unsharded run: the
  /// first overall emitter of a row is its earliest-emitting seed k; no
  /// earlier seed in k's shard emitted it (they run before k on the same
  /// runner), so k's span contains it, and the seed-order gather meets
  /// it first at k — exactly where the sequential run first emits it.
  /// Workers claim whole shards off an atomic counter (cross-shard
  /// parallelism); `workers == 1` runs the shards inline.
  Result<Table> RunSharded(ResolvedMatch* rm,
                           const std::vector<VertexId>& seeds, size_t workers,
                           ExecutionTiming* stats) const {
    const size_t shards = options_.shards;
    struct SeedSpan {
      uint32_t shard = 0;
      size_t begin_row = 0;
      size_t end_row = 0;
    };
    std::vector<SeedSpan> spans(seeds.size());
    std::vector<std::vector<size_t>> shard_seeds(shards);
    for (size_t i = 0; i < seeds.size(); ++i) {
      const uint32_t s = graph::ShardOfVertex(seeds[i], shards);
      spans[i].shard = s;
      shard_seeds[s].push_back(i);
    }

    std::vector<std::unique_ptr<CsrMatchRunner>> runners(shards);
    std::vector<Status> statuses(shards, Status::OK());
    std::atomic<bool> abort{false};
    auto run_shard = [&](size_t s) {
      runners[s] = std::make_unique<CsrMatchRunner>(
          graph_, csr_, *rm, options_.max_rows, options_.deadline, &abort);
      for (size_t i : shard_seeds[s]) {
        if (abort.load(std::memory_order_relaxed)) {
          statuses[s] = internal::CancelledBySiblingError();
          return;
        }
        spans[i].begin_row = runners[s]->rows().size();
        Status st = runners[s]->RunSeedRange(seeds, i, i + 1);
        spans[i].end_row = runners[s]->rows().size();
        if (!st.ok()) {
          statuses[s] = st;
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };

    const size_t pool_size = std::min(workers, shards);
    if (pool_size <= 1) {
      for (size_t s = 0; s < shards && !abort.load(std::memory_order_relaxed);
           ++s) {
        run_shard(s);
      }
    } else {
      std::atomic<size_t> next_shard{0};
      auto work = [&] {
        while (!abort.load(std::memory_order_relaxed)) {
          size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
          if (s >= shards) break;
          run_shard(s);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(pool_size);
      for (size_t w = 0; w < pool_size; ++w) pool.emplace_back(work);
      for (std::thread& t : pool) t.join();
    }

    for (const auto& runner : runners) {
      if (runner != nullptr) {
        stats->expansions += runner->expansions();
        stats->deadline_checks += runner->deadline_checks();
      }
    }
    // Prefer the first originating error in shard order, exactly as the
    // parallel driver prefers it in worker order: row-limit stays
    // row-limit and deadline stays deadline regardless of which shard
    // noticed first.
    for (const Status& st : statuses) {
      if (!st.ok() && !internal::IsCancelledBySibling(st)) return st;
    }
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }

    // Gather in original seed order with global first-occurrence dedup.
    RowSet merged(rm->return_slots.size());
    for (size_t i = 0; i < seeds.size(); ++i) {
      const SeedSpan& sp = spans[i];
      if (runners[sp.shard] == nullptr) {
        return Status::Internal("unprocessed shard without an error");
      }
      const RowSet& rows = runners[sp.shard]->rows();
      for (size_t r = sp.begin_row; r < sp.end_row; ++r) {
        if (merged.Insert(rows.row(r)) && merged.size() > options_.max_rows) {
          return Status::ResourceExhausted("MATCH row limit exceeded");
        }
      }
    }
    return BuildTable(rm, merged);
  }

  Result<Table> RunParallel(ResolvedMatch* rm,
                            const std::vector<VertexId>& seeds, size_t workers,
                            ExecutionTiming* stats) const {
    // Small blocks for load balance; contiguous so block order equals
    // sequential seed order.
    const size_t block = std::max<size_t>(1, seeds.size() / (workers * 8));
    const size_t num_blocks = (seeds.size() + block - 1) / block;

    struct BlockRange {
      uint32_t worker = kUnclaimed;
      size_t begin_row = 0;
      size_t end_row = 0;
    };
    std::vector<BlockRange> blocks(num_blocks);
    std::vector<std::unique_ptr<CsrMatchRunner>> runners(workers);
    std::vector<Status> statuses(workers, Status::OK());
    std::atomic<size_t> next_block{0};
    std::atomic<bool> abort{false};

    auto work = [&](size_t w) {
      runners[w] = std::make_unique<CsrMatchRunner>(
          graph_, csr_, *rm, options_.max_rows, options_.deadline, &abort);
      while (!abort.load(std::memory_order_relaxed)) {
        size_t b = next_block.fetch_add(1, std::memory_order_relaxed);
        if (b >= num_blocks) break;
        size_t begin = b * block;
        size_t end = std::min(seeds.size(), begin + block);
        size_t begin_row = runners[w]->rows().size();
        Status st = runners[w]->RunSeedRange(seeds, begin, end);
        blocks[b] =
            BlockRange{static_cast<uint32_t>(w), begin_row,
                       runners[w]->rows().size()};
        if (!st.ok()) {
          statuses[w] = st;
          abort.store(true, std::memory_order_relaxed);
          break;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();

    for (const auto& runner : runners) {
      if (runner != nullptr) {
        stats->expansions += runner->expansions();
        stats->deadline_checks += runner->deadline_checks();
      }
    }
    // A worker that stopped because a sibling raised the abort flag
    // carries the sentinel, not the real stop reason — prefer the first
    // originating error in worker order so row-limit stays row-limit and
    // deadline stays deadline regardless of which worker noticed first.
    for (const Status& st : statuses) {
      if (!st.ok() && !internal::IsCancelledBySibling(st)) return st;
    }
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }

    // Deterministic merge: block order + global first-occurrence dedup.
    RowSet merged(rm->return_slots.size());
    for (size_t b = 0; b < num_blocks; ++b) {
      const BlockRange& br = blocks[b];
      if (br.worker == kUnclaimed) {
        return Status::Internal("unprocessed seed block without an error");
      }
      const RowSet& rows = runners[br.worker]->rows();
      for (size_t r = br.begin_row; r < br.end_row; ++r) {
        if (merged.Insert(rows.row(r)) && merged.size() > options_.max_rows) {
          return Status::ResourceExhausted("MATCH row limit exceeded");
        }
      }
    }
    return BuildTable(rm, merged);
  }

  const PropertyGraph& graph_;
  const CsrGraph& csr_;
  ExecutorOptions options_;
};

// ---------------------------------------------------------------------------
// SELECT evaluation
// ---------------------------------------------------------------------------

/// Evaluates a column reference against an input row; vertex property
/// references go through the graph.
Result<PropertyValue> EvalRef(const PropertyGraph& graph, const Table& input,
                              const Table::Row& row, const ColumnRef& ref) {
  if (ref.property.empty()) {
    int col = input.FindColumn(ref.base);
    if (col < 0) return Status::NotFound("unknown column '" + ref.base + "'");
    return row[col];
  }
  // Try a literal "base.property" column first (propagated group key).
  int direct = input.FindColumn(ref.ToString());
  if (direct >= 0) return row[direct];
  int col = input.FindColumn(ref.base);
  if (col < 0) return Status::NotFound("unknown column '" + ref.base + "'");
  if (!input.columns()[col].is_vertex) {
    return Status::InvalidArgument("column '" + ref.base +
                                   "' is not a vertex; cannot read property '" +
                                   ref.property + "'");
  }
  VertexId v = static_cast<VertexId>(row[col].as_int());
  return graph.VertexProperty(v, ref.property);
}

bool ConditionPasses(const Condition& cond, const PropertyValue& value) {
  return EvaluateCompare(cond.op, value, cond.rhs);
}

/// Streaming aggregate accumulator.
struct Accumulator {
  AggFunc func = AggFunc::kNone;
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  std::optional<PropertyValue> extreme;

  void Add(const PropertyValue& v) {
    if (v.is_null()) return;  // SQL semantics: NULLs are skipped
    ++count;
    if (v.is_int()) {
      isum += v.as_int();
    } else {
      all_int = false;
    }
    sum += v.ToDouble();
    if (func == AggFunc::kMin) {
      if (!extreme.has_value() || v < *extreme) extreme = v;
    } else if (func == AggFunc::kMax) {
      if (!extreme.has_value() || *extreme < v) extreme = v;
    }
  }

  PropertyValue Finish() const {
    switch (func) {
      case AggFunc::kCount:
        return PropertyValue(count);
      case AggFunc::kSum:
        if (count == 0) return PropertyValue();
        return all_int ? PropertyValue(isum) : PropertyValue(sum);
      case AggFunc::kAvg:
        if (count == 0) return PropertyValue();
        return PropertyValue(sum / static_cast<double>(count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return extreme.has_value() ? *extreme : PropertyValue();
      case AggFunc::kNone:
        break;
    }
    return PropertyValue();
  }
};

}  // namespace

Result<Table> QueryExecutor::ExecuteMatch(const MatchQuery& match,
                                          ExecutionTiming* stats) {
  if (csr_ != nullptr) {
    // Cheap staleness tripwires; generation keying at the engine layer
    // is the real guarantee. The id-space check additionally catches
    // balanced insert+remove churn that leaves both counts unchanged —
    // which matters now that snapshots are patched forward rather than
    // always rebuilt.
    if (internal::CsrSnapshotIsStale(*graph_, *csr_)) {
      return internal::StaleSnapshotError();
    }
    CsrMatchEvaluator evaluator(*graph_, *csr_, options_);
    return evaluator.Run(match, stats);
  }
  MatchEvaluator evaluator(*graph_, options_);
  Result<Table> result = evaluator.Run(match);
  stats->deadline_checks += evaluator.deadline_checks();
  return result;
}

Result<Table> QueryExecutor::ExecuteSelect(const SelectQuery& select,
                                           ExecutionTiming* stats) {
  KASKADE_ASSIGN_OR_RETURN(
      Table input, select.from->is_match()
                       ? ExecuteMatch(select.from->match(), stats)
                       : ExecuteSelect(select.from->select(), stats));

  // WHERE filter.
  std::vector<const Table::Row*> rows;
  rows.reserve(input.num_rows());
  for (const Table::Row& row : input.rows()) {
    bool pass = true;
    for (const Condition& cond : select.where) {
      KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                               EvalRef(*graph_, input, row, cond.lhs));
      if (!ConditionPasses(cond, v)) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(&row);
  }

  bool has_aggregates = false;
  for (const SelectItem& item : select.items) {
    if (item.agg != AggFunc::kNone) has_aggregates = true;
  }

  // Output schema. A bare vertex-column reference stays a vertex column.
  std::vector<Column> out_columns;
  for (const SelectItem& item : select.items) {
    bool is_vertex = false;
    if (item.agg == AggFunc::kNone && item.ref.property.empty()) {
      int col = input.FindColumn(item.ref.base);
      is_vertex = col >= 0 && input.columns()[col].is_vertex;
    }
    out_columns.push_back(Column{item.OutputName(), is_vertex});
  }
  Table out(std::move(out_columns));

  if (!has_aggregates && select.group_by.empty()) {
    // Plain projection.
    for (const Table::Row* row : rows) {
      Table::Row out_row;
      out_row.reserve(select.items.size());
      for (const SelectItem& item : select.items) {
        KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                                 EvalRef(*graph_, input, *row, item.ref));
        out_row.push_back(std::move(v));
      }
      out.AddRow(std::move(out_row));
    }
    return out;
  }

  // Grouped aggregation (no GROUP BY + aggregates = one global group).
  struct Group {
    const Table::Row* representative;
    std::vector<Accumulator> accumulators;
  };
  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> group_order;

  for (const Table::Row* row : rows) {
    std::string key;
    for (const ColumnRef& ref : select.group_by) {
      KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                               EvalRef(*graph_, input, *row, ref));
      key += v.ToString();
      key += "\x1f";
    }
    auto [it, inserted] = groups.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      group.representative = row;
      group.accumulators.resize(select.items.size());
      for (size_t i = 0; i < select.items.size(); ++i) {
        group.accumulators[i].func = select.items[i].agg;
      }
      group_order.push_back(key);
    }
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.agg == AggFunc::kNone) continue;
      if (item.star) {
        group.accumulators[i].Add(PropertyValue(static_cast<int64_t>(1)));
        continue;
      }
      KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                               EvalRef(*graph_, input, *row, item.ref));
      group.accumulators[i].Add(v);
    }
  }

  for (const std::string& key : group_order) {
    const Group& group = groups.at(key);
    Table::Row out_row;
    out_row.reserve(select.items.size());
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.agg != AggFunc::kNone) {
        out_row.push_back(group.accumulators[i].Finish());
      } else {
        KASKADE_ASSIGN_OR_RETURN(
            PropertyValue v,
            EvalRef(*graph_, input, *group.representative, item.ref));
        out_row.push_back(std::move(v));
      }
    }
    out.AddRow(std::move(out_row));
  }
  return out;
}

Result<Table> QueryExecutor::Execute(const Query& query,
                                     ExecutionTiming* timing) {
  const auto started = std::chrono::steady_clock::now();
  ExecutionTiming stats;
  Result<Table> result = [&]() -> Result<Table> {
    if (options_.deadline != std::chrono::steady_clock::time_point{} &&
        started >= options_.deadline) {
      // Already past the deadline at entry (e.g. the op queued behind a
      // stall): fail deterministically without touching the graph.
      stats.deadline_checks = 1;
      return internal::DeadlineExceededError();
    }
    return query.is_match() ? ExecuteMatch(query.match(), &stats)
                            : ExecuteSelect(query.select(), &stats);
  }();
  if (timing != nullptr) {
    timing->elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - started)
            .count();
    timing->expansions = stats.expansions;
    timing->deadline_checks = stats.deadline_checks;
  }
  return result;
}

Result<Table> QueryExecutor::ExecuteText(const std::string& text,
                                         ExecutionTiming* timing) {
  KASKADE_ASSIGN_OR_RETURN(Query query, ParseQueryText(text));
  return Execute(query, timing);
}

}  // namespace kaskade::query
