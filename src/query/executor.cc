#include "query/executor.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "query/parser.h"

namespace kaskade::query {

using graph::EdgeId;
using graph::EdgeTypeId;
using graph::PropertyGraph;
using graph::PropertyValue;
using graph::VertexId;
using graph::VertexTypeId;

namespace {

// ---------------------------------------------------------------------------
// MATCH evaluation
// ---------------------------------------------------------------------------

/// Resolved pattern: names mapped to dense slots, types to ids.
struct ResolvedPattern {
  struct Node {
    std::string name;
    VertexTypeId type = graph::kInvalidTypeId;  // kInvalidTypeId = any
    bool has_type_constraint = false;
  };
  struct Edge {
    int from = -1;
    int to = -1;
    EdgeTypeId type = graph::kInvalidTypeId;  // kInvalidTypeId = any
    bool variable_length = false;
    int min_hops = 1;
    int max_hops = 1;
  };
  std::vector<Node> nodes;
  std::vector<Edge> edges;
  /// Conditions indexed by the node slot they constrain.
  std::vector<std::vector<Condition>> node_conditions;
};

/// \brief Backtracking pattern matcher with set-semantics projection.
class MatchEvaluator {
 public:
  MatchEvaluator(const PropertyGraph& graph, const ExecutorOptions& options)
      : graph_(graph), options_(options) {}

  Result<Table> Run(const MatchQuery& match) {
    KASKADE_RETURN_IF_ERROR(Resolve(match));
    KASKADE_RETURN_IF_ERROR(PlanOrder());

    std::vector<Column> columns;
    return_slots_.clear();
    for (const ReturnItem& item : match.return_items) {
      int slot = SlotOf(item.variable);
      if (slot < 0) {
        return Status::InvalidArgument("RETURN references unknown variable '" +
                                       item.variable + "'");
      }
      return_slots_.push_back(slot);
      columns.push_back(Column{item.OutputName(), /*is_vertex=*/true});
    }
    table_ = Table(std::move(columns));

    binding_.assign(pattern_.nodes.size(), graph::kInvalidId);
    Status st = Backtrack(0);
    if (!st.ok()) return st;
    return std::move(table_);
  }

 private:
  int SlotOf(const std::string& name) const {
    for (size_t i = 0; i < pattern_.nodes.size(); ++i) {
      if (pattern_.nodes[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  Status Resolve(const MatchQuery& match) {
    pattern_ = ResolvedPattern();
    for (const NodePattern& n : match.nodes) {
      ResolvedPattern::Node rn;
      rn.name = n.name;
      if (!n.type.empty()) {
        rn.type = graph_.schema().FindVertexType(n.type);
        if (rn.type == graph::kInvalidTypeId) {
          return Status::NotFound("unknown vertex type '" + n.type +
                                  "' in pattern");
        }
        rn.has_type_constraint = true;
      }
      pattern_.nodes.push_back(std::move(rn));
    }
    for (const EdgePattern& e : match.edges) {
      ResolvedPattern::Edge re;
      re.from = SlotOf(e.from);
      re.to = SlotOf(e.to);
      if (re.from < 0 || re.to < 0) {
        return Status::Internal("edge references unresolved node");
      }
      if (!e.type.empty()) {
        re.type = graph_.schema().FindEdgeType(e.type);
        if (re.type == graph::kInvalidTypeId) {
          return Status::NotFound("unknown edge type '" + e.type +
                                  "' in pattern");
        }
      }
      re.variable_length = e.variable_length;
      re.min_hops = e.variable_length ? e.min_hops : 1;
      re.max_hops = e.variable_length ? e.max_hops : 1;
      pattern_.edges.push_back(re);
    }
    pattern_.node_conditions.assign(pattern_.nodes.size(), {});
    for (const Condition& cond : match.where) {
      int slot = SlotOf(cond.lhs.base);
      if (slot < 0) {
        return Status::InvalidArgument("WHERE references unknown variable '" +
                                       cond.lhs.base + "'");
      }
      if (cond.lhs.property.empty()) {
        return Status::InvalidArgument(
            "WHERE on a pattern variable must reference a property");
      }
      pattern_.node_conditions[slot].push_back(cond);
    }
    return Status::OK();
  }

  /// Chooses an evaluation order: seed at the node with the smallest
  /// candidate count, then repeatedly take an edge with a bound endpoint
  /// (connected expansion); falls back to new seeds for disconnected
  /// components.
  Status PlanOrder() {
    const size_t num_nodes = pattern_.nodes.size();
    std::vector<bool> node_planned(num_nodes, false);
    std::vector<bool> edge_planned(pattern_.edges.size(), false);
    plan_.clear();

    auto candidate_count = [&](size_t slot) -> size_t {
      const ResolvedPattern::Node& n = pattern_.nodes[slot];
      return n.has_type_constraint ? graph_.NumVerticesOfType(n.type)
                                   : graph_.NumLiveVertices();
    };

    size_t planned_nodes = 0;
    while (planned_nodes < num_nodes) {
      // Seed: cheapest unplanned node.
      size_t best = num_nodes;
      for (size_t i = 0; i < num_nodes; ++i) {
        if (node_planned[i]) continue;
        if (best == num_nodes || candidate_count(i) < candidate_count(best)) {
          best = i;
        }
      }
      plan_.push_back(Step{Step::kSeed, static_cast<int>(best), -1});
      node_planned[best] = true;
      ++planned_nodes;
      // Expand while an edge touches the planned set.
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t e = 0; e < pattern_.edges.size(); ++e) {
          if (edge_planned[e]) continue;
          const ResolvedPattern::Edge& edge = pattern_.edges[e];
          bool from_in = node_planned[edge.from];
          bool to_in = node_planned[edge.to];
          if (!from_in && !to_in) continue;
          plan_.push_back(Step{Step::kEdge, -1, static_cast<int>(e)});
          edge_planned[e] = true;
          if (!from_in) {
            node_planned[edge.from] = true;
            ++planned_nodes;
          }
          if (!to_in) {
            node_planned[edge.to] = true;
            ++planned_nodes;
          }
          progress = true;
        }
      }
    }
    // Any edges left connect already-planned nodes (cycles) — append as
    // filters.
    for (size_t e = 0; e < pattern_.edges.size(); ++e) {
      if (!edge_planned[e]) {
        plan_.push_back(Step{Step::kEdge, -1, static_cast<int>(e)});
      }
    }
    return Status::OK();
  }

  bool NodeAccepts(size_t slot, VertexId v) const {
    const ResolvedPattern::Node& n = pattern_.nodes[slot];
    if (n.has_type_constraint && graph_.VertexType(v) != n.type) return false;
    for (const Condition& cond : pattern_.node_conditions[slot]) {
      PropertyValue value = graph_.VertexProperty(v, cond.lhs.property);
      bool pass = false;
      switch (cond.op) {
        case CompareOp::kEq:
          pass = value == cond.rhs;
          break;
        case CompareOp::kNe:
          pass = value != cond.rhs;
          break;
        case CompareOp::kLt:
          pass = value < cond.rhs;
          break;
        case CompareOp::kLe:
          pass = value < cond.rhs || value == cond.rhs;
          break;
        case CompareOp::kGt:
          pass = cond.rhs < value;
          break;
        case CompareOp::kGe:
          pass = cond.rhs < value || value == cond.rhs;
          break;
      }
      if (!pass) return false;
    }
    return true;
  }

  /// Vertices reachable from `start` in exactly d hops for some d in
  /// [min_hops, max_hops], following edges of `type` (reverse when
  /// `backward`). Level-synchronized BFS so all reachable depths are seen
  /// (bipartite graphs reach vertices at several parities).
  std::vector<VertexId> VarLengthTargets(VertexId start, EdgeTypeId type,
                                         int min_hops, int max_hops,
                                         bool backward) const {
    std::vector<VertexId> result;
    std::unordered_set<VertexId> result_set;
    if (min_hops == 0) {
      result.push_back(start);
      result_set.insert(start);
    }
    // Per-level frontiers: a vertex may recur at several depths (e.g. at
    // both parities of a bipartite lineage graph), and membership in
    // [min_hops, max_hops] is decided per depth, so dedup is on
    // (vertex, depth) rather than vertex.
    std::vector<std::vector<VertexId>> levels(max_hops + 1);
    levels[0] = {start};
    std::unordered_set<uint64_t> visited_at_level;
    visited_at_level.insert(static_cast<uint64_t>(start) << 32);
    for (int depth = 1; depth <= max_hops; ++depth) {
      std::vector<VertexId>& prev = levels[depth - 1];
      if (prev.empty()) break;
      std::vector<VertexId>& cur = levels[depth];
      for (VertexId v : prev) {
        const std::vector<EdgeId>& incident =
            backward ? graph_.InEdges(v) : graph_.OutEdges(v);
        for (EdgeId e : incident) {
          const graph::EdgeRecord& rec = graph_.Edge(e);
          if (type != graph::kInvalidTypeId && rec.type != type) continue;
          VertexId next = backward ? rec.source : rec.target;
          uint64_t key = (static_cast<uint64_t>(next) << 32) |
                         static_cast<uint64_t>(depth);
          if (!visited_at_level.insert(key).second) continue;
          cur.push_back(next);
          if (depth >= min_hops && result_set.insert(next).second) {
            result.push_back(next);
          }
        }
      }
    }
    return result;
  }

  /// True if some path start->...->end with length in [min,max] exists.
  bool VarLengthConnected(VertexId start, VertexId end, EdgeTypeId type,
                          int min_hops, int max_hops) const {
    std::vector<VertexId> targets =
        VarLengthTargets(start, type, min_hops, max_hops, false);
    return std::find(targets.begin(), targets.end(), end) != targets.end();
  }

  Status EmitRow() {
    Table::Row row;
    row.reserve(return_slots_.size());
    std::string key;
    for (int slot : return_slots_) {
      VertexId v = binding_[slot];
      row.emplace_back(static_cast<int64_t>(v));
      key += std::to_string(v);
      key += ",";
    }
    if (!distinct_rows_.insert(key).second) return Status::OK();
    if (table_.num_rows() >= options_.max_rows) {
      return Status::ResourceExhausted("MATCH row limit exceeded");
    }
    table_.AddRow(std::move(row));
    return Status::OK();
  }

  Status Backtrack(size_t step_index) {
    if (step_index == plan_.size()) return EmitRow();
    const Step& step = plan_[step_index];
    if (step.kind == Step::kSeed) {
      size_t slot = static_cast<size_t>(step.node_slot);
      if (binding_[slot] != graph::kInvalidId) {
        return Backtrack(step_index + 1);
      }
      const ResolvedPattern::Node& n = pattern_.nodes[slot];
      if (n.has_type_constraint) {
        for (VertexId v : graph_.VerticesOfType(n.type)) {
          if (!NodeAccepts(slot, v)) continue;
          binding_[slot] = v;
          KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
          binding_[slot] = graph::kInvalidId;
        }
      } else {
        for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
          if (!graph_.IsVertexLive(v)) continue;
          if (!NodeAccepts(slot, v)) continue;
          binding_[slot] = v;
          KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
          binding_[slot] = graph::kInvalidId;
        }
      }
      return Status::OK();
    }

    const ResolvedPattern::Edge& edge = pattern_.edges[step.edge_index];
    VertexId from = binding_[edge.from];
    VertexId to = binding_[edge.to];
    bool from_bound = from != graph::kInvalidId;
    bool to_bound = to != graph::kInvalidId;

    if (from_bound && to_bound) {
      // Filter edge (closes a cycle).
      bool connected =
          edge.variable_length
              ? VarLengthConnected(from, to, edge.type, edge.min_hops,
                                   edge.max_hops)
              : [&] {
                  for (EdgeId e : graph_.OutEdges(from)) {
                    const graph::EdgeRecord& rec = graph_.Edge(e);
                    if (rec.target == to &&
                        (edge.type == graph::kInvalidTypeId ||
                         rec.type == edge.type)) {
                      return true;
                    }
                  }
                  return false;
                }();
      if (connected) return Backtrack(step_index + 1);
      return Status::OK();
    }

    const bool forward = from_bound;  // else expand backward from `to`
    size_t free_slot = forward ? edge.to : edge.from;
    VertexId anchor = forward ? from : to;

    if (edge.variable_length) {
      for (VertexId v : VarLengthTargets(anchor, edge.type, edge.min_hops,
                                         edge.max_hops, !forward)) {
        if (!NodeAccepts(free_slot, v)) continue;
        binding_[free_slot] = v;
        KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
        binding_[free_slot] = graph::kInvalidId;
      }
      return Status::OK();
    }

    const std::vector<EdgeId>& incident =
        forward ? graph_.OutEdges(anchor) : graph_.InEdges(anchor);
    // Distinct neighbor set: parallel edges must not multiply rows under
    // set semantics, and NodeAccepts can be expensive.
    std::unordered_set<VertexId> tried;
    for (EdgeId e : incident) {
      const graph::EdgeRecord& rec = graph_.Edge(e);
      if (edge.type != graph::kInvalidTypeId && rec.type != edge.type) continue;
      VertexId next = forward ? rec.target : rec.source;
      if (!tried.insert(next).second) continue;
      if (!NodeAccepts(free_slot, next)) continue;
      binding_[free_slot] = next;
      KASKADE_RETURN_IF_ERROR(Backtrack(step_index + 1));
      binding_[free_slot] = graph::kInvalidId;
    }
    return Status::OK();
  }

  struct Step {
    enum Kind { kSeed, kEdge } kind;
    int node_slot;
    int edge_index;
  };

  const PropertyGraph& graph_;
  ExecutorOptions options_;
  ResolvedPattern pattern_;
  std::vector<Step> plan_;
  std::vector<VertexId> binding_;
  std::vector<int> return_slots_;
  std::unordered_set<std::string> distinct_rows_;
  Table table_;
};

// ---------------------------------------------------------------------------
// SELECT evaluation
// ---------------------------------------------------------------------------

/// Evaluates a column reference against an input row; vertex property
/// references go through the graph.
Result<PropertyValue> EvalRef(const PropertyGraph& graph, const Table& input,
                              const Table::Row& row, const ColumnRef& ref) {
  if (ref.property.empty()) {
    int col = input.FindColumn(ref.base);
    if (col < 0) return Status::NotFound("unknown column '" + ref.base + "'");
    return row[col];
  }
  // Try a literal "base.property" column first (propagated group key).
  int direct = input.FindColumn(ref.ToString());
  if (direct >= 0) return row[direct];
  int col = input.FindColumn(ref.base);
  if (col < 0) return Status::NotFound("unknown column '" + ref.base + "'");
  if (!input.columns()[col].is_vertex) {
    return Status::InvalidArgument("column '" + ref.base +
                                   "' is not a vertex; cannot read property '" +
                                   ref.property + "'");
  }
  VertexId v = static_cast<VertexId>(row[col].as_int());
  return graph.VertexProperty(v, ref.property);
}

bool ConditionPasses(const Condition& cond, const PropertyValue& value) {
  switch (cond.op) {
    case CompareOp::kEq:
      return value == cond.rhs;
    case CompareOp::kNe:
      return value != cond.rhs;
    case CompareOp::kLt:
      return value < cond.rhs;
    case CompareOp::kLe:
      return value < cond.rhs || value == cond.rhs;
    case CompareOp::kGt:
      return cond.rhs < value;
    case CompareOp::kGe:
      return cond.rhs < value || value == cond.rhs;
  }
  return false;
}

/// Streaming aggregate accumulator.
struct Accumulator {
  AggFunc func = AggFunc::kNone;
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  std::optional<PropertyValue> extreme;

  void Add(const PropertyValue& v) {
    if (v.is_null()) return;  // SQL semantics: NULLs are skipped
    ++count;
    if (v.is_int()) {
      isum += v.as_int();
    } else {
      all_int = false;
    }
    sum += v.ToDouble();
    if (func == AggFunc::kMin) {
      if (!extreme.has_value() || v < *extreme) extreme = v;
    } else if (func == AggFunc::kMax) {
      if (!extreme.has_value() || *extreme < v) extreme = v;
    }
  }

  PropertyValue Finish() const {
    switch (func) {
      case AggFunc::kCount:
        return PropertyValue(count);
      case AggFunc::kSum:
        if (count == 0) return PropertyValue();
        return all_int ? PropertyValue(isum) : PropertyValue(sum);
      case AggFunc::kAvg:
        if (count == 0) return PropertyValue();
        return PropertyValue(sum / static_cast<double>(count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return extreme.has_value() ? *extreme : PropertyValue();
      case AggFunc::kNone:
        break;
    }
    return PropertyValue();
  }
};

}  // namespace

Result<Table> QueryExecutor::ExecuteMatch(const MatchQuery& match) {
  MatchEvaluator evaluator(*graph_, options_);
  return evaluator.Run(match);
}

Result<Table> QueryExecutor::ExecuteSelect(const SelectQuery& select) {
  KASKADE_ASSIGN_OR_RETURN(Table input, Execute(*select.from));

  // WHERE filter.
  std::vector<const Table::Row*> rows;
  rows.reserve(input.num_rows());
  for (const Table::Row& row : input.rows()) {
    bool pass = true;
    for (const Condition& cond : select.where) {
      KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                               EvalRef(*graph_, input, row, cond.lhs));
      if (!ConditionPasses(cond, v)) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(&row);
  }

  bool has_aggregates = false;
  for (const SelectItem& item : select.items) {
    if (item.agg != AggFunc::kNone) has_aggregates = true;
  }

  // Output schema. A bare vertex-column reference stays a vertex column.
  std::vector<Column> out_columns;
  for (const SelectItem& item : select.items) {
    bool is_vertex = false;
    if (item.agg == AggFunc::kNone && item.ref.property.empty()) {
      int col = input.FindColumn(item.ref.base);
      is_vertex = col >= 0 && input.columns()[col].is_vertex;
    }
    out_columns.push_back(Column{item.OutputName(), is_vertex});
  }
  Table out(std::move(out_columns));

  if (!has_aggregates && select.group_by.empty()) {
    // Plain projection.
    for (const Table::Row* row : rows) {
      Table::Row out_row;
      out_row.reserve(select.items.size());
      for (const SelectItem& item : select.items) {
        KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                                 EvalRef(*graph_, input, *row, item.ref));
        out_row.push_back(std::move(v));
      }
      out.AddRow(std::move(out_row));
    }
    return out;
  }

  // Grouped aggregation (no GROUP BY + aggregates = one global group).
  struct Group {
    const Table::Row* representative;
    std::vector<Accumulator> accumulators;
  };
  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> group_order;

  for (const Table::Row* row : rows) {
    std::string key;
    for (const ColumnRef& ref : select.group_by) {
      KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                               EvalRef(*graph_, input, *row, ref));
      key += v.ToString();
      key += "\x1f";
    }
    auto [it, inserted] = groups.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      group.representative = row;
      group.accumulators.resize(select.items.size());
      for (size_t i = 0; i < select.items.size(); ++i) {
        group.accumulators[i].func = select.items[i].agg;
      }
      group_order.push_back(key);
    }
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.agg == AggFunc::kNone) continue;
      if (item.star) {
        group.accumulators[i].Add(PropertyValue(static_cast<int64_t>(1)));
        continue;
      }
      KASKADE_ASSIGN_OR_RETURN(PropertyValue v,
                               EvalRef(*graph_, input, *row, item.ref));
      group.accumulators[i].Add(v);
    }
  }

  for (const std::string& key : group_order) {
    const Group& group = groups.at(key);
    Table::Row out_row;
    out_row.reserve(select.items.size());
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.agg != AggFunc::kNone) {
        out_row.push_back(group.accumulators[i].Finish());
      } else {
        KASKADE_ASSIGN_OR_RETURN(
            PropertyValue v,
            EvalRef(*graph_, input, *group.representative, item.ref));
        out_row.push_back(std::move(v));
      }
    }
    out.AddRow(std::move(out_row));
  }
  return out;
}

Result<Table> QueryExecutor::Execute(const Query& query) {
  if (query.is_match()) return ExecuteMatch(query.match());
  return ExecuteSelect(query.select());
}

Result<Table> QueryExecutor::ExecuteText(const std::string& text) {
  KASKADE_ASSIGN_OR_RETURN(Query query, ParseQueryText(text));
  return Execute(query);
}

}  // namespace kaskade::query
