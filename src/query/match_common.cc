#include "query/match_common.h"

#include <algorithm>

namespace kaskade::query::internal {

using graph::CsrGraph;
using graph::EdgeSpan;
using graph::EdgeTypeId;
using graph::PropertyGraph;
using graph::VertexId;
using graph::VertexTypeId;

Status ResolvePattern(const PropertyGraph& graph, const MatchQuery& match,
                      ResolvedPattern* pattern) {
  for (const NodePattern& n : match.nodes) {
    ResolvedPattern::Node rn;
    rn.name = n.name;
    if (!n.type.empty()) {
      rn.type = graph.schema().FindVertexType(n.type);
      if (rn.type == graph::kInvalidTypeId) {
        return Status::NotFound("unknown vertex type '" + n.type +
                                "' in pattern");
      }
      rn.has_type_constraint = true;
    }
    pattern->nodes.push_back(std::move(rn));
  }
  for (const EdgePattern& e : match.edges) {
    ResolvedPattern::Edge re;
    re.from = pattern->SlotOf(e.from);
    re.to = pattern->SlotOf(e.to);
    if (re.from < 0 || re.to < 0) {
      return Status::Internal("edge references unresolved node");
    }
    if (!e.type.empty()) {
      re.type = graph.schema().FindEdgeType(e.type);
      if (re.type == graph::kInvalidTypeId) {
        return Status::NotFound("unknown edge type '" + e.type +
                                "' in pattern");
      }
    }
    re.variable_length = e.variable_length;
    re.min_hops = e.variable_length ? e.min_hops : 1;
    re.max_hops = e.variable_length ? e.max_hops : 1;
    pattern->edges.push_back(re);
  }
  pattern->node_conditions.assign(pattern->nodes.size(), {});
  for (const Condition& cond : match.where) {
    int slot = pattern->SlotOf(cond.lhs.base);
    if (slot < 0) {
      return Status::InvalidArgument("WHERE references unknown variable '" +
                                     cond.lhs.base + "'");
    }
    if (cond.lhs.property.empty()) {
      return Status::InvalidArgument(
          "WHERE on a pattern variable must reference a property");
    }
    pattern->node_conditions[slot].push_back(cond);
  }
  // Mark expansions whose per-candidate acceptance check is provably a
  // no-op (see ResolvedPattern::Edge). Variable-length edges only
  // qualify when the endpoint is fully unconstrained: interior hops can
  // cross types, so the edge type's declaration says nothing about the
  // final endpoint.
  auto trivial_endpoint = [&](int slot, VertexTypeId implied_type,
                              bool fixed_typed) {
    const ResolvedPattern::Node& n = pattern->nodes[slot];
    if (!pattern->node_conditions[slot].empty()) return false;
    if (!n.has_type_constraint) return true;
    return fixed_typed && n.type == implied_type;
  };
  for (ResolvedPattern::Edge& re : pattern->edges) {
    const bool fixed_typed =
        !re.variable_length && re.type != graph::kInvalidTypeId;
    const graph::EdgeTypeDecl* decl =
        fixed_typed ? &graph.schema().edge_type(re.type) : nullptr;
    re.trivial_forward = trivial_endpoint(
        re.to, decl != nullptr ? decl->target_type : graph::kInvalidTypeId,
        fixed_typed);
    re.trivial_backward = trivial_endpoint(
        re.from, decl != nullptr ? decl->source_type : graph::kInvalidTypeId,
        fixed_typed);
  }
  return Status::OK();
}

std::vector<Step> PlanMatchOrder(const PropertyGraph& graph,
                                 const ResolvedPattern& pattern) {
  const size_t num_nodes = pattern.nodes.size();
  std::vector<bool> node_planned(num_nodes, false);
  std::vector<bool> edge_planned(pattern.edges.size(), false);
  std::vector<Step> plan;

  auto candidate_count = [&](size_t slot) -> size_t {
    const ResolvedPattern::Node& n = pattern.nodes[slot];
    return n.has_type_constraint ? graph.NumVerticesOfType(n.type)
                                 : graph.NumLiveVertices();
  };

  size_t planned_nodes = 0;
  while (planned_nodes < num_nodes) {
    // Seed: cheapest unplanned node.
    size_t best = num_nodes;
    for (size_t i = 0; i < num_nodes; ++i) {
      if (node_planned[i]) continue;
      if (best == num_nodes || candidate_count(i) < candidate_count(best)) {
        best = i;
      }
    }
    plan.push_back(Step{Step::kSeed, static_cast<int>(best), -1});
    node_planned[best] = true;
    ++planned_nodes;
    // Expand while an edge touches the planned set.
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t e = 0; e < pattern.edges.size(); ++e) {
        if (edge_planned[e]) continue;
        const ResolvedPattern::Edge& edge = pattern.edges[e];
        bool from_in = node_planned[edge.from];
        bool to_in = node_planned[edge.to];
        if (!from_in && !to_in) continue;
        plan.push_back(Step{Step::kEdge, -1, static_cast<int>(e)});
        edge_planned[e] = true;
        if (!from_in) {
          node_planned[edge.from] = true;
          ++planned_nodes;
        }
        if (!to_in) {
          node_planned[edge.to] = true;
          ++planned_nodes;
        }
        progress = true;
      }
    }
  }
  // Any edges left connect already-planned nodes (cycles) — append as
  // filters.
  for (size_t e = 0; e < pattern.edges.size(); ++e) {
    if (!edge_planned[e]) {
      plan.push_back(Step{Step::kEdge, -1, static_cast<int>(e)});
    }
  }
  return plan;
}

Result<ResolvedMatch> ResolveMatch(const PropertyGraph& graph,
                                   const MatchQuery& match) {
  ResolvedMatch rm;
  KASKADE_RETURN_IF_ERROR(ResolvePattern(graph, match, &rm.pattern));
  rm.plan = PlanMatchOrder(graph, rm.pattern);
  for (const ReturnItem& item : match.return_items) {
    int slot = rm.pattern.SlotOf(item.variable);
    if (slot < 0) {
      return Status::InvalidArgument("RETURN references unknown variable '" +
                                     item.variable + "'");
    }
    rm.return_slots.push_back(slot);
    rm.columns.push_back(Column{item.OutputName(), /*is_vertex=*/true});
  }
  return rm;
}

bool NodeAccepts(const PropertyGraph& graph, const ResolvedPattern& pattern,
                 size_t slot, VertexId v) {
  const ResolvedPattern::Node& n = pattern.nodes[slot];
  if (n.has_type_constraint && graph.VertexType(v) != n.type) return false;
  for (const Condition& cond : pattern.node_conditions[slot]) {
    if (!EvaluateCompare(cond.op, graph.VertexProperty(v, cond.lhs.property),
                         cond.rhs)) {
      return false;
    }
  }
  return true;
}

void CsrTraversal::GatherDistinctNeighbors(VertexId anchor, EdgeTypeId type,
                                           bool forward,
                                           std::vector<VertexId>* out) {
  out->clear();
  const uint32_t epoch = NextMark();
  EdgeSpan span = forward ? csr_.TypedOutEdges(anchor, type)
                          : csr_.TypedInEdges(anchor, type);
  for (size_t i = 0; i < span.size; ++i) {
    VertexId next = span.vertices[i];
    if (mark_[next] == epoch) continue;
    mark_[next] = epoch;
    out->push_back(next);
  }
}

void CsrTraversal::VarLengthTargets(VertexId start, EdgeTypeId type,
                                    int min_hops, int max_hops, bool backward,
                                    StepScratch* s) {
  s->candidates.clear();
  const uint32_t result_epoch = NextResultMark();
  if (min_hops == 0) {
    result_mark_[start] = result_epoch;
    s->candidates.push_back(start);
  }
  s->cur.clear();
  s->cur.push_back(start);
  for (int depth = 1; depth <= max_hops && !s->cur.empty(); ++depth) {
    s->next.clear();
    const uint32_t level_epoch = NextMark();
    for (VertexId v : s->cur) {
      EdgeSpan span = backward ? csr_.TypedInEdges(v, type)
                               : csr_.TypedOutEdges(v, type);
      if (guard_ != nullptr && guard_->Charge(span.size + 1)) return;
      for (size_t i = 0; i < span.size; ++i) {
        VertexId next = span.vertices[i];
        if (mark_[next] == level_epoch) continue;
        mark_[next] = level_epoch;
        s->next.push_back(next);
        if (depth >= min_hops && result_mark_[next] != result_epoch) {
          result_mark_[next] = result_epoch;
          s->candidates.push_back(next);
        }
      }
    }
    std::swap(s->cur, s->next);
  }
}

bool CsrTraversal::VarLengthConnected(VertexId start, VertexId end,
                                      EdgeTypeId type, int min_hops,
                                      int max_hops, StepScratch* s) {
  if (min_hops == 0 && start == end) return true;
  s->cur.clear();
  s->cur.push_back(start);
  for (int depth = 1; depth <= max_hops && !s->cur.empty(); ++depth) {
    s->next.clear();
    const uint32_t level_epoch = NextMark();
    for (VertexId v : s->cur) {
      EdgeSpan span = csr_.TypedOutEdges(v, type);
      if (guard_ != nullptr && guard_->Charge(span.size + 1)) return false;
      for (size_t i = 0; i < span.size; ++i) {
        VertexId next = span.vertices[i];
        if (mark_[next] == level_epoch) continue;
        mark_[next] = level_epoch;
        if (depth >= min_hops && next == end) return true;
        s->next.push_back(next);
      }
    }
    std::swap(s->cur, s->next);
  }
  return false;
}

bool CsrTraversal::HasFixedEdge(VertexId from, VertexId to,
                                EdgeTypeId type) const {
  EdgeSpan out = csr_.TypedOutEdges(from, type);
  EdgeSpan in = csr_.TypedInEdges(to, type);
  const bool smaller_in = in.size < out.size;
  const EdgeSpan& span = smaller_in ? in : out;
  const VertexId needle = smaller_in ? from : to;
  if (type == graph::kInvalidTypeId) {
    for (size_t i = 0; i < span.size; ++i) {
      if (span.vertices[i] == needle) return true;
    }
    return false;
  }
  return std::binary_search(span.vertices, span.vertices + span.size, needle);
}

}  // namespace kaskade::query::internal
