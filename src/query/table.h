/// \file table.h
/// \brief Row-oriented result tables produced by the query executor.

#ifndef KASKADE_QUERY_TABLE_H_
#define KASKADE_QUERY_TABLE_H_

#include <string>
#include <vector>

#include "graph/property_value.h"

namespace kaskade::query {

/// \brief Column metadata: name plus whether cells are vertex references
/// (vertex ids stored as integers) rather than plain values.
struct Column {
  std::string name;
  bool is_vertex = false;
};

/// \brief A materialized query result.
class Table {
 public:
  using Row = std::vector<graph::PropertyValue>;

  Table() = default;
  explicit Table(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  /// Index of the column with `name`, or -1.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Renders the first `max_rows` rows for display/tests.
  std::string ToString(size_t max_rows = 20) const;

  /// Sorted copy of the rows (row-wise lexicographic order) — for
  /// order-insensitive result comparison in tests.
  std::vector<Row> SortedRows() const;

 private:
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_TABLE_H_
