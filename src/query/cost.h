/// \file cost.h
/// \brief Query evaluation cost model (§V-A "Query evaluation cost").
///
/// The paper leverages Neo4j's cost-based optimizer as a proxy for the
/// cost of evaluating a query over a graph. Our substitute estimates the
/// number of elements a pattern touches: seed-scan cardinality multiplied
/// by per-edge expansion factors derived from the graph's per-type degree
/// statistics; variable-length edges contribute a geometric series over
/// their hop range. Relational layers add linear passes over their input.
/// The absolute numbers are meaningless; what matters (and what view
/// selection and rewriting need) is a consistent ordering between plans.

#ifndef KASKADE_QUERY_COST_H_
#define KASKADE_QUERY_COST_H_

#include <functional>

#include "graph/property_graph.h"
#include "graph/stats.h"
#include "query/ast.h"

namespace kaskade::query {

/// \brief Cost-model knobs.
struct CostModelOptions {
  /// Degree percentile used for fixed-edge expansion factors.
  double degree_alpha = 90;
  /// Lower bound on any expansion factor, so zero-degree statistics do
  /// not collapse the estimate to zero.
  double min_expansion = 0.1;
};

/// Estimated cost (abstract units ~ elements touched) of evaluating
/// `query` against a graph with the given statistics.
double EstimateEvalCost(const Query& query, const graph::PropertyGraph& graph,
                        const graph::GraphStats& stats,
                        const CostModelOptions& options = {});

/// Shared frontier model over abstract (seeds, |V|, |E|) counts;
/// `fixed_expansion` supplies the per-fixed-edge degree factor keyed by
/// the edge's source node name. Used both for real graphs (above) and
/// for candidate views that exist only as size estimates (core module).
double MatchCostOnCounts(const MatchQuery& match, double seeds,
                         double num_vertices, double num_edges,
                         const std::function<double(const std::string&)>&
                             fixed_expansion);

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_COST_H_
