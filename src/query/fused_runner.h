/// \file fused_runner.h
/// \brief Cross-query fusion: one shared CSR traversal for a group of
/// same-shape MATCH queries (GraFS-style fusion of concurrent graph
/// analytics, applied to Kaskade's batch path).
///
/// A *shape group* is a set of MATCH queries with identical topology,
/// node/edge types, WHERE structure (same lhs property and operator per
/// conjunct, in the same order), and RETURN items — only the predicate
/// *constants* may differ (`core/planner.h` computes the grouping key).
/// Because `PlanMatchOrder` never looks at constants, every member
/// shares one plan, one seed enumeration, and one candidate gather per
/// expansion step. The fused runner walks that shared tree exactly once,
/// carrying a per-member *alive bitmask*: binding a vertex to a slot
/// evaluates each member's constants against the (once-fetched) property
/// value and clears the bits of members the binding fails, so a member
/// that fails a constant check stops paying for deeper expansions; a
/// subtree with no alive member is pruned outright. Rows are split per
/// member at emit time.
///
/// Identity guarantee: each member's output table is byte-identical to
/// its solo sequential run — same rows, same order. A member's solo DFS
/// explores exactly the subtree where its own predicates pass; the fused
/// DFS explores the union of those subtrees in the same candidate order,
/// and member m emits precisely at the leaves where its bit survived
/// every binding — the same leaves, in the same depth-first order. The
/// differential suite (`tests/differential_test.cc`) enforces this
/// across mutation streams.

#ifndef KASKADE_QUERY_FUSED_RUNNER_H_
#define KASKADE_QUERY_FUSED_RUNNER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr.h"
#include "graph/property_graph.h"
#include "query/ast.h"
#include "query/executor.h"
#include "query/table.h"

namespace kaskade::query {

/// \brief What one fused group execution cost, for engine telemetry.
struct FusedGroupStats {
  /// Traversal expansions of the one shared walk (same unit as
  /// `ExecutionTiming::expansions`) — what N solo runs would each have
  /// paid separately.
  uint64_t expansions = 0;
  /// Wall clock of the whole group (microseconds).
  double elapsed_us = 0;
  /// Deadline clock tests the shared traversal performed (see
  /// `ExecutionTiming::deadline_checks`).
  uint64_t deadline_checks = 0;
};

/// Runs `members` — same-shape MATCH queries — as one shared traversal
/// over `csr` (a topology snapshot of `graph`) and returns one result
/// per member, in member order. Per-member failures (e.g. a member
/// exceeding `options.max_rows`) are per-slot errors and do not abort
/// the other members; group-level failures (stale snapshot, resolution
/// errors — shape-determined, so every solo run would hit them too)
/// fill every slot with the same error. When `options.deadline` fires
/// mid-traversal the shared walk stops at the next check and every
/// member that has not already produced a complete result fails with
/// `kDeadlineExceeded` — a partial table is never returned. Sequential;
/// the caller decides how groups are spread across batch workers.
std::vector<Result<Table>> ExecuteFusedMatch(
    const graph::PropertyGraph& graph, const graph::CsrGraph& csr,
    const std::vector<const MatchQuery*>& members,
    const ExecutorOptions& options, FusedGroupStats* stats = nullptr);

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_FUSED_RUNNER_H_
