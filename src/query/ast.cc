#include "query/ast.h"

namespace kaskade::query {

namespace {

const char* AggName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string RenderConditions(const std::vector<Condition>& where) {
  std::string out;
  for (size_t i = 0; i < where.size(); ++i) {
    if (i > 0) out += " AND ";
    out += where[i].lhs.ToString();
    out += " ";
    out += OpName(where[i].op);
    out += " ";
    if (where[i].rhs.is_string()) {
      out += "'" + where[i].rhs.as_string() + "'";
    } else {
      out += where[i].rhs.ToString();
    }
  }
  return out;
}

std::string RenderMatch(const MatchQuery& m) {
  std::string out = "MATCH ";
  auto render_node = [&](const std::string& name) {
    const NodePattern* n = m.FindNode(name);
    std::string s = "(" + name;
    if (n != nullptr && !n->type.empty()) s += ":" + n->type;
    return s + ")";
  };
  for (size_t i = 0; i < m.edges.size(); ++i) {
    const EdgePattern& e = m.edges[i];
    if (i > 0) out += " ";
    out += render_node(e.from);
    out += "-[";
    out += e.var;
    if (!e.type.empty()) out += ":" + e.type;
    if (e.variable_length) {
      out += "*" + std::to_string(e.min_hops) + ".." + std::to_string(e.max_hops);
    }
    out += "]->";
    out += render_node(e.to);
  }
  if (m.edges.empty() && !m.nodes.empty()) {
    for (size_t i = 0; i < m.nodes.size(); ++i) {
      if (i > 0) out += " ";
      out += render_node(m.nodes[i].name);
    }
  }
  if (!m.where.empty()) out += " WHERE " + RenderConditions(m.where);
  out += " RETURN ";
  for (size_t i = 0; i < m.return_items.size(); ++i) {
    if (i > 0) out += ", ";
    out += m.return_items[i].variable;
    if (!m.return_items[i].alias.empty()) {
      out += " AS " + m.return_items[i].alias;
    }
  }
  return out;
}

std::string RenderSelect(const SelectQuery& s) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = s.items[i];
    if (item.agg != AggFunc::kNone) {
      out += std::string(AggName(item.agg)) + "(" +
             (item.star ? "*" : item.ref.ToString()) + ")";
    } else {
      out += item.ref.ToString();
    }
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM (" + s.from->ToString() + ")";
  if (!s.where.empty()) out += " WHERE " + RenderConditions(s.where);
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += s.group_by[i].ToString();
    }
  }
  return out;
}

}  // namespace

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (agg != AggFunc::kNone) {
    return std::string(AggName(agg)) + "(" + (star ? "*" : ref.ToString()) + ")";
  }
  return ref.ToString();
}

Query Query::Clone() const {
  Query out;
  if (is_match()) {
    out.node = match();  // MatchQuery is value-copyable
  } else {
    const SelectQuery& s = select();
    SelectQuery copy;
    copy.items = s.items;
    copy.where = s.where;
    copy.group_by = s.group_by;
    copy.from = std::make_unique<Query>(s.from->Clone());
    out.node = std::move(copy);
  }
  return out;
}

const MatchQuery* Query::InnermostMatch() const {
  if (is_match()) return &match();
  const SelectQuery& s = select();
  return s.from == nullptr ? nullptr : s.from->InnermostMatch();
}

MatchQuery* Query::MutableInnermostMatch() {
  if (is_match()) return &match();
  SelectQuery& s = select();
  return s.from == nullptr ? nullptr : s.from->MutableInnermostMatch();
}

std::string Query::ToString() const {
  return is_match() ? RenderMatch(match()) : RenderSelect(select());
}

}  // namespace kaskade::query
