/// \file parser.h
/// \brief Parser for the hybrid Cypher+SQL query dialect (§III-B).
///
/// Keywords are case-insensitive. Edge-type names may start with a digit
/// (connector types like `2_HOP_JOB_TO_JOB`); `-` is also accepted inside
/// edge-type names directly after `HOP` digits, matching the paper's
/// `2_HOP-JOB_TO_JOB` spelling.

#ifndef KASKADE_QUERY_PARSER_H_
#define KASKADE_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace kaskade::query {

/// Parses a full query (SELECT or MATCH at top level).
Result<Query> ParseQueryText(const std::string& text);

}  // namespace kaskade::query

#endif  // KASKADE_QUERY_PARSER_H_
