#include "query/explain.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace kaskade::query {

namespace {

void ExplainMatch(const MatchQuery& match, const graph::PropertyGraph& graph,
                  const graph::GraphStats& stats,
                  const CostModelOptions& options, const std::string& indent,
                  std::string* out) {
  *out += indent + "MATCH\n";
  if (!match.nodes.empty()) {
    const NodePattern& seed = match.nodes.front();
    graph::VertexTypeId type = seed.type.empty()
                                   ? graph::kInvalidTypeId
                                   : graph.schema().FindVertexType(seed.type);
    size_t cardinality = type == graph::kInvalidTypeId
                             ? graph.NumLiveVertices()
                             : graph.NumVerticesOfType(type);
    *out += indent + "  seed (" + seed.name;
    if (!seed.type.empty()) *out += ":" + seed.type;
    *out += ")  " +
            FormatWithCommas(static_cast<long long>(cardinality)) +
            " vertices\n";
  }
  for (const EdgePattern& edge : match.edges) {
    *out += indent + "  expand -[";
    if (!edge.type.empty()) *out += ":" + edge.type;
    if (edge.variable_length) {
      *out += "*" + std::to_string(edge.min_hops) + ".." +
              std::to_string(edge.max_hops);
    }
    *out += "]-> (" + edge.to;
    const NodePattern* to = match.FindNode(edge.to);
    if (to != nullptr && !to->type.empty()) *out += ":" + to->type;
    *out += ")  ";
    if (edge.variable_length) {
      *out += std::to_string(edge.max_hops) + " bounded graph sweeps";
    } else {
      const NodePattern* from = match.FindNode(edge.from);
      graph::VertexTypeId from_type =
          (from != nullptr && !from->type.empty())
              ? graph.schema().FindVertexType(from->type)
              : graph::kInvalidTypeId;
      const graph::TypeDegreeSummary& summary =
          from_type == graph::kInvalidTypeId ? stats.overall()
                                             : stats.ForType(from_type);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "x%.1f",
                    std::max(summary.Percentile(options.degree_alpha),
                             options.min_expansion));
      *out += buf;
    }
    *out += "\n";
  }
  if (!match.where.empty()) {
    *out += indent + "  filter: " + std::to_string(match.where.size()) +
            " condition(s)\n";
  }
}

void ExplainNode(const Query& query, const graph::PropertyGraph& graph,
                 const graph::GraphStats& stats,
                 const CostModelOptions& options, const std::string& indent,
                 std::string* out) {
  if (query.is_match()) {
    ExplainMatch(query.match(), graph, stats, options, indent, out);
    return;
  }
  const SelectQuery& select = query.select();
  *out += indent + "SELECT [" + std::to_string(select.items.size()) +
          " item(s)";
  if (!select.group_by.empty()) {
    *out += ", GROUP BY ";
    for (size_t i = 0; i < select.group_by.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += select.group_by[i].ToString();
    }
  }
  if (!select.where.empty()) {
    *out += ", WHERE " + std::to_string(select.where.size()) +
            " condition(s)";
  }
  *out += "]\n";
  ExplainNode(*select.from, graph, stats, options, indent + "  ", out);
}

}  // namespace

std::string ExplainQuery(const Query& query, const graph::PropertyGraph& graph,
                         const graph::GraphStats& stats,
                         const CostModelOptions& options) {
  std::string out;
  ExplainNode(query, graph, stats, options, "", &out);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "estimated cost: %.3g\n",
                EstimateEvalCost(query, graph, stats, options));
  out += buf;
  return out;
}

}  // namespace kaskade::query
